// Paper Sec. 8.4: LITE-DSM operation latencies on 4 nodes — random and
// sequential 4 KB reads, and the acquire/commit (release) costs of a sync
// covering 10 dirty pages.
#include "bench/benchlib.h"
#include "src/apps/dsm.h"
#include "src/common/rng.h"
#include "src/common/timing.h"
#include "src/lite/lite_cluster.h"

int main() {
  lt::SimParams p;
  p.node_phys_mem_bytes = 96ull << 20;
  lite::LiteCluster cluster(4, p);
  std::vector<lt::NodeId> nodes = {0, 1, 2, 3};
  constexpr uint64_t kPages = 512;
  std::vector<std::unique_ptr<liteapp::LiteDsm>> dsms;
  for (lt::NodeId n : nodes) {
    dsms.push_back(std::make_unique<liteapp::LiteDsm>(&cluster, n, nodes, kPages, 0));
  }
  for (auto& d : dsms) {
    if (!d->Start().ok()) {
      std::printf("DSM start failed\n");
      return 1;
    }
  }
  constexpr uint32_t kPageSize = liteapp::LiteDsm::kPageSize;
  std::vector<uint8_t> buf(kPageSize);
  lt::Rng rng(77);
  constexpr int kReps = 300;

  // Cold random 4KB reads (reads mostly hit remote homes; node 0's cache is
  // cleared by re-reading distinct pages).
  uint64_t t0 = lt::NowNs();
  for (int i = 0; i < kReps; ++i) {
    uint64_t page = rng.NextBounded(kPages - 1);
    (void)dsms[0]->Read(page * kPageSize, buf.data(), kPageSize);
  }
  double random_us = static_cast<double>(lt::NowNs() - t0) / kReps / 1000.0;

  // Sequential reads (after the random pass many pages are cached).
  t0 = lt::NowNs();
  for (int i = 0; i < kReps; ++i) {
    (void)dsms[0]->Read((static_cast<uint64_t>(i) % (kPages - 1)) * kPageSize, buf.data(),
                        kPageSize);
  }
  double seq_us = static_cast<double>(lt::NowNs() - t0) / kReps / 1000.0;

  // Sync: acquire 10 pages, dirty them, release (paper: begin + commit).
  constexpr int kSyncReps = 50;
  constexpr uint32_t kSyncBytes = 10 * kPageSize;
  uint64_t acquire_total = 0;
  uint64_t release_total = 0;
  // Another node caches the range so release must invalidate.
  (void)dsms[1]->Read(0, buf.data(), kPageSize);
  for (int i = 0; i < kSyncReps; ++i) {
    t0 = lt::NowNs();
    (void)dsms[0]->Acquire(0, kSyncBytes);
    acquire_total += lt::NowNs() - t0;
    for (int page = 0; page < 10; ++page) {
      (void)dsms[0]->Write(static_cast<uint64_t>(page) * kPageSize, buf.data(), kPageSize);
    }
    t0 = lt::NowNs();
    (void)dsms[0]->Release(0, kSyncBytes);
    release_total += lt::NowNs() - t0;
  }

  benchlib::PrintFigure(
      "LITE-DSM latencies (4 nodes, 4KB pages; paper Sec 8.4)", "operation", "latency (us)",
      {"random_4K_read", "sequential_4K_read", "sync_begin_10pg", "sync_commit_10pg"},
      {benchlib::Series{
          "latency_us",
          {random_us, seq_us, static_cast<double>(acquire_total) / kSyncReps / 1000.0,
           static_cast<double>(release_total) / kSyncReps / 1000.0}}});
  for (auto& d : dsms) {
    d->Stop();
  }
  return 0;
}
