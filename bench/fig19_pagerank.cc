// Paper Fig. 19: PageRank runtime on 4 and 7 nodes — LITE-Graph,
// LITE-Graph-DSM, the Grappa-like DSM engine, and the PowerGraph-like
// IPoIB engine (4 compute threads per node, as in the paper).
#include "bench/benchlib.h"
#include "src/apps/dsm.h"
#include "src/apps/graph.h"
#include "src/apps/workloads.h"

int main() {
  // Scaled stand-in for the Twitter graph (see DESIGN.md substitutions).
  liteapp::SyntheticGraph graph = liteapp::GeneratePowerLawGraph(120000, 1'200'000, 0.8);
  liteapp::PageRankOptions options;
  options.iterations = 10;
  options.threads_per_node = 4;

  lt::SimParams p;
  p.node_phys_mem_bytes = 96ull << 20;

  benchlib::Series lite{"LITE-Graph", {}};
  benchlib::Series lite_dsm{"LITE-Graph-DSM", {}};
  benchlib::Series grappa{"Grappa", {}};
  benchlib::Series powergraph{"PowerGraph", {}};
  std::vector<std::string> xs;

  for (uint32_t nodes : {4u, 7u}) {
    xs.push_back(std::to_string(nodes) + "-node");
    {
      lite::LiteCluster cluster(nodes, p);
      lite.values.push_back(
          liteapp::LiteGraphPageRank(&cluster, graph, nodes, options).total_ns / 1e9);
    }
    {
      lite::LiteCluster cluster(nodes, p);
      lite_dsm.values.push_back(
          liteapp::LiteGraphDsmPageRank(&cluster, graph, nodes, options).total_ns / 1e9);
    }
    {
      lt::Cluster cluster(nodes, p);
      grappa.values.push_back(
          liteapp::GrappaPageRank(&cluster, graph, nodes, options).total_ns / 1e9);
      powergraph.values.push_back(
          liteapp::PowerGraphPageRank(&cluster, graph, nodes, options).total_ns / 1e9);
    }
  }
  benchlib::PrintFigure("Fig 19: PageRank runtime (10 iterations, 4 threads/node)", "config",
                        "seconds", xs, {lite, lite_dsm, grappa, powergraph});
  return 0;
}
