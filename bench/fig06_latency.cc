// Paper Fig. 6: write latency vs request size for TCP/IP (IPoIB), LITE
// user-level, LITE kernel-level, and native Verbs.
#include <thread>

#include "bench/benchlib.h"
#include "src/common/timing.h"
#include "src/lite/lite_cluster.h"
#include "src/node/node.h"

namespace {

constexpr int kReps = 300;

double VerbsWriteUs(lt::Cluster* cluster, uint32_t size) {
  static lt::Process* client = nullptr;
  static lt::Process* server = nullptr;
  static lt::Qp* q0 = nullptr;
  static lt::VerbsMr lmr, rmr;
  static lt::VirtAddr local = 0, remote = 0;
  if (client == nullptr) {
    client = cluster->node(0)->CreateProcess();
    server = cluster->node(1)->CreateProcess();
    local = *client->page_table().AllocVirt(64 << 10);
    remote = *server->page_table().AllocVirt(64 << 10);
    lmr = *client->verbs().RegisterMr(local, 64 << 10, lt::kMrAll);
    rmr = *server->verbs().RegisterMr(remote, 64 << 10, lt::kMrAll);
    q0 = client->verbs().CreateQp(lt::QpType::kRc, client->verbs().CreateCq(),
                                  client->verbs().CreateCq());
    lt::Qp* q1 = server->verbs().CreateQp(lt::QpType::kRc, server->verbs().CreateCq(),
                                          server->verbs().CreateCq());
    q0->Connect(1, q1->qpn());
    q1->Connect(0, q0->qpn());
  }
  uint64_t t0 = lt::NowNs();
  for (int i = 0; i < kReps; ++i) {
    lt::WorkRequest wr;
    wr.opcode = lt::WrOpcode::kWrite;
    wr.lkey = lmr.lkey;
    wr.local_addr = local;
    wr.length = size;
    wr.rkey = rmr.rkey;
    wr.remote_addr = remote;
    (void)client->verbs().ExecSync(q0, wr);
  }
  return static_cast<double>(lt::NowNs() - t0) / kReps / 1000.0;
}

double LiteWriteUs(lite::LiteCluster* cluster, lite::LiteClient* client, lite::Lh lh,
                   uint32_t size, lt::Histogram* per_op_us = nullptr) {
  std::vector<uint8_t> buf(size, 0x11);
  uint64_t t0 = lt::NowNs();
  for (int i = 0; i < kReps; ++i) {
    uint64_t op0 = lt::NowNs();
    (void)client->Write(lh, 0, buf.data(), size);
    if (per_op_us != nullptr) {
      per_op_us->Add(static_cast<double>(lt::NowNs() - op0) / 1000.0);
    }
  }
  return static_cast<double>(lt::NowNs() - t0) / kReps / 1000.0;
}

// TCP one-way latency measured as echo RTT / 2 (the qperf convention).
double TcpOneWayUs(lt::Cluster* cluster, uint32_t size) {
  auto pair = lt::TcpStack::ConnectPair(&cluster->node(0)->tcp(), &cluster->node(1)->tcp());
  std::thread echo([&] {
    std::vector<uint8_t> buf(size);
    for (int i = 0; i < kReps; ++i) {
      if (!pair.second->RecvExact(buf.data(), size).ok()) {
        return;
      }
      (void)pair.second->Send(buf.data(), size);
    }
  });
  std::vector<uint8_t> buf(size, 0x22);
  uint64_t t0 = lt::NowNs();
  for (int i = 0; i < kReps; ++i) {
    (void)pair.first->Send(buf.data(), size);
    (void)pair.first->RecvExact(buf.data(), size);
  }
  double rtt_us = static_cast<double>(lt::NowNs() - t0) / kReps / 1000.0;
  echo.join();
  return rtt_us / 2.0;
}

}  // namespace

int main(int argc, char** argv) {
  benchlib::TelemetrySink sink = benchlib::TelemetrySink::FromArgs(argc, argv, "fig06_latency");
  benchlib::TraceSink trace = benchlib::TraceSink::FromArgs(argc, argv);
  std::vector<uint32_t> sizes = {8, 64, 512, 4096, 32768};
  lt::SimParams p;
  p.node_phys_mem_bytes = 64ull << 20;
  lt::Cluster verbs_cluster(2, p);
  lite::LiteCluster lite_cluster(2, p);
  if (sink.enabled()) {
    lite_cluster.EnableTracing(/*sample_every=*/16);
  }
  if (trace.enabled()) {
    lite_cluster.EnableTracing(/*sample_every=*/1);
  }

  auto user = lite_cluster.CreateClient(0, /*kernel_level=*/false);
  auto kernel = lite_cluster.CreateClient(0, /*kernel_level=*/true);
  lite::MallocOptions on1;
  on1.nodes = {1};
  auto lh = user->Malloc(64 << 10, "fig6_target", on1);

  // A second cluster with the per-CPU submission rings armed: the user-level
  // client's steady-state op elides the crossing behind the hot doorbell.
  lt::SimParams ring_p = p;
  ring_p.lite_ring_enable = true;
  lite::LiteCluster ring_cluster(2, ring_p);
  auto ring_user = ring_cluster.CreateClient(0, /*kernel_level=*/false);
  auto ring_lh = ring_user->Malloc(64 << 10, "fig6_target", on1);

  benchlib::Series tcp{"TCP/IP", {}};
  benchlib::Series lite_user{"LITE_write", {}};
  benchlib::Series lite_ring{"LITE_write_ring", {}};
  benchlib::Series lite_kernel{"LITE_write_KL", {}};
  benchlib::Series verbs{"Verbs_write", {}};
  std::vector<std::string> xs;
  lt::Histogram lite_64b_us;  // Per-op spread behind the 64B LITE_write mean.
  for (uint32_t size : sizes) {
    xs.push_back(benchlib::HumanBytes(size));
    tcp.values.push_back(TcpOneWayUs(&verbs_cluster, size));
    lite_user.values.push_back(LiteWriteUs(&lite_cluster, user.get(), *lh, size,
                                           size == 64 ? &lite_64b_us : nullptr));
    // One warm-up op absorbs the cold doorbell so the series shows the
    // steady-state (hot-ring) latency.
    (void)LiteWriteUs(&ring_cluster, ring_user.get(), *ring_lh, size);
    lite_ring.values.push_back(LiteWriteUs(&ring_cluster, ring_user.get(), *ring_lh, size));
    lite_kernel.values.push_back(LiteWriteUs(&lite_cluster, kernel.get(), *lh, size));
    verbs.values.push_back(VerbsWriteUs(&verbs_cluster, size));
    sink.AddSnapshot("LITE_write", xs.back(), lite_cluster.instance(0)->StatSnapshot());
  }
  benchlib::PrintFigure("Fig 6: write latency vs size", "size", "latency (us)", xs,
                        {tcp, lite_user, lite_ring, lite_kernel, verbs});
  benchlib::PrintLatencyStats("LITE_write 64B per-op (us)", lite_64b_us);
  sink.SetClusterDump(lite_cluster.DumpTelemetryJson());
  sink.WriteFile();
  trace.Export(lite_cluster);
  return 0;
}
