// Paper Fig. 13: average CPU time per RPC request under the Facebook
// distribution, as the inter-arrival time is amplified 1x..8x. HERD and
// FaSST busy-poll through idle gaps, so their per-request CPU grows with the
// gap; LITE's adaptive spin-then-sleep threads stay cheap.
#include "bench/benchlib.h"
#include "bench/rpc_common.h"
#include "src/apps/workloads.h"
#include "src/baselines/fasst_rpc.h"
#include "src/baselines/herd_rpc.h"
#include "src/common/timing.h"

namespace {

constexpr int kRequests = 1500;

// Issues kRequests with Facebook-shaped sizes and inter-arrival gaps; calls
// `call(in, in_len, reply_len)` for each.
template <typename CallFn>
void DriveWorkload(double amplification, const CallFn& call) {
  liteapp::FacebookKvSampler sampler(7);
  std::vector<uint8_t> in(4096);
  for (int i = 0; i < kRequests; ++i) {
    uint32_t key = std::min<uint32_t>(sampler.NextKeySize(), 4092);
    uint32_t value = std::min<uint32_t>(sampler.NextValueSize(), 8 << 10);
    std::memcpy(in.data(), &value, 4);
    call(in.data(), key + 4, value);
    lt::IdleFor(sampler.NextInterArrivalNs(amplification));
  }
}

}  // namespace

int main() {
  std::vector<double> factors = {1, 2, 4, 8};
  lt::SimParams p;
  p.node_phys_mem_bytes = 64ull << 20;

  benchlib::Series herd{"HERD", {}};
  benchlib::Series fasst{"FaSST", {}};
  benchlib::Series lite{"LITE", {}};
  std::vector<std::string> xs;

  for (double factor : factors) {
    xs.push_back(std::to_string(static_cast<int>(factor)) + "x");

    // ---- LITE: server worker CPU + the shared poll thread's CPU. ----
    {
      lite::LiteCluster cluster(2, p);
      uint64_t poll0 = cluster.instance(1)->poll_thread_cpu_ns();
      uint64_t server_cpu;
      {
        benchrpc::LiteSizeServer server(&cluster, 1, 42, 2);
        auto client = cluster.CreateClient(0);
        std::vector<uint8_t> out(16 << 10);
        uint32_t out_len;
        DriveWorkload(factor, [&](const uint8_t* in, uint32_t in_len, uint32_t) {
          (void)client->Rpc(1, 42, in, in_len, out.data(), static_cast<uint32_t>(out.size()),
                            &out_len);
        });
        server_cpu = server.server_cpu_ns();
      }
      uint64_t total = server_cpu + (cluster.instance(1)->poll_thread_cpu_ns() - poll0);
      lite.values.push_back(static_cast<double>(total) / kRequests / 1000.0);
    }

    // ---- HERD: busy-polls client regions. ----
    {
      lt::Cluster cluster(2, p);
      liteapp::HerdServer server(&cluster, 1, 16 << 10, benchrpc::SizeHandler());
      auto client = *server.AttachClient(0);
      server.Start(1);
      std::vector<uint8_t> out(16 << 10);
      uint32_t out_len;
      DriveWorkload(factor, [&](const uint8_t* in, uint32_t in_len, uint32_t) {
        (void)client->Call(in, in_len, out.data(), static_cast<uint32_t>(out.size()), &out_len);
      });
      server.Stop();
      herd.values.push_back(static_cast<double>(server.server_cpu_ns()) / kRequests / 1000.0);
    }

    // ---- FaSST: master thread busy-polls the recv CQ. ----
    {
      lt::Cluster cluster(2, p);
      liteapp::FasstServer server(&cluster, 1, 16 << 10, benchrpc::SizeHandler());
      auto client = *server.AttachClient(0);
      server.Start();
      std::vector<uint8_t> out(16 << 10);
      uint32_t out_len;
      DriveWorkload(factor, [&](const uint8_t* in, uint32_t in_len, uint32_t) {
        (void)client->Call(in, in_len, out.data(), static_cast<uint32_t>(out.size()), &out_len);
      });
      server.Stop();
      fasst.values.push_back(static_cast<double>(server.server_cpu_ns()) / kRequests / 1000.0);
    }
  }
  benchlib::PrintFigure(
      "Fig 13: server CPU time per request vs inter-arrival amplification (Facebook KV)",
      "amplification", "CPU us/request", xs, {herd, fasst, lite});
  return 0;
}
