// Shared helpers for the RPC figure benches (Figs. 10-13): servers that
// reply with a caller-requested number of bytes, for LITE and each baseline.
#ifndef BENCH_RPC_COMMON_H_
#define BENCH_RPC_COMMON_H_

#include <atomic>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "src/baselines/base_util.h"
#include "src/common/timing.h"
#include "src/lite/lite_cluster.h"

namespace benchrpc {

// Request payload: first 4 bytes = desired reply length; rest is filler.
inline uint32_t WantedLen(const uint8_t* in, uint32_t in_len) {
  uint32_t want = 0;
  if (in_len >= 4) {
    std::memcpy(&want, in, 4);
  }
  return want;
}

inline liteapp::RpcHandler SizeHandler() {
  return [](const uint8_t* in, uint32_t in_len, uint8_t* out, uint32_t out_max) -> uint32_t {
    uint32_t want = std::min(WantedLen(in, in_len), out_max);
    std::memset(out, 0x6b, want);
    return want;
  };
}

// LITE-side size server: `threads` worker threads on `node` (the paper lets
// user threads execute RPC functions, unlike FaSST's inline dispatcher).
class LiteSizeServer {
 public:
  LiteSizeServer(lite::LiteCluster* cluster, lt::NodeId node, lite::RpcFuncId func,
                 int threads = 2, bool kernel_level = true)
      : func_(func) {
    for (int i = 0; i < threads; ++i) {
      clients_.push_back(cluster->CreateClient(node, kernel_level));
    }
    (void)clients_[0]->RegisterRpc(func_);
    for (auto& client : clients_) {
      threads_.emplace_back([this, c = client.get()] { Serve(c); });
    }
  }

  ~LiteSizeServer() {
    stopping_.store(true);
    for (auto& t : threads_) {
      t.join();
    }
  }

  uint64_t server_cpu_ns() const { return cpu_ns_.load(); }

 private:
  void Serve(lite::LiteClient* client) {
    std::vector<uint8_t> reply(16384, 0x6b);
    while (!stopping_.load()) {
      uint64_t c0 = lt::ThreadCpuNs();
      auto inc = client->RecvRpc(func_, 50'000'000);
      if (inc.ok()) {
        uint32_t want = std::min<uint32_t>(WantedLen(inc->data.data(),
                                                     static_cast<uint32_t>(inc->data.size())),
                                           static_cast<uint32_t>(reply.size()));
        (void)client->ReplyRpc(inc->token, reply.data(), want);
      }
      cpu_ns_.fetch_add(lt::ThreadCpuNs() - c0);
    }
  }

  const lite::RpcFuncId func_;
  std::vector<std::unique_ptr<lite::LiteClient>> clients_;
  std::vector<std::thread> threads_;
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> cpu_ns_{0};
};

}  // namespace benchrpc

#endif  // BENCH_RPC_COMMON_H_
