// Failure-recovery characterization (no paper figure): how fast the liveness
// service detects a crashed node, how fast service resumes after restart,
// and what transparent RPC retry costs under a lossy fabric.
//
// Output (greppable, same style as the figure benches):
//   detection_ms     keepalive lease expiry -> client marks peer dead
//   recovery_ms      restart -> first successful RPC
//   clean/lossy RPC  mean latency with and without 1% drop + retry
//   counter table    retries / dedups / replays / reconnects
#include <atomic>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "bench/benchlib.h"
#include "src/common/timing.h"
#include "src/lite/lite_cluster.h"

namespace {

constexpr lite::RpcFuncId kEchoFunc = 7;

class EchoServer {
 public:
  EchoServer(lite::LiteCluster* cluster, lt::NodeId node)
      : client_(cluster->CreateClient(node, /*kernel_level=*/true)) {
    (void)client_->RegisterRpc(kEchoFunc);
    thread_ = std::thread([this] { Run(); });
  }
  ~EchoServer() {
    stopping_.store(true);
    thread_.join();
  }

 private:
  void Run() {
    while (!stopping_.load()) {
      auto inc = client_->RecvRpc(kEchoFunc, 20'000'000);
      if (!inc.ok()) {
        continue;
      }
      (void)client_->ReplyRpc(inc->token, inc->data.data(),
                              static_cast<uint32_t>(inc->data.size()));
    }
  }

  std::unique_ptr<lite::LiteClient> client_;
  std::atomic<bool> stopping_{false};
  std::thread thread_;
};

double MeanRpcUs(lite::LiteClient* c, lt::NodeId server, int reps) {
  char out[64];
  uint32_t out_len = 0;
  uint64_t t0 = lt::NowNs();
  for (int i = 0; i < reps; ++i) {
    (void)c->Rpc(server, kEchoFunc, "ping", 4, out, sizeof(out), &out_len);
  }
  return static_cast<double>(lt::NowNs() - t0) / reps / 1000.0;
}

}  // namespace

int main(int argc, char** argv) {
  benchlib::TraceSink trace = benchlib::TraceSink::FromArgs(argc, argv);
  lt::SimParams p = lt::SimParams::FastForTests();
  p.lite_rpc_timeout_ns = 25'000'000;
  p.lite_rpc_max_retries = 5;
  p.lite_keepalive_interval_ns = 2'000'000;  // 2 ms (real time)
  p.lite_lease_timeout_ns = 10'000'000;      // 10 ms lease
  lite::LiteCluster cluster(3, p);
  if (trace.enabled()) {
    cluster.EnableTracing(1);
  }
  cluster.faults().Reseed(0xbe9c4);
  const lt::NodeId kServer = 1;
  EchoServer server(&cluster, kServer);
  auto client = cluster.CreateClient(2);

  // Baseline: clean-path RPC latency (virtual time).
  const double clean_us = MeanRpcUs(client.get(), kServer, 400);

  // Lossy fabric: 1% drop, retries mask it; latency inflation = retry cost.
  lt::LinkFaultRule lossy;
  lossy.drop_p = 0.01;
  cluster.faults().SetDefaultRule(lossy);
  const double lossy_us = MeanRpcUs(client.get(), kServer, 400);
  cluster.faults().ClearAllRules();

  // Crash: time from CrashNode to the client's liveness verdict (real ms,
  // keepalives run on the host clock), then restart to first served RPC.
  const uint64_t crash_real = lt::RealNowNs();
  cluster.CrashNode(kServer);
  while (!cluster.instance(2)->PeerDead(kServer)) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  const double detection_ms =
      static_cast<double>(lt::RealNowNs() - crash_real) / 1e6;

  const uint64_t restart_real = lt::RealNowNs();
  cluster.RestartNode(kServer);
  char out[64];
  uint32_t out_len = 0;
  while (true) {
    if (client->Rpc(kServer, kEchoFunc, "up?", 3, out, sizeof(out), &out_len).ok()) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  const double recovery_ms =
      static_cast<double>(lt::RealNowNs() - restart_real) / 1e6;

  benchlib::PrintFigure(
      "Fault recovery (keepalive 2 ms, lease 10 ms, 25 ms RPC timeout)", "metric", "value",
      {"rpc_clean_us", "rpc_1pct_drop_us", "detection_ms", "recovery_ms"},
      {{"value", {clean_us, lossy_us, detection_ms, recovery_ms}}});

  std::printf("\n== Recovery counters ==\n");
  struct Row {
    const char* name;
    lt::NodeId node;
  };
  const Row rows[] = {
      {"lite.rpc.retries", 2},          {"lite.rpc.dead_fast_fail", 2},
      {"lite.qp.reconnects", 2},        {"lite.rpc.dup_requests", kServer},
      {"lite.rpc.replayed_replies", kServer}, {"lite.liveness.marked_dead", 2},
      {"lite.liveness.revived", 2},     {"faults.drops_total", 0},
      {"faults.crash_drops", 0},
  };
  for (const Row& r : rows) {
    std::printf("%-28s node%-2u %12lld\n", r.name, r.node,
                static_cast<long long>(cluster.instance(r.node)->Stat(r.name)));
  }
  trace.Export(cluster);
  return 0;
}
