// Paper Fig. 4: RDMA write latency vs number of (L)MRs.
// Each (L)MR is 4 KB; each write is 64 B at a randomly chosen region.
// Native Verbs thrashes the RNIC's MPT/MTT caches past ~100 MRs; LITE's one
// global physical MR keeps latency flat.
#include <cstdio>

#include "bench/benchlib.h"
#include "src/common/rng.h"
#include "src/common/timing.h"
#include "src/lite/lite_cluster.h"
#include "src/node/node.h"

namespace {

constexpr int kWritesPerPoint = 1500;

double VerbsLatencyUs(size_t num_mrs, benchlib::TelemetrySink* sink) {
  lt::SimParams p;
  p.node_phys_mem_bytes = 160ull << 20;
  lt::Cluster cluster(2, p);
  lt::Process* client = cluster.node(0)->CreateProcess();
  lt::Process* server = cluster.node(1)->CreateProcess();

  // Server side: one large heap; register num_mrs 4KB MRs at distinct pages
  // (cycling if the heap is smaller than the MR count).
  const size_t heap_pages = 24 * 1024;  // 96 MB.
  auto heap = server->page_table().AllocVirt(heap_pages * 4096);
  std::vector<lt::VerbsMr> mrs;
  mrs.reserve(num_mrs);
  for (size_t i = 0; i < num_mrs; ++i) {
    auto mr = server->verbs().RegisterMr(*heap + (i % heap_pages) * 4096, 4096, lt::kMrAll);
    mrs.push_back(*mr);
  }

  auto local = client->page_table().AllocVirt(4096);
  auto lmr = *client->verbs().RegisterMr(*local, 4096, lt::kMrAll);
  lt::Qp* q0 = client->verbs().CreateQp(lt::QpType::kRc, client->verbs().CreateCq(),
                                        client->verbs().CreateCq());
  lt::Qp* q1 = server->verbs().CreateQp(lt::QpType::kRc, server->verbs().CreateCq(),
                                        server->verbs().CreateCq());
  q0->Connect(1, q1->qpn());
  q1->Connect(0, q0->qpn());

  lt::Rng rng(1234);
  uint64_t t0 = lt::NowNs();
  for (int i = 0; i < kWritesPerPoint; ++i) {
    const lt::VerbsMr& target = mrs[rng.NextBounded(mrs.size())];
    lt::WorkRequest wr;
    wr.opcode = lt::WrOpcode::kWrite;
    wr.lkey = lmr.lkey;
    wr.local_addr = *local;
    wr.length = 64;
    wr.rkey = target.rkey;
    wr.remote_addr = target.addr;
    (void)client->verbs().ExecSync(q0, wr);
  }
  // The server node's RNIC resolves every remote write: its MPT/MTT caches
  // are the ones that thrash past ~128 MRs (the paper's Fig. 4 cliff).
  sink->AddSnapshot("Verbs_write_us", std::to_string(num_mrs),
                    cluster.node(1)->telemetry().registry().Snapshot());
  return static_cast<double>(lt::NowNs() - t0) / kWritesPerPoint / 1000.0;
}

double LiteLatencyUs(size_t num_lmrs, benchlib::TelemetrySink* sink) {
  lt::SimParams p;
  p.node_phys_mem_bytes = 192ull << 20;
  lite::LiteCluster cluster(2, p);
  // The LMRs live on node 0 (which is also the manager: allocation loops
  // stay loopback-fast); the writer runs on node 1.
  auto owner = cluster.CreateClient(0, /*kernel_level=*/true);
  size_t distinct = std::min<size_t>(num_lmrs, 4096);
  std::vector<lite::Lh> owner_lhs;
  for (size_t i = 0; i < distinct; ++i) {
    owner_lhs.push_back(*owner->Malloc(4096, "f4_" + std::to_string(i)));
  }
  // LITE keeps NO per-LMR state on the RNIC: beyond `distinct` handles the
  // remaining LMRs are represented by registry entries only (allocating all
  // 100K through the control plane adds nothing to the measured data path).
  auto writer = cluster.CreateClient(1);
  std::vector<lite::Lh> lhs;
  size_t mapped = std::min<size_t>(distinct, 1024);
  for (size_t i = 0; i < mapped; ++i) {
    lhs.push_back(*writer->Map("f4_" + std::to_string(i)));
  }
  char buf[64] = {1};
  lt::Rng rng(99);
  uint64_t t0 = lt::NowNs();
  for (int i = 0; i < kWritesPerPoint; ++i) {
    (void)writer->Write(lhs[rng.NextBounded(lhs.size())], 0, buf, sizeof(buf));
  }
  // All LMRs sit behind node 0's single global physical MR: one pinned MPT
  // entry no matter how many LMRs exist.
  sink->AddSnapshot("LITE_write_us", std::to_string(num_lmrs),
                    cluster.node(0)->telemetry().registry().Snapshot());
  return static_cast<double>(lt::NowNs() - t0) / kWritesPerPoint / 1000.0;
}

}  // namespace

int main(int argc, char** argv) {
  benchlib::TelemetrySink sink = benchlib::TelemetrySink::FromArgs(argc, argv, "fig04_mr_count");
  std::vector<size_t> counts = {10, 100, 1000, 10000, 100000};
  benchlib::Series verbs{"Verbs_write_us", {}};
  benchlib::Series lite{"LITE_write_us", {}};
  std::vector<std::string> xs;
  for (size_t n : counts) {
    xs.push_back(std::to_string(n));
    verbs.values.push_back(VerbsLatencyUs(n, &sink));
    lite.values.push_back(LiteLatencyUs(n, &sink));
  }
  benchlib::PrintFigure("Fig 4: RDMA write latency vs number of (L)MRs (4KB regions, 64B writes)",
                        "num_MRs", "latency (us)", xs, {lite, verbs});
  sink.WriteFile();
  return 0;
}
