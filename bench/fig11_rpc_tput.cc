// Paper Fig. 11: RPC throughput (GB/s of reply payload) vs return size,
// with 1 and 16 concurrent clients: LITE, HERD, FaSST. FaSST's single
// inline dispatcher caps its 16-client throughput; LITE's user-thread
// execution model scales with server workers.
#include <functional>
#include <thread>

#include "bench/benchlib.h"
#include "bench/rpc_common.h"
#include "src/baselines/fasst_rpc.h"
#include "src/baselines/herd_rpc.h"
#include "src/common/timing.h"

namespace {

constexpr int kCallsPerClient = 400;

// Runs `clients` concurrent callers; returns GB/s of reply payload.
double RunClients(int clients, uint32_t reply_len,
                  const std::function<void(int, uint32_t)>& call_n_times_fn) {
  std::vector<uint64_t> ends(clients);
  uint64_t t0 = lt::NowNs();
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      lt::SyncClockTo(t0);
      call_n_times_fn(c, reply_len);
      ends[c] = lt::NowNs();
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  uint64_t end = t0;
  for (uint64_t e : ends) {
    end = std::max(end, e);
  }
  lt::SyncClockTo(end);
  double total_bytes = static_cast<double>(reply_len) * kCallsPerClient * clients;
  return total_bytes / static_cast<double>(end - t0);
}

}  // namespace

int main() {
  std::vector<uint32_t> sizes = {64, 512, 1024, 2048, 4096};
  lt::SimParams p;
  p.node_phys_mem_bytes = 96ull << 20;

  benchlib::Series lite16{"LITE-16", {}};
  benchlib::Series herd16{"HERD-16", {}};
  benchlib::Series fasst16{"FaSST-16", {}};
  benchlib::Series lite1{"LITE-1", {}};
  benchlib::Series herd1{"HERD-1", {}};
  benchlib::Series fasst1{"FaSST-1", {}};
  std::vector<std::string> xs;

  for (uint32_t size : sizes) {
    xs.push_back(benchlib::HumanBytes(size));

    // ---- LITE: 3 client nodes, 4 server worker threads. ----
    {
      lite::LiteCluster cluster(4, p);
      benchrpc::LiteSizeServer server(&cluster, 0, 41, 4);
      auto lite_call = [&](int c, uint32_t reply) {
        auto client = cluster.CreateClient(1 + static_cast<lt::NodeId>(c) % 3);
        uint8_t in[8] = {0};
        std::memcpy(in, &reply, 4);
        std::vector<uint8_t> out(reply + 64);
        uint32_t out_len;
        for (int i = 0; i < kCallsPerClient; ++i) {
          (void)client->Rpc(0, 41, in, 8, out.data(), static_cast<uint32_t>(out.size()),
                            &out_len);
        }
      };
      lite16.values.push_back(RunClients(16, size, lite_call));
      lite1.values.push_back(RunClients(1, size, lite_call));
    }

    // ---- HERD: per-client regions, 4 polling server threads. ----
    {
      lt::Cluster cluster(4, p);
      liteapp::HerdServer server(&cluster, 0, 16 << 10, benchrpc::SizeHandler());
      std::vector<liteapp::HerdClient*> herd_clients;
      for (int c = 0; c < 16; ++c) {
        herd_clients.push_back(*server.AttachClient(1 + static_cast<lt::NodeId>(c) % 3));
      }
      server.Start(4);
      auto herd_call = [&](int c, uint32_t reply) {
        uint8_t in[8] = {0};
        std::memcpy(in, &reply, 4);
        std::vector<uint8_t> out(reply + 64);
        uint32_t out_len;
        for (int i = 0; i < kCallsPerClient; ++i) {
          (void)herd_clients[c]->Call(in, 8, out.data(), static_cast<uint32_t>(out.size()),
                                      &out_len);
        }
      };
      herd16.values.push_back(RunClients(16, size, herd_call));
      herd1.values.push_back(RunClients(1, size, herd_call));
      server.Stop();
    }

    // ---- FaSST: one master dispatcher thread (its design). ----
    {
      lt::Cluster cluster(4, p);
      liteapp::FasstServer server(&cluster, 0, 16 << 10, benchrpc::SizeHandler());
      std::vector<liteapp::FasstClient*> fasst_clients;
      for (int c = 0; c < 16; ++c) {
        fasst_clients.push_back(*server.AttachClient(1 + static_cast<lt::NodeId>(c) % 3));
      }
      server.Start();
      auto fasst_call = [&](int c, uint32_t reply) {
        uint8_t in[8] = {0};
        std::memcpy(in, &reply, 4);
        std::vector<uint8_t> out(reply + 64);
        uint32_t out_len;
        for (int i = 0; i < kCallsPerClient; ++i) {
          (void)fasst_clients[c]->Call(in, 8, out.data(), static_cast<uint32_t>(out.size()),
                                       &out_len);
        }
      };
      fasst16.values.push_back(RunClients(16, size, fasst_call));
      fasst1.values.push_back(RunClients(1, size, fasst_call));
      server.Stop();
    }
  }
  benchlib::PrintFigure("Fig 11: RPC throughput vs return size (16 and 1 clients, 8B input)",
                        "return_size", "GB/s", xs,
                        {lite16, herd16, fasst16, herd1, fasst1, lite1});
  return 0;
}
