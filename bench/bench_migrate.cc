// Live-migration characterization (ISSUE: epoch-fenced ownership): moves a
// 4 MB LMR between nodes while writers keep issuing open traffic against it,
// and measures
//   * blocked-op downtime — the epoch-fence span, the only window where ops
//     stop completing (they park at the fence instead of failing, so the
//     whole outage is bounded by it) — against a budget of 10x the
//     single-piece write RTT;
//   * the latency/throughput dip around the migration (before / during /
//     after phases), including the worst op latency caused by writes
//     queueing behind the bulk mirror copy on the shared link;
//   * coordinator-side copy work (mirror bytes, converge rounds, dirty
//     re-copy bytes).
// BENCH_migrate.json is the machine-readable regression anchor.
#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/benchlib.h"
#include "src/common/histogram.h"
#include "src/common/timing.h"
#include "src/lite/lite_cluster.h"

namespace {

constexpr uint64_t kLmrBytes = 4ull << 20;  // >= 4 MB per the acceptance bar.
constexpr uint64_t kWriteBytes = 4096;
constexpr int kWriters = 4;
constexpr int kRttReps = 300;
// Per-op think time: keeps the writers' offered load well under the link
// bandwidth so virtual queueing doesn't build up open-loop.
constexpr uint64_t kThinkNs = 20'000;

// One writer op: virtual latency plus the real-time interval it spanned (the
// real interval is what classifies it against the migration window — virtual
// clocks are per-thread, so the coordinator's fence timestamps don't order
// against writer timestamps directly).
struct OpSample {
  double virt_us = 0;
  uint64_t real0 = 0;
  uint64_t real1 = 0;
  uint64_t done_vns = 0;
};

// Aggregated per-phase view of the writer op stream.
struct PhaseView {
  lt::Histogram op_us;
  uint64_t first_ns = ~0ull;  // Virtual completion times (min/max over ops).
  uint64_t last_ns = 0;
  uint64_t ops = 0;

  void Add(const OpSample& s) {
    op_us.Add(s.virt_us);
    if (s.done_vns < first_ns) {
      first_ns = s.done_vns;
    }
    if (s.done_vns > last_ns) {
      last_ns = s.done_vns;
    }
    ++ops;
  }
  double WritesPerMs() const {
    if (ops < 2 || last_ns <= first_ns) {
      return 0.0;
    }
    return static_cast<double>(ops - 1) / (static_cast<double>(last_ns - first_ns) / 1e6);
  }
};

double MeanWriteUs(lite::LiteClient* c, lite::Lh lh, uint32_t size, int reps) {
  std::vector<uint8_t> buf(size, 0x5a);
  uint64_t t0 = lt::NowNs();
  for (int i = 0; i < reps; ++i) {
    (void)c->Write(lh, 0, buf.data(), size);
  }
  return static_cast<double>(lt::NowNs() - t0) / reps / 1000.0;
}

}  // namespace

int main(int argc, char** argv) {
  benchlib::TelemetrySink sink =
      benchlib::TelemetrySink::FromArgs(argc, argv, "bench_migrate", "BENCH_migrate.json");
  benchlib::TraceSink trace = benchlib::TraceSink::FromArgs(argc, argv);

  // Same fabric constants as fig06 so the RTT baseline is the figure's
  // single-piece write latency; enough phys mem for the LMR plus its
  // migrated copy and the quarantined source chunks.
  lt::SimParams p;
  p.node_phys_mem_bytes = 64ull << 20;
  lite::LiteCluster cluster(3, p);
  if (trace.enabled()) {
    cluster.EnableTracing(1);
  }

  auto coord = cluster.CreateClient(1, /*kernel_level=*/true);
  auto probe = cluster.CreateClient(2, /*kernel_level=*/true);

  lite::MallocOptions on1;
  on1.nodes = {1};
  auto lh = coord->Malloc(kLmrBytes, "mig_bench", on1);
  if (!lh.ok()) {
    std::fprintf(stderr, "malloc failed\n");
    return 1;
  }

  // Baseline: single-piece write RTT from the traffic node; the downtime
  // budget is 10x this (ISSUE acceptance).
  const double rtt_us = MeanWriteUs(probe.get(), *probe->Map("mig_bench"), 8, kRttReps);
  const double budget_us = 10.0 * rtt_us;

  // Open write traffic: kWriters threads on node 2 (each with its own
  // client), full speed, 4 KB writes walking disjoint stripes of the LMR.
  // Several ops are always in flight in real time, so some overlap every
  // migration stage (mirror / converge / fence) and writes land in the
  // dirty-interval log for converge to chase.
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> total_ops{0};
  const uint64_t kInf = ~0ull;
  std::atomic<uint64_t> mig_r0{kInf};  // Real-time migration window.
  std::atomic<uint64_t> mig_r1{kInf};
  std::vector<std::vector<OpSample>> samples(kWriters);
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      auto client = cluster.CreateClient(2, /*kernel_level=*/true);
      auto wlh = client->Map("mig_bench");
      if (!wlh.ok()) {
        return;
      }
      std::vector<uint8_t> buf(kWriteBytes, static_cast<uint8_t>(0xa0 + w));
      const uint64_t stripe = kLmrBytes / kWriters;
      uint64_t off = static_cast<uint64_t>(w) * stripe;
      samples[w].reserve(1 << 16);
      while (!stop.load(std::memory_order_acquire)) {
        OpSample s;
        const uint64_t t0 = lt::NowNs();
        s.real0 = lt::RealNowNs();
        if (!client->Write(*wlh, off, buf.data(), kWriteBytes).ok()) {
          break;
        }
        s.real1 = lt::RealNowNs();
        s.done_vns = lt::NowNs();
        s.virt_us = static_cast<double>(s.done_vns - t0) / 1000.0;
        samples[w].push_back(s);
        total_ops.fetch_add(1, std::memory_order_relaxed);
        lt::SpinFor(kThinkNs);
        off += kWriteBytes;
        if (off >= static_cast<uint64_t>(w + 1) * stripe) {
          off = static_cast<uint64_t>(w) * stripe;
        }
      }
    });
  }

  // Warm-up window, then migrate 1 -> 2 under the open traffic.
  while (total_ops.load(std::memory_order_relaxed) < 500) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  lite::LiteInstance::MigrateStats stats;
  mig_r0.store(lt::RealNowNs(), std::memory_order_release);
  lt::Status st = coord->Migrate("mig_bench", 2, &stats);
  mig_r1.store(lt::RealNowNs(), std::memory_order_release);
  const uint64_t cooldown_floor = total_ops.load(std::memory_order_relaxed) + 500;
  if (!st.ok()) {
    std::fprintf(stderr, "migrate failed: %s\n", std::string(st.message()).c_str());
    stop.store(true, std::memory_order_release);
    for (auto& t : writers) {
      t.join();
    }
    return 1;
  }

  // Cool-down window on the new home, then stop.
  while (total_ops.load(std::memory_order_relaxed) < cooldown_floor) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : writers) {
    t.join();
  }

  // Classify every op by its real-time overlap with the Migrate call.
  const uint64_t r0 = mig_r0.load(std::memory_order_acquire);
  const uint64_t r1 = mig_r1.load(std::memory_order_acquire);
  PhaseView views[3];
  for (const auto& per_writer : samples) {
    for (const OpSample& s : per_writer) {
      if (s.real1 <= r0) {
        views[0].Add(s);
      } else if (s.real0 >= r1) {
        views[2].Add(s);
      } else {
        views[1].Add(s);
      }
    }
  }

  // Blocked-op downtime: the epoch fence is the only window where ops stop
  // completing — an op reaching the fence parks and resumes at commit, so no
  // op blocks longer than the fence span (parked_ops below shows ops really
  // did park). The worst migration-overlapping op latency is reported
  // separately: it is writes queueing behind the bulk copy on the shared
  // link (bandwidth interference, present the whole mirror phase), not an
  // availability gap.
  const lt::HistogramStats before = views[0].op_us.Snapshot();
  const lt::HistogramStats during = views[1].op_us.Snapshot();
  const lt::HistogramStats after = views[2].op_us.Snapshot();
  const double fence_us =
      static_cast<double>(stats.commit_ns - stats.fence_start_ns) / 1000.0;
  const double worst_op_us = during.count > 0 ? during.max : 0.0;
  const double downtime_us = fence_us;
  const bool pass = downtime_us < budget_us;

  benchlib::PrintFigure(
      "Live migration of a 4MB LMR under open 4KB write traffic (1 -> 2)", "phase",
      "latency (us) / writes per ms",
      {"before", "during", "after"},
      {{"ops", {static_cast<double>(views[0].ops), static_cast<double>(views[1].ops),
                static_cast<double>(views[2].ops)}},
       {"write_mean_us", {before.mean, during.mean, after.mean}},
       {"write_p99_us",
        {before.Percentile(99), during.count > 0 ? during.Percentile(99) : 0.0,
         after.Percentile(99)}},
       {"write_max_us", {before.max, worst_op_us, after.max}},
       {"writes_per_ms",
        {views[0].WritesPerMs(), views[1].WritesPerMs(), views[2].WritesPerMs()}}});

  std::printf("\n== Migration cost (coordinator view) ==\n");
  std::printf("bytes_copied   %12llu\n", static_cast<unsigned long long>(stats.bytes_copied));
  std::printf("dirty_bytes    %12llu\n", static_cast<unsigned long long>(stats.dirty_bytes));
  std::printf("rounds         %12llu\n", static_cast<unsigned long long>(stats.rounds));
  std::printf("parked_ops     %12lld\n",
              static_cast<long long>(cluster.instance(1)->Stat("lite.migrate.parked_ops")));
  std::printf("\n== Downtime budget ==\n");
  std::printf("rtt_us         %12.3f\n", rtt_us);
  std::printf("budget_us      %12.3f   (10x RTT)\n", budget_us);
  std::printf("downtime_us    %12.3f   (epoch fence span: max blocked-op wait)\n", downtime_us);
  std::printf("worst_op_us    %12.3f   (queueing behind the mirror copy)\n", worst_op_us);
  std::printf("verdict        %12s\n", pass ? "PASS" : "FAIL");

  // The x label carries the measured numbers so the JSON anchor records
  // them (same idiom as BENCH_multichunk.json).
  char label[160];
  std::snprintf(label, sizeof(label), "downtime_us=%.3f;budget_us=%.3f;fence_us=%.3f;pass=%d",
                downtime_us, budget_us, fence_us, pass ? 1 : 0);
  sink.AddSnapshot("migrate-4MB-open-writes", label, cluster.instance(1)->StatSnapshot());
  sink.SetClusterDump(cluster.DumpTelemetryJson());
  sink.WriteFile();
  trace.Export(cluster);
  return pass ? 0 : 1;
}
