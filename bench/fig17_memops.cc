// Paper Fig. 17: latency of LITE's extended memory-like operations
// (LT_malloc, LT_memset, LT_memcpy remote + local, LT_memmove) vs size,
// with native Verbs write for reference.
#include "bench/benchlib.h"
#include "src/common/timing.h"
#include "src/lite/lite_cluster.h"
#include "src/node/node.h"

namespace {

constexpr int kReps = 50;

}  // namespace

int main() {
  std::vector<uint64_t> sizes = {1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20};
  lt::SimParams p;
  p.node_phys_mem_bytes = 256ull << 20;
  lite::LiteCluster cluster(3, p);
  auto client = cluster.CreateClient(0, true);

  benchlib::Series verbs_write{"Verbs_write", {}};
  benchlib::Series memcpy_remote{"LT_memcpy", {}};
  benchlib::Series memcpy_local{"LT_memcpy_local", {}};
  benchlib::Series memset_series{"LT_memset", {}};
  benchlib::Series malloc_series{"LT_malloc", {}};
  std::vector<std::string> xs;

  // Reference Verbs path.
  lt::Process* vclient = cluster.node(0)->CreateProcess();
  lt::Process* vserver = cluster.node(1)->CreateProcess();
  auto vlocal = *vclient->page_table().AllocVirt(1 << 20);
  auto vremote = *vserver->page_table().AllocVirt(1 << 20);
  auto vlmr = *vclient->verbs().RegisterMr(vlocal, 1 << 20, lt::kMrAll);
  auto vrmr = *vserver->verbs().RegisterMr(vremote, 1 << 20, lt::kMrAll);
  lt::Qp* vq0 = vclient->verbs().CreateQp(lt::QpType::kRc, vclient->verbs().CreateCq(),
                                          vclient->verbs().CreateCq());
  lt::Qp* vq1 = vserver->verbs().CreateQp(lt::QpType::kRc, vserver->verbs().CreateCq(),
                                          vserver->verbs().CreateCq());
  vq0->Connect(1, vq1->qpn());
  vq1->Connect(0, vq0->qpn());

  int tag = 0;
  for (uint64_t size : sizes) {
    xs.push_back(benchlib::HumanBytes(size));

    // Source and destinations: src on node 1, remote dst on node 2, local
    // (to the src node) dst on node 1.
    lite::MallocOptions on1;
    on1.nodes = {1};
    lite::MallocOptions on2;
    on2.nodes = {2};
    auto src = *client->Malloc(size, "f17src_" + std::to_string(size), on1);
    auto dst_remote = *client->Malloc(size, "f17dr_" + std::to_string(size), on2);
    auto dst_local = *client->Malloc(size, "f17dl_" + std::to_string(size), on1);

    uint64_t t0 = lt::NowNs();
    for (int i = 0; i < kReps; ++i) {
      lt::WorkRequest wr;
      wr.opcode = lt::WrOpcode::kWrite;
      wr.lkey = vlmr.lkey;
      wr.local_addr = vlocal;
      wr.length = size;
      wr.rkey = vrmr.rkey;
      wr.remote_addr = vremote;
      (void)vclient->verbs().ExecSync(vq0, wr);
    }
    verbs_write.values.push_back(static_cast<double>(lt::NowNs() - t0) / kReps / 1000.0);

    t0 = lt::NowNs();
    for (int i = 0; i < kReps; ++i) {
      (void)client->Memcpy(dst_remote, 0, src, 0, size);
    }
    memcpy_remote.values.push_back(static_cast<double>(lt::NowNs() - t0) / kReps / 1000.0);

    t0 = lt::NowNs();
    for (int i = 0; i < kReps; ++i) {
      (void)client->Memcpy(dst_local, 0, src, 0, size);
    }
    memcpy_local.values.push_back(static_cast<double>(lt::NowNs() - t0) / kReps / 1000.0);

    t0 = lt::NowNs();
    for (int i = 0; i < kReps; ++i) {
      (void)client->Memset(src, 0, 0x44, size);
    }
    memset_series.values.push_back(static_cast<double>(lt::NowNs() - t0) / kReps / 1000.0);

    t0 = lt::NowNs();
    std::vector<lite::Lh> allocated;
    for (int i = 0; i < kReps; ++i) {
      allocated.push_back(
          *client->Malloc(size, "f17m_" + std::to_string(tag++), on1));
    }
    malloc_series.values.push_back(static_cast<double>(lt::NowNs() - t0) / kReps / 1000.0);
    for (lite::Lh lh : allocated) {
      (void)client->Free(lh);
    }
  }
  benchlib::PrintFigure(
      "Fig 17: memory-like operation latency vs size (LT_memmove == LT_memcpy)", "size",
      "latency (us)", xs,
      {verbs_write, memcpy_remote, memcpy_local, memset_series, malloc_series});
  return 0;
}
