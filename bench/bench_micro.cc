// google-benchmark microbenchmarks of LITE's core primitives. All simulated
// costs live on the virtual clock, so every benchmark uses manual timing and
// reports virtual-time per operation. Before the registered benchmarks run,
// main() sweeps the async-memop window depth (1 -> 64) and writes the
// BENCH_async_depth.json telemetry sidecar as a perf-regression anchor.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <deque>
#include <thread>

#include "bench/benchlib.h"
#include "src/common/rng.h"
#include "src/common/timing.h"
#include "src/lite/lite_cluster.h"

namespace {

struct MicroEnv {
  MicroEnv() : cluster(2, Params()) {
    client = cluster.CreateClient(0, /*kernel_level=*/true);
    lite::MallocOptions on1;
    on1.nodes = {1};
    lh = *client->Malloc(1 << 20, "micro_target", on1);
    lock = *client->CreateLock("micro_lock");
  }
  static lt::SimParams Params() {
    lt::SimParams p;
    p.node_phys_mem_bytes = 64ull << 20;
    return p;
  }
  lite::LiteCluster cluster;
  std::unique_ptr<lite::LiteClient> client;
  lite::Lh lh;
  lite::LockId lock;
};

MicroEnv* Env() {
  static MicroEnv* env = new MicroEnv();
  return env;
}

void BM_LiteWrite(benchmark::State& state) {
  auto* env = Env();
  std::vector<uint8_t> buf(state.range(0), 0x2e);
  for (auto _ : state) {
    uint64_t t0 = lt::NowNs();
    benchmark::DoNotOptimize(
        env->client->Write(env->lh, 0, buf.data(), buf.size()));
    state.SetIterationTime(static_cast<double>(lt::NowNs() - t0) / 1e9);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_LiteWrite)->Arg(64)->Arg(4096)->Arg(65536)->UseManualTime();

void BM_LiteRead(benchmark::State& state) {
  auto* env = Env();
  std::vector<uint8_t> buf(state.range(0));
  for (auto _ : state) {
    uint64_t t0 = lt::NowNs();
    benchmark::DoNotOptimize(env->client->Read(env->lh, 0, buf.data(), buf.size()));
    state.SetIterationTime(static_cast<double>(lt::NowNs() - t0) / 1e9);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_LiteRead)->Arg(64)->Arg(4096)->Arg(65536)->UseManualTime();

void BM_LiteFetchAdd(benchmark::State& state) {
  auto* env = Env();
  for (auto _ : state) {
    uint64_t t0 = lt::NowNs();
    benchmark::DoNotOptimize(env->client->FetchAdd(env->lh, 0, 1));
    state.SetIterationTime(static_cast<double>(lt::NowNs() - t0) / 1e9);
  }
}
BENCHMARK(BM_LiteFetchAdd)->UseManualTime();

void BM_LiteLockUnlock(benchmark::State& state) {
  auto* env = Env();
  for (auto _ : state) {
    uint64_t t0 = lt::NowNs();
    (void)env->client->Lock(env->lock);
    (void)env->client->Unlock(env->lock);
    state.SetIterationTime(static_cast<double>(lt::NowNs() - t0) / 1e9);
  }
}
BENCHMARK(BM_LiteLockUnlock)->UseManualTime();

void BM_LiteMapUnmap(benchmark::State& state) {
  auto* env = Env();
  for (auto _ : state) {
    uint64_t t0 = lt::NowNs();
    auto lh = env->client->Map("micro_target");
    (void)env->client->Unmap(*lh);
    state.SetIterationTime(static_cast<double>(lt::NowNs() - t0) / 1e9);
  }
}
BENCHMARK(BM_LiteMapUnmap)->UseManualTime();


void BM_LiteRpc(benchmark::State& state) {
  static lite::LiteCluster* cluster = new lite::LiteCluster(2, MicroEnv::Params());
  static auto* server_client = cluster->CreateClient(1, true).release();
  static std::atomic<bool>* stop = new std::atomic<bool>(false);
  static std::thread* server = new std::thread([] {
    (void)server_client->RegisterRpc(60);
    while (!stop->load()) {
      auto inc = server_client->RecvRpc(60, 50'000'000);
      if (inc.ok()) {
        (void)server_client->ReplyRpc(inc->token, inc->data.data(),
                                      static_cast<uint32_t>(inc->data.size()));
      }
    }
  });
  (void)server;
  static auto* client = cluster->CreateClient(0, true).release();
  std::vector<uint8_t> in(state.range(0), 0x3c);
  std::vector<uint8_t> out(state.range(0) + 64);
  uint32_t out_len;
  for (auto _ : state) {
    uint64_t t0 = lt::NowNs();
    benchmark::DoNotOptimize(client->Rpc(1, 60, in.data(), static_cast<uint32_t>(in.size()),
                                         out.data(), static_cast<uint32_t>(out.size()),
                                         &out_len));
    state.SetIterationTime(static_cast<double>(lt::NowNs() - t0) / 1e9);
  }
}
BENCHMARK(BM_LiteRpc)->Arg(8)->Arg(512)->Arg(4096)->UseManualTime();

void BM_LiteBarrierPair(benchmark::State& state) {
  auto* env = Env();
  static std::atomic<uint64_t> round{0};
  // Partner thread mirrors our barrier arrivals.
  std::atomic<bool> stop{false};
  std::thread partner([&] {
    auto client = env->cluster.CreateClient(1, true);
    uint64_t r = 0;
    while (!stop.load()) {
      if (round.load() > r) {
        (void)client->Barrier("micro_b" + std::to_string(r), 2);
        ++r;
      } else {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
    }
  });
  for (auto _ : state) {
    uint64_t r = round.fetch_add(1);
    uint64_t t0 = lt::NowNs();
    (void)env->client->Barrier("micro_b" + std::to_string(r), 2);
    state.SetIterationTime(static_cast<double>(lt::NowNs() - t0) / 1e9);
  }
  stop.store(true);
  partner.join();
}
BENCHMARK(BM_LiteBarrierPair)->UseManualTime()->Iterations(200);

void BM_LiteWriteAsync(benchmark::State& state) {
  auto* env = Env();
  const int depth = static_cast<int>(state.range(0));
  std::vector<uint8_t> buf(64, 0x2e);
  std::deque<lite::MemopHandle> window;
  for (auto _ : state) {
    uint64_t t0 = lt::NowNs();
    auto h = env->client->WriteAsync(env->lh, 0, buf.data(), buf.size());
    if (h.ok()) {
      window.push_back(*h);
      if (window.size() >= static_cast<size_t>(depth)) {
        (void)env->client->Wait(window.front());
        window.pop_front();
      }
    }
    state.SetIterationTime(static_cast<double>(lt::NowNs() - t0) / 1e9);
  }
  (void)env->client->WaitAll();
  window.clear();
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_LiteWriteAsync)->Arg(1)->Arg(8)->Arg(64)->UseManualTime();

// Async-depth sweep: 64 B LT_write_async throughput vs window depth, each
// point on a fresh 2-node cluster. Emits one figure table plus a telemetry
// snapshot per depth (doorbell/signaling/inline counters) into the JSON
// sidecar so later PRs can regress against the whole pipelining curve.
void RunAsyncDepthSweep(benchlib::TelemetrySink* sink) {
  constexpr int kSweepOps = 4000;
  constexpr uint64_t kRegionBytes = 1 << 20;
  constexpr uint32_t kOpBytes = 64;
  const std::vector<int> depths = {1, 2, 4, 8, 16, 32, 64};
  benchlib::Series tput{"LT_write_async-64B", {}};
  benchlib::Series ring_tput{"LT_write_async-64B-ring", {}};
  std::vector<std::string> xs;
  // Two series per depth: the classic kernel-level issuer (no boundary at
  // all) and a user-level issuer on the per-CPU submission rings (ring.h),
  // whose only crossings are cold-start doorbells and sleep reaps.
  for (int depth : depths) {
    xs.push_back(std::to_string(depth));
    for (bool rings : {false, true}) {
      lt::SimParams p = MicroEnv::Params();
      p.lite_ring_enable = rings;
      lite::LiteCluster cluster(2, p);
      auto client = cluster.CreateClient(0, /*kernel_level=*/!rings);
      lite::MallocOptions on1;
      on1.nodes = {1};
      auto lh = *client->Malloc(kRegionBytes, "async_depth", on1);
      std::vector<uint8_t> buf(kOpBytes, 0x41);
      lt::Rng rng(17);
      std::deque<lite::MemopHandle> window;
      uint64_t t0 = lt::NowNs();
      for (int i = 0; i < kSweepOps; ++i) {
        auto h = client->WriteAsync(lh, rng.NextBounded(kRegionBytes - kOpBytes), buf.data(),
                                    kOpBytes);
        if (!h.ok()) {
          continue;
        }
        window.push_back(*h);
        if (window.size() >= static_cast<size_t>(depth)) {
          (void)client->Wait(window.front());
          window.pop_front();
        }
      }
      while (!window.empty()) {
        (void)client->Wait(window.front());
        window.pop_front();
      }
      uint64_t elapsed = lt::NowNs() - t0;
      (rings ? ring_tput : tput)
          .values.push_back(static_cast<double>(kSweepOps) * 1000.0 /
                            static_cast<double>(elapsed));
      sink->AddSnapshot(rings ? "LT_write_async-64B-ring" : "LT_write_async-64B",
                        std::to_string(depth), client->StatSnapshot());
    }
  }
  benchlib::PrintFigure("Async depth sweep: 64B LT_write_async throughput vs window", "window",
                        "requests/us", xs, {tput, ring_tput});
  sink->WriteFile();
}

// Ops-per-crossing sweep (the ring tentpole's headline curve): with the
// per-CPU submission rings enabled, one doorbell crossing amortizes over K
// ops. Each point runs groups of exactly K ops from a user-level client and
// parks past the hot window between groups, so ops/crossing == K by
// construction; the measured per-op cost and ops/crossing land in the
// x-label (nsop= / opc= / requs=) where check_bench.py holds them in band.
// Blocking groups batch via the hot-window doorbell; async groups set the
// flush threshold to K so the K-th submit drains the whole batch.
void RunRingBatchSweep(benchlib::TelemetrySink* sink) {
  constexpr int kGroups = 50;
  const std::vector<int> kBatches = {1, 2, 4, 8, 16, 32, 64};
  const std::vector<uint32_t> kSizes = {64, 4096};
  for (bool async_mode : {false, true}) {
    for (uint32_t size : kSizes) {
      const std::string series = std::string(async_mode ? "LT_write_async" : "LT_write") +
                                 "-ring-" + benchlib::HumanBytes(size);
      benchlib::Series nsop{"ns/op", {}};
      benchlib::Series opc{"ops/crossing", {}};
      std::vector<std::string> xs;
      for (int batch : kBatches) {
        lt::SimParams p = MicroEnv::Params();
        p.lite_ring_enable = true;
        if (async_mode) {
          p.lite_ring_doorbell_batch = static_cast<uint32_t>(batch);
        }
        lite::LiteCluster cluster(2, p);
        auto client = cluster.CreateClient(0, /*kernel_level=*/false);
        lite::MallocOptions on1;
        on1.nodes = {1};
        auto lh = *client->Malloc(1 << 20, "ring_sweep", on1);
        std::vector<uint8_t> buf(size, 0x2e);
        uint64_t busy_ns = 0;
        for (int g = 0; g < kGroups; ++g) {
          const uint64_t t0 = lt::NowNs();
          if (async_mode) {
            for (int i = 0; i < batch; ++i) {
              (void)client->WriteAsync(lh, static_cast<uint64_t>(size) * i, buf.data(), size);
            }
            (void)client->WaitAll();
          } else {
            for (int i = 0; i < batch; ++i) {
              (void)client->Write(lh, static_cast<uint64_t>(size) * i, buf.data(), size);
            }
          }
          busy_ns += lt::NowNs() - t0;
          // Park past the hot window and flush deadline: the next group pays
          // a fresh doorbell, so the crossings amortize over exactly K ops.
          lt::IdleFor(p.lite_ring_spin_ns + p.lite_ring_flush_ns + 1'000);
        }
        auto* inst = cluster.instance(0);
        const double ops = static_cast<double>(kGroups) * batch;
        const double per_op_ns = static_cast<double>(busy_ns) / ops;
        const double measured_opc =
            static_cast<double>(inst->Stat("lite.ring.ops")) /
            static_cast<double>(std::max<int64_t>(1, inst->Stat("lite.ring.doorbells")));
        char x[128];
        std::snprintf(x, sizeof(x), "batch=%d;nsop=%.1f;opc=%.2f;requs=%.3f", batch, per_op_ns,
                      measured_opc, 1000.0 / per_op_ns);
        xs.push_back(x);
        nsop.values.push_back(per_op_ns);
        opc.values.push_back(measured_opc);
        sink->AddSnapshot(series, x, inst->StatSnapshot());
      }
      benchlib::PrintFigure("Ring batch sweep: " + series, "batch", "ns/op | ops/crossing", xs,
                            {nsop, opc});
    }
  }
  sink->WriteFile();
}

// Multi-chunk sweep: a 16 MB LMR striped 1 MB-per-chunk round-robin across
// four remote nodes; one 4 MB sync read is four pieces on four distinct
// source nodes. The op engine issues all pieces before waiting on any
// (SubmitPieces), so their serialization overlaps; the baseline fetches the
// same bytes as four dependent single-piece reads. The speedup ratio lands
// in BENCH_multichunk.json as a perf-regression anchor (floor: 1.5x).
void RunMultiChunkSweep(benchlib::TelemetrySink* sink) {
  constexpr int kReps = 50;
  constexpr uint64_t kChunkBytes = 1ull << 20;
  constexpr uint64_t kOpBytes = 4ull << 20;  // 4 pieces, one per source node
  constexpr uint64_t kRegionBytes = 16ull << 20;
  lt::SimParams p = MicroEnv::Params();
  p.lite_max_chunk_bytes = kChunkBytes;
  lite::LiteCluster cluster(5, p);
  auto client = cluster.CreateClient(0, /*kernel_level=*/true);
  lite::MallocOptions spread;
  spread.nodes = {1, 2, 3, 4};
  auto lh = *client->Malloc(kRegionBytes, "multichunk", spread);
  std::vector<uint8_t> buf(kOpBytes);

  // Baseline: the same 4 MB as four dependent chunk-aligned reads; each is
  // a single remote piece, so nothing overlaps.
  uint64_t t0 = lt::NowNs();
  for (int r = 0; r < kReps; ++r) {
    for (uint64_t off = 0; off < kOpBytes; off += kChunkBytes) {
      (void)client->Read(lh, off, buf.data() + off, kChunkBytes);
    }
  }
  const uint64_t serial_ns = lt::NowNs() - t0;

  t0 = lt::NowNs();
  for (int r = 0; r < kReps; ++r) {
    (void)client->Read(lh, 0, buf.data(), kOpBytes);
  }
  const uint64_t overlap_ns = lt::NowNs() - t0;

  const double bytes = static_cast<double>(kReps) * static_cast<double>(kOpBytes);
  const double serial_gbps = bytes / static_cast<double>(serial_ns);
  const double overlap_gbps = bytes / static_cast<double>(overlap_ns);
  const double speedup = static_cast<double>(serial_ns) / static_cast<double>(overlap_ns);
  benchlib::PrintFigure("Multi-chunk 4MB sync read: engine overlap vs serial pieces", "path",
                        "GB/s",
                        {"serial-4x1MB", "overlapped-4MB", "speedup"},
                        {{"LT_read", {serial_gbps, overlap_gbps, speedup}}});
  // The x label carries the measured ratio so the JSON anchor records it.
  sink->AddSnapshot("multichunk-read-4MB", "speedup=" + std::to_string(speedup),
                    client->StatSnapshot());
  sink->WriteFile();
}

}  // namespace

int main(int argc, char** argv) {
  benchlib::TelemetrySink sink = benchlib::TelemetrySink::FromArgs(
      argc, argv, "bench_micro_async_depth", "BENCH_async_depth.json");
  RunAsyncDepthSweep(&sink);
  benchlib::TelemetrySink mc_sink = benchlib::TelemetrySink::FromArgs(
      1, argv, "bench_micro_multichunk", "BENCH_multichunk.json");
  RunMultiChunkSweep(&mc_sink);
  benchlib::TelemetrySink ring_sink = benchlib::TelemetrySink::FromArgs(
      1, argv, "bench_micro_ring_batch", "BENCH_ring_batch.json");
  RunRingBatchSweep(&ring_sink);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
