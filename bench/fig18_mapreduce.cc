// Paper Fig. 18: WordCount runtime — Phoenix (single node), LITE-MR on
// 2/4/8 worker nodes, and the Hadoop-like TCP baseline, all with the same
// total thread count per configuration.
#include "bench/benchlib.h"
#include "src/apps/mapreduce.h"
#include "src/apps/workloads.h"
#include "src/common/timing.h"
#include "src/lite/lite_cluster.h"

int main() {
  const std::string corpus = liteapp::GenerateCorpus(6 << 20, 30000, 11);
  lt::SimParams p;
  p.node_phys_mem_bytes = 96ull << 20;

  std::vector<std::string> xs = {"Phoenix", "2-node", "4-node", "8-node"};
  benchlib::Series map_s{"Map_s", {}};
  benchlib::Series reduce_s{"Reduce_s", {}};
  benchlib::Series merge_s{"Merge_s", {}};
  benchlib::Series lite_total{"LITE-MR_total_s", {}};
  benchlib::Series hadoop_total{"Hadoop_total_s", {}};

  constexpr int kTotalThreads = 8;

  auto phoenix = liteapp::PhoenixWordCount(corpus, kTotalThreads);
  map_s.values.push_back(phoenix.map_ns / 1e9);
  reduce_s.values.push_back(phoenix.reduce_ns / 1e9);
  merge_s.values.push_back(phoenix.merge_ns / 1e9);
  lite_total.values.push_back(phoenix.total_ns / 1e9);
  hadoop_total.values.push_back(0);

  for (uint32_t workers : {2u, 4u, 8u}) {
    int threads_per_worker = kTotalThreads / static_cast<int>(workers);
    {
      lite::LiteCluster cluster(workers + 1, p);
      auto r = liteapp::LiteMrWordCount(&cluster, corpus, workers, threads_per_worker);
      map_s.values.push_back(r.map_ns / 1e9);
      reduce_s.values.push_back(r.reduce_ns / 1e9);
      merge_s.values.push_back(r.merge_ns / 1e9);
      lite_total.values.push_back(r.total_ns / 1e9);
    }
    {
      lt::Cluster cluster(workers + 1, p);
      auto r = liteapp::HadoopWordCount(&cluster, corpus, workers, threads_per_worker);
      hadoop_total.values.push_back(r.total_ns / 1e9);
    }
  }
  benchlib::PrintFigure("Fig 18: MapReduce WordCount runtime (8 total threads)", "config",
                        "seconds", xs, {map_s, reduce_s, merge_s, lite_total, hadoop_total});
  return 0;
}
