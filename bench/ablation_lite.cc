// Ablations for DESIGN.md's called-out design choices:
//   (a) QP sharing factor K (paper Sec. 6.1: 1 <= K <= 4 performs best),
//   (b) the optimized two-crossing syscall path vs naive syscalls
//       (paper Sec. 5.2: ~0.17 us vs ~0.9 us of boundary overhead),
//   (c) the global physical MR vs per-region virtual MRs under MR-count
//       pressure (the RNIC-indirection removal of Sec. 4.1).
#include <thread>

#include "bench/benchlib.h"
#include "bench/rpc_common.h"
#include "src/common/rng.h"
#include "src/common/timing.h"
#include "src/lite/lite_cluster.h"

namespace {

double WriteTputWithK(int k) {
  lt::SimParams p;
  p.node_phys_mem_bytes = 48ull << 20;
  p.lite_qp_sharing_factor = k;
  lite::LiteCluster cluster(2, p);
  {
    auto setup = cluster.CreateClient(0, true);
    lite::MallocOptions on1;
    on1.nodes = {1};
    (void)setup->Malloc(256 << 10, "abl_k", on1);
  }
  constexpr int kThreads = 8;
  constexpr int kOps = 400;
  std::vector<uint64_t> ends(kThreads);
  uint64_t t0 = lt::NowNs();
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      lt::SyncClockTo(t0);
      auto client = cluster.CreateClient(0, true);
      auto lh = *client->Map("abl_k");
      char buf[1024] = {1};
      for (int i = 0; i < kOps; ++i) {
        (void)client->Write(lh, (i % 64) * 1024, buf, sizeof(buf));
      }
      ends[t] = lt::NowNs();
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  uint64_t end = t0;
  for (uint64_t e : ends) {
    end = std::max(end, e);
  }
  lt::SyncClockTo(end);
  return static_cast<double>(kThreads * kOps) * 1000.0 / static_cast<double>(end - t0);
}

// Boundary-cost ablation: how the user/kernel boundary is paid per RPC.
//   kNaiveSyscalls  — full trap in and out on every entry (~0.9 us of
//                     boundary overhead, paper Sec. 5.2's strawman);
//   kOptimized      — LITE's single crossing + shared-page return;
//   kPerCpuRings    — PR 9's per-CPU submission rings: back-to-back RPCs ride
//                     one hot doorbell, so steady state pays no crossing.
enum class BoundaryMode { kNaiveSyscalls, kOptimized, kPerCpuRings };

double RpcLatencyUs(BoundaryMode mode) {
  lt::SimParams p;
  p.node_phys_mem_bytes = 48ull << 20;
  p.lite_ring_enable = mode == BoundaryMode::kPerCpuRings;
  lite::LiteCluster cluster(2, p);
  benchrpc::LiteSizeServer server(&cluster, 1, 44, 2);
  auto client = cluster.CreateClient(0, /*kernel_level=*/false);
  client->set_naive_syscalls(mode == BoundaryMode::kNaiveSyscalls);
  uint8_t in[8] = {0};
  uint32_t reply = 8;
  std::memcpy(in, &reply, 4);
  uint8_t out[64];
  uint32_t out_len;
  (void)client->Rpc(1, 44, in, 8, out, sizeof(out), &out_len);
  constexpr int kReps = 100;
  uint64_t t0 = lt::NowNs();
  for (int i = 0; i < kReps; ++i) {
    (void)client->Rpc(1, 44, in, 8, out, sizeof(out), &out_len);
  }
  return static_cast<double>(lt::NowNs() - t0) / kReps / 1000.0;
}

// 64B writes against N regions: LITE's single physical MR vs registering N
// virtual MRs on the RNIC (what LITE would cost WITHOUT the global-MR
// technique).
double RegionWriteUs(size_t regions, bool physical) {
  lt::SimParams p;
  p.node_phys_mem_bytes = 128ull << 20;
  lt::Cluster cluster(2, p);
  lt::Process* client = cluster.node(0)->CreateProcess();
  lt::Process* server = cluster.node(1)->CreateProcess();
  std::vector<std::pair<uint32_t, uint64_t>> targets;  // {rkey, addr}
  if (physical) {
    auto mr = *cluster.node(1)->rnic().RegisterMrPhysical(0, 64ull << 20, lt::kMrAll);
    for (size_t i = 0; i < regions; ++i) {
      targets.emplace_back(mr.lkey, (i * 4096) % (64ull << 20));
    }
  } else {
    lt::VirtAddr heap = *server->page_table().AllocVirt(std::min<uint64_t>(regions, 16384) * 4096);
    for (size_t i = 0; i < regions; ++i) {
      auto mr = *server->verbs().RegisterMr(heap + (i % 16384) * 4096, 4096, lt::kMrAll);
      targets.emplace_back(mr.rkey, mr.addr);
    }
  }
  auto local = *client->page_table().AllocVirt(4096);
  auto lmr = *client->verbs().RegisterMr(local, 4096, lt::kMrAll);
  lt::Qp* q0 = client->verbs().CreateQp(lt::QpType::kRc, client->verbs().CreateCq(),
                                        client->verbs().CreateCq());
  lt::Qp* q1 = server->verbs().CreateQp(lt::QpType::kRc, server->verbs().CreateCq(),
                                        server->verbs().CreateCq());
  q0->Connect(1, q1->qpn());
  q1->Connect(0, q0->qpn());
  lt::Rng rng(5);
  constexpr int kReps = 800;
  uint64_t t0 = lt::NowNs();
  for (int i = 0; i < kReps; ++i) {
    auto [rkey, addr] = targets[rng.NextBounded(targets.size())];
    lt::WorkRequest wr;
    wr.opcode = lt::WrOpcode::kWrite;
    wr.lkey = lmr.lkey;
    wr.local_addr = local;
    wr.length = 64;
    wr.rkey = rkey;
    wr.remote_addr = addr;
    (void)client->verbs().ExecSync(q0, wr);
  }
  return static_cast<double>(lt::NowNs() - t0) / kReps / 1000.0;
}

}  // namespace

int main() {
  {
    benchlib::Series tput{"writes_per_us", {}};
    std::vector<std::string> xs;
    for (int k : {1, 2, 4, 8}) {
      xs.push_back("K=" + std::to_string(k));
      tput.values.push_back(WriteTputWithK(k));
    }
    benchlib::PrintFigure("Ablation (a): QP sharing factor K (8 threads, 1KB writes)", "K",
                          "requests/us", xs, {tput});
  }
  {
    benchlib::Series lat{"rpc_latency_us", {}};
    lat.values.push_back(RpcLatencyUs(BoundaryMode::kOptimized));
    lat.values.push_back(RpcLatencyUs(BoundaryMode::kNaiveSyscalls));
    lat.values.push_back(RpcLatencyUs(BoundaryMode::kPerCpuRings));
    benchlib::PrintFigure("Ablation (b): naive syscalls vs single crossing vs per-CPU rings",
                          "mode", "RPC latency (us)",
                          {"optimized", "naive_syscalls", "per_cpu_rings"}, {lat});
  }
  {
    benchlib::Series physical{"global_physical_MR", {}};
    benchlib::Series virt{"per-region_virtual_MRs", {}};
    std::vector<std::string> xs;
    for (size_t regions : {100u, 1000u, 10000u}) {
      xs.push_back(std::to_string(regions));
      physical.values.push_back(RegionWriteUs(regions, true));
      virt.values.push_back(RegionWriteUs(regions, false));
    }
    benchlib::PrintFigure("Ablation (c): physical global MR vs virtual MRs (64B writes)",
                          "regions", "latency (us)", xs, {physical, virt});
  }
  {
    // Paper Sec. 7.1: LT_memset executes at the node storing the LMR; the
    // alternative — LT_write a buffer full of the value — ships the whole
    // pattern over the wire and loses as the LMR grows.
    lt::SimParams p;
    p.node_phys_mem_bytes = 64ull << 20;
    lite::LiteCluster cluster(2, p);
    auto client = cluster.CreateClient(0, true);
    lite::MallocOptions on1;
    on1.nodes = {1};
    benchlib::Series command{"LT_memset_(command)", {}};
    benchlib::Series via_write{"memset_via_LT_write", {}};
    std::vector<std::string> xs;
    for (uint64_t size : {4096ull, 65536ull, 1048576ull}) {
      xs.push_back(benchlib::HumanBytes(size));
      auto lh = *client->Malloc(size, "abl_memset_" + std::to_string(size), on1);
      constexpr int kReps = 30;
      uint64_t t0 = lt::NowNs();
      for (int i = 0; i < kReps; ++i) {
        (void)client->Memset(lh, 0, 0x55, size);
      }
      command.values.push_back(static_cast<double>(lt::NowNs() - t0) / kReps / 1000.0);
      std::vector<uint8_t> pattern(size, 0x55);
      t0 = lt::NowNs();
      for (int i = 0; i < kReps; ++i) {
        (void)client->Write(lh, 0, pattern.data(), size);
      }
      via_write.values.push_back(static_cast<double>(lt::NowNs() - t0) / kReps / 1000.0);
    }
    benchlib::PrintFigure("Ablation (d): LT_memset command vs memset-via-LT_write (Sec 7.1)",
                          "size", "latency (us)", xs, {command, via_write});
  }
  return 0;
}
