// Paper Fig. 10: RPC latency vs return size (8 B input): LITE user-level,
// LITE kernel-level, two native RDMA writes (the FaRM lower bound), HERD,
// and FaSST.
#include "bench/benchlib.h"
#include "bench/rpc_common.h"
#include "src/baselines/fasst_rpc.h"
#include "src/baselines/herd_rpc.h"
#include "src/common/timing.h"

namespace {

constexpr int kReps = 200;

double LiteRpcUs(lite::LiteClient* client, uint32_t reply_len) {
  uint8_t in[8] = {0};
  std::memcpy(in, &reply_len, 4);
  std::vector<uint8_t> out(reply_len + 64);
  uint32_t out_len;
  // Warm.
  (void)client->Rpc(1, 40, in, 8, out.data(), static_cast<uint32_t>(out.size()), &out_len);
  uint64_t t0 = lt::NowNs();
  for (int i = 0; i < kReps; ++i) {
    (void)client->Rpc(1, 40, in, 8, out.data(), static_cast<uint32_t>(out.size()), &out_len);
  }
  return static_cast<double>(lt::NowNs() - t0) / kReps / 1000.0;
}

double TwoVerbsWritesUs(lt::Cluster* cluster, uint32_t reply_len) {
  static lt::Process* client = nullptr;
  static lt::Process* server = nullptr;
  static lt::Qp *q0 = nullptr, *q1 = nullptr;
  static lt::VerbsMr lmr0, rmr1;
  static lt::VirtAddr buf0 = 0, buf1 = 0;
  if (client == nullptr) {
    client = cluster->node(0)->CreateProcess();
    server = cluster->node(1)->CreateProcess();
    buf0 = *client->page_table().AllocVirt(16 << 10);
    buf1 = *server->page_table().AllocVirt(16 << 10);
    lmr0 = *client->verbs().RegisterMr(buf0, 16 << 10, lt::kMrAll);
    rmr1 = *server->verbs().RegisterMr(buf1, 16 << 10, lt::kMrAll);
    q0 = client->verbs().CreateQp(lt::QpType::kRc, client->verbs().CreateCq(),
                                  client->verbs().CreateCq());
    q1 = server->verbs().CreateQp(lt::QpType::kRc, server->verbs().CreateCq(),
                                  server->verbs().CreateCq());
    q0->Connect(1, q1->qpn());
    q1->Connect(0, q0->qpn());
  }
  uint64_t t0 = lt::NowNs();
  for (int i = 0; i < kReps; ++i) {
    lt::WorkRequest req;
    req.opcode = lt::WrOpcode::kWrite;
    req.lkey = lmr0.lkey;
    req.local_addr = buf0;
    req.length = 8;
    req.rkey = rmr1.rkey;
    req.remote_addr = buf1;
    (void)client->verbs().ExecSync(q0, req);
    lt::WorkRequest resp;
    resp.opcode = lt::WrOpcode::kWrite;
    resp.lkey = rmr1.lkey;
    resp.local_addr = buf1;
    resp.length = reply_len;
    resp.rkey = lmr0.rkey;
    resp.remote_addr = buf0;
    (void)server->verbs().ExecSync(q1, resp);
  }
  return static_cast<double>(lt::NowNs() - t0) / kReps / 1000.0;
}

template <typename Client>
double BaselineRpcUs(Client* client, uint32_t reply_len) {
  uint8_t in[8] = {0};
  std::memcpy(in, &reply_len, 4);
  std::vector<uint8_t> out(reply_len + 64);
  uint32_t out_len;
  (void)client->Call(in, 8, out.data(), static_cast<uint32_t>(out.size()), &out_len);
  uint64_t t0 = lt::NowNs();
  for (int i = 0; i < kReps; ++i) {
    (void)client->Call(in, 8, out.data(), static_cast<uint32_t>(out.size()), &out_len);
  }
  return static_cast<double>(lt::NowNs() - t0) / kReps / 1000.0;
}

}  // namespace

int main(int argc, char** argv) {
  benchlib::TraceSink trace = benchlib::TraceSink::FromArgs(argc, argv);
  std::vector<uint32_t> sizes = {8, 64, 512, 4096};
  lt::SimParams p;
  p.node_phys_mem_bytes = 64ull << 20;

  lite::LiteCluster lite_cluster(2, p);
  if (trace.enabled()) {
    lite_cluster.EnableTracing(1);
  }
  benchrpc::LiteSizeServer lite_server(&lite_cluster, 1, 40, 2);
  auto lite_user = lite_cluster.CreateClient(0, false);
  auto lite_kernel = lite_cluster.CreateClient(0, true);

  lt::Cluster base_cluster(2, p);
  liteapp::HerdServer herd(&base_cluster, 1, 16 << 10, benchrpc::SizeHandler());
  auto herd_client = *herd.AttachClient(0);
  herd.Start(1);
  liteapp::FasstServer fasst(&base_cluster, 1, 16 << 10, benchrpc::SizeHandler());
  auto fasst_client = *fasst.AttachClient(0);
  fasst.Start();

  benchlib::Series s_user{"LITE_RPC", {}};
  benchlib::Series s_kernel{"LITE_RPC_KL", {}};
  benchlib::Series s_2w{"2_Verbs_writes", {}};
  benchlib::Series s_herd{"HERD", {}};
  benchlib::Series s_fasst{"FaSST", {}};
  std::vector<std::string> xs;
  for (uint32_t size : sizes) {
    xs.push_back(benchlib::HumanBytes(size));
    s_user.values.push_back(LiteRpcUs(lite_user.get(), size));
    s_kernel.values.push_back(LiteRpcUs(lite_kernel.get(), size));
    s_2w.values.push_back(TwoVerbsWritesUs(&base_cluster, size));
    s_herd.values.push_back(BaselineRpcUs(herd_client, size));
    s_fasst.values.push_back(BaselineRpcUs(fasst_client, size));
  }
  herd.Stop();
  fasst.Stop();
  benchlib::PrintFigure("Fig 10: RPC latency vs return size (8B input)", "return_size",
                        "latency (us)", xs, {s_user, s_kernel, s_2w, s_herd, s_fasst});
  trace.Export(lite_cluster);
  return 0;
}
