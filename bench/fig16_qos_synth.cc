// Paper Fig. 16: QoS under a synthetic mix — low-priority writers start at
// t=0; high-priority writers join later; 8 of them pause and return. The
// timeline shows total and high-priority-only bandwidth for SW-Pri, HW-Sep,
// and no QoS. (Scaled to ~1/10 the paper's duration; identical structure.)
#include <atomic>
#include <thread>

#include "bench/benchlib.h"
#include "src/common/timing.h"
#include "src/lite/lite_cluster.h"

namespace {

constexpr uint64_t kBucketNs = 25'000'000;  // 25 ms timeline buckets.
constexpr int kBuckets = 24;
constexpr int kLowThreads = 20;
constexpr int kHighThreads = 20;
constexpr int kLowOps = 12000;
constexpr int kHighOps1 = 3000;
constexpr int kHighOps2 = 1500;
constexpr uint64_t kHighJoinNs = 100'000'000;   // High-pri joins at t=0.1s
constexpr uint64_t kHighPauseNs = 100'000'000;  // (paper: t=2s, 1/20 scale).

struct Timeline {
  std::atomic<uint64_t> total[kBuckets] = {};
  std::atomic<uint64_t> high[kBuckets] = {};

  void Record(uint64_t t_rel_ns, uint64_t bytes, bool is_high) {
    size_t bucket = std::min<size_t>(t_rel_ns / kBucketNs, kBuckets - 1);
    total[bucket].fetch_add(bytes, std::memory_order_relaxed);
    if (is_high) {
      high[bucket].fetch_add(bytes, std::memory_order_relaxed);
    }
  }
};

void RunPolicy(lite::QosPolicy policy, Timeline* timeline) {
  lt::SimParams p;
  p.node_phys_mem_bytes = 64ull << 20;
  p.lite_qp_sharing_factor = 4;
  lite::LiteCluster cluster(5, p);
  for (size_t n = 0; n < cluster.size(); ++n) {
    cluster.instance(n)->qos().SetPolicy(policy);
  }
  // Targets on nodes 1..4 (the paper writes to four nodes).
  {
    auto setup = cluster.CreateClient(0, true);
    for (lt::NodeId n = 1; n <= 4; ++n) {
      lite::MallocOptions mo;
      mo.nodes = {n};
      (void)setup->Malloc(256 << 10, "f16_" + std::to_string(n), mo);
    }
  }
  const uint64_t t0 = lt::NowNs();
  std::vector<std::thread> threads;
  std::vector<uint64_t> ends(kLowThreads + kHighThreads, t0);

  for (int t = 0; t < kLowThreads; ++t) {
    threads.emplace_back([&, t] {
      lt::SyncClockTo(t0);
      auto client = cluster.CreateClient(0, true);
      client->set_priority(lite::Priority::kLow);
      lt::NodeId target = 1 + static_cast<lt::NodeId>(t % 4);
      auto lh = *client->Map("f16_" + std::to_string(target));
      uint32_t size = (t % 2 == 0) ? 4096 : 8192;
      std::vector<uint8_t> buf(size, 1);
      bool is_read = t >= kLowThreads / 2;
      for (int i = 0; i < kLowOps; ++i) {
        if (is_read) {
          (void)client->Read(lh, 0, buf.data(), size);
        } else {
          (void)client->Write(lh, 0, buf.data(), size);
        }
        timeline->Record(lt::NowNs() - t0, size, false);
      }
      ends[t] = lt::NowNs();
    });
  }
  for (int t = 0; t < kHighThreads; ++t) {
    threads.emplace_back([&, t] {
      lt::SyncClockTo(t0);
      lt::IdleFor(kHighJoinNs);  // High-priority jobs join after 2 (scaled) s.
      auto client = cluster.CreateClient(0, true);
      client->set_priority(lite::Priority::kHigh);
      lt::NodeId target = 1 + static_cast<lt::NodeId>(t % 4);
      auto lh = *client->Map("f16_" + std::to_string(target));
      constexpr uint32_t size = 4096;
      std::vector<uint8_t> buf(size, 2);
      bool is_read = t >= kHighThreads / 2;
      auto burst = [&](int ops) {
        for (int i = 0; i < ops; ++i) {
          if (is_read) {
            (void)client->Read(lh, 0, buf.data(), size);
          } else {
            (void)client->Write(lh, 0, buf.data(), size);
          }
          timeline->Record(lt::NowNs() - t0, size, true);
        }
      };
      burst(kHighOps1);
      if (t < 8) {  // 8 threads sleep, then run a second burst (paper).
        lt::IdleFor(kHighPauseNs);
        burst(kHighOps2);
      }
      ends[kLowThreads + t] = lt::NowNs();
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  uint64_t end = t0;
  for (uint64_t e : ends) {
    end = std::max(end, e);
  }
  lt::SyncClockTo(end);
}

const char* PolicyName(lite::QosPolicy policy) {
  switch (policy) {
    case lite::QosPolicy::kSwPri:
      return "SW-Pri";
    case lite::QosPolicy::kHwSep:
      return "HW-Sep";
    default:
      return "NoQoS";
  }
}

}  // namespace

int main() {
  std::vector<std::string> xs;
  for (int b = 0; b < kBuckets; ++b) {
    char label[32];
    std::snprintf(label, sizeof(label), "%.3fs", b * 0.025);
    xs.push_back(label);
  }
  std::vector<benchlib::Series> series;
  for (lite::QosPolicy policy :
       {lite::QosPolicy::kSwPri, lite::QosPolicy::kHwSep, lite::QosPolicy::kNone}) {
    Timeline timeline;
    RunPolicy(policy, &timeline);
    benchlib::Series total{std::string(PolicyName(policy)) + "-Total", {}};
    benchlib::Series high{std::string(PolicyName(policy)) + "-High", {}};
    for (int b = 0; b < kBuckets; ++b) {
      total.values.push_back(static_cast<double>(timeline.total[b].load()) / kBucketNs);
      high.values.push_back(static_cast<double>(timeline.high[b].load()) / kBucketNs);
    }
    series.push_back(total);
    series.push_back(high);
  }
  benchlib::PrintFigure("Fig 16: QoS timeline, synthetic mix (GB/s per 25ms bucket; 1/20 of paper time scale)", "time",
                        "GB/s", xs, series);
  return 0;
}
