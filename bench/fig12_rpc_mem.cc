// Paper Fig. 12: RPC receive-side memory utilization under the Facebook
// key-value distributions — send/recv RPC with 1-4 size-classed receive
// queues versus LITE's write-imm rings (which need no pre-posted per-message
// buffers; only the aligned ring entry is consumed).
#include "bench/benchlib.h"
#include "src/apps/workloads.h"
#include "src/baselines/sendrecv_rpc.h"
#include "src/common/rng.h"

namespace {

constexpr int kMessages = 50000;
constexpr uint32_t kMaxMsg = 512 << 10;

// Size classes for N receive queues: geometric split up to the max size.
std::vector<uint32_t> Classes(int rqs) {
  switch (rqs) {
    case 1:
      return {kMaxMsg};
    case 2:
      return {4 << 10, kMaxMsg};
    case 3:
      return {512, 16 << 10, kMaxMsg};
    default:
      return {128, 4 << 10, 64 << 10, kMaxMsg};
  }
}

// Buffer consumption of send-based RPC: each message burns the smallest
// pre-posted buffer that fits (Shipman et al. optimization, per the paper).
double SendRecvUtilization(int rqs, bool values, uint64_t seed) {
  auto classes = Classes(rqs);
  liteapp::FacebookKvSampler sampler(seed);
  uint64_t payload = 0;
  uint64_t consumed = 0;
  for (int i = 0; i < kMessages; ++i) {
    uint32_t size = values ? sampler.NextValueSize() : sampler.NextKeySize();
    size_t cls = 0;
    while (cls < classes.size() && classes[cls] < size) {
      ++cls;
    }
    payload += size;
    consumed += classes[std::min(cls, classes.size() - 1)];
  }
  return 100.0 * static_cast<double>(payload) / static_cast<double>(consumed);
}

// LITE ring consumption: header + payload, 64-byte aligned (Sec. 5.1).
double LiteUtilization(bool values, uint64_t seed) {
  constexpr uint64_t kHeaderBytes = 40;
  liteapp::FacebookKvSampler sampler(seed);
  uint64_t payload = 0;
  uint64_t consumed = 0;
  for (int i = 0; i < kMessages; ++i) {
    uint32_t size = values ? sampler.NextValueSize() : sampler.NextKeySize();
    payload += size;
    consumed += (kHeaderBytes + size + 63) & ~63ull;
  }
  return 100.0 * static_cast<double>(payload) / static_cast<double>(consumed);
}

// Cross-check the analytic send/recv model against the real SendRecvRpcServer
// accounting on a small sample.
void ValidateAgainstRealServer() {
  lt::SimParams p = lt::SimParams::FastForTests();
  p.node_phys_mem_bytes = 48ull << 20;
  lt::Cluster cluster(2, p);
  auto classes = Classes(2);
  liteapp::SendRecvRpcServer server(
      &cluster, 0, classes, 8,
      [](const uint8_t*, uint32_t, uint8_t* out, uint32_t) -> uint32_t {
        out[0] = 1;
        return 1;
      });
  auto client = *server.AttachClient(1);
  server.Start();
  liteapp::FacebookKvSampler sampler(42);
  uint64_t expected_payload = 0;
  uint64_t expected_consumed = 0;
  std::vector<uint8_t> buf(8 << 10, 0xaa);
  char out[8];
  uint32_t out_len;
  for (int i = 0; i < 200; ++i) {
    uint32_t size = std::min<uint32_t>(sampler.NextValueSize(), 8 << 10);
    (void)client->Call(buf.data(), size, out, sizeof(out), &out_len);
    expected_payload += size;
    size_t cls = 0;
    while (cls < classes.size() && classes[cls] < size) {
      ++cls;
    }
    expected_consumed += classes[cls];
  }
  server.Stop();
  std::printf("# validation: real server consumed=%llu payload=%llu (model: %llu / %llu)\n",
              static_cast<unsigned long long>(server.consumed_buffer_bytes()),
              static_cast<unsigned long long>(server.payload_bytes()),
              static_cast<unsigned long long>(expected_consumed),
              static_cast<unsigned long long>(expected_payload));
}

}  // namespace

int main() {
  ValidateAgainstRealServer();
  benchlib::Series key{"key_util_pct", {}};
  benchlib::Series value{"value_util_pct", {}};
  std::vector<std::string> xs = {"1RQ", "2RQ", "3RQ", "4RQ", "LITE"};
  for (int rqs = 1; rqs <= 4; ++rqs) {
    key.values.push_back(SendRecvUtilization(rqs, /*values=*/false, 42));
    value.values.push_back(SendRecvUtilization(rqs, /*values=*/true, 42));
  }
  key.values.push_back(LiteUtilization(false, 42));
  value.values.push_back(LiteUtilization(true, 42));
  benchlib::PrintFigure(
      "Fig 12: RPC memory utilization under Facebook KV distribution", "scheme",
      "utilization (%)", xs, {key, value});
  return 0;
}
