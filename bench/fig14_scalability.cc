// Paper Fig. 14: aggregate LT_write and LT_RPC throughput as the cluster
// grows from 2 to 8 nodes (8 threads per node; 64 B writes; 64 B -> 8 B
// RPCs). LITE's shared QP pool (K x N QPs) keeps scaling linear.
#include <thread>

#include "bench/benchlib.h"
#include "bench/rpc_common.h"
#include "src/common/rng.h"
#include "src/common/timing.h"
#include "src/lite/lite_cluster.h"

namespace {

constexpr int kThreadsPerNode = 8;
constexpr int kOpsPerThread = 300;

double WriteTputReqPerUs(size_t nodes) {
  lt::SimParams p;
  p.node_phys_mem_bytes = 48ull << 20;
  lite::LiteCluster cluster(nodes, p);
  // One target LMR per node.
  {
    auto setup = cluster.CreateClient(0, true);
    for (size_t n = 0; n < nodes; ++n) {
      lite::MallocOptions mo;
      mo.nodes = {static_cast<lt::NodeId>(n)};
      (void)setup->Malloc(64 << 10, "f14w_" + std::to_string(n), mo);
    }
  }
  const size_t total_threads = nodes * kThreadsPerNode;
  std::vector<uint64_t> ends(total_threads);
  uint64_t t0 = lt::NowNs();
  std::vector<std::thread> threads;
  for (size_t t = 0; t < total_threads; ++t) {
    threads.emplace_back([&, t] {
      lt::SyncClockTo(t0);
      lt::NodeId my_node = static_cast<lt::NodeId>(t % nodes);
      auto client = cluster.CreateClient(my_node);
      std::vector<lite::Lh> lhs;
      for (size_t n = 0; n < nodes; ++n) {
        lhs.push_back(*client->Map("f14w_" + std::to_string(n)));
      }
      char buf[64] = {3};
      lt::Rng rng(t * 31 + 1);
      for (int i = 0; i < kOpsPerThread; ++i) {
        size_t target = rng.NextBounded(nodes - 1);
        if (target >= my_node) {
          ++target;  // Always remote.
        }
        (void)client->Write(lhs[target], rng.NextBounded(64) * 64, buf, sizeof(buf));
      }
      ends[t] = lt::NowNs();
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  uint64_t end = t0;
  for (uint64_t e : ends) {
    end = std::max(end, e);
  }
  lt::SyncClockTo(end);
  return static_cast<double>(total_threads * kOpsPerThread) * 1000.0 /
         static_cast<double>(end - t0);
}

double RpcTputReqPerUs(size_t nodes) {
  lt::SimParams p;
  p.node_phys_mem_bytes = 48ull << 20;
  lite::LiteCluster cluster(nodes, p);
  std::vector<std::unique_ptr<benchrpc::LiteSizeServer>> servers;
  for (size_t n = 0; n < nodes; ++n) {
    servers.push_back(std::make_unique<benchrpc::LiteSizeServer>(
        &cluster, static_cast<lt::NodeId>(n), 43, 2));
  }
  const size_t total_threads = nodes * kThreadsPerNode;
  std::vector<uint64_t> ends(total_threads);
  uint64_t t0 = lt::NowNs();
  std::vector<std::thread> threads;
  for (size_t t = 0; t < total_threads; ++t) {
    threads.emplace_back([&, t] {
      lt::SyncClockTo(t0);
      lt::NodeId my_node = static_cast<lt::NodeId>(t % nodes);
      auto client = cluster.CreateClient(my_node);
      uint8_t in[64] = {0};
      uint32_t reply = 8;
      std::memcpy(in, &reply, 4);
      uint8_t out[64];
      uint32_t out_len;
      lt::Rng rng(t * 17 + 5);
      for (int i = 0; i < kOpsPerThread; ++i) {
        size_t target = rng.NextBounded(nodes - 1);
        if (target >= my_node) {
          ++target;
        }
        (void)client->Rpc(static_cast<lt::NodeId>(target), 43, in, sizeof(in), out, sizeof(out),
                          &out_len);
      }
      ends[t] = lt::NowNs();
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  uint64_t end = t0;
  for (uint64_t e : ends) {
    end = std::max(end, e);
  }
  lt::SyncClockTo(end);
  return static_cast<double>(total_threads * kOpsPerThread) * 1000.0 /
         static_cast<double>(end - t0);
}

}  // namespace

int main() {
  std::vector<size_t> cluster_sizes = {2, 4, 6, 8};
  benchlib::Series writes{"LITE_write", {}};
  benchlib::Series rpcs{"LITE_RPC", {}};
  std::vector<std::string> xs;
  for (size_t n : cluster_sizes) {
    xs.push_back(std::to_string(n));
    writes.values.push_back(WriteTputReqPerUs(n));
    rpcs.values.push_back(RpcTputReqPerUs(n));
  }
  benchlib::PrintFigure(
      "Fig 14: aggregate throughput vs cluster size (8 threads/node, 64B ops)", "nodes",
      "requests/us", xs, {writes, rpcs});
  // Paper Sec. 6.1 QP accounting: K x N QPs per node.
  std::printf("\n# QP accounting (Sec 6.1): K=2 sharing factor\n");
  std::printf("%-8s %12s %18s %14s\n", "nodes", "LITE(KxN)", "native(2xNxT)", "FaRM(2NT/q,q=4)");
  for (size_t n : cluster_sizes) {
    std::printf("%-8zu %12zu %18zu %14zu\n", n, 2 * (n - 1), 2 * (n - 1) * 8,
                2 * (n - 1) * 8 / 4);
  }
  return 0;
}
