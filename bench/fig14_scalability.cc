// Paper Fig. 14: aggregate LT_write and LT_RPC throughput as the cluster
// grows from 2 to 8 nodes (8 threads per node; 64 B writes; 64 B -> 8 B
// RPCs). LITE's shared QP pool (K x N QPs) keeps scaling linear.
//
// --scale / --scale-smoke: the transport-virtualization sweep (DESIGN.md
// §10). An incast workload — every node writes 64 B blocks to one server —
// run at 100/400/1000 nodes under both lite_transport modes, emitting
// BENCH_transport_scale.json with per-op latency, the server's QPC hit
// rate, DC connect-rate, and total QP-state bytes. RC keeps O(n) QPs per
// node and thrashes the server's 256-entry QPC cache past ~128 peers; DC's
// bounded pool keeps both flat.
#include <algorithm>
#include <cstring>
#include <thread>

#include "bench/benchlib.h"
#include "bench/rpc_common.h"
#include "src/common/rng.h"
#include "src/common/timing.h"
#include "src/lite/dc_transport.h"
#include "src/lite/lite_cluster.h"

namespace {

constexpr int kThreadsPerNode = 8;
constexpr int kOpsPerThread = 300;

double WriteTputReqPerUs(size_t nodes) {
  lt::SimParams p;
  p.node_phys_mem_bytes = 48ull << 20;
  lite::LiteCluster cluster(nodes, p);
  // One target LMR per node.
  {
    auto setup = cluster.CreateClient(0, true);
    for (size_t n = 0; n < nodes; ++n) {
      lite::MallocOptions mo;
      mo.nodes = {static_cast<lt::NodeId>(n)};
      (void)setup->Malloc(64 << 10, "f14w_" + std::to_string(n), mo);
    }
  }
  const size_t total_threads = nodes * kThreadsPerNode;
  std::vector<uint64_t> ends(total_threads);
  uint64_t t0 = lt::NowNs();
  std::vector<std::thread> threads;
  for (size_t t = 0; t < total_threads; ++t) {
    threads.emplace_back([&, t] {
      lt::SyncClockTo(t0);
      lt::NodeId my_node = static_cast<lt::NodeId>(t % nodes);
      auto client = cluster.CreateClient(my_node);
      std::vector<lite::Lh> lhs;
      for (size_t n = 0; n < nodes; ++n) {
        lhs.push_back(*client->Map("f14w_" + std::to_string(n)));
      }
      char buf[64] = {3};
      lt::Rng rng(t * 31 + 1);
      for (int i = 0; i < kOpsPerThread; ++i) {
        size_t target = rng.NextBounded(nodes - 1);
        if (target >= my_node) {
          ++target;  // Always remote.
        }
        (void)client->Write(lhs[target], rng.NextBounded(64) * 64, buf, sizeof(buf));
      }
      ends[t] = lt::NowNs();
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  uint64_t end = t0;
  for (uint64_t e : ends) {
    end = std::max(end, e);
  }
  lt::SyncClockTo(end);
  return static_cast<double>(total_threads * kOpsPerThread) * 1000.0 /
         static_cast<double>(end - t0);
}

double RpcTputReqPerUs(size_t nodes) {
  lt::SimParams p;
  p.node_phys_mem_bytes = 48ull << 20;
  lite::LiteCluster cluster(nodes, p);
  std::vector<std::unique_ptr<benchrpc::LiteSizeServer>> servers;
  for (size_t n = 0; n < nodes; ++n) {
    servers.push_back(std::make_unique<benchrpc::LiteSizeServer>(
        &cluster, static_cast<lt::NodeId>(n), 43, 2));
  }
  const size_t total_threads = nodes * kThreadsPerNode;
  std::vector<uint64_t> ends(total_threads);
  uint64_t t0 = lt::NowNs();
  std::vector<std::thread> threads;
  for (size_t t = 0; t < total_threads; ++t) {
    threads.emplace_back([&, t] {
      lt::SyncClockTo(t0);
      lt::NodeId my_node = static_cast<lt::NodeId>(t % nodes);
      auto client = cluster.CreateClient(my_node);
      uint8_t in[64] = {0};
      uint32_t reply = 8;
      std::memcpy(in, &reply, 4);
      uint8_t out[64];
      uint32_t out_len;
      lt::Rng rng(t * 17 + 5);
      for (int i = 0; i < kOpsPerThread; ++i) {
        size_t target = rng.NextBounded(nodes - 1);
        if (target >= my_node) {
          ++target;
        }
        (void)client->Rpc(static_cast<lt::NodeId>(target), 43, in, sizeof(in), out, sizeof(out),
                          &out_len);
      }
      ends[t] = lt::NowNs();
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  uint64_t end = t0;
  for (uint64_t e : ends) {
    end = std::max(end, e);
  }
  lt::SyncClockTo(end);
  return static_cast<double>(total_threads * kOpsPerThread) * 1000.0 /
         static_cast<double>(end - t0);
}

// ------------------------- transport-virtualization scale sweep (--scale)

constexpr int kScaleOpsPerClient = 24;

struct ScalePoint {
  size_t nodes = 0;
  double mean_ns = 0;
  double p99_ns = 0;
  double qpc_hit = 0;      // Server-side QPC hit rate during the incast.
  double conn_per_op = 0;  // DC attaches per measured op (RC: 0).
  uint64_t qp_bytes = 0;   // Cluster-wide QP-state bytes (QpStateBytes()).
  bool pass = true;
  lt::telemetry::MetricsSnapshot server_snap;  // Informational sidecar body.
};

ScalePoint RunScalePoint(size_t nodes, lt::LiteTransport mode) {
  lt::SimParams p;
  p.lite_transport = mode;
  // The scaling story under test: the responder NIC's QPC pressure. On for
  // both modes so RC pays per-peer entries and DC pays one DCT entry.
  p.rnic_model_responder_qpc = true;
  // Lazy control rings: the O(n^2) eager bootstrap is exactly what a
  // 1000-node cluster cannot afford (and the sweep never needs most pairs).
  p.lite_eager_control_rings = false;
  p.node_phys_mem_bytes = 8ull << 20;
  p.lite_rpc_ring_bytes = 4096;
  p.lite_reply_slots = 16;
  p.lite_reply_slot_bytes = 4096;
  lite::LiteCluster cluster(nodes, p);
  {
    auto setup = cluster.CreateClient(0, true);
    lite::MallocOptions mo;
    mo.nodes = {0};
    (void)setup->Malloc(64 << 10, "scale_target", mo);
  }
  // Every non-server node runs one client. Map (one RPC to the server) is
  // setup; the measured deltas below exclude it via the s0 baseline.
  const size_t clients = nodes - 1;
  std::vector<std::unique_ptr<lite::LiteClient>> cs(clients);
  std::vector<lite::Lh> lhs(clients);
  for (size_t i = 0; i < clients; ++i) {
    cs[i] = cluster.CreateClient(static_cast<lt::NodeId>(i + 1));
    lhs[i] = *cs[i]->Map("scale_target");
  }

  auto sum_attaches = [&] {
    uint64_t total = 0;
    for (size_t n = 0; n < nodes; ++n) {
      auto* dc = dynamic_cast<lite::DcTransport*>(&cluster.instance(n)->transport());
      if (dc != nullptr) {
        total += dc->attaches();
      }
    }
    return total;
  };
  const auto s0 = cluster.node(0)->telemetry().registry().Snapshot();
  const uint64_t attaches0 = sum_attaches();

  // Incast: staggered starts + per-op gaps hold the aggregate offered load
  // near 0.5 ops/us so the figure isolates per-op cost (QPC behavior, DC
  // attach amortization) from server engine queueing.
  std::vector<std::vector<uint64_t>> lat(clients);
  const uint64_t t0 = lt::NowNs();
  const uint64_t gap_ns = static_cast<uint64_t>(nodes) * 2000;
  std::vector<std::thread> threads;
  for (size_t i = 0; i < clients; ++i) {
    threads.emplace_back([&, i] {
      lt::SyncClockTo(t0 + i * 2000);
      lat[i].reserve(kScaleOpsPerClient);
      char buf[64] = {7};
      lt::Rng rng(i * 131 + 7);
      for (int op = 0; op < kScaleOpsPerClient; ++op) {
        const uint64_t a = lt::NowNs();
        (void)cs[i]->Write(lhs[i], rng.NextBounded(1000) * 64, buf, sizeof(buf));
        lat[i].push_back(lt::NowNs() - a);
        lt::IdleFor(gap_ns);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }

  ScalePoint r;
  r.nodes = nodes;
  r.server_snap = cluster.node(0)->telemetry().registry().Snapshot();
  std::vector<uint64_t> all;
  for (auto& v : lat) {
    all.insert(all.end(), v.begin(), v.end());
  }
  std::sort(all.begin(), all.end());
  double sum = 0;
  for (uint64_t v : all) {
    sum += static_cast<double>(v);
  }
  r.mean_ns = all.empty() ? 0 : sum / static_cast<double>(all.size());
  r.p99_ns = all.empty() ? 0 : static_cast<double>(all[all.size() * 99 / 100]);
  const double hits = static_cast<double>(r.server_snap.ValueOr("rnic.qpc.hits") -
                                          s0.ValueOr("rnic.qpc.hits"));
  const double misses = static_cast<double>(r.server_snap.ValueOr("rnic.qpc.misses") -
                                            s0.ValueOr("rnic.qpc.misses"));
  r.qpc_hit = hits + misses > 0 ? hits / (hits + misses) : 1.0;
  r.conn_per_op = all.empty() ? 0
                              : static_cast<double>(sum_attaches() - attaches0) /
                                    static_cast<double>(all.size());
  for (size_t n = 0; n < nodes; ++n) {
    r.qp_bytes += cluster.instance(n)->transport().QpStateBytes();
  }
  return r;
}

int RunScaleSweep(int argc, char** argv, bool smoke) {
  const std::vector<size_t> sizes =
      smoke ? std::vector<size_t>{8, 100} : std::vector<size_t>{8, 100, 400, 1000};
  auto sink = benchlib::TelemetrySink::FromArgs(argc, argv, "fig14_transport_scale");
  std::vector<ScalePoint> rc, dc;
  for (size_t n : sizes) {
    rc.push_back(RunScalePoint(n, lt::LiteTransport::kRc));
    std::printf("# rc %zu nodes done\n", n);
    std::fflush(stdout);
  }
  for (size_t n : sizes) {
    dc.push_back(RunScalePoint(n, lt::LiteTransport::kDc));
    std::printf("# dc %zu nodes done\n", n);
    std::fflush(stdout);
  }
  // Acceptance contract, judged per DC point: per-op latency within 15% of
  // the 8-node RC baseline, and QP state at least (nodes/20)x smaller than
  // RC at the same size — nodes/20 reaches the required 50x at 1000 nodes
  // while scaling down for smoke sweeps (and vacuously passing at 8 nodes,
  // where DC's fixed pool is the larger side). The pass bit rides the
  // x-label so the CI bench gate enforces it exactly.
  const double rc8_mean = rc.front().mean_ns;
  for (size_t i = 0; i < dc.size(); ++i) {
    const uint64_t state_factor = dc[i].nodes / 20;
    dc[i].pass = dc[i].mean_ns <= 1.15 * rc8_mean &&
                 rc[i].qp_bytes >= state_factor * dc[i].qp_bytes;
  }

  std::printf("\n== Fig 14b: transport scale sweep (incast, 64B writes) ==\n");
  std::printf("%-6s %-6s %12s %12s %10s %12s %14s %6s\n", "mode", "nodes", "mean_ns", "p99_ns",
              "qpc_hit", "conn_per_op", "qp_bytes", "pass");
  for (const auto* series : {&rc, &dc}) {
    const char* mode = series == &rc ? "rc" : "dc";
    for (const ScalePoint& pt : *series) {
      std::printf("%-6s %-6zu %12.0f %12.0f %10.3f %12.4f %14llu %6d\n", mode, pt.nodes,
                  pt.mean_ns, pt.p99_ns, pt.qpc_hit, pt.conn_per_op,
                  static_cast<unsigned long long>(pt.qp_bytes), pt.pass ? 1 : 0);
      char x[256];
      std::snprintf(x, sizeof(x),
                    "nodes=%zu;lat_ns=%.0f;p99_ns=%.0f;qpc_hit=%.3f;conn_per_op=%.4f;"
                    "qp_bytes=%llu;pass=%d",
                    pt.nodes, pt.mean_ns, pt.p99_ns, pt.qpc_hit, pt.conn_per_op,
                    static_cast<unsigned long long>(pt.qp_bytes), pt.pass ? 1 : 0);
      sink.AddSnapshot(mode, x, pt.server_snap);
    }
  }
  sink.WriteFile();
  for (const ScalePoint& pt : dc) {
    if (!pt.pass) {
      return 1;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--scale") == 0) {
      return RunScaleSweep(argc, argv, /*smoke=*/false);
    }
    if (std::strcmp(argv[i], "--scale-smoke") == 0) {
      return RunScaleSweep(argc, argv, /*smoke=*/true);
    }
  }
  std::vector<size_t> cluster_sizes = {2, 4, 6, 8};
  benchlib::Series writes{"LITE_write", {}};
  benchlib::Series rpcs{"LITE_RPC", {}};
  std::vector<std::string> xs;
  for (size_t n : cluster_sizes) {
    xs.push_back(std::to_string(n));
    writes.values.push_back(WriteTputReqPerUs(n));
    rpcs.values.push_back(RpcTputReqPerUs(n));
  }
  benchlib::PrintFigure(
      "Fig 14: aggregate throughput vs cluster size (8 threads/node, 64B ops)", "nodes",
      "requests/us", xs, {writes, rpcs});
  // Paper Sec. 6.1 QP accounting: K x N QPs per node.
  std::printf("\n# QP accounting (Sec 6.1): K=2 sharing factor\n");
  std::printf("%-8s %12s %18s %14s\n", "nodes", "LITE(KxN)", "native(2xNxT)", "FaRM(2NT/q,q=4)");
  for (size_t n : cluster_sizes) {
    std::printf("%-8zu %12zu %18zu %14zu\n", n, 2 * (n - 1), 2 * (n - 1) * 8,
                2 * (n - 1) * 8 / 4);
  }
  return 0;
}
