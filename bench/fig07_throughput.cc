// Paper Fig. 7: write throughput (GB/s) vs request size, with 1 and 8
// request-issuing threads: LITE, native Verbs, RDMA-CM, and TCP/IP.
// The 8-thread LITE rows pipeline LT_write_async (window 16/thread — 2x the
// selective-signaling period, so a covering CQE lands mid-window); the
// 1-thread rows and Verbs/RDMA-CM run blocking; qperf's TCP bandwidth test
// runs non-blocking/streaming.
#include <deque>
#include <thread>

#include "bench/benchlib.h"
#include "src/common/timing.h"
#include "src/lite/lite_cluster.h"
#include "src/node/node.h"

namespace {

constexpr uint64_t kBytesPerThread = 48ull << 20;

// RDMA-CM adds a thin connection-management wrapper over Verbs; the paper
// measures it slightly behind raw Verbs. Model: fixed per-op overhead.
constexpr uint64_t kRdmaCmOverheadNs = 120;

double VerbsTputGBs(lt::Cluster* cluster, uint32_t size, int threads, bool rdma_cm) {
  std::vector<uint64_t> ends(threads);
  uint64_t t0 = lt::NowNs();
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      lt::SyncClockTo(t0);
      lt::Process* client = cluster->node(0)->CreateProcess();
      lt::Process* server = cluster->node(1)->CreateProcess();
      auto local = *client->page_table().AllocVirt(size);
      auto remote = *server->page_table().AllocVirt(size);
      auto lmr = *client->verbs().RegisterMr(local, size, lt::kMrAll);
      auto rmr = *server->verbs().RegisterMr(remote, size, lt::kMrAll);
      lt::Qp* q0 = client->verbs().CreateQp(lt::QpType::kRc, client->verbs().CreateCq(),
                                            client->verbs().CreateCq());
      lt::Qp* q1 = server->verbs().CreateQp(lt::QpType::kRc, server->verbs().CreateCq(),
                                            server->verbs().CreateCq());
      q0->Connect(1, q1->qpn());
      q1->Connect(0, q0->qpn());
      const uint64_t ops = kBytesPerThread / size;
      for (uint64_t i = 0; i < ops; ++i) {
        if (rdma_cm) {
          lt::SpinFor(kRdmaCmOverheadNs);
        }
        lt::WorkRequest wr;
        wr.opcode = lt::WrOpcode::kWrite;
        wr.lkey = lmr.lkey;
        wr.local_addr = local;
        wr.length = size;
        wr.rkey = rmr.rkey;
        wr.remote_addr = remote;
        (void)client->verbs().ExecSync(q0, wr);
      }
      ends[t] = lt::NowNs();
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  uint64_t end = t0;
  for (uint64_t e : ends) {
    end = std::max(end, e);
  }
  lt::SyncClockTo(end);
  uint64_t total = kBytesPerThread / size * size * static_cast<uint64_t>(threads);
  return static_cast<double>(total) / static_cast<double>(end - t0);
}

// window <= 1 issues blocking LT_writes; window > 1 pipelines LT_write_async
// behind a per-thread window of that many handles, retiring the oldest with
// LT_wait (the 8-thread rows run async, as the paper's throughput test does).
double LiteTputGBs(lite::LiteCluster* cluster, uint32_t size, int threads, int window) {
  static int run = 0;
  std::string name = "f7_" + std::to_string(run++);
  {
    auto owner = cluster->CreateClient(0, true);
    lite::MallocOptions on1;
    on1.nodes = {1};
    (void)owner->Malloc(std::max<uint64_t>(size, 4096) * 2, name, on1);
  }
  std::vector<uint64_t> ends(threads);
  uint64_t t0 = lt::NowNs();
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      lt::SyncClockTo(t0);
      auto client = cluster->CreateClient(0);
      auto lh = *client->Map(name);
      std::vector<uint8_t> buf(size, 0x5c);
      const uint64_t ops = kBytesPerThread / size;
      std::deque<lite::MemopHandle> handles;
      for (uint64_t i = 0; i < ops; ++i) {
        if (window <= 1) {
          (void)client->Write(lh, 0, buf.data(), size);
          continue;
        }
        auto h = client->WriteAsync(lh, 0, buf.data(), size);
        if (!h.ok()) {
          continue;
        }
        handles.push_back(*h);
        if (handles.size() >= static_cast<size_t>(window)) {
          (void)client->Wait(handles.front());
          handles.pop_front();
        }
      }
      while (!handles.empty()) {
        (void)client->Wait(handles.front());
        handles.pop_front();
      }
      ends[t] = lt::NowNs();
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  uint64_t end = t0;
  for (uint64_t e : ends) {
    end = std::max(end, e);
  }
  lt::SyncClockTo(end);
  uint64_t total = kBytesPerThread / size * size * static_cast<uint64_t>(threads);
  return static_cast<double>(total) / static_cast<double>(end - t0);
}

double TcpTputGBs(lt::Cluster* cluster, uint32_t size) {
  auto pair = lt::TcpStack::ConnectPair(&cluster->node(0)->tcp(), &cluster->node(1)->tcp());
  const uint64_t total = kBytesPerThread;
  std::vector<uint8_t> chunk(size, 1);
  uint64_t end_recv = 0;
  std::thread receiver([&] {
    std::vector<uint8_t> sink(size);
    for (uint64_t got = 0; got < total; got += size) {
      if (!pair.second->RecvExact(sink.data(), size).ok()) {
        return;
      }
    }
    end_recv = lt::NowNs();
  });
  uint64_t t0 = lt::NowNs();
  for (uint64_t sent = 0; sent < total; sent += size) {
    (void)pair.first->StreamSend(chunk.data(), size);  // qperf: non-blocking.
  }
  receiver.join();
  lt::SyncClockTo(end_recv);
  return static_cast<double>(total) / static_cast<double>(end_recv - t0);
}

}  // namespace

int main() {
  std::vector<uint32_t> sizes = {1024, 4096, 16384, 65536};
  lt::SimParams p;
  p.node_phys_mem_bytes = 96ull << 20;
  benchlib::Series lite8{"LITE-8", {}};
  benchlib::Series verbs8{"Verbs-8", {}};
  benchlib::Series cm8{"RDMA-CM-8", {}};
  benchlib::Series lite1{"LITE-1", {}};
  benchlib::Series verbs1{"Verbs-1", {}};
  benchlib::Series cm1{"RDMA-CM-1", {}};
  benchlib::Series tcp{"TCP/IP", {}};
  std::vector<std::string> xs;
  for (uint32_t size : sizes) {
    xs.push_back(benchlib::HumanBytes(size));
    {
      lite::LiteCluster lite_cluster(2, p);
      lite8.values.push_back(LiteTputGBs(&lite_cluster, size, 8, /*window=*/16));
      lite1.values.push_back(LiteTputGBs(&lite_cluster, size, 1, /*window=*/1));
    }
    {
      lt::Cluster cluster(2, p);
      verbs8.values.push_back(VerbsTputGBs(&cluster, size, 8, false));
      verbs1.values.push_back(VerbsTputGBs(&cluster, size, 1, false));
      cm8.values.push_back(VerbsTputGBs(&cluster, size, 8, true));
      cm1.values.push_back(VerbsTputGBs(&cluster, size, 1, true));
      tcp.values.push_back(TcpTputGBs(&cluster, size));
    }
  }
  benchlib::PrintFigure("Fig 7: write throughput vs size (1 and 8 threads)", "size", "GB/s", xs,
                        {lite8, verbs8, cm8, lite1, verbs1, cm1, tcp});
  return 0;
}
