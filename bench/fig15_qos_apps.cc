// Paper Fig. 15: QoS with real applications — LITE-Log and LITE-Graph run
// high-priority while background low-priority writers hammer four nodes.
// Bars: no background traffic (baseline 1.0 reference is NoQoS), SW-Pri,
// HW-Sep, and no QoS.
#include <atomic>
#include <thread>

#include "bench/benchlib.h"
#include "src/apps/graph.h"
#include "src/apps/lite_log.h"
#include "src/apps/workloads.h"
#include "src/common/timing.h"
#include "src/lite/lite_cluster.h"

namespace {

constexpr int kBgThreads = 8;
constexpr int kLogCommits = 1500;
// Background writers get a fixed op budget sized to cover the measured
// app's virtual-time window (virtual reservations make the contention
// correct regardless of real thread interleaving).
constexpr int kBgOps = 6000;

struct BgLoad {
  std::vector<std::thread> threads;

  void Start(lite::LiteCluster* cluster, uint64_t start_vtime) {
    for (int t = 0; t < kBgThreads; ++t) {
      threads.emplace_back([cluster, t, start_vtime] {
        lt::SyncClockTo(start_vtime);
        auto client = cluster->CreateClient(0, true);
        client->set_priority(lite::Priority::kLow);
        lite::MallocOptions mo;
        mo.nodes = {1 + static_cast<lt::NodeId>(t % 4)};
        auto lh = client->Malloc(256 << 10, "bg_" + std::to_string(t), mo);
        if (!lh.ok()) {
          return;
        }
        std::vector<uint8_t> buf(16 << 10, 9);
        for (int i = 0; i < kBgOps; ++i) {
          (void)client->Write(*lh, 0, buf.data(), buf.size());
          if (i % 64 == 0) {
            // Keep real-time interleaving close to virtual-time interleaving
            // so the QoS monitor sees the competing flows concurrently.
            std::this_thread::sleep_for(std::chrono::microseconds(200));
          }
        }
      });
    }
  }
  void Stop() {
    for (auto& t : threads) {
      t.join();
    }
    threads.clear();
  }
};

// LITE-Log commit throughput (commits/ms) with the given policy + bg load.
double LogScore(lite::QosPolicy policy, bool background) {
  lt::SimParams p;
  p.node_phys_mem_bytes = 64ull << 20;
  p.lite_qp_sharing_factor = 4;
  lite::LiteCluster cluster(5, p);
  for (size_t n = 0; n < cluster.size(); ++n) {
    cluster.instance(n)->qos().SetPolicy(policy);
  }
  BgLoad bg;
  if (background) {
    bg.Start(&cluster, lt::NowNs());
  }
  // The log lives on node 4 (one of the background-traffic targets) and the
  // committer runs on node 1, so commits genuinely share contended fabric.
  {
    auto allocator = cluster.CreateClient(4, true);
    (void)liteapp::LiteLog::Create(allocator.get(), "qos_log", 4 << 20);
  }
  auto owner = cluster.CreateClient(1, true);
  owner->set_priority(lite::Priority::kHigh);
  auto log = *liteapp::LiteLog::Open(owner.get(), "qos_log");
  uint8_t entry[64] = {5};
  uint64_t t0 = lt::NowNs();
  for (int i = 0; i < kLogCommits; ++i) {
    (void)log.Commit({liteapp::LogEntry{entry, sizeof(entry)}});
  }
  double score = static_cast<double>(kLogCommits) * 1e6 / static_cast<double>(lt::NowNs() - t0);
  if (background) {
    bg.Stop();
  }
  return score;
}

// LITE-Graph performance (1 / runtime, scaled) with the given policy.
double GraphScore(lite::QosPolicy policy, bool background) {
  lt::SimParams p;
  p.node_phys_mem_bytes = 64ull << 20;
  p.lite_qp_sharing_factor = 4;
  lite::LiteCluster cluster(5, p);
  for (size_t n = 0; n < cluster.size(); ++n) {
    cluster.instance(n)->qos().SetPolicy(policy);
  }
  BgLoad bg;
  if (background) {
    bg.Start(&cluster, lt::NowNs());
  }
  liteapp::SyntheticGraph graph = liteapp::GeneratePowerLawGraph(20000, 120000);
  liteapp::PageRankOptions options;
  options.iterations = 15;
  auto result = liteapp::LiteGraphPageRank(&cluster, graph, 4, options);
  if (background) {
    bg.Stop();
  }
  return 1e9 / static_cast<double>(result.total_ns);
}

}  // namespace

int main() {
  std::vector<std::string> xs = {"No_bg_traffic", "SW-Pri", "HW-Sep", "No_QoS"};
  benchlib::Series log_series{"LITE-Log", {}};
  benchlib::Series graph_series{"LITE-Graph", {}};

  double log_base = LogScore(lite::QosPolicy::kNone, /*background=*/false);
  double graph_base = GraphScore(lite::QosPolicy::kNone, /*background=*/false);
  double log_noqos = LogScore(lite::QosPolicy::kNone, true);
  double graph_noqos = GraphScore(lite::QosPolicy::kNone, true);

  // Normalize against the no-QoS-with-background run (paper's baseline).
  log_series.values = {log_base / log_noqos,
                       LogScore(lite::QosPolicy::kSwPri, true) / log_noqos,
                       LogScore(lite::QosPolicy::kHwSep, true) / log_noqos, 1.0};
  graph_series.values = {graph_base / graph_noqos,
                         GraphScore(lite::QosPolicy::kSwPri, true) / graph_noqos,
                         GraphScore(lite::QosPolicy::kHwSep, true) / graph_noqos, 1.0};

  benchlib::PrintFigure("Fig 15: QoS with real applications (normalized to no-QoS)", "scheme",
                        "relative performance", xs, {log_series, graph_series});
  return 0;
}
