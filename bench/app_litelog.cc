// Paper Sec. 8.1: LITE-Log commit throughput — scaling with the number of
// concurrently committing nodes and with transaction size. (The paper
// reports 833K commits/s for two nodes committing 16 B single-entry
// transactions.)
#include <thread>

#include "bench/benchlib.h"
#include "src/apps/lite_log.h"
#include "src/common/timing.h"
#include "src/lite/lite_cluster.h"

namespace {

constexpr int kCommitsPerWriter = 2000;

double CommitsPerSec(size_t writers, uint32_t entry_bytes) {
  lt::SimParams p;
  p.node_phys_mem_bytes = 96ull << 20;
  lite::LiteCluster cluster(writers + 1, p);
  {
    auto allocator = cluster.CreateClient(0, true);
    (void)liteapp::LiteLog::Create(allocator.get(), "tput_log", 16 << 20);
  }
  std::vector<uint64_t> ends(writers);
  uint64_t t0 = lt::NowNs();
  std::vector<std::thread> threads;
  for (size_t w = 0; w < writers; ++w) {
    threads.emplace_back([&, w] {
      lt::SyncClockTo(t0);
      auto client = cluster.CreateClient(static_cast<lt::NodeId>(w + 1), true);
      auto log = *liteapp::LiteLog::Open(client.get(), "tput_log");
      std::vector<uint8_t> entry(entry_bytes, 0x17);
      for (int i = 0; i < kCommitsPerWriter; ++i) {
        (void)log.Commit({liteapp::LogEntry{entry.data(), entry_bytes}});
      }
      ends[w] = lt::NowNs();
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  uint64_t end = t0;
  for (uint64_t e : ends) {
    end = std::max(end, e);
  }
  lt::SyncClockTo(end);
  return static_cast<double>(writers * kCommitsPerWriter) * 1e9 /
         static_cast<double>(end - t0);
}

}  // namespace

int main() {
  {
    benchlib::Series tput{"Kcommits_per_s", {}};
    std::vector<std::string> xs;
    for (size_t writers : {1u, 2u, 4u, 6u, 8u}) {
      xs.push_back(std::to_string(writers) + "-node");
      tput.values.push_back(CommitsPerSec(writers, 16) / 1000.0);
    }
    benchlib::PrintFigure("LITE-Log: commit throughput vs writer nodes (16B entries)", "writers",
                          "K commits/s", xs, {tput});
  }
  {
    benchlib::Series tput{"Kcommits_per_s", {}};
    std::vector<std::string> xs;
    for (uint32_t bytes : {16u, 64u, 256u, 1024u, 4096u}) {
      xs.push_back(benchlib::HumanBytes(bytes));
      tput.values.push_back(CommitsPerSec(2, bytes) / 1000.0);
    }
    benchlib::PrintFigure("LITE-Log: commit throughput vs transaction size (2 writers)",
                          "entry_size", "K commits/s", xs, {tput});
  }
  return 0;
}
