// Paper Fig. 5: RDMA write throughput vs total (L)MR size.
// One region; each op writes 64 B or 1 KB at a random offset. Native Verbs
// falls off a cliff once the working set of PTEs exceeds the RNIC's MTT
// cache (~4 MB); LITE's physical-address global MR never touches the MTT.
#include <cstdio>

#include "bench/benchlib.h"
#include "src/common/rng.h"
#include "src/common/timing.h"
#include "src/lite/lite_cluster.h"
#include "src/node/node.h"

namespace {

constexpr int kOpsPerPoint = 4000;
constexpr int kWindow = 64;  // Outstanding pipelined requests.

// Pipelined native-Verbs throughput in requests/us.
double VerbsTputPerUs(uint64_t mr_bytes, uint32_t op_bytes) {
  lt::SimParams p;
  p.node_phys_mem_bytes = mr_bytes + (64ull << 20);
  lt::Cluster cluster(2, p);
  lt::Process* client = cluster.node(0)->CreateProcess();
  lt::Process* server = cluster.node(1)->CreateProcess();

  auto remote = server->page_table().AllocVirt(mr_bytes);
  auto rmr = *server->verbs().RegisterMr(*remote, mr_bytes, lt::kMrAll);
  auto local = client->page_table().AllocVirt(op_bytes);
  auto lmr = *client->verbs().RegisterMr(*local, op_bytes, lt::kMrAll);
  lt::Cq* scq = client->verbs().CreateCq();
  lt::Qp* q0 = client->verbs().CreateQp(lt::QpType::kRc, scq, client->verbs().CreateCq());
  lt::Qp* q1 = server->verbs().CreateQp(lt::QpType::kRc, server->verbs().CreateCq(),
                                        server->verbs().CreateCq());
  q0->Connect(1, q1->qpn());
  q1->Connect(0, q0->qpn());

  lt::Rng rng(7);
  auto run = [&](int ops, uint64_t wr_base) {
    int outstanding = 0;
    for (int i = 0; i < ops; ++i) {
      lt::WorkRequest wr;
      wr.opcode = lt::WrOpcode::kWrite;
      wr.lkey = lmr.lkey;
      wr.local_addr = *local;
      wr.length = op_bytes;
      wr.rkey = rmr.rkey;
      wr.remote_addr = *remote + rng.NextBounded(mr_bytes - op_bytes);
      wr.wr_id = wr_base + static_cast<uint64_t>(i) + 1;
      (void)cluster.node(0)->rnic().PostSend(q0, wr);
      if (++outstanding >= kWindow) {
        if (scq->WaitPoll(1'000'000'000, lt::WaitMode::kBusyPoll).has_value()) {
          --outstanding;
        }
      }
    }
    while (outstanding > 0 &&
           scq->WaitPoll(1'000'000'000, lt::WaitMode::kBusyPoll).has_value()) {
      --outstanding;
    }
  };
  // Warm-up pass: past the MTT-cache capacity random accesses keep missing
  // regardless (the Fig. 5 cliff); below it this settles the steady state.
  run(kOpsPerPoint / 2, 1'000'000);
  uint64_t t0 = lt::NowNs();
  run(kOpsPerPoint, 0);
  return static_cast<double>(kOpsPerPoint) * 1000.0 / static_cast<double>(lt::NowNs() - t0);
}

// LITE throughput pipelining LT_write_async behind a 64-deep handle window —
// the same issuing shape as the Verbs side above — retiring the oldest with
// LT_wait_all at the end. The instance's own 64-deep in-flight window paces
// the stream: once it fills, each LT_write_async retires the oldest op inside
// the same user/kernel crossing, so the steady state pays one crossing per op
// and zero per-completion syscalls — the usage the async API is designed for.
double LiteTputPerUs(uint64_t lmr_bytes, uint32_t op_bytes) {
  lt::SimParams p;
  p.node_phys_mem_bytes = lmr_bytes + (64ull << 20);
  lite::LiteCluster cluster(2, p);
  auto owner = cluster.CreateClient(1, true);
  lite::MallocOptions on1;
  on1.nodes = {1};
  // Allocate from node 1 itself so the big LMR lives there.
  auto name = "f5_" + std::to_string(lmr_bytes) + "_" + std::to_string(op_bytes);
  auto lh = owner->Malloc(lmr_bytes, name, on1);
  if (!lh.ok()) {
    return 0;
  }
  auto client = cluster.CreateClient(0);
  auto my_lh = *client->Map(name);
  std::vector<uint8_t> buf(op_bytes, 0x7a);
  lt::Rng rng(100);
  auto run = [&](int ops) {
    for (int i = 0; i < ops; ++i) {
      (void)client->WriteAsync(my_lh, rng.NextBounded(lmr_bytes - op_bytes), buf.data(),
                               op_bytes);
    }
    (void)client->WaitAll();
  };
  run(kOpsPerPoint / 2);  // Warm-up, mirroring the Verbs measurement.
  uint64_t t0 = lt::NowNs();
  run(kOpsPerPoint);
  return static_cast<double>(kOpsPerPoint) * 1000.0 / static_cast<double>(lt::NowNs() - t0);
}

}  // namespace

int main() {
  std::vector<uint64_t> sizes_mb = {1, 4, 16, 64, 256, 1024};
  benchlib::Series lite64{"LITE_write-64B", {}};
  benchlib::Series verbs64{"Verbs_write-64B", {}};
  benchlib::Series lite1k{"LITE_write-1K", {}};
  benchlib::Series verbs1k{"Verbs_write-1K", {}};
  std::vector<std::string> xs;
  for (uint64_t mb : sizes_mb) {
    xs.push_back(std::to_string(mb) + "MB");
    uint64_t bytes = mb << 20;
    lite64.values.push_back(LiteTputPerUs(bytes, 64));
    verbs64.values.push_back(VerbsTputPerUs(bytes, 64));
    lite1k.values.push_back(LiteTputPerUs(bytes, 1024));
    verbs1k.values.push_back(VerbsTputPerUs(bytes, 1024));
  }
  benchlib::PrintFigure("Fig 5: RDMA write throughput vs total (L)MR size (random 64B/1KB writes)",
                        "total_size", "requests/us", xs, {lite64, verbs64, lite1k, verbs1k});
  return 0;
}
