// Paper Fig. 8: (de)registration / (un)mapping latency vs region size.
// Native MR registration pins every page; LT_map is a constant-cost
// metadata operation (the LMR here is local, per the paper's caption).
#include "bench/benchlib.h"
#include "src/common/timing.h"
#include "src/lite/lite_cluster.h"
#include "src/node/node.h"

namespace {

constexpr int kReps = 40;

}  // namespace

int main() {
  std::vector<uint64_t> sizes = {1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20};
  lt::SimParams p;
  p.node_phys_mem_bytes = 128ull << 20;

  benchlib::Series verbs_reg{"Verbs_register", {}};
  benchlib::Series verbs_dereg{"Verbs_deregister", {}};
  benchlib::Series lite_map{"LITE_map", {}};
  benchlib::Series lite_unmap{"LITE_unmap", {}};
  std::vector<std::string> xs;

  for (uint64_t size : sizes) {
    xs.push_back(benchlib::HumanBytes(size));
    // ---- Native Verbs ----
    {
      lt::Cluster cluster(1, p);
      lt::Process* proc = cluster.node(0)->CreateProcess();
      uint64_t reg_total = 0;
      uint64_t dereg_total = 0;
      for (int i = 0; i < kReps; ++i) {
        auto va = *proc->page_table().AllocVirt(size);
        uint64_t t0 = lt::NowNs();
        auto mr = *proc->verbs().RegisterMr(va, size, lt::kMrAll);
        reg_total += lt::NowNs() - t0;
        t0 = lt::NowNs();
        (void)proc->verbs().DeregisterMr(mr);
        dereg_total += lt::NowNs() - t0;
        (void)proc->page_table().FreeVirt(va);
      }
      verbs_reg.values.push_back(static_cast<double>(reg_total) / kReps / 1000.0);
      verbs_dereg.values.push_back(static_cast<double>(dereg_total) / kReps / 1000.0);
    }
    // ---- LITE map/unmap of a local LMR ----
    {
      lite::LiteCluster cluster(2, p);
      auto owner = cluster.CreateClient(0, true);
      std::string name = "f8_" + std::to_string(size);
      (void)owner->Malloc(size, name);
      uint64_t map_total = 0;
      uint64_t unmap_total = 0;
      for (int i = 0; i < kReps; ++i) {
        uint64_t t0 = lt::NowNs();
        auto lh = *owner->Map(name);
        map_total += lt::NowNs() - t0;
        t0 = lt::NowNs();
        (void)owner->Unmap(lh);
        unmap_total += lt::NowNs() - t0;
      }
      lite_map.values.push_back(static_cast<double>(map_total) / kReps / 1000.0);
      lite_unmap.values.push_back(static_cast<double>(unmap_total) / kReps / 1000.0);
    }
  }
  benchlib::PrintFigure("Fig 8: (de)registration latency vs size", "size", "latency (us)", xs,
                        {verbs_reg, verbs_dereg, lite_unmap, lite_map});
  return 0;
}
