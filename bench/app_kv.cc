// KV store on LITE: RPC GET vs one-sided GET (the design-space comparison
// the paper's Sec. 2.4 KV discussion motivates — and which native RDMA can
// only support with thousands of MRs, while LITE needs zero extra RNIC
// state). Uses the Facebook value-size distribution.
#include "bench/benchlib.h"
#include "src/apps/kv_store.h"
#include "src/apps/workloads.h"
#include "src/common/timing.h"

int main() {
  lt::SimParams p;
  p.node_phys_mem_bytes = 64ull << 20;
  lite::LiteCluster cluster(2, p);
  liteapp::LiteKvServer server(&cluster, 0, 2);
  server.Start();
  liteapp::LiteKvClient client(&cluster, 1, 0);

  // Populate.
  liteapp::FacebookKvSampler sampler(31);
  constexpr int kKeys = 300;
  std::vector<uint32_t> sizes(kKeys);
  for (int i = 0; i < kKeys; ++i) {
    sizes[i] = std::min<uint32_t>(sampler.NextValueSize(), 8000);
    std::vector<uint8_t> value(sizes[i], static_cast<uint8_t>(i));
    (void)client.Put("key" + std::to_string(i), value.data(), sizes[i]);
  }

  constexpr int kReads = 2000;
  lt::Rng rng(5);

  uint64_t t0 = lt::NowNs();
  for (int i = 0; i < kReads; ++i) {
    (void)client.Get("key" + std::to_string(rng.NextBounded(kKeys)));
  }
  double rpc_us = static_cast<double>(lt::NowNs() - t0) / kReads / 1000.0;

  // Warm the location cache, then measure the pure one-sided path.
  for (int i = 0; i < kKeys; ++i) {
    (void)client.GetDirect("key" + std::to_string(i));
  }
  t0 = lt::NowNs();
  for (int i = 0; i < kReads; ++i) {
    (void)client.GetDirect("key" + std::to_string(rng.NextBounded(kKeys)));
  }
  double direct_us = static_cast<double>(lt::NowNs() - t0) / kReads / 1000.0;

  benchlib::PrintFigure(
      "KV store GET paths on LITE (Facebook value sizes)", "path", "latency (us)",
      {"RPC_GET", "one-sided_GET"},
      {benchlib::Series{"latency_us", {rpc_us, direct_us}}});
  std::printf("# one-sided GET uses zero server CPU and one LT_read once the\n"
              "# location is cached; RPC GET costs a full request/reply.\n");
  server.Stop();
  return 0;
}
