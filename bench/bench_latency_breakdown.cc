// Per-op latency attribution bench + regression anchor.
//
// Drives the three op shapes (blocking memop, async memop window, RPC) on a
// fig06-sized cluster, prints the human-readable stage waterfall, and writes
// BENCH_latency_breakdown.json (the check_bench.py anchor). Exits non-zero
// if attribution stops conserving: the 64B blocking-write stage sums must
// reconcile with end-to-end within 1%, and the health watchdog must be clean.
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "bench/benchlib.h"
#include "src/common/timing.h"
#include "src/lite/lite_cluster.h"
#include "src/node/node.h"
#include "src/telemetry/latency_attr.h"

namespace {

constexpr int kWriteReps = 300;  // Mirrors fig06's 64B series.
constexpr int kAsyncReps = 256;
constexpr int kRpcReps = 100;

// Sum of the committed stage histograms for `base` (no ".e2e" suffix).
uint64_t StageSum(const lt::telemetry::MetricsSnapshot& snap, const std::string& base) {
  uint64_t sum = 0;
  for (int s = 0; s < lt::telemetry::kLatStageCount; ++s) {
    auto it = snap.histograms.find(base + '.' + lt::telemetry::LatStageName(s));
    if (it != snap.histograms.end()) {
      sum += it->second.sum;
    }
  }
  return sum;
}

}  // namespace

int main(int argc, char** argv) {
  benchlib::TelemetrySink sink = benchlib::TelemetrySink::FromArgs(
      argc, argv, "bench_latency_breakdown", "BENCH_latency_breakdown.json");

  lt::SimParams p;  // Paper-calibrated params: same latency model as fig06.
  p.node_phys_mem_bytes = 64ull << 20;
  lite::LiteCluster cluster(2, p);
  auto user = cluster.CreateClient(0, /*kernel_level=*/false);
  lite::MallocOptions on1;
  on1.nodes = {1};
  auto lh = user->Malloc(1 << 20, "latbd_target", on1);
  if (!lh.ok()) {
    std::fprintf(stderr, "malloc failed\n");
    return 1;
  }

  // --- blocking 64B writes (the fig06 fast path, attribution always on) ---
  std::vector<uint8_t> buf(4096, 0x11);
  lt::Histogram per_op_us;
  for (int i = 0; i < kWriteReps; ++i) {
    uint64_t t0 = lt::NowNs();
    (void)user->Write(*lh, 0, buf.data(), 64);
    per_op_us.Add(static_cast<double>(lt::NowNs() - t0) / 1000.0);
  }
  for (int i = 0; i < kWriteReps / 3; ++i) {
    (void)user->Read(*lh, 0, buf.data(), 4096);
  }
  benchlib::PrintLatencyStats("LITE_write 64B per-op (us)", per_op_us);
  sink.AddSnapshot("blocking", "reps=300", cluster.instance(0)->StatSnapshot());

  // --- async write window (detached records, cross-thread retirement) ---
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < kAsyncReps / 4; ++i) {
      (void)user->WriteAsync(*lh, static_cast<uint64_t>(i) * 4096, buf.data(), 64);
    }
    (void)user->WaitAll();
  }
  sink.AddSnapshot("async", "reps=256", cluster.instance(0)->StatSnapshot());

  // --- RPC round trips (reply wait split into transport + remote_svc) ---
  auto server = cluster.CreateClient(1, /*kernel_level=*/true);
  (void)server->RegisterRpc(3);
  std::thread service([&] {
    for (int i = 0; i < kRpcReps; ++i) {
      auto inc = server->RecvRpc(3);
      if (!inc.ok()) {
        return;
      }
      (void)server->ReplyRpc(inc->token, "pong", 4);
    }
  });
  char out[16];
  uint32_t out_len = 0;
  for (int i = 0; i < kRpcReps; ++i) {
    (void)user->Rpc(1, 3, "ping", 4, out, sizeof(out), &out_len);
  }
  service.join();
  sink.AddSnapshot("rpc", "reps=100", cluster.instance(0)->StatSnapshot());

  // --- the waterfall itself ---
  std::printf("%s", cluster.DumpLatencyBreakdown().c_str());

  // --- self-checks: conservation + watchdog gate this binary's exit code ---
  const auto snap = cluster.instance(0)->StatSnapshot();
  const auto e2e = snap.histograms.find("lite.lat.write.64B.hi.e2e");
  if (e2e == snap.histograms.end() || e2e->second.count < static_cast<uint64_t>(kWriteReps)) {
    std::fprintf(stderr, "FAIL: lite.lat.write.64B.hi.e2e missing or undercounted\n");
    return 1;
  }
  const uint64_t stages = StageSum(snap, "lite.lat.write.64B.hi");
  const double drift =
      e2e->second.sum == 0
          ? 0.0
          : static_cast<double>(stages > e2e->second.sum ? stages - e2e->second.sum
                                                         : e2e->second.sum - stages) /
                static_cast<double>(e2e->second.sum);
  std::printf("# 64B write: e2e sum=%" PRIu64 "ns stages sum=%" PRIu64 "ns drift=%.4f%%\n",
              e2e->second.sum, stages, drift * 100.0);
  if (drift > 0.01) {
    std::fprintf(stderr, "FAIL: 64B write stage sums drift %.2f%% from e2e (>1%%)\n",
                 drift * 100.0);
    return 1;
  }
  const auto violations = cluster.RunHealthCheck();
  for (const std::string& v : violations) {
    std::fprintf(stderr, "FAIL: watchdog: %s\n", v.c_str());
  }
  if (!violations.empty()) {
    return 1;
  }
  std::printf("# health watchdog: clean\n");
  sink.WriteFile();
  return 0;
}
