// Shared output helpers for the figure-reproduction benches: every binary
// prints the series of one paper figure in a uniform, greppable table format.
#ifndef BENCH_BENCHLIB_H_
#define BENCH_BENCHLIB_H_

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/common/histogram.h"
#include "src/telemetry/metrics.h"

namespace benchlib {

struct Series {
  std::string name;
  std::vector<double> values;  // One per x position.
};

// Prints:
//   == <title> ==
//   <xlabel>  <series...>
//   <x0>      <v> <v> ...
inline void PrintFigure(const std::string& title, const std::string& xlabel,
                        const std::string& ylabel, const std::vector<std::string>& xs,
                        const std::vector<Series>& series) {
  std::printf("\n== %s ==\n", title.c_str());
  std::printf("# y-axis: %s\n", ylabel.c_str());
  std::printf("%-16s", xlabel.c_str());
  for (const Series& s : series) {
    std::printf(" %16s", s.name.c_str());
  }
  std::printf("\n");
  for (size_t i = 0; i < xs.size(); ++i) {
    std::printf("%-16s", xs[i].c_str());
    for (const Series& s : series) {
      if (i < s.values.size()) {
        std::printf(" %16.3f", s.values[i]);
      } else {
        std::printf(" %16s", "-");
      }
    }
    std::printf("\n");
  }
  std::fflush(stdout);
}

inline std::string HumanBytes(uint64_t bytes) {
  if (bytes >= (1ull << 20)) {
    return std::to_string(bytes >> 20) + "MB";
  }
  if (bytes >= 1024) {
    return std::to_string(bytes >> 10) + "KB";
  }
  return std::to_string(bytes) + "B";
}

// Prints one "# <label>: ..." stats comment from a consistent histogram
// snapshot (Histogram::Snapshot takes the lock once; interleaving count() and
// Percentile() against concurrent Add()s can disagree).
inline void PrintLatencyStats(const std::string& label, const lt::Histogram& hist) {
  lt::HistogramStats s = hist.Snapshot();
  std::printf("# %s: n=%zu mean=%.3f p50=%.3f p99=%.3f min=%.3f max=%.3f\n", label.c_str(),
              s.count, s.mean, s.Percentile(50), s.Percentile(99), s.min, s.max);
}

// --------------------------------------------------------------- telemetry
//
// Every fig bench can emit a machine-readable telemetry sidecar:
//
//   fig04_mr_count --telemetry out.json
//
// Schema:
//   {"bench": "<name>",
//    "points": [{"series": "...", "x": "...",
//                "metrics": {...}, "histograms": {...}}, ...],
//    "cluster": {...}}          <- optional full Cluster::DumpTelemetryJson()
//
// Each point embeds one lt::telemetry::MetricsSnapshot taken right after the
// corresponding figure point was measured.
class TelemetrySink {
 public:
  // Parses "--telemetry <path>" / "--telemetry=<path>" from argv. A sink with
  // no path is disabled: Add* and WriteFile become no-ops. A bench that must
  // always emit its sidecar (e.g. bench_micro's BENCH_async_depth.json, a
  // regression anchor for later PRs) passes `default_path`, used when the
  // flag is absent.
  static TelemetrySink FromArgs(int argc, char** argv, const std::string& bench,
                                const std::string& default_path = "") {
    TelemetrySink sink;
    sink.bench_ = bench;
    sink.path_ = default_path;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--telemetry") == 0 && i + 1 < argc) {
        sink.path_ = argv[i + 1];
      } else if (std::strncmp(argv[i], "--telemetry=", 12) == 0) {
        sink.path_ = argv[i] + 12;
      }
    }
    return sink;
  }

  bool enabled() const { return !path_.empty(); }
  const std::string& path() const { return path_; }

  void AddSnapshot(const std::string& series, const std::string& x,
                   const lt::telemetry::MetricsSnapshot& snap) {
    if (!enabled()) {
      return;
    }
    // snap.ToJson() is {"metrics":{...},"histograms":{...}}; splice the
    // series/x labels into the same object.
    std::string body = snap.ToJson();
    points_.push_back("{\"series\":\"" + lt::telemetry::JsonEscape(series) + "\",\"x\":\"" +
                      lt::telemetry::JsonEscape(x) + "\"," + body.substr(1));
  }

  // Attaches a full cluster dump (Cluster::DumpTelemetryJson()) to the sidecar.
  void SetClusterDump(const std::string& cluster_json) {
    if (enabled()) {
      cluster_json_ = cluster_json;
    }
  }

  // Writes the sidecar; returns false on I/O failure (and when disabled).
  bool WriteFile() const {
    if (!enabled()) {
      return false;
    }
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "telemetry: cannot open %s\n", path_.c_str());
      return false;
    }
    std::fprintf(f, "{\"bench\":\"%s\",\"points\":[", lt::telemetry::JsonEscape(bench_).c_str());
    for (size_t i = 0; i < points_.size(); ++i) {
      std::fprintf(f, "%s%s", i == 0 ? "" : ",", points_[i].c_str());
    }
    std::fprintf(f, "]");
    if (!cluster_json_.empty()) {
      std::fprintf(f, ",\"cluster\":%s", cluster_json_.c_str());
    }
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("# telemetry sidecar: %s (%zu points)\n", path_.c_str(), points_.size());
    return true;
  }

 private:
  std::string bench_;
  std::string path_;
  std::vector<std::string> points_;
  std::string cluster_json_;
};

// --trace-out: Chrome trace-event export.
//
//   fig10_rpc_latency --trace-out trace.json
//
// When the flag is present the bench turns tracing on (sample every op) and,
// after the run, writes all sampled spans + flight-recorder events as a
// chrome://tracing / Perfetto file via Cluster::ExportChromeTrace. With the
// flag absent the bench's measured output is unchanged.
class TraceSink {
 public:
  // Parses "--trace-out <path>" / "--trace-out=<path>" from argv.
  static TraceSink FromArgs(int argc, char** argv) {
    TraceSink sink;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
        sink.path_ = argv[i + 1];
      } else if (std::strncmp(argv[i], "--trace-out=", 12) == 0) {
        sink.path_ = argv[i] + 12;
      }
    }
    return sink;
  }

  bool enabled() const { return !path_.empty(); }
  const std::string& path() const { return path_; }

  // Exports via `cluster` (any type with ExportChromeTrace(path)). No-op
  // when disabled; prints the sidecar line on success.
  template <typename Cluster>
  bool Export(Cluster& cluster) const {
    if (!enabled()) {
      return false;
    }
    if (!cluster.ExportChromeTrace(path_)) {
      std::fprintf(stderr, "trace: cannot write %s\n", path_.c_str());
      return false;
    }
    std::printf("# chrome trace: %s\n", path_.c_str());
    return true;
  }

 private:
  std::string path_;
};

}  // namespace benchlib

#endif  // BENCH_BENCHLIB_H_
