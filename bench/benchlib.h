// Shared output helpers for the figure-reproduction benches: every binary
// prints the series of one paper figure in a uniform, greppable table format.
#ifndef BENCH_BENCHLIB_H_
#define BENCH_BENCHLIB_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace benchlib {

struct Series {
  std::string name;
  std::vector<double> values;  // One per x position.
};

// Prints:
//   == <title> ==
//   <xlabel>  <series...>
//   <x0>      <v> <v> ...
inline void PrintFigure(const std::string& title, const std::string& xlabel,
                        const std::string& ylabel, const std::vector<std::string>& xs,
                        const std::vector<Series>& series) {
  std::printf("\n== %s ==\n", title.c_str());
  std::printf("# y-axis: %s\n", ylabel.c_str());
  std::printf("%-16s", xlabel.c_str());
  for (const Series& s : series) {
    std::printf(" %16s", s.name.c_str());
  }
  std::printf("\n");
  for (size_t i = 0; i < xs.size(); ++i) {
    std::printf("%-16s", xs[i].c_str());
    for (const Series& s : series) {
      if (i < s.values.size()) {
        std::printf(" %16.3f", s.values[i]);
      } else {
        std::printf(" %16s", "-");
      }
    }
    std::printf("\n");
  }
  std::fflush(stdout);
}

inline std::string HumanBytes(uint64_t bytes) {
  if (bytes >= (1ull << 20)) {
    return std::to_string(bytes >> 20) + "MB";
  }
  if (bytes >= 1024) {
    return std::to_string(bytes >> 10) + "KB";
  }
  return std::to_string(bytes) + "B";
}

}  // namespace benchlib

#endif  // BENCH_BENCHLIB_H_
