#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file produced by --trace-out.

Checks (stdlib only, no pip deps):
  * the file parses as JSON and has a traceEvents array
  * duration events are balanced: every E closes a B on the same (pid, tid)
  * timestamps are monotonically non-decreasing per (pid, tid) lane
  * every flow finish ('f') has a matching flow start ('s') with the same
    (cat, id)
  * with --require-flow: at least one flow edge joins spans on two different
    pids (i.e. one RPC is stitched client -> server across nodes)

Exit status: 0 on success, 1 on validation failure, 2 on usage/IO error.
"""

import argparse
import json
import sys
from collections import defaultdict


def fail(msg):
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("trace", help="trace JSON file written by --trace-out")
    ap.add_argument(
        "--require-flow",
        action="store_true",
        help="require at least one cross-pid flow edge (stitched RPC)",
    )
    args = ap.parse_args()

    try:
        with open(args.trace, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except OSError as e:
        print(f"check_trace: cannot read {args.trace}: {e}", file=sys.stderr)
        sys.exit(2)
    except json.JSONDecodeError as e:
        fail(f"not valid JSON: {e}")

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail("top-level object has no traceEvents array")
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        fail("traceEvents is empty")

    depth = defaultdict(list)      # (pid, tid) -> stack of open B names
    last_ts = {}                   # (pid, tid) -> last ts seen
    flow_starts = defaultdict(set)  # (cat, id) -> set of pids where 's' fired
    flow_pairs = []                # (start_pids, finish_pid) per 'f'
    counts = defaultdict(int)

    for i, e in enumerate(events):
        ph = e.get("ph")
        counts[ph] += 1
        if ph == "M":
            continue
        for key in ("pid", "tid", "ts"):
            if key not in e:
                fail(f"event #{i} ({ph!r}) missing {key!r}")
        lane = (e["pid"], e["tid"])
        ts = e["ts"]
        if lane in last_ts and ts < last_ts[lane]:
            fail(
                f"event #{i} ts {ts} goes backwards on pid={lane[0]} "
                f"tid={lane[1]} (prev {last_ts[lane]})"
            )
        last_ts[lane] = ts

        if ph == "B":
            depth[lane].append(e.get("name", "?"))
        elif ph == "E":
            if not depth[lane]:
                fail(f"event #{i}: E without open B on pid={lane[0]} tid={lane[1]}")
            depth[lane].pop()
        elif ph == "s":
            flow_starts[(e.get("cat"), e.get("id"))].add(e["pid"])
        elif ph == "f":
            key = (e.get("cat"), e.get("id"))
            if key not in flow_starts:
                fail(f"event #{i}: flow finish id={e.get('id')} has no start")
            flow_pairs.append((flow_starts[key], e["pid"]))

    for lane, stack in depth.items():
        if stack:
            fail(
                f"unclosed B events on pid={lane[0]} tid={lane[1]}: "
                + ", ".join(stack)
            )

    if counts["B"] != counts["E"]:
        fail(f"B/E count mismatch: {counts['B']} B vs {counts['E']} E")

    cross_pid_flows = sum(
        1 for start_pids, finish_pid in flow_pairs if any(p != finish_pid for p in start_pids)
    )
    if args.require_flow and cross_pid_flows == 0:
        fail("no cross-pid flow edges: no RPC stitched across nodes")

    print(
        f"check_trace: OK: {len(events)} events, {counts['B']} slices, "
        f"{len(flow_pairs)} flow edges ({cross_pid_flows} cross-node)"
    )


if __name__ == "__main__":
    main()
