#!/usr/bin/env bash
# Tier-1 verification: full build + test suite, then the chaos soak under
# ThreadSanitizer (the failure-recovery paths are the most thread-hostile
# code in the tree, so they get the extra scrutiny).
#
# Usage: scripts/run_tier1.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

echo "== tier-1: build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j"${JOBS}"
(cd build && ctest --output-on-failure -j"${JOBS}")

echo "== tier-1: perf-regression gate (check_bench) =="
# Re-run the anchored benches into a scratch dir and diff their telemetry
# sidecars against the committed BENCH_*.json anchors (tolerances in
# scripts/check_bench.py). bench_micro's sweeps always run and always write
# their sidecars; the filter just skips the google-benchmark timing loops.
mkdir -p build/bench-out
(cd build/bench-out && ../bench/bench_micro --benchmark_filter=__none__ >/dev/null) || true
(cd build/bench-out && ../bench/bench_migrate >/dev/null)
(cd build/bench-out && ../bench/bench_latency_breakdown >/dev/null)
# Transport scale smoke: the 8/100-node prefix of the fig14 RC-vs-DC sweep
# (the committed anchor covers the full 8..1000 sweep; check_bench pairs the
# smoke prefix and skips the rest — see SUBSET_OK).
(cd build/bench-out && ../bench/fig14_scalability --scale-smoke \
    --telemetry BENCH_transport_scale.json >/dev/null)
python3 scripts/check_bench.py

echo "== tier-1: chrome-trace export sanity =="
TRACE_OUT="$(mktemp /tmp/lite_trace.XXXXXX.json)"
trap 'rm -f "${TRACE_OUT}"' EXIT
./build/bench/fig10_rpc_latency --trace-out "${TRACE_OUT}" >/dev/null
python3 scripts/check_trace.py --require-flow "${TRACE_OUT}"

echo "== tier-1: chaos soak under ThreadSanitizer =="
cmake -B build-tsan -S . -DLT_SANITIZE=thread >/dev/null
cmake --build build-tsan -j"${JOBS}" --target faults_chaos_test faults_test lite_async_test lite_ring_test transport_test
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/faults_test
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/lite_async_test
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/lite_ring_test
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/transport_test
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/faults_chaos_test

echo "== tier-1: memory + async suites under ASan+UBSan =="
cmake -B build-asan -S . -DLT_SANITIZE=address >/dev/null
cmake --build build-asan -j"${JOBS}" --target lite_memory_test lite_async_test
ASAN_OPTIONS="halt_on_error=1" UBSAN_OPTIONS="halt_on_error=1" ./build-asan/tests/lite_memory_test
ASAN_OPTIONS="halt_on_error=1" UBSAN_OPTIONS="halt_on_error=1" ./build-asan/tests/lite_async_test

echo "== tier-1: PASS =="
