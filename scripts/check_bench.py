#!/usr/bin/env python3
"""CI perf-regression gate: diff fresh bench telemetry against committed anchors.

Every bench binary that matters for performance emits a BENCH_<name>.json
sidecar (schema: benchlib.h TelemetrySink — {"bench", "points": [{"series",
"x", "metrics", "histograms"}]}). The committed copies at the repo root are
the anchors; scripts/run_tier1.sh re-runs the benches into build/bench-out/
and this script compares the two, metric by metric, with per-metric
tolerance bands:

  * default: relative 35% with an absolute slack of 8 (counters with tiny
    values flap by a few ops between legitimate runs);
  * x-labels of the form "key=value;key=value" are parsed as metrics too:
    "pass" must match exactly, "speedup"/"budget_us" are tight (15%), and
    "downtime_us"/"fence_us" are loose (scheduling-sensitive tails);
  * histogram percentiles are only compared when the anchor saw >= 64
    samples (below that, one op moving buckets shifts p99 by a bucket);
  * queueing-delay metrics, migration dirty-byte counters, the RNIC
    doorbell-batch-size histogram, and the percentile tails of the
    stage-attribution (lite.lat.*) histograms are ignored: they measure
    real-thread interleaving noise, not the code under test (counts and
    sums of the attribution histograms stay guarded — conservation pins
    them);
  * benches listed in XLABEL_ONLY (bench_migrate: real writer threads
    racing the migration make every traffic counter flap) are judged on
    their x-label contract only.

Points are paired by (series, x) after stripping numeric values out of
key=value x-labels, so a run whose measured downtime moved slightly still
pairs with its anchor point.

Exit 0 when every paired metric is within band; exit 1 with one line per
violation otherwise. Stdlib only.
"""

import argparse
import glob
import json
import os
import re
import sys

# Metrics that measure run-to-run contention noise, not regressions.
IGNORE_SUBSTRINGS = ("queue_delay",)
# doorbell_batch: whether consecutive posts coalesce into one RNIC doorbell
# window depends on real client/server thread interleaving, so the batch-size
# histogram flaps run to run; the merged-doorbell *counters*
# (lite.rnic.doorbells, lite.rnic.wqes_batched) stay guarded.
IGNORE_EXACT = ("lite.migrate.dirty_bytes", "lite.rnic.doorbell_batch")

# Stage-attribution histograms split round-trip waits proportionally to
# per-WQE queueing, so their tails (min/max/percentiles) move with thread
# interleaving under deep async windows. count and sum stay guarded — the
# watchdog's sum(stages)==e2e conservation pins them.
PERCENTILE_IGNORE_SUBSTRINGS = ("lite.lat.",)

# Benches whose counters all scale with how much concurrent traffic happened
# to overlap the measured window (real writer threads racing a migration:
# converge rounds, dirty re-copy bytes, wire volume all flap 2-7x run to
# run). Their regression contract is the x-label (pass, fence vs budget);
# metric/histogram snapshots are informational only.
XLABEL_ONLY = ("BENCH_migrate.json", "BENCH_transport_scale.json")

# Benches whose committed anchor spans a larger sweep than the CI smoke run
# (the transport scale anchor covers 8..1000 nodes; tier-1 re-runs only the
# 8/100-node smoke): anchor points with no fresh partner are skipped instead
# of flagged. Pairing stays positional within a series, and both the sweep
# and the smoke emit sizes in ascending order, so the smoke prefix always
# pairs with the anchor prefix.
SUBSET_OK = ("BENCH_transport_scale.json",)

# (relative tolerance, absolute slack) per x-label metric; None rel = exact.
XLABEL_BANDS = {
    "pass": (None, 0.0),
    "speedup": (0.15, 0.05),
    "budget_us": (0.15, 2.0),
    "downtime_us": (2.0, 50.0),
    "fence_us": (2.0, 50.0),
    # Ring batch sweep (BENCH_ring_batch.json): the batch size is structural
    # (exact); per-op cost, ops-per-crossing, and requests/us are virtual-time
    # deterministic, so the bands are tight.
    "batch": (None, 0.0),
    "nsop": (0.15, 5.0),
    "opc": (0.10, 0.5),
    "requs": (0.15, 0.25),
    # Transport scale sweep (BENCH_transport_scale.json): node count and QP
    # state bytes are structural (exact); mean latency is virtual-time stable;
    # p99 and the QPC hit rate move with real thread interleaving (which ops
    # collide in the responder QPC), so their bands are looser; connect-rate
    # is ~0 in steady state and judged on slack alone.
    "nodes": (None, 0.0),
    "lat_ns": (0.15, 100.0),
    "p99_ns": (0.30, 200.0),
    "qpc_hit": (0.15, 0.08),
    "conn_per_op": (1.0, 1.0),
    "qp_bytes": (None, 0.0),
}
DEFAULT_BAND = (0.35, 8.0)

# Histogram percentile fields need enough mass to be stable.
PERCENTILE_FIELDS = ("p50", "p99", "p999", "min", "max")
MIN_COUNT_FOR_PERCENTILES = 64


def ignored(name):
    return name in IGNORE_EXACT or any(s in name for s in IGNORE_SUBSTRINGS)


def within(anchor, fresh, band):
    rel, slack = band
    if rel is None:
        return anchor == fresh
    return abs(fresh - anchor) <= max(slack, rel * max(abs(anchor), abs(fresh)))


def parse_xlabel(x):
    """'downtime_us=8.5;pass=1' -> {'downtime_us': 8.5, 'pass': 1.0}; else {}."""
    out = {}
    for part in x.split(";"):
        if "=" not in part:
            return {}
        key, _, val = part.partition("=")
        try:
            out[key] = float(val)
        except ValueError:
            return {}
    return out


def pair_key(point):
    # Strip numeric values from key=value x-labels so measured-value drift
    # doesn't break pairing; plain x-labels ("64", "4KB") pair literally.
    x = re.sub(r"=[-+0-9.eE]+(;|$)", r"=\1", point.get("x", ""))
    return (point.get("series", ""), x)


def check_point(name, anchor, fresh, violations):
    tag = "%s[%s|%s]" % (name, anchor.get("series", ""), anchor.get("x", ""))

    ax = parse_xlabel(anchor.get("x", ""))
    fx = parse_xlabel(fresh.get("x", ""))
    for key, aval in ax.items():
        if key not in fx:
            violations.append("%s: x-label metric %s missing from fresh run" % (tag, key))
            continue
        band = XLABEL_BANDS.get(key, DEFAULT_BAND)
        if not within(aval, fx[key], band):
            violations.append("%s: x-label %s anchor=%g fresh=%g out of band %r" %
                              (tag, key, aval, fx[key], band))

    if name in XLABEL_ONLY:
        return

    fresh_metrics = fresh.get("metrics", {})
    for key, aval in anchor.get("metrics", {}).items():
        if ignored(key):
            continue
        if key not in fresh_metrics:
            violations.append("%s: metric %s disappeared" % (tag, key))
            continue
        if not within(float(aval), float(fresh_metrics[key]), DEFAULT_BAND):
            violations.append("%s: metric %s anchor=%s fresh=%s out of band" %
                              (tag, key, aval, fresh_metrics[key]))

    fresh_hists = fresh.get("histograms", {})
    for key, ahist in anchor.get("histograms", {}).items():
        if ignored(key):
            continue
        fhist = fresh_hists.get(key)
        if fhist is None:
            violations.append("%s: histogram %s disappeared" % (tag, key))
            continue
        fields = ["count", "sum"]
        if (ahist.get("count", 0) >= MIN_COUNT_FOR_PERCENTILES
                and not any(s in key for s in PERCENTILE_IGNORE_SUBSTRINGS)):
            fields += [f for f in PERCENTILE_FIELDS if f in ahist and f in fhist]
        for field in fields:
            if not within(float(ahist.get(field, 0)), float(fhist.get(field, 0)), DEFAULT_BAND):
                violations.append("%s: histogram %s.%s anchor=%s fresh=%s out of band" %
                                  (tag, key, field, ahist.get(field), fhist.get(field)))


def check_file(anchor_path, fresh_path, violations):
    name = os.path.basename(anchor_path)
    with open(anchor_path) as f:
        anchor = json.load(f)
    with open(fresh_path) as f:
        fresh = json.load(f)
    fresh_points = {}
    for p in fresh.get("points", []):
        fresh_points.setdefault(pair_key(p), []).append(p)
    npoints = 0
    for p in anchor.get("points", []):
        candidates = fresh_points.get(pair_key(p))
        if not candidates:
            if name in SUBSET_OK:
                continue
            violations.append("%s: no fresh point pairs with series=%r x=%r" %
                              (name, p.get("series"), p.get("x")))
            continue
        check_point(name, p, candidates.pop(0), violations)
        npoints += 1
    return npoints


def main():
    here = os.path.dirname(os.path.abspath(__file__))
    repo = os.path.dirname(here)
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--anchor-dir", default=repo,
                    help="directory holding the committed BENCH_*.json anchors")
    ap.add_argument("--fresh-dir", default=os.path.join(repo, "build", "bench-out"),
                    help="directory holding the freshly generated BENCH_*.json files")
    args = ap.parse_args()

    anchors = sorted(glob.glob(os.path.join(args.anchor_dir, "BENCH_*.json")))
    if not anchors:
        print("check_bench: no BENCH_*.json anchors in %s" % args.anchor_dir, file=sys.stderr)
        return 1

    violations = []
    checked = []
    for anchor_path in anchors:
        base = os.path.basename(anchor_path)
        fresh_path = os.path.join(args.fresh_dir, base)
        if not os.path.exists(fresh_path):
            violations.append("%s: fresh run missing (expected %s)" % (base, fresh_path))
            continue
        npoints = check_file(anchor_path, fresh_path, violations)
        checked.append("%s (%d points)" % (base, npoints))

    print("check_bench: compared %d anchors: %s" % (len(checked), ", ".join(checked)))
    if violations:
        for v in violations:
            print("check_bench: FAIL %s" % v, file=sys.stderr)
        print("check_bench: %d violation(s)" % len(violations), file=sys.stderr)
        return 1
    print("check_bench: all metrics within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
