// Node: one simulated machine (physical memory + OS + RNIC + TCP stack), and
// Process: one simulated application process on a node (its own virtual
// address space and Verbs context). Cluster wires N nodes to one fabric —
// the equivalent of the paper's 10-machine InfiniBand testbed.
#ifndef SRC_NODE_NODE_H_
#define SRC_NODE_NODE_H_

#include <memory>
#include <mutex>
#include <vector>

#include "src/fabric/fabric.h"
#include "src/mem/page_table.h"
#include "src/mem/phys_mem.h"
#include "src/oss/os_kernel.h"
#include "src/rnic/rnic.h"
#include "src/sim/params.h"
#include "src/tcpip/tcp_stack.h"
#include "src/telemetry/telemetry.h"
#include "src/verbs/verbs.h"

namespace lt {

class Node;

class Process {
 public:
  explicit Process(Node* node);

  PageTable& page_table() { return page_table_; }
  VerbsContext& verbs() { return verbs_; }
  Node* node() const { return node_; }

 private:
  Node* const node_;
  PageTable page_table_;
  VerbsContext verbs_;
};

class Node {
 public:
  Node(NodeId id, const SimParams& params, Fabric* fabric, RnicDirectory* directory);

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  NodeId id() const { return id_; }
  const SimParams& params() const { return params_; }
  PhysMem& mem() { return mem_; }
  OsKernel& os() { return os_; }
  Rnic& rnic() { return rnic_; }
  TcpStack& tcp() { return tcp_; }
  FabricPort* port() const { return port_; }

  // This node's metrics registry + tracer. Hardware-layer stats (RNIC
  // caches, fabric port, OS crossings) are registered as snapshot-time
  // probes in the constructor; higher layers (LITE) add their own.
  telemetry::NodeTelemetry& telemetry() { return telemetry_; }
  const telemetry::NodeTelemetry& telemetry() const { return telemetry_; }

  // Creates a new simulated process on this node (owned by the node).
  Process* CreateProcess();

 private:
  void RegisterHardwareProbes(Fabric* fabric);

  const NodeId id_;
  const SimParams& params_;
  PhysMem mem_;
  OsKernel os_;
  FabricPort* const port_;
  Rnic rnic_;
  TcpStack tcp_;
  telemetry::NodeTelemetry telemetry_;

  std::mutex process_mu_;
  std::vector<std::unique_ptr<Process>> processes_;
};

class Cluster {
 public:
  Cluster(size_t node_count, const SimParams& params);

  size_t size() const { return nodes_.size(); }
  Node* node(NodeId id) { return nodes_[id].get(); }
  Fabric& fabric() { return fabric_; }
  RnicDirectory& directory() { return directory_; }
  const SimParams& params() const { return params_; }

  // Turns request-path tracing on (sample every n-th op) or off (n = 0) on
  // every node's tracer.
  void SetTraceSampling(uint32_t sample_every);

  // Cluster-wide telemetry: `{"nodes":[{...node 0...}, ...]}`, each node
  // being its NodeTelemetry::ToJson() (metrics + histograms + trace spans).
  std::string DumpTelemetryJson() const;

  // Flight recorder: every node's journal ring merged by virtual time into
  // one JSON array (postmortem timeline — see docs/TELEMETRY.md).
  std::string DumpJournal() const;

  // Writes all nodes' trace spans + journal events as a Chrome trace-event
  // file loadable in chrome://tracing or Perfetto. False on I/O error.
  bool ExportChromeTrace(const std::string& path) const;

 private:
  const SimParams params_;
  Fabric fabric_;
  RnicDirectory directory_;
  std::vector<std::unique_ptr<Node>> nodes_;
};

}  // namespace lt

#endif  // SRC_NODE_NODE_H_
