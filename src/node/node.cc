#include "src/node/node.h"

namespace lt {

Process::Process(Node* node)
    : node_(node),
      page_table_(&node->mem()),
      verbs_(&node->rnic(), &node->os(), &page_table_) {}

Node::Node(NodeId id, const SimParams& params, Fabric* fabric, RnicDirectory* directory)
    : id_(id),
      params_(params),
      mem_(params.node_phys_mem_bytes, params.page_size),
      os_(params),
      port_(fabric->Attach(id)),
      rnic_(id, params_, &mem_, port_, directory),
      tcp_(id, params_, fabric) {}

Process* Node::CreateProcess() {
  std::lock_guard<std::mutex> lock(process_mu_);
  processes_.push_back(std::make_unique<Process>(this));
  return processes_.back().get();
}

Cluster::Cluster(size_t node_count, const SimParams& params) : params_(params), fabric_(params_) {
  nodes_.reserve(node_count);
  for (size_t i = 0; i < node_count; ++i) {
    nodes_.push_back(
        std::make_unique<Node>(static_cast<NodeId>(i), params_, &fabric_, &directory_));
  }
}

}  // namespace lt
