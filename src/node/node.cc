#include "src/node/node.h"

#include <sstream>

#include "src/telemetry/chrome_trace.h"

namespace lt {

Process::Process(Node* node)
    : node_(node),
      page_table_(&node->mem()),
      verbs_(&node->rnic(), &node->os(), &page_table_) {}

Node::Node(NodeId id, const SimParams& params, Fabric* fabric, RnicDirectory* directory)
    : id_(id),
      params_(params),
      mem_(params.node_phys_mem_bytes, params.page_size),
      os_(params),
      port_(fabric->Attach(id)),
      rnic_(id, params_, &mem_, port_, directory),
      tcp_(id, params_, fabric) {
  telemetry_.SetNodeId(id_);
  fabric->faults().AttachJournal(id_, &telemetry_.journal());
  RegisterHardwareProbes(fabric);
}

void Node::RegisterHardwareProbes(Fabric* fabric) {
  // Probes read existing per-component atomics only at snapshot time, so
  // instrumenting the hardware layers costs the hot path nothing.
  telemetry::Registry& reg = telemetry_.registry();
  struct CacheProbe {
    const char* prefix;
    const LruCache* cache;
  };
  const CacheProbe caches[] = {
      {"rnic.mpt", &rnic_.mpt_cache()},
      {"rnic.mtt", &rnic_.mtt_cache()},
      {"rnic.qpc", &rnic_.qpc_cache()},
  };
  for (const CacheProbe& c : caches) {
    const LruCache* cache = c.cache;
    const std::string prefix = c.prefix;
    reg.RegisterProbe(prefix + ".hits", [cache] { return cache->hits(); });
    reg.RegisterProbe(prefix + ".misses", [cache] { return cache->misses(); });
    reg.RegisterProbe(prefix + ".evictions", [cache] { return cache->evictions(); });
    reg.RegisterProbe(prefix + ".entries",
                      [cache] { return static_cast<uint64_t>(cache->size()); });
  }
  reg.RegisterProbe("rnic.ops_posted", [this] { return rnic_.ops_posted(); });
  reg.RegisterProbe("rnic.mr_count", [this] { return static_cast<uint64_t>(rnic_.MrCount()); });
  reg.RegisterProbe("rnic.qp_count", [this] { return static_cast<uint64_t>(rnic_.QpCount()); });
  // Async fast-path counters: doorbell batching, selective signaling, inline
  // sends (see docs/TELEMETRY.md).
  reg.RegisterProbe("lite.rnic.doorbells", [this] { return rnic_.doorbells_rung(); });
  reg.RegisterProbe("lite.rnic.wqes_batched", [this] { return rnic_.wqes_batched(); });
  reg.RegisterProbe("lite.rnic.inline_sends", [this] { return rnic_.inline_sends(); });
  reg.RegisterProbe("lite.rnic.wqe_signaled", [this] { return rnic_.wqes_signaled(); });
  reg.RegisterProbe("lite.rnic.wqe_unsignaled", [this] { return rnic_.wqes_unsignaled(); });
  rnic_.SetDoorbellBatchHistogram(reg.GetHistogram("lite.rnic.doorbell_batch"));
  reg.RegisterProbe("fabric.port.bytes", [this] { return port_->bytes_transferred(); });
  reg.RegisterProbe("fabric.port.reservations", [this] { return port_->reservation_count(); });
  reg.RegisterProbe("fabric.port.queue_delay_ns",
                    [this] { return port_->queue_delay_total_ns(); });
  // Fault-injection visibility (fabric-wide engine; the fabric outlives every
  // node, so capturing it in snapshot-time probes is safe).
  FaultEngine* faults = &fabric->faults();
  const NodeId id = id_;
  reg.RegisterProbe("faults.tx_drops", [faults, id] { return faults->drops_from(id); });
  reg.RegisterProbe("faults.drops_total", [faults] { return faults->drops(); });
  reg.RegisterProbe("faults.duplicates", [faults] { return faults->duplicates(); });
  reg.RegisterProbe("faults.delays", [faults] { return faults->delays_injected(); });
  reg.RegisterProbe("faults.crash_drops", [faults] { return faults->crash_drops(); });
  reg.RegisterProbe("faults.partition_drops",
                    [faults] { return faults->partition_drops(); });
  reg.RegisterProbe("os.syscalls", [this] { return os_.syscall_count(); });
  reg.RegisterProbe("os.crossings", [this] { return os_.crossing_count(); });
  // Ring-doorbell amortization: crossings that drained a batch of ops, and
  // the ops they amortized (os.crossings_batched <= os.crossings; see
  // docs/TELEMETRY.md "Per-CPU submission rings").
  reg.RegisterProbe("os.crossings_batched", [this] { return os_.batched_crossing_count(); });
  reg.RegisterProbe("os.ops_batched", [this] { return os_.batched_ops_count(); });
  os_.SetOpsPerCrossingHistogram(reg.GetHistogram("os.ops_per_crossing"));
}

Process* Node::CreateProcess() {
  std::lock_guard<std::mutex> lock(process_mu_);
  processes_.push_back(std::make_unique<Process>(this));
  return processes_.back().get();
}

Cluster::Cluster(size_t node_count, const SimParams& params) : params_(params), fabric_(params_) {
  nodes_.reserve(node_count);
  for (size_t i = 0; i < node_count; ++i) {
    nodes_.push_back(
        std::make_unique<Node>(static_cast<NodeId>(i), params_, &fabric_, &directory_));
  }
}

void Cluster::SetTraceSampling(uint32_t sample_every) {
  for (auto& node : nodes_) {
    node->telemetry().tracer().SetSampleEvery(sample_every);
  }
}

std::string Cluster::DumpTelemetryJson() const {
  std::ostringstream os;
  os << "{\"nodes\":[";
  for (size_t i = 0; i < nodes_.size(); ++i) {
    os << (i == 0 ? "" : ",") << nodes_[i]->telemetry().ToJson();
  }
  os << "]}";
  return os.str();
}

std::string Cluster::DumpJournal() const {
  std::vector<const telemetry::Journal*> journals;
  journals.reserve(nodes_.size());
  for (const auto& node : nodes_) {
    journals.push_back(&node->telemetry().journal());
  }
  return telemetry::MergeJournalsJson(journals);
}

bool Cluster::ExportChromeTrace(const std::string& path) const {
  std::vector<telemetry::TraceSpan> spans;
  std::vector<telemetry::JournalRecord> journal;
  for (const auto& node : nodes_) {
    std::vector<telemetry::TraceSpan> part = node->telemetry().tracer().Snapshot();
    spans.insert(spans.end(), part.begin(), part.end());
    std::vector<telemetry::JournalRecord> jpart = node->telemetry().journal().Snapshot();
    journal.insert(journal.end(), jpart.begin(), jpart.end());
  }
  return telemetry::WriteChromeTrace(path, spans, journal);
}

}  // namespace lt
