#include "src/baselines/herd_rpc.h"

#include <cstring>

#include "src/common/timing.h"

namespace liteapp {
namespace {

constexpr uint64_t kRegionScanNs = 25;  // Cost to check one region's flag.
constexpr uint64_t kCallTimeoutNs = 2'000'000'000;

// Request region layout: [u32 ready | u32 len | payload].
struct HerdHeader {
  uint32_t ready;
  uint32_t len;
};

}  // namespace

HerdServer::HerdServer(lt::Cluster* cluster, NodeId node, uint32_t region_bytes,
                       RpcHandler handler)
    : cluster_(cluster), node_(node), region_bytes_(region_bytes), handler_(std::move(handler)) {
  proc_ = cluster_->node(node_)->CreateProcess();
  ud_send_qp_ = proc_->verbs().CreateQp(lt::QpType::kUd, proc_->verbs().CreateCq(),
                                        proc_->verbs().CreateCq());
}

HerdServer::~HerdServer() { Stop(); }

StatusOr<HerdClient*> HerdServer::AttachClient(NodeId client_node) {
  auto port = std::make_unique<ClientPort>();
  port->client_node = client_node;

  auto region = AllocRegistered(proc_, region_bytes_, lt::kMrAll);
  if (!region.ok()) {
    return region.status();
  }
  port->region = *region;
  auto resp = AllocRegistered(proc_, region_bytes_, lt::kMrAll);
  if (!resp.ok()) {
    return resp.status();
  }
  port->resp_staging = *resp;

  auto client = std::unique_ptr<HerdClient>(new HerdClient());
  client->server_ = this;
  client->proc_ = cluster_->node(client_node)->CreateProcess();
  client->index_ = ports_.size();

  auto staging = AllocRegistered(client->proc_, region_bytes_, lt::kMrAll);
  if (!staging.ok()) {
    return staging.status();
  }
  client->req_staging_ = *staging;
  auto resp_buf = AllocRegistered(client->proc_, region_bytes_, lt::kMrAll);
  if (!resp_buf.ok()) {
    return resp_buf.status();
  }
  client->resp_buf_ = *resp_buf;

  // RC QP pair for the request write (client -> server region).
  lt::Qp* cqp = client->proc_->verbs().CreateQp(lt::QpType::kRc,
                                                client->proc_->verbs().CreateCq(),
                                                client->proc_->verbs().CreateCq());
  lt::Qp* sqp =
      proc_->verbs().CreateQp(lt::QpType::kRc, proc_->verbs().CreateCq(),
                              proc_->verbs().CreateCq());
  cqp->Connect(node_, sqp->qpn());
  sqp->Connect(client_node, cqp->qpn());
  client->write_qp_ = cqp;

  // UD QP at the client for responses.
  client->ud_recv_cq_ = client->proc_->verbs().CreateCq();
  client->ud_qp_ = client->proc_->verbs().CreateQp(lt::QpType::kUd,
                                                   client->proc_->verbs().CreateCq(),
                                                   client->ud_recv_cq_);
  port->client_ud_qpn = client->ud_qp_->qpn();

  HerdClient* out = client.get();
  port->client = std::move(client);
  ports_.push_back(std::move(port));
  return out;
}

void HerdServer::Start(int num_threads) {
  stopping_.store(false);
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { ServerLoop(); });
  }
}

void HerdServer::Stop() {
  if (stopping_.exchange(true)) {
    return;
  }
  incoming_.Close();
  for (std::thread& t : threads_) {
    if (t.joinable()) {
      t.join();
    }
  }
  threads_.clear();
}

void HerdServer::ServerLoop() {
  std::vector<uint8_t> in(region_bytes_);
  std::vector<uint8_t> out(region_bytes_);
  while (true) {
    uint64_t cpu0 = lt::ThreadCpuNs();
    auto item = incoming_.Pop();
    if (!item.has_value()) {
      return;
    }
    auto [port_idx, vtime] = *item;
    // HERD busy-polls every client region: burn CPU for the whole waiting
    // gap plus the scan over all regions.
    lt::SyncToBusy(vtime);
    lt::SpinFor(kRegionScanNs * std::max<size_t>(1, ports_.size()));

    ClientPort& port = *ports_[port_idx];
    HerdHeader hdr;
    (void)ReadVirt(proc_, port.region.addr, &hdr, sizeof(hdr));
    if (hdr.ready == 0 || hdr.len > region_bytes_ - sizeof(hdr)) {
      cpu_.Add(lt::ThreadCpuNs() - cpu0);
      continue;
    }
    (void)ReadVirt(proc_, port.region.addr + sizeof(hdr), in.data(), hdr.len);

    uint32_t out_len = handler_(in.data(), hdr.len, out.data(), region_bytes_ - sizeof(uint32_t));

    // Response: one UD send.
    (void)WriteVirt(proc_, port.resp_staging.addr, out.data(), out_len);
    lt::WorkRequest wr;
    wr.opcode = lt::WrOpcode::kSend;
    wr.lkey = port.resp_staging.mr.lkey;
    wr.local_addr = port.resp_staging.addr;
    wr.length = out_len;
    wr.ud_dst_node = port.client_node;
    wr.ud_dst_qpn = port.client_ud_qpn;
    wr.signaled = false;
    (void)proc_->verbs().PostSend(ud_send_qp_, wr);
    cpu_.Add(lt::ThreadCpuNs() - cpu0);
  }
}

Status HerdClient::Call(const void* in, uint32_t in_len, void* out, uint32_t out_max,
                        uint32_t* out_len) {
  std::lock_guard<std::mutex> lock(mu_);
  if (in_len > server_->region_bytes_ - sizeof(HerdHeader)) {
    return Status::InvalidArgument("request larger than HERD region");
  }
  // Pre-post the UD receive for the response.
  lt::Rqe rqe;
  rqe.wr_id = 1;
  rqe.lkey = resp_buf_.mr.lkey;
  rqe.addr = resp_buf_.addr;
  rqe.length = server_->region_bytes_;
  (void)ud_qp_->PostRecv(rqe);

  // Stage [hdr | payload] and RDMA-write it into our region at the server.
  HerdHeader hdr{1, in_len};
  (void)WriteVirt(proc_, req_staging_.addr, &hdr, sizeof(hdr));
  (void)WriteVirt(proc_, req_staging_.addr + sizeof(hdr), in, in_len);

  lt::WorkRequest wr;
  wr.opcode = lt::WrOpcode::kWrite;
  wr.lkey = req_staging_.mr.lkey;
  wr.local_addr = req_staging_.addr;
  wr.length = sizeof(hdr) + in_len;
  wr.rkey = server_->ports_[index_]->region.mr.rkey;
  wr.remote_addr = server_->ports_[index_]->region.addr;
  LT_RETURN_IF_ERROR(proc_->verbs().ExecSync(write_qp_, wr));

  // Out-of-band rendezvous standing in for the server's region busy-poll.
  server_->incoming_.Push({index_, lt::NowNs()});

  // Client busy-polls its UD receive CQ for the response.
  while (true) {
    auto c = ud_recv_cq_->WaitPoll(kCallTimeoutNs, lt::WaitMode::kBusyPoll);
    if (!c.has_value()) {
      return Status::Timeout("no HERD response");
    }
    if (c->opcode == lt::WcOpcode::kRecv) {
      uint32_t len = std::min(c->byte_len, out_max);
      LT_RETURN_IF_ERROR(ReadVirt(proc_, resp_buf_.addr, out, len));
      if (out_len != nullptr) {
        *out_len = c->byte_len;
      }
      return Status::Ok();
    }
  }
}

}  // namespace liteapp
