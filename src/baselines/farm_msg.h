// FaRM-style message passing (Dragojevic et al., per paper Sec. 5.3): the
// sender RDMA-writes each message into a ring buffer at the receiver, and a
// receiver thread busy-polls the ring memory for new messages. An RPC on top
// of FaRM costs two such one-sided writes (request + response) — the
// "2 Verbs writes" line of paper Fig. 10.
#ifndef SRC_BASELINES_FARM_MSG_H_
#define SRC_BASELINES_FARM_MSG_H_

#include <mutex>
#include <vector>

#include "src/baselines/base_util.h"
#include "src/common/sync_util.h"

namespace liteapp {

// One-directional message channel from `sender` to `receiver`.
class FarmMsgChannel {
 public:
  FarmMsgChannel(lt::Cluster* cluster, NodeId sender, NodeId receiver, uint32_t ring_bytes);

  // Sender side: one RDMA write carrying [len | payload].
  Status Send(const void* data, uint32_t len);

  // Receiver side: blocks for the next message; models the FaRM receiver
  // thread busy-polling the ring memory (burns CPU for the waiting gap).
  StatusOr<std::vector<uint8_t>> Recv(uint64_t timeout_ns = 2'000'000'000);

 private:
  lt::Cluster* const cluster_;
  const uint32_t ring_bytes_;
  Process* sproc_;
  Process* rproc_;
  RegisteredBuf ring_;     // At the receiver.
  RegisteredBuf staging_;  // At the sender.
  lt::Qp* qp_ = nullptr;

  std::mutex send_mu_;
  uint64_t tail_ = 0;

  // Rendezvous standing in for the receiver's memory polling: carries the
  // ring offset, length and virtual arrival time of each delivered message.
  struct Arrival {
    uint64_t offset;
    uint32_t len;
    uint64_t vtime;
  };
  lt::BlockingQueue<Arrival> arrivals_;
};

}  // namespace liteapp

#endif  // SRC_BASELINES_FARM_MSG_H_
