#include "src/baselines/sendrecv_rpc.h"

#include <algorithm>
#include <cstring>

#include "src/common/timing.h"

namespace liteapp {
namespace {

constexpr uint64_t kCallTimeoutNs = 2'000'000'000;
constexpr uint64_t kServerIdleWaitNs = 50'000'000;

// wr_id encoding for server receive buffers.
uint64_t SlotId(size_t port, size_t cls, size_t slot) {
  return (static_cast<uint64_t>(port) << 32) | (static_cast<uint64_t>(cls) << 16) | slot;
}

}  // namespace

SendRecvRpcServer::SendRecvRpcServer(lt::Cluster* cluster, NodeId node,
                                     std::vector<uint32_t> class_sizes, size_t buffers_per_class,
                                     RpcHandler handler)
    : cluster_(cluster),
      node_(node),
      class_sizes_(std::move(class_sizes)),
      buffers_per_class_(buffers_per_class),
      handler_(std::move(handler)) {
  proc_ = cluster_->node(node_)->CreateProcess();
  recv_cq_ = proc_->verbs().CreateCq();
}

SendRecvRpcServer::~SendRecvRpcServer() { Stop(); }

void SendRecvRpcServer::PostClassRecv(size_t port, size_t cls, size_t slot) {
  lt::Rqe rqe;
  rqe.wr_id = SlotId(port, cls, slot);
  rqe.lkey = recv_bufs_[port][cls][slot].mr.lkey;
  rqe.addr = recv_bufs_[port][cls][slot].addr;
  rqe.length = class_sizes_[cls];
  (void)ports_[port]->class_qps_server[cls]->PostRecv(rqe);
  posted_.fetch_add(class_sizes_[cls]);
}

StatusOr<SendRecvRpcClient*> SendRecvRpcServer::AttachClient(NodeId client_node) {
  const uint32_t max_size = class_sizes_.back();
  auto port = std::make_unique<Port>();
  port->client_node = client_node;
  auto client = std::unique_ptr<SendRecvRpcClient>(new SendRecvRpcClient());
  client->server_ = this;
  client->proc_ = cluster_->node(client_node)->CreateProcess();
  client->port_ = ports_.size();
  client->send_buf_ = *AllocRegistered(client->proc_, max_size, lt::kMrAll);
  client->recv_buf_ = *AllocRegistered(client->proc_, max_size, lt::kMrAll);
  port->resp_staging = *AllocRegistered(proc_, max_size, lt::kMrAll);

  recv_bufs_.emplace_back();
  auto& per_class = recv_bufs_.back();
  for (size_t cls = 0; cls < class_sizes_.size(); ++cls) {
    // Server end of the class QP.
    lt::Qp* sqp =
        proc_->verbs().CreateQp(lt::QpType::kRc, proc_->verbs().CreateCq(), recv_cq_);
    lt::Qp* cqp = client->proc_->verbs().CreateQp(lt::QpType::kRc,
                                                  client->proc_->verbs().CreateCq(),
                                                  client->proc_->verbs().CreateCq());
    sqp->Connect(client_node, cqp->qpn());
    cqp->Connect(node_, sqp->qpn());
    port->class_qps_server.push_back(sqp);
    client->class_qps_.push_back(cqp);

    per_class.emplace_back();
    for (size_t slot = 0; slot < buffers_per_class_; ++slot) {
      per_class.back().push_back(*AllocRegistered(proc_, class_sizes_[cls], lt::kMrAll));
    }
  }
  // Reply QP (server -> client), client preposts max-size buffers.
  lt::Qp* reply_s =
      proc_->verbs().CreateQp(lt::QpType::kRc, proc_->verbs().CreateCq(),
                              proc_->verbs().CreateCq());
  client->reply_cq_ = client->proc_->verbs().CreateCq();
  lt::Qp* reply_c = client->proc_->verbs().CreateQp(lt::QpType::kRc,
                                                    client->proc_->verbs().CreateCq(),
                                                    client->reply_cq_);
  reply_s->Connect(client_node, reply_c->qpn());
  reply_c->Connect(node_, reply_s->qpn());
  port->reply_qp_server = reply_s;
  client->reply_qp_ = reply_c;

  SendRecvRpcClient* out = client.get();
  port->client = std::move(client);
  ports_.push_back(std::move(port));

  size_t port_idx = ports_.size() - 1;
  for (size_t cls = 0; cls < class_sizes_.size(); ++cls) {
    for (size_t slot = 0; slot < buffers_per_class_; ++slot) {
      PostClassRecv(port_idx, cls, slot);
    }
  }
  return out;
}

void SendRecvRpcServer::Start() {
  stopping_.store(false);
  thread_ = std::thread([this] { ServerLoop(); });
}

void SendRecvRpcServer::Stop() {
  if (stopping_.exchange(true)) {
    return;
  }
  recv_cq_->Shutdown();
  if (thread_.joinable()) {
    thread_.join();
  }
}

void SendRecvRpcServer::ServerLoop() {
  const uint32_t max_size = class_sizes_.back();
  std::vector<uint8_t> in(max_size);
  std::vector<uint8_t> out(max_size);
  while (!stopping_.load()) {
    auto c = recv_cq_->WaitPoll(kServerIdleWaitNs, lt::WaitMode::kBusyPoll);
    if (!c.has_value() || stopping_.load()) {
      continue;
    }
    size_t port = static_cast<size_t>(c->wr_id >> 32);
    size_t cls = static_cast<size_t>((c->wr_id >> 16) & 0xffff);
    size_t slot = static_cast<size_t>(c->wr_id & 0xffff);

    consumed_.fetch_add(class_sizes_[cls]);
    payload_.fetch_add(c->byte_len);

    (void)ReadVirt(proc_, recv_bufs_[port][cls][slot].addr, in.data(), c->byte_len);
    uint32_t out_len = handler_(in.data(), c->byte_len, out.data(), max_size);
    (void)WriteVirt(proc_, ports_[port]->resp_staging.addr, out.data(), out_len);

    lt::WorkRequest wr;
    wr.opcode = lt::WrOpcode::kSend;
    wr.lkey = ports_[port]->resp_staging.mr.lkey;
    wr.local_addr = ports_[port]->resp_staging.addr;
    wr.length = out_len;
    wr.signaled = false;
    (void)proc_->verbs().PostSend(ports_[port]->reply_qp_server, wr);

    PostClassRecv(port, cls, slot);
  }
}

Status SendRecvRpcClient::Call(const void* in, uint32_t in_len, void* out, uint32_t out_max,
                               uint32_t* out_len) {
  std::lock_guard<std::mutex> lock(mu_);
  // Pick the most space-efficient receive class (smallest that fits).
  size_t cls = 0;
  while (cls < server_->class_sizes_.size() && server_->class_sizes_[cls] < in_len) {
    ++cls;
  }
  if (cls == server_->class_sizes_.size()) {
    return Status::InvalidArgument("request larger than largest receive class");
  }

  lt::Rqe rqe;
  rqe.wr_id = 1;
  rqe.lkey = recv_buf_.mr.lkey;
  rqe.addr = recv_buf_.addr;
  rqe.length = server_->class_sizes_.back();
  (void)reply_qp_->PostRecv(rqe);

  (void)WriteVirt(proc_, send_buf_.addr, in, in_len);
  lt::WorkRequest wr;
  wr.opcode = lt::WrOpcode::kSend;
  wr.lkey = send_buf_.mr.lkey;
  wr.local_addr = send_buf_.addr;
  wr.length = in_len;
  wr.signaled = false;
  LT_RETURN_IF_ERROR(proc_->verbs().PostSend(class_qps_[cls], wr));

  while (true) {
    auto c = reply_cq_->WaitPoll(kCallTimeoutNs, lt::WaitMode::kBusyPoll);
    if (!c.has_value()) {
      return Status::Timeout("no send/recv RPC response");
    }
    if (c->opcode == lt::WcOpcode::kRecv) {
      uint32_t len = std::min(c->byte_len, out_max);
      LT_RETURN_IF_ERROR(ReadVirt(proc_, recv_buf_.addr, out, len));
      if (out_len != nullptr) {
        *out_len = c->byte_len;
      }
      return Status::Ok();
    }
  }
}

}  // namespace liteapp
