#include "src/baselines/farm_msg.h"

#include <cstring>

#include "src/common/timing.h"

namespace liteapp {

FarmMsgChannel::FarmMsgChannel(lt::Cluster* cluster, NodeId sender, NodeId receiver,
                               uint32_t ring_bytes)
    : cluster_(cluster), ring_bytes_(ring_bytes) {
  sproc_ = cluster_->node(sender)->CreateProcess();
  rproc_ = cluster_->node(receiver)->CreateProcess();
  ring_ = *AllocRegistered(rproc_, ring_bytes_, lt::kMrAll);
  staging_ = *AllocRegistered(sproc_, ring_bytes_, lt::kMrAll);
  lt::Qp* sqp = sproc_->verbs().CreateQp(lt::QpType::kRc, sproc_->verbs().CreateCq(),
                                         sproc_->verbs().CreateCq());
  lt::Qp* rqp = rproc_->verbs().CreateQp(lt::QpType::kRc, rproc_->verbs().CreateCq(),
                                         rproc_->verbs().CreateCq());
  sqp->Connect(receiver, rqp->qpn());
  rqp->Connect(sender, sqp->qpn());
  qp_ = sqp;
}

Status FarmMsgChannel::Send(const void* data, uint32_t len) {
  const uint32_t entry = sizeof(uint32_t) + len;
  if (entry > ring_bytes_) {
    return Status::InvalidArgument("message larger than FaRM ring");
  }
  std::lock_guard<std::mutex> lock(send_mu_);
  uint64_t off = tail_ % ring_bytes_;
  if (off + entry > ring_bytes_) {
    tail_ += ring_bytes_ - off;  // Skip the wrap gap.
    off = 0;
  }
  (void)WriteVirt(sproc_, staging_.addr, &len, sizeof(len));
  (void)WriteVirt(sproc_, staging_.addr + sizeof(len), data, len);

  lt::WorkRequest wr;
  wr.opcode = lt::WrOpcode::kWrite;
  wr.lkey = staging_.mr.lkey;
  wr.local_addr = staging_.addr;
  wr.length = entry;
  wr.rkey = ring_.mr.rkey;
  wr.remote_addr = ring_.addr + off;
  LT_RETURN_IF_ERROR(sproc_->verbs().ExecSync(qp_, wr));
  tail_ += entry;
  arrivals_.Push(Arrival{off, len, lt::NowNs()});
  return Status::Ok();
}

StatusOr<std::vector<uint8_t>> FarmMsgChannel::Recv(uint64_t timeout_ns) {
  auto arrival = arrivals_.PopFor(std::chrono::nanoseconds(timeout_ns));
  if (!arrival.has_value()) {
    return Status::Timeout("no FaRM message");
  }
  // The FaRM receiver thread polls the ring in memory: CPU burns for the
  // whole gap until the message appeared.
  lt::SyncToBusy(arrival->vtime);
  std::vector<uint8_t> out(arrival->len);
  LT_RETURN_IF_ERROR(
      ReadVirt(rproc_, ring_.addr + arrival->offset + sizeof(uint32_t), out.data(), arrival->len));
  return out;
}

}  // namespace liteapp
