// Send/recv-based RPC with size-classed receive queues (paper Fig. 12).
//
// Two-sided SEND requires the receiver to pre-post buffers big enough for
// the largest possible message; the standard mitigation (Shipman et al.,
// cited by the paper) posts buffers of different sizes on different RQs and
// lets the sender pick the most space-efficient one. This class implements
// that design and tracks buffer-byte consumption versus useful payload bytes
// so the memory-utilization comparison against LITE's rings can be
// regenerated.
#ifndef SRC_BASELINES_SENDRECV_RPC_H_
#define SRC_BASELINES_SENDRECV_RPC_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/baselines/base_util.h"
#include "src/common/cpu_meter.h"

namespace liteapp {

class SendRecvRpcServer;

class SendRecvRpcClient {
 public:
  Status Call(const void* in, uint32_t in_len, void* out, uint32_t out_max, uint32_t* out_len);

 private:
  friend class SendRecvRpcServer;
  SendRecvRpcClient() = default;

  SendRecvRpcServer* server_ = nullptr;
  Process* proc_ = nullptr;
  size_t port_ = 0;
  RegisteredBuf send_buf_;
  RegisteredBuf recv_buf_;
  std::vector<lt::Qp*> class_qps_;  // One QP per size class.
  lt::Qp* reply_qp_ = nullptr;
  lt::Cq* reply_cq_ = nullptr;
  std::mutex mu_;
};

class SendRecvRpcServer {
 public:
  // `class_sizes` must be ascending; the largest bounds the message size.
  SendRecvRpcServer(lt::Cluster* cluster, NodeId node, std::vector<uint32_t> class_sizes,
                    size_t buffers_per_class, RpcHandler handler);
  ~SendRecvRpcServer();

  StatusOr<SendRecvRpcClient*> AttachClient(NodeId client_node);

  void Start();
  void Stop();

  // Fig. 12 accounting.
  uint64_t consumed_buffer_bytes() const { return consumed_.load(); }
  uint64_t payload_bytes() const { return payload_.load(); }
  uint64_t posted_buffer_bytes() const { return posted_.load(); }

 private:
  friend class SendRecvRpcClient;

  struct Port {
    std::unique_ptr<SendRecvRpcClient> client;
    NodeId client_node = lt::kInvalidNode;
    std::vector<lt::Qp*> class_qps_server;  // Server end, indexed by class.
    lt::Qp* reply_qp_server = nullptr;
    RegisteredBuf resp_staging;
  };

  void ServerLoop();
  void PostClassRecv(size_t port, size_t cls, size_t slot);

  lt::Cluster* const cluster_;
  const NodeId node_;
  const std::vector<uint32_t> class_sizes_;
  const size_t buffers_per_class_;
  const RpcHandler handler_;
  Process* proc_ = nullptr;
  lt::Cq* recv_cq_ = nullptr;

  std::vector<std::unique_ptr<Port>> ports_;
  // recv_bufs_[port][cls][slot]
  std::vector<std::vector<std::vector<RegisteredBuf>>> recv_bufs_;

  std::thread thread_;
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> consumed_{0};
  std::atomic<uint64_t> payload_{0};
  std::atomic<uint64_t> posted_{0};
};

}  // namespace liteapp

#endif  // SRC_BASELINES_SENDRECV_RPC_H_
