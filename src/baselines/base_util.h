// Shared plumbing for the re-implemented comparator systems (HERD, FaSST,
// FaRM messaging, send/recv RPC). These run on the *native Verbs* path —
// registered virtual-memory MRs, their own QPs/CQs and polling threads — with
// no LITE involvement, exactly like the paper's baselines.
#ifndef SRC_BASELINES_BASE_UTIL_H_
#define SRC_BASELINES_BASE_UTIL_H_

#include <cstdint>
#include <cstring>
#include <functional>

#include "src/common/status.h"
#include "src/node/node.h"

namespace liteapp {

using lt::NodeId;
using lt::Process;
using lt::Status;
using lt::StatusOr;
using lt::VirtAddr;

// Request handler: consumes `in`, produces up to `out_max` bytes in `out`,
// returns the reply length.
using RpcHandler =
    std::function<uint32_t(const uint8_t* in, uint32_t in_len, uint8_t* out, uint32_t out_max)>;

// Copies host memory into a process's virtual memory (through its page
// table), page fragment by page fragment.
Status WriteVirt(Process* proc, VirtAddr addr, const void* src, uint64_t len);

// Copies a process's virtual memory out to host memory.
Status ReadVirt(Process* proc, VirtAddr addr, void* dst, uint64_t len);

// Allocates + registers a virtual-memory buffer in one step.
struct RegisteredBuf {
  VirtAddr addr = 0;
  lt::VerbsMr mr;
};
StatusOr<RegisteredBuf> AllocRegistered(Process* proc, uint64_t len, uint32_t access);

}  // namespace liteapp

#endif  // SRC_BASELINES_BASE_UTIL_H_
