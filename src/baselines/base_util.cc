#include "src/baselines/base_util.h"

#include "src/common/timing.h"

namespace liteapp {
namespace {

// The baseline systems copy payloads between application and network buffers
// (LITE's zero-copy design avoids exactly this); charge the memcpy.
void ChargeCopy(Process* proc, uint64_t len) {
  const lt::SimParams& p = proc->node()->params();
  lt::SpinFor(p.local_op_base_ns +
              static_cast<uint64_t>(static_cast<double>(len) / p.local_copy_bytes_per_ns));
}

}  // namespace

Status WriteVirt(Process* proc, VirtAddr addr, const void* src, uint64_t len) {
  ChargeCopy(proc, len);
  auto ranges = proc->page_table().TranslateRange(proc->node()->id(), addr, len);
  if (!ranges.ok()) {
    return ranges.status();
  }
  const uint8_t* s = static_cast<const uint8_t*>(src);
  uint64_t off = 0;
  for (const lt::PhysRange& r : *ranges) {
    std::memcpy(proc->node()->mem().Data(r.addr, r.size), s + off, r.size);
    off += r.size;
  }
  return Status::Ok();
}

Status ReadVirt(Process* proc, VirtAddr addr, void* dst, uint64_t len) {
  ChargeCopy(proc, len);
  auto ranges = proc->page_table().TranslateRange(proc->node()->id(), addr, len);
  if (!ranges.ok()) {
    return ranges.status();
  }
  uint8_t* d = static_cast<uint8_t*>(dst);
  uint64_t off = 0;
  for (const lt::PhysRange& r : *ranges) {
    std::memcpy(d + off, proc->node()->mem().Data(r.addr, r.size), r.size);
    off += r.size;
  }
  return Status::Ok();
}

StatusOr<RegisteredBuf> AllocRegistered(Process* proc, uint64_t len, uint32_t access) {
  auto addr = proc->page_table().AllocVirt(len);
  if (!addr.ok()) {
    return addr.status();
  }
  auto mr = proc->verbs().RegisterMr(*addr, len, access);
  if (!mr.ok()) {
    return mr.status();
  }
  RegisteredBuf buf;
  buf.addr = *addr;
  buf.mr = *mr;
  return buf;
}

}  // namespace liteapp
