#include "src/baselines/fasst_rpc.h"

#include <cstring>

#include "src/common/timing.h"

namespace liteapp {
namespace {

constexpr uint64_t kCallTimeoutNs = 2'000'000'000;
constexpr uint64_t kServerIdleWaitNs = 50'000'000;
// FaSST's master coroutine: per-request dispatch/switch overhead of running
// the handler inline in the polling loop.
constexpr uint64_t kCoroutineDispatchNs = 400;

}  // namespace

FasstServer::FasstServer(lt::Cluster* cluster, NodeId node, uint32_t msg_bytes,
                         RpcHandler handler)
    : cluster_(cluster), node_(node), msg_bytes_(msg_bytes), handler_(std::move(handler)) {
  proc_ = cluster_->node(node_)->CreateProcess();
  recv_cq_ = proc_->verbs().CreateCq();
  ud_qp_ = proc_->verbs().CreateQp(lt::QpType::kUd, proc_->verbs().CreateCq(), recv_cq_);
  recv_slots_.reserve(kRecvSlots);
  for (size_t i = 0; i < kRecvSlots; ++i) {
    auto buf = AllocRegistered(proc_, msg_bytes_, lt::kMrAll);
    recv_slots_.push_back(*buf);
    PostRecvSlot(i);
  }
  auto staging = AllocRegistered(proc_, msg_bytes_, lt::kMrAll);
  resp_staging_ = *staging;
}

FasstServer::~FasstServer() { Stop(); }

uint32_t FasstServer::server_qpn() const { return ud_qp_->qpn(); }

void FasstServer::PostRecvSlot(size_t slot) {
  lt::Rqe rqe;
  rqe.wr_id = slot;
  rqe.lkey = recv_slots_[slot].mr.lkey;
  rqe.addr = recv_slots_[slot].addr;
  rqe.length = msg_bytes_;
  (void)ud_qp_->PostRecv(rqe);
}

StatusOr<FasstClient*> FasstServer::AttachClient(NodeId client_node) {
  auto client = std::unique_ptr<FasstClient>(new FasstClient());
  client->server_ = this;
  client->proc_ = cluster_->node(client_node)->CreateProcess();
  auto send_buf = AllocRegistered(client->proc_, msg_bytes_, lt::kMrAll);
  if (!send_buf.ok()) {
    return send_buf.status();
  }
  client->send_buf_ = *send_buf;
  auto recv_buf = AllocRegistered(client->proc_, msg_bytes_, lt::kMrAll);
  if (!recv_buf.ok()) {
    return recv_buf.status();
  }
  client->recv_buf_ = *recv_buf;
  client->recv_cq_ = client->proc_->verbs().CreateCq();
  client->ud_qp_ = client->proc_->verbs().CreateQp(lt::QpType::kUd,
                                                   client->proc_->verbs().CreateCq(),
                                                   client->recv_cq_);
  FasstClient* out = client.get();
  clients_.push_back(std::move(client));
  return out;
}

void FasstServer::Start() {
  stopping_.store(false);
  thread_ = std::thread([this] { ServerLoop(); });
}

void FasstServer::Stop() {
  if (stopping_.exchange(true)) {
    return;
  }
  recv_cq_->Shutdown();
  if (thread_.joinable()) {
    thread_.join();
  }
}

void FasstServer::ServerLoop() {
  std::vector<uint8_t> in(msg_bytes_);
  std::vector<uint8_t> out(msg_bytes_);
  while (!stopping_.load()) {
    uint64_t cpu0 = lt::ThreadCpuNs();
    // FaSST's master coroutine busy-polls the receive CQ.
    auto c = recv_cq_->WaitPoll(kServerIdleWaitNs, lt::WaitMode::kBusyPoll);
    if (!c.has_value() || stopping_.load()) {
      cpu_.Add(lt::ThreadCpuNs() - cpu0);
      continue;
    }
    size_t slot = static_cast<size_t>(c->wr_id);
    lt::SpinFor(kCoroutineDispatchNs);
    (void)ReadVirt(proc_, recv_slots_[slot].addr, in.data(), c->byte_len);
    // The handler executes INLINE in the polling thread (FaSST's design).
    uint32_t out_len = handler_(in.data(), c->byte_len, out.data(), msg_bytes_);
    (void)WriteVirt(proc_, resp_staging_.addr, out.data(), out_len);

    lt::WorkRequest wr;
    wr.opcode = lt::WrOpcode::kSend;
    wr.lkey = resp_staging_.mr.lkey;
    wr.local_addr = resp_staging_.addr;
    wr.length = out_len;
    wr.ud_dst_node = c->src_node;
    wr.ud_dst_qpn = c->src_qpn;
    wr.signaled = false;
    (void)proc_->verbs().PostSend(ud_qp_, wr);

    PostRecvSlot(slot);
    cpu_.Add(lt::ThreadCpuNs() - cpu0);
  }
}

Status FasstClient::Call(const void* in, uint32_t in_len, void* out, uint32_t out_max,
                         uint32_t* out_len) {
  std::lock_guard<std::mutex> lock(mu_);
  if (in_len > server_->msg_bytes_) {
    return Status::InvalidArgument("request larger than FaSST message size");
  }
  lt::Rqe rqe;
  rqe.wr_id = 1;
  rqe.lkey = recv_buf_.mr.lkey;
  rqe.addr = recv_buf_.addr;
  rqe.length = server_->msg_bytes_;
  (void)ud_qp_->PostRecv(rqe);

  (void)WriteVirt(proc_, send_buf_.addr, in, in_len);
  lt::WorkRequest wr;
  wr.opcode = lt::WrOpcode::kSend;
  wr.lkey = send_buf_.mr.lkey;
  wr.local_addr = send_buf_.addr;
  wr.length = in_len;
  wr.ud_dst_node = server_->node_;
  wr.ud_dst_qpn = server_->ud_qp_->qpn();
  wr.signaled = false;
  LT_RETURN_IF_ERROR(proc_->verbs().PostSend(ud_qp_, wr));

  while (true) {
    auto c = recv_cq_->WaitPoll(kCallTimeoutNs, lt::WaitMode::kBusyPoll);
    if (!c.has_value()) {
      return Status::Timeout("no FaSST response");
    }
    if (c->opcode == lt::WcOpcode::kRecv) {
      uint32_t len = std::min(c->byte_len, out_max);
      LT_RETURN_IF_ERROR(ReadVirt(proc_, recv_buf_.addr, out, len));
      if (out_len != nullptr) {
        *out_len = c->byte_len;
      }
      return Status::Ok();
    }
  }
}

}  // namespace liteapp
