// HERD-style RPC (Kalia et al., re-implemented per paper Sec. 5.3):
//   request:  one-sided RDMA write into a per-client region at the server,
//   response: one UD send back to the client,
//   server:   threads BUSY-POLL every client's request region in memory.
//
// The busy-polled-region discovery is modeled with an out-of-band rendezvous
// queue carrying the request's virtual arrival time: the server thread
// really blocks on the queue, then charges busy-poll CPU for the entire gap
// (SyncToBusy) plus a per-scan cost proportional to the number of client
// regions it must check — reproducing HERD's low latency but high CPU
// (paper Figs. 10, 13) and its poor fit for many clients.
#ifndef SRC_BASELINES_HERD_RPC_H_
#define SRC_BASELINES_HERD_RPC_H_

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "src/baselines/base_util.h"
#include "src/common/cpu_meter.h"
#include "src/common/sync_util.h"

namespace liteapp {

class HerdServer;

class HerdClient {
 public:
  // Created via HerdServer::AttachClient.
  Status Call(const void* in, uint32_t in_len, void* out, uint32_t out_max, uint32_t* out_len);

 private:
  friend class HerdServer;
  HerdClient() = default;

  HerdServer* server_ = nullptr;
  Process* proc_ = nullptr;
  size_t index_ = 0;
  RegisteredBuf req_staging_;   // Client-side staging for the RDMA write.
  RegisteredBuf resp_buf_;      // UD receive buffer (re-posted per call).
  lt::Qp* write_qp_ = nullptr;  // RC QP client->server for the request write.
  lt::Qp* ud_qp_ = nullptr;     // UD QP receiving the response.
  lt::Cq* ud_recv_cq_ = nullptr;
  std::mutex mu_;               // One outstanding call per client.
};

class HerdServer {
 public:
  // `region_bytes` is the per-client request region size.
  HerdServer(lt::Cluster* cluster, NodeId node, uint32_t region_bytes, RpcHandler handler);
  ~HerdServer();

  // Registers a client on `client_node`; wires QPs (setup phase, no cost).
  StatusOr<HerdClient*> AttachClient(NodeId client_node);

  void Start(int num_threads);
  void Stop();

  uint64_t server_cpu_ns() const { return cpu_.TotalCpuNs(); }
  NodeId node() const { return node_; }

 private:
  friend class HerdClient;

  struct ClientPort {
    std::unique_ptr<HerdClient> client;
    RegisteredBuf region;        // Server-side request region (busy-polled).
    RegisteredBuf resp_staging;  // Server-side response staging.
    NodeId client_node = lt::kInvalidNode;
    uint32_t client_ud_qpn = 0;
  };

  void ServerLoop();

  lt::Cluster* const cluster_;
  const NodeId node_;
  const uint32_t region_bytes_;
  const RpcHandler handler_;
  Process* proc_ = nullptr;
  lt::Qp* ud_send_qp_ = nullptr;

  std::vector<std::unique_ptr<ClientPort>> ports_;
  lt::BlockingQueue<std::pair<size_t, uint64_t>> incoming_;  // {port, vtime}
  std::vector<std::thread> threads_;
  std::atomic<bool> stopping_{false};
  lt::CpuMeter cpu_;
};

}  // namespace liteapp

#endif  // SRC_BASELINES_HERD_RPC_H_
