// FaSST-style RPC (Kalia et al., re-implemented per paper Sec. 5.3):
// request and response are both unreliable-datagram (UD) sends. One master
// server thread busy-polls the receive CQ AND executes the handler inline —
// the single-dispatcher design the paper calls out as a throughput
// bottleneck (Fig. 11) and a safety concern. UD supports no one-sided ops,
// so everything is two-sided.
#ifndef SRC_BASELINES_FASST_RPC_H_
#define SRC_BASELINES_FASST_RPC_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/baselines/base_util.h"
#include "src/common/cpu_meter.h"

namespace liteapp {

class FasstServer;

class FasstClient {
 public:
  Status Call(const void* in, uint32_t in_len, void* out, uint32_t out_max, uint32_t* out_len);

 private:
  friend class FasstServer;
  FasstClient() = default;

  FasstServer* server_ = nullptr;
  Process* proc_ = nullptr;
  RegisteredBuf send_buf_;
  RegisteredBuf recv_buf_;
  lt::Qp* ud_qp_ = nullptr;
  lt::Cq* recv_cq_ = nullptr;
  std::mutex mu_;
};

class FasstServer {
 public:
  FasstServer(lt::Cluster* cluster, NodeId node, uint32_t msg_bytes, RpcHandler handler);
  ~FasstServer();

  StatusOr<FasstClient*> AttachClient(NodeId client_node);

  void Start();  // One master thread, per FaSST's design.
  void Stop();

  uint64_t server_cpu_ns() const { return cpu_.TotalCpuNs(); }
  uint32_t server_qpn() const;
  NodeId node() const { return node_; }

 private:
  friend class FasstClient;

  void ServerLoop();
  void PostRecvSlot(size_t slot);

  static constexpr size_t kRecvSlots = 64;

  lt::Cluster* const cluster_;
  const NodeId node_;
  const uint32_t msg_bytes_;
  const RpcHandler handler_;
  Process* proc_ = nullptr;
  lt::Qp* ud_qp_ = nullptr;
  lt::Cq* recv_cq_ = nullptr;
  std::vector<RegisteredBuf> recv_slots_;
  RegisteredBuf resp_staging_;

  std::vector<std::unique_ptr<FasstClient>> clients_;
  std::thread thread_;
  std::atomic<bool> stopping_{false};
  lt::CpuMeter cpu_;
};

}  // namespace liteapp

#endif  // SRC_BASELINES_FASST_RPC_H_
