// SimParams: every calibrated cost in the simulated substrate, in one place.
//
// The defaults are calibrated so the microbenchmark *shapes and magnitudes*
// match the paper's testbed (40 Gbps ConnectX-3, Xeon E5-2620, Linux 3.11):
//   - native Verbs 64 B write RTT ~= 1.3 us (paper Fig. 6)
//   - RNIC MR-key (MPT) cache holds ~128 entries: latency cliff past ~100 MRs
//     (paper Fig. 4)
//   - RNIC PTE (MTT) cache covers ~4 MB: throughput cliff past 4 MB MR size
//     (paper Fig. 5)
//   - user/kernel crossings 0.17 us for the optimized two-crossing RPC path
//     (paper Sec. 5.2/5.3)
//   - MR registration dominated by per-page pinning (paper Fig. 8)
//   - TCP-over-IB (IPoIB) ~25 us latency / <= ~1.8 GB/s (paper Figs. 6, 7)
//
// All times in nanoseconds, sizes in bytes.
#ifndef SRC_SIM_PARAMS_H_
#define SRC_SIM_PARAMS_H_

#include <cstddef>
#include <cstdint>

namespace lt {

// Connection-layer flavor (DESIGN.md §10 "Transport virtualization").
enum class LiteTransport { kRc, kDc };

struct SimParams {
  // ---- Memory / paging ----
  size_t page_size = 4096;
  size_t node_phys_mem_bytes = 96ull << 20;  // Physical memory pool per node.

  // ---- Fabric (per-hop wire + switch) ----
  uint64_t wire_latency_ns = 300;          // Propagation + one switch hop, one way.
  double nic_line_rate_bytes_per_ns = 4.6; // ~40 Gbps minus framing overhead.

  // ---- RNIC engine costs ----
  uint64_t rnic_post_ns = 200;       // WQE build + doorbell (host side).
  uint64_t rnic_process_ns = 150;    // NIC packet processing, per side.
  uint64_t rnic_completion_ns = 120; // CQE generation + host poll cost.
  uint64_t rnic_ack_ns = 250;        // RC ACK turn-around at the responder NIC.
  uint64_t rnic_atomic_extra_ns = 300;  // PCIe read-modify-write for atomics.
  size_t ud_grh_bytes = 40;          // Global routing header overhead for UD.
  // Doorbell batching: a post that lands on the same QP within
  // rnic_doorbell_window_ns of the previous one (and opted in via
  // WorkRequest::doorbell_hint) rides the same doorbell and pays only the
  // per-extra-WQE increment instead of the full rnic_post_ns.
  uint64_t rnic_post_wqe_ns = 40;        // Per-extra-WQE cost inside a batch.
  uint64_t rnic_doorbell_window_ns = 1000;  // Max post gap that still batches.
  // Inline sends: writes with payload <= rnic_inline_max (and opted in via
  // WorkRequest::inline_data) carry the payload in the WQE itself, skipping
  // the local DMA-read stage — the local NIC engine only pays
  // rnic_inline_process_ns per WQE instead of rnic_process_ns.
  size_t rnic_inline_max = 256;
  uint64_t rnic_inline_process_ns = 60;

  // ---- RNIC on-chip SRAM (the scalability bottleneck the paper attacks) ----
  size_t mpt_cache_entries = 128;    // MR protection-table entries cached.
  uint64_t mpt_miss_ns = 950;        // Fetch MPT entry from host memory.
  size_t mtt_cache_pages = 1024;     // Cached PTEs: 1024 * 4 KB = 4 MB coverage.
  uint64_t mtt_miss_ns = 700;        // Fetch one PTE from host memory.
  size_t qpc_cache_entries = 256;    // QP contexts cached on-NIC.
  uint64_t qpc_miss_ns = 500;        // Fetch QP context from host memory.
  // Responder-side QPC modeling: when on, the remote NIC also touches a QPC
  // entry per incoming request (keyed by the sender's QP), so an incast
  // server with many distinct RC peers thrashes its QPC cache while a DC
  // target stays a single always-hot entry. Off by default so historical
  // figure timings are byte-identical.
  bool rnic_model_responder_qpc = false;
  // Host-memory footprint of one QP's state (QPC + driver bookkeeping);
  // only used for reporting total per-node QP state in the scale benches.
  size_t rnic_qp_state_bytes = 1024;

  // ---- OS / kernel costs ----
  uint64_t user_kernel_cross_ns = 85;   // One crossing; optimized RPC pays two.
  uint64_t syscall_overhead_ns = 150;   // Classic trap entry+exit bookkeeping.
  uint64_t pin_page_ns = 800;           // get_user_pages per page (registration).
  uint64_t unpin_page_ns = 300;         // Per page on deregistration.
  uint64_t mr_register_base_ns = 2500;  // Fixed driver/firmware cost per MR.
  uint64_t mr_deregister_base_ns = 1800;
  uint64_t thread_wakeup_ns = 1200;     // Condvar/futex wake of a sleeping thread.

  // ---- LITE software stack ----
  uint64_t lite_map_check_ns = 90;    // lh lookup + permission check + addr map.
  uint64_t lite_rpc_dispatch_ns = 180;  // Poll-thread IMM decode + hand-off.
  uint64_t lite_malloc_local_ns = 1500;  // Local LMR allocation bookkeeping.
  size_t lite_max_chunk_bytes = 4ull << 20;  // Physically-consecutive chunk cap.
  size_t lite_rpc_ring_bytes = 1ull << 20;   // Per-(client,function) server ring
                                             // (paper used 16 MB; scaled to the
                                             // smaller simulated memory pools).
  uint64_t lite_rpc_timeout_ns = 2'000'000'000;  // RPC failure-detection timeout.
  uint64_t lite_adaptive_spin_ns = 6'000;  // Busy-check budget before sleeping.
  // Failure recovery (see DESIGN.md "Failure model & recovery").
  uint32_t lite_rpc_max_retries = 3;        // Transparent retransmits per call.
  uint64_t lite_rpc_retry_backoff_ns = 200'000;  // First retry backoff; doubles.
  uint64_t lite_qp_reconnect_ns = 25'000;   // modify_qp ERR->RESET->...->RTS.
  uint64_t lite_ring_full_retry_ns = 2'000;  // Virtual charge per ring-full poll.
  // Liveness: keepalive cadence (real time; 0 disables the service) and the
  // manager-side lease (0 means 5x the keepalive interval).
  uint64_t lite_keepalive_interval_ns = 0;
  uint64_t lite_lease_timeout_ns = 0;
  int lite_qp_sharing_factor = 2;     // K in "K x N QPs per node" (Sec. 6.1).
  // ---- Transport virtualization (DESIGN.md §10) ----
  // kRc: the paper's shared RC pool — K dedicated QPs per connected peer,
  // eagerly wired at cluster setup (QP state grows O(n) per node).
  // kDc: a DC-style virtualized transport — a bounded node-wide pool of
  // lite_dc_qp_pool initiator QPs that attach to any destination on demand,
  // paying lite_dc_connect_ns when a QP re-targets a different peer
  // (amortized by per-destination affinity). QP state is O(pool), not O(n).
  LiteTransport lite_transport = LiteTransport::kRc;
  int lite_dc_qp_pool = 32;            // DC initiator QPs per node (bounded).
  uint64_t lite_dc_connect_ns = 900;   // DC re-target (attach) cost, host side.
  // Sticky QP selection (PickQpIndexSticky): a thread's QP within its QoS
  // band is hash(thread) + lite_sticky_salt; with lite_sticky_rotate_ops > 0
  // the choice also rotates to the next QP every that-many sticky picks by
  // the thread. Defaults (0/0) reproduce the historical pure-hash behavior.
  uint32_t lite_sticky_salt = 0;
  uint32_t lite_sticky_rotate_ops = 0;
  // Eagerly bootstrap the all-pairs control rings at cluster construction.
  // Off: control channels are established lazily on first internal RPC to a
  // peer — required for large sparse clusters (the 1000-node scale bench)
  // where all-pairs ring memory would dominate.
  bool lite_eager_control_rings = true;
  // Async memop fast path (LT_read_async/LT_write_async).
  size_t lite_async_window = 64;      // Per-instance in-flight memop cap.
  uint32_t lite_async_signal_every = 8;  // Every K-th async WQE is signaled;
                                         // the unsignaled prefix is inferred
                                         // complete from the K-th CQE.
  size_t lite_reply_slots = 256;      // Concurrent outstanding RPCs per node.
  size_t lite_reply_slot_bytes = 16384;  // Max RPC reply size per slot.
  // Per-CPU submission/completion rings (DESIGN.md §9). With rings on, a
  // user-level client enqueues op descriptors into a shared-memory per-CPU
  // ring (the enqueue is a cache-line write — below this model's ns
  // granularity, so it charges nothing) and pays the user->kernel crossing
  // only as a doorbell when the kernel-half drainer has gone cold. The
  // drainer is considered hot for lite_ring_spin_ns after its last activity
  // (it adaptively spins that long before sleeping); deferred async
  // submissions flush at lite_ring_doorbell_batch entries, at
  // lite_ring_flush_ns age, at lite_ring_entries occupancy (overflow
  // backpressure), or when a sync op / reap needs them ordered-in.
  bool lite_ring_enable = false;       // Rings off: every path byte-identical.
  uint32_t lite_ring_cpus = 4;         // Submission/completion ring pairs.
  uint32_t lite_ring_entries = 256;    // Ring capacity (overflow backpressure).
  uint32_t lite_ring_doorbell_batch = 16;  // Deferred entries per flush.
  uint64_t lite_ring_flush_ns = 2'000;     // Max deferred age before flush.
  uint64_t lite_ring_spin_ns = 6'000;  // Drainer hot window / reap spin budget.
  // Live LMR migration (DESIGN.md "Epoch-fenced ownership & live migration").
  uint32_t lite_migrate_max_rounds = 4;  // Bounded dirty re-copy rounds before
                                         // the fence closes regardless.
  uint64_t lite_migrate_park_poll_ns = 20'000;  // Re-check cadence (virtual)
                                                // while an op parks on a fence.
  // Chaos-soak liveness lease: soaks and benches that crash nodes under load
  // share this knob instead of each picking its own constant. Long enough
  // that a healthy node does not flap dead when host scheduling (single
  // core, TSan) stalls its keepalive past the lease; short enough that
  // crashes are detected well inside a test's wait budget.
  uint64_t lite_soak_lease_timeout_ns = 60'000'000;
  double local_copy_bytes_per_ns = 12.0;  // Same-node memcpy bandwidth.
  uint64_t local_op_base_ns = 60;         // Fixed cost of a local LITE copy.

  // ---- TCP/IP over IB (IPoIB) ----
  uint64_t tcp_send_stack_ns = 9000;   // Socket + TCP/IP + IPoIB tx path.
  uint64_t tcp_recv_stack_ns = 9000;   // rx path incl. interrupt + copy.
  double tcp_rate_bytes_per_ns = 1.7;  // ~13.6 Gb/s effective, per paper Fig. 7.
  size_t tcp_mtu_bytes = 65520;        // IPoIB connected-mode MTU.

  // ---- Failure injection (tests only; zero by default) ----
  double fabric_drop_probability = 0.0;
  uint64_t fabric_extra_delay_ns = 0;

  // Convenience: wire transfer time for a payload at line rate.
  uint64_t WireBytesNs(size_t bytes) const {
    return static_cast<uint64_t>(static_cast<double>(bytes) / nic_line_rate_bytes_per_ns);
  }

  // Scaled-down parameter set for unit tests: tiny delays so tests run fast,
  // but all mechanisms (caches, rings, crossings) still exercised.
  static SimParams FastForTests();
};

}  // namespace lt

#endif  // SRC_SIM_PARAMS_H_
