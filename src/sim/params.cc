#include "src/sim/params.h"

namespace lt {

SimParams SimParams::FastForTests() {
  SimParams p;
  p.node_phys_mem_bytes = 32ull << 20;
  p.wire_latency_ns = 0;
  p.rnic_post_ns = 0;
  p.rnic_process_ns = 0;
  p.rnic_completion_ns = 0;
  p.rnic_ack_ns = 0;
  p.rnic_atomic_extra_ns = 0;
  p.rnic_post_wqe_ns = 0;
  p.rnic_inline_process_ns = 0;
  p.mpt_miss_ns = 0;
  p.mtt_miss_ns = 0;
  p.qpc_miss_ns = 0;
  p.user_kernel_cross_ns = 0;
  p.syscall_overhead_ns = 0;
  p.pin_page_ns = 0;
  p.unpin_page_ns = 0;
  p.mr_register_base_ns = 0;
  p.mr_deregister_base_ns = 0;
  p.thread_wakeup_ns = 0;
  p.lite_map_check_ns = 0;
  p.lite_rpc_dispatch_ns = 0;
  p.lite_malloc_local_ns = 0;
  p.lite_rpc_ring_bytes = 128 << 10;
  p.lite_rpc_timeout_ns = 2'000'000'000;
  p.lite_rpc_retry_backoff_ns = 0;  // Retries are immediate in fast tests.
  p.lite_qp_reconnect_ns = 0;
  p.lite_reply_slots = 128;
  p.local_op_base_ns = 0;
  p.tcp_send_stack_ns = 0;
  p.tcp_recv_stack_ns = 0;
  return p;
}

}  // namespace lt
