// Deterministic, scriptable fault-injection engine (this repo's chaos layer).
//
// The engine replaces the fabric's old single global drop knob with per-link
// and per-node fault rules: probabilistic drop / duplicate / reorder-jitter /
// extra delay per directed link, full partitions between node groups, and
// node crash/restart — either immediate or triggered by virtual-time windows
// so a schedule is replayable. Every probabilistic decision draws from a
// per-link SplitMix64 stream seeded from (engine seed, src, dst), so the same
// seed and the same per-link transfer order reproduce the same fault
// sequence, and unrelated links never contend on a shared RNG lock.
//
// Fast-path contract: when nothing is armed (no rules, no crashes, no
// partitions — the default), OnTransfer() is never reached; callers gate on
// `armed()`, a single relaxed atomic load. The clean path performs no
// locking, no RNG draws, and no virtual-time charges, which keeps fault-free
// runs byte-identical to a build without the engine.
#ifndef SRC_FAULTS_FAULTS_H_
#define SRC_FAULTS_FAULTS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/rng.h"
#include "src/common/sync_util.h"
#include "src/mem/addr.h"
#include "src/telemetry/journal.h"

namespace lt {

// Per-directed-link fault rule. All fields compose: a transfer may be
// dropped, or (if it survives) duplicated and/or delayed.
struct LinkFaultRule {
  double drop_p = 0.0;          // P(transfer silently dropped)
  double dup_p = 0.0;           // P(transfer delivered twice)
  uint64_t extra_delay_ns = 0;  // fixed extra one-way delay
  uint64_t jitter_ns = 0;       // uniform random delay in [0, jitter_ns)
                                //   (reorders messages racing on a link)
  bool partitioned = false;     // hard cut: every transfer dropped

  bool Active() const {
    return drop_p > 0.0 || dup_p > 0.0 || extra_delay_ns != 0 || jitter_ns != 0 || partitioned;
  }
};

// Out-params of one OnTransfer decision beyond the delay/drop result.
struct TransferFaults {
  bool duplicate = false;         // deliver a second copy of this transfer
  uint64_t dup_extra_delay_ns = 0;  // additional delay of the duplicate copy
};

class FaultEngine {
 public:
  // Sentinel returned by OnTransfer for "drop this transfer".
  static constexpr uint64_t kDropTransfer = ~0ull;

  explicit FaultEngine(uint64_t seed = 0xfab51cull) : seed_(seed) {}

  // Sizes per-node / per-link state. Called by Fabric::Attach; all nodes must
  // be attached before traffic starts (the engine does not lock the link
  // table against concurrent growth on the transfer path).
  void EnsureNodes(size_t count);

  // Reseeds every per-link RNG stream (derived as seed ^ link index mix) and
  // resets decision counters. Does not change rules or crash state.
  void Reseed(uint64_t seed);

  // ---- Link rules -------------------------------------------------------
  // The default rule applies to every directed link without an override.
  void SetDefaultRule(const LinkFaultRule& rule);
  LinkFaultRule default_rule() const;
  void SetLinkRule(NodeId src, NodeId dst, const LinkFaultRule& rule);
  void ClearLinkRule(NodeId src, NodeId dst);  // back to the default rule
  void ClearAllRules();                        // default + overrides reset

  // Deterministic count-based injection: drop the next `count` transfers on
  // src->dst regardless of probabilities (tests use this to kill exactly one
  // request or reply without coin flips).
  void DropNextTransfers(NodeId src, NodeId dst, uint64_t count);

  // ---- Partitions -------------------------------------------------------
  // Cuts every link between group `a` and group `b`, both directions.
  // Layered on the per-link overrides; HealPartitions() removes only the
  // partition bits it set.
  void Partition(const std::vector<NodeId>& a, const std::vector<NodeId>& b);
  void HealPartitions();

  // ---- Node crash / restart --------------------------------------------
  // A crashed node is fully isolated: every transfer to or from it drops
  // (its threads keep running — like a real machine that lost its NIC; a
  // restart heals the links and recovery is the upper layers' job).
  void CrashNode(NodeId node);
  void RestartNode(NodeId node);
  bool NodeCrashed(NodeId node) const;
  // Virtual-time crash window: node is down for transfers departing in
  // [start_vns, end_vns). Replayable: the trigger is virtual time, not wall
  // time. Windows stack with CrashNode and are removed by ClearSchedules().
  void ScheduleCrash(NodeId node, uint64_t start_vns, uint64_t end_vns);
  // One-shot deterministic crash: `node` is down for every transfer departing
  // at virtual time >= t_vns — CrashNode() firing at exactly t_vns, no window
  // end to pick. Healed by ClearSchedules() (RestartNode only clears the
  // immediate-crash flag, not virtual-time schedules).
  void CrashAtVtime(NodeId node, uint64_t t_vns) { ScheduleCrash(node, t_vns, ~0ull); }
  void ClearSchedules();

  // ---- Transfer decision (hot path when armed) -------------------------
  // Decides the fate of one src->dst transfer departing at virtual time
  // `vtime_ns`. Returns extra delay in ns (0 if none) or kDropTransfer.
  // Fills `*out` (optional) with duplicate-delivery info.
  uint64_t OnTransfer(NodeId src, NodeId dst, uint64_t vtime_ns, TransferFaults* out = nullptr);

  // True when any rule / crash / partition / schedule is live. Callers skip
  // OnTransfer entirely when false.
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  // ---- Flight recorder ---------------------------------------------------
  // Registers `node`'s journal so every armed-rule decision (drop / dup /
  // delay, with the link and the transfer's virtual departure time) leaves a
  // replayable event trail. Same contract as EnsureNodes: all journals must
  // be attached before traffic starts. Decisions on src->dst record into
  // src's journal (the transfer originates there); crash/restart record into
  // the crashed node's own journal.
  void AttachJournal(NodeId node, telemetry::Journal* journal);

  // ---- Introspection (telemetry probes) --------------------------------
  uint64_t drops() const { return drops_.load(std::memory_order_relaxed); }
  uint64_t duplicates() const { return duplicates_.load(std::memory_order_relaxed); }
  uint64_t delays_injected() const { return delays_.load(std::memory_order_relaxed); }
  uint64_t crash_drops() const { return crash_drops_.load(std::memory_order_relaxed); }
  uint64_t partition_drops() const { return partition_drops_.load(std::memory_order_relaxed); }
  // Drops of transfers originating at `src` (fails closed to 0 out of range).
  uint64_t drops_from(NodeId src) const;

 private:
  // One directed link: its override rule (if any), pending count-drops, and
  // a private RNG stream so decisions on unrelated links never serialize.
  struct LinkState {
    SpinLock mu;                     // guards rule + default_copy + rng
    LinkFaultRule rule;              // valid only if has_override
    LinkFaultRule default_copy;      // mirror of default_rule_, kept in sync
                                     //   under mu so OnTransfer never touches
                                     //   the config_mu_-guarded original
    bool has_override = false;
    bool partition_cut = false;      // set/cleared by Partition()/Heal
    std::atomic<int64_t> drop_next{0};
    Rng rng{0};

    LinkState() = default;
    LinkState(const LinkState&) = delete;
    LinkState& operator=(const LinkState&) = delete;
  };

  struct CrashWindow {
    NodeId node = kInvalidNode;
    uint64_t start_vns = 0;
    uint64_t end_vns = 0;
  };

  LinkState* Link(NodeId src, NodeId dst) const;
  void EnsureNodesLocked(size_t count);
  static uint64_t MixSeed(uint64_t seed, NodeId src, NodeId dst);
  void RecomputeArmedLocked();  // config_mu_ held
  void NoteDrop(NodeId src);
  // Journal of `node`, or nullptr. Lock-free read (attach-before-traffic).
  telemetry::Journal* JournalFor(NodeId node) const;
  void JournalDrop(NodeId src, NodeId dst, uint64_t vtime_ns, telemetry::DropCause cause);

  mutable std::mutex config_mu_;  // guards topology + rule mutation
  uint64_t seed_;
  size_t nodes_ = 0;
  std::vector<std::unique_ptr<LinkState>> links_;  // nodes_ * nodes_, src-major
  LinkFaultRule default_rule_;
  bool any_override_ = false;

  // Crash state: flat atomic flags (read lock-free on the transfer path).
  std::vector<std::unique_ptr<std::atomic<uint8_t>>> crashed_;
  // Crash windows: fixed-capacity append-only slab published via
  // window_count_, so the lock-free transfer-path scan never races a
  // reallocation when a test arms a crash mid-traffic.
  static constexpr size_t kMaxCrashWindows = 256;
  std::atomic<size_t> window_count_{0};
  std::unique_ptr<CrashWindow[]> windows_ = std::make_unique<CrashWindow[]>(kMaxCrashWindows);

  std::atomic<bool> armed_{false};
  std::atomic<bool> default_active_{false};

  // Counters.
  std::atomic<uint64_t> drops_{0};
  std::atomic<uint64_t> duplicates_{0};
  std::atomic<uint64_t> delays_{0};
  std::atomic<uint64_t> crash_drops_{0};
  std::atomic<uint64_t> partition_drops_{0};
  std::vector<std::unique_ptr<std::atomic<uint64_t>>> drops_from_;

  // Per-node flight recorders (may hold nullptrs); grown under config_mu_
  // before traffic starts, read lock-free on the transfer path.
  std::vector<telemetry::Journal*> journals_;
};

}  // namespace lt

#endif  // SRC_FAULTS_FAULTS_H_
