#include "src/faults/faults.h"

#include <algorithm>

namespace lt {

uint64_t FaultEngine::MixSeed(uint64_t seed, NodeId src, NodeId dst) {
  // SplitMix64 finalizer over (seed, src, dst) so each directed link gets an
  // independent, reproducible stream.
  uint64_t z = seed ^ (uint64_t{src} << 32) ^ (uint64_t{dst} + 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

void FaultEngine::EnsureNodes(size_t count) {
  std::lock_guard<std::mutex> lock(config_mu_);
  EnsureNodesLocked(count);
}

void FaultEngine::EnsureNodesLocked(size_t count) {
  if (count <= nodes_) {
    return;
  }
  // Rebuild the link table src-major at the new width, moving existing link
  // state so rules installed before later Attach() calls survive.
  std::vector<std::unique_ptr<LinkState>> grown(count * count);
  for (size_t s = 0; s < nodes_; ++s) {
    for (size_t d = 0; d < nodes_; ++d) {
      grown[s * count + d] = std::move(links_[s * nodes_ + d]);
    }
  }
  for (size_t s = 0; s < count; ++s) {
    for (size_t d = 0; d < count; ++d) {
      auto& slot = grown[s * count + d];
      if (!slot) {
        slot = std::make_unique<LinkState>();
        slot->rng = Rng(MixSeed(seed_, static_cast<NodeId>(s), static_cast<NodeId>(d)));
        slot->default_copy = default_rule_;
      }
    }
  }
  links_ = std::move(grown);
  while (crashed_.size() < count) {
    crashed_.push_back(std::make_unique<std::atomic<uint8_t>>(0));
    drops_from_.push_back(std::make_unique<std::atomic<uint64_t>>(0));
  }
  nodes_ = count;
}

void FaultEngine::Reseed(uint64_t seed) {
  std::lock_guard<std::mutex> lock(config_mu_);
  seed_ = seed;
  for (size_t s = 0; s < nodes_; ++s) {
    for (size_t d = 0; d < nodes_; ++d) {
      LinkState* link = links_[s * nodes_ + d].get();
      std::lock_guard<SpinLock> link_lock(link->mu);
      link->rng = Rng(MixSeed(seed_, static_cast<NodeId>(s), static_cast<NodeId>(d)));
    }
  }
  drops_.store(0, std::memory_order_relaxed);
  duplicates_.store(0, std::memory_order_relaxed);
  delays_.store(0, std::memory_order_relaxed);
  crash_drops_.store(0, std::memory_order_relaxed);
  partition_drops_.store(0, std::memory_order_relaxed);
  for (auto& c : drops_from_) {
    c->store(0, std::memory_order_relaxed);
  }
}

FaultEngine::LinkState* FaultEngine::Link(NodeId src, NodeId dst) const {
  if (src >= nodes_ || dst >= nodes_) {
    return nullptr;
  }
  return links_[static_cast<size_t>(src) * nodes_ + dst].get();
}

void FaultEngine::RecomputeArmedLocked() {
  bool armed = default_rule_.Active() || any_override_ ||
               window_count_.load(std::memory_order_relaxed) != 0;
  if (!armed) {
    for (const auto& c : crashed_) {
      if (c->load(std::memory_order_relaxed)) {
        armed = true;
        break;
      }
    }
  }
  default_active_.store(default_rule_.Active(), std::memory_order_relaxed);
  armed_.store(armed, std::memory_order_relaxed);
}

void FaultEngine::SetDefaultRule(const LinkFaultRule& rule) {
  std::lock_guard<std::mutex> lock(config_mu_);
  default_rule_ = rule;
  // Propagate to the per-link mirrors so OnTransfer reads the default under
  // the link lock alone (no shared-state race with this writer).
  for (const auto& l : links_) {
    std::lock_guard<SpinLock> link_lock(l->mu);
    l->default_copy = rule;
  }
  RecomputeArmedLocked();
}

LinkFaultRule FaultEngine::default_rule() const {
  std::lock_guard<std::mutex> lock(config_mu_);
  return default_rule_;
}

void FaultEngine::SetLinkRule(NodeId src, NodeId dst, const LinkFaultRule& rule) {
  std::lock_guard<std::mutex> lock(config_mu_);
  EnsureNodesLocked(static_cast<size_t>(std::max(src, dst)) + 1);
  LinkState* link = Link(src, dst);
  if (link == nullptr) {
    return;
  }
  {
    std::lock_guard<SpinLock> link_lock(link->mu);
    link->rule = rule;
    link->has_override = true;
  }
  any_override_ = true;
  RecomputeArmedLocked();
}

void FaultEngine::ClearLinkRule(NodeId src, NodeId dst) {
  std::lock_guard<std::mutex> lock(config_mu_);
  LinkState* link = Link(src, dst);
  if (link == nullptr) {
    return;
  }
  bool any = false;
  {
    std::lock_guard<SpinLock> link_lock(link->mu);
    link->has_override = false;
    link->rule = LinkFaultRule{};
  }
  for (const auto& l : links_) {
    std::lock_guard<SpinLock> link_lock(l->mu);
    if (l->has_override || l->partition_cut || l->drop_next.load(std::memory_order_relaxed) > 0) {
      any = true;
      break;
    }
  }
  any_override_ = any;
  RecomputeArmedLocked();
}

void FaultEngine::ClearAllRules() {
  std::lock_guard<std::mutex> lock(config_mu_);
  default_rule_ = LinkFaultRule{};
  for (const auto& l : links_) {
    std::lock_guard<SpinLock> link_lock(l->mu);
    l->has_override = false;
    l->partition_cut = false;
    l->rule = LinkFaultRule{};
    l->default_copy = LinkFaultRule{};
    l->drop_next.store(0, std::memory_order_relaxed);
  }
  any_override_ = false;
  RecomputeArmedLocked();
}

void FaultEngine::DropNextTransfers(NodeId src, NodeId dst, uint64_t count) {
  std::lock_guard<std::mutex> lock(config_mu_);
  EnsureNodesLocked(static_cast<size_t>(std::max(src, dst)) + 1);
  LinkState* link = Link(src, dst);
  if (link == nullptr) {
    return;
  }
  link->drop_next.fetch_add(static_cast<int64_t>(count), std::memory_order_relaxed);
  any_override_ = true;
  RecomputeArmedLocked();
}

void FaultEngine::Partition(const std::vector<NodeId>& a, const std::vector<NodeId>& b) {
  std::lock_guard<std::mutex> lock(config_mu_);
  NodeId max_id = 0;
  for (NodeId x : a) max_id = std::max(max_id, x);
  for (NodeId y : b) max_id = std::max(max_id, y);
  EnsureNodesLocked(static_cast<size_t>(max_id) + 1);
  for (NodeId x : a) {
    for (NodeId y : b) {
      for (auto [s, d] : {std::pair<NodeId, NodeId>{x, y}, {y, x}}) {
        LinkState* link = Link(s, d);
        if (link != nullptr) {
          std::lock_guard<SpinLock> link_lock(link->mu);
          link->partition_cut = true;
        }
      }
    }
  }
  any_override_ = true;
  RecomputeArmedLocked();
}

void FaultEngine::HealPartitions() {
  std::lock_guard<std::mutex> lock(config_mu_);
  bool any = false;
  for (const auto& l : links_) {
    std::lock_guard<SpinLock> link_lock(l->mu);
    l->partition_cut = false;
    if (l->has_override || l->drop_next.load(std::memory_order_relaxed) > 0) {
      any = true;
    }
  }
  any_override_ = any;
  RecomputeArmedLocked();
}

void FaultEngine::CrashNode(NodeId node) {
  std::lock_guard<std::mutex> lock(config_mu_);
  EnsureNodesLocked(static_cast<size_t>(node) + 1);
  if (node < crashed_.size()) {
    crashed_[node]->store(1, std::memory_order_relaxed);
  }
  if (telemetry::Journal* j = JournalFor(node)) {
    j->Record(telemetry::JournalEvent::kNodeCrash, node);
  }
  RecomputeArmedLocked();
}

void FaultEngine::RestartNode(NodeId node) {
  std::lock_guard<std::mutex> lock(config_mu_);
  if (node < crashed_.size()) {
    crashed_[node]->store(0, std::memory_order_relaxed);
  }
  if (telemetry::Journal* j = JournalFor(node)) {
    j->Record(telemetry::JournalEvent::kNodeRestart, node);
  }
  RecomputeArmedLocked();
}

bool FaultEngine::NodeCrashed(NodeId node) const {
  std::lock_guard<std::mutex> lock(config_mu_);
  return node < crashed_.size() && crashed_[node]->load(std::memory_order_relaxed) != 0;
}

void FaultEngine::ScheduleCrash(NodeId node, uint64_t start_vns, uint64_t end_vns) {
  std::lock_guard<std::mutex> lock(config_mu_);
  const size_t n = window_count_.load(std::memory_order_relaxed);
  if (n >= kMaxCrashWindows) {
    return;  // Slab full; dropping the schedule beats racing the hot path.
  }
  windows_[n] = CrashWindow{node, start_vns, end_vns};
  window_count_.store(n + 1, std::memory_order_release);
  RecomputeArmedLocked();
}

void FaultEngine::ClearSchedules() {
  std::lock_guard<std::mutex> lock(config_mu_);
  window_count_.store(0, std::memory_order_release);
  RecomputeArmedLocked();
}

void FaultEngine::AttachJournal(NodeId node, telemetry::Journal* journal) {
  std::lock_guard<std::mutex> lock(config_mu_);
  if (journals_.size() <= node) {
    journals_.resize(static_cast<size_t>(node) + 1, nullptr);
  }
  journals_[node] = journal;
}

telemetry::Journal* FaultEngine::JournalFor(NodeId node) const {
  return node < journals_.size() ? journals_[node] : nullptr;
}

void FaultEngine::JournalDrop(NodeId src, NodeId dst, uint64_t vtime_ns,
                              telemetry::DropCause cause) {
  if (telemetry::Journal* j = JournalFor(src)) {
    j->RecordAt(telemetry::JournalEvent::kFaultDrop, vtime_ns, telemetry::PackLink(src, dst),
                static_cast<uint64_t>(cause));
  }
}

void FaultEngine::NoteDrop(NodeId src) {
  drops_.fetch_add(1, std::memory_order_relaxed);
  if (src < drops_from_.size()) {
    drops_from_[src]->fetch_add(1, std::memory_order_relaxed);
  }
}

uint64_t FaultEngine::drops_from(NodeId src) const {
  std::lock_guard<std::mutex> lock(config_mu_);
  if (src >= drops_from_.size()) {
    return 0;
  }
  return drops_from_[src]->load(std::memory_order_relaxed);
}

uint64_t FaultEngine::OnTransfer(NodeId src, NodeId dst, uint64_t vtime_ns, TransferFaults* out) {
  // Crashed endpoint? (immediate flags, then virtual-time windows)
  for (NodeId endpoint : {src, dst}) {
    if (endpoint < crashed_.size() && crashed_[endpoint]->load(std::memory_order_relaxed)) {
      crash_drops_.fetch_add(1, std::memory_order_relaxed);
      NoteDrop(src);
      JournalDrop(src, dst, vtime_ns, telemetry::DropCause::kCrash);
      return kDropTransfer;
    }
  }
  const size_t windows = window_count_.load(std::memory_order_acquire);
  for (size_t i = 0; i < windows; ++i) {
    const CrashWindow& w = windows_[i];
    if ((w.node == src || w.node == dst) && vtime_ns >= w.start_vns && vtime_ns < w.end_vns) {
      crash_drops_.fetch_add(1, std::memory_order_relaxed);
      NoteDrop(src);
      JournalDrop(src, dst, vtime_ns, telemetry::DropCause::kCrash);
      return kDropTransfer;
    }
  }

  LinkState* link = Link(src, dst);
  if (link == nullptr) {
    return 0;
  }
  if (link->drop_next.load(std::memory_order_relaxed) > 0 &&
      link->drop_next.fetch_sub(1, std::memory_order_relaxed) > 0) {
    NoteDrop(src);
    JournalDrop(src, dst, vtime_ns, telemetry::DropCause::kRule);
    return kDropTransfer;
  }

  // Resolve the effective rule and make all probabilistic draws under the
  // per-link lock (the RNG stream is per-link state).
  LinkFaultRule rule;
  bool drop = false;
  bool dup = false;
  uint64_t delay = 0;
  uint64_t dup_delay = 0;
  {
    std::lock_guard<SpinLock> link_lock(link->mu);
    if (link->partition_cut) {
      partition_drops_.fetch_add(1, std::memory_order_relaxed);
      NoteDrop(src);
      JournalDrop(src, dst, vtime_ns, telemetry::DropCause::kPartition);
      return kDropTransfer;
    }
    rule = link->has_override ? link->rule : link->default_copy;
    if (rule.partitioned) {
      partition_drops_.fetch_add(1, std::memory_order_relaxed);
      NoteDrop(src);
      JournalDrop(src, dst, vtime_ns, telemetry::DropCause::kPartition);
      return kDropTransfer;
    }
    if (rule.drop_p > 0.0 && link->rng.NextDouble() < rule.drop_p) {
      drop = true;
    }
    if (!drop) {
      if (rule.dup_p > 0.0 && link->rng.NextDouble() < rule.dup_p) {
        dup = true;
      }
      delay = rule.extra_delay_ns;
      if (rule.jitter_ns > 0) {
        delay += link->rng.NextBounded(rule.jitter_ns);
      }
      if (dup && rule.jitter_ns > 0) {
        dup_delay = link->rng.NextBounded(rule.jitter_ns);
      }
    }
  }
  if (drop) {
    NoteDrop(src);
    JournalDrop(src, dst, vtime_ns, telemetry::DropCause::kRule);
    return kDropTransfer;
  }
  if (delay != 0) {
    delays_.fetch_add(1, std::memory_order_relaxed);
    if (telemetry::Journal* j = JournalFor(src)) {
      j->RecordAt(telemetry::JournalEvent::kFaultDelay, vtime_ns, telemetry::PackLink(src, dst),
                  delay);
    }
  }
  if (dup) {
    duplicates_.fetch_add(1, std::memory_order_relaxed);
    if (telemetry::Journal* j = JournalFor(src)) {
      j->RecordAt(telemetry::JournalEvent::kFaultDup, vtime_ns, telemetry::PackLink(src, dst),
                  dup_delay);
    }
    if (out != nullptr) {
      out->duplicate = true;
      out->dup_extra_delay_ns = dup_delay;
    }
  }
  return delay;
}

}  // namespace lt
