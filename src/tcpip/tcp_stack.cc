#include "src/tcpip/tcp_stack.h"

#include <algorithm>
#include <cstring>

#include "src/common/timing.h"

namespace lt {

Status TcpConn::Send(const void* buf, size_t len) { return SendInternal(buf, len, false); }

Status TcpConn::StreamSend(const void* buf, size_t len) { return SendInternal(buf, len, true); }

Status TcpConn::SendInternal(const void* buf, size_t len, bool streaming) {
  if (peer_ == nullptr) {
    return Status::FailedPrecondition("connection not established");
  }
  const SimParams& p = stack_->params();
  const uint8_t* bytes = static_cast<const uint8_t*>(buf);

  // Sender-side stack traversal. Streaming amortizes: one traversal per MTU.
  if (!streaming) {
    SpinFor(p.tcp_send_stack_ns);
  }

  size_t offset = 0;
  while (offset < len || len == 0) {
    size_t chunk = std::min<size_t>(len - offset, p.tcp_mtu_bytes);
    if (streaming) {
      SpinFor(p.tcp_send_stack_ns / 8);  // Segmentation-offloaded path.
    }
    // TCP-path rate cap + fabric delivery.
    uint64_t now = NowNs();
    uint64_t rate_done = stack_->ReserveRate(now, chunk);
    uint64_t fabric_finish = stack_->fabric()->TransferFinishNs(local_node_, remote_node_, chunk,
                                                                now);
    if (fabric_finish == Fabric::kDropped) {
      return Status::Unavailable("TCP segment dropped (failure injection)");
    }
    Segment seg;
    seg.data.assign(bytes + offset, bytes + offset + chunk);
    seg.ready_at_ns = std::max(rate_done, fabric_finish);
    peer_->Deliver(std::move(seg));
    offset += chunk;
    if (len == 0) {
      break;
    }
  }
  return Status::Ok();
}

void TcpConn::Deliver(Segment segment) { inbox_.Push(std::move(segment)); }

Status TcpConn::RecvExact(void* buf, size_t len, uint64_t timeout_ns) {
  const SimParams& p = stack_->params();
  uint8_t* out = static_cast<uint8_t*>(buf);
  size_t got = 0;
  const uint64_t deadline = NowNs() + timeout_ns;

  while (got < len) {
    if (!pending_.empty()) {
      // Drain previously-received bytes.
      size_t take = std::min(pending_.size(), len - got);
      std::memcpy(out + got, pending_.data(), take);
      pending_.erase(pending_.begin(), pending_.begin() + static_cast<long>(take));
      got += take;
      continue;
    }
    uint64_t now = NowNs();
    if (now >= deadline) {
      return Status::Timeout("TCP recv timeout");
    }
    auto seg = inbox_.PopFor(std::chrono::nanoseconds(deadline - now));
    if (!seg.has_value()) {
      return Status::Timeout("TCP recv timeout");
    }
    // Sleep (blocking socket) until the segment's arrival time, then pay the
    // receive-side stack traversal.
    SyncToIdle(seg->ready_at_ns);
    SpinFor(p.tcp_recv_stack_ns);
    pending_ = std::move(seg->data);
  }
  return Status::Ok();
}

std::pair<std::unique_ptr<TcpConn>, std::unique_ptr<TcpConn>> TcpStack::ConnectPair(TcpStack* a,
                                                                                    TcpStack* b) {
  auto conn_a = std::unique_ptr<TcpConn>(new TcpConn(a, a->node(), b->node()));
  auto conn_b = std::unique_ptr<TcpConn>(new TcpConn(b, b->node(), a->node()));
  conn_a->peer_ = conn_b.get();
  conn_b->peer_ = conn_a.get();
  return {std::move(conn_a), std::move(conn_b)};
}

uint64_t TcpStack::ReserveRate(uint64_t earliest_ns, uint64_t bytes) {
  const uint64_t ser_ns =
      static_cast<uint64_t>(static_cast<double>(bytes) / params_.tcp_rate_bytes_per_ns);
  return rate_capacity_.Reserve(earliest_ns, ser_ns);
}

}  // namespace lt
