// IPoIB-style TCP/IP stack over the simulated fabric.
//
// This is the "slow path" every comparator system in the paper that does not
// use native RDMA runs on (qperf TCP lines in Figs. 6-7, Hadoop, PowerGraph).
// Costs: a full socket+TCP/IP+IPoIB traversal per message on each side, plus
// a lower effective bandwidth cap than the RDMA path. Streaming senders
// (bulk transfers) amortize the per-call cost over large chunks, which is how
// qperf's non-blocking bandwidth test can beat *blocking* small RDMA ops
// (paper Sec. 4.2 observation).
#ifndef SRC_TCPIP_TCP_STACK_H_
#define SRC_TCPIP_TCP_STACK_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/common/sync_util.h"
#include "src/fabric/fabric.h"
#include "src/mem/addr.h"
#include "src/sim/params.h"

namespace lt {

class TcpStack;

class TcpConn {
 public:
  // Message-oriented send: charges the full per-message stack cost.
  Status Send(const void* buf, size_t len);

  // Streaming send for bulk transfers: per-call cost amortized per MTU-sized
  // chunk (models segmentation offload + large writes).
  Status StreamSend(const void* buf, size_t len);

  // Receives exactly `len` bytes (blocking), charging the receive-side stack
  // cost per delivered segment.
  Status RecvExact(void* buf, size_t len, uint64_t timeout_ns = 10'000'000'000);

  NodeId local_node() const { return local_node_; }
  NodeId remote_node() const { return remote_node_; }

 private:
  friend class TcpStack;

  struct Segment {
    std::vector<uint8_t> data;
    uint64_t ready_at_ns = 0;
    bool stack_charged = false;  // Streaming segments pre-charge rx cost.
  };

  TcpConn(TcpStack* stack, NodeId local, NodeId remote)
      : stack_(stack), local_node_(local), remote_node_(remote) {}

  Status SendInternal(const void* buf, size_t len, bool streaming);
  void Deliver(Segment segment);

  TcpStack* const stack_;
  const NodeId local_node_;
  const NodeId remote_node_;
  TcpConn* peer_ = nullptr;

  BlockingQueue<Segment> inbox_;
  std::vector<uint8_t> pending_;  // Partially-consumed segment bytes.
  uint64_t pending_ready_at_ = 0;
};

class TcpStack {
 public:
  TcpStack(NodeId node, const SimParams& params, Fabric* fabric)
      : node_(node), params_(params), fabric_(fabric) {}

  NodeId node() const { return node_; }
  const SimParams& params() const { return params_; }
  Fabric* fabric() const { return fabric_; }

  // Creates a connected socket pair between two stacks (the cluster-level
  // "dial by node id" shortcut; there is no name service to model).
  static std::pair<std::unique_ptr<TcpConn>, std::unique_ptr<TcpConn>> ConnectPair(
      TcpStack* a, TcpStack* b);

  // Reserves TCP-path bandwidth; returns the finish time.
  uint64_t ReserveRate(uint64_t earliest_ns, uint64_t bytes);

 private:
  const NodeId node_;
  const SimParams& params_;
  Fabric* const fabric_;
  RateWindow rate_capacity_;
};

}  // namespace lt

#endif  // SRC_TCPIP_TCP_STACK_H_
