#include "src/oss/os_kernel.h"

#include "src/common/timing.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/trace.h"

namespace lt {

void OsKernel::Syscall() {
  syscalls_.fetch_add(1, std::memory_order_relaxed);
  SpinFor(params_.syscall_overhead_ns + 2 * params_.user_kernel_cross_ns);
  telemetry::StampStage(telemetry::TraceStage::kSyscallCross);
}

void OsKernel::CrossUserKernel() {
  crossings_.fetch_add(1, std::memory_order_relaxed);
  SpinFor(params_.user_kernel_cross_ns);
  telemetry::StampStage(telemetry::TraceStage::kSyscallCross);
}

void OsKernel::CrossUserKernelBatched() {
  batched_crossings_.fetch_add(1, std::memory_order_relaxed);
  CrossUserKernel();
}

void OsKernel::RecordBatchedCrossing(uint64_t ops) {
  batched_ops_.fetch_add(ops, std::memory_order_relaxed);
  if (ops_per_crossing_hist_ != nullptr) {
    ops_per_crossing_hist_->Record(ops);
  }
}

void OsKernel::PinPages(uint64_t pages) { SpinFor(pages * params_.pin_page_ns); }

void OsKernel::UnpinPages(uint64_t pages) { SpinFor(pages * params_.unpin_page_ns); }

void OsKernel::ChargeThreadWakeup() { SpinFor(params_.thread_wakeup_ns); }

}  // namespace lt
