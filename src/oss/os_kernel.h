// Per-node OS cost model.
//
// The paper's kernel-level indirection argument hinges on precise accounting
// of user/kernel boundary costs: a classic syscall (trap in + out), a single
// user->kernel crossing (the optimized LITE RPC path pays exactly two, see
// paper Sec. 5.2), page pinning during MR registration (Fig. 8), and waking a
// sleeping thread. This class charges those costs on the calling thread.
#ifndef SRC_OSS_OS_KERNEL_H_
#define SRC_OSS_OS_KERNEL_H_

#include <atomic>
#include <cstdint>

#include "src/sim/params.h"

namespace lt {

class OsKernel {
 public:
  explicit OsKernel(const SimParams& params) : params_(params) {}

  // Full syscall: enter + exit. Used by the naive (unoptimized) paths.
  void Syscall();

  // One user/kernel boundary crossing (half of a syscall's transition cost).
  void CrossUserKernel();

  // Memory pinning during MR registration (get_user_pages + IOMMU setup).
  void PinPages(uint64_t pages);
  void UnpinPages(uint64_t pages);

  // Cost of waking a sleeping thread (futex wake + scheduler latency).
  void ChargeThreadWakeup();

  uint64_t syscall_count() const { return syscalls_.load(std::memory_order_relaxed); }
  uint64_t crossing_count() const { return crossings_.load(std::memory_order_relaxed); }
  const SimParams& params() const { return params_; }

 private:
  const SimParams params_;
  std::atomic<uint64_t> syscalls_{0};
  std::atomic<uint64_t> crossings_{0};
};

}  // namespace lt

#endif  // SRC_OSS_OS_KERNEL_H_
