// Per-node OS cost model.
//
// The paper's kernel-level indirection argument hinges on precise accounting
// of user/kernel boundary costs: a classic syscall (trap in + out), a single
// user->kernel crossing (the optimized LITE RPC path pays exactly two, see
// paper Sec. 5.2), page pinning during MR registration (Fig. 8), and waking a
// sleeping thread. This class charges those costs on the calling thread.
#ifndef SRC_OSS_OS_KERNEL_H_
#define SRC_OSS_OS_KERNEL_H_

#include <atomic>
#include <cstdint>

#include "src/sim/params.h"

namespace lt {

namespace telemetry {
class FixedHistogram;
}  // namespace telemetry

class OsKernel {
 public:
  explicit OsKernel(const SimParams& params) : params_(params) {}

  // Full syscall: enter + exit. Used by the naive (unoptimized) paths.
  void Syscall();

  // One user/kernel boundary crossing (half of a syscall's transition cost).
  void CrossUserKernel();

  // A crossing that doubles as a submission-ring doorbell: the same
  // transition cost, but the kernel half will drain a whole batch of ops
  // behind it. Counted in both crossing_count() and batched_crossing_count()
  // so os.crossings stays the total number of boundary transitions.
  void CrossUserKernelBatched();

  // Books the op count of one completed drain batch against the doorbell
  // that paid for it (ops-per-crossing amortization accounting).
  void RecordBatchedCrossing(uint64_t ops);

  // Snapshot-time histogram of drain-batch sizes (os.ops_per_crossing);
  // bound by Node during probe registration.
  void SetOpsPerCrossingHistogram(telemetry::FixedHistogram* hist) {
    ops_per_crossing_hist_ = hist;
  }

  // Memory pinning during MR registration (get_user_pages + IOMMU setup).
  void PinPages(uint64_t pages);
  void UnpinPages(uint64_t pages);

  // Cost of waking a sleeping thread (futex wake + scheduler latency).
  void ChargeThreadWakeup();

  uint64_t syscall_count() const { return syscalls_.load(std::memory_order_relaxed); }
  uint64_t crossing_count() const { return crossings_.load(std::memory_order_relaxed); }
  uint64_t batched_crossing_count() const {
    return batched_crossings_.load(std::memory_order_relaxed);
  }
  uint64_t batched_ops_count() const { return batched_ops_.load(std::memory_order_relaxed); }
  const SimParams& params() const { return params_; }

 private:
  const SimParams params_;
  std::atomic<uint64_t> syscalls_{0};
  std::atomic<uint64_t> crossings_{0};
  std::atomic<uint64_t> batched_crossings_{0};  // Ring doorbells (subset of crossings_).
  std::atomic<uint64_t> batched_ops_{0};        // Ops amortized over those doorbells.
  telemetry::FixedHistogram* ops_per_crossing_hist_ = nullptr;
};

}  // namespace lt

#endif  // SRC_OSS_OS_KERNEL_H_
