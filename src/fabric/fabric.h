// The switched fabric connecting simulated nodes.
//
// Each node attaches one Port (its NIC's link). Bandwidth contention is
// modeled with a per-port virtual "next free time": a transfer reserves
// serialization time on both the sender's TX and receiver's RX port, so
// concurrent flows through one port share its line rate — which is what
// produces the paper's multi-thread throughput saturation (Fig. 7) and the
// QoS interference effects (Figs. 15, 16).
//
// The fabric also hosts the fault-injection engine (src/faults): per-link
// drop/duplicate/delay rules, partitions, and node crash windows. The legacy
// SetDropProbability / SetExtraDelayNs knobs remain as thin wrappers over the
// engine's default link rule.
#ifndef SRC_FABRIC_FABRIC_H_
#define SRC_FABRIC_FABRIC_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/rate_window.h"
#include "src/common/sync_util.h"
#include "src/faults/faults.h"
#include "src/mem/addr.h"
#include "src/sim/params.h"

namespace lt {

class Fabric;

class FabricPort {
 public:
  FabricPort(Fabric* fabric, NodeId node) : fabric_(fabric), node_(node) {}

  NodeId node() const { return node_; }
  Fabric* fabric() const { return fabric_; }

  // Reserves `bytes` of serialization time on this port starting no earlier
  // than `earliest_ns`; returns the finish time of the transfer on this port.
  // When `queue_ns_out` is non-null, adds this reservation's queueing delay
  // (time spent behind earlier reservations, beyond the uncontended finish)
  // to it — the per-transfer form of queue_delay_total_ns().
  uint64_t Reserve(uint64_t earliest_ns, uint64_t bytes, uint64_t* queue_ns_out = nullptr);

  // Total bytes that have crossed this port (tx+rx combined bookkeeping is
  // done by the fabric; this counts reservations made on this port).
  uint64_t bytes_transferred() const { return bytes_.load(std::memory_order_relaxed); }

  // Contention accounting: reservations made on this port, and the summed
  // virtual time transfers spent queued behind earlier reservations (finish
  // minus uncontended finish). queue_delay / reservations = mean per-transfer
  // queueing delay — the observable form of Fig. 7's saturation.
  uint64_t reservation_count() const { return reservations_.load(std::memory_order_relaxed); }
  uint64_t queue_delay_total_ns() const {
    return queue_delay_ns_.load(std::memory_order_relaxed);
  }

 private:
  friend class Fabric;
  Fabric* const fabric_;
  const NodeId node_;
  RateWindow capacity_;  // Windowed so virtual-time backfill works.
  std::atomic<uint64_t> bytes_{0};
  std::atomic<uint64_t> reservations_{0};
  std::atomic<uint64_t> queue_delay_ns_{0};
};

class Fabric {
 public:
  explicit Fabric(const SimParams& params) : params_(params) {
    // SimParams-level fault knobs become the engine's boot-time default rule.
    if (params.fabric_drop_probability > 0.0 || params.fabric_extra_delay_ns != 0) {
      LinkFaultRule rule;
      rule.drop_p = params.fabric_drop_probability;
      rule.extra_delay_ns = params.fabric_extra_delay_ns;
      faults_.SetDefaultRule(rule);
    }
  }

  // Attaches a port for `node`; node ids must be attached in order 0..N-1.
  FabricPort* Attach(NodeId node);

  FabricPort* port(NodeId node) { return ports_[node].get(); }
  size_t node_count() const { return ports_.size(); }
  const SimParams& params() const { return params_; }

  // Reserves a one-way transfer of `bytes` from src to dst starting no
  // earlier than `earliest_ns` (virtual time), accounting for wire latency
  // and bandwidth contention on both endpoints' ports. Returns the ABSOLUTE
  // virtual finish time (>= earliest_ns), or kDropped under fault injection.
  // Absolute-time plumbing is essential: service threads whose own clocks
  // lag (queue drainers) must not convert through "now". When `faults_out`
  // is non-null it reports duplicate-delivery decisions (the RNIC uses this
  // to deliver a second copy of a write-imm). When `queue_ns_out` is
  // non-null, adds the transfer's total port queueing delay (TX + RX) to it,
  // letting callers split a transfer's duration into wire vs. port-queue
  // time (latency attribution).
  uint64_t TransferFinishNs(NodeId src, NodeId dst, uint64_t bytes, uint64_t earliest_ns,
                            TransferFaults* faults_out = nullptr,
                            uint64_t* queue_ns_out = nullptr);

  // The fault-injection engine: per-link rules, partitions, crash windows.
  FaultEngine& faults() { return faults_; }

  // Legacy failure-injection knobs (tests): wrappers over the engine's
  // default link rule, preserved for existing callers.
  void SetDropProbability(double p) {
    LinkFaultRule rule = faults_.default_rule();
    rule.drop_p = p;
    faults_.SetDefaultRule(rule);
  }
  void SetExtraDelayNs(uint64_t ns) {
    LinkFaultRule rule = faults_.default_rule();
    rule.extra_delay_ns = ns;
    faults_.SetDefaultRule(rule);
  }

  static constexpr uint64_t kDropped = ~0ull;

 private:
  const SimParams params_;
  std::vector<std::unique_ptr<FabricPort>> ports_;
  SpinLock attach_mu_;
  FaultEngine faults_;
};

}  // namespace lt

#endif  // SRC_FABRIC_FABRIC_H_
