#include "src/fabric/fabric.h"

#include <algorithm>
#include <cassert>

#include "src/common/timing.h"

namespace lt {

uint64_t FabricPort::Reserve(uint64_t earliest_ns, uint64_t bytes) {
  const double rate = fabric_->params().nic_line_rate_bytes_per_ns;
  const uint64_t ser_ns = static_cast<uint64_t>(static_cast<double>(bytes) / rate);
  bytes_.fetch_add(bytes, std::memory_order_relaxed);
  const uint64_t finish = capacity_.Reserve(earliest_ns, ser_ns);
  reservations_.fetch_add(1, std::memory_order_relaxed);
  // Anything beyond the uncontended finish time is queueing behind earlier
  // reservations on this port.
  const uint64_t uncontended = earliest_ns + ser_ns;
  if (finish > uncontended) {
    queue_delay_ns_.fetch_add(finish - uncontended, std::memory_order_relaxed);
  }
  return finish;
}

FabricPort* Fabric::Attach(NodeId node) {
  std::lock_guard<SpinLock> lock(attach_mu_);
  assert(node == ports_.size() && "nodes must attach in id order");
  ports_.push_back(std::make_unique<FabricPort>(this, node));
  return ports_.back().get();
}

uint64_t Fabric::TransferFinishNs(NodeId src, NodeId dst, uint64_t bytes, uint64_t earliest_ns) {
  double drop_p = drop_probability_.load(std::memory_order_relaxed);
  if (drop_p > 0.0) {
    std::lock_guard<SpinLock> lock(drop_mu_);
    if (drop_rng_.NextDouble() < drop_p) {
      return kDropped;
    }
  }

  uint64_t finish = earliest_ns;
  if (src != dst) {
    // Serialize on the sender's TX then the receiver's RX (store-and-forward
    // through one switch hop collapses to the max of the two for same-rate
    // ports; reserving sequentially models cut-through with port contention).
    finish = ports_[src]->Reserve(earliest_ns, bytes);
    finish = ports_[dst]->Reserve(finish, bytes);
    finish += params_.wire_latency_ns;
  }
  finish += extra_delay_ns_.load(std::memory_order_relaxed);
  return finish;
}

}  // namespace lt
