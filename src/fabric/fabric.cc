#include "src/fabric/fabric.h"

#include <algorithm>
#include <cassert>

#include "src/common/timing.h"

namespace lt {

uint64_t FabricPort::Reserve(uint64_t earliest_ns, uint64_t bytes, uint64_t* queue_ns_out) {
  const double rate = fabric_->params().nic_line_rate_bytes_per_ns;
  const uint64_t ser_ns = static_cast<uint64_t>(static_cast<double>(bytes) / rate);
  bytes_.fetch_add(bytes, std::memory_order_relaxed);
  const uint64_t finish = capacity_.Reserve(earliest_ns, ser_ns);
  reservations_.fetch_add(1, std::memory_order_relaxed);
  // Anything beyond the uncontended finish time is queueing behind earlier
  // reservations on this port.
  const uint64_t uncontended = earliest_ns + ser_ns;
  if (finish > uncontended) {
    queue_delay_ns_.fetch_add(finish - uncontended, std::memory_order_relaxed);
    if (queue_ns_out != nullptr) {
      *queue_ns_out += finish - uncontended;
    }
  }
  return finish;
}

FabricPort* Fabric::Attach(NodeId node) {
  std::lock_guard<SpinLock> lock(attach_mu_);
  assert(node == ports_.size() && "nodes must attach in id order");
  ports_.push_back(std::make_unique<FabricPort>(this, node));
  faults_.EnsureNodes(ports_.size());
  return ports_.back().get();
}

uint64_t Fabric::TransferFinishNs(NodeId src, NodeId dst, uint64_t bytes, uint64_t earliest_ns,
                                  TransferFaults* faults_out, uint64_t* queue_ns_out) {
  // Fault decision first: dropped transfers consume no port bandwidth (the
  // frame died somewhere in the switch, not at a saturated endpoint).
  uint64_t injected_delay_ns = 0;
  if (faults_.armed()) {
    injected_delay_ns = faults_.OnTransfer(src, dst, earliest_ns, faults_out);
    if (injected_delay_ns == FaultEngine::kDropTransfer) {
      return kDropped;
    }
  }

  uint64_t finish = earliest_ns;
  if (src != dst) {
    // Serialize on the sender's TX then the receiver's RX (store-and-forward
    // through one switch hop collapses to the max of the two for same-rate
    // ports; reserving sequentially models cut-through with port contention).
    finish = ports_[src]->Reserve(earliest_ns, bytes, queue_ns_out);
    finish = ports_[dst]->Reserve(finish, bytes, queue_ns_out);
    finish += params_.wire_latency_ns;
  }
  finish += injected_delay_ns;
  return finish;
}

}  // namespace lt
