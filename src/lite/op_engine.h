// OpEngine — the single op-submission engine all three LITE data paths post
// through (paper Secs. 4, 6: one shared kernel path for memops and RPC).
//
// The engine owns the issue/retire pipeline: QP selection (via the pluggable
// Transport — RC QpManager or the DC shared pool, DESIGN.md §10),
// QP error recovery, transient-retry with backoff, QoS admission, journal
// and trace stamping, and the async stream/window/selective-signaling state.
// The three submitters:
//   * blocking memops — single-piece ops use the OneSided* entry points;
//     multi-piece ops go through SubmitPieces ("issue all pieces, wait all"),
//     overlapping chunk transfers across nodes with doorbell batching and
//     inline sends;
//   * async memops — IssueAsyncPieces posts every piece immediately and
//     returns a completion handle retired by Poll/Wait/WaitAll;
//   * RPC — ring posts, replies, and head-mirror publishes are OneSidedWrite
//     / OneSidedWriteImm calls, so the send side shares the same
//     QP/retry/recovery spine (RPC-level retransmits count into
//     lite.engine.retries through CountRetry()).
#ifndef SRC_LITE_OP_ENGINE_H_
#define SRC_LITE_OP_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/lite/transport.h"
#include "src/lite/types.h"
#include "src/node/node.h"
#include "src/telemetry/journal.h"

namespace lite {

using lt::Status;
using lt::StatusOr;

class LiteInstance;

class OpEngine {
 public:
  explicit OpEngine(LiteInstance* inst) : inst_(inst) {}

  OpEngine(const OpEngine&) = delete;
  OpEngine& operator=(const OpEngine&) = delete;

  // One piece of a (possibly multi-chunk) memop, as submitted to the engine:
  // a remote (node, addr) range paired with its user-buffer cursor.
  struct OpDesc {
    NodeId node = kInvalidNode;
    PhysAddr addr = 0;
    void* local = nullptr;
    uint64_t len = 0;
  };

  // ---- Blocking one-sided ops (single descriptor) ----
  // Signaled ops transparently retry dropped transfers (recovering the QP
  // from its error state first) up to lite_rpc_max_retries times with
  // exponential backoff.
  Status OneSidedWrite(NodeId dst, PhysAddr dst_addr, const void* src, uint64_t len, Priority pri,
                       bool signaled);
  Status OneSidedWriteImm(NodeId dst, PhysAddr dst_addr, const void* src, uint64_t len,
                          uint32_t imm, Priority pri);
  Status OneSidedRead(NodeId src_node, PhysAddr src_addr, void* dst, uint64_t len, Priority pri);
  StatusOr<uint64_t> RemoteAtomic(NodeId dst, PhysAddr addr, bool is_cas, uint64_t compare_add,
                                  uint64_t swap);
  // Posts a signaled WR and waits for its completion, retrying retryable
  // failures (drops) with backoff and QP recovery. Returns the successful
  // completion, or the last error. `pinned` pins the transport handle (the
  // async flush fence must land on the stream's own QP); null leases one
  // per attempt.
  StatusOr<lt::Completion> PostAndWait(NodeId dst, lt::WorkRequest* wr, Priority pri,
                                       const TransportHandle* pinned = nullptr);

  // ---- Blocking multi-piece submission ("issue all pieces, wait all") ----
  // Posts every remote piece signaled (doorbell-batched; writes inline when
  // small) before waiting on any, so pieces on different chunks/nodes overlap
  // on the wire; local pieces complete inline. Failed pieces are re-posted
  // with the blocking retry loop. Returns the first error, after draining
  // every piece.
  Status SubmitPieces(const std::vector<OpDesc>& pieces, bool is_read, Priority pri);

  // ---- Async completion-handle pipeline ----
  // Issues one async memop's pieces (unsignaled + selective signaling, see
  // memops_async.cc) and returns its handle. Caller did lh/permission checks.
  // The origin fields describe the whole memop in lh space; when given, an op
  // that retires with kStaleHome is transparently re-resolved and re-issued
  // against the LMR's new home (LT_wait then returns the redo's status).
  // `reserved_handle` (ring path) registers the op under a handle already
  // handed to the caller by ReserveHandle(); 0 assigns a fresh one.
  StatusOr<MemopHandle> IssueAsyncPieces(const std::vector<OpDesc>& pieces, bool is_read,
                                         Priority pri, Lh origin_lh = 0, uint64_t origin_off = 0,
                                         void* origin_buf = nullptr, uint64_t origin_len = 0,
                                         MemopHandle reserved_handle = 0);
  // Pre-assigns a completion handle for an op whose registration is
  // deferred (per-CPU submission rings): the client returns the handle to
  // the application immediately; the drain registers the op under it.
  MemopHandle ReserveHandle() { return next_memop_handle_.fetch_add(1); }
  // Registers a reserved handle whose deferred op failed before issue (lh
  // died between enqueue and drain): Poll/Wait surface `result` for it.
  void InsertFailedHandle(MemopHandle h, const Status& result);
  // Crossing-free readiness checks against the shared completion state (the
  // user library reads the completion flag without entering the kernel). A
  // handle that no longer exists reads as ready: consuming it cannot block.
  bool HandleReady(MemopHandle h) const;
  bool AllHandlesReady() const;
  // Registers an already-sent single-attempt RPC as an async op retired
  // through the same handle machinery.
  StatusOr<MemopHandle> InsertAsyncRpc(uint32_t rpc_slot, void* out, uint32_t out_max,
                                       uint32_t* out_len, Priority pri);
  StatusOr<bool> Poll(MemopHandle h);
  Status Wait(MemopHandle h);
  Status WaitAll();
  // Per-handle variant: appends every retired handle's final status to
  // `results` (when non-null) so errors past the first are not swallowed.
  Status WaitAll(std::vector<std::pair<MemopHandle, Status>>* results);
  size_t AsyncInFlight() const;

  // Resolves the API timeout sentinels (types.h) and applies the hang-
  // backstop cap — the single home of the old duplicated clamp logic.
  uint64_t EffectiveTimeoutNs(uint64_t requested_ns) const;

  // RPC-level retransmits ride the engine spine too; RpcCall reports them
  // here so lite.engine.retries covers every transparent re-send.
  void CountRetry() {
    if (engine_retries_ != nullptr) {
      engine_retries_->Inc();
    }
  }

  // Engine op accounting (HealthWatchdog conservation invariant:
  // lite.engine.ops == ops_ok + ops_failed + in_flight). Every engine entry
  // point Begins exactly once and Finishes exactly once — blocking ops at
  // return, async ops when their state reaches kDone.
  void BeginEngineOp() {
    engine_ops_->Inc();
    engine_inflight_.fetch_add(1, std::memory_order_relaxed);
  }
  void FinishEngineOp(bool ok) {
    (ok ? engine_ops_ok_ : engine_ops_failed_)->Inc();
    engine_inflight_.fetch_sub(1, std::memory_order_relaxed);
  }

  // Registers the engine's lite.* instruments (constructor-time, via
  // LiteInstance::RegisterTelemetry; pointers cached for the hot path).
  void RegisterTelemetry(lt::telemetry::Registry& reg, lt::telemetry::Journal* journal);

 private:
  // One posted WQE of an async memop (one chunk piece).
  struct AsyncWqe {
    TransportHandle h;     // Leased transport slot (dst + pool slot).
    lt::WorkRequest wr;    // Retained so a failed WQE can be re-posted.
    bool signaled = false;
    bool posted = false;   // False: post failed at issue; retried at retire.
    uint64_t stream_pos = 0;
    bool done = false;     // Local pieces complete at issue time.
    uint64_t ready_at_ns = 0;
  };
  enum class AsyncOpState { kInFlight, kRetiring, kDone };
  struct AsyncOp {
    MemopHandle id = 0;
    AsyncOpState state = AsyncOpState::kInFlight;
    bool is_rpc = false;
    Priority pri = Priority::kHigh;
    std::vector<AsyncWqe> wqes;       // Memop ops.
    uint32_t rpc_slot = 0;            // RPC ops: reply rendezvous + output.
    void* rpc_out = nullptr;
    uint32_t rpc_out_max = 0;
    uint32_t* rpc_out_len = nullptr;
    Status result = Status::Ok();     // Valid once state == kDone.
    uint64_t ready_at_ns = 0;
    // Origin of the memop in lh space (see IssueAsyncPieces): enables the
    // transparent stale-home redo at retirement. origin_lh == 0 disables it.
    Lh origin_lh = 0;
    uint64_t origin_off = 0;
    void* origin_buf = nullptr;
    uint64_t origin_len = 0;
    bool origin_is_read = false;
    // Error decided at issue time (e.g. a local piece NACKed by the
    // migration gate); folded into the result at retirement.
    Status issue_error = Status::Ok();
    // Latency attribution record detached from the issuing API scope;
    // committed when the op retires (latency_attr.h).
    lt::telemetry::OpAttrRecord attr;
  };
  // Per-(destination, QP) selective-signaling stream: which positions have a
  // harvested covering CQE, and which signaled WQEs are still pending.
  struct AsyncStream {
    uint64_t next_pos = 0;
    uint64_t covered_pos = 0;       // Positions < covered_pos are fenced.
    uint64_t covered_ready_ns = 0;  // Virtual time the fence completed.
    std::map<uint64_t, uint64_t> signaled_pending;  // stream_pos -> wr_id
  };

  uint64_t NextWrId() { return next_wr_id_.fetch_add(1); }

  // Bodies of the blocking entry points; the public wrappers add the
  // Begin/Finish engine-op accounting around them.
  Status OneSidedWriteImpl(NodeId dst, PhysAddr dst_addr, const void* src, uint64_t len,
                           Priority pri, bool signaled);
  Status OneSidedWriteImmImpl(NodeId dst, PhysAddr dst_addr, const void* src, uint64_t len,
                              uint32_t imm, Priority pri);
  Status OneSidedReadImpl(NodeId src_node, PhysAddr src_addr, void* dst, uint64_t len,
                          Priority pri);
  StatusOr<uint64_t> RemoteAtomicImpl(NodeId dst, PhysAddr addr, bool is_cas,
                                      uint64_t compare_add, uint64_t swap);
  Status SubmitPiecesImpl(const std::vector<OpDesc>& pieces, bool is_read, Priority pri);

  // Commits a retired async op's attribution record (no-op when inactive).
  void CommitAsyncAttr(AsyncOp* op);

  // Re-posts a failed async WQE signaled, with the blocking path's retry
  // semantics (dead-peer fast fail, backoff, QP recovery).
  Status RetryAsyncWqe(AsyncOp* op, AsyncWqe* wqe);
  // Retires an RPC-kind op; drops the lock around the reply wait (the reply
  // is delivered by the poll thread, which never takes async_mu_).
  void RetireRpcUnlocked(std::unique_lock<std::mutex>& lock, AsyncOp* op);
  // Retires `op` (state must be kRetiring; async_mu_ held via `lock`):
  // harvests or infers each WQE's completion, re-posting failed WQEs with
  // the blocking path's retry semantics, then marks the op kDone. A
  // kStaleHome result with a known origin drops the lock and re-issues the
  // whole memop against the LMR's new home (exactly-once for the caller).
  void RetireMemopLocked(std::unique_lock<std::mutex>& lock, AsyncOp* op);
  // Retires the oldest in-flight op (backpressure path). Waits on the cv if
  // every outstanding op is already being retired by another thread.
  void RetireOldestLocked(std::unique_lock<std::mutex>& lock);
  // Finds a completion for `wr_id`: the shared harvest map first, then the
  // CQ itself (async CQEs exist from post time; only ready_at is future).
  std::optional<lt::Completion> TakeAsyncCompletionLocked(lt::Cq* cq, uint64_t wr_id);
  // Consumes a kDone op's result (erases the record).
  Status ConsumeAsyncLocked(std::map<MemopHandle, std::unique_ptr<AsyncOp>>::iterator it);

  LiteInstance* const inst_;

  std::atomic<uint64_t> next_wr_id_{1};

  // Async completion-handle state (the completion ring). One mutex covers
  // the op table, the signaling streams, and the harvest map; the cv wakes
  // window-full issuers and waiters racing a concurrent retirer.
  mutable std::mutex async_mu_;
  std::condition_variable async_cv_;
  std::map<MemopHandle, std::unique_ptr<AsyncOp>> async_ops_;  // Oldest first.
  std::atomic<uint64_t> next_memop_handle_{1};
  size_t async_inflight_ = 0;  // Ops not yet kDone.
  std::map<std::pair<NodeId, int>, AsyncStream> async_streams_;
  std::unordered_map<uint64_t, lt::Completion> async_harvested_;  // wr_id -> CQE

  // Telemetry instruments (owned by the node's registry; cached pointers so
  // the hot path never does a name lookup).
  lt::telemetry::Counter* engine_ops_ = nullptr;
  lt::telemetry::Counter* engine_ops_ok_ = nullptr;
  lt::telemetry::Counter* engine_ops_failed_ = nullptr;
  std::atomic<int64_t> engine_inflight_{0};
  lt::telemetry::Counter* engine_pieces_overlapped_ = nullptr;
  lt::telemetry::Counter* engine_retries_ = nullptr;
  lt::telemetry::Counter* oneside_retries_ = nullptr;
  lt::telemetry::Counter* unsignaled_recovered_ = nullptr;
  // Async fast-path instruments (docs/TELEMETRY.md, "Async fast path").
  lt::telemetry::Counter* async_ops_issued_ = nullptr;
  lt::telemetry::Counter* async_inferred_ = nullptr;
  lt::telemetry::Counter* async_flush_fences_ = nullptr;
  lt::telemetry::Journal* journal_ = nullptr;
};

}  // namespace lite

#endif  // SRC_LITE_OP_ENGINE_H_
