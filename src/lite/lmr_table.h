// LmrTable — LMR bookkeeping split out of LiteInstance: the metadata
// registry for LMRs mastered on this node (paper Sec. 4.1), the local lh
// handle table with its permission checks, and the cluster name service
// (populated only on the manager node).
#ifndef SRC_LITE_LMR_TABLE_H_
#define SRC_LITE_LMR_TABLE_H_

#include <atomic>
#include <functional>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/lite/types.h"

namespace lite {

using lt::Status;
using lt::StatusOr;

// Metadata of one LMR, living at its home (creator, or migration target) node.
struct LmrMeta {
  std::string name;
  uint64_t size = 0;
  std::vector<LmrChunk> chunks;
  uint32_t default_perm = kPermRead | kPermWrite;
  std::map<NodeId, uint32_t> node_perm;
  std::set<NodeId> mapped_nodes;
  std::set<NodeId> masters;
  // Ownership epoch (DESIGN.md "Epoch-fenced ownership"): starts at 1, bumped
  // on every home change. When two nodes both claim a name (a crash split the
  // migration commit), the higher epoch wins name-service arbitration.
  uint64_t epoch = 1;
};

// One local handle (lh) into an LMR, as held by applications on this node.
struct LhEntry {
  std::string name;
  NodeId master_node = kInvalidNode;
  uint64_t size = 0;
  uint32_t perm = 0;
  std::vector<LmrChunk> chunks;
  uint64_t epoch = 1;  // Home epoch this mapping was resolved against.
};

class LmrTable {
 public:
  explicit LmrTable(NodeId self) : next_lh_((static_cast<uint64_t>(self) << 32) + 1) {}

  LmrTable(const LmrTable&) = delete;
  LmrTable& operator=(const LmrTable&) = delete;

  // ---- lh handle table ----
  Lh Insert(LhEntry entry);
  StatusOr<LhEntry> Get(Lh lh) const;
  void Erase(Lh lh);
  // Invalidates every lh pointing at `name` (LT_free / master invalidation).
  void EraseByName(const std::string& name);
  // Rewrites the chunk placement of every lh pointing at `name` (LMR move).
  void UpdateChunksByName(const std::string& name, const std::vector<LmrChunk>& chunks);
  // Re-homes every lh pointing at `name` (migration rehome fan-out): new
  // master node, new chunk placement, new epoch. Entries already at a newer
  // epoch are left alone (a late rehome must not roll a mapping back).
  void UpdateHomeByName(const std::string& name, NodeId new_home,
                        const std::vector<LmrChunk>& chunks, uint64_t epoch);
  size_t lh_count() const;
  // Bounds + permission check for one access through a handle.
  static Status CheckAccess(const LhEntry& e, uint64_t offset, uint64_t len, uint32_t need);

  // ---- LMR metadata registry (LMRs mastered here) ----
  void InsertMeta(LmrMeta meta);
  // Runs `fn` on the named meta under the registry lock; kNotFound if the
  // name is unknown, otherwise whatever `fn` returns (handlers use this for
  // map/unmap/permission updates without leaking the lock).
  lt::StatusCode WithMeta(const std::string& name,
                          const std::function<lt::StatusCode(LmrMeta&)>& fn);
  // Snapshot for a master-only read (kPermissionDenied if `requester` is not
  // a master of the LMR).
  StatusOr<LmrMeta> CopyMetaIfMaster(const std::string& name, NodeId requester) const;
  // Removes and returns the meta (LT_free at the master).
  StatusOr<LmrMeta> TakeMetaIfMaster(const std::string& name, NodeId requester);
  // Unconditionally removes and returns the meta (migration commit at the
  // source: home ownership transfers as one atomic take).
  StatusOr<LmrMeta> TakeMeta(const std::string& name);
  // Swaps in a moved LMR's new placement; returns the mapped-node set the
  // caller must fan the update out to.
  std::set<NodeId> InstallChunks(const std::string& name, const std::vector<LmrChunk>& chunks);
  // Names mastered here with their current epochs (manager rebuild payload;
  // the manager keeps the highest epoch when two nodes list the same name).
  std::vector<std::pair<std::string, uint64_t>> ListNames() const;

  // ---- Name service (manager node only) ----
  // Returns false if the name is already registered.
  bool RegisterName(const std::string& name, NodeId master);
  StatusOr<NodeId> LookupName(const std::string& name) const;
  void UnregisterName(const std::string& name);
  // Migration commit: re-points `name` at `new_home` iff `epoch` is newer
  // than the recorded one (late or replayed updates are ignored).
  void UpdateName(const std::string& name, NodeId new_home, uint64_t epoch);
  void ReplaceNames(std::unordered_map<std::string, std::pair<NodeId, uint64_t>> names);
  void ClearNames();

 private:
  // Local handle table.
  mutable std::mutex lh_mu_;
  std::unordered_map<Lh, LhEntry> lh_table_;
  std::atomic<uint64_t> next_lh_;

  // LMR registry for LMRs whose metadata lives here (creator node).
  mutable std::mutex meta_mu_;
  std::unordered_map<std::string, LmrMeta> metas_;

  // Name service (populated only on the manager node). Each record carries
  // the home node and the epoch it was registered/updated at.
  mutable std::mutex names_mu_;
  std::unordered_map<std::string, std::pair<NodeId, uint64_t>> names_;
};

}  // namespace lite

#endif  // SRC_LITE_LMR_TABLE_H_
