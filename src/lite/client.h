// LiteClient — the handle an application holds on LITE.
//
// Kernel-level applications (paper's LITE-DSM) construct it with
// kernel_level=true and pay no boundary costs. User-level applications pay
// one user->kernel crossing per API entry; returns are hidden behind the
// shared-page completion flag (paper Sec. 5.2), so a full RPC costs exactly
// two crossings (~0.17 us). A "naive syscalls" mode reproduces the
// unoptimized ~0.9 us path for the ablation benchmark.
//
// With SimParams::lite_ring_enable, data-path ops instead ride per-CPU
// submission/completion rings (ring.h): the crossing becomes a doorbell
// paid only when the kernel-half drainer has gone cold, async submissions
// defer and drain in batches, and Poll/Wait reap completions with adaptive
// spin-then-sleep. Control-plane calls (malloc/map/locks/recv/reply/...)
// keep the classic one-crossing path either way.
#ifndef SRC_LITE_CLIENT_H_
#define SRC_LITE_CLIENT_H_

#include <string>
#include <vector>

#include "src/lite/instance.h"

namespace lite {

class LiteClient {
 public:
  LiteClient(LiteInstance* instance, bool kernel_level = false)
      : instance_(instance), kernel_level_(kernel_level) {}

  LiteInstance* instance() const { return instance_; }
  NodeId node_id() const { return instance_->node_id(); }
  bool kernel_level() const { return kernel_level_; }

  void set_priority(Priority pri) { priority_ = pri; }
  Priority priority() const { return priority_; }

  // Ablation: charge full syscalls (enter+exit) on every boundary instead of
  // LITE's optimized single-crossing + shared-page return.
  void set_naive_syscalls(bool naive) { naive_syscalls_ = naive; }

  // ---- Memory (Table 1) ----
  StatusOr<Lh> Malloc(uint64_t size, const std::string& name, const MallocOptions& options = {});
  Status Free(Lh lh);
  StatusOr<Lh> Map(const std::string& name, uint32_t want_perm = kPermRead | kPermWrite);
  Status Unmap(Lh lh);
  Status Read(Lh lh, uint64_t offset, void* buf, uint64_t len);
  Status Write(Lh lh, uint64_t offset, const void* buf, uint64_t len);
  // Async memops: issue returns a completion handle; retire with
  // Poll/Wait/WaitAll (see LiteInstance for semantics). Each call pays the
  // usual boundary-crossing cost.
  StatusOr<MemopHandle> ReadAsync(Lh lh, uint64_t offset, void* buf, uint64_t len);
  StatusOr<MemopHandle> WriteAsync(Lh lh, uint64_t offset, const void* buf, uint64_t len);
  StatusOr<bool> Poll(MemopHandle h);
  Status Wait(MemopHandle h);
  Status WaitAll();
  // Per-handle variant: appends (handle, final status) for every retired op,
  // so one dead peer doesn't swallow the other handles' outcomes.
  Status WaitAll(std::vector<std::pair<MemopHandle, Status>>* results);
  Status Memset(Lh lh, uint64_t offset, uint8_t value, uint64_t len);
  Status Memcpy(Lh dst, uint64_t dst_off, Lh src, uint64_t src_off, uint64_t len);
  Status Memmove(Lh dst, uint64_t dst_off, Lh src, uint64_t src_off, uint64_t len);

  // ---- RPC / messaging (Table 1) ----
  Status RegisterRpc(RpcFuncId func);
  Status Rpc(NodeId server, RpcFuncId func, const void* in, uint32_t in_len, void* out,
             uint32_t out_max, uint32_t* out_len);
  Status MulticastRpc(const std::vector<NodeId>& servers, RpcFuncId func, const void* in,
                      uint32_t in_len, std::vector<std::vector<uint8_t>>* replies);
  StatusOr<RpcIncoming> RecvRpc(RpcFuncId func, uint64_t timeout_ns = ~0ull);
  Status ReplyRpc(const ReplyToken& token, const void* data, uint32_t len);
  StatusOr<RpcIncoming> ReplyAndRecv(const ReplyToken& token, const void* data, uint32_t len,
                                     RpcFuncId func, uint64_t timeout_ns = ~0ull);
  Status SendMsg(NodeId dst, const void* data, uint32_t len);
  StatusOr<MsgIncoming> RecvMsg(uint64_t timeout_ns = ~0ull);

  // ---- Synchronization (Table 1) ----
  StatusOr<uint64_t> FetchAdd(Lh lh, uint64_t offset, uint64_t delta);
  StatusOr<uint64_t> TestSet(Lh lh, uint64_t offset, uint64_t expected, uint64_t desired);
  StatusOr<LockId> CreateLock(const std::string& name);
  StatusOr<LockId> OpenLock(const std::string& name);
  Status Lock(const LockId& lock);
  Status Unlock(const LockId& lock);
  Status Barrier(const std::string& name, uint32_t expected);

  // ---- Management (DESIGN.md "Epoch-fenced ownership & live migration") ----
  // LT_migrate: live-migrates the named LMR to `new_home`; LT_drain_node
  // migrates every LMR hosted at `victim` to the remaining alive nodes.
  Status Migrate(const std::string& name, NodeId new_home,
                 LiteInstance::MigrateStats* stats = nullptr);
  Status DrainNode(NodeId victim, uint64_t* moved = nullptr);

  // ---- Introspection ----
  // LT_stat: queries the node's telemetry registry (no boundary cost — the
  // paper's statistics are exported through a shared read-only page).
  int64_t Stat(const std::string& name) const { return instance_->Stat(name); }
  lt::telemetry::MetricsSnapshot StatSnapshot() const { return instance_->StatSnapshot(); }

 private:
  // Charges the cost of entering the kernel for one LITE call.
  void EnterKernel();

  // True when this client's data-path ops ride the per-CPU rings: user
  // level, not in the naive-syscall ablation, and the instance has rings.
  bool UseRings() const {
    return !kernel_level_ && !naive_syscalls_ && instance_->rings() != nullptr;
  }

  // The node's latency-attribution sink (latency_attr.h).
  lt::telemetry::LatencyAttr* AttrSink();

  LiteInstance* const instance_;
  const bool kernel_level_;
  bool naive_syscalls_ = false;
  Priority priority_ = Priority::kHigh;
};

}  // namespace lite

#endif  // SRC_LITE_CLIENT_H_
