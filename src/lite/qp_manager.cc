#include "src/lite/qp_manager.h"

#include <algorithm>
#include <functional>
#include <thread>

#include "src/common/timing.h"

namespace lite {

void QpManager::Setup(const std::vector<bool>& connect, lt::Cq* recv_cq) {
  const int k = std::max(1, node_->params().lite_qp_sharing_factor);
  pool_.resize(connect.size());
  mu_.resize(connect.size());
  for (NodeId dst = 0; dst < connect.size(); ++dst) {
    if (!connect[dst]) {
      continue;
    }
    for (int i = 0; i < k; ++i) {
      lt::Cq* send_cq = node_->rnic().CreateCq();
      pool_[dst].push_back(node_->rnic().CreateQp(lt::QpType::kRc, send_cq, recv_cq));
      mu_[dst].push_back(std::make_unique<std::mutex>());
    }
  }
}

int QpManager::PickQpIndex(NodeId dst, Priority pri) {
  if (dst >= pool_.size() || pool_[dst].empty()) {
    return -1;
  }
  const int k = static_cast<int>(pool_[dst].size());
  auto [lo, hi] = qos_->QpRange(pri, k);
  if (hi <= lo) {
    lo = 0;
    hi = k;
  }
  // Cheap per-thread spreading across the allowed slots.
  static thread_local uint32_t t_counter = 0;
  return lo + static_cast<int>(t_counter++ % static_cast<uint32_t>(hi - lo));
}

int QpManager::PickQpIndexSticky(NodeId dst, Priority pri) {
  if (dst >= pool_.size() || pool_[dst].empty()) {
    return -1;
  }
  const int k = static_cast<int>(pool_[dst].size());
  auto [lo, hi] = qos_->QpRange(pri, k);
  if (hi <= lo) {
    lo = 0;
    hi = k;
  }
  static thread_local const uint32_t t_base = static_cast<uint32_t>(
      std::hash<std::thread::id>()(std::this_thread::get_id()));
  const auto& p = node_->params();
  uint32_t tag = t_base + p.lite_sticky_salt;
  if (p.lite_sticky_rotate_ops > 0) {
    // Rotate the thread's QP every lite_sticky_rotate_ops sticky picks:
    // keeps doorbell batching inside a rotation window while still cycling
    // load across the band over time.
    static thread_local uint32_t t_ops = 0;
    tag += t_ops++ / p.lite_sticky_rotate_ops;
  }
  return lo + static_cast<int>(tag % static_cast<uint32_t>(hi - lo));
}

lt::Qp* QpManager::PoolQp(NodeId dst, int k) const {
  if (dst >= pool_.size() || static_cast<size_t>(k) >= pool_[dst].size()) {
    return nullptr;
  }
  return pool_[dst][k];
}

size_t QpManager::TotalQps() const {
  size_t n = 0;
  for (const auto& per_dst : pool_) {
    n += per_dst.size();
  }
  return n;
}

}  // namespace lite
