#include "src/lite/qp_manager.h"

#include <algorithm>
#include <functional>
#include <thread>

#include "src/common/timing.h"

namespace lite {

void QpManager::CreatePool(const std::vector<bool>& connect, lt::Cq* recv_cq) {
  const int k = std::max(1, node_->params().lite_qp_sharing_factor);
  pool_.resize(connect.size());
  mu_.resize(connect.size());
  for (NodeId dst = 0; dst < connect.size(); ++dst) {
    if (!connect[dst]) {
      continue;
    }
    for (int i = 0; i < k; ++i) {
      lt::Cq* send_cq = node_->rnic().CreateCq();
      pool_[dst].push_back(node_->rnic().CreateQp(lt::QpType::kRc, send_cq, recv_cq));
      mu_[dst].push_back(std::make_unique<std::mutex>());
    }
  }
}

int QpManager::PickQpIndex(NodeId dst, Priority pri) {
  if (dst >= pool_.size() || pool_[dst].empty()) {
    return -1;
  }
  const int k = static_cast<int>(pool_[dst].size());
  auto [lo, hi] = qos_->QpRange(pri, k);
  if (hi <= lo) {
    lo = 0;
    hi = k;
  }
  // Cheap per-thread spreading across the allowed slots.
  static thread_local uint32_t t_counter = 0;
  return lo + static_cast<int>(t_counter++ % static_cast<uint32_t>(hi - lo));
}

int QpManager::PickQpIndexSticky(NodeId dst, Priority pri) {
  if (dst >= pool_.size() || pool_[dst].empty()) {
    return -1;
  }
  const int k = static_cast<int>(pool_[dst].size());
  auto [lo, hi] = qos_->QpRange(pri, k);
  if (hi <= lo) {
    lo = 0;
    hi = k;
  }
  static thread_local const uint32_t t_tag = static_cast<uint32_t>(
      std::hash<std::thread::id>()(std::this_thread::get_id()));
  return lo + static_cast<int>(t_tag % static_cast<uint32_t>(hi - lo));
}

lt::Qp* QpManager::PoolQp(NodeId dst, int k) const {
  if (dst >= pool_.size() || static_cast<size_t>(k) >= pool_[dst].size()) {
    return nullptr;
  }
  return pool_[dst][k];
}

size_t QpManager::TotalQps() const {
  size_t n = 0;
  for (const auto& per_dst : pool_) {
    n += per_dst.size();
  }
  return n;
}

void QpManager::RecoverQp(lt::Qp* qp) {
  // Models the driver's modify_qp cycle ERR -> RESET -> INIT -> RTR -> RTS
  // after a transport error (caller holds the QP's pool mutex).
  lt::SpinFor(node_->params().lite_qp_reconnect_ns);
  qp->ResetToRts();
  if (reconnects_ != nullptr) {
    reconnects_->Inc();
  }
  if (journal_ != nullptr) {
    journal_->Record(lt::telemetry::JournalEvent::kQpRecover, qp->remote_node(), qp->qpn());
  }
}

}  // namespace lite
