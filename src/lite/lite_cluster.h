// LiteCluster — N simulated machines, each running one LITE instance, wired
// to one fabric: the equivalent of the paper's testbed (10 machines, 40 Gbps
// InfiniBand). Construction performs the LT_join/cluster-manager setup phase
// with no simulated cost (the paper's management library runs out-of-band).
#ifndef SRC_LITE_LITE_CLUSTER_H_
#define SRC_LITE_LITE_CLUSTER_H_

#include <memory>
#include <vector>

#include "src/lite/client.h"
#include "src/lite/instance.h"
#include "src/node/node.h"

namespace lite {

class LiteCluster {
 public:
  explicit LiteCluster(size_t node_count, const lt::SimParams& params = lt::SimParams());
  ~LiteCluster();

  size_t size() const { return instances_.size(); }
  LiteInstance* instance(NodeId id) { return instances_[id].get(); }
  lt::Cluster& cluster() { return cluster_; }
  lt::Node* node(NodeId id) { return cluster_.node(id); }
  const lt::SimParams& params() const { return cluster_.params(); }

  // Creates an application client on `node` (user-level by default).
  std::unique_ptr<LiteClient> CreateClient(NodeId node, bool kernel_level = false);

  // ---- Fault injection (src/faults/faults.h) ----
  // The fabric-level fault engine: per-link drop/duplicate/delay rules,
  // partitions, and node crash windows.
  lt::FaultEngine& faults() { return cluster_.fabric().faults(); }
  // Crash/restart at fabric level: while crashed, every transfer to or from
  // the node drops; peers detect it via keepalive lease expiry (or mark it
  // dead directly in tests). The node's LITE instance and memory survive —
  // restart models a fast reboot with its LMR metadata registry intact.
  void CrashNode(NodeId id) { faults().CrashNode(id); }
  void RestartNode(NodeId id) { faults().RestartNode(id); }

  // ---- Telemetry ----
  // Enables request-path tracing on every node (sample_every = 0 turns it
  // back off; 1 traces every op).
  void EnableTracing(uint32_t sample_every) { cluster_.SetTraceSampling(sample_every); }
  // Cluster-wide metrics + trace spans as JSON (LT_stat's cluster view).
  std::string DumpTelemetryJson() { return cluster_.DumpTelemetryJson(); }
  // Flight recorder: all nodes' journal rings merged by virtual time.
  std::string DumpJournal() { return cluster_.DumpJournal(); }
  // Chrome trace-event export (chrome://tracing / Perfetto). False on I/O
  // error. Includes all sampled spans plus the flight-recorder events.
  bool ExportChromeTrace(const std::string& path) { return cluster_.ExportChromeTrace(path); }
  // Human-readable per-stage latency waterfall, all nodes (latency_attr.h).
  std::string DumpLatencyBreakdown();
  // Health watchdog: evaluates the conservation invariants against every
  // node's metrics snapshot; returns one "nodeN: ..." line per violation
  // (empty = healthy). Cheap enough to call from any test teardown.
  std::vector<std::string> RunHealthCheck();

 private:
  lt::Cluster cluster_;
  std::vector<std::unique_ptr<LiteInstance>> instances_;
};

}  // namespace lite

#endif  // SRC_LITE_LITE_CLUSTER_H_
