// LiteInstance — one per node; the reproduction of the paper's loadable
// kernel module. A facade composing the pluggable Transport (RC QpManager
// or DC shared pool — DESIGN.md §10, paper Sec. 6.1), LmrTable (LMR
// registry + lh table + name service, Sec. 4.1),
// and OpEngine (the single op-submission engine all three data paths post
// through), plus the parts it still owns directly: the global physical MR
// (one MPT entry, zero MTT pressure — Sec. 4.1), the shared receive-CQ
// polling thread (Sec. 5.1), the RPC stack (server rings, reply slots,
// head-writer thread — see rpc_state.h), the lock/barrier services, and the
// QoS manager. Kernel-level applications call LiteInstance directly;
// user-level ones go through LiteClient, which adds the user/kernel
// crossing costs (Sec. 5.2).
#ifndef SRC_LITE_INSTANCE_H_
#define SRC_LITE_INSTANCE_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/cpu_meter.h"
#include "src/common/status.h"
#include "src/common/sync_util.h"
#include "src/lite/lmr_table.h"
#include "src/lite/migration.h"
#include "src/lite/op_engine.h"
#include "src/lite/qos.h"
#include "src/lite/rpc_state.h"
#include "src/lite/transport.h"
#include "src/lite/types.h"
#include "src/node/node.h"

namespace lite {

using lt::BlockingQueue;
using lt::Status;
using lt::StatusOr;

class LiteInstance;
class SubmissionRings;     // Per-CPU submission/completion rings (ring.h).
struct RingDeferredOp;
struct RingDrainCache;

// Serialized internal control-RPC payload (see wire.h).
using WireWriterBytes = std::vector<uint8_t>;

// Options for LT_malloc.
struct MallocOptions {
  // Nodes to place the LMR on; chunks are distributed round-robin. Empty
  // means "this node".
  std::vector<NodeId> nodes;
  uint32_t default_perm = kPermRead | kPermWrite;
};

// Identifies a distributed lock (an 8-byte word in an internal LMR at its
// owner node, paper Sec. 7.2).
struct LockId {
  NodeId owner = kInvalidNode;
  PhysAddr addr = 0;
  bool valid() const { return owner != kInvalidNode; }
};

// Uniform Status for an op addressed to a peer the liveness service marked
// dead. Every path — blocking memop, async retire, RPC — reports this same
// code + message shape, so callers can match on one value.
inline Status DeadPeerUnavailable() {
  return Status::Unavailable("peer marked dead by liveness service");
}

// Redirect attempts after a kStaleHome NACK before giving up (each attempt
// re-resolves the home through the old home's tombstone or the manager).
constexpr int kMaxStaleRedirects = 4;

class LiteInstance {
 public:
  LiteInstance(lt::Node* node, NodeId manager_node);
  ~LiteInstance();

  LiteInstance(const LiteInstance&) = delete;
  LiteInstance& operator=(const LiteInstance&) = delete;

  NodeId node_id() const { return node_->id(); }
  lt::Node* node() const { return node_; }
  const lt::SimParams& params() const { return node_->params(); }
  uint32_t global_rkey() const { return global_rkey_; }

  // ---- Cluster wiring (LiteCluster calls these during setup) ----
  void ConnectPeer(LiteInstance* peer);  // Records peer + its global rkey.
  void CreateQueuePairs();               // Builds the transport's QP state.
  // RC-only pool access for cluster pairing (null under other transports).
  lt::Qp* PoolQp(NodeId dst, int k) { return transport_->PoolQp(dst, k); }
  // DC-only: this node's target QPN (remote initiators attach to it).
  uint32_t DctQpn() const { return transport_->TargetQpn(); }
  // Control-ring setup to `server` (bootstrap; no simulated cost).
  void BootstrapControlChannel(LiteInstance* server);
  void Start();  // Launches service threads.
  void Stop();

  // ================= Memory API (paper Table 1) =================
  // LT_malloc: allocates an LMR, names it, makes the caller its master.
  StatusOr<Lh> Malloc(uint64_t size, const std::string& name, const MallocOptions& options = {});
  // LT_free: master-only; frees storage and invalidates all mappings.
  Status Free(Lh lh);
  // LT_map: acquires an lh for a named LMR from its master.
  StatusOr<Lh> Map(const std::string& name, uint32_t want_perm = kPermRead | kPermWrite);
  // LT_unmap: drops a mapping.
  Status Unmap(Lh lh);
  // Size of the LMR behind a handle.
  StatusOr<uint64_t> LmrSize(Lh lh) const;
  // Chunk placement behind a handle (introspection for apps/tests).
  StatusOr<std::vector<LmrChunk>> LmrChunks(Lh lh) const;
  // LT_read / LT_write: one-sided data access; return when data is
  // read/written (paper Sec. 4.2). Multi-chunk accesses overlap their
  // pieces across chunks/nodes via the op engine; single-piece accesses
  // keep the minimal-latency blocking path.
  Status Read(Lh lh, uint64_t offset, void* buf, uint64_t len, Priority pri = Priority::kHigh);
  Status Write(Lh lh, uint64_t offset, const void* buf, uint64_t len,
               Priority pri = Priority::kHigh);

  // ---- Asynchronous memops (the RDMA-throughput fast path) ----
  // LT_read_async / LT_write_async issue the op and return a completion
  // handle immediately; the caller's buffer must stay valid until the handle
  // is retired. Up to SimParams::lite_async_window ops may be in flight per
  // instance; issuing past the window transparently retires the oldest
  // outstanding op first. Posting strategy and retry/fault semantics live in
  // the op engine — see op_engine.h.
  StatusOr<MemopHandle> ReadAsync(Lh lh, uint64_t offset, void* buf, uint64_t len,
                                  Priority pri = Priority::kHigh);
  StatusOr<MemopHandle> WriteAsync(Lh lh, uint64_t offset, const void* buf, uint64_t len,
                                   Priority pri = Priority::kHigh);
  // LT_poll: non-blocking probe. Ok(true) = completed (handle consumed);
  // Ok(false) = in flight; an error is the op's final status (consumed).
  StatusOr<bool> Poll(MemopHandle h) { return engine_.Poll(h); }
  // LT_wait: blocks until the op completes; returns its final status and
  // consumes the handle.
  Status Wait(MemopHandle h) { return engine_.Wait(h); }
  // LT_wait_all: retires every outstanding async op of this instance
  // (consuming their handles) and returns the first error, if any.
  Status WaitAll() { return engine_.WaitAll(); }
  // Per-handle LT_wait_all: same retirement, but every retired handle's
  // final status is appended to `results` — errors past the first are not
  // swallowed (a dead home fails each affected op with the same shape).
  Status WaitAll(std::vector<std::pair<MemopHandle, Status>>* results) {
    return engine_.WaitAll(results);
  }
  // Outstanding (not yet retired) async ops.
  size_t AsyncInFlight() const { return engine_.AsyncInFlight(); }
  // Crossing-free readiness checks against the shared completion flag (the
  // user library reads it without entering the kernel; see LiteClient).
  bool AsyncHandleReady(MemopHandle h) const { return engine_.HandleReady(h); }
  bool AsyncAllReady() const { return engine_.AllHandlesReady(); }
  // Per-CPU submission/completion rings (DESIGN.md §9); null unless
  // SimParams::lite_ring_enable. LiteClient routes data-path ops through
  // them when present.
  SubmissionRings* rings() const { return cpu_rings_.get(); }
  // LT_memset / LT_memcpy / LT_memmove: executed at the node holding the
  // source/target LMR to minimize network traffic (paper Sec. 7.1).
  Status Memset(Lh lh, uint64_t offset, uint8_t value, uint64_t len,
                Priority pri = Priority::kHigh);
  Status Memcpy(Lh dst, uint64_t dst_off, Lh src, uint64_t src_off, uint64_t len,
                Priority pri = Priority::kHigh);
  Status Memmove(Lh dst, uint64_t dst_off, Lh src, uint64_t src_off, uint64_t len,
                 Priority pri = Priority::kHigh);

  // ---- Master-role management (paper Sec. 4.1) ----
  Status SetPermission(const std::string& name, NodeId grantee, uint32_t perm);
  Status MoveLmr(const std::string& name, NodeId new_node, Priority pri = Priority::kHigh);
  Status GrantMaster(const std::string& name, NodeId new_master);

  // ---- Live LMR migration (DESIGN.md "Epoch-fenced ownership") ----
  // Coordinator-side observables of one migration (bench/test introspection;
  // only filled when the caller is the LMR's home, i.e. coordinates locally).
  struct MigrateStats {
    uint64_t rounds = 0;        // Converge re-copy rounds run.
    uint64_t bytes_copied = 0;  // Mirror + converge + fence bytes shipped.
    uint64_t dirty_bytes = 0;   // Bytes re-copied due to concurrent writes.
    uint64_t fence_start_ns = 0;  // Virtual time the epoch fence began.
    uint64_t commit_ns = 0;       // Virtual time ownership flipped (0 = aborted).
  };
  // LT_migrate: moves the named LMR — data, masters, permission metadata —
  // to `new_home` under live traffic. Ops hitting the LMR keep completing
  // during the copy (writes are dirty-logged and re-copied); a short epoch
  // fence parks them around the ownership flip. On any failure the LMR
  // cleanly stays at (or reverts to) its source. Routed to the current home.
  Status Migrate(const std::string& name, NodeId new_home, MigrateStats* stats = nullptr);
  // LT_drain_node: migrates every LMR hosted at `victim` to the other alive
  // nodes (round-robin). `moved`, if given, returns the number migrated.
  Status DrainNode(NodeId victim, uint64_t* moved = nullptr);
  MigrationState& migration() { return migration_; }

  // ---- Cluster-manager recovery (paper Sec. 3.3) ----
  // Rebuilds the name service from every node's LMR metadata registry; the
  // manager's state is fully reconstructible after a failure restart. Only
  // meaningful on the manager node. Peers the liveness service currently
  // marks dead are skipped (their names resurface on their next rebuild).
  Status RebuildNameService();
  // Test hook: wipes the name service to simulate a manager restart.
  void ClearNameServiceForTest() { lmrs_.ClearNames(); }

  // ---- Liveness (keepalive/lease with the cluster manager) ----
  // Non-manager instances renew a lease every lite_keepalive_interval_ns;
  // the manager expires leases after lite_lease_timeout_ns and piggybacks
  // the dead list on keepalive replies. Ops to dead-marked targets fail
  // fast with Unavailable.
  bool PeerDead(NodeId node) const {
    return node < peer_dead_n_ && peer_dead_[node].load(std::memory_order_relaxed) != 0;
  }
  // Marks/unmarks a peer dead locally (the liveness service's dissemination
  // path; also a hook for failure tests).
  void SetPeerDead(NodeId node, bool dead);

  // ================= RPC / messaging API =================
  //
  // Timeout convention (every timeout_ns below): kDefaultTimeout (0) means
  // lite_rpc_timeout_ns; kInfiniteTimeout (~0ull) waits forever (capped at
  // one hour of real time as a hang backstop); else a real-time ns bound.
  //
  // Failure semantics: a call to a dead-marked target fails fast with
  // Unavailable; no reply within the timeout (after lite_rpc_max_retries
  // transparent retries with backoff) returns Timeout. Retries carry
  // per-channel sequence numbers and the server dedups + replays cached
  // replies, so a handler never double-executes.
  //
  // LT_regRPC: registers an RPC function id served on this node.
  Status RegisterRpc(RpcFuncId func);
  // LT_RPC: calls (server_node, func); blocks for the reply.
  Status Rpc(NodeId server_node, RpcFuncId func, const void* in, uint32_t in_len, void* out,
             uint32_t out_max, uint32_t* out_len, Priority pri = Priority::kHigh);
  // Async LT_RPC: single-attempt send returning a completion handle retired
  // through Poll/Wait/WaitAll; `out`/`out_len` stay valid until retirement.
  StatusOr<MemopHandle> RpcAsync(NodeId server_node, RpcFuncId func, const void* in,
                                 uint32_t in_len, void* out, uint32_t out_max, uint32_t* out_len,
                                 Priority pri = Priority::kHigh);
  // Fire-and-forget call (no reply slot, no wait).
  Status RpcSendNoReply(NodeId server_node, RpcFuncId func, const void* in, uint32_t in_len,
                        Priority pri = Priority::kHigh);
  // LT_multicastRPC (extension, paper Sec. 8.4): same call to many servers.
  Status MulticastRpc(const std::vector<NodeId>& servers, RpcFuncId func, const void* in,
                      uint32_t in_len, std::vector<std::vector<uint8_t>>* replies);
  // LT_recvRPC: receives the next call for `func` (blocking).
  StatusOr<RpcIncoming> RecvRpc(RpcFuncId func, uint64_t timeout_ns = kInfiniteTimeout);
  // LT_replyRPC: replies to a received call.
  Status ReplyRpc(const ReplyToken& token, const void* data, uint32_t len);
  // Combined reply+receive (paper Sec. 5.2 optional API).
  StatusOr<RpcIncoming> ReplyAndRecv(const ReplyToken& token, const void* data, uint32_t len,
                                     RpcFuncId func, uint64_t timeout_ns = kInfiniteTimeout);
  // LT_send / message receive.
  Status SendMsg(NodeId dst, const void* data, uint32_t len, Priority pri = Priority::kHigh);
  StatusOr<MsgIncoming> RecvMsg(uint64_t timeout_ns = kInfiniteTimeout);

  // ================= Synchronization API =================
  // LT_fetch-add / LT_test-set on 8-byte LMR words.
  StatusOr<uint64_t> FetchAdd(Lh lh, uint64_t offset, uint64_t delta);
  StatusOr<uint64_t> TestSet(Lh lh, uint64_t offset, uint64_t expected, uint64_t desired);
  // Distributed locks (paper Sec. 7.2): fetch-add fast path, FIFO wait queue
  // at the lock's owner node on contention.
  StatusOr<LockId> CreateLock(const std::string& name);
  StatusOr<LockId> OpenLock(const std::string& name);
  Status Lock(const LockId& lock);
  Status Unlock(const LockId& lock);
  // LT_barrier: blocks until `expected` participants arrive (service at the
  // cluster manager node).
  Status Barrier(const std::string& name, uint32_t expected);

  // ================= QoS =================
  QosManager& qos() { return qos_; }

  // Chunk math: maps [offset, offset+len) of an LMR onto per-chunk pieces.
  struct ChunkPiece {
    NodeId node;
    PhysAddr addr;
    uint64_t user_off;  // Offset within the user buffer.
    uint64_t len;
  };
  static std::vector<ChunkPiece> SliceChunks(const std::vector<LmrChunk>& chunks, uint64_t offset,
                                             uint64_t len);

  // ---- Introspection (tests / benches) ----
  size_t qp_pool_size() const { return transport_->TotalQps(); }
  Transport& transport() { return *transport_; }
  uint64_t poll_thread_cpu_ns() const { return poll_cpu_.TotalCpuNs(); }
  lt::CpuMeter& service_cpu_meter() { return poll_cpu_; }
  size_t lh_count() const { return lmrs_.lh_count(); }
  uint64_t rpc_ring_bytes_in_use() const;

  // LT_stat (paper's kernel-visibility story made queryable): one named
  // metric, or the whole per-node snapshot.
  int64_t Stat(const std::string& name) const {
    return StatSnapshot().ValueOr(name);
  }
  lt::telemetry::MetricsSnapshot StatSnapshot() const {
    return node_->telemetry().registry().Snapshot();
  }

 private:
  friend class LiteClient;
  friend class OpEngine;
  friend class SubmissionRings;

  // RPC-stack state structures (RpcChannel, ServerRing, ReplySlot,
  // RpcReqHeader, LockQueue, BarrierState) live in rpc_state.h.

  using InternalHandler =
      std::function<void(LiteInstance*, const RpcIncoming&)>;

  // ---------------- internals ----------------
  lt::Rnic& rnic() const { return node_->rnic(); }
  LiteInstance* Peer(NodeId node) const;

  // One-sided posting has no forwarders: every call site posts through
  // engine_ directly (op_engine.h owns QP selection, recovery, retry).

  // Local fast path for chunks that live on this node.
  void LocalCopyIn(PhysAddr dst, const void* src, uint64_t len);
  void LocalCopyOut(void* dst, PhysAddr src, uint64_t len);

  // lh bookkeeping: thin forwarders into the LmrTable component.
  Lh InsertLh(LhEntry entry) { return lmrs_.Insert(std::move(entry)); }
  StatusOr<LhEntry> GetLh(Lh lh) const { return lmrs_.Get(lh); }
  static Status CheckAccess(const LhEntry& e, uint64_t offset, uint64_t len, uint32_t need) {
    return LmrTable::CheckAccess(e, offset, len, need);
  }

  // Chunk allocation (local service for kFnAllocChunks and local mallocs).
  StatusOr<std::vector<LmrChunk>> AllocLocalChunks(uint64_t size);
  void FreeLocalChunks(const std::vector<LmrChunk>& chunks);

  // RPC plumbing. Channels/rings are keyed by ring id: app functions get
  // their own ring; internal functions share one control ring per client.
  static RpcFuncId RingIdFor(RpcFuncId func) {
    return func <= kMaxAppFuncId ? func : kControlRingId;
  }
  StatusOr<RpcChannel*> GetChannel(NodeId server, RpcFuncId ring_id);
  ServerRing* SetupServerRing(NodeId client, RpcFuncId ring_id, PhysAddr client_head_mirror);
  StatusOr<PhysAddr> AllocMirror();
  StatusOr<uint32_t> AcquireReplySlot(uint32_t out_max);
  void ReleaseReplySlot(uint32_t slot);
  // Posts one request into the ring. `seq_inout`: 0 assigns a fresh
  // per-channel sequence; non-zero reuses it (retries must present the
  // original so the server dedups). `fail_fast_dead=false` lets liveness
  // probes through to a peer currently believed dead.
  Status PostRpcRequest(RpcChannel* channel, RpcFuncId func, const void* in, uint32_t in_len,
                        PhysAddr reply_phys, uint32_t reply_max, uint32_t reply_slot,
                        Priority pri, uint32_t* seq_inout, bool fail_fast_dead = true);

  // The full client call (dead check, send, reply wait, retry loop);
  // Rpc()/InternalRpc()/keepalives all funnel through here.
  struct RpcCallOpts {
    uint64_t timeout_ns = kDefaultTimeout;  // Per attempt.
    uint32_t max_retries = kUseParamRetries;
    bool fail_fast_dead = true;
  };
  static constexpr uint32_t kUseParamRetries = ~0u;
  Status RpcCall(NodeId server_node, RpcFuncId func, const void* in, uint32_t in_len, void* out,
                 uint32_t out_max, uint32_t* out_len, Priority pri, const RpcCallOpts& opts);

  // Server-side idempotence (poll thread): records `seq` as executed;
  // false means duplicate (caller drops it and replays the cached reply).
  bool SeqFresh(ServerRing* ring, uint32_t seq);
  void RecordReplay(const ReplyToken& token, const void* data, uint32_t len);
  void ReplayReply(ServerRing* ring, const RpcReqHeader& hdr);

  // Single-attempt RPC split retired through the async handle machinery.
  StatusOr<uint32_t> RpcSend(NodeId server_node, RpcFuncId func, const void* in, uint32_t in_len,
                             uint32_t out_max, Priority pri = Priority::kHigh);
  Status RpcWait(uint32_t slot, void* out, uint32_t out_max, uint32_t* out_len,
                 uint64_t timeout_ns = kDefaultTimeout);

  // Shared body of ReadAsync/WriteAsync: lh/permission prologue, then hands
  // the sliced pieces to the engine.
  StatusOr<MemopHandle> IssueAsyncMemop(Lh lh, uint64_t offset, void* buf, uint64_t len,
                                        Priority pri, bool is_read);
  // Kernel-half execution of one ring-deferred async memop (ring.h): adopts
  // the op's detached attribution record, pays the map check once per
  // distinct lh per drain batch (via `cache`), and registers the op with
  // the engine under its reserved handle.
  void ExecuteDeferredAsync(RingDeferredOp& op, RingDrainCache* cache);

  BlockingQueue<RpcIncoming>* EnsureAppQueue(RpcFuncId func);
  void PollLoop();
  void HeadWriterLoop();
  void InternalWorkerLoop();
  void KeepaliveLoop();
  void HandleRequestImm(NodeId src, uint32_t imm, uint64_t vtime);
  void HandleReplyImm(uint32_t imm, uint32_t byte_len, uint64_t vtime);

  // Internal control-function implementations.
  void RegisterInternalHandlers();
  Status InternalRpc(NodeId server, RpcFuncId func, const WireWriterBytes& in,
                     std::vector<uint8_t>* out, uint64_t timeout_ns = kDefaultTimeout,
                     Priority pri = Priority::kHigh);
  Status InternalRpcOpts(NodeId server, RpcFuncId func, const WireWriterBytes& in,
                         std::vector<uint8_t>* out, const RpcCallOpts& opts,
                         Priority pri = Priority::kHigh);

  // Name service (lives at manager_node_).
  StatusOr<NodeId> LookupMasterNode(const std::string& name);

  // ---- Migration internals (migration.cc) ----
  // The coordinator state machine, run at the LMR's home node:
  // mirror -> converge -> fence -> activate -> commit, clean abort otherwise.
  Status MigrateHosted(const std::string& name, NodeId dst, NodeId requester,
                       MigrateStats* stats);
  // Abort path: epoch-fences the source (epoch += 2 leapfrogs a possibly
  // activated destination), uninstalls the staged copy, unparks waiters.
  void AbortMigration(const std::shared_ptr<MigrationRecord>& rec, const std::string& name,
                      NodeId dst, MigrationPhase phase_reached);
  // Copies `intervals` (LMR-offset space; empty map = the whole LMR) from
  // the old placement to the new one with multi-piece engine ops.
  Status CopyLmrIntervals(const std::vector<LmrChunk>& old_chunks,
                          const std::vector<LmrChunk>& new_chunks, uint64_t lmr_size,
                          const std::map<uint64_t, uint64_t>* intervals, uint64_t* bytes_out);
  // kStaleHome recovery: re-resolves `entry`'s home through the old home's
  // tombstone (falling back to the manager when the old home is dead) and
  // refreshes every local lh mapped to the name. Reloads *entry.
  Status RefreshStaleLh(Lh lh, LhEntry* entry);
  // Registers the kFnMigrate* / kFnStaleHome control handlers.
  void RegisterMigrationHandlers();
  // Blocking re-issue of an async memop that retired with kStaleHome
  // (called by the op engine with no locks held).
  Status RedoMemopAfterStale(Lh lh, uint64_t offset, void* buf, uint64_t len, bool is_read,
                             Priority pri);

  // Registers this instance's lite.* metrics and probes (constructor-time).
  void RegisterTelemetry();

  // ---------------- data ----------------
  lt::Node* const node_;
  const NodeId manager_node_;

  uint32_t global_lkey_ = 0;
  uint32_t global_rkey_ = 0;
  std::vector<LiteInstance*> peers_;       // Indexed by node id (self included).
  std::vector<uint32_t> peer_global_rkey_;

  // Liveness: per-peer dead flags (sized in CreateQueuePairs, before
  // traffic) and the manager-side lease table.
  std::unique_ptr<std::atomic<uint8_t>[]> peer_dead_;
  size_t peer_dead_n_ = 0;
  std::mutex lease_mu_;
  std::unordered_map<NodeId, uint64_t> lease_last_seen_;
  std::mutex keepalive_mu_;
  std::condition_variable keepalive_cv_;  // Wakes the keepalive thread on Stop.

  lt::Cq* recv_cq_ = nullptr;

  // RPC: client channels, server rings, reply slots.
  std::mutex channels_mu_;
  std::map<std::pair<NodeId, RpcFuncId>, std::unique_ptr<RpcChannel>> channels_;
  std::mutex rings_mu_;
  std::map<std::pair<NodeId, RpcFuncId>, std::unique_ptr<ServerRing>> rings_;
  std::vector<std::unique_ptr<ReplySlot>> reply_slots_;
  std::mutex slot_mu_;
  std::condition_variable slot_cv_;
  std::vector<uint32_t> free_slots_;
  PhysAddr reply_slab_ = 0;

  // Head-mirror slab: 8-byte words handed out bump-style.
  std::mutex mirror_mu_;
  PhysAddr mirror_slab_ = 0;
  uint64_t mirror_next_ = 0;
  uint64_t mirror_cap_ = 0;

  // Registered application RPC functions.
  std::mutex funcs_mu_;
  std::unordered_map<RpcFuncId, std::unique_ptr<BlockingQueue<RpcIncoming>>> app_queues_;

  // Internal control functions.
  std::unordered_map<RpcFuncId, InternalHandler> internal_handlers_;
  BlockingQueue<std::pair<RpcFuncId, RpcIncoming>> internal_queue_;

  // Messaging.
  BlockingQueue<MsgIncoming> msg_queue_;

  // Head updates published by the background thread (paper Fig. 9, step f);
  // items carry the triggering dispatch's virtual time.
  BlockingQueue<std::pair<ServerRing*, uint64_t>> head_updates_;

  // Lock + barrier services.
  std::mutex locks_mu_;
  std::unordered_map<PhysAddr, LockQueue> lock_queues_;
  std::mutex barriers_mu_;
  std::unordered_map<std::string, BarrierState> barriers_;

  // QoS.
  QosManager qos_;

  // Composed components (construction order matters: the transport holds
  // the QoS pointer; the engine reaches back into this facade).
  std::unique_ptr<Transport> transport_;
  LmrTable lmrs_;
  OpEngine engine_;
  // Per-CPU submission/completion rings; constructed only when
  // SimParams::lite_ring_enable (rings off = no object, no behavior change).
  std::unique_ptr<SubmissionRings> cpu_rings_;
  // Epoch-fenced ownership guard + migration records (DESIGN.md). Costs one
  // relaxed load per gated access while no migration has touched this node.
  MigrationState migration_;

  // Service threads.
  std::vector<std::thread> threads_;
  std::atomic<bool> stopping_{false};
  lt::CpuMeter poll_cpu_;

  // Telemetry instruments (owned by the node's registry; pointers cached so
  // the hot path never does a name lookup).
  lt::telemetry::Counter* rpc_requests_ = nullptr;
  lt::telemetry::Counter* rpc_replies_ = nullptr;
  lt::telemetry::Counter* poll_wakeups_ = nullptr;
  lt::telemetry::Counter* poll_idle_wakeups_ = nullptr;
  lt::telemetry::FixedHistogram* poll_batch_hist_ = nullptr;

  // Failure-recovery instruments (docs/TELEMETRY.md, "Fault & recovery").
  lt::telemetry::Counter* rpc_retries_ = nullptr;
  lt::telemetry::Counter* rpc_dup_requests_ = nullptr;
  lt::telemetry::Counter* rpc_replayed_replies_ = nullptr;
  lt::telemetry::Counter* rpc_stale_replies_ = nullptr;
  lt::telemetry::Counter* rpc_zombie_reclaimed_ = nullptr;
  lt::telemetry::Counter* rpc_dead_fast_fail_ = nullptr;
  lt::telemetry::Counter* qp_reconnects_ = nullptr;
  lt::telemetry::Counter* liveness_marked_dead_ = nullptr;
  lt::telemetry::Counter* liveness_revived_ = nullptr;
  lt::telemetry::Counter* liveness_keepalives_ = nullptr;

  // This node's flight recorder (owned by NodeTelemetry).
  lt::telemetry::Journal* journal_ = nullptr;
};

}  // namespace lite

#endif  // SRC_LITE_INSTANCE_H_
