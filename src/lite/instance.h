// LiteInstance — one per node; the reproduction of the paper's loadable
// kernel module.
//
// Owns:
//   * the global physical MR covering the node's entire physical memory
//     (one MPT entry on the RNIC, zero MTT pressure — paper Sec. 4.1),
//   * the shared QP pool: K QPs per remote node, shared by every application
//     on the node (paper Sec. 6.1),
//   * the single shared receive-CQ polling thread (paper Sec. 5.1),
//   * the LMR registry (for LMRs mastered here), the local lh handle table,
//   * the RPC stack (per-(client-node, function) server rings, reply slots,
//     background head-writer thread),
//   * the synchronization services (lock FIFO queues, barriers),
//   * the QoS manager.
//
// Kernel-level applications call LiteInstance methods directly; user-level
// applications go through LiteClient, which adds the user/kernel crossing
// costs (paper Sec. 5.2).
#ifndef SRC_LITE_INSTANCE_H_
#define SRC_LITE_INSTANCE_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/common/cpu_meter.h"
#include "src/common/status.h"
#include "src/common/sync_util.h"
#include "src/lite/qos.h"
#include "src/lite/types.h"
#include "src/node/node.h"

namespace lite {

using lt::BlockingQueue;
using lt::Status;
using lt::StatusOr;

class LiteInstance;

// Serialized internal control-RPC payload (see wire.h).
using WireWriterBytes = std::vector<uint8_t>;

// Token identifying one received-but-not-yet-replied RPC call; LT_replyRPC
// may be invoked later and from any thread (deferred replies power the lock
// and barrier services).
struct ReplyToken {
  NodeId client_node = kInvalidNode;
  PhysAddr reply_phys = 0;
  uint32_t reply_max = 0;
  uint32_t reply_slot = 0;  // Packed {generation, slot} — see PackReplySlot.
  // Virtual arrival time of the call; deferred replies (lock grants,
  // barrier releases) must not be issued on an earlier timeline.
  uint64_t arrival_vtime_ns = 0;
  // Idempotence bookkeeping: the server ring the call arrived on and the
  // client-assigned sequence number, so LT_replyRPC can record the reply in
  // the ring's replay cache (a retried duplicate then re-sends the cached
  // reply instead of re-executing the handler).
  RpcFuncId ring_func = 0;
  uint32_t seq = 0;
  // Trace id the client put on the wire (0 = untraced). LT_replyRPC opens a
  // server-side child span tagged with this id so DumpTelemetryJson can
  // stitch the two halves of the call.
  uint64_t parent_trace_id = 0;
  bool valid() const { return client_node != kInvalidNode; }
};

// One received RPC call, as handed to LT_recvRPC.
struct RpcIncoming {
  std::vector<uint8_t> data;
  ReplyToken token;
  uint64_t arrival_vtime_ns = 0;
};

// One received LT_send message.
struct MsgIncoming {
  std::vector<uint8_t> data;
  NodeId src = kInvalidNode;
  uint64_t arrival_vtime_ns = 0;
};

// Options for LT_malloc.
struct MallocOptions {
  // Nodes to place the LMR on; chunks are distributed round-robin. Empty
  // means "this node".
  std::vector<NodeId> nodes;
  uint32_t default_perm = kPermRead | kPermWrite;
};

// Identifies a distributed lock (an 8-byte word in an internal LMR at its
// owner node, paper Sec. 7.2).
struct LockId {
  NodeId owner = kInvalidNode;
  PhysAddr addr = 0;
  bool valid() const { return owner != kInvalidNode; }
};

class LiteInstance {
 public:
  LiteInstance(lt::Node* node, NodeId manager_node);
  ~LiteInstance();

  LiteInstance(const LiteInstance&) = delete;
  LiteInstance& operator=(const LiteInstance&) = delete;

  NodeId node_id() const { return node_->id(); }
  lt::Node* node() const { return node_; }
  const lt::SimParams& params() const { return node_->params(); }
  uint32_t global_rkey() const { return global_rkey_; }

  // ---- Cluster wiring (LiteCluster calls these during setup) ----
  void ConnectPeer(LiteInstance* peer);  // Records peer + its global rkey.
  void CreateQueuePairs();               // Creates the shared QP pool.
  lt::Qp* PoolQp(NodeId dst, int k);     // Pool access for pairwise connect.
  // Sets up the control ring this node uses to talk to `server` (bootstrap;
  // no simulated cost — runs before the cluster "boots").
  void BootstrapControlChannel(LiteInstance* server);
  void Start();  // Launches service threads.
  void Stop();

  // ================= Memory API (paper Table 1) =================
  // LT_malloc: allocates an LMR, names it, makes the caller its master.
  StatusOr<Lh> Malloc(uint64_t size, const std::string& name, const MallocOptions& options = {});
  // LT_free: master-only; frees storage and invalidates all mappings.
  Status Free(Lh lh);
  // LT_map: acquires an lh for a named LMR from its master.
  StatusOr<Lh> Map(const std::string& name, uint32_t want_perm = kPermRead | kPermWrite);
  // LT_unmap: drops a mapping.
  Status Unmap(Lh lh);
  // Size of the LMR behind a handle.
  StatusOr<uint64_t> LmrSize(Lh lh) const;
  // Chunk placement behind a handle (introspection for apps/tests).
  StatusOr<std::vector<LmrChunk>> LmrChunks(Lh lh) const;
  // LT_read / LT_write: one-sided data access; return when data is
  // read/written (no separate completion polling — paper Sec. 4.2).
  Status Read(Lh lh, uint64_t offset, void* buf, uint64_t len, Priority pri = Priority::kHigh);
  Status Write(Lh lh, uint64_t offset, const void* buf, uint64_t len,
               Priority pri = Priority::kHigh);

  // ---- Asynchronous memops (the RDMA-throughput fast path) ----
  //
  // LT_read_async / LT_write_async issue the op and return a completion
  // handle immediately; the caller's buffer must stay valid until the handle
  // is retired. Up to SimParams::lite_async_window ops may be in flight per
  // instance; issuing past the window transparently retires the oldest
  // outstanding op first (backpressure, no reaper thread).
  //
  // Under the hood async WQEs are posted unsignaled with every K-th WQE per
  // (destination, QP) stream signaled (K = lite_async_signal_every);
  // completion of the unsignaled prefix is inferred from the covering
  // signaled CQE (or from a zero-length signaled flush write when no cover
  // exists at wait time). Writes whose payload fits rnic_inline_max go
  // inline, and consecutive posts share doorbells (rnic.h).
  //
  // Retry/fault semantics match the blocking path: a dropped transfer is
  // retried transparently (with QP recovery and backoff) when the handle is
  // retired, and LT_wait surfaces Unavailable on dead peers.
  StatusOr<MemopHandle> ReadAsync(Lh lh, uint64_t offset, void* buf, uint64_t len,
                                  Priority pri = Priority::kHigh);
  StatusOr<MemopHandle> WriteAsync(Lh lh, uint64_t offset, const void* buf, uint64_t len,
                                   Priority pri = Priority::kHigh);
  // LT_poll: non-blocking probe. Ok(true) = op completed successfully (the
  // handle is consumed); Ok(false) = still in flight; an error status means
  // the op completed with that error (handle consumed). Each call charges
  // one CQ-poll cost, so poll loops make virtual-time progress.
  StatusOr<bool> Poll(MemopHandle h);
  // LT_wait: blocks until the op completes; returns its final status and
  // consumes the handle.
  Status Wait(MemopHandle h);
  // LT_wait_all: retires every outstanding async op of this instance
  // (consuming their handles) and returns the first error, if any.
  Status WaitAll();
  // Outstanding (not yet retired) async ops.
  size_t AsyncInFlight() const;
  // LT_memset / LT_memcpy / LT_memmove: executed at the node holding the
  // source/target LMR to minimize network traffic (paper Sec. 7.1).
  Status Memset(Lh lh, uint64_t offset, uint8_t value, uint64_t len);
  Status Memcpy(Lh dst, uint64_t dst_off, Lh src, uint64_t src_off, uint64_t len);
  Status Memmove(Lh dst, uint64_t dst_off, Lh src, uint64_t src_off, uint64_t len);

  // ---- Master-role management (paper Sec. 4.1) ----
  Status SetPermission(const std::string& name, NodeId grantee, uint32_t perm);
  Status MoveLmr(const std::string& name, NodeId new_node);
  Status GrantMaster(const std::string& name, NodeId new_master);

  // ---- Cluster-manager recovery (paper Sec. 3.3) ----
  // Rebuilds the name service from every node's LMR metadata registry; the
  // manager's state is fully reconstructible after a failure restart. Only
  // meaningful on the manager node. Peers the liveness service currently
  // marks dead are skipped (their names resurface on their next rebuild).
  Status RebuildNameService();
  // Test hook: wipes the name service to simulate a manager restart.
  void ClearNameServiceForTest();

  // ---- Liveness (keepalive/lease with the cluster manager) ----
  // When SimParams::lite_keepalive_interval_ns > 0, every non-manager
  // instance renews a lease with the manager on that real-time cadence; the
  // manager expires leases after lite_lease_timeout_ns (default 5x the
  // interval) and piggybacks the dead list on keepalive replies. Ops whose
  // target is marked dead fail fast with Status::Unavailable instead of
  // burning a reply timeout.
  bool PeerDead(NodeId node) const {
    return node < peer_dead_n_ && peer_dead_[node].load(std::memory_order_relaxed) != 0;
  }
  // Marks/unmarks a peer dead locally (the liveness service's dissemination
  // path; also a hook for failure tests).
  void SetPeerDead(NodeId node, bool dead);

  // ================= RPC / messaging API =================
  //
  // Timeout convention (every timeout_ns below): kDefaultTimeout (0) means
  // "use SimParams::lite_rpc_timeout_ns"; kInfiniteTimeout (~0ull) means
  // wait forever (capped at one hour of real time on client paths as a hang
  // backstop); anything else is a real-time bound in nanoseconds. See
  // types.h.
  //
  // Failure semantics on the client path: a call whose target the liveness
  // service has marked dead fails fast with Status::Unavailable; a call that
  // got no reply within the timeout (after lite_rpc_max_retries transparent
  // retries with exponential backoff) returns Status::Timeout. Retried
  // requests carry per-channel sequence numbers; the server's ring poller
  // executes each sequence at most once and replays the cached reply for
  // duplicates, so retries never double-execute a handler.
  //
  // LT_regRPC: registers an RPC function id served on this node.
  Status RegisterRpc(RpcFuncId func);
  // LT_RPC: calls (server_node, func); blocks for the reply.
  Status Rpc(NodeId server_node, RpcFuncId func, const void* in, uint32_t in_len, void* out,
             uint32_t out_max, uint32_t* out_len, Priority pri = Priority::kHigh);
  // Async LT_RPC: issues the call now and returns a completion handle
  // retired through the same Poll/Wait/WaitAll machinery as async memops
  // (single-attempt send; the retry loop lives in Rpc()/internal calls).
  // `out`/`out_len` must stay valid until the handle is retired.
  StatusOr<MemopHandle> RpcAsync(NodeId server_node, RpcFuncId func, const void* in,
                                 uint32_t in_len, void* out, uint32_t out_max, uint32_t* out_len,
                                 Priority pri = Priority::kHigh);
  // Fire-and-forget call (no reply slot, no wait).
  Status RpcSendNoReply(NodeId server_node, RpcFuncId func, const void* in, uint32_t in_len,
                        Priority pri = Priority::kHigh);
  // LT_multicastRPC (extension, paper Sec. 8.4): same call to many servers.
  Status MulticastRpc(const std::vector<NodeId>& servers, RpcFuncId func, const void* in,
                      uint32_t in_len, std::vector<std::vector<uint8_t>>* replies);
  // LT_recvRPC: receives the next call for `func` (blocking).
  StatusOr<RpcIncoming> RecvRpc(RpcFuncId func, uint64_t timeout_ns = kInfiniteTimeout);
  // LT_replyRPC: replies to a received call.
  Status ReplyRpc(const ReplyToken& token, const void* data, uint32_t len);
  // Combined reply+receive (paper Sec. 5.2 optional API).
  StatusOr<RpcIncoming> ReplyAndRecv(const ReplyToken& token, const void* data, uint32_t len,
                                     RpcFuncId func, uint64_t timeout_ns = kInfiniteTimeout);
  // LT_send / message receive.
  Status SendMsg(NodeId dst, const void* data, uint32_t len, Priority pri = Priority::kHigh);
  StatusOr<MsgIncoming> RecvMsg(uint64_t timeout_ns = kInfiniteTimeout);

  // ================= Synchronization API =================
  // LT_fetch-add / LT_test-set on 8-byte LMR words.
  StatusOr<uint64_t> FetchAdd(Lh lh, uint64_t offset, uint64_t delta);
  StatusOr<uint64_t> TestSet(Lh lh, uint64_t offset, uint64_t expected, uint64_t desired);
  // Distributed locks (paper Sec. 7.2): fetch-add fast path, FIFO wait queue
  // at the lock's owner node on contention.
  StatusOr<LockId> CreateLock(const std::string& name);
  StatusOr<LockId> OpenLock(const std::string& name);
  Status Lock(const LockId& lock);
  Status Unlock(const LockId& lock);
  // LT_barrier: blocks until `expected` participants arrive (service at the
  // cluster manager node).
  Status Barrier(const std::string& name, uint32_t expected);

  // ================= QoS =================
  QosManager& qos() { return qos_; }

  // Chunk math: maps [offset, offset+len) of an LMR onto per-chunk pieces
  // (public for the memory-op pairing helpers and tests).
  struct ChunkPiece {
    NodeId node;
    PhysAddr addr;
    uint64_t user_off;  // Offset within the user buffer.
    uint64_t len;
  };
  static std::vector<ChunkPiece> SliceChunks(const std::vector<LmrChunk>& chunks, uint64_t offset,
                                             uint64_t len);

  // ---- Introspection (tests / benches) ----
  size_t qp_pool_size() const;
  uint64_t poll_thread_cpu_ns() const { return poll_cpu_.TotalCpuNs(); }
  lt::CpuMeter& service_cpu_meter() { return poll_cpu_; }
  size_t lh_count() const;
  uint64_t rpc_ring_bytes_in_use() const;

  // LT_stat (paper's kernel-visibility story made queryable): one named
  // metric, or the whole per-node snapshot. Covers hardware probes (RNIC
  // caches, fabric port, OS crossings) and the lite.* metrics this instance
  // registers.
  int64_t Stat(const std::string& name) const {
    return StatSnapshot().ValueOr(name);
  }
  lt::telemetry::MetricsSnapshot StatSnapshot() const {
    return node_->telemetry().registry().Snapshot();
  }

 private:
  friend class LiteClient;

  // ---------------- internal structures ----------------
  struct LmrMeta {
    std::string name;
    uint64_t size = 0;
    std::vector<LmrChunk> chunks;
    uint32_t default_perm = kPermRead | kPermWrite;
    std::map<NodeId, uint32_t> node_perm;
    std::set<NodeId> mapped_nodes;
    std::set<NodeId> masters;
  };

  struct LhEntry {
    std::string name;
    NodeId master_node = kInvalidNode;
    uint64_t size = 0;
    uint32_t perm = 0;
    std::vector<LmrChunk> chunks;
  };

  // Client side of one RPC channel: ring placement at the server plus the
  // local tail and the head mirror the server's background thread updates.
  struct RpcChannel {
    NodeId server = kInvalidNode;
    RpcFuncId func = 0;
    std::vector<LmrChunk> ring;  // Single chunk in practice.
    uint64_t ring_size = 0;
    uint64_t tail = 0;           // Absolute byte offset (monotonic).
    PhysAddr head_mirror = 0;    // Local 8-byte word; server writes head here.
    std::mutex mu;               // Serializes reserve+post (preserves order).
    uint32_t next_seq = 1;       // Per-channel idempotence sequence (under mu).
  };

  // Server side of one RPC channel.
  struct ServerRing {
    NodeId client = kInvalidNode;
    RpcFuncId func = 0;
    LmrChunk ring;
    uint64_t ring_size = 0;
    uint64_t head = 0;           // Absolute byte offset (monotonic).
    PhysAddr client_head_mirror = 0;
    std::atomic<uint64_t> head_to_publish{0};

    // At-most-once execution state (poll thread only): every executed
    // sequence is <= seq_low or in seq_above (kept sparse — consecutive
    // completions collapse into the watermark). A set rather than a plain
    // high-water mark, because fault-injected reordering can deliver a fresh
    // request with a lower sequence after a later one executed.
    uint32_t seq_low = 0;
    std::set<uint32_t> seq_above;

    // Replay cache: reply payloads of recent sequences, re-sent verbatim
    // when a retried duplicate arrives after the original already executed.
    // Bounded; a duplicate past the horizon is dropped silently (the client
    // then times out — at-most-once still holds, exactly-once does not).
    std::mutex replay_mu;
    std::map<uint32_t, std::vector<uint8_t>> replay;
  };

  // Replay cache entries kept per server ring.
  static constexpr size_t kReplayCacheEntries = 32;

  // Client-side reply rendezvous.
  struct ReplySlot {
    std::mutex mu;
    std::condition_variable cv;
    std::atomic<int> state{0};  // 0 free, 1 waiting, 2 ready, 3 error,
                                // 4 zombie (timed out; awaiting late reply
                                //   or quarantine reclaim)
    // Reuse generation, bumped on acquire and carried in the packed reply-
    // slot field; late/duplicate replies with a stale generation are
    // discarded (see PackReplySlot in types.h).
    std::atomic<uint32_t> gen{0};
    uint32_t reply_len = 0;
    uint64_t ready_vtime_ns = 0;
    PhysAddr buf_phys = 0;
    uint32_t buf_max = 0;
    // Real time the slot became a zombie. A zombie whose peer died may never
    // get the late reply that frees it; AcquireReplySlot reclaims zombies
    // older than the RPC timeout when the free list runs dry.
    std::atomic<uint64_t> zombie_since_real_ns{0};
  };

  struct LockQueue {
    std::deque<ReplyToken> waiters;
    uint32_t grants_pending = 0;
  };

  struct BarrierState {
    uint32_t expected = 0;
    std::vector<ReplyToken> arrived;
  };

  // Header written at the ring tail ahead of the RPC payload. Kept at
  // exactly 48 bytes: the header rides every request's fabric transfer, so
  // its size feeds every simulated RPC latency and is pinned by the
  // static_assert below. The seq field fits by narrowing
  // magic/reply_max/client_node (reply slabs are <64KB slots and node ids
  // are small; both statically sane for this simulator); trace_id carries
  // the client span's id for cross-node stitching (0 = untraced, so the
  // header cost is identical whether tracing is on or off).
  struct RpcReqHeader {
    PhysAddr reply_phys = 0;   // Client reply buffer (slot slab).
    uint64_t tail_after = 0;   // Absolute head position once consumed.
    uint64_t trace_id = 0;     // Client trace id (0 = untraced request).
    uint32_t input_len = 0;
    uint32_t reply_slot = 0;   // Packed {generation, slot} or kNoReplySlot.
    uint32_t seq = 0;          // Per-channel sequence (0 = never dedup).
    uint16_t reply_max = 0;
    uint16_t magic = kRpcMagic;
    uint16_t client_node = static_cast<uint16_t>(0xffff);
  };
  static constexpr uint16_t kRpcMagic = 0x4c54;  // "LT"
  static_assert(sizeof(RpcReqHeader) == 48,
                "RpcReqHeader is wire-visible: its size feeds every RPC's "
                "simulated transfer time and must not change");

  using InternalHandler =
      std::function<void(LiteInstance*, const RpcIncoming&)>;

  // ---------------- internals ----------------
  lt::Rnic& rnic() const { return node_->rnic(); }
  LiteInstance* Peer(NodeId node) const;

  // QP selection honoring the QoS policy; returns a pool index for `dst`, or
  // -1 if no QP exists.
  int PickQpIndex(NodeId dst, Priority pri);

  // One-sided ops on raw chunk targets (the engine under Read/Write/atomics
  // and the RPC stack). Signaled ops transparently retry dropped transfers
  // (recovering the QP from its error state first) up to
  // lite_rpc_max_retries times with exponential backoff.
  Status OneSidedWrite(NodeId dst, PhysAddr dst_addr, const void* src, uint64_t len, Priority pri,
                       bool signaled);
  Status OneSidedWriteImm(NodeId dst, PhysAddr dst_addr, const void* src, uint64_t len,
                          uint32_t imm, Priority pri);
  Status OneSidedRead(NodeId src_node, PhysAddr src_addr, void* dst, uint64_t len, Priority pri);
  StatusOr<uint64_t> RemoteAtomic(NodeId dst, PhysAddr addr, bool is_cas, uint64_t compare_add,
                                  uint64_t swap);

  // Local fast path for chunks that live on this node.
  void LocalCopyIn(PhysAddr dst, const void* src, uint64_t len);
  void LocalCopyOut(void* dst, PhysAddr src, uint64_t len);

  // lh bookkeeping.
  Lh InsertLh(LhEntry entry);
  StatusOr<LhEntry> GetLh(Lh lh) const;
  Status CheckAccess(const LhEntry& e, uint64_t offset, uint64_t len, uint32_t need) const;

  // Chunk allocation (local service for kFnAllocChunks and local mallocs).
  StatusOr<std::vector<LmrChunk>> AllocLocalChunks(uint64_t size);
  void FreeLocalChunks(const std::vector<LmrChunk>& chunks);

  // RPC plumbing. Channels/rings are keyed by ring id: application functions
  // get their own ring (as in the paper); internal functions and messaging
  // share one control ring per client node.
  static RpcFuncId RingIdFor(RpcFuncId func) {
    return func <= kMaxAppFuncId ? func : kControlRingId;
  }
  StatusOr<RpcChannel*> GetChannel(NodeId server, RpcFuncId ring_id);
  ServerRing* SetupServerRing(NodeId client, RpcFuncId ring_id, PhysAddr client_head_mirror);
  StatusOr<PhysAddr> AllocMirror();
  StatusOr<uint32_t> AcquireReplySlot(uint32_t out_max);
  void ReleaseReplySlot(uint32_t slot);
  // Posts one request into the ring. `seq_inout`: 0 assigns a fresh
  // per-channel sequence (returned through the pointer); non-zero reuses it
  // (a retry must present the original sequence so the server dedups it).
  // `fail_fast_dead=false` lets liveness probes through to a peer currently
  // believed dead (it may have restarted).
  Status PostRpcRequest(RpcChannel* channel, RpcFuncId func, const void* in, uint32_t in_len,
                        PhysAddr reply_phys, uint32_t reply_max, uint32_t reply_slot,
                        Priority pri, uint32_t* seq_inout, bool fail_fast_dead = true);

  // Resolves the API timeout sentinels (types.h) and applies the hang-
  // backstop cap — the single home of the old duplicated clamp logic.
  uint64_t EffectiveTimeoutNs(uint64_t requested_ns) const;

  // The full client call: fail-fast dead check, send, reply wait, retry
  // loop. Rpc()/InternalRpc()/keepalives all funnel through here.
  struct RpcCallOpts {
    uint64_t timeout_ns = kDefaultTimeout;  // Per attempt.
    uint32_t max_retries = kUseParamRetries;
    bool fail_fast_dead = true;
  };
  static constexpr uint32_t kUseParamRetries = ~0u;
  Status RpcCall(NodeId server_node, RpcFuncId func, const void* in, uint32_t in_len, void* out,
                 uint32_t out_max, uint32_t* out_len, Priority pri, const RpcCallOpts& opts);

  // Server-side idempotence (poll thread): records `seq` as executed;
  // returns false if it already was (the caller then drops the duplicate and
  // replays the cached reply, if still cached).
  bool SeqFresh(ServerRing* ring, uint32_t seq);
  void RecordReplay(const ReplyToken& token, const void* data, uint32_t len);
  void ReplayReply(ServerRing* ring, const RpcReqHeader& hdr);

  // Resets an errored QP back to RTS (models the modify_qp reconnect round;
  // charges lite_qp_reconnect_ns). Caller holds the QP's pool mutex.
  void RecoverQp(lt::Qp* qp);
  // Posts a signaled WR and waits for its completion, retrying retryable
  // failures (drops) with backoff and QP recovery. Returns the successful
  // completion, or the last error. `qp_idx` pins the pool QP (the async
  // flush fence must land on the stream's own QP); -1 picks per attempt.
  StatusOr<lt::Completion> PostAndWait(NodeId dst, lt::WorkRequest* wr, Priority pri,
                                       int qp_idx = -1);

  // ---------------- async completion-handle engine (memops_async.cc) ----
  // Single-attempt RPC split the handle machinery retires through; the
  // public entry point is RpcAsync().
  StatusOr<uint32_t> RpcSend(NodeId server_node, RpcFuncId func, const void* in, uint32_t in_len,
                             uint32_t out_max, Priority pri = Priority::kHigh);
  Status RpcWait(uint32_t slot, void* out, uint32_t out_max, uint32_t* out_len,
                 uint64_t timeout_ns = kDefaultTimeout);

  // One posted WQE of an async memop (one chunk piece).
  struct AsyncWqe {
    NodeId dst = kInvalidNode;
    int qp_idx = -1;
    lt::WorkRequest wr;    // Retained so a failed WQE can be re-posted.
    bool signaled = false;
    bool posted = false;   // False: post failed at issue; retried at retire.
    uint64_t stream_pos = 0;
    bool done = false;     // Local pieces complete at issue time.
    uint64_t ready_at_ns = 0;
  };
  enum class AsyncOpState { kInFlight, kRetiring, kDone };
  struct AsyncOp {
    MemopHandle id = 0;
    AsyncOpState state = AsyncOpState::kInFlight;
    bool is_rpc = false;
    Priority pri = Priority::kHigh;
    std::vector<AsyncWqe> wqes;       // Memop ops.
    uint32_t rpc_slot = 0;            // RPC ops: reply rendezvous + output.
    void* rpc_out = nullptr;
    uint32_t rpc_out_max = 0;
    uint32_t* rpc_out_len = nullptr;
    Status result = Status::Ok();     // Valid once state == kDone.
    uint64_t ready_at_ns = 0;
  };
  // Per-(destination, QP) selective-signaling stream: which positions have a
  // harvested covering CQE, and which signaled WQEs are still pending.
  struct AsyncStream {
    uint64_t next_pos = 0;
    uint64_t covered_pos = 0;       // Positions < covered_pos are fenced.
    uint64_t covered_ready_ns = 0;  // Virtual time the fence completed.
    std::map<uint64_t, uint64_t> signaled_pending;  // stream_pos -> wr_id
  };

  // Issues one async memop (is_read selects direction); shared body of
  // ReadAsync/WriteAsync.
  StatusOr<MemopHandle> IssueAsyncMemop(Lh lh, uint64_t offset, void* buf, uint64_t len,
                                        Priority pri, bool is_read);
  // QP selection for async posts: sticky per (thread, destination) so a
  // pipelining thread's consecutive posts land on one QP and share doorbells
  // (PickQpIndex round-robins, which would break every batch).
  int PickQpIndexSticky(NodeId dst, Priority pri);
  // Re-posts a failed async WQE signaled, with the blocking path's retry
  // semantics (dead-peer fast fail, backoff, QP recovery).
  Status RetryAsyncWqe(AsyncOp* op, AsyncWqe* wqe);
  // Retires an RPC-kind op; drops the lock around the reply wait (the reply
  // is delivered by the poll thread, which never takes async_mu_).
  void RetireRpcUnlocked(std::unique_lock<std::mutex>& lock, AsyncOp* op);
  // Retires `op` (state must be kRetiring; async_mu_ held): harvests or
  // infers each WQE's completion, re-posting failed WQEs with the blocking
  // path's retry semantics, then marks the op kDone.
  void RetireMemopLocked(AsyncOp* op);
  // Retires the oldest in-flight op (backpressure path). Waits on the cv if
  // every outstanding op is already being retired by another thread.
  void RetireOldestLocked(std::unique_lock<std::mutex>& lock);
  // Finds a completion for `wr_id`: the shared harvest map first, then the
  // CQ itself (async CQEs exist from post time; only ready_at is future).
  std::optional<lt::Completion> TakeAsyncCompletionLocked(lt::Cq* cq, uint64_t wr_id);
  // Consumes a kDone op's result (erases the record).
  Status ConsumeAsyncLocked(std::map<MemopHandle, std::unique_ptr<AsyncOp>>::iterator it);

  BlockingQueue<RpcIncoming>* EnsureAppQueue(RpcFuncId func);
  void PollLoop();
  void HeadWriterLoop();
  void InternalWorkerLoop();
  void KeepaliveLoop();
  void HandleRequestImm(NodeId src, uint32_t imm, uint64_t vtime);
  void HandleReplyImm(uint32_t imm, uint32_t byte_len, uint64_t vtime);

  // Internal control-function implementations.
  void RegisterInternalHandlers();
  Status InternalRpc(NodeId server, RpcFuncId func, const WireWriterBytes& in,
                     std::vector<uint8_t>* out, uint64_t timeout_ns = kDefaultTimeout);
  Status InternalRpcOpts(NodeId server, RpcFuncId func, const WireWriterBytes& in,
                         std::vector<uint8_t>* out, const RpcCallOpts& opts);

  // Name service (lives at manager_node_).
  StatusOr<NodeId> LookupMasterNode(const std::string& name);

  // Registers this instance's lite.* metrics and probes with the node's
  // telemetry registry (constructor-time; pointers cached for the hot path).
  void RegisterTelemetry();

  // ---------------- data ----------------
  lt::Node* const node_;
  const NodeId manager_node_;

  uint32_t global_lkey_ = 0;
  uint32_t global_rkey_ = 0;
  std::vector<LiteInstance*> peers_;       // Indexed by node id (self included).
  std::vector<uint32_t> peer_global_rkey_;

  // Liveness: per-peer dead flags (relaxed atomics on the fail-fast path;
  // sized once in CreateQueuePairs, before traffic), and the manager-side
  // lease table (last real-time keepalive per node).
  std::unique_ptr<std::atomic<uint8_t>[]> peer_dead_;
  size_t peer_dead_n_ = 0;
  std::mutex lease_mu_;
  std::unordered_map<NodeId, uint64_t> lease_last_seen_;
  std::mutex keepalive_mu_;
  std::condition_variable keepalive_cv_;  // Wakes the keepalive thread on Stop.

  // Shared QP pool: qp_pool_[dst][k], k in [0, K). One mutex per QP
  // serializes synchronous users (the QP send queue is ordered anyway).
  std::vector<std::vector<lt::Qp*>> qp_pool_;
  std::vector<std::vector<std::unique_ptr<std::mutex>>> qp_mu_;
  lt::Cq* recv_cq_ = nullptr;

  // LMR registry for LMRs whose metadata lives here (creator node).
  mutable std::mutex meta_mu_;
  std::unordered_map<std::string, LmrMeta> metas_;

  // Name service (populated only on the manager node).
  std::mutex names_mu_;
  std::unordered_map<std::string, NodeId> names_;

  // Local handle table.
  mutable std::mutex lh_mu_;
  std::unordered_map<Lh, LhEntry> lh_table_;
  std::atomic<uint64_t> next_lh_{1};
  std::atomic<uint64_t> next_wr_id_{1};

  // Async completion-handle state (the completion ring). One mutex covers
  // the op table, the signaling streams, and the harvest map; the cv wakes
  // window-full issuers and waiters racing a concurrent retirer.
  mutable std::mutex async_mu_;
  std::condition_variable async_cv_;
  std::map<MemopHandle, std::unique_ptr<AsyncOp>> async_ops_;  // Oldest first.
  std::atomic<uint64_t> next_memop_handle_{1};
  size_t async_inflight_ = 0;  // Ops not yet kDone.
  std::map<std::pair<NodeId, int>, AsyncStream> async_streams_;
  std::unordered_map<uint64_t, lt::Completion> async_harvested_;  // wr_id -> CQE

  // RPC: client channels, server rings, reply slots.
  std::mutex channels_mu_;
  std::map<std::pair<NodeId, RpcFuncId>, std::unique_ptr<RpcChannel>> channels_;
  std::mutex rings_mu_;
  std::map<std::pair<NodeId, RpcFuncId>, std::unique_ptr<ServerRing>> rings_;
  std::vector<std::unique_ptr<ReplySlot>> reply_slots_;
  std::mutex slot_mu_;
  std::condition_variable slot_cv_;
  std::vector<uint32_t> free_slots_;
  PhysAddr reply_slab_ = 0;

  // Head-mirror slab: 8-byte words handed out bump-style.
  std::mutex mirror_mu_;
  PhysAddr mirror_slab_ = 0;
  uint64_t mirror_next_ = 0;
  uint64_t mirror_cap_ = 0;

  // Registered application RPC functions.
  std::mutex funcs_mu_;
  std::unordered_map<RpcFuncId, std::unique_ptr<BlockingQueue<RpcIncoming>>> app_queues_;

  // Internal control functions.
  std::unordered_map<RpcFuncId, InternalHandler> internal_handlers_;
  BlockingQueue<std::pair<RpcFuncId, RpcIncoming>> internal_queue_;

  // Messaging.
  BlockingQueue<MsgIncoming> msg_queue_;

  // Head updates published by the background thread (paper Fig. 9, step f).
  // Items carry the virtual time of the triggering dispatch so the writer
  // thread's clock tracks event time.
  BlockingQueue<std::pair<ServerRing*, uint64_t>> head_updates_;

  // Lock + barrier services.
  std::mutex locks_mu_;
  std::unordered_map<PhysAddr, LockQueue> lock_queues_;
  std::mutex barriers_mu_;
  std::unordered_map<std::string, BarrierState> barriers_;

  // QoS.
  QosManager qos_;

  // Service threads.
  std::vector<std::thread> threads_;
  std::atomic<bool> stopping_{false};
  lt::CpuMeter poll_cpu_;

  // Telemetry instruments (owned by the node's registry; cached pointers so
  // the hot path never does a name lookup).
  lt::telemetry::Counter* rpc_requests_ = nullptr;
  lt::telemetry::Counter* rpc_replies_ = nullptr;
  lt::telemetry::Counter* poll_wakeups_ = nullptr;
  lt::telemetry::Counter* poll_idle_wakeups_ = nullptr;
  lt::telemetry::FixedHistogram* poll_batch_hist_ = nullptr;

  // Failure-recovery instruments (docs/TELEMETRY.md, "Fault & recovery").
  lt::telemetry::Counter* rpc_retries_ = nullptr;
  lt::telemetry::Counter* rpc_dup_requests_ = nullptr;
  lt::telemetry::Counter* rpc_replayed_replies_ = nullptr;
  lt::telemetry::Counter* rpc_stale_replies_ = nullptr;
  lt::telemetry::Counter* rpc_zombie_reclaimed_ = nullptr;
  lt::telemetry::Counter* rpc_dead_fast_fail_ = nullptr;
  lt::telemetry::Counter* oneside_retries_ = nullptr;
  lt::telemetry::Counter* qp_reconnects_ = nullptr;
  // Async fast-path instruments (docs/TELEMETRY.md, "Async fast path").
  lt::telemetry::Counter* async_ops_issued_ = nullptr;
  lt::telemetry::Counter* async_inferred_ = nullptr;
  lt::telemetry::Counter* async_flush_fences_ = nullptr;
  lt::telemetry::Counter* liveness_marked_dead_ = nullptr;
  lt::telemetry::Counter* liveness_revived_ = nullptr;
  lt::telemetry::Counter* liveness_keepalives_ = nullptr;

  // This node's flight recorder (owned by NodeTelemetry; cached like the
  // counters above so recovery paths record breadcrumbs without a lookup).
  lt::telemetry::Journal* journal_ = nullptr;
};

}  // namespace lite

#endif  // SRC_LITE_INSTANCE_H_
