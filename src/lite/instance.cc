// LiteInstance core: construction, cluster wiring, service threads, and the
// local-memory helpers. One-sided posting lives in op_engine.cc; QP-pool
// management in qp_manager.cc; LMR/lh/name bookkeeping in lmr_table.cc.
#include "src/lite/instance.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "src/common/annotations.h"
#include "src/common/logging.h"
#include "src/common/timing.h"
#include "src/lite/ring.h"
#include "src/lite/wire.h"

namespace lite {

using lt::SpinFor;

namespace {

constexpr uint64_t kMirrorSlabBytes = 64 << 10;  // 8K head mirrors.

}  // namespace

LiteInstance::LiteInstance(lt::Node* node, NodeId manager_node)
    : node_(node),
      manager_node_(manager_node),
      qos_(node->params()),
      transport_(Transport::Create(node, &qos_)),
      lmrs_(node->id()),
      engine_(this) {
  // The single physical-address MR covering all of this node's memory: one
  // MPT entry on the RNIC, no MTT/PTE pressure at all (paper Sec. 4.1).
  auto mr = rnic().RegisterMrPhysical(0, node_->mem().size_bytes(), lt::kMrAll);
  assert(mr.ok());
  global_lkey_ = mr->lkey;
  global_rkey_ = mr->lkey;

  // The one shared receive CQ all pool QPs deliver into (paper Sec. 5.1).
  recv_cq_ = rnic().CreateCq();

  // Reply-slot slab.
  const auto& p = params();
  auto slab = node_->mem().AllocContiguous(p.lite_reply_slots * p.lite_reply_slot_bytes);
  assert(slab.ok());
  reply_slab_ = *slab;
  reply_slots_.reserve(p.lite_reply_slots);
  for (size_t i = 0; i < p.lite_reply_slots; ++i) {
    auto slot = std::make_unique<ReplySlot>();
    slot->buf_phys = reply_slab_ + i * p.lite_reply_slot_bytes;
    slot->buf_max = static_cast<uint32_t>(p.lite_reply_slot_bytes);
    reply_slots_.push_back(std::move(slot));
    free_slots_.push_back(static_cast<uint32_t>(i));
  }

  // Head-mirror slab.
  auto mirrors = node_->mem().AllocContiguous(kMirrorSlabBytes);
  assert(mirrors.ok());
  mirror_slab_ = *mirrors;
  mirror_cap_ = kMirrorSlabBytes / 8;

  if (p.lite_ring_enable) {
    cpu_rings_ = std::make_unique<SubmissionRings>(this);
  }

  RegisterInternalHandlers();
  RegisterTelemetry();
}

void LiteInstance::RegisterTelemetry() {
  lt::telemetry::Registry& reg = node_->telemetry().registry();
  rpc_requests_ = reg.GetCounter("lite.rpc.requests");
  rpc_replies_ = reg.GetCounter("lite.rpc.replies");
  poll_wakeups_ = reg.GetCounter("lite.poll.wakeups");
  poll_idle_wakeups_ = reg.GetCounter("lite.poll.idle_wakeups");
  poll_batch_hist_ = reg.GetHistogram("lite.rpc.poll_batch");
  // Fault & recovery instruments (docs/TELEMETRY.md).
  rpc_retries_ = reg.GetCounter("lite.rpc.retries");
  rpc_dup_requests_ = reg.GetCounter("lite.rpc.dup_requests");
  rpc_replayed_replies_ = reg.GetCounter("lite.rpc.replayed_replies");
  rpc_stale_replies_ = reg.GetCounter("lite.rpc.stale_replies");
  rpc_zombie_reclaimed_ = reg.GetCounter("lite.rpc.zombie_reclaimed");
  rpc_dead_fast_fail_ = reg.GetCounter("lite.rpc.dead_fast_fail");
  qp_reconnects_ = reg.GetCounter("lite.qp.reconnects");
  liveness_marked_dead_ = reg.GetCounter("lite.liveness.marked_dead");
  liveness_revived_ = reg.GetCounter("lite.liveness.revived");
  liveness_keepalives_ = reg.GetCounter("lite.liveness.keepalives");
  // Probes read this instance's existing counters at snapshot time only.
  reg.RegisterProbe("lite.rpc.ring_bytes", [this] { return rpc_ring_bytes_in_use(); });
  reg.RegisterProbe("lite.poll.cpu_ns", [this] { return poll_cpu_.TotalCpuNs(); });
  reg.RegisterProbe("lite.lh_count", [this] { return static_cast<uint64_t>(lh_count()); });
  reg.RegisterProbe("lite.qp_pool", [this] { return static_cast<uint64_t>(qp_pool_size()); });
  reg.RegisterProbe("lite.qos.admits", [this] { return qos_.admit_count(); });
  reg.RegisterProbe("lite.qos.throttled", [this] { return qos_.throttle_count(); });
  reg.RegisterProbe("lite.qos.throttle_delay_ns",
                    [this] { return qos_.low_pri_delay_total_ns(); });
  // Tracer loss visibility (spans overwritten in the ring, stamps past the
  // per-span event bound) — surfaced through StatSnapshot like any metric.
  lt::telemetry::Tracer* tracer = &node_->telemetry().tracer();
  reg.RegisterProbe("lite.trace.spans_dropped", [tracer] { return tracer->spans_dropped(); });
  reg.RegisterProbe("lite.trace.events_dropped", [tracer] { return tracer->events_dropped(); });
  // Flight recorder: cache the journal for recovery-path breadcrumbs, and
  // hand it (plus the shared counters) to the composed components.
  journal_ = &node_->telemetry().journal();
  qos_.SetJournal(journal_);
  transport_->RegisterTelemetry(reg, qp_reconnects_, journal_);
  engine_.RegisterTelemetry(reg, journal_);
  migration_.RegisterTelemetry(&reg, journal_);
  if (cpu_rings_ != nullptr) {
    cpu_rings_->RegisterTelemetry(reg);
  }
}

LiteInstance::~LiteInstance() { Stop(); }

void LiteInstance::ConnectPeer(LiteInstance* peer) {
  NodeId id = peer->node_id();
  if (peers_.size() <= id) {
    peers_.resize(id + 1, nullptr);
    peer_global_rkey_.resize(id + 1, 0);
  }
  peers_[id] = peer;
  peer_global_rkey_[id] = peer->global_rkey();
}

void LiteInstance::CreateQueuePairs() {
  // Liveness flags: sized once here (before any traffic) so the fail-fast
  // path can read them without bounds locking.
  peer_dead_n_ = peers_.size();
  peer_dead_ = std::make_unique<std::atomic<uint8_t>[]>(peer_dead_n_);
  for (size_t i = 0; i < peer_dead_n_; ++i) {
    peer_dead_[i].store(0, std::memory_order_relaxed);
  }
  std::vector<bool> connect(peers_.size(), false);
  for (NodeId dst = 0; dst < peers_.size(); ++dst) {
    connect[dst] = peers_[dst] != nullptr && dst != node_id();
  }
  transport_->Setup(connect, recv_cq_);
  // DC initiators resolve a destination's target QPN through the peer table
  // at attach time (lazy — nothing is wired until first traffic).
  transport_->SetDctResolver([this](NodeId n) {
    LiteInstance* peer = Peer(n);
    return peer != nullptr ? peer->DctQpn() : 0u;
  });
}

void LiteInstance::BootstrapControlChannel(LiteInstance* server) {
  // Idempotent: lazy bootstrap (GetChannel on a control-ring miss) may race
  // the eager setup loop or a concurrent first caller. Check before paying
  // for a mirror word, and keep the winner on an emplace race.
  {
    std::lock_guard<std::mutex> lock(channels_mu_);
    if (channels_.count({server->node_id(), kControlRingId}) > 0) {
      return;
    }
  }
  auto mirror = AllocMirror();
  assert(mirror.ok());
  ServerRing* ring = server->SetupServerRing(node_id(), kControlRingId, *mirror);
  assert(ring != nullptr);

  auto channel = std::make_unique<RpcChannel>();
  channel->server = server->node_id();
  channel->func = kControlRingId;
  channel->ring = {LmrChunk{server->node_id(), ring->ring.addr, ring->ring.size}};
  channel->ring_size = ring->ring_size;
  channel->head_mirror = *mirror;
  std::lock_guard<std::mutex> lock(channels_mu_);
  channels_.emplace(std::make_pair(server->node_id(), kControlRingId), std::move(channel));
}

void LiteInstance::Start() {
  stopping_.store(false);
  threads_.emplace_back([this] { PollLoop(); });
  threads_.emplace_back([this] { HeadWriterLoop(); });
  threads_.emplace_back([this] { InternalWorkerLoop(); });
  threads_.emplace_back([this] { InternalWorkerLoop(); });
  if (params().lite_keepalive_interval_ns > 0 && node_id() != manager_node_) {
    threads_.emplace_back([this] { KeepaliveLoop(); });
  }
}

void LiteInstance::Stop() {
  if (stopping_.exchange(true)) {
    return;
  }
  {
    // Pair with the keepalive thread's predicate check before waking it.
    std::lock_guard<std::mutex> lock(keepalive_mu_);
  }
  keepalive_cv_.notify_all();
  if (recv_cq_ != nullptr) {
    recv_cq_->Shutdown();
  }
  internal_queue_.Close();
  head_updates_.Close();
  msg_queue_.Close();
  {
    std::lock_guard<std::mutex> lock(funcs_mu_);
    for (auto& [func, queue] : app_queues_) {
      queue->Close();
    }
  }
  for (std::thread& t : threads_) {
    if (t.joinable()) {
      t.join();
    }
  }
  threads_.clear();
}

LiteInstance* LiteInstance::Peer(NodeId node) const {
  if (node >= peers_.size()) {
    return nullptr;
  }
  return peers_[node];
}

// ---------------------------------------------------------- local fast path

void LiteInstance::LocalCopyIn(PhysAddr dst, const void* src, uint64_t len) {
  const auto& p = params();
  SpinFor(p.local_op_base_ns +
          static_cast<uint64_t>(static_cast<double>(len) / p.local_copy_bytes_per_ns));
  lt::SimDmaCopy(node_->mem().Data(dst, len), src, len);
}

void LiteInstance::LocalCopyOut(void* dst, PhysAddr src, uint64_t len) {
  const auto& p = params();
  SpinFor(p.local_op_base_ns +
          static_cast<uint64_t>(static_cast<double>(len) / p.local_copy_bytes_per_ns));
  lt::SimDmaCopy(dst, node_->mem().Data(src, len), len);
}

// ------------------------------------------------------------- chunk math

std::vector<LiteInstance::ChunkPiece> LiteInstance::SliceChunks(
    const std::vector<LmrChunk>& chunks, uint64_t offset, uint64_t len) {
  std::vector<ChunkPiece> pieces;
  uint64_t chunk_start = 0;
  uint64_t user_off = 0;
  for (const LmrChunk& c : chunks) {
    uint64_t chunk_end = chunk_start + c.size;
    uint64_t lo = std::max(offset, chunk_start);
    uint64_t hi = std::min(offset + len, chunk_end);
    if (lo < hi) {
      pieces.push_back(ChunkPiece{c.node, c.addr + (lo - chunk_start), user_off, hi - lo});
      user_off += hi - lo;
    }
    chunk_start = chunk_end;
    if (chunk_start >= offset + len) {
      break;
    }
  }
  return pieces;
}

StatusOr<std::vector<LmrChunk>> LiteInstance::AllocLocalChunks(uint64_t size) {
  std::vector<LmrChunk> chunks;
  uint64_t remaining = size;
  while (remaining > 0) {
    uint64_t want = std::min<uint64_t>(remaining, params().lite_max_chunk_bytes);
    auto addr = node_->mem().AllocContiguous(want);
    // Under fragmentation, fall back to smaller physically-consecutive
    // pieces (the flexibility the LMR indirection buys, paper Sec. 4.1).
    while (!addr.ok() && want > params().page_size) {
      want /= 2;
      addr = node_->mem().AllocContiguous(want);
    }
    if (!addr.ok()) {
      FreeLocalChunks(chunks);
      return Status::ResourceExhausted("node out of physical memory for LMR");
    }
    chunks.push_back(LmrChunk{node_id(), *addr, want});
    remaining -= std::min(want, remaining);
  }
  return chunks;
}

void LiteInstance::FreeLocalChunks(const std::vector<LmrChunk>& chunks) {
  for (const LmrChunk& c : chunks) {
    if (c.node == node_id()) {
      (void)node_->mem().Free(c.addr);
    }
  }
}

// ------------------------------------------------------------- accounting

uint64_t LiteInstance::rpc_ring_bytes_in_use() const {
  uint64_t total = 0;
  // rings_mu_ is not const-friendly here; snapshot under lock.
  auto* self = const_cast<LiteInstance*>(this);
  std::lock_guard<std::mutex> lock(self->rings_mu_);
  for (const auto& [key, ring] : self->rings_) {
    total += ring->ring_size;
  }
  return total;
}

}  // namespace lite
