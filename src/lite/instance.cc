// LiteInstance core: construction, cluster wiring, service threads, and the
// one-sided operation engine every higher-level facility builds on.
#include "src/lite/instance.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "src/common/annotations.h"
#include "src/common/logging.h"
#include "src/common/timing.h"
#include "src/lite/wire.h"

namespace lite {

using lt::Completion;
using lt::NowNs;
using lt::Qp;
using lt::SpinFor;
using lt::WaitMode;
using lt::WcOpcode;
using lt::WorkRequest;
using lt::WrOpcode;

namespace {

constexpr uint64_t kMirrorSlabBytes = 64 << 10;  // 8K head mirrors.

}  // namespace

LiteInstance::LiteInstance(lt::Node* node, NodeId manager_node)
    : node_(node), manager_node_(manager_node), qos_(node->params()) {
  // The single physical-address MR covering all of this node's memory: one
  // MPT entry on the RNIC, no MTT/PTE pressure at all (paper Sec. 4.1).
  auto mr = rnic().RegisterMrPhysical(0, node_->mem().size_bytes(), lt::kMrAll);
  assert(mr.ok());
  global_lkey_ = mr->lkey;
  global_rkey_ = mr->lkey;

  // The one shared receive CQ all pool QPs deliver into (paper Sec. 5.1).
  recv_cq_ = rnic().CreateCq();

  // Reply-slot slab.
  const auto& p = params();
  auto slab = node_->mem().AllocContiguous(p.lite_reply_slots * p.lite_reply_slot_bytes);
  assert(slab.ok());
  reply_slab_ = *slab;
  reply_slots_.reserve(p.lite_reply_slots);
  for (size_t i = 0; i < p.lite_reply_slots; ++i) {
    auto slot = std::make_unique<ReplySlot>();
    slot->buf_phys = reply_slab_ + i * p.lite_reply_slot_bytes;
    slot->buf_max = static_cast<uint32_t>(p.lite_reply_slot_bytes);
    reply_slots_.push_back(std::move(slot));
    free_slots_.push_back(static_cast<uint32_t>(i));
  }

  // Head-mirror slab.
  auto mirrors = node_->mem().AllocContiguous(kMirrorSlabBytes);
  assert(mirrors.ok());
  mirror_slab_ = *mirrors;
  mirror_cap_ = kMirrorSlabBytes / 8;

  // lh values are per-node capabilities; embedding the node id guarantees a
  // handle leaked to another node can never alias a valid local one.
  next_lh_.store((static_cast<uint64_t>(node_->id()) << 32) + 1);

  RegisterInternalHandlers();
  RegisterTelemetry();
}

void LiteInstance::RegisterTelemetry() {
  lt::telemetry::Registry& reg = node_->telemetry().registry();
  rpc_requests_ = reg.GetCounter("lite.rpc.requests");
  rpc_replies_ = reg.GetCounter("lite.rpc.replies");
  poll_wakeups_ = reg.GetCounter("lite.poll.wakeups");
  poll_idle_wakeups_ = reg.GetCounter("lite.poll.idle_wakeups");
  poll_batch_hist_ = reg.GetHistogram("lite.rpc.poll_batch");
  // Fault & recovery instruments (docs/TELEMETRY.md).
  rpc_retries_ = reg.GetCounter("lite.rpc.retries");
  rpc_dup_requests_ = reg.GetCounter("lite.rpc.dup_requests");
  rpc_replayed_replies_ = reg.GetCounter("lite.rpc.replayed_replies");
  rpc_stale_replies_ = reg.GetCounter("lite.rpc.stale_replies");
  rpc_zombie_reclaimed_ = reg.GetCounter("lite.rpc.zombie_reclaimed");
  rpc_dead_fast_fail_ = reg.GetCounter("lite.rpc.dead_fast_fail");
  oneside_retries_ = reg.GetCounter("lite.oneside.retries");
  qp_reconnects_ = reg.GetCounter("lite.qp.reconnects");
  liveness_marked_dead_ = reg.GetCounter("lite.liveness.marked_dead");
  liveness_revived_ = reg.GetCounter("lite.liveness.revived");
  liveness_keepalives_ = reg.GetCounter("lite.liveness.keepalives");
  // Async fast-path instruments (docs/TELEMETRY.md, "Async fast path").
  async_ops_issued_ = reg.GetCounter("lite.async.ops");
  async_inferred_ = reg.GetCounter("lite.async.inferred_completions");
  async_flush_fences_ = reg.GetCounter("lite.async.flush_fences");
  reg.RegisterProbe("lite.async.in_flight",
                    [this] { return static_cast<uint64_t>(AsyncInFlight()); });
  // Probes read this instance's existing counters at snapshot time only.
  reg.RegisterProbe("lite.rpc.ring_bytes", [this] { return rpc_ring_bytes_in_use(); });
  reg.RegisterProbe("lite.poll.cpu_ns", [this] { return poll_cpu_.TotalCpuNs(); });
  reg.RegisterProbe("lite.lh_count", [this] { return static_cast<uint64_t>(lh_count()); });
  reg.RegisterProbe("lite.qp_pool", [this] { return static_cast<uint64_t>(qp_pool_size()); });
  reg.RegisterProbe("lite.qos.admits", [this] { return qos_.admit_count(); });
  reg.RegisterProbe("lite.qos.throttled", [this] { return qos_.throttle_count(); });
  reg.RegisterProbe("lite.qos.throttle_delay_ns",
                    [this] { return qos_.low_pri_delay_total_ns(); });
  // Tracer loss visibility (spans overwritten in the ring, stamps past the
  // per-span event bound) — surfaced through StatSnapshot like any metric.
  lt::telemetry::Tracer* tracer = &node_->telemetry().tracer();
  reg.RegisterProbe("lite.trace.spans_dropped", [tracer] { return tracer->spans_dropped(); });
  reg.RegisterProbe("lite.trace.events_dropped", [tracer] { return tracer->events_dropped(); });
  // Flight recorder: cache the journal for recovery-path breadcrumbs and let
  // the QoS throttle path record into it.
  journal_ = &node_->telemetry().journal();
  qos_.SetJournal(journal_);
}

LiteInstance::~LiteInstance() { Stop(); }

void LiteInstance::ConnectPeer(LiteInstance* peer) {
  NodeId id = peer->node_id();
  if (peers_.size() <= id) {
    peers_.resize(id + 1, nullptr);
    peer_global_rkey_.resize(id + 1, 0);
  }
  peers_[id] = peer;
  peer_global_rkey_[id] = peer->global_rkey();
}

void LiteInstance::CreateQueuePairs() {
  const int k = std::max(1, params().lite_qp_sharing_factor);
  qp_pool_.resize(peers_.size());
  qp_mu_.resize(peers_.size());
  // Liveness flags: sized once here (before any traffic) so the fail-fast
  // path can read them without bounds locking.
  peer_dead_n_ = peers_.size();
  peer_dead_ = std::make_unique<std::atomic<uint8_t>[]>(peer_dead_n_);
  for (size_t i = 0; i < peer_dead_n_; ++i) {
    peer_dead_[i].store(0, std::memory_order_relaxed);
  }
  for (NodeId dst = 0; dst < peers_.size(); ++dst) {
    if (peers_[dst] == nullptr || dst == node_id()) {
      continue;
    }
    for (int i = 0; i < k; ++i) {
      lt::Cq* send_cq = rnic().CreateCq();
      qp_pool_[dst].push_back(rnic().CreateQp(lt::QpType::kRc, send_cq, recv_cq_));
      qp_mu_[dst].push_back(std::make_unique<std::mutex>());
    }
  }
}

lt::Qp* LiteInstance::PoolQp(NodeId dst, int k) {
  if (dst >= qp_pool_.size() || static_cast<size_t>(k) >= qp_pool_[dst].size()) {
    return nullptr;
  }
  return qp_pool_[dst][k];
}

void LiteInstance::BootstrapControlChannel(LiteInstance* server) {
  auto mirror = AllocMirror();
  assert(mirror.ok());
  ServerRing* ring = server->SetupServerRing(node_id(), kControlRingId, *mirror);
  assert(ring != nullptr);

  auto channel = std::make_unique<RpcChannel>();
  channel->server = server->node_id();
  channel->func = kControlRingId;
  channel->ring = {LmrChunk{server->node_id(), ring->ring.addr, ring->ring.size}};
  channel->ring_size = ring->ring_size;
  channel->head_mirror = *mirror;
  std::lock_guard<std::mutex> lock(channels_mu_);
  channels_[{server->node_id(), kControlRingId}] = std::move(channel);
}

void LiteInstance::Start() {
  stopping_.store(false);
  threads_.emplace_back([this] { PollLoop(); });
  threads_.emplace_back([this] { HeadWriterLoop(); });
  threads_.emplace_back([this] { InternalWorkerLoop(); });
  threads_.emplace_back([this] { InternalWorkerLoop(); });
  if (params().lite_keepalive_interval_ns > 0 && node_id() != manager_node_) {
    threads_.emplace_back([this] { KeepaliveLoop(); });
  }
}

void LiteInstance::Stop() {
  if (stopping_.exchange(true)) {
    return;
  }
  {
    // Pair with the keepalive thread's predicate check before waking it.
    std::lock_guard<std::mutex> lock(keepalive_mu_);
  }
  keepalive_cv_.notify_all();
  if (recv_cq_ != nullptr) {
    recv_cq_->Shutdown();
  }
  internal_queue_.Close();
  head_updates_.Close();
  msg_queue_.Close();
  {
    std::lock_guard<std::mutex> lock(funcs_mu_);
    for (auto& [func, queue] : app_queues_) {
      queue->Close();
    }
  }
  for (std::thread& t : threads_) {
    if (t.joinable()) {
      t.join();
    }
  }
  threads_.clear();
}

LiteInstance* LiteInstance::Peer(NodeId node) const {
  if (node >= peers_.size()) {
    return nullptr;
  }
  return peers_[node];
}

// ------------------------------------------------------------ QP selection

int LiteInstance::PickQpIndex(NodeId dst, Priority pri) {
  if (dst >= qp_pool_.size() || qp_pool_[dst].empty()) {
    return -1;
  }
  const int k = static_cast<int>(qp_pool_[dst].size());
  auto [lo, hi] = qos_.QpRange(pri, k);
  if (hi <= lo) {
    lo = 0;
    hi = k;
  }
  // Cheap per-thread spreading across the allowed slots.
  static thread_local uint32_t t_counter = 0;
  return lo + static_cast<int>(t_counter++ % static_cast<uint32_t>(hi - lo));
}

// ------------------------------------------------------- one-sided engine

void LiteInstance::LocalCopyIn(PhysAddr dst, const void* src, uint64_t len) {
  const auto& p = params();
  SpinFor(p.local_op_base_ns +
          static_cast<uint64_t>(static_cast<double>(len) / p.local_copy_bytes_per_ns));
  lt::SimDmaCopy(node_->mem().Data(dst, len), src, len);
}

void LiteInstance::LocalCopyOut(void* dst, PhysAddr src, uint64_t len) {
  const auto& p = params();
  SpinFor(p.local_op_base_ns +
          static_cast<uint64_t>(static_cast<double>(len) / p.local_copy_bytes_per_ns));
  lt::SimDmaCopy(dst, node_->mem().Data(src, len), len);
}

void LiteInstance::RecoverQp(lt::Qp* qp) {
  // Models the driver's modify_qp cycle ERR -> RESET -> INIT -> RTR -> RTS
  // after a transport error (caller holds the QP's pool mutex).
  SpinFor(params().lite_qp_reconnect_ns);
  qp->ResetToRts();
  qp_reconnects_->Inc();
  if (journal_ != nullptr) {
    journal_->Record(lt::telemetry::JournalEvent::kQpRecover, qp->remote_node(), qp->qpn());
  }
}

StatusOr<Completion> LiteInstance::PostAndWait(NodeId dst, WorkRequest* wr, Priority pri,
                                               int qp_idx) {
  const uint32_t max_retries = params().lite_rpc_max_retries;
  uint64_t backoff_ns = params().lite_rpc_retry_backoff_ns;
  Status last = Status::Timeout("one-sided completion timeout");
  for (uint32_t attempt = 0; attempt <= max_retries; ++attempt) {
    if (attempt > 0) {
      oneside_retries_->Inc();
      lt::IdleFor(backoff_ns);
      if (journal_ != nullptr) {
        journal_->Record(lt::telemetry::JournalEvent::kOnesideRetry, dst, attempt);
      }
      backoff_ns *= 2;
      if (PeerDead(dst)) {
        rpc_dead_fast_fail_->Inc();
        return Status::Unavailable("peer marked dead by liveness service");
      }
    }
    int idx = qp_idx >= 0 ? qp_idx : PickQpIndex(dst, pri);
    if (idx < 0 || dst >= qp_pool_.size() ||
        idx >= static_cast<int>(qp_pool_[dst].size())) {
      return Status::Unavailable("no QP to destination node");
    }
    Qp* qp = qp_pool_[dst][idx];
    wr->wr_id = next_wr_id_.fetch_add(1);
    {
      // The QP lock covers only the post; waiting happens outside so threads
      // sharing a pool QP overlap their in-flight ops (the whole point of
      // the shared pool, Sec. 6.1).
      std::lock_guard<std::mutex> lock(*qp_mu_[dst][idx]);
      if (qp->in_error()) {
        RecoverQp(qp);
      }
      Status posted = rnic().PostSend(qp, *wr);
      if (!posted.ok()) {
        last = posted;
        if (posted.code() == lt::StatusCode::kFailedPrecondition) {
          continue;  // Lost a race to a concurrent error; recover and retry.
        }
        return posted;
      }
    }
    auto c = qp->send_cq()->WaitPollFor(wr->wr_id, params().lite_rpc_timeout_ns,
                                        WaitMode::kBusyPoll);
    if (!c.has_value()) {
      last = Status::Timeout("one-sided completion timeout");
      continue;
    }
    if (c->status.ok()) {
      return *c;
    }
    last = c->status;
    const lt::StatusCode code = last.code();
    if (code != lt::StatusCode::kUnavailable && code != lt::StatusCode::kTimeout) {
      return last;  // Non-transient (permission, bounds): do not retry.
    }
  }
  return last;
}

Status LiteInstance::OneSidedWrite(NodeId dst, PhysAddr dst_addr, const void* src, uint64_t len,
                                   Priority pri, bool signaled) {
  qos_.Admit(pri, len);
  if (dst == node_id()) {
    LocalCopyIn(dst_addr, src, len);
    return Status::Ok();
  }
  WorkRequest wr;
  wr.opcode = WrOpcode::kWrite;
  wr.host_local = const_cast<void*>(src);
  wr.length = len;
  wr.rkey = peer_global_rkey_[dst];
  wr.remote_addr = dst_addr;
  wr.signaled = signaled;
  if (!signaled) {
    // Fire-and-forget (head-mirror publishes): errors surface on the next
    // signaled user of the QP; recover here so one drop cannot wedge it.
    int idx = PickQpIndex(dst, pri);
    if (idx < 0) {
      return Status::Unavailable("no QP to destination node");
    }
    Qp* qp = qp_pool_[dst][idx];
    wr.wr_id = 0;
    std::lock_guard<std::mutex> lock(*qp_mu_[dst][idx]);
    if (qp->in_error()) {
      RecoverQp(qp);
    }
    return rnic().PostSend(qp, wr);
  }
  const uint64_t start = NowNs();
  auto c = PostAndWait(dst, &wr, pri);
  if (!c.ok()) {
    return c.status();
  }
  lt::telemetry::StampStage(lt::telemetry::TraceStage::kCompletion, c->ready_at_ns);
  if (pri == Priority::kHigh) {
    qos_.RecordHighPriRtt(NowNs() - start);
  }
  return Status::Ok();
}

Status LiteInstance::OneSidedWriteImm(NodeId dst, PhysAddr dst_addr, const void* src, uint64_t len,
                                      uint32_t imm, Priority pri) {
  qos_.Admit(pri, len);
  if (dst == node_id()) {
    // Loopback: copy locally and deliver the IMM to our own receive CQ so the
    // poll thread handles it uniformly.
    if (len > 0) {
      LocalCopyIn(dst_addr, src, len);
    }
    Completion c;
    c.opcode = WcOpcode::kRecvImm;
    c.has_imm = true;
    c.imm = imm;
    c.byte_len = static_cast<uint32_t>(len);
    c.src_node = node_id();
    c.ready_at_ns = NowNs() + params().rnic_completion_ns;
    recv_cq_->Push(std::move(c));
    return Status::Ok();
  }
  int idx = PickQpIndex(dst, pri);
  if (idx < 0) {
    return Status::Unavailable("no QP to destination node");
  }
  Qp* qp = qp_pool_[dst][idx];
  WorkRequest wr;
  wr.opcode = WrOpcode::kWriteImm;
  wr.host_local = const_cast<void*>(src);
  wr.length = len;
  wr.rkey = peer_global_rkey_[dst];
  wr.remote_addr = dst_addr;
  wr.imm = imm;
  wr.signaled = false;  // Failures detected by reply timeout (paper Sec. 5.1).
  std::lock_guard<std::mutex> lock(*qp_mu_[dst][idx]);
  if (qp->in_error()) {
    RecoverQp(qp);  // A prior drop errored this QP; reconnect before posting.
  }
  return rnic().PostSend(qp, wr);
}

Status LiteInstance::OneSidedRead(NodeId src_node, PhysAddr src_addr, void* dst, uint64_t len,
                                  Priority pri) {
  qos_.Admit(pri, len);
  if (src_node == node_id()) {
    LocalCopyOut(dst, src_addr, len);
    return Status::Ok();
  }
  WorkRequest wr;
  wr.opcode = WrOpcode::kRead;
  wr.host_local = dst;
  wr.length = len;
  wr.rkey = peer_global_rkey_[src_node];
  wr.remote_addr = src_addr;
  wr.signaled = true;

  const uint64_t start = NowNs();
  auto c = PostAndWait(src_node, &wr, pri);
  if (!c.ok()) {
    return c.status();
  }
  lt::telemetry::StampStage(lt::telemetry::TraceStage::kCompletion, c->ready_at_ns);
  if (pri == Priority::kHigh) {
    qos_.RecordHighPriRtt(NowNs() - start);
  }
  return Status::Ok();
}

StatusOr<uint64_t> LiteInstance::RemoteAtomic(NodeId dst, PhysAddr addr, bool is_cas,
                                              uint64_t compare_add, uint64_t swap) {
  if (addr % 8 != 0) {
    return Status::InvalidArgument("atomic target not 8-byte aligned");
  }
  qos_.Admit(Priority::kHigh, 8);
  if (dst == node_id()) {
    SpinFor(params().local_op_base_ns + params().rnic_atomic_extra_ns / 2);
    uint8_t* p = node_->mem().Data(addr, 8);
    // Serialize against remote atomics through the same responder path.
    uint64_t old_value;
    if (is_cas) {
      uint64_t expected = compare_add;
      __atomic_compare_exchange_n(reinterpret_cast<uint64_t*>(p), &expected, swap, false,
                                  __ATOMIC_SEQ_CST, __ATOMIC_SEQ_CST);
      old_value = expected;
    } else {
      old_value = __atomic_fetch_add(reinterpret_cast<uint64_t*>(p), compare_add, __ATOMIC_SEQ_CST);
    }
    return old_value;
  }
  uint64_t old_value = 0;
  WorkRequest wr;
  wr.opcode = is_cas ? WrOpcode::kCmpSwap : WrOpcode::kFetchAdd;
  wr.rkey = peer_global_rkey_[dst];
  wr.remote_addr = addr;
  wr.compare_add = compare_add;
  wr.swap = swap;
  wr.atomic_result = &old_value;
  wr.signaled = true;
  // Retry is exactly-once here: a dropped atomic is rejected by the
  // responder before the memory operation is applied (see ExecuteAtomic).
  auto c = PostAndWait(dst, &wr, Priority::kHigh);
  if (!c.ok()) {
    return c.status();
  }
  return old_value;
}

// ------------------------------------------------------------ lh plumbing

Lh LiteInstance::InsertLh(LhEntry entry) {
  Lh lh = next_lh_.fetch_add(1);
  std::lock_guard<std::mutex> lock(lh_mu_);
  lh_table_[lh] = std::move(entry);
  return lh;
}

StatusOr<LiteInstance::LhEntry> LiteInstance::GetLh(Lh lh) const {
  std::lock_guard<std::mutex> lock(lh_mu_);
  auto it = lh_table_.find(lh);
  if (it == lh_table_.end()) {
    return Status::NotFound("unknown or invalidated lh");
  }
  return it->second;
}

Status LiteInstance::CheckAccess(const LhEntry& e, uint64_t offset, uint64_t len,
                                 uint32_t need) const {
  if ((e.perm & need) != need) {
    return Status::PermissionDenied("lh lacks required permission");
  }
  if (offset + len > e.size || offset + len < offset) {
    return Status::OutOfRange("access outside LMR bounds");
  }
  return Status::Ok();
}

std::vector<LiteInstance::ChunkPiece> LiteInstance::SliceChunks(
    const std::vector<LmrChunk>& chunks, uint64_t offset, uint64_t len) {
  std::vector<ChunkPiece> pieces;
  uint64_t chunk_start = 0;
  uint64_t user_off = 0;
  for (const LmrChunk& c : chunks) {
    uint64_t chunk_end = chunk_start + c.size;
    uint64_t lo = std::max(offset, chunk_start);
    uint64_t hi = std::min(offset + len, chunk_end);
    if (lo < hi) {
      pieces.push_back(ChunkPiece{c.node, c.addr + (lo - chunk_start), user_off, hi - lo});
      user_off += hi - lo;
    }
    chunk_start = chunk_end;
    if (chunk_start >= offset + len) {
      break;
    }
  }
  return pieces;
}

StatusOr<std::vector<LmrChunk>> LiteInstance::AllocLocalChunks(uint64_t size) {
  std::vector<LmrChunk> chunks;
  uint64_t remaining = size;
  while (remaining > 0) {
    uint64_t want = std::min<uint64_t>(remaining, params().lite_max_chunk_bytes);
    auto addr = node_->mem().AllocContiguous(want);
    // Under fragmentation, fall back to smaller physically-consecutive
    // pieces (the flexibility the LMR indirection buys, paper Sec. 4.1).
    while (!addr.ok() && want > params().page_size) {
      want /= 2;
      addr = node_->mem().AllocContiguous(want);
    }
    if (!addr.ok()) {
      FreeLocalChunks(chunks);
      return Status::ResourceExhausted("node out of physical memory for LMR");
    }
    chunks.push_back(LmrChunk{node_id(), *addr, want});
    remaining -= std::min(want, remaining);
  }
  return chunks;
}

void LiteInstance::FreeLocalChunks(const std::vector<LmrChunk>& chunks) {
  for (const LmrChunk& c : chunks) {
    if (c.node == node_id()) {
      (void)node_->mem().Free(c.addr);
    }
  }
}

// ------------------------------------------------------------- accounting

size_t LiteInstance::qp_pool_size() const {
  size_t n = 0;
  for (const auto& per_dst : qp_pool_) {
    n += per_dst.size();
  }
  return n;
}

size_t LiteInstance::lh_count() const {
  std::lock_guard<std::mutex> lock(lh_mu_);
  return lh_table_.size();
}

uint64_t LiteInstance::rpc_ring_bytes_in_use() const {
  uint64_t total = 0;
  // rings_mu_ is not const-friendly here; snapshot under lock.
  auto* self = const_cast<LiteInstance*>(this);
  std::lock_guard<std::mutex> lock(self->rings_mu_);
  for (const auto& [key, ring] : self->rings_) {
    total += ring->ring_size;
  }
  return total;
}

}  // namespace lite
