// DcTransport — the DC-style virtualized implementation of Transport
// (DESIGN.md §10): a bounded node-wide pool of lite_dc_qp_pool initiator
// QPs that attach to any destination on demand, plus one target QP (the
// DCT) every remote initiator addresses. Attaching an initiator to a new
// peer charges lite_dc_connect_ns (the µs-scale re-target of real DC
// hardware); per-destination affinity keeps hot peers attached so steady
// traffic pays it once. QP state is O(pool) instead of O(peers), and the
// responder side of every node is a single QP context — the two properties
// that let the fig14 sweep reach 1000 nodes with a warm QPC cache.
#ifndef SRC_LITE_DC_TRANSPORT_H_
#define SRC_LITE_DC_TRANSPORT_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "src/lite/transport.h"

namespace lite {

class DcTransport : public Transport {
 public:
  DcTransport(lt::Node* node, QosManager* qos) : Transport(node, qos) {}

  lt::LiteTransport mode() const override { return lt::LiteTransport::kDc; }

  void Setup(const std::vector<bool>& connect, lt::Cq* recv_cq) override;

  // DC leasing is affinity-first (a destination's last slot), then any
  // unowned slot, then a round-robin steal inside the QoS band. Sticky and
  // plain leases share the policy: affinity already pins (dst -> slot), so
  // consecutive posts to a hot peer land on one QP and batch doorbells.
  TransportHandle Lease(NodeId dst, Priority pri) override;
  TransportHandle LeaseSticky(NodeId dst, Priority pri) override { return Lease(dst, pri); }

  bool Valid(const TransportHandle& h) const override {
    return h.slot >= 0 && h.slot < static_cast<int32_t>(slots_.size()) &&
           h.dst < known_peers_ && h.dst != node_->id();
  }
  lt::Qp* Qp(const TransportHandle& h) const override { return slots_[h.slot].qp; }
  std::mutex& Mu(const TransportHandle& h) const override { return *slots_[h.slot].mu; }

  // DC prepare: recover an errored QP, then re-attach it to h.dst if the
  // slot was stolen for another peer since this handle's lease (the steal
  // is detected from the QP's connection target — ground truth under the
  // slot mutex). Returns true iff an error recovery ran.
  bool Prepare(const TransportHandle& h) override;

  size_t TotalQps() const override { return slots_.size() + (target_ != nullptr ? 1 : 0); }

  uint32_t TargetQpn() const override { return target_ != nullptr ? target_->qpn() : 0; }
  void SetDctResolver(std::function<uint32_t(NodeId)> resolver) override {
    dct_resolver_ = std::move(resolver);
  }

  void RegisterTelemetry(lt::telemetry::Registry& reg, lt::telemetry::Counter* reconnects,
                         lt::telemetry::Journal* journal) override;

  // Introspection for tests/benches.
  uint64_t attaches() const { return attaches_.load(std::memory_order_relaxed); }
  uint64_t detaches() const { return detaches_.load(std::memory_order_relaxed); }
  uint64_t steals() const { return steals_.load(std::memory_order_relaxed); }

 private:
  struct Slot {
    lt::Qp* qp = nullptr;                   // kDcIni; own send CQ.
    std::unique_ptr<std::mutex> mu;         // Serializes posts + re-targets.
    // Affinity bookkeeping only (policy hint for Lease); the QP's own
    // connection target is the source of truth for Prepare.
    std::atomic<NodeId> owner{kInvalidNode};
  };

  // Attaches `slot`'s QP to `dst` (Connect + lite_dc_connect_ns charge +
  // attach/detach accounting). Caller holds the slot mutex.
  void Attach(Slot& slot, NodeId dst);

  std::vector<Slot> slots_;
  lt::Qp* target_ = nullptr;  // This node's DCT (recv side).
  size_t known_peers_ = 0;    // connect.size() at Setup.

  // Last slot that served each destination (lock-free hint).
  std::vector<std::atomic<int32_t>> affinity_;
  std::atomic<uint32_t> steal_rr_{0};

  std::function<uint32_t(NodeId)> dct_resolver_;

  std::atomic<uint64_t> attaches_{0};
  std::atomic<uint64_t> detaches_{0};
  std::atomic<uint64_t> steals_{0};
  lt::telemetry::Counter* attaches_ctr_ = nullptr;
  lt::telemetry::Counter* detaches_ctr_ = nullptr;
  lt::telemetry::Counter* steals_ctr_ = nullptr;
  lt::telemetry::FixedHistogram* connect_hist_ = nullptr;
};

}  // namespace lite

#endif  // SRC_LITE_DC_TRANSPORT_H_
