// Live LMR migration: the epoch-fenced ownership guard (MigrationState) and
// the coordinator state machine + control-plane handlers, all declared in
// migration.h / instance.h. See DESIGN.md "Epoch-fenced ownership & live
// migration" for the phase diagram and abort rules.
#include "src/lite/migration.h"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "src/common/logging.h"
#include "src/common/timing.h"
#include "src/lite/instance.h"
#include "src/lite/wire.h"

namespace lite {

using lt::NowNs;
using lt::telemetry::JournalEvent;
using lt::telemetry::PackLink;
using lt::telemetry::PackName8;

namespace {

// Real-time bound on one fence park. The fence spans one token drain, one
// bounded re-copy, and one activate RPC — milliseconds of real time — so a
// park that outlives this cap means the coordinator is wedged; the op then
// surfaces kBusy and rides the issuer's transient-retry loop back here.
constexpr uint64_t kParkCapRealNs = 2'000'000'000ull;

// Merges [begin, end) into an interval map keyed by range start.
void InsertInterval(std::map<uint64_t, uint64_t>* m, uint64_t begin, uint64_t end) {
  if (begin >= end) {
    return;
  }
  auto it = m->upper_bound(begin);
  if (it != m->begin()) {
    auto prev = std::prev(it);
    if (prev->second >= begin) {
      begin = prev->first;
      end = std::max(end, prev->second);
      m->erase(prev);
    }
  }
  while (it != m->end() && it->first <= end) {
    end = std::max(end, it->second);
    it = m->erase(it);
  }
  (*m)[begin] = end;
}

}  // namespace

// =============================================================== guard side

void MigrationState::RegisterTelemetry(lt::telemetry::Registry* registry,
                                       lt::telemetry::Journal* journal) {
  journal_ = journal;
  started_ = registry->GetCounter("lite.migrate.started");
  committed_ = registry->GetCounter("lite.migrate.committed");
  aborted_ = registry->GetCounter("lite.migrate.aborted");
  rounds_ = registry->GetCounter("lite.migrate.rounds");
  bytes_copied_ = registry->GetCounter("lite.migrate.bytes_copied");
  dirty_bytes_ = registry->GetCounter("lite.migrate.dirty_bytes");
  parked_ops_ = registry->GetCounter("lite.migrate.parked_ops");
  stale_nacks_ = registry->GetCounter("lite.migrate.stale_nacks");
  redirects_ = registry->GetCounter("lite.migrate.redirects");
  drained_lmrs_ = registry->GetCounter("lite.migrate.drained_lmrs");
}

std::shared_ptr<MigrationRecord> MigrationState::FindRange(PhysAddr addr, uint64_t len) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = ranges_.upper_bound(addr);
  if (it != ranges_.begin()) {
    auto prev = std::prev(it);
    if (addr < prev->second.end) {
      return prev->second.rec;
    }
  }
  // Defensive: an access starting below a range but reaching into it (cannot
  // happen for chunk-sliced pieces, which never cross a chunk boundary).
  if (it != ranges_.end() && it->first < addr + len) {
    return it->second.rec;
  }
  return nullptr;
}

void MigrationState::AddDirtyLocked(MigrationRecord* rec, PhysAddr addr, uint64_t len) {
  for (size_t i = 0; i < rec->old_chunks.size(); ++i) {
    const LmrChunk& c = rec->old_chunks[i];
    if (addr >= c.addr && addr < c.addr + c.size) {
      const uint64_t off = rec->chunk_lmr_base[i] + (addr - c.addr);
      const uint64_t take = std::min(len, c.addr + c.size - addr);
      InsertInterval(&rec->dirty, off, off + take);
      return;
    }
  }
}

MigrationState::Gate MigrationState::OpenAccess(PhysAddr addr, uint64_t len, bool is_write,
                                                NodeId requester, uint64_t park_cap_real_ns,
                                                AccessGate* gate) {
  std::shared_ptr<MigrationRecord> rec = FindRange(addr, len);
  if (rec == nullptr) {
    return Gate::kClear;
  }
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::nanoseconds(park_cap_real_ns == 0 ? kParkCapRealNs
                                                                       : park_cap_real_ns);
  std::unique_lock<std::mutex> lock(rec->mu);
  bool parked = false;
  while (true) {
    switch (rec->phase) {
      case MigrationPhase::kCommitted: {
        // The LMR left this node: NACK so the issuer re-resolves the home.
        const uint64_t unpark = rec->unpark_vtime_ns;
        const uint64_t epoch = rec->old_epoch;
        lock.unlock();
        if (parked) {
          lt::SyncClockTo(unpark);
        }
        if (stale_nacks_ != nullptr) {
          stale_nacks_->Inc();
        }
        if (journal_ != nullptr) {
          journal_->Record(JournalEvent::kStaleHomeNack, requester, epoch);
        }
        return Gate::kStale;
      }
      case MigrationPhase::kAborted: {
        // The record is inert; this node stays home. No token needed.
        const uint64_t unpark = rec->unpark_vtime_ns;
        lock.unlock();
        if (parked) {
          lt::SyncClockTo(unpark);
        }
        return Gate::kClear;
      }
      case MigrationPhase::kMirror:
      case MigrationPhase::kConverge:
        // Proceed under a token; writes are dirty-logged at CloseAccess
        // (after the data landed), so the coordinator re-copies them.
        ++rec->tokens;
        gate->rec = rec;
        gate->addr = addr;
        gate->len = len;
        gate->is_write = is_write;
        return Gate::kClear;
      case MigrationPhase::kIdle:
      case MigrationPhase::kFence: {
        // Park: a real-time condvar wait charging zero virtual time. On
        // unpark the waiter jumps its clock to the coordinator's
        // commit/abort point, so measured downtime is the fence's virtual
        // span, not the wall time the coordinator happened to take.
        if (!parked) {
          parked = true;
          if (parked_ops_ != nullptr) {
            parked_ops_->Inc();
          }
        }
        if (rec->cv.wait_until(lock, deadline) == std::cv_status::timeout &&
            (rec->phase == MigrationPhase::kFence || rec->phase == MigrationPhase::kIdle)) {
          return Gate::kBusy;
        }
        break;
      }
    }
  }
}

void MigrationState::CloseAccess(AccessGate* gate, bool success) {
  if (gate->rec == nullptr) {
    return;
  }
  std::shared_ptr<MigrationRecord> rec = std::move(gate->rec);
  {
    std::lock_guard<std::mutex> lock(rec->mu);
    if (success && gate->is_write && rec->phase != MigrationPhase::kAborted) {
      AddDirtyLocked(rec.get(), gate->addr, gate->len);
    }
    if (rec->tokens > 0) {
      --rec->tokens;
    }
  }
  rec->cv.notify_all();
}

// ========================================================= coordinator side

StatusOr<std::shared_ptr<MigrationRecord>> MigrationState::Begin(
    const std::string& name, NodeId src, NodeId dst, uint64_t old_epoch,
    const std::vector<LmrChunk>& chunks, uint64_t lmr_size) {
  auto rec = std::make_shared<MigrationRecord>();
  rec->name = name;
  rec->src = src;
  rec->dst = dst;
  rec->old_epoch = old_epoch;
  rec->old_chunks = chunks;
  uint64_t base = 0;
  for (const LmrChunk& c : chunks) {
    rec->chunk_lmr_base.push_back(base);
    base += c.size;
  }
  if (base != lmr_size) {
    return Status::Internal("LMR chunk placement does not cover its size");
  }
  rec->phase = MigrationPhase::kMirror;

  std::lock_guard<std::mutex> lock(mu_);
  auto it = records_.find(name);
  if (it != records_.end()) {
    // A clean abort leaves an inert record. A committed tombstone is stale
    // once the LMR has migrated back here at an epoch >= the one it left
    // with (its quarantined ranges stay armed below). Either one may be
    // replaced; anything else is a migration genuinely in flight.
    const bool inert = it->second->phase == MigrationPhase::kAborted;
    const bool superseded = it->second->phase == MigrationPhase::kCommitted &&
                            it->second->new_epoch <= old_epoch;
    if (!inert && !superseded) {
      return Status::FailedPrecondition("LMR already migrating or already migrated away");
    }
    records_.erase(it);
  }
  for (const LmrChunk& c : chunks) {
    ranges_[c.addr] = RangeRef{c.addr + c.size, rec};
  }
  records_[name] = rec;
  armed_.store(records_.size() + ranges_.size(), std::memory_order_relaxed);
  return rec;
}

void MigrationState::SetPhase(const std::shared_ptr<MigrationRecord>& rec, MigrationPhase phase) {
  {
    std::lock_guard<std::mutex> lock(rec->mu);
    rec->phase = phase;
  }
  rec->cv.notify_all();
  if (journal_ != nullptr) {
    journal_->Record(JournalEvent::kMigratePhase, PackName8(rec->name.c_str()),
                     static_cast<uint64_t>(phase));
  }
}

bool MigrationState::DrainTokens(const std::shared_ptr<MigrationRecord>& rec,
                                 uint64_t cap_real_ns) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::nanoseconds(cap_real_ns);
  std::unique_lock<std::mutex> lock(rec->mu);
  while (rec->tokens > 0) {
    if (rec->cv.wait_until(lock, deadline) == std::cv_status::timeout && rec->tokens > 0) {
      return false;
    }
  }
  return true;
}

std::map<uint64_t, uint64_t> MigrationState::TakeDirty(
    const std::shared_ptr<MigrationRecord>& rec) {
  std::lock_guard<std::mutex> lock(rec->mu);
  std::map<uint64_t, uint64_t> dirty = std::move(rec->dirty);
  rec->dirty.clear();
  return dirty;
}

void MigrationState::Commit(const std::shared_ptr<MigrationRecord>& rec, NodeId new_home,
                            uint64_t new_epoch, std::vector<LmrChunk> new_chunks,
                            uint64_t unpark_vtime_ns) {
  {
    std::lock_guard<std::mutex> lock(rec->mu);
    rec->phase = MigrationPhase::kCommitted;
    rec->new_home = new_home;
    rec->new_epoch = new_epoch;
    rec->new_chunks = std::move(new_chunks);
    rec->unpark_vtime_ns = unpark_vtime_ns;
    rec->dirty.clear();
  }
  // The record stays in records_ (tombstone for kFnStaleHome) and its old
  // ranges stay in ranges_ forever: a stale-epoch access must keep resolving
  // here so the gate can NACK it, which means the old physical ranges are
  // quarantined — never freed, never reused (deliberate bounded leak;
  // DESIGN.md "Quarantine rule").
  rec->cv.notify_all();
}

void MigrationState::Abort(const std::shared_ptr<MigrationRecord>& rec,
                           uint64_t unpark_vtime_ns) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const LmrChunk& c : rec->old_chunks) {
      auto it = ranges_.find(c.addr);
      if (it != ranges_.end() && it->second.rec == rec) {
        ranges_.erase(it);
      }
    }
    auto it = records_.find(rec->name);
    if (it != records_.end() && it->second == rec) {
      records_.erase(it);
    }
    armed_.store(records_.size() + ranges_.size(), std::memory_order_relaxed);
  }
  {
    std::lock_guard<std::mutex> lock(rec->mu);
    rec->phase = MigrationPhase::kAborted;
    rec->unpark_vtime_ns = unpark_vtime_ns;
    rec->dirty.clear();
  }
  rec->cv.notify_all();
}

StatusOr<StaleRedirect> MigrationState::LookupTombstone(const std::string& name) const {
  std::shared_ptr<MigrationRecord> rec;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = records_.find(name);
    if (it == records_.end()) {
      return Status::NotFound("no migration record for name");
    }
    rec = it->second;
  }
  std::lock_guard<std::mutex> lock(rec->mu);
  if (rec->phase != MigrationPhase::kCommitted) {
    return Status::NotFound("migration not committed");
  }
  StaleRedirect redir;
  redir.new_home = rec->new_home;
  redir.epoch = rec->new_epoch;
  redir.chunks = rec->new_chunks;
  return redir;
}

void MigrationState::Supersede(const std::string& name, uint64_t current_epoch) {
  std::shared_ptr<MigrationRecord> rec;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = records_.find(name);
    if (it == records_.end()) {
      return;
    }
    rec = it->second;
  }
  {
    std::lock_guard<std::mutex> lock(rec->mu);
    if (rec->phase != MigrationPhase::kCommitted || rec->new_epoch > current_epoch) {
      return;
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = records_.find(name);
  if (it != records_.end() && it->second == rec) {
    records_.erase(it);
  }
  // The tombstone's old ranges stay in ranges_ (still reachable through the
  // shared_ptr there): accesses from epochs before the LMR left keep NACKing
  // into a redirect instead of touching quarantined memory.
  armed_.store(records_.size() + ranges_.size(), std::memory_order_relaxed);
}

bool MigrationState::Stage(const std::string& name, StagedInstall staged) {
  std::lock_guard<std::mutex> lock(mu_);
  return staged_.emplace(name, std::move(staged)).second;
}

StatusOr<StagedInstall> MigrationState::TakeStaged(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = staged_.find(name);
  if (it == staged_.end()) {
    return Status::NotFound("no staged install for name");
  }
  StagedInstall staged = std::move(it->second);
  staged_.erase(it);
  return staged;
}

// ============================================== coordinator (LiteInstance)

Status LiteInstance::CopyLmrIntervals(const std::vector<LmrChunk>& old_chunks,
                                      const std::vector<LmrChunk>& new_chunks, uint64_t lmr_size,
                                      const std::map<uint64_t, uint64_t>* intervals,
                                      uint64_t* bytes_out) {
  std::map<uint64_t, uint64_t> whole;
  if (intervals == nullptr) {
    whole[0] = lmr_size;
    intervals = &whole;
  }
  std::vector<OpEngine::OpDesc> descs;
  uint64_t total = 0;
  for (const auto& [begin, end] : *intervals) {
    if (begin >= lmr_size) {
      continue;
    }
    const uint64_t len = std::min(end, lmr_size) - begin;
    auto src_pieces = SliceChunks(old_chunks, begin, len);
    auto dst_pieces = SliceChunks(new_chunks, begin, len);
    size_t si = 0;
    size_t di = 0;
    uint64_t soff = 0;
    uint64_t doff = 0;
    while (si < src_pieces.size() && di < dst_pieces.size()) {
      const uint64_t take = std::min(src_pieces[si].len - soff, dst_pieces[di].len - doff);
      descs.push_back(OpEngine::OpDesc{
          dst_pieces[di].node, dst_pieces[di].addr + doff,
          node_->mem().Data(src_pieces[si].addr + soff, take), take});
      total += take;
      soff += take;
      doff += take;
      if (soff == src_pieces[si].len) {
        ++si;
        soff = 0;
      }
      if (doff == dst_pieces[di].len) {
        ++di;
        doff = 0;
      }
    }
  }
  if (bytes_out != nullptr) {
    *bytes_out = total;
  }
  if (descs.empty()) {
    return Status::Ok();
  }
  return engine_.SubmitPieces(descs, /*is_read=*/false, Priority::kHigh);
}

void LiteInstance::AbortMigration(const std::shared_ptr<MigrationRecord>& rec,
                                  const std::string& name, NodeId dst,
                                  MigrationPhase phase_reached) {
  // Epoch fencing: bump the source's epoch by 2 so it leapfrogs a
  // destination that may have activated at old_epoch + 1 without us learning
  // of it (activate reply lost). Name-service arbitration — UpdateName and
  // the rebuild path both keep the highest epoch — then resolves any
  // split-brain back to the source.
  uint64_t fenced_epoch = 0;
  (void)lmrs_.WithMeta(name, [&](LmrMeta& m) {
    m.epoch += 2;
    fenced_epoch = m.epoch;
    return lt::StatusCode::kOk;
  });
  migration_.Abort(rec, NowNs());
  if (migration_.aborted_ != nullptr) {
    migration_.aborted_->Inc();
  }
  if (journal_ != nullptr) {
    journal_->Record(JournalEvent::kMigrateAbort, PackName8(name.c_str()),
                     static_cast<uint64_t>(phase_reached));
  }
  // Best-effort uninstall of the staged copy at the destination (leaks until
  // the destination restarts if it is unreachable — documented).
  if (!PeerDead(dst)) {
    WireWriter w;
    w.PutString(name);
    RpcCallOpts opts;
    opts.max_retries = 0;
    (void)InternalRpcOpts(dst, kFnMigrateAbort, w.bytes(), nullptr, opts);
  }
  // Best-effort re-pin at the manager under the fenced epoch.
  if (fenced_epoch != 0) {
    if (manager_node_ == node_id()) {
      lmrs_.UpdateName(name, node_id(), fenced_epoch);
    } else if (!PeerDead(manager_node_)) {
      WireWriter w;
      w.PutString(name);
      w.Put<NodeId>(node_id());
      w.Put<uint64_t>(fenced_epoch);
      RpcCallOpts opts;
      opts.max_retries = 0;
      (void)InternalRpcOpts(manager_node_, kFnUpdateName, w.bytes(), nullptr, opts);
    }
  }
}

Status LiteInstance::MigrateHosted(const std::string& name, NodeId dst, NodeId requester,
                                   MigrateStats* stats) {
  if (dst == node_id()) {
    return Status::InvalidArgument("LMR already lives on the destination node");
  }
  if (Peer(dst) == nullptr) {
    return Status::InvalidArgument("unknown destination node");
  }
  if (PeerDead(dst)) {
    return DeadPeerUnavailable();
  }

  LmrMeta meta;
  bool allowed = false;
  lt::StatusCode code = lmrs_.WithMeta(name, [&](LmrMeta& m) {
    meta = m;
    allowed = m.masters.count(requester) > 0 || requester == node_id() ||
              requester == manager_node_;
    return lt::StatusCode::kOk;
  });
  if (code != lt::StatusCode::kOk) {
    return Status::NotFound("LMR is not hosted on this node");
  }
  if (!allowed) {
    return Status::PermissionDenied("migration requires the master role or operator authority");
  }
  for (const LmrChunk& c : meta.chunks) {
    if (c.node != node_id()) {
      return Status::FailedPrecondition("cannot migrate an LMR spread across nodes");
    }
  }

  const uint64_t new_epoch = meta.epoch + 1;
  auto begun = migration_.Begin(name, node_id(), dst, meta.epoch, meta.chunks, meta.size);
  if (!begun.ok()) {
    return begun.status();
  }
  std::shared_ptr<MigrationRecord> rec = *begun;
  if (migration_.started_ != nullptr) {
    migration_.started_->Inc();
  }
  if (journal_ != nullptr) {
    journal_->Record(JournalEvent::kMigrateStart, PackName8(name.c_str()),
                     PackLink(node_id(), dst));
    journal_->Record(JournalEvent::kMigratePhase, PackName8(name.c_str()),
                     static_cast<uint64_t>(MigrationPhase::kMirror));
  }

  // ---- Phase 1, kMirror: stage chunks at the destination, bulk-copy. ----
  std::vector<LmrChunk> new_chunks;
  {
    WireWriter w;
    w.PutString(name);
    w.Put<NodeId>(node_id());
    w.Put<uint64_t>(meta.size);
    w.Put<uint64_t>(new_epoch);
    std::vector<uint8_t> out;
    Status st = InternalRpc(dst, kFnMigrateInstall, w.bytes(), &out);
    if (st.ok()) {
      WireReader r(out.data(), out.size());
      if (!r.GetChunks(&new_chunks) || new_chunks.empty()) {
        st = Status::Internal("malformed migrate-install reply");
      }
    }
    if (!st.ok()) {
      AbortMigration(rec, name, dst, MigrationPhase::kMirror);
      return st;
    }
  }
  {
    uint64_t copied = 0;
    Status st = CopyLmrIntervals(meta.chunks, new_chunks, meta.size, nullptr, &copied);
    if (migration_.bytes_copied_ != nullptr) {
      migration_.bytes_copied_->Inc(copied);
    }
    if (stats != nullptr) {
      stats->bytes_copied += copied;
    }
    if (!st.ok()) {
      AbortMigration(rec, name, dst, MigrationPhase::kMirror);
      return st;
    }
  }

  // ---- Phase 2, kConverge: bounded re-copy of concurrently dirtied data. --
  migration_.SetPhase(rec, MigrationPhase::kConverge);
  const uint32_t max_rounds = std::max<uint32_t>(1, params().lite_migrate_max_rounds);
  for (uint32_t round = 0; round < max_rounds; ++round) {
    auto dirty = migration_.TakeDirty(rec);
    if (dirty.empty()) {
      break;
    }
    if (migration_.rounds_ != nullptr) {
      migration_.rounds_->Inc();
    }
    if (stats != nullptr) {
      ++stats->rounds;
    }
    uint64_t copied = 0;
    Status st = CopyLmrIntervals(meta.chunks, new_chunks, meta.size, &dirty, &copied);
    if (migration_.bytes_copied_ != nullptr) {
      migration_.bytes_copied_->Inc(copied);
    }
    if (migration_.dirty_bytes_ != nullptr) {
      migration_.dirty_bytes_->Inc(copied);
    }
    if (stats != nullptr) {
      stats->bytes_copied += copied;
      stats->dirty_bytes += copied;
    }
    if (!st.ok()) {
      AbortMigration(rec, name, dst, MigrationPhase::kConverge);
      return st;
    }
  }

  // ---- Phase 3, kFence: park new ops, drain in-flight ones, final copy. --
  if (stats != nullptr) {
    stats->fence_start_ns = NowNs();
  }
  migration_.SetPhase(rec, MigrationPhase::kFence);
  if (!migration_.DrainTokens(rec, kParkCapRealNs)) {
    AbortMigration(rec, name, dst, MigrationPhase::kFence);
    return Status::Timeout("migration fence could not drain in-flight ops");
  }
  {
    auto final_dirty = migration_.TakeDirty(rec);
    if (!final_dirty.empty()) {
      uint64_t copied = 0;
      Status st = CopyLmrIntervals(meta.chunks, new_chunks, meta.size, &final_dirty, &copied);
      if (migration_.bytes_copied_ != nullptr) {
        migration_.bytes_copied_->Inc(copied);
      }
      if (migration_.dirty_bytes_ != nullptr) {
        migration_.dirty_bytes_->Inc(copied);
      }
      if (stats != nullptr) {
        stats->bytes_copied += copied;
        stats->dirty_bytes += copied;
      }
      if (!st.ok()) {
        AbortMigration(rec, name, dst, MigrationPhase::kFence);
        return st;
      }
    }
  }

  // ---- Commit point: activate the destination. The RPC layer dedups
  // transparent retries, so the handler runs at most once; if the call still
  // fails the outcome is unknown and we abort under the epoch fence. ----
  {
    WireWriter w;
    w.PutString(name);
    w.Put<uint64_t>(new_epoch);
    w.Put<uint32_t>(meta.default_perm);
    w.Put<uint32_t>(static_cast<uint32_t>(meta.node_perm.size()));
    for (const auto& [node, perm] : meta.node_perm) {
      w.Put<NodeId>(node);
      w.Put<uint32_t>(perm);
    }
    w.Put<uint32_t>(static_cast<uint32_t>(meta.masters.size()));
    for (NodeId m : meta.masters) {
      w.Put<NodeId>(m);
    }
    w.Put<uint32_t>(static_cast<uint32_t>(meta.mapped_nodes.size()));
    for (NodeId m : meta.mapped_nodes) {
      w.Put<NodeId>(m);
    }
    Status st = InternalRpc(dst, kFnMigrateActivate, w.bytes(), nullptr);
    if (!st.ok()) {
      AbortMigration(rec, name, dst, MigrationPhase::kFence);
      return st;
    }
  }

  // The destination is home: flip the gate to its tombstone form (unparking
  // fenced ops into kStaleHome redirects), then drop the local metadata.
  const uint64_t commit_vtime = NowNs();
  migration_.Commit(rec, dst, new_epoch, new_chunks, commit_vtime);
  (void)lmrs_.TakeMeta(name);
  if (migration_.committed_ != nullptr) {
    migration_.committed_->Inc();
  }
  if (journal_ != nullptr) {
    journal_->Record(JournalEvent::kMigrateCommit, PackName8(name.c_str()), new_epoch);
    journal_->Record(JournalEvent::kMigratePhase, PackName8(name.c_str()),
                     static_cast<uint64_t>(MigrationPhase::kCommitted));
  }
  if (stats != nullptr) {
    stats->commit_ns = commit_vtime;
  }
  // Our own mappings follow immediately; everyone else learns via the
  // rehome fan-out below or lazily via a stale-home NACK.
  lmrs_.UpdateHomeByName(name, dst, new_chunks, new_epoch);

  // Post-commit, off the blocked-op critical path: re-point the name
  // service (best-effort — the tombstone covers the window) and fan the new
  // placement out to every node that mapped the LMR.
  if (manager_node_ == node_id()) {
    lmrs_.UpdateName(name, dst, new_epoch);
  } else if (!PeerDead(manager_node_)) {
    WireWriter w;
    w.PutString(name);
    w.Put<NodeId>(dst);
    w.Put<uint64_t>(new_epoch);
    RpcCallOpts opts;
    opts.max_retries = 0;
    (void)InternalRpcOpts(manager_node_, kFnUpdateName, w.bytes(), nullptr, opts);
  }
  {
    WireWriter w;
    w.PutString(name);
    w.Put<NodeId>(dst);
    w.Put<uint64_t>(new_epoch);
    w.PutChunks(new_chunks);
    for (NodeId mapped : meta.mapped_nodes) {
      if (mapped == node_id() || mapped == dst || PeerDead(mapped)) {
        continue;
      }
      (void)RpcSendNoReply(mapped, kFnLmrRehome, w.bytes().data(),
                           static_cast<uint32_t>(w.bytes().size()));
    }
  }
  // The old chunks stay quarantined (see MigrationState::Commit): freeing
  // them would let the allocator hand the ranges to a new LMR, turning a
  // stale-epoch access into silent corruption instead of a NACK.
  return Status::Ok();
}

Status LiteInstance::Migrate(const std::string& name, NodeId new_home, MigrateStats* stats) {
  const bool hosted_here =
      lmrs_.WithMeta(name, [](LmrMeta&) { return lt::StatusCode::kOk; }) == lt::StatusCode::kOk;
  if (hosted_here) {
    return MigrateHosted(name, new_home, node_id(), stats);
  }
  auto home = LookupMasterNode(name);
  if (!home.ok()) {
    return home.status();
  }
  if (*home == node_id()) {
    return Status::NotFound("name service points here but no local metadata for LMR");
  }
  WireWriter w;
  w.PutString(name);
  w.Put<NodeId>(new_home);
  w.Put<NodeId>(node_id());
  // Generous timeout: the coordinator mirrors the whole LMR inside the call.
  return InternalRpc(*home, kFnMigrateLmr, w.bytes(), nullptr,
                     /*timeout_ns=*/120'000'000'000ull);
}

Status LiteInstance::DrainNode(NodeId victim, uint64_t* moved) {
  if (moved != nullptr) {
    *moved = 0;
  }
  if (victim != node_id() && Peer(victim) == nullptr) {
    return Status::InvalidArgument("unknown node to drain");
  }
  if (PeerDead(victim)) {
    return DeadPeerUnavailable();
  }

  // Names hosted at the victim.
  std::vector<std::pair<std::string, uint64_t>> names;
  if (victim == node_id()) {
    names = lmrs_.ListNames();
  } else {
    WireWriter empty;
    std::vector<uint8_t> out;
    LT_RETURN_IF_ERROR(InternalRpc(victim, kFnListNames, empty.bytes(), &out));
    WireReader r(out.data(), out.size());
    uint32_t count = 0;
    if (!r.Get(&count)) {
      return Status::Internal("malformed name-list reply");
    }
    for (uint32_t i = 0; i < count; ++i) {
      std::string name;
      uint64_t epoch = 0;
      if (!r.GetString(&name) || !r.Get(&epoch)) {
        return Status::Internal("malformed name-list entry");
      }
      names.emplace_back(std::move(name), epoch);
    }
  }

  // Destinations: every alive peer except the victim, round-robin.
  std::vector<NodeId> targets;
  for (NodeId n = 0; n < peers_.size(); ++n) {
    if (peers_[n] != nullptr && n != victim && !PeerDead(n)) {
      targets.push_back(n);
    }
  }
  if (targets.empty()) {
    return Status::FailedPrecondition("no alive destination node for drain");
  }

  Status first = Status::Ok();
  size_t next = 0;
  for (const auto& [name, epoch] : names) {
    (void)epoch;
    const NodeId dst = targets[next++ % targets.size()];
    Status st;
    if (victim == node_id()) {
      st = MigrateHosted(name, dst, node_id(), nullptr);
    } else {
      WireWriter w;
      w.PutString(name);
      w.Put<NodeId>(dst);
      w.Put<NodeId>(node_id());
      st = InternalRpc(victim, kFnMigrateLmr, w.bytes(), nullptr,
                       /*timeout_ns=*/120'000'000'000ull);
    }
    if (st.ok()) {
      if (migration_.drained_lmrs_ != nullptr) {
        migration_.drained_lmrs_->Inc();
      }
      if (moved != nullptr) {
        ++*moved;
      }
    } else if (first.ok()) {
      first = st;
    }
  }
  return first;
}

// ================================================== stale-home redirection

Status LiteInstance::RefreshStaleLh(Lh lh, LhEntry* entry) {
  if (migration_.redirects_ != nullptr) {
    migration_.redirects_->Inc();
  }
  const std::string name = entry->name;
  const NodeId old_home = entry->master_node;

  auto query = [&](NodeId target, StaleRedirect* redir) -> Status {
    WireWriter w;
    w.PutString(name);
    std::vector<uint8_t> out;
    LT_RETURN_IF_ERROR(InternalRpc(target, kFnStaleHome, w.bytes(), &out));
    WireReader r(out.data(), out.size());
    if (!r.Get(&redir->new_home) || !r.Get(&redir->epoch) || !r.GetChunks(&redir->chunks)) {
      return Status::Internal("malformed stale-home reply");
    }
    return Status::Ok();
  };

  StaleRedirect redir;
  Status st = Status::Unavailable("old home unreachable");
  if (old_home == node_id()) {
    // Live local metadata first (the LMR may have migrated back here), then
    // the tombstone.
    bool have = false;
    (void)lmrs_.WithMeta(name, [&](LmrMeta& meta) {
      redir.new_home = node_id();
      redir.epoch = meta.epoch;
      redir.chunks = meta.chunks;
      have = true;
      return lt::StatusCode::kOk;
    });
    if (have) {
      st = Status::Ok();
    } else {
      auto tomb = migration_.LookupTombstone(name);
      if (tomb.ok()) {
        redir = *tomb;
        st = Status::Ok();
      }
    }
  } else if (!PeerDead(old_home)) {
    st = query(old_home, &redir);
  }
  if (!st.ok()) {
    // The old home is dead or lost its record: fall back to the manager's
    // name service, then confirm placement with the resolved home itself.
    auto home = LookupMasterNode(name);
    if (!home.ok()) {
      return home.status();
    }
    LT_RETURN_IF_ERROR(query(*home, &redir));
  }
  if (redir.epoch <= entry->epoch) {
    // A racing refresh may have advanced the local mapping between our NACK
    // and this resolution; if so the entry is already usable as-is.
    auto fresh = lmrs_.Get(lh);
    if (fresh.ok() && fresh->epoch > entry->epoch) {
      *entry = *fresh;
      return Status::Ok();
    }
    return Status::Unavailable("home re-resolution did not advance the LMR epoch");
  }
  lmrs_.UpdateHomeByName(name, redir.new_home, redir.chunks, redir.epoch);
  auto fresh = lmrs_.Get(lh);
  if (!fresh.ok()) {
    return fresh.status();
  }
  *entry = *fresh;
  return Status::Ok();
}

Status LiteInstance::RedoMemopAfterStale(Lh lh, uint64_t offset, void* buf, uint64_t len,
                                         bool is_read, Priority pri) {
  auto entry = GetLh(lh);
  if (!entry.ok()) {
    return entry.status();
  }
  // Submit against the current mapping first: a concurrent redo (another op
  // of the same lh) may already have refreshed it, in which case a refresh
  // here would see no epoch advance and fail spuriously.
  Status st = Status::Ok();
  for (int i = 0; i <= kMaxStaleRedirects; ++i) {
    auto pieces = SliceChunks(entry->chunks, offset, len);
    std::vector<OpEngine::OpDesc> descs;
    descs.reserve(pieces.size());
    for (const ChunkPiece& p : pieces) {
      descs.push_back(OpEngine::OpDesc{p.node, p.addr, static_cast<uint8_t*>(buf) + p.user_off,
                                       p.len});
    }
    st = engine_.SubmitPieces(descs, is_read, pri);
    if (st.code() != lt::StatusCode::kStaleHome) {
      return st;
    }
    LT_RETURN_IF_ERROR(RefreshStaleLh(lh, &*entry));
  }
  return st;
}

// ======================================================= control handlers

namespace {

void ReplyStatus(LiteInstance* self, const ReplyToken& token, lt::StatusCode code) {
  uint32_t wire_code = static_cast<uint32_t>(code);
  (void)self->ReplyRpc(token, &wire_code, sizeof(wire_code));
}

void ReplyOkPayload(LiteInstance* self, const ReplyToken& token, const WireWriter& payload) {
  const auto& bytes = payload.bytes();
  std::vector<uint8_t> out(sizeof(uint32_t) + bytes.size());
  uint32_t code = static_cast<uint32_t>(lt::StatusCode::kOk);
  std::memcpy(out.data(), &code, sizeof(code));
  std::memcpy(out.data() + sizeof(code), bytes.data(), bytes.size());
  (void)self->ReplyRpc(token, out.data(), static_cast<uint32_t>(out.size()));
}

}  // namespace

void LiteInstance::RegisterMigrationHandlers() {
  // Destination: allocate + stage the new placement. Transparent RPC retries
  // are deduped by the server ring, so this executes at most once per call.
  internal_handlers_[kFnMigrateInstall] = [](LiteInstance* self, const RpcIncoming& inc) {
    WireReader r(inc.data.data(), inc.data.size());
    std::string name;
    NodeId src = kInvalidNode;
    uint64_t size = 0;
    uint64_t new_epoch = 0;
    if (!r.GetString(&name) || !r.Get(&src) || !r.Get(&size) || !r.Get(&new_epoch) ||
        size == 0) {
      ReplyStatus(self, inc.token, lt::StatusCode::kInvalidArgument);
      return;
    }
    const bool hosted =
        self->lmrs_.WithMeta(name, [](LmrMeta&) { return lt::StatusCode::kOk; }) ==
        lt::StatusCode::kOk;
    if (hosted) {
      ReplyStatus(self, inc.token, lt::StatusCode::kAlreadyExists);
      return;
    }
    auto chunks = self->AllocLocalChunks(size);
    if (!chunks.ok()) {
      ReplyStatus(self, inc.token, chunks.status().code());
      return;
    }
    StagedInstall staged;
    staged.src = src;
    staged.size = size;
    staged.new_epoch = new_epoch;
    staged.chunks = *chunks;
    if (!self->migration_.Stage(name, std::move(staged))) {
      self->FreeLocalChunks(*chunks);
      ReplyStatus(self, inc.token, lt::StatusCode::kAlreadyExists);
      return;
    }
    WireWriter payload;
    payload.PutChunks(*chunks);
    ReplyOkPayload(self, inc.token, payload);
  };

  // Destination: the commit point. Promotes the staged chunks to a hosted
  // LMR at the new epoch.
  internal_handlers_[kFnMigrateActivate] = [](LiteInstance* self, const RpcIncoming& inc) {
    WireReader r(inc.data.data(), inc.data.size());
    std::string name;
    uint64_t new_epoch = 0;
    uint32_t default_perm = 0;
    uint32_t perm_count = 0;
    if (!r.GetString(&name) || !r.Get(&new_epoch) || !r.Get(&default_perm) ||
        !r.Get(&perm_count)) {
      ReplyStatus(self, inc.token, lt::StatusCode::kInvalidArgument);
      return;
    }
    std::map<NodeId, uint32_t> node_perm;
    for (uint32_t i = 0; i < perm_count; ++i) {
      NodeId node = kInvalidNode;
      uint32_t perm = 0;
      if (!r.Get(&node) || !r.Get(&perm)) {
        ReplyStatus(self, inc.token, lt::StatusCode::kInvalidArgument);
        return;
      }
      node_perm[node] = perm;
    }
    auto read_nodes = [&](std::set<NodeId>* out) {
      uint32_t count = 0;
      if (!r.Get(&count)) {
        return false;
      }
      for (uint32_t i = 0; i < count; ++i) {
        NodeId node = kInvalidNode;
        if (!r.Get(&node)) {
          return false;
        }
        out->insert(node);
      }
      return true;
    };
    std::set<NodeId> masters;
    std::set<NodeId> mapped;
    if (!read_nodes(&masters) || !read_nodes(&mapped)) {
      ReplyStatus(self, inc.token, lt::StatusCode::kInvalidArgument);
      return;
    }
    auto staged = self->migration_.TakeStaged(name);
    if (!staged.ok()) {
      ReplyStatus(self, inc.token, lt::StatusCode::kNotFound);
      return;
    }
    LmrMeta meta;
    meta.name = name;
    meta.size = staged->size;
    meta.chunks = staged->chunks;
    meta.default_perm = default_perm;
    meta.node_perm = std::move(node_perm);
    meta.masters = std::move(masters);
    meta.mapped_nodes = std::move(mapped);
    meta.mapped_nodes.insert(self->node_id());
    meta.epoch = new_epoch;
    const std::vector<LmrChunk> chunks = meta.chunks;
    self->lmrs_.InsertMeta(std::move(meta));
    // Any of our own lhs mapped to the old home follow immediately.
    self->lmrs_.UpdateHomeByName(name, self->node_id(), chunks, new_epoch);
    // If this node migrated the LMR away in an earlier epoch, that tombstone
    // is obsolete now that we are home again — retire it so a later
    // migration from here can begin.
    self->migration_.Supersede(name, new_epoch);
    ReplyStatus(self, inc.token, lt::StatusCode::kOk);
  };

  // Destination: clean abort — drop the staged allocation. If activation
  // already happened this is a stale abort from a split outcome; the meta
  // stays and epoch arbitration at the source decides (DESIGN.md).
  internal_handlers_[kFnMigrateAbort] = [](LiteInstance* self, const RpcIncoming& inc) {
    WireReader r(inc.data.data(), inc.data.size());
    std::string name;
    if (r.GetString(&name)) {
      auto staged = self->migration_.TakeStaged(name);
      if (staged.ok()) {
        self->FreeLocalChunks(staged->chunks);
      }
    }
    ReplyStatus(self, inc.token, lt::StatusCode::kOk);
  };

  // Manager: epoch-guarded name-service repoint.
  internal_handlers_[kFnUpdateName] = [](LiteInstance* self, const RpcIncoming& inc) {
    WireReader r(inc.data.data(), inc.data.size());
    std::string name;
    NodeId new_home = kInvalidNode;
    uint64_t epoch = 0;
    if (!r.GetString(&name) || !r.Get(&new_home) || !r.Get(&epoch)) {
      ReplyStatus(self, inc.token, lt::StatusCode::kInvalidArgument);
      return;
    }
    self->lmrs_.UpdateName(name, new_home, epoch);
    ReplyStatus(self, inc.token, lt::StatusCode::kOk);
  };

  // Home: coordinator entry point (LT_migrate routed from another node).
  internal_handlers_[kFnMigrateLmr] = [](LiteInstance* self, const RpcIncoming& inc) {
    WireReader r(inc.data.data(), inc.data.size());
    std::string name;
    NodeId dst = kInvalidNode;
    NodeId requester = kInvalidNode;
    if (!r.GetString(&name) || !r.Get(&dst) || !r.Get(&requester)) {
      ReplyStatus(self, inc.token, lt::StatusCode::kInvalidArgument);
      return;
    }
    Status st = self->MigrateHosted(name, dst, requester, nullptr);
    ReplyStatus(self, inc.token, st.code());
  };

  // Mapped nodes: post-commit rehome fan-out (fire-and-forget).
  internal_handlers_[kFnLmrRehome] = [](LiteInstance* self, const RpcIncoming& inc) {
    WireReader r(inc.data.data(), inc.data.size());
    std::string name;
    NodeId new_home = kInvalidNode;
    uint64_t epoch = 0;
    std::vector<LmrChunk> chunks;
    if (r.GetString(&name) && r.Get(&new_home) && r.Get(&epoch) && r.GetChunks(&chunks)) {
      self->lmrs_.UpdateHomeByName(name, new_home, chunks, epoch);
    }
  };

  // Old home (or any node): where does `name` live now? Serves the
  // migration tombstone, or the live local metadata when this node is home.
  internal_handlers_[kFnStaleHome] = [](LiteInstance* self, const RpcIncoming& inc) {
    WireReader r(inc.data.data(), inc.data.size());
    std::string name;
    if (!r.GetString(&name)) {
      ReplyStatus(self, inc.token, lt::StatusCode::kInvalidArgument);
      return;
    }
    // Live local metadata wins over any tombstone: if the LMR migrated back
    // here, this node IS home and the old tombstone must not redirect
    // callers away from it.
    StaleRedirect redir;
    bool have = false;
    (void)self->lmrs_.WithMeta(name, [&](LmrMeta& meta) {
      redir.new_home = self->node_id();
      redir.epoch = meta.epoch;
      redir.chunks = meta.chunks;
      have = true;
      return lt::StatusCode::kOk;
    });
    if (!have) {
      auto tomb = self->migration_.LookupTombstone(name);
      if (!tomb.ok()) {
        ReplyStatus(self, inc.token, lt::StatusCode::kNotFound);
        return;
      }
      redir = *tomb;
    }
    WireWriter payload;
    payload.Put<NodeId>(redir.new_home);
    payload.Put<uint64_t>(redir.epoch);
    payload.PutChunks(redir.chunks);
    ReplyOkPayload(self, inc.token, payload);
  };
}

}  // namespace lite
