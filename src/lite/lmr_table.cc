#include "src/lite/lmr_table.h"

#include <utility>

namespace lite {

// ------------------------------------------------------------ lh plumbing

Lh LmrTable::Insert(LhEntry entry) {
  Lh lh = next_lh_.fetch_add(1);
  std::lock_guard<std::mutex> lock(lh_mu_);
  lh_table_[lh] = std::move(entry);
  return lh;
}

StatusOr<LhEntry> LmrTable::Get(Lh lh) const {
  std::lock_guard<std::mutex> lock(lh_mu_);
  auto it = lh_table_.find(lh);
  if (it == lh_table_.end()) {
    return Status::NotFound("unknown or invalidated lh");
  }
  return it->second;
}

void LmrTable::Erase(Lh lh) {
  std::lock_guard<std::mutex> lock(lh_mu_);
  lh_table_.erase(lh);
}

void LmrTable::EraseByName(const std::string& name) {
  std::lock_guard<std::mutex> lock(lh_mu_);
  for (auto it = lh_table_.begin(); it != lh_table_.end();) {
    if (it->second.name == name) {
      it = lh_table_.erase(it);
    } else {
      ++it;
    }
  }
}

void LmrTable::UpdateChunksByName(const std::string& name, const std::vector<LmrChunk>& chunks) {
  std::lock_guard<std::mutex> lock(lh_mu_);
  for (auto& [lh, entry] : lh_table_) {
    if (entry.name == name) {
      entry.chunks = chunks;
    }
  }
}

void LmrTable::UpdateHomeByName(const std::string& name, NodeId new_home,
                                const std::vector<LmrChunk>& chunks, uint64_t epoch) {
  std::lock_guard<std::mutex> lock(lh_mu_);
  for (auto& [lh, entry] : lh_table_) {
    if (entry.name == name && entry.epoch < epoch) {
      entry.master_node = new_home;
      entry.chunks = chunks;
      entry.epoch = epoch;
    }
  }
}

size_t LmrTable::lh_count() const {
  std::lock_guard<std::mutex> lock(lh_mu_);
  return lh_table_.size();
}

Status LmrTable::CheckAccess(const LhEntry& e, uint64_t offset, uint64_t len, uint32_t need) {
  if ((e.perm & need) != need) {
    return Status::PermissionDenied("lh lacks required permission");
  }
  if (offset + len > e.size || offset + len < offset) {
    return Status::OutOfRange("access outside LMR bounds");
  }
  return Status::Ok();
}

// ----------------------------------------------------------- LMR registry

void LmrTable::InsertMeta(LmrMeta meta) {
  std::lock_guard<std::mutex> lock(meta_mu_);
  metas_[meta.name] = std::move(meta);
}

lt::StatusCode LmrTable::WithMeta(const std::string& name,
                                  const std::function<lt::StatusCode(LmrMeta&)>& fn) {
  std::lock_guard<std::mutex> lock(meta_mu_);
  auto it = metas_.find(name);
  if (it == metas_.end()) {
    return lt::StatusCode::kNotFound;
  }
  return fn(it->second);
}

StatusOr<LmrMeta> LmrTable::CopyMetaIfMaster(const std::string& name, NodeId requester) const {
  std::lock_guard<std::mutex> lock(meta_mu_);
  auto it = metas_.find(name);
  if (it == metas_.end()) {
    return Status::NotFound("unknown LMR name");
  }
  if (it->second.masters.count(requester) == 0) {
    return Status::PermissionDenied("caller is not a master of this LMR");
  }
  return it->second;
}

StatusOr<LmrMeta> LmrTable::TakeMetaIfMaster(const std::string& name, NodeId requester) {
  std::lock_guard<std::mutex> lock(meta_mu_);
  auto it = metas_.find(name);
  if (it == metas_.end()) {
    return Status::NotFound("unknown LMR name");
  }
  if (it->second.masters.count(requester) == 0) {
    return Status::PermissionDenied("caller is not a master of this LMR");
  }
  LmrMeta meta = std::move(it->second);
  metas_.erase(it);
  return meta;
}

StatusOr<LmrMeta> LmrTable::TakeMeta(const std::string& name) {
  std::lock_guard<std::mutex> lock(meta_mu_);
  auto it = metas_.find(name);
  if (it == metas_.end()) {
    return Status::NotFound("unknown LMR name");
  }
  LmrMeta meta = std::move(it->second);
  metas_.erase(it);
  return meta;
}

std::set<NodeId> LmrTable::InstallChunks(const std::string& name,
                                         const std::vector<LmrChunk>& chunks) {
  std::lock_guard<std::mutex> lock(meta_mu_);
  auto it = metas_.find(name);
  if (it == metas_.end()) {
    return {};
  }
  it->second.chunks = chunks;
  return it->second.mapped_nodes;
}

std::vector<std::pair<std::string, uint64_t>> LmrTable::ListNames() const {
  std::lock_guard<std::mutex> lock(meta_mu_);
  std::vector<std::pair<std::string, uint64_t>> names;
  names.reserve(metas_.size());
  for (const auto& [name, meta] : metas_) {
    names.emplace_back(name, meta.epoch);
  }
  return names;
}

// ------------------------------------------------------------ name service

bool LmrTable::RegisterName(const std::string& name, NodeId master) {
  std::lock_guard<std::mutex> lock(names_mu_);
  return names_.emplace(name, std::make_pair(master, uint64_t{1})).second;
}

StatusOr<NodeId> LmrTable::LookupName(const std::string& name) const {
  std::lock_guard<std::mutex> lock(names_mu_);
  auto it = names_.find(name);
  if (it == names_.end()) {
    return Status::NotFound("name not registered");
  }
  return it->second.first;
}

void LmrTable::UnregisterName(const std::string& name) {
  std::lock_guard<std::mutex> lock(names_mu_);
  names_.erase(name);
}

void LmrTable::UpdateName(const std::string& name, NodeId new_home, uint64_t epoch) {
  std::lock_guard<std::mutex> lock(names_mu_);
  auto it = names_.find(name);
  if (it == names_.end() || it->second.second < epoch) {
    names_[name] = {new_home, epoch};
  }
}

void LmrTable::ReplaceNames(std::unordered_map<std::string, std::pair<NodeId, uint64_t>> names) {
  std::lock_guard<std::mutex> lock(names_mu_);
  names_ = std::move(names);
}

void LmrTable::ClearNames() {
  std::lock_guard<std::mutex> lock(names_mu_);
  names_.clear();
}

}  // namespace lite
