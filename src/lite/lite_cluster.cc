#include "src/lite/lite_cluster.h"

#include <sstream>

#include "src/telemetry/latency_attr.h"

namespace lite {

LiteCluster::LiteCluster(size_t node_count, const lt::SimParams& params)
    : cluster_(node_count, params) {
  const NodeId manager = 0;
  instances_.reserve(node_count);
  for (size_t i = 0; i < node_count; ++i) {
    instances_.push_back(std::make_unique<LiteInstance>(cluster_.node(i), manager));
  }
  // Peer discovery + global-rkey exchange.
  for (auto& a : instances_) {
    for (auto& b : instances_) {
      a->ConnectPeer(b.get());
    }
  }
  // Shared QP pools: K QPs per (ordered) node pair, pairwise-connected.
  for (auto& inst : instances_) {
    inst->CreateQueuePairs();
  }
  if (params.lite_transport == lt::LiteTransport::kRc) {
    // RC: pairwise-connect the K QPs of every (ordered) node pair. DC skips
    // this entirely — initiators attach lazily on first use (DESIGN.md §10).
    const int k = std::max(1, params.lite_qp_sharing_factor);
    for (NodeId i = 0; i < node_count; ++i) {
      for (NodeId j = i + 1; j < node_count; ++j) {
        for (int q = 0; q < k; ++q) {
          lt::Qp* a = instances_[i]->PoolQp(j, q);
          lt::Qp* b = instances_[j]->PoolQp(i, q);
          a->Connect(j, b->qpn());
          b->Connect(i, a->qpn());
        }
      }
    }
  }
  // Control rings (every ordered pair, including self for loopback RPCs).
  // At large scale this O(n²) bootstrap dominates setup; with
  // lite_eager_control_rings=false a channel is built lazily on first RPC.
  if (params.lite_eager_control_rings) {
    for (auto& client : instances_) {
      for (auto& server : instances_) {
        client->BootstrapControlChannel(server.get());
      }
    }
  } else {
    for (auto& client : instances_) {
      // Self-loopback is always wired (internal services assume it).
      client->BootstrapControlChannel(client.get());
    }
  }
  for (auto& inst : instances_) {
    inst->Start();
  }
  // Any gtest failure while this cluster lives dumps its flight recorder
  // (tests/gtest_main.cc drains the registry on the first failed assertion).
  lt::telemetry::RegisterFailureDump(this, [this] { return DumpJournal(); });
}

LiteCluster::~LiteCluster() {
  lt::telemetry::UnregisterFailureDump(this);
  for (auto& inst : instances_) {
    inst->Stop();
  }
}

std::string LiteCluster::DumpLatencyBreakdown() {
  std::ostringstream out;
  for (size_t i = 0; i < cluster_.size(); ++i) {
    const auto snap = cluster_.node(i)->telemetry().registry().Snapshot();
    const std::string body = lt::telemetry::LatencyAttr::DumpLatencyBreakdown(snap);
    if (body.empty()) {
      continue;
    }
    out << "=== node " << i << " ===\n" << body;
  }
  return out.str();
}

std::vector<std::string> LiteCluster::RunHealthCheck() {
  std::vector<std::string> violations;
  for (size_t i = 0; i < cluster_.size(); ++i) {
    const auto snap = cluster_.node(i)->telemetry().registry().Snapshot();
    for (const std::string& v : lt::telemetry::HealthWatchdog::Check(snap)) {
      violations.push_back("node" + std::to_string(i) + ": " + v);
    }
  }
  return violations;
}

std::unique_ptr<LiteClient> LiteCluster::CreateClient(NodeId node, bool kernel_level) {
  return std::make_unique<LiteClient>(instances_[node].get(), kernel_level);
}

}  // namespace lite
