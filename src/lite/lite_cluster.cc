#include "src/lite/lite_cluster.h"

namespace lite {

LiteCluster::LiteCluster(size_t node_count, const lt::SimParams& params)
    : cluster_(node_count, params) {
  const NodeId manager = 0;
  instances_.reserve(node_count);
  for (size_t i = 0; i < node_count; ++i) {
    instances_.push_back(std::make_unique<LiteInstance>(cluster_.node(i), manager));
  }
  // Peer discovery + global-rkey exchange.
  for (auto& a : instances_) {
    for (auto& b : instances_) {
      a->ConnectPeer(b.get());
    }
  }
  // Shared QP pools: K QPs per (ordered) node pair, pairwise-connected.
  for (auto& inst : instances_) {
    inst->CreateQueuePairs();
  }
  const int k = std::max(1, params.lite_qp_sharing_factor);
  for (NodeId i = 0; i < node_count; ++i) {
    for (NodeId j = i + 1; j < node_count; ++j) {
      for (int q = 0; q < k; ++q) {
        lt::Qp* a = instances_[i]->PoolQp(j, q);
        lt::Qp* b = instances_[j]->PoolQp(i, q);
        a->Connect(j, b->qpn());
        b->Connect(i, a->qpn());
      }
    }
  }
  // Control rings (every ordered pair, including self for loopback RPCs).
  for (auto& client : instances_) {
    for (auto& server : instances_) {
      client->BootstrapControlChannel(server.get());
    }
  }
  for (auto& inst : instances_) {
    inst->Start();
  }
}

LiteCluster::~LiteCluster() {
  for (auto& inst : instances_) {
    inst->Stop();
  }
}

std::unique_ptr<LiteClient> LiteCluster::CreateClient(NodeId node, bool kernel_level) {
  return std::make_unique<LiteClient>(instances_[node].get(), kernel_level);
}

}  // namespace lite
