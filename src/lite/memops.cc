// LITE memory API: LT_malloc/free/map/unmap, LT_read/write, and the
// memory-like extended operations LT_memset/memcpy/memmove (paper Secs. 4, 7.1),
// plus the master-role management operations (paper Sec. 4.1).
#include <cstring>

#include "src/common/logging.h"
#include "src/common/timing.h"
#include "src/lite/instance.h"
#include "src/lite/wire.h"

namespace lite {

using lt::SpinFor;
using lt::telemetry::AttrAdd;
using lt::telemetry::LatStage;
using lt::telemetry::ScopedOpAttr;

namespace {

std::string LockName(const std::string& name) { return "__lock_" + name; }

}  // namespace

// -------------------------------------------------------------- LT_malloc

StatusOr<Lh> LiteInstance::Malloc(uint64_t size, const std::string& name,
                                  const MallocOptions& options) {
  if (size == 0 || name.empty()) {
    return Status::InvalidArgument("LT_malloc needs a size and a name");
  }
  SpinFor(params().lite_malloc_local_ns);

  std::vector<NodeId> nodes = options.nodes;
  if (nodes.empty()) {
    nodes.push_back(node_id());
  }

  // Split into chunks of at most lite_max_chunk_bytes, placed round-robin
  // across the requested nodes (paper Sec. 4.1: an LMR "can even spread
  // across different machines").
  std::vector<LmrChunk> chunks;
  uint64_t remaining = size;
  size_t piece = 0;
  Status failure = Status::Ok();
  while (remaining > 0) {
    uint64_t want = std::min<uint64_t>(remaining, params().lite_max_chunk_bytes);
    NodeId target = nodes[piece % nodes.size()];
    if (target == node_id()) {
      auto local = AllocLocalChunks(want);
      if (!local.ok()) {
        failure = local.status();
        break;
      }
      for (const LmrChunk& c : *local) {
        chunks.push_back(c);
      }
    } else {
      WireWriter w;
      w.Put<uint64_t>(want);
      std::vector<uint8_t> out;
      Status st = InternalRpc(target, kFnAllocChunks, w.bytes(), &out);
      if (!st.ok()) {
        failure = st;
        break;
      }
      WireReader r(out.data(), out.size());
      std::vector<LmrChunk> got;
      if (!r.GetChunks(&got)) {
        failure = Status::Internal("malformed alloc-chunks reply");
        break;
      }
      for (const LmrChunk& c : got) {
        chunks.push_back(c);
      }
    }
    remaining -= want;
    ++piece;
  }

  auto rollback = [&] {
    for (const LmrChunk& c : chunks) {
      if (c.node == node_id()) {
        FreeLocalChunks({c});
      } else {
        WireWriter w;
        w.PutChunks({c});
        (void)InternalRpc(c.node, kFnFreeChunks, w.bytes(), nullptr);
      }
    }
  };
  if (!failure.ok()) {
    rollback();
    return failure;
  }

  // Register the name with the cluster manager.
  {
    WireWriter w;
    w.PutString(name);
    w.Put<NodeId>(node_id());
    Status st = InternalRpc(manager_node_, kFnRegisterName, w.bytes(), nullptr);
    if (!st.ok()) {
      rollback();
      return st;
    }
  }

  // The creator becomes the LMR's (first) master; metadata lives here.
  {
    LmrMeta meta;
    meta.name = name;
    meta.size = size;
    meta.chunks = chunks;
    meta.default_perm = options.default_perm;
    meta.masters.insert(node_id());
    meta.mapped_nodes.insert(node_id());
    lmrs_.InsertMeta(std::move(meta));
  }

  LhEntry entry;
  entry.name = name;
  entry.master_node = node_id();
  entry.size = size;
  entry.perm = kPermRead | kPermWrite | kPermMaster;
  entry.chunks = std::move(chunks);
  return InsertLh(std::move(entry));
}

// ---------------------------------------------------------------- LT_free

Status LiteInstance::Free(Lh lh) {
  auto entry = GetLh(lh);
  if (!entry.ok()) {
    return entry.status();
  }
  if ((entry->perm & kPermMaster) == 0) {
    return Status::PermissionDenied("LT_free requires the master role");
  }
  WireWriter w;
  w.PutString(entry->name);
  w.Put<NodeId>(node_id());
  LT_RETURN_IF_ERROR(InternalRpc(entry->master_node, kFnMasterFree, w.bytes(), nullptr));
  // Drop our own handles for the name (the invalidate notification is
  // asynchronous and idempotent).
  lmrs_.EraseByName(entry->name);
  return Status::Ok();
}

// ----------------------------------------------------------------- LT_map

Status LiteInstance::RebuildNameService() {
  if (node_id() != manager_node_) {
    return Status::FailedPrecondition("name service lives on the manager node");
  }
  std::unordered_map<std::string, std::pair<NodeId, uint64_t>> rebuilt;
  for (NodeId peer = 0; peer < peers_.size(); ++peer) {
    if (peers_[peer] == nullptr) {
      continue;
    }
    if (PeerDead(peer)) {
      // Crashed nodes are skipped; their names resurface on the rebuild that
      // follows their restart (the metadata registry survives with them).
      continue;
    }
    std::vector<uint8_t> out;
    WireWriter empty;
    LT_RETURN_IF_ERROR(InternalRpc(peer, kFnListNames, empty.bytes(), &out));
    WireReader r(out.data(), out.size());
    uint32_t count = 0;
    if (!r.Get(&count)) {
      return Status::Internal("malformed name-list reply");
    }
    for (uint32_t i = 0; i < count; ++i) {
      std::string name;
      uint64_t epoch = 0;
      if (!r.GetString(&name) || !r.Get(&epoch)) {
        return Status::Internal("malformed name-list entry");
      }
      // Two nodes can both claim a name when a crash split a migration
      // commit; the higher ownership epoch wins the arbitration.
      auto it = rebuilt.find(name);
      if (it == rebuilt.end() || it->second.second < epoch) {
        rebuilt[name] = {peer, epoch};
      }
    }
  }
  lmrs_.ReplaceNames(std::move(rebuilt));
  return Status::Ok();
}

StatusOr<NodeId> LiteInstance::LookupMasterNode(const std::string& name) {
  WireWriter w;
  w.PutString(name);
  std::vector<uint8_t> out;
  LT_RETURN_IF_ERROR(InternalRpc(manager_node_, kFnLookupName, w.bytes(), &out));
  WireReader r(out.data(), out.size());
  NodeId master = kInvalidNode;
  if (!r.Get(&master)) {
    return Status::Internal("malformed name-lookup reply");
  }
  return master;
}

StatusOr<Lh> LiteInstance::Map(const std::string& name, uint32_t want_perm) {
  SpinFor(params().lite_map_check_ns);
  auto master = LookupMasterNode(name);
  if (!master.ok()) {
    return master.status();
  }
  NodeId home = *master;
  Status st = Status::Ok();
  for (int attempt = 0; attempt <= kMaxStaleRedirects; ++attempt) {
    WireWriter w;
    w.PutString(name);
    w.Put<uint32_t>(want_perm);
    w.Put<NodeId>(node_id());
    std::vector<uint8_t> out;
    st = InternalRpc(home, kFnMapLmr, w.bytes(), &out);
    if (st.code() == lt::StatusCode::kStaleHome) {
      // The LMR migrated away; the old home's tombstone (or, if it died, a
      // fresh manager lookup) names the new one. Chase it and retry.
      WireWriter q;
      q.PutString(name);
      std::vector<uint8_t> fwd;
      Status qs = InternalRpc(home, kFnStaleHome, q.bytes(), &fwd);
      if (qs.ok()) {
        WireReader fr(fwd.data(), fwd.size());
        NodeId next = kInvalidNode;
        uint64_t epoch = 0;
        std::vector<LmrChunk> fwd_chunks;
        if (fr.Get(&next) && fr.Get(&epoch) && fr.GetChunks(&fwd_chunks) && next != home) {
          home = next;
          continue;
        }
      }
      auto again = LookupMasterNode(name);
      if (!again.ok()) {
        return again.status();
      }
      if (*again == home) {
        return Status::Unavailable("LMR home still settling after migration");
      }
      home = *again;
      continue;
    }
    LT_RETURN_IF_ERROR(st);
    WireReader r(out.data(), out.size());
    uint32_t perm = 0;
    uint64_t size = 0;
    uint64_t epoch = 0;
    std::vector<LmrChunk> chunks;
    if (!r.Get(&perm) || !r.Get(&size) || !r.Get(&epoch) || !r.GetChunks(&chunks)) {
      return Status::Internal("malformed map reply");
    }
    LhEntry entry;
    entry.name = name;
    entry.master_node = home;
    entry.size = size;
    entry.perm = perm;
    entry.chunks = std::move(chunks);
    entry.epoch = epoch;
    return InsertLh(std::move(entry));
  }
  return st;
}

StatusOr<uint64_t> LiteInstance::LmrSize(Lh lh) const {
  auto entry = GetLh(lh);
  if (!entry.ok()) {
    return entry.status();
  }
  return entry->size;
}

StatusOr<std::vector<LmrChunk>> LiteInstance::LmrChunks(Lh lh) const {
  auto entry = GetLh(lh);
  if (!entry.ok()) {
    return entry.status();
  }
  return entry->chunks;
}

Status LiteInstance::Unmap(Lh lh) {
  auto entry = GetLh(lh);
  if (!entry.ok()) {
    return entry.status();
  }
  lmrs_.Erase(lh);
  WireWriter w;
  w.PutString(entry->name);
  w.Put<NodeId>(node_id());
  return RpcSendNoReply(entry->master_node, kFnUnmapLmr, w.bytes().data(),
                        static_cast<uint32_t>(w.bytes().size()));
}

// ------------------------------------------------------ LT_read / LT_write

Status LiteInstance::Read(Lh lh, uint64_t offset, void* buf, uint64_t len, Priority pri) {
  if (len == 0) {
    return Status::Ok();
  }
  // No-op when a LiteClient span is already active or sampling is off.
  lt::telemetry::ScopedSpan span(&node_->telemetry().tracer(), "LT_read");
  // Outermost claim only: when LiteClient already holds the record this is
  // inert and the stamps below flow into the client-level op.
  ScopedOpAttr attr(&node_->telemetry().latency(), "read", len, static_cast<int>(pri));
  const uint64_t submit_t0 = lt::NowNs();
  SpinFor(params().lite_map_check_ns);
  auto entry = GetLh(lh);
  if (!entry.ok()) {
    return entry.status();
  }
  LT_RETURN_IF_ERROR(CheckAccess(*entry, offset, len, kPermRead));
  AttrAdd(LatStage::kLatSubmit, lt::NowNs() - submit_t0);
  lt::telemetry::StampStage(lt::telemetry::TraceStage::kLhCheck, len);
  Status st = Status::Ok();
  for (int attempt = 0; attempt <= kMaxStaleRedirects; ++attempt) {
    auto pieces = SliceChunks(entry->chunks, offset, len);
    if (pieces.size() == 1) {
      // Single-piece fast path: one WR, posted and waited inline.
      const ChunkPiece& piece = pieces[0];
      st = engine_.OneSidedRead(piece.node, piece.addr,
                                static_cast<uint8_t*>(buf) + piece.user_off, piece.len, pri);
    } else {
      // Multi-piece: issue every piece back-to-back (doorbell-batched per QP),
      // then wait for them all — pieces on different chunks/nodes overlap.
      std::vector<OpEngine::OpDesc> descs;
      descs.reserve(pieces.size());
      for (const ChunkPiece& piece : pieces) {
        descs.push_back(OpEngine::OpDesc{piece.node, piece.addr,
                                         static_cast<uint8_t*>(buf) + piece.user_off, piece.len});
      }
      st = engine_.SubmitPieces(descs, /*is_read=*/true, pri);
    }
    if (st.code() != lt::StatusCode::kStaleHome) {
      return st;
    }
    // The LMR migrated mid-op: refresh the mapping and re-issue in full.
    const uint64_t redo_t0 = lt::NowNs();
    LT_RETURN_IF_ERROR(RefreshStaleLh(lh, &*entry));
    AttrAdd(LatStage::kLatDetour, lt::NowNs() - redo_t0);
  }
  return st;
}

Status LiteInstance::Write(Lh lh, uint64_t offset, const void* buf, uint64_t len, Priority pri) {
  if (len == 0) {
    return Status::Ok();
  }
  lt::telemetry::ScopedSpan span(&node_->telemetry().tracer(), "LT_write");
  ScopedOpAttr attr(&node_->telemetry().latency(), "write", len, static_cast<int>(pri));
  const uint64_t submit_t0 = lt::NowNs();
  SpinFor(params().lite_map_check_ns);
  auto entry = GetLh(lh);
  if (!entry.ok()) {
    return entry.status();
  }
  LT_RETURN_IF_ERROR(CheckAccess(*entry, offset, len, kPermWrite));
  AttrAdd(LatStage::kLatSubmit, lt::NowNs() - submit_t0);
  lt::telemetry::StampStage(lt::telemetry::TraceStage::kLhCheck, len);
  Status st = Status::Ok();
  for (int attempt = 0; attempt <= kMaxStaleRedirects; ++attempt) {
    auto pieces = SliceChunks(entry->chunks, offset, len);
    if (pieces.size() == 1) {
      const ChunkPiece& piece = pieces[0];
      st = engine_.OneSidedWrite(piece.node, piece.addr,
                                 static_cast<const uint8_t*>(buf) + piece.user_off, piece.len,
                                 pri, /*signaled=*/true);
    } else {
      std::vector<OpEngine::OpDesc> descs;
      descs.reserve(pieces.size());
      for (const ChunkPiece& piece : pieces) {
        descs.push_back(OpEngine::OpDesc{
            piece.node, piece.addr,
            const_cast<uint8_t*>(static_cast<const uint8_t*>(buf) + piece.user_off), piece.len});
      }
      st = engine_.SubmitPieces(descs, /*is_read=*/false, pri);
    }
    if (st.code() != lt::StatusCode::kStaleHome) {
      return st;
    }
    const uint64_t redo_t0 = lt::NowNs();
    LT_RETURN_IF_ERROR(RefreshStaleLh(lh, &*entry));
    AttrAdd(LatStage::kLatDetour, lt::NowNs() - redo_t0);
  }
  return st;
}

// ------------------------------------------- LT_memset / memcpy / memmove

Status LiteInstance::Memset(Lh lh, uint64_t offset, uint8_t value, uint64_t len, Priority pri) {
  if (len == 0) {
    return Status::Ok();
  }
  lt::telemetry::ScopedSpan span(&node_->telemetry().tracer(), "LT_memset");
  SpinFor(params().lite_map_check_ns);
  auto entry = GetLh(lh);
  if (!entry.ok()) {
    return entry.status();
  }
  LT_RETURN_IF_ERROR(CheckAccess(*entry, offset, len, kPermWrite));
  lt::telemetry::StampStage(lt::telemetry::TraceStage::kLhCheck, len);

  // Send one command per involved node; each node memsets its own pieces
  // locally (cheaper than shipping the pattern over the wire, Sec. 7.1).
  Status st = Status::Ok();
  for (int attempt = 0; attempt <= kMaxStaleRedirects; ++attempt) {
    auto pieces = SliceChunks(entry->chunks, offset, len);
    std::map<NodeId, std::vector<ChunkPiece>> by_node;
    for (const ChunkPiece& p : pieces) {
      by_node[p.node].push_back(p);
    }
    st = Status::Ok();
    for (const auto& [target, group] : by_node) {
      WireWriter w;
      w.Put<uint8_t>(0);  // op 0 = memset
      w.Put<uint8_t>(static_cast<uint8_t>(pri));
      w.Put<uint8_t>(value);
      w.Put<uint32_t>(static_cast<uint32_t>(group.size()));
      for (const ChunkPiece& p : group) {
        w.Put<PhysAddr>(p.addr);
        w.Put<uint64_t>(p.len);
      }
      st = InternalRpc(target, kFnMemOp, w.bytes(), nullptr, kDefaultTimeout, pri);
      if (!st.ok()) {
        break;
      }
    }
    if (st.code() != lt::StatusCode::kStaleHome) {
      return st;
    }
    // Re-issuing the whole memset after a redirect is idempotent: the pattern
    // write repeats on nodes that already applied it.
    LT_RETURN_IF_ERROR(RefreshStaleLh(lh, &*entry));
  }
  return st;
}

namespace {

// Pairs up source and destination piece lists (both ordered by user offset
// and covering the same total length) into copy segments.
struct CopySegment {
  NodeId src_node;
  PhysAddr src_addr;
  NodeId dst_node;
  PhysAddr dst_addr;
  uint64_t len;
};

std::vector<CopySegment> PairPieces(const std::vector<LiteInstance::ChunkPiece>& src,
                                    const std::vector<LiteInstance::ChunkPiece>& dst) {
  std::vector<CopySegment> out;
  size_t si = 0;
  size_t di = 0;
  uint64_t soff = 0;
  uint64_t doff = 0;
  while (si < src.size() && di < dst.size()) {
    uint64_t take = std::min(src[si].len - soff, dst[di].len - doff);
    out.push_back(CopySegment{src[si].node, src[si].addr + soff, dst[di].node,
                              dst[di].addr + doff, take});
    soff += take;
    doff += take;
    if (soff == src[si].len) {
      ++si;
      soff = 0;
    }
    if (doff == dst[di].len) {
      ++di;
      doff = 0;
    }
  }
  return out;
}

}  // namespace

Status LiteInstance::Memcpy(Lh dst, uint64_t dst_off, Lh src, uint64_t src_off, uint64_t len,
                            Priority pri) {
  if (len == 0) {
    return Status::Ok();
  }
  lt::telemetry::ScopedSpan span(&node_->telemetry().tracer(), "LT_memcpy");
  SpinFor(params().lite_map_check_ns);
  auto src_entry = GetLh(src);
  if (!src_entry.ok()) {
    return src_entry.status();
  }
  auto dst_entry = GetLh(dst);
  if (!dst_entry.ok()) {
    return dst_entry.status();
  }
  LT_RETURN_IF_ERROR(CheckAccess(*src_entry, src_off, len, kPermRead));
  LT_RETURN_IF_ERROR(CheckAccess(*dst_entry, dst_off, len, kPermWrite));
  lt::telemetry::StampStage(lt::telemetry::TraceStage::kLhCheck, len);

  Status st = Status::Ok();
  for (int attempt = 0; attempt <= kMaxStaleRedirects; ++attempt) {
    auto segments = PairPieces(SliceChunks(src_entry->chunks, src_off, len),
                               SliceChunks(dst_entry->chunks, dst_off, len));
    // One LT_RPC to each node storing source data; that node either memcpys
    // locally or LT_writes to the destination node (paper Sec. 7.1).
    std::map<NodeId, std::vector<CopySegment>> by_src;
    for (const CopySegment& seg : segments) {
      by_src[seg.src_node].push_back(seg);
    }
    st = Status::Ok();
    for (const auto& [target, group] : by_src) {
      WireWriter w;
      w.Put<uint8_t>(1);  // op 1 = memcpy
      w.Put<uint8_t>(static_cast<uint8_t>(pri));
      w.Put<uint32_t>(static_cast<uint32_t>(group.size()));
      for (const CopySegment& seg : group) {
        w.Put<PhysAddr>(seg.src_addr);
        w.Put<NodeId>(seg.dst_node);
        w.Put<PhysAddr>(seg.dst_addr);
        w.Put<uint64_t>(seg.len);
      }
      st = InternalRpc(target, kFnMemOp, w.bytes(), nullptr, kDefaultTimeout, pri);
      if (!st.ok()) {
        break;
      }
    }
    if (st.code() != lt::StatusCode::kStaleHome) {
      return st;
    }
    // Either side may have migrated; refresh both mappings and re-pair.
    LT_RETURN_IF_ERROR(RefreshStaleLh(src, &*src_entry));
    LT_RETURN_IF_ERROR(RefreshStaleLh(dst, &*dst_entry));
  }
  return st;
}

Status LiteInstance::Memmove(Lh dst, uint64_t dst_off, Lh src, uint64_t src_off, uint64_t len,
                             Priority pri) {
  // Same engine as LT_memcpy; node-local segments use memmove semantics.
  return Memcpy(dst, dst_off, src, src_off, len, pri);
}

// ------------------------------------------------- master-role management

Status LiteInstance::SetPermission(const std::string& name, NodeId grantee, uint32_t perm) {
  auto master = LookupMasterNode(name);
  if (!master.ok()) {
    return master.status();
  }
  WireWriter w;
  w.PutString(name);
  w.Put<NodeId>(grantee);
  w.Put<uint32_t>(perm);
  w.Put<NodeId>(node_id());
  return InternalRpc(*master, kFnSetPermission, w.bytes(), nullptr);
}

Status LiteInstance::MoveLmr(const std::string& name, NodeId new_node, Priority pri) {
  auto master = LookupMasterNode(name);
  if (!master.ok()) {
    return master.status();
  }
  WireWriter w;
  w.PutString(name);
  w.Put<NodeId>(new_node);
  w.Put<NodeId>(node_id());
  w.Put<uint8_t>(static_cast<uint8_t>(pri));
  return InternalRpc(*master, kFnMasterMove, w.bytes(), nullptr,
                     /*timeout_ns=*/30'000'000'000ull, pri);
}

Status LiteInstance::GrantMaster(const std::string& name, NodeId new_master) {
  auto master = LookupMasterNode(name);
  if (!master.ok()) {
    return master.status();
  }
  WireWriter w;
  w.PutString(name);
  w.Put<NodeId>(new_master);
  w.Put<NodeId>(node_id());
  return InternalRpc(*master, kFnMasterGrant, w.bytes(), nullptr);
}

// --------------------------------------------------------------- atomics

StatusOr<uint64_t> LiteInstance::FetchAdd(Lh lh, uint64_t offset, uint64_t delta) {
  ScopedOpAttr attr(&node_->telemetry().latency(), "atomic", 8,
                    static_cast<int>(Priority::kHigh));
  const uint64_t submit_t0 = lt::NowNs();
  SpinFor(params().lite_map_check_ns);
  auto entry = GetLh(lh);
  if (!entry.ok()) {
    return entry.status();
  }
  LT_RETURN_IF_ERROR(CheckAccess(*entry, offset, 8, kPermWrite));
  AttrAdd(LatStage::kLatSubmit, lt::NowNs() - submit_t0);
  for (int attempt = 0; attempt <= kMaxStaleRedirects; ++attempt) {
    auto pieces = SliceChunks(entry->chunks, offset, 8);
    if (pieces.size() != 1) {
      return Status::InvalidArgument("atomic target straddles LMR chunks");
    }
    auto old_value = engine_.RemoteAtomic(pieces[0].node, pieces[0].addr, /*is_cas=*/false, delta, 0);
    if (old_value.ok() || old_value.status().code() != lt::StatusCode::kStaleHome) {
      return old_value;
    }
    LT_RETURN_IF_ERROR(RefreshStaleLh(lh, &*entry));
  }
  return Status::Unavailable("LMR home still settling after migration");
}

StatusOr<uint64_t> LiteInstance::TestSet(Lh lh, uint64_t offset, uint64_t expected,
                                         uint64_t desired) {
  ScopedOpAttr attr(&node_->telemetry().latency(), "atomic", 8,
                    static_cast<int>(Priority::kHigh));
  const uint64_t submit_t0 = lt::NowNs();
  SpinFor(params().lite_map_check_ns);
  auto entry = GetLh(lh);
  if (!entry.ok()) {
    return entry.status();
  }
  LT_RETURN_IF_ERROR(CheckAccess(*entry, offset, 8, kPermWrite));
  AttrAdd(LatStage::kLatSubmit, lt::NowNs() - submit_t0);
  for (int attempt = 0; attempt <= kMaxStaleRedirects; ++attempt) {
    auto pieces = SliceChunks(entry->chunks, offset, 8);
    if (pieces.size() != 1) {
      return Status::InvalidArgument("atomic target straddles LMR chunks");
    }
    auto old_value =
        engine_.RemoteAtomic(pieces[0].node, pieces[0].addr, /*is_cas=*/true, expected, desired);
    if (old_value.ok() || old_value.status().code() != lt::StatusCode::kStaleHome) {
      return old_value;
    }
    LT_RETURN_IF_ERROR(RefreshStaleLh(lh, &*entry));
  }
  return Status::Unavailable("LMR home still settling after migration");
}

// ------------------------------------------------------- distributed locks

StatusOr<LockId> LiteInstance::CreateLock(const std::string& name) {
  auto lh = Malloc(8, LockName(name));
  if (!lh.ok()) {
    return lh.status();
  }
  uint64_t zero = 0;
  LT_RETURN_IF_ERROR(Write(*lh, 0, &zero, sizeof(zero)));
  auto entry = GetLh(*lh);
  if (!entry.ok()) {
    return entry.status();
  }
  return LockId{entry->chunks[0].node, entry->chunks[0].addr};
}

StatusOr<LockId> LiteInstance::OpenLock(const std::string& name) {
  auto lh = Map(LockName(name));
  if (!lh.ok()) {
    return lh.status();
  }
  auto entry = GetLh(*lh);
  if (!entry.ok()) {
    return entry.status();
  }
  return LockId{entry->chunks[0].node, entry->chunks[0].addr};
}

Status LiteInstance::Lock(const LockId& lock) {
  if (!lock.valid()) {
    return Status::InvalidArgument("invalid lock id");
  }
  // Fast path: one LT_fetch-add acquires an uncontended lock (paper Sec. 7.2).
  auto old_value = engine_.RemoteAtomic(lock.owner, lock.addr, /*is_cas=*/false, 1, 0);
  if (!old_value.ok()) {
    return old_value.status();
  }
  if (*old_value == 0) {
    return Status::Ok();
  }
  // Contended: join the FIFO wait queue at the lock's owner; the reply to
  // this RPC *is* the grant.
  WireWriter w;
  w.Put<PhysAddr>(lock.addr);
  return InternalRpc(lock.owner, kFnLockWait, w.bytes(), nullptr,
                     /*timeout_ns=*/60'000'000'000ull);
}

Status LiteInstance::Unlock(const LockId& lock) {
  if (!lock.valid()) {
    return Status::InvalidArgument("invalid lock id");
  }
  auto old_value =
      engine_.RemoteAtomic(lock.owner, lock.addr, /*is_cas=*/false, static_cast<uint64_t>(-1), 0);
  if (!old_value.ok()) {
    return old_value.status();
  }
  if (*old_value == 0) {
    return Status::FailedPrecondition("unlock of a free lock");
  }
  if (*old_value > 1) {
    // Waiters exist: tell the owner to grant the next one (fire-and-forget;
    // only one waiter is woken, minimizing network traffic, Sec. 7.2).
    WireWriter w;
    w.Put<PhysAddr>(lock.addr);
    return RpcSendNoReply(lock.owner, kFnLockGrant, w.bytes().data(),
                          static_cast<uint32_t>(w.bytes().size()));
  }
  return Status::Ok();
}

Status LiteInstance::Barrier(const std::string& name, uint32_t expected) {
  WireWriter w;
  w.PutString(name);
  w.Put<uint32_t>(expected);
  return InternalRpc(manager_node_, kFnBarrier, w.bytes(), nullptr,
                     /*timeout_ns=*/120'000'000'000ull);
}

}  // namespace lite
