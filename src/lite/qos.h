// QoS for shared LITE resources (paper Sec. 6.2).
//
// Two mechanisms evaluated in the paper:
//   * HW-Sep: hardware resource isolation — disjoint subsets of the shared
//     QP pool are reserved per priority, so low-priority traffic can never
//     occupy high-priority queues (but reserved capacity idles when unused).
//   * SW-Pri: software sender-side flow control — low-priority requests are
//     rate-limited when (1) high-priority load is high or (3) high-priority
//     RTTs inflate; when high-priority traffic is light (2), low-priority
//     runs at full rate.
#ifndef SRC_LITE_QOS_H_
#define SRC_LITE_QOS_H_

#include <atomic>
#include <cstdint>
#include <utility>

#include "src/common/rate_window.h"
#include "src/lite/types.h"
#include "src/sim/params.h"

namespace lt {
namespace telemetry {
class Journal;
}  // namespace telemetry
}  // namespace lt

namespace lite {

class QosManager {
 public:
  explicit QosManager(const lt::SimParams& params) : params_(params) {}

  void SetPolicy(QosPolicy policy) { policy_.store(policy, std::memory_order_relaxed); }
  QosPolicy policy() const { return policy_.load(std::memory_order_relaxed); }

  // Called before each one-sided op. Under SW-Pri this may delay (in virtual
  // time) low-priority requests.
  void Admit(Priority pri, uint64_t bytes);

  // Called after each high-priority op completes, with its measured RTT.
  void RecordHighPriRtt(uint64_t rtt_ns);

  // HW-Sep: the half-open QP-pool slot range [lo, hi) priority `pri` may use
  // out of a pool of `k` QPs per destination.
  std::pair<int, int> QpRange(Priority pri, int k) const;

  // Introspection.
  uint64_t low_pri_delay_total_ns() const {
    return low_delay_total_ns_.load(std::memory_order_relaxed);
  }
  uint64_t admit_count() const { return admits_.load(std::memory_order_relaxed); }
  uint64_t throttle_count() const { return throttles_.load(std::memory_order_relaxed); }

  // Flight recorder for throttle decisions (set once at instance bring-up).
  void SetJournal(lt::telemetry::Journal* journal) { journal_ = journal; }

 private:
  // Policy body of Admit; returns the virtual-time throttle delay charged
  // (0 when the op was admitted unthrottled).
  uint64_t AdmitInner(Priority pri, uint64_t bytes);

  // Rolling high-priority load in bytes within the current window.
  void AccountHighBytes(uint64_t bytes, uint64_t now);
  bool HighPriActive(uint64_t now) const;

  static constexpr uint64_t kWindowNs = 50'000'000;  // 50 ms monitoring window.
  static constexpr double kLowPriRestrictedRate = 0.15;  // bytes/ns when limited.
  static constexpr double kRttInflation = 1.5;

  const lt::SimParams& params_;
  std::atomic<QosPolicy> policy_{QosPolicy::kNone};

  std::atomic<uint64_t> window_start_ns_{0};
  std::atomic<uint64_t> window_hi_bytes_{0};
  std::atomic<uint64_t> last_window_hi_bytes_{0};

  std::atomic<uint64_t> rtt_ewma_ns_{0};
  std::atomic<uint64_t> rtt_floor_ns_{0};

  lt::RateWindow low_rate_;  // Low-priority rate limiter (windowed).
  std::atomic<uint64_t> limited_until_ns_{0};
  std::atomic<uint64_t> low_delay_total_ns_{0};
  std::atomic<uint64_t> admits_{0};
  std::atomic<uint64_t> throttles_{0};
  lt::telemetry::Journal* journal_ = nullptr;
};

}  // namespace lite

#endif  // SRC_LITE_QOS_H_
