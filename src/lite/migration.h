// Live LMR migration with epoch-fenced ownership (DESIGN.md "Epoch-fenced
// ownership & live migration").
//
// Two pieces live here:
//
//  * MigrationState — the per-instance ownership guard. It models the RNIC
//    MPT interception point at an LMR's home node: every one-sided access the
//    op engine issues against node N first consults N's MigrationState (the
//    issuer reaches it through the peer table, the simulated analogue of the
//    responder NIC checking its protection tables). While a migration is
//    mirroring/converging, writes are interval-logged so concurrent traffic
//    can be re-copied; during the fence, accesses park; after commit, the
//    record stays behind as a tombstone that NACKs stale-epoch accesses with
//    kStaleHome so the issuer re-resolves the new home and re-issues.
//
//  * The migration coordinator state machine (migration.cc, methods on
//    LiteInstance): mirror -> converge -> fence -> commit, with clean abort
//    back to the source on any failure, composing with the fault engine.
//
// Cost contract: when no migration has ever touched this node, the guard is
// one relaxed atomic load per access — zero virtual time, no locks — so the
// single-piece latency path (bench fig06) is byte-identical with migration
// idle.
#ifndef SRC_LITE_MIGRATION_H_
#define SRC_LITE_MIGRATION_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/lite/types.h"
#include "src/telemetry/journal.h"
#include "src/telemetry/metrics.h"

namespace lite {

using lt::Status;
using lt::StatusOr;

// Phase values are journaled (kMigratePhase's `b` argument) and must stay
// stable; see docs/TELEMETRY.md.
enum class MigrationPhase : uint8_t {
  kIdle = 0,
  kMirror = 1,     // Bulk chunk copy src -> dst under a dirty-interval log.
  kConverge = 2,   // Bounded re-copy rounds of intervals dirtied meanwhile.
  kFence = 3,      // New accesses park; in-flight ones drain; final re-copy.
  kCommitted = 4,  // Dst is home; the record is now a stale-home tombstone.
  kAborted = 5,    // Src stays home; the record is inert.
};

// Redirect payload a stale-epoch NACK resolves to (kFnStaleHome reply).
struct StaleRedirect {
  NodeId new_home = kInvalidNode;
  uint64_t epoch = 0;
  std::vector<LmrChunk> chunks;
};

// One migration in flight (or committed: then it is the tombstone for the
// moved LMR). Interval state is in LMR-offset space so the coordinator can
// re-copy dirty ranges without re-deriving chunk math.
struct MigrationRecord {
  std::string name;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  uint64_t old_epoch = 0;

  // Old placement at the source, with each chunk's base LMR offset.
  std::vector<LmrChunk> old_chunks;
  std::vector<uint64_t> chunk_lmr_base;

  // All fields below are guarded by mu.
  std::mutex mu;
  std::condition_variable cv;
  MigrationPhase phase = MigrationPhase::kMirror;
  uint64_t tokens = 0;        // Accesses between gate-open and post-complete.
  std::map<uint64_t, uint64_t> dirty;  // LMR-offset intervals [begin, end).
  uint64_t unpark_vtime_ns = 0;  // Virtual time parked ops resume at.

  // Valid once phase == kCommitted.
  NodeId new_home = kInvalidNode;
  uint64_t new_epoch = 0;
  std::vector<LmrChunk> new_chunks;
};

// Chunks staged at a migration destination by kFnMigrateInstall, waiting for
// kFnMigrateActivate (commit) or kFnMigrateAbort (uninstall).
struct StagedInstall {
  NodeId src = kInvalidNode;
  uint64_t size = 0;
  uint64_t new_epoch = 0;
  std::vector<LmrChunk> chunks;
};

// Issuer-side handle for one gated access; pass back to CloseAccess exactly
// once for every OpenAccess that returned kClear.
struct AccessGate {
  std::shared_ptr<MigrationRecord> rec;  // Non-null iff a token is held.
  PhysAddr addr = 0;
  uint64_t len = 0;
  bool is_write = false;
};

class MigrationState {
 public:
  enum class Gate {
    kClear,  // Proceed; caller must CloseAccess when the post is done.
    kStale,  // Target range belongs to a committed migration: kStaleHome.
    kBusy,   // Fence wait exceeded its cap; surface as transient Unavailable.
  };

  MigrationState() = default;
  MigrationState(const MigrationState&) = delete;
  MigrationState& operator=(const MigrationState&) = delete;

  // Wires journal + counters (instance construction time).
  void RegisterTelemetry(lt::telemetry::Registry* registry,
                         lt::telemetry::Journal* journal);

  // True once any migration record (active or tombstone) exists on this
  // node. Single relaxed load: the idle-path cost of the whole subsystem.
  bool armed() const { return armed_.load(std::memory_order_relaxed) != 0; }

  // Gate around one one-sided access to this node's memory. `park_poll_ns`
  // bounds each fence re-check (virtual charge); `park_cap_real_ns` bounds
  // the total real-time fence wait before giving up with kBusy.
  Gate OpenAccess(PhysAddr addr, uint64_t len, bool is_write, NodeId requester,
                  uint64_t park_cap_real_ns, AccessGate* gate);
  // Releases the token (and heals the arming race: a write that opened
  // before the record armed but completed after it is dirty-logged here).
  void CloseAccess(AccessGate* gate, bool success);

  // ---- Coordinator side (source node) ----
  // Installs a record covering `chunks` (all local to this node) and arms
  // the guard. Fails if the name already has an active record or any range
  // collides with an existing one.
  StatusOr<std::shared_ptr<MigrationRecord>> Begin(const std::string& name, NodeId src, NodeId dst,
                                                   uint64_t old_epoch,
                                                   const std::vector<LmrChunk>& chunks,
                                                   uint64_t lmr_size);
  void SetPhase(const std::shared_ptr<MigrationRecord>& rec, MigrationPhase phase);
  // Waits (real time) until no access tokens are outstanding.
  bool DrainTokens(const std::shared_ptr<MigrationRecord>& rec, uint64_t cap_real_ns);
  // Atomically takes and clears the dirty-interval set.
  std::map<uint64_t, uint64_t> TakeDirty(const std::shared_ptr<MigrationRecord>& rec);
  // Flips the record into its tombstone form and unparks all waiters at
  // `unpark_vtime_ns` (the coordinator's commit-point virtual time).
  void Commit(const std::shared_ptr<MigrationRecord>& rec, NodeId new_home, uint64_t new_epoch,
              std::vector<LmrChunk> new_chunks, uint64_t unpark_vtime_ns);
  // Clean abort: removes the record (ranges clear, waiters resume against
  // this node, which stays home).
  void Abort(const std::shared_ptr<MigrationRecord>& rec, uint64_t unpark_vtime_ns);

  // Tombstone lookup backing the kFnStaleHome handler and the issuer-side
  // redirect fast path.
  StatusOr<StaleRedirect> LookupTombstone(const std::string& name) const;

  // Retires a committed tombstone once this node hosts `name` again at
  // `current_epoch` >= the epoch the LMR left with (i.e. the LMR migrated
  // back here). The name becomes migratable again; the old quarantined
  // ranges stay armed in ranges_ so doubly-stale accesses still NACK.
  void Supersede(const std::string& name, uint64_t current_epoch);

  // ---- Destination side (staging) ----
  // Returns false if the name already has a staged install.
  bool Stage(const std::string& name, StagedInstall staged);
  StatusOr<StagedInstall> TakeStaged(const std::string& name);

  // ---- Introspection / counters (shared with the coordinator) ----
  lt::telemetry::Counter* started_ = nullptr;
  lt::telemetry::Counter* committed_ = nullptr;
  lt::telemetry::Counter* aborted_ = nullptr;
  lt::telemetry::Counter* rounds_ = nullptr;
  lt::telemetry::Counter* bytes_copied_ = nullptr;
  lt::telemetry::Counter* dirty_bytes_ = nullptr;
  lt::telemetry::Counter* parked_ops_ = nullptr;
  lt::telemetry::Counter* stale_nacks_ = nullptr;
  lt::telemetry::Counter* redirects_ = nullptr;
  lt::telemetry::Counter* drained_lmrs_ = nullptr;
  lt::telemetry::Journal* journal_ = nullptr;

 private:
  struct RangeRef {
    PhysAddr end = 0;
    std::shared_ptr<MigrationRecord> rec;
  };

  // Logs [addr, addr+len) as dirty in LMR-offset space. rec->mu held.
  static void AddDirtyLocked(MigrationRecord* rec, PhysAddr addr, uint64_t len);

  std::shared_ptr<MigrationRecord> FindRange(PhysAddr addr, uint64_t len) const;

  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<MigrationRecord>> records_;
  std::map<PhysAddr, RangeRef> ranges_;  // Keyed by range start.
  std::unordered_map<std::string, StagedInstall> staged_;
  // records_.size() + ranges_.size(), republished under mu_. Counts ranges
  // too: a superseded tombstone leaves records_ but its quarantined ranges
  // must keep gating.
  std::atomic<uint64_t> armed_{0};
};

}  // namespace lite

#endif  // SRC_LITE_MIGRATION_H_
