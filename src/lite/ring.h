// Per-CPU submission/completion rings (DESIGN.md §9).
//
// With `lite_ring_enable` on, a user-level LiteClient stops paying one
// user->kernel crossing per op. Instead it enqueues op descriptors into a
// shared-memory per-CPU submission ring (a cache-line write — below this
// model's nanosecond granularity, so the enqueue itself charges nothing)
// and rings a doorbell — one CrossUserKernelBatched() — only when the
// kernel-half drainer has gone cold. The drainer adaptively spins for
// lite_ring_spin_ns after its last activity before sleeping, so back-to-back
// ops ride one crossing: the doorbell opens an *epoch*, every op drained
// until the ring next goes cold amortizes that single crossing, and the
// epoch's op count is booked into the ops-per-crossing histogram when the
// next doorbell closes it.
//
// Async submissions (LT_read_async/LT_write_async) additionally defer: the
// descriptor parks in the ring and the kernel half executes a whole batch
// per drain — one lh map-check per distinct lh per batch, with the engine's
// PR-4 RNIC doorbell batching coalescing the posts behind it. Flush
// triggers: lite_ring_doorbell_batch entries, lite_ring_flush_ns age,
// lite_ring_entries occupancy (overflow backpressure), any sync op on the
// same ring (program-order fence), or any reap (LT_poll/LT_wait need the
// handle registered).
//
// Completions are published to a completion ring the user half reaps with
// adaptive spin-then-sleep: a reap that returns within lite_ring_spin_ns is
// crossing-free (spin hit); a longer one slept and pays one crossing + one
// thread wakeup for the whole sleep cycle.
//
// With rings off this file is inert: LiteInstance never constructs the
// object and LiteClient takes the classic one-crossing-per-op path,
// byte-identical to earlier revisions.
#ifndef SRC_LITE_RING_H_
#define SRC_LITE_RING_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "src/common/status.h"
#include "src/lite/lmr_table.h"
#include "src/lite/types.h"
#include "src/telemetry/latency_attr.h"
#include "src/telemetry/metrics.h"

namespace lite {

using lt::Status;
using lt::StatusOr;

class LiteInstance;

// One async memop parked in a submission ring awaiting its drain. The
// completion handle is reserved at enqueue (the caller gets it back
// immediately); the op registers with the engine when the batch drains.
struct RingDeferredOp {
  Lh lh = 0;
  uint64_t offset = 0;
  void* buf = nullptr;
  uint64_t len = 0;
  bool is_read = false;
  Priority pri = Priority::kHigh;
  MemopHandle handle = 0;
  uint64_t enqueue_ns = 0;
  // Attribution record detached from the issuing API scope; adopted by the
  // kernel half for the drain and handed on to the engine's AsyncOp.
  lt::telemetry::OpAttrRecord attr;
};

// Kernel-half state cached across one drain batch: the lh resolution (map
// check) is charged once per distinct lh per batch, amortizing the lookup
// the same way the doorbell amortizes the crossing.
struct RingDrainCache {
  bool valid = false;
  Lh lh = 0;
  LhEntry entry;
};

class SubmissionRings {
 public:
  explicit SubmissionRings(LiteInstance* inst);

  SubmissionRings(const SubmissionRings&) = delete;
  SubmissionRings& operator=(const SubmissionRings&) = delete;

  // Registers the lite.ring.* instruments (constructor-time, via
  // LiteInstance::RegisterTelemetry).
  void RegisterTelemetry(lt::telemetry::Registry& reg);

  // ---- User-half entry points (called by LiteClient) ----
  // Brackets one sync op: SyncEnter flushes this CPU's deferred async
  // submissions first (program order within a ring) and rings the doorbell
  // if the drainer has gone cold; SyncExit books the op into the open epoch
  // and keeps the drainer hot. Use the RingGate RAII below.
  void SyncEnter();
  void SyncExit(uint64_t ops = 1);

  // Defers one async memop into this CPU's ring. Validates against the
  // read-only lh-table mapping (shared page: no crossing, no charge — the
  // kernel half pays the authoritative map check per drain) and returns the
  // reserved completion handle.
  StatusOr<MemopHandle> SubmitAsync(Lh lh, uint64_t offset, void* buf, uint64_t len, bool is_read,
                                    Priority pri);

  // Ensures `h` is registered with the engine: if it is still parked in
  // some ring, that ring's deferred queue drains (in order). No-op when
  // already flushed.
  void FlushHandle(MemopHandle h);
  // Drains every ring's deferred submissions (LT_wait_all ordering).
  void FlushAll();

  // Books the outcome of one blocking reap (LT_wait/LT_wait_all): a wait
  // within the spin budget found the completion ring hot (crossing-free);
  // a longer one slept and pays one crossing + one thread wakeup for the
  // whole sleep cycle — not one per poll iteration.
  void AccountReap(uint64_t waited_ns);

  // Snapshot probes: epochs whose closing doorbell has not happened yet and
  // the ops booked into them (the watchdog balances these against the
  // ops-per-crossing histogram).
  uint64_t OpenEpochs() const;
  uint64_t OpenEpochOps() const;
  uint64_t DeferredPending() const;

 private:
  struct CpuRing {
    mutable std::mutex mu;
    bool epoch_open = false;     // A doorbell has been rung; closes cold.
    uint64_t epoch_ops = 0;      // Ops amortized over the open doorbell.
    uint64_t hot_until_ns = 0;   // Drainer spins until this virtual time.
    std::vector<RingDeferredOp> deferred;
  };

  CpuRing& RingForThisThread();
  // Doorbell decision at a boundary interaction; r.mu held. Charges one
  // batched crossing when the drainer is cold, closing the previous epoch.
  void MaybeDoorbellLocked(CpuRing& r);
  // Executes a stolen batch (no ring lock held) and books its ops.
  void DrainBatch(CpuRing& r, std::vector<RingDeferredOp>&& batch);
  void BookOpsLocked(CpuRing& r, uint64_t ops);

  LiteInstance* const inst_;
  const uint64_t spin_ns_;
  const uint64_t flush_ns_;
  const uint32_t batch_;
  const uint32_t entries_;
  std::vector<std::unique_ptr<CpuRing>> rings_;

  // lite.ring.* instruments (docs/TELEMETRY.md).
  lt::telemetry::Counter* ops_ = nullptr;
  lt::telemetry::Counter* doorbells_ = nullptr;
  lt::telemetry::Counter* deferred_flushes_ = nullptr;
  lt::telemetry::Counter* overflow_flushes_ = nullptr;
  lt::telemetry::Counter* spin_hits_ = nullptr;
  lt::telemetry::Counter* sleep_wakeups_ = nullptr;
  lt::telemetry::FixedHistogram* ops_per_crossing_ = nullptr;
};

// RAII bracket for one sync op submitted through the rings.
class RingGate {
 public:
  explicit RingGate(SubmissionRings* rings) : rings_(rings) { rings_->SyncEnter(); }
  ~RingGate() { rings_->SyncExit(); }

  RingGate(const RingGate&) = delete;
  RingGate& operator=(const RingGate&) = delete;

 private:
  SubmissionRings* const rings_;
};

}  // namespace lite

#endif  // SRC_LITE_RING_H_
