#include "src/lite/client.h"

#include "src/common/timing.h"
#include "src/lite/ring.h"

namespace lite {

using lt::telemetry::AttrAdd;
using lt::telemetry::LatStage;
using lt::telemetry::ScopedOpAttr;

void LiteClient::EnterKernel() {
  if (kernel_level_) {
    return;
  }
  const uint64_t cross_t0 = lt::NowNs();
  if (naive_syscalls_) {
    // Unoptimized path: full trap in and out, plus the extra crossings of the
    // separate recv/reply syscalls (~0.9 us total per RPC, paper Sec. 5.2).
    instance_->node()->os().Syscall();
    instance_->node()->os().CrossUserKernel();
    AttrAdd(LatStage::kLatCross, lt::NowNs() - cross_t0);
    return;
  }
  // Optimized path: one user->kernel crossing; the return is hidden behind
  // the shared user/kernel page the LITE library spins on.
  instance_->node()->os().CrossUserKernel();
  AttrAdd(LatStage::kLatCross, lt::NowNs() - cross_t0);
}

lt::telemetry::LatencyAttr* LiteClient::AttrSink() {
  return &instance_->node()->telemetry().latency();
}

StatusOr<Lh> LiteClient::Malloc(uint64_t size, const std::string& name,
                                const MallocOptions& options) {
  EnterKernel();
  return instance_->Malloc(size, name, options);
}

Status LiteClient::Free(Lh lh) {
  EnterKernel();
  return instance_->Free(lh);
}

StatusOr<Lh> LiteClient::Map(const std::string& name, uint32_t want_perm) {
  EnterKernel();
  return instance_->Map(name, want_perm);
}

Status LiteClient::Unmap(Lh lh) {
  EnterKernel();
  return instance_->Unmap(lh);
}

Status LiteClient::Read(Lh lh, uint64_t offset, void* buf, uint64_t len) {
  // Begin the trace span before the boundary crossing so user-level spans
  // show the syscall_cross stage; the instance-level span begin is then inert.
  lt::telemetry::ScopedSpan span(&instance_->node()->telemetry().tracer(), "LT_read");
  ScopedOpAttr attr(AttrSink(), "read", len, static_cast<int>(priority_));
  if (UseRings()) {
    RingGate gate(instance_->rings());
    return instance_->Read(lh, offset, buf, len, priority_);
  }
  EnterKernel();
  return instance_->Read(lh, offset, buf, len, priority_);
}

StatusOr<MemopHandle> LiteClient::ReadAsync(Lh lh, uint64_t offset, void* buf, uint64_t len) {
  lt::telemetry::ScopedSpan span(&instance_->node()->telemetry().tracer(), "LT_read_async");
  ScopedOpAttr attr(AttrSink(), "aread", len, static_cast<int>(priority_));
  if (UseRings()) {
    // Deferred submission: the descriptor parks in this CPU's ring (no
    // crossing); the kernel half drains a whole batch per doorbell.
    return instance_->rings()->SubmitAsync(lh, offset, buf, len, /*is_read=*/true, priority_);
  }
  EnterKernel();
  return instance_->ReadAsync(lh, offset, buf, len, priority_);
}

StatusOr<MemopHandle> LiteClient::WriteAsync(Lh lh, uint64_t offset, const void* buf,
                                             uint64_t len) {
  lt::telemetry::ScopedSpan span(&instance_->node()->telemetry().tracer(), "LT_write_async");
  ScopedOpAttr attr(AttrSink(), "awrite", len, static_cast<int>(priority_));
  if (UseRings()) {
    return instance_->rings()->SubmitAsync(lh, offset, const_cast<void*>(buf), len,
                                           /*is_read=*/false, priority_);
  }
  EnterKernel();
  return instance_->WriteAsync(lh, offset, buf, len, priority_);
}

StatusOr<bool> LiteClient::Poll(MemopHandle h) {
  if (UseRings()) {
    // Reaping reads the shared completion ring: crossing-free. The handle
    // must be registered first, so its deferred batch (if any) drains now.
    instance_->rings()->FlushHandle(h);
    return instance_->Poll(h);
  }
  EnterKernel();
  return instance_->Poll(h);
}

Status LiteClient::Wait(MemopHandle h) {
  if (UseRings()) {
    SubmissionRings* rings = instance_->rings();
    rings->FlushHandle(h);
    const uint64_t wait_t0 = lt::NowNs();
    Status s = instance_->Wait(h);
    rings->AccountReap(lt::NowNs() - wait_t0);
    return s;
  }
  // Blocking fallback: the shared completion flag shows an already-done op
  // without entering the kernel; the crossing is paid once per sleep cycle
  // (stamped into kLatCross by EnterKernel), not per poll iteration.
  if (naive_syscalls_ || !instance_->AsyncHandleReady(h)) {
    EnterKernel();
  }
  return instance_->Wait(h);
}

Status LiteClient::WaitAll() {
  if (UseRings()) {
    SubmissionRings* rings = instance_->rings();
    rings->FlushAll();
    const uint64_t wait_t0 = lt::NowNs();
    Status s = instance_->WaitAll();
    rings->AccountReap(lt::NowNs() - wait_t0);
    return s;
  }
  if (naive_syscalls_ || !instance_->AsyncAllReady()) {
    EnterKernel();
  }
  return instance_->WaitAll();
}

Status LiteClient::WaitAll(std::vector<std::pair<MemopHandle, Status>>* results) {
  if (UseRings()) {
    SubmissionRings* rings = instance_->rings();
    rings->FlushAll();
    const uint64_t wait_t0 = lt::NowNs();
    Status s = instance_->WaitAll(results);
    rings->AccountReap(lt::NowNs() - wait_t0);
    return s;
  }
  if (naive_syscalls_ || !instance_->AsyncAllReady()) {
    EnterKernel();
  }
  return instance_->WaitAll(results);
}

Status LiteClient::Write(Lh lh, uint64_t offset, const void* buf, uint64_t len) {
  lt::telemetry::ScopedSpan span(&instance_->node()->telemetry().tracer(), "LT_write");
  ScopedOpAttr attr(AttrSink(), "write", len, static_cast<int>(priority_));
  if (UseRings()) {
    RingGate gate(instance_->rings());
    return instance_->Write(lh, offset, buf, len, priority_);
  }
  EnterKernel();
  return instance_->Write(lh, offset, buf, len, priority_);
}

Status LiteClient::Memset(Lh lh, uint64_t offset, uint8_t value, uint64_t len) {
  if (UseRings()) {
    RingGate gate(instance_->rings());
    return instance_->Memset(lh, offset, value, len, priority_);
  }
  EnterKernel();
  return instance_->Memset(lh, offset, value, len, priority_);
}

Status LiteClient::Memcpy(Lh dst, uint64_t dst_off, Lh src, uint64_t src_off, uint64_t len) {
  if (UseRings()) {
    RingGate gate(instance_->rings());
    return instance_->Memcpy(dst, dst_off, src, src_off, len, priority_);
  }
  EnterKernel();
  return instance_->Memcpy(dst, dst_off, src, src_off, len, priority_);
}

Status LiteClient::Memmove(Lh dst, uint64_t dst_off, Lh src, uint64_t src_off, uint64_t len) {
  if (UseRings()) {
    RingGate gate(instance_->rings());
    return instance_->Memmove(dst, dst_off, src, src_off, len, priority_);
  }
  EnterKernel();
  return instance_->Memmove(dst, dst_off, src, src_off, len, priority_);
}

Status LiteClient::RegisterRpc(RpcFuncId func) {
  EnterKernel();
  return instance_->RegisterRpc(func);
}

Status LiteClient::Rpc(NodeId server, RpcFuncId func, const void* in, uint32_t in_len, void* out,
                       uint32_t out_max, uint32_t* out_len) {
  lt::telemetry::ScopedSpan span(&instance_->node()->telemetry().tracer(), "LT_RPC");
  ScopedOpAttr attr(AttrSink(), "rpc", in_len, static_cast<int>(priority_));
  if (UseRings()) {
    RingGate gate(instance_->rings());
    return instance_->Rpc(server, func, in, in_len, out, out_max, out_len, priority_);
  }
  EnterKernel();
  return instance_->Rpc(server, func, in, in_len, out, out_max, out_len, priority_);
}

Status LiteClient::MulticastRpc(const std::vector<NodeId>& servers, RpcFuncId func, const void* in,
                                uint32_t in_len, std::vector<std::vector<uint8_t>>* replies) {
  if (UseRings()) {
    RingGate gate(instance_->rings());
    return instance_->MulticastRpc(servers, func, in, in_len, replies);
  }
  EnterKernel();
  return instance_->MulticastRpc(servers, func, in, in_len, replies);
}

StatusOr<RpcIncoming> LiteClient::RecvRpc(RpcFuncId func, uint64_t timeout_ns) {
  EnterKernel();
  return instance_->RecvRpc(func, timeout_ns);
}

Status LiteClient::ReplyRpc(const ReplyToken& token, const void* data, uint32_t len) {
  EnterKernel();
  return instance_->ReplyRpc(token, data, len);
}

StatusOr<RpcIncoming> LiteClient::ReplyAndRecv(const ReplyToken& token, const void* data,
                                               uint32_t len, RpcFuncId func, uint64_t timeout_ns) {
  // The combined API exists precisely to pay ONE boundary crossing for both
  // the reply and the next receive (paper Sec. 5.2).
  EnterKernel();
  return instance_->ReplyAndRecv(token, data, len, func, timeout_ns);
}

Status LiteClient::SendMsg(NodeId dst, const void* data, uint32_t len) {
  if (UseRings()) {
    RingGate gate(instance_->rings());
    return instance_->SendMsg(dst, data, len, priority_);
  }
  EnterKernel();
  return instance_->SendMsg(dst, data, len, priority_);
}

StatusOr<MsgIncoming> LiteClient::RecvMsg(uint64_t timeout_ns) {
  EnterKernel();
  return instance_->RecvMsg(timeout_ns);
}

StatusOr<uint64_t> LiteClient::FetchAdd(Lh lh, uint64_t offset, uint64_t delta) {
  ScopedOpAttr attr(AttrSink(), "atomic", 8, static_cast<int>(Priority::kHigh));
  if (UseRings()) {
    RingGate gate(instance_->rings());
    return instance_->FetchAdd(lh, offset, delta);
  }
  EnterKernel();
  return instance_->FetchAdd(lh, offset, delta);
}

StatusOr<uint64_t> LiteClient::TestSet(Lh lh, uint64_t offset, uint64_t expected,
                                       uint64_t desired) {
  ScopedOpAttr attr(AttrSink(), "atomic", 8, static_cast<int>(Priority::kHigh));
  if (UseRings()) {
    RingGate gate(instance_->rings());
    return instance_->TestSet(lh, offset, expected, desired);
  }
  EnterKernel();
  return instance_->TestSet(lh, offset, expected, desired);
}

StatusOr<LockId> LiteClient::CreateLock(const std::string& name) {
  EnterKernel();
  return instance_->CreateLock(name);
}

StatusOr<LockId> LiteClient::OpenLock(const std::string& name) {
  EnterKernel();
  return instance_->OpenLock(name);
}

Status LiteClient::Lock(const LockId& lock) {
  EnterKernel();
  return instance_->Lock(lock);
}

Status LiteClient::Unlock(const LockId& lock) {
  EnterKernel();
  return instance_->Unlock(lock);
}

Status LiteClient::Barrier(const std::string& name, uint32_t expected) {
  EnterKernel();
  return instance_->Barrier(name, expected);
}

Status LiteClient::Migrate(const std::string& name, NodeId new_home,
                           LiteInstance::MigrateStats* stats) {
  EnterKernel();
  return instance_->Migrate(name, new_home, stats);
}

Status LiteClient::DrainNode(NodeId victim, uint64_t* moved) {
  EnterKernel();
  return instance_->DrainNode(victim, moved);
}

}  // namespace lite
