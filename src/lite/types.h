// Public types of the LITE abstraction (paper Secs. 3-5).
//
// The central entity is the LITE memory region (LMR), addressed only through
// an opaque local handle `Lh` — a capability encapsulating both address
// mapping and permission (paper Sec. 4.1). lh values are meaningless outside
// the LITE instance that issued them.
#ifndef SRC_LITE_TYPES_H_
#define SRC_LITE_TYPES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/mem/addr.h"

namespace lite {

using lt::kInvalidNode;
using lt::NodeId;
using lt::PhysAddr;

// Opaque LMR handle. 0 is never a valid handle.
using Lh = uint64_t;
constexpr Lh kInvalidLh = 0;

// Opaque completion handle returned by the async APIs (LT_read_async /
// LT_write_async / async RPC); retired through LT_poll / LT_wait /
// LT_wait_all. 0 is never a valid handle.
using MemopHandle = uint64_t;
constexpr MemopHandle kInvalidMemopHandle = 0;

// Permissions a master can grant on an LMR (paper Sec. 4.1). Master implies
// the right to move/free the LMR and to grant permissions.
enum LmrPerm : uint32_t {
  kPermRead = 1u << 0,
  kPermWrite = 1u << 1,
  kPermMaster = 1u << 2,
};

// Request priority classes for QoS (paper Sec. 6.2).
enum class Priority : uint8_t { kHigh = 0, kLow = 1 };

// QoS policies evaluated in the paper: none, hardware separation of QPs
// (HW-Sep), software priority-based rate control (SW-Pri).
enum class QosPolicy : uint8_t { kNone = 0, kHwSep = 1, kSwPri = 2 };

// One physically-consecutive piece of an LMR. Large LMRs are split into
// chunks (paper Sec. 4.1, "spread large LMRs into smaller physically-
// consecutive memory regions"); chunks may live on different nodes.
struct LmrChunk {
  NodeId node = kInvalidNode;
  PhysAddr addr = lt::kInvalidPhysAddr;
  uint64_t size = 0;
};

// RPC function identifier. Application functions use ids 0..999; LITE
// reserves 1000+ for its internal control functions.
using RpcFuncId = uint32_t;

constexpr RpcFuncId kMaxAppFuncId = 999;

// Reserved internal function ids (served by LITE's worker threads).
constexpr RpcFuncId kFnRegisterName = 1000;
constexpr RpcFuncId kFnLookupName = 1001;
constexpr RpcFuncId kFnUnregisterName = 1002;
constexpr RpcFuncId kFnAllocChunks = 1003;
constexpr RpcFuncId kFnFreeChunks = 1004;
constexpr RpcFuncId kFnMapLmr = 1005;
constexpr RpcFuncId kFnUnmapLmr = 1006;
constexpr RpcFuncId kFnLmrInvalidate = 1007;
constexpr RpcFuncId kFnMemOp = 1008;
constexpr RpcFuncId kFnLockWait = 1009;
constexpr RpcFuncId kFnLockGrant = 1010;
constexpr RpcFuncId kFnBarrier = 1011;
constexpr RpcFuncId kFnLmrUpdate = 1012;
constexpr RpcFuncId kFnSetPermission = 1013;
constexpr RpcFuncId kFnRingSetup = 1014;
constexpr RpcFuncId kFnMasterFree = 1015;
constexpr RpcFuncId kFnMasterMove = 1016;
constexpr RpcFuncId kFnMasterGrant = 1017;
constexpr RpcFuncId kFnListNames = 1018;  // Manager recovery (Sec. 3.3).
constexpr RpcFuncId kFnEcho = 1019;  // Internal liveness check / tests.
constexpr RpcFuncId kFnKeepalive = 1022;  // Lease renewal to the cluster manager.

// Live LMR migration control plane (DESIGN.md "Epoch-fenced ownership").
// These ids live above the legacy 1000-1023 block and need the 11-bit IMM
// function field below.
constexpr RpcFuncId kFnMigrateInstall = 1024;  // Stage chunks+meta at the destination.
constexpr RpcFuncId kFnMigrateActivate = 1025;  // Commit: destination becomes home.
constexpr RpcFuncId kFnMigrateAbort = 1026;    // Uninstall a staged migration.
constexpr RpcFuncId kFnUpdateName = 1027;      // Manager: re-point name -> new home.
constexpr RpcFuncId kFnMigrateLmr = 1028;      // Coordinator entry at the source.
constexpr RpcFuncId kFnLmrRehome = 1029;       // Fan-out: new home+chunks+epoch.
constexpr RpcFuncId kFnStaleHome = 1030;       // Redirect query at the old home.

// All internal control functions and messaging share one server ring per
// client node (application functions get their own ring, as in the paper).
constexpr RpcFuncId kControlRingId = 1020;

// Sentinel "no reply expected" slot (fire-and-forget internal calls).
constexpr uint32_t kNoReplySlot = (1u << 21) - 1;

// IMM-value markers. The paper splits the 32-bit immediate 10/22 (Sec. 5.1);
// we widen the function field to 11 bits so the migration control plane
// (1024+) fits, leaving 21 payload bits — still comfortably more than the
// ring-offset (1 MB / 64 B = 2^14) and reply-slot encodings need.
constexpr RpcFuncId kMsgFuncId = 1021;    // LT_send messaging channel.
constexpr RpcFuncId kReplyFuncId = 1023;  // RPC reply; payload = reply slot.
constexpr uint32_t kImmFuncBits = 11;
constexpr uint32_t kImmPayloadBits = 21;
constexpr uint32_t kImmPayloadMask = (1u << kImmPayloadBits) - 1;

inline uint32_t EncodeImm(RpcFuncId func, uint32_t payload) {
  return (func << kImmPayloadBits) | (payload & kImmPayloadMask);
}
inline RpcFuncId ImmFunc(uint32_t imm) { return imm >> kImmPayloadBits; }
inline uint32_t ImmPayload(uint32_t imm) { return imm & kImmPayloadMask; }

// Ring entries are offset-addressed in 64-byte units inside the IMM payload.
constexpr uint32_t kRingOffsetUnit = 64;

// ---- Timeout sentinel convention (applies to every timeout_ns parameter in
// the LITE API: Rpc / RpcWait / RecvRpc / RecvMsg / SendRpc variants) ----
//   kDefaultTimeout (0)  -> use SimParams::lite_rpc_timeout_ns
//   kInfiniteTimeout(~0) -> wait "forever" (client paths cap at one hour of
//                           real time as a hang backstop; server-side recv
//                           blocks until the instance stops)
// Any other value is a real-time bound in nanoseconds.
constexpr uint64_t kDefaultTimeout = 0;
constexpr uint64_t kInfiniteTimeout = ~0ull;

// ---- Reply-slot addressing (21-bit IMM payload of kReplyFuncId) ----
// The payload packs {generation, slot}: the slot index in the low 10 bits
// (so lite_reply_slots must be <= 1000 — distinguishable from kNoReplySlot's
// all-ones low bits) and an 11-bit reuse generation above it. The generation
// lets a client that timed out and reused the slot discard late or duplicate
// replies from an earlier call (aliasing only after 2048 reuses of one slot
// inside a single call's lifetime, which the retry bound makes impossible).
constexpr uint32_t kReplySlotBits = 10;
constexpr uint32_t kReplySlotMask = (1u << kReplySlotBits) - 1;
constexpr uint32_t kReplyGenBits = kImmPayloadBits - kReplySlotBits;
constexpr uint32_t kReplyGenMask = (1u << kReplyGenBits) - 1;

inline uint32_t PackReplySlot(uint32_t slot, uint32_t gen) {
  return ((gen & kReplyGenMask) << kReplySlotBits) | (slot & kReplySlotMask);
}
inline uint32_t UnpackReplySlot(uint32_t packed) { return packed & kReplySlotMask; }
inline uint32_t UnpackReplyGen(uint32_t packed) {
  return (packed >> kReplySlotBits) & kReplyGenMask;
}

}  // namespace lite

#endif  // SRC_LITE_TYPES_H_
