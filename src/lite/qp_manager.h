// QpManager — the shared per-destination QP pool (paper Sec. 6.1), split out
// of LiteInstance. Owns QP creation/pairing, QoS-aware QP selection, and
// errored-QP recovery; every submission path (blocking, async, RPC) reaches
// the fabric through a QP picked and guarded here.
#ifndef SRC_LITE_QP_MANAGER_H_
#define SRC_LITE_QP_MANAGER_H_

#include <memory>
#include <mutex>
#include <vector>

#include "src/lite/qos.h"
#include "src/lite/types.h"
#include "src/node/node.h"
#include "src/telemetry/journal.h"

namespace lite {

class QpManager {
 public:
  QpManager(lt::Node* node, QosManager* qos) : node_(node), qos_(qos) {}

  QpManager(const QpManager&) = delete;
  QpManager& operator=(const QpManager&) = delete;

  // Cached telemetry hooks (owned by the node's registry / NodeTelemetry).
  void SetTelemetry(lt::telemetry::Counter* reconnects, lt::telemetry::Journal* journal) {
    reconnects_ = reconnects;
    journal_ = journal;
  }

  // Creates K QPs (K = lite_qp_sharing_factor) to every destination flagged
  // in `connect`, all delivering receives into the shared `recv_cq`. One
  // mutex per QP serializes posts (the QP send queue is ordered anyway).
  void CreatePool(const std::vector<bool>& connect, lt::Cq* recv_cq);

  // QoS-aware selection: cheap per-thread round-robin across the priority
  // band's slots. Returns a pool index for `dst`, or -1 if no QP exists.
  int PickQpIndex(NodeId dst, Priority pri);
  // Sticky per (thread, destination) so a pipelining thread's consecutive
  // posts land on one QP and share doorbells (round-robin would break every
  // doorbell batch).
  int PickQpIndexSticky(NodeId dst, Priority pri);

  bool Valid(NodeId dst, int idx) const {
    return dst < pool_.size() && idx >= 0 && idx < static_cast<int>(pool_[dst].size());
  }
  lt::Qp* qp(NodeId dst, int idx) const { return pool_[dst][idx]; }
  std::mutex& mu(NodeId dst, int idx) const { return *mu_[dst][idx]; }

  // Nullptr-safe pool access (cluster wiring / introspection).
  lt::Qp* PoolQp(NodeId dst, int k) const;
  size_t TotalQps() const;

  // Resets an errored QP back to RTS (models the modify_qp reconnect round;
  // charges lite_qp_reconnect_ns). Caller holds the QP's pool mutex.
  void RecoverQp(lt::Qp* qp);

 private:
  lt::Node* const node_;
  QosManager* const qos_;

  // pool_[dst][k], k in [0, K).
  std::vector<std::vector<lt::Qp*>> pool_;
  std::vector<std::vector<std::unique_ptr<std::mutex>>> mu_;

  lt::telemetry::Counter* reconnects_ = nullptr;
  lt::telemetry::Journal* journal_ = nullptr;
};

}  // namespace lite

#endif  // SRC_LITE_QP_MANAGER_H_
