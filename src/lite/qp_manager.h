// QpManager — the RC implementation of the Transport interface: the shared
// per-destination QP pool (paper Sec. 6.1). Owns QP creation/pairing,
// QoS-aware QP selection, and errored-QP recovery; with lite_transport=rc
// (the default) every submission path reaches the fabric through a QP
// leased and guarded here. A TransportHandle's slot is the pool index
// within pool_[dst].
#ifndef SRC_LITE_QP_MANAGER_H_
#define SRC_LITE_QP_MANAGER_H_

#include <memory>
#include <mutex>
#include <vector>

#include "src/lite/qos.h"
#include "src/lite/transport.h"
#include "src/lite/types.h"
#include "src/node/node.h"
#include "src/telemetry/journal.h"

namespace lite {

class QpManager : public Transport {
 public:
  QpManager(lt::Node* node, QosManager* qos) : Transport(node, qos) {}

  lt::LiteTransport mode() const override { return lt::LiteTransport::kRc; }

  // Creates K QPs (K = lite_qp_sharing_factor) to every destination flagged
  // in `connect`, all delivering receives into the shared `recv_cq`. One
  // mutex per QP serializes posts (the QP send queue is ordered anyway).
  void Setup(const std::vector<bool>& connect, lt::Cq* recv_cq) override;

  // QoS-aware selection: cheap per-thread round-robin across the priority
  // band's slots. Returns a pool index for `dst`, or -1 if no QP exists.
  int PickQpIndex(NodeId dst, Priority pri);
  // Sticky per (thread, destination) so a pipelining thread's consecutive
  // posts land on one QP and share doorbells (round-robin would break every
  // doorbell batch). Tunable via lite_sticky_salt / lite_sticky_rotate_ops.
  int PickQpIndexSticky(NodeId dst, Priority pri);

  TransportHandle Lease(NodeId dst, Priority pri) override {
    return TransportHandle{dst, PickQpIndex(dst, pri)};
  }
  TransportHandle LeaseSticky(NodeId dst, Priority pri) override {
    return TransportHandle{dst, PickQpIndexSticky(dst, pri)};
  }

  bool Valid(const TransportHandle& h) const override {
    return h.dst < pool_.size() && h.slot >= 0 &&
           h.slot < static_cast<int32_t>(pool_[h.dst].size()) &&
           pool_[h.dst][h.slot] != nullptr;
  }
  lt::Qp* Qp(const TransportHandle& h) const override { return pool_[h.dst][h.slot]; }
  std::mutex& Mu(const TransportHandle& h) const override { return *mu_[h.dst][h.slot]; }

  // RC prepare: recover the leased QP if a prior drop errored it.
  bool Prepare(const TransportHandle& h) override {
    lt::Qp* q = pool_[h.dst][h.slot];
    if (q->in_error()) {
      RecoverQp(q);
      return true;
    }
    return false;
  }

  // Nullptr-safe pool access (cluster wiring / introspection).
  lt::Qp* PoolQp(NodeId dst, int k) const override;
  size_t TotalQps() const override;

  // Test hook: punches a hole in the pool so Valid()'s nullptr guard is
  // exercisable (Setup never leaves holes; a hot-unplug path would).
  void DropQpForTest(NodeId dst, int k) { pool_[dst][k] = nullptr; }

 private:
  // pool_[dst][k], k in [0, K).
  std::vector<std::vector<lt::Qp*>> pool_;
  std::vector<std::vector<std::unique_ptr<std::mutex>>> mu_;
};

}  // namespace lite

#endif  // SRC_LITE_QP_MANAGER_H_
