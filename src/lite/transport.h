// Transport — the pluggable connection layer behind the op engine
// (DESIGN.md §10 "Transport virtualization").
//
// Every submission path (blocking memops, async memops, RPC) reaches the
// fabric by leasing an opaque TransportHandle for a destination and posting
// through the QP it names. What a handle maps to is the transport's
// business: the RC implementation (QpManager) keeps the paper's K-QPs-per-
// peer shared pool; the DC implementation (DcTransport) multiplexes a
// bounded node-wide pool of initiator QPs that attach to any destination on
// demand. QP selection policy (QoS bands, per-thread stickiness for
// doorbell batching), error recovery, and DC re-targeting all live behind
// this interface — callers never see a (dst, qp_index) pair.
//
// Contract:
//   * Lease/LeaseSticky return a handle for `dst` (invalid handle when the
//     destination is unknown). A handle stays usable for the lifetime of
//     the op that leased it, including across retries.
//   * Posting protocol: hold Mu(h), call Prepare(h), then PostSend(Qp(h)).
//     Prepare recovers an errored QP and (DC) re-attaches the QP to h.dst
//     if it was stolen for another peer since the lease; it returns true
//     iff an error recovery ran (callers count/journal unsignaled-path
//     recoveries themselves).
//   * Qp(h) is stable for a valid handle; the QP's *connection target* may
//     change between posts (DC), which is why posts must re-Prepare under
//     the mutex every time.
#ifndef SRC_LITE_TRANSPORT_H_
#define SRC_LITE_TRANSPORT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "src/lite/qos.h"
#include "src/lite/types.h"
#include "src/node/node.h"
#include "src/telemetry/journal.h"

namespace lite {

// Opaque lease on one transport-owned QP for one destination. `slot` is an
// index whose meaning is private to the implementation (RC: pool index for
// dst; DC: index into the node-wide shared pool). The pair is also the
// engine's async-stream key, so selective-signaling streams stay per-QP.
struct TransportHandle {
  NodeId dst = kInvalidNode;
  int32_t slot = -1;
  bool valid() const { return slot >= 0; }
};

class Transport {
 public:
  Transport(lt::Node* node, QosManager* qos) : node_(node), qos_(qos) {}
  virtual ~Transport() = default;

  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  virtual lt::LiteTransport mode() const = 0;

  // Builds the transport's QP state. `connect[dst]` flags the peers this
  // node may ever talk to; receives (WriteImm deliveries) go to `recv_cq`.
  // RC wires K QPs per flagged peer (paired by LiteCluster); DC creates the
  // bounded initiator pool plus one target QP and attaches lazily.
  virtual void Setup(const std::vector<bool>& connect, lt::Cq* recv_cq) = 0;

  // QoS-aware handle leases. Lease spreads a thread's ops across the
  // priority band; LeaseSticky pins a (thread, dst) to one QP so pipelined
  // posts share doorbells. Invalid handle when dst has no path.
  virtual TransportHandle Lease(NodeId dst, Priority pri) = 0;
  virtual TransportHandle LeaseSticky(NodeId dst, Priority pri) = 0;

  virtual bool Valid(const TransportHandle& h) const = 0;
  virtual lt::Qp* Qp(const TransportHandle& h) const = 0;
  // Per-slot post mutex (the QP send queue is ordered anyway).
  virtual std::mutex& Mu(const TransportHandle& h) const = 0;

  // Called with Mu(h) held immediately before every PostSend through h:
  // recovers the QP if errored and (DC) re-attaches it to h.dst if another
  // destination stole it. Returns true iff an error recovery ran.
  virtual bool Prepare(const TransportHandle& h) = 0;

  // Resets an errored QP back to RTS (modify_qp ERR->...->RTS; charges
  // lite_qp_reconnect_ns) and stamps a kQpRecover journal event whose `b`
  // argument packs the transport mode (b = mode << 32 | qpn; 1=rc, 2=dc).
  // Caller holds the slot mutex covering the QP.
  virtual void RecoverQp(lt::Qp* qp);

  // ---- Introspection ----
  virtual size_t TotalQps() const = 0;
  // Host-memory footprint of this node's QP state (scale-bench reporting).
  uint64_t QpStateBytes() const {
    return static_cast<uint64_t>(TotalQps()) * node_->params().rnic_qp_state_bytes;
  }

  // RC-only: direct pool access for cluster pairing / tests. Null elsewhere.
  virtual lt::Qp* PoolQp(NodeId dst, int k) const {
    (void)dst;
    (void)k;
    return nullptr;
  }
  // DC-only: this node's target QPN (what remote initiators attach to) and
  // the resolver initiators use to find a destination's target QPN.
  virtual uint32_t TargetQpn() const { return 0; }
  virtual void SetDctResolver(std::function<uint32_t(NodeId)> resolver) { (void)resolver; }

  // Registers lite.transport.* instruments and caches the shared recovery
  // hooks (called once from LiteInstance::RegisterTelemetry).
  virtual void RegisterTelemetry(lt::telemetry::Registry& reg, lt::telemetry::Counter* reconnects,
                                 lt::telemetry::Journal* journal);

  // Builds the transport selected by SimParams::lite_transport.
  static std::unique_ptr<Transport> Create(lt::Node* node, QosManager* qos);

 protected:
  lt::Node* const node_;
  QosManager* const qos_;
  lt::telemetry::Counter* reconnects_ = nullptr;
  lt::telemetry::Journal* journal_ = nullptr;
};

}  // namespace lite

#endif  // SRC_LITE_TRANSPORT_H_
