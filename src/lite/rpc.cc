// LITE RPC stack (paper Sec. 5).
//
// Request path: the client reserves space in the per-(client, function) ring
// at the server, writes [header | input] there with one RDMA write-imm whose
// 32-bit immediate encodes (function id, ring offset), and waits on a reply
// slot. The server's single shared polling thread decodes the IMM, moves the
// payload out of the ring, hands it to the registered function's queue, and
// a background thread pushes the advanced ring head back to the client's
// head mirror with a one-sided write (paper Fig. 9). The reply is a second
// write-imm into the client's reply slot. Request writes are unsignaled:
// failures surface as reply timeouts (paper Sec. 5.1).
#include <cstring>
#include <thread>

#include "src/common/logging.h"
#include "src/common/service_timeline.h"
#include "src/common/timing.h"
#include "src/lite/instance.h"
#include "src/lite/wire.h"

namespace lite {

using lt::NowNs;
using lt::SpinFor;
using lt::WaitMode;
using lt::WcOpcode;

namespace {

constexpr uint64_t kServiceWaitNs = 50'000'000;   // Poll-loop wakeup cadence.
constexpr uint64_t kRingFullRetryNs = 2'000;      // Virtual charge per retry.
constexpr uint64_t kLongTimeoutCapNs = 3'600ull * 1'000'000'000;

uint64_t Align64(uint64_t v) { return (v + 63) & ~63ull; }

}  // namespace

// Adaptive spin-then-sleep arrival at an event (paper Sec. 5.2): sync to the
// event's virtual time; if the gap exceeded the spin budget the thread had
// gone to sleep, so it additionally pays a wakeup.
void SyncAdaptiveWithWakeup(uint64_t event_vtime, const lt::SimParams& p) {
  const uint64_t gap = event_vtime > lt::NowNs() ? event_vtime - lt::NowNs() : 0;
  lt::SyncToAdaptive(event_vtime, p.lite_adaptive_spin_ns);
  if (gap > p.lite_adaptive_spin_ns) {
    lt::SpinFor(p.thread_wakeup_ns);
  }
}

// ----------------------------------------------------------- channel setup

StatusOr<PhysAddr> LiteInstance::AllocMirror() {
  std::lock_guard<std::mutex> lock(mirror_mu_);
  if (mirror_next_ >= mirror_cap_) {
    return Status::ResourceExhausted("head-mirror slab exhausted");
  }
  return mirror_slab_ + 8 * mirror_next_++;
}

LiteInstance::ServerRing* LiteInstance::SetupServerRing(NodeId client, RpcFuncId ring_id,
                                                        PhysAddr client_head_mirror) {
  std::lock_guard<std::mutex> lock(rings_mu_);
  auto key = std::make_pair(client, ring_id);
  auto it = rings_.find(key);
  if (it != rings_.end()) {
    return it->second.get();
  }
  auto chunks = AllocLocalChunks(params().lite_rpc_ring_bytes);
  if (!chunks.ok() || chunks->size() != 1) {
    LT_LOG_ERROR << "node " << node_id() << ": cannot allocate RPC ring";
    return nullptr;
  }
  auto ring = std::make_unique<ServerRing>();
  ring->client = client;
  ring->func = ring_id;
  ring->ring = (*chunks)[0];
  ring->ring_size = ring->ring.size;
  ring->client_head_mirror = client_head_mirror;
  ServerRing* out = ring.get();
  rings_[key] = std::move(ring);
  return out;
}

StatusOr<LiteInstance::RpcChannel*> LiteInstance::GetChannel(NodeId server, RpcFuncId ring_id) {
  {
    std::lock_guard<std::mutex> lock(channels_mu_);
    auto it = channels_.find({server, ring_id});
    if (it != channels_.end()) {
      return it->second.get();
    }
  }
  if (ring_id == kControlRingId) {
    return Status::Internal("control channel missing (cluster not bootstrapped)");
  }
  // First bind to this (server, function): ask the server to allocate the
  // ring (paper Sec. 5.1, "LITE allocates a new internal LMR at the RPC
  // server node").
  auto mirror = AllocMirror();
  if (!mirror.ok()) {
    return mirror.status();
  }
  WireWriter w;
  w.Put<RpcFuncId>(ring_id);
  w.Put<PhysAddr>(*mirror);
  std::vector<uint8_t> out;
  LT_RETURN_IF_ERROR(InternalRpc(server, kFnRingSetup, w.bytes(), &out));
  WireReader r(out.data(), out.size());
  LmrChunk chunk;
  uint64_t ring_size = 0;
  if (!r.Get(&chunk) || !r.Get(&ring_size)) {
    return Status::Internal("malformed ring-setup reply");
  }
  auto channel = std::make_unique<RpcChannel>();
  channel->server = server;
  channel->func = ring_id;
  channel->ring = {chunk};
  channel->ring_size = ring_size;
  channel->head_mirror = *mirror;

  std::lock_guard<std::mutex> lock(channels_mu_);
  auto [it, inserted] = channels_.emplace(std::make_pair(server, ring_id), std::move(channel));
  return it->second.get();
}

// ------------------------------------------------------------- reply slots

StatusOr<uint32_t> LiteInstance::AcquireReplySlot(uint32_t out_max) {
  if (out_max > params().lite_reply_slot_bytes) {
    return Status::InvalidArgument("RPC reply larger than reply-slot size");
  }
  std::unique_lock<std::mutex> lock(slot_mu_);
  if (!slot_cv_.wait_for(lock, std::chrono::seconds(10), [this] { return !free_slots_.empty(); })) {
    return Status::ResourceExhausted("no free RPC reply slots");
  }
  uint32_t slot = free_slots_.back();
  free_slots_.pop_back();
  reply_slots_[slot]->state.store(1, std::memory_order_release);
  return slot;
}

void LiteInstance::ReleaseReplySlot(uint32_t slot) {
  {
    std::lock_guard<std::mutex> lock(slot_mu_);
    reply_slots_[slot]->state.store(0, std::memory_order_release);
    free_slots_.push_back(slot);
  }
  slot_cv_.notify_one();
}

// ------------------------------------------------------------ client path

Status LiteInstance::PostRpcRequest(RpcChannel* channel, RpcFuncId func, const void* in,
                                    uint32_t in_len, PhysAddr reply_phys, uint32_t reply_max,
                                    uint32_t reply_slot, Priority pri) {
  const uint64_t entry_len = Align64(sizeof(RpcReqHeader) + in_len);
  if (entry_len > channel->ring_size) {
    return Status::InvalidArgument("RPC input larger than server ring");
  }

  std::lock_guard<std::mutex> lock(channel->mu);
  const uint64_t real_deadline = lt::RealNowNs() + params().lite_rpc_timeout_ns;
  uint64_t off;
  while (true) {
    uint64_t head;
    std::memcpy(&head, node_->mem().Data(channel->head_mirror, 8), 8);
    off = channel->tail % channel->ring_size;
    uint64_t pad = (off + entry_len > channel->ring_size) ? (channel->ring_size - off) : 0;
    if (channel->tail + pad + entry_len <= head + channel->ring_size) {
      channel->tail += pad;
      off = channel->tail % channel->ring_size;
      break;
    }
    // Ring full: wait for the server's background head updates.
    if (lt::RealNowNs() > real_deadline) {
      return Status::ResourceExhausted("RPC ring full (server not draining)");
    }
    lt::IdleFor(kRingFullRetryNs);
    std::this_thread::sleep_for(std::chrono::microseconds(2));
  }

  RpcReqHeader hdr;
  hdr.input_len = in_len;
  hdr.reply_phys = reply_phys;
  hdr.reply_max = reply_max;
  hdr.reply_slot = reply_slot;
  hdr.client_node = node_id();
  hdr.entry_len = static_cast<uint32_t>(entry_len);
  hdr.tail_after = channel->tail + entry_len;

  std::vector<uint8_t> staging(sizeof(RpcReqHeader) + in_len);
  std::memcpy(staging.data(), &hdr, sizeof(hdr));
  if (in_len > 0) {
    std::memcpy(staging.data() + sizeof(hdr), in, in_len);
  }

  const LmrChunk& ring = channel->ring[0];
  Status st = OneSidedWriteImm(channel->server, ring.addr + off, staging.data(), staging.size(),
                               EncodeImm(func, static_cast<uint32_t>(off / kRingOffsetUnit)), pri);
  if (st.ok()) {
    channel->tail += entry_len;
  }
  return st;
}

StatusOr<uint32_t> LiteInstance::RpcSend(NodeId server_node, RpcFuncId func, const void* in,
                                         uint32_t in_len, uint32_t out_max, Priority pri) {
  auto channel = GetChannel(server_node, RingIdFor(func));
  if (!channel.ok()) {
    return channel.status();
  }
  auto slot = AcquireReplySlot(out_max);
  if (!slot.ok()) {
    return slot.status();
  }
  // The reply may use the whole slot; if it exceeds the caller's buffer the
  // copy-out truncates and reports OutOfRange (the data still arrived).
  ReplySlot& s = *reply_slots_[*slot];
  Status st = PostRpcRequest(*channel, func, in, in_len, s.buf_phys, s.buf_max, *slot, pri);
  if (!st.ok()) {
    ReleaseReplySlot(*slot);
    return st;
  }
  return *slot;
}

Status LiteInstance::RpcSendNoReply(NodeId server_node, RpcFuncId func, const void* in,
                                    uint32_t in_len, Priority pri) {
  auto channel = GetChannel(server_node, RingIdFor(func));
  if (!channel.ok()) {
    return channel.status();
  }
  return PostRpcRequest(*channel, func, in, in_len, /*reply_phys=*/0, /*reply_max=*/0,
                        kNoReplySlot, pri);
}

Status LiteInstance::RpcWait(uint32_t slot, void* out, uint32_t out_max, uint32_t* out_len,
                             uint64_t timeout_ns) {
  if (timeout_ns == 0) {
    timeout_ns = params().lite_rpc_timeout_ns;
  }
  timeout_ns = std::min(timeout_ns, kLongTimeoutCapNs);
  ReplySlot& s = *reply_slots_[slot];
  uint32_t len;
  uint64_t ready_vtime;
  {
    std::unique_lock<std::mutex> lock(s.mu);
    if (!s.cv.wait_for(lock, std::chrono::nanoseconds(timeout_ns),
                       [&s] { return s.state.load(std::memory_order_acquire) >= 2; })) {
      // Timed out: leave the slot as a zombie; a late reply frees it.
      s.state.store(4, std::memory_order_release);
      lt::IdleFor(timeout_ns);
      return Status::Timeout("no RPC reply before timeout");
    }
    len = s.reply_len;
    ready_vtime = s.ready_vtime_ns;
  }
  // The LITE library's adaptive wait: busy-check the shared state briefly,
  // then sleep (paper Sec. 5.2).
  SyncAdaptiveWithWakeup(ready_vtime, params());
  lt::telemetry::StampStage(lt::telemetry::TraceStage::kCompletion, ready_vtime);

  uint32_t copy_len = std::min(len, out_max);
  if (copy_len > 0 && out != nullptr) {
    LocalCopyOut(out, s.buf_phys, copy_len);
  }
  if (out_len != nullptr) {
    *out_len = len;
  }
  ReleaseReplySlot(slot);
  if (len > out_max) {
    return Status::OutOfRange("reply truncated: larger than caller buffer");
  }
  return Status::Ok();
}

Status LiteInstance::Rpc(NodeId server_node, RpcFuncId func, const void* in, uint32_t in_len,
                         void* out, uint32_t out_max, uint32_t* out_len, Priority pri) {
  lt::telemetry::ScopedSpan span(&node_->telemetry().tracer(), "LT_RPC");
  auto slot = RpcSend(server_node, func, in, in_len, out_max, pri);
  if (!slot.ok()) {
    return slot.status();
  }
  return RpcWait(*slot, out, out_max, out_len);
}

Status LiteInstance::MulticastRpc(const std::vector<NodeId>& servers, RpcFuncId func,
                                  const void* in, uint32_t in_len,
                                  std::vector<std::vector<uint8_t>>* replies) {
  // Pipelined multicast (paper Sec. 8.4): post all requests, then collect all
  // replies; total latency ~= one RPC round trip.
  std::vector<uint32_t> slots;
  slots.reserve(servers.size());
  const uint32_t out_max = static_cast<uint32_t>(params().lite_reply_slot_bytes);
  Status first_error = Status::Ok();
  for (NodeId server : servers) {
    auto slot = RpcSend(server, func, in, in_len, out_max);
    if (!slot.ok()) {
      first_error = slot.status();
      break;
    }
    slots.push_back(*slot);
  }
  if (replies != nullptr) {
    replies->clear();
  }
  for (uint32_t slot : slots) {
    std::vector<uint8_t> buf(out_max);
    uint32_t len = 0;
    Status st = RpcWait(slot, buf.data(), out_max, &len);
    if (!st.ok() && first_error.ok()) {
      first_error = st;
    }
    buf.resize(len);
    if (replies != nullptr) {
      replies->push_back(std::move(buf));
    }
  }
  return first_error;
}

Status LiteInstance::InternalRpc(NodeId server, RpcFuncId func, const WireWriterBytes& in,
                                 std::vector<uint8_t>* out, uint64_t timeout_ns) {
  std::vector<uint8_t> raw(params().lite_reply_slot_bytes);
  uint32_t raw_len = 0;
  auto slot = RpcSend(server, func, in.data(), static_cast<uint32_t>(in.size()),
                      static_cast<uint32_t>(raw.size()));
  if (!slot.ok()) {
    return slot.status();
  }
  LT_RETURN_IF_ERROR(RpcWait(*slot, raw.data(), static_cast<uint32_t>(raw.size()), &raw_len,
                             timeout_ns));
  if (raw_len < sizeof(uint32_t)) {
    return Status::Internal("malformed internal RPC reply");
  }
  uint32_t code;
  std::memcpy(&code, raw.data(), sizeof(code));
  if (code != static_cast<uint32_t>(lt::StatusCode::kOk)) {
    return Status(static_cast<lt::StatusCode>(code), "remote LITE error");
  }
  if (out != nullptr) {
    out->assign(raw.begin() + sizeof(uint32_t), raw.begin() + raw_len);
  }
  return Status::Ok();
}

// ------------------------------------------------------------ server path

Status LiteInstance::RegisterRpc(RpcFuncId func) {
  if (func > kMaxAppFuncId) {
    return Status::InvalidArgument("application RPC ids must be <= 999");
  }
  EnsureAppQueue(func);
  return Status::Ok();
}

BlockingQueue<RpcIncoming>* LiteInstance::EnsureAppQueue(RpcFuncId func) {
  std::lock_guard<std::mutex> lock(funcs_mu_);
  auto it = app_queues_.find(func);
  if (it == app_queues_.end()) {
    it = app_queues_.emplace(func, std::make_unique<BlockingQueue<RpcIncoming>>()).first;
  }
  return it->second.get();
}

StatusOr<RpcIncoming> LiteInstance::RecvRpc(RpcFuncId func, uint64_t timeout_ns) {
  BlockingQueue<RpcIncoming>* queue = EnsureAppQueue(func);
  std::optional<RpcIncoming> inc;
  if (timeout_ns == ~0ull) {
    inc = queue->Pop();
  } else {
    inc = queue->PopFor(std::chrono::nanoseconds(std::min(timeout_ns, kLongTimeoutCapNs)));
  }
  if (!inc.has_value()) {
    if (stopping_.load()) {
      return Status::Unavailable("LITE instance stopping");
    }
    return Status::Timeout("no RPC request before timeout");
  }
  // Serve this request on its own timeline (adaptive spin-then-sleep wait).
  lt::ServiceTimeline::ForThisThread().BeginService(inc->arrival_vtime_ns, 1000,
                                                    params().lite_adaptive_spin_ns,
                                                    params().thread_wakeup_ns);
  return *inc;
}

Status LiteInstance::ReplyRpc(const ReplyToken& token, const void* data, uint32_t len) {
  if (!token.valid() || token.reply_slot == kNoReplySlot || token.reply_phys == 0) {
    return Status::Ok();  // Fire-and-forget call: nothing to reply to.
  }
  if (len > token.reply_max) {
    return Status::InvalidArgument("RPC reply exceeds caller's buffer");
  }
  return OneSidedWriteImm(token.client_node, token.reply_phys, data, len,
                          EncodeImm(kReplyFuncId, token.reply_slot), Priority::kHigh);
}

StatusOr<RpcIncoming> LiteInstance::ReplyAndRecv(const ReplyToken& token, const void* data,
                                                 uint32_t len, RpcFuncId func,
                                                 uint64_t timeout_ns) {
  LT_RETURN_IF_ERROR(ReplyRpc(token, data, len));
  return RecvRpc(func, timeout_ns);
}

// -------------------------------------------------------------- messaging

Status LiteInstance::SendMsg(NodeId dst, const void* data, uint32_t len, Priority pri) {
  auto channel = GetChannel(dst, kControlRingId);
  if (!channel.ok()) {
    return channel.status();
  }
  return PostRpcRequest(*channel, kMsgFuncId, data, len, /*reply_phys=*/0, /*reply_max=*/0,
                        kNoReplySlot, pri);
}

StatusOr<MsgIncoming> LiteInstance::RecvMsg(uint64_t timeout_ns) {
  std::optional<MsgIncoming> msg;
  if (timeout_ns == ~0ull) {
    msg = msg_queue_.Pop();
  } else {
    msg = msg_queue_.PopFor(std::chrono::nanoseconds(std::min(timeout_ns, kLongTimeoutCapNs)));
  }
  if (!msg.has_value()) {
    if (stopping_.load()) {
      return Status::Unavailable("LITE instance stopping");
    }
    return Status::Timeout("no message before timeout");
  }
  lt::ServiceTimeline::ForThisThread().BeginService(msg->arrival_vtime_ns, 500,
                                                    params().lite_adaptive_spin_ns,
                                                    params().thread_wakeup_ns);
  return *msg;
}

// ----------------------------------------------------------- service loops

void LiteInstance::PollLoop() {
  // The poll thread serves every event on the event's own timeline (clock
  // rewound per event; its serial dispatch capacity is still enforced).
  lt::ServiceTimeline timeline;
  while (!stopping_.load()) {
    uint64_t cpu0 = lt::ThreadCpuNs();
    auto c = recv_cq_->WaitPoll(kServiceWaitNs, WaitMode::kSleep, 0);
    if (stopping_.load()) {
      break;
    }
    poll_wakeups_->Inc();
    if (!c.has_value()) {
      poll_idle_wakeups_->Inc();
    }
    if (c.has_value() && c->opcode == WcOpcode::kRecvImm && c->has_imm) {
      // Batch size at this wake: the completion in hand plus whatever else is
      // already queued behind it (paper Sec. 5.1's shared-poller batching).
      poll_batch_hist_->Record(1 + recv_cq_->Depth());
      timeline.BeginService(c->ready_at_ns, params().lite_rpc_dispatch_ns,
                            params().lite_adaptive_spin_ns, params().thread_wakeup_ns);
      if (ImmFunc(c->imm) == kReplyFuncId) {
        HandleReplyImm(c->imm, c->byte_len, lt::NowNs());
      } else {
        HandleRequestImm(c->src_node, c->imm, lt::NowNs());
      }
    }
    poll_cpu_.Add(lt::ThreadCpuNs() - cpu0);
  }
}

void LiteInstance::HandleReplyImm(uint32_t imm, uint32_t byte_len, uint64_t vtime) {
  uint32_t slot = ImmPayload(imm);
  if (slot >= reply_slots_.size()) {
    LT_LOG_WARNING << "node " << node_id() << ": reply IMM names bad slot " << slot;
    return;
  }
  rpc_replies_->Inc();
  ReplySlot& s = *reply_slots_[slot];
  bool was_zombie = false;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    if (s.state.load(std::memory_order_acquire) == 4) {
      was_zombie = true;
    } else {
      s.reply_len = byte_len;
      s.ready_vtime_ns = vtime;
      s.state.store(2, std::memory_order_release);
    }
  }
  if (was_zombie) {
    ReleaseReplySlot(slot);  // Late reply after caller timed out.
  } else {
    s.cv.notify_one();
  }
}

void LiteInstance::HandleRequestImm(NodeId src, uint32_t imm, uint64_t vtime) {
  const RpcFuncId func = ImmFunc(imm);
  const uint64_t offset = static_cast<uint64_t>(ImmPayload(imm)) * kRingOffsetUnit;

  ServerRing* ring = nullptr;
  {
    std::lock_guard<std::mutex> lock(rings_mu_);
    auto it = rings_.find({src, RingIdFor(func)});
    if (it != rings_.end()) {
      ring = it->second.get();
    }
  }
  if (ring == nullptr) {
    LT_LOG_WARNING << "node " << node_id() << ": request IMM for unknown ring (src=" << src
                   << " func=" << func << ")";
    return;
  }
  rpc_requests_->Inc();
  LT_VLOG << "node " << node_id() << ": RPC request from " << src << " func " << func;

  SpinFor(params().lite_rpc_dispatch_ns);

  RpcReqHeader hdr;
  std::memcpy(&hdr, node_->mem().Data(ring->ring.addr + offset, sizeof(hdr)), sizeof(hdr));
  if (hdr.magic != 0x4c495445 || hdr.input_len > ring->ring_size) {
    LT_LOG_WARNING << "node " << node_id() << ": corrupt RPC header in ring";
    return;
  }

  // The single data move of the receive path (paper Sec. 5.2): ring -> user.
  RpcIncoming inc;
  inc.data.resize(hdr.input_len);
  if (hdr.input_len > 0) {
    LocalCopyOut(inc.data.data(), ring->ring.addr + offset + sizeof(hdr), hdr.input_len);
  }
  inc.token.client_node = hdr.client_node;
  inc.token.reply_phys = hdr.reply_phys;
  inc.token.reply_max = hdr.reply_max;
  inc.token.reply_slot = hdr.reply_slot;
  inc.arrival_vtime_ns = NowNs();
  inc.token.arrival_vtime_ns = inc.arrival_vtime_ns;

  // Release the ring space and let the background thread tell the client.
  ring->head = std::max(ring->head, hdr.tail_after);
  ring->head_to_publish.store(ring->head, std::memory_order_release);
  head_updates_.Push({ring, NowNs()});

  if (func <= kMaxAppFuncId) {
    EnsureAppQueue(func)->Push(std::move(inc));
  } else if (func == kMsgFuncId) {
    MsgIncoming msg;
    msg.data = std::move(inc.data);
    msg.src = src;
    msg.arrival_vtime_ns = inc.arrival_vtime_ns;
    msg_queue_.Push(std::move(msg));
  } else {
    internal_queue_.Push({func, std::move(inc)});
  }
}

void LiteInstance::HeadWriterLoop() {
  while (true) {
    auto item = head_updates_.Pop();
    if (!item.has_value()) {
      return;  // Queue closed.
    }
    auto [ring, vtime] = *item;
    lt::SetServiceClock(vtime);  // Publish on the triggering event's timeline.
    uint64_t head = ring->head_to_publish.load(std::memory_order_acquire);
    (void)OneSidedWrite(ring->client, ring->client_head_mirror, &head, sizeof(head),
                        Priority::kHigh, /*signaled=*/false);
  }
}

void LiteInstance::InternalWorkerLoop() {
  lt::ServiceTimeline timeline;
  while (true) {
    auto item = internal_queue_.Pop();
    if (!item.has_value()) {
      return;  // Queue closed.
    }
    auto& [func, inc] = *item;
    timeline.BeginService(inc.arrival_vtime_ns, 1500, params().lite_adaptive_spin_ns,
                          params().thread_wakeup_ns);
    auto it = internal_handlers_.find(func);
    if (it == internal_handlers_.end()) {
      LT_LOG_WARNING << "node " << node_id() << ": no handler for internal func " << func;
      continue;
    }
    it->second(this, inc);
  }
}

}  // namespace lite
