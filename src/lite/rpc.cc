// LITE RPC stack (paper Sec. 5).
//
// Request path: the client reserves space in the per-(client, function) ring
// at the server, writes [header | input] there with one RDMA write-imm whose
// 32-bit immediate encodes (function id, ring offset), and waits on a reply
// slot. The server's single shared polling thread decodes the IMM, moves the
// payload out of the ring, hands it to the registered function's queue, and
// a background thread pushes the advanced ring head back to the client's
// head mirror with a one-sided write (paper Fig. 9). The reply is a second
// write-imm into the client's reply slot. Request writes are unsignaled:
// failures surface as reply timeouts (paper Sec. 5.1).
#include <cstring>
#include <set>
#include <thread>

#include "src/common/annotations.h"
#include "src/common/logging.h"
#include "src/common/service_timeline.h"
#include "src/common/timing.h"
#include "src/lite/instance.h"
#include "src/lite/wire.h"
#include "src/rnic/rnic.h"

namespace lite {

using lt::NowNs;
using lt::SpinFor;
using lt::WaitMode;
using lt::WcOpcode;
using lt::telemetry::AttrAdd;
using lt::telemetry::AttrAddRpcWait;
using lt::telemetry::LatStage;

namespace {

constexpr uint64_t kServiceWaitNs = 50'000'000;   // Poll-loop wakeup cadence.

uint64_t Align64(uint64_t v) { return (v + 63) & ~63ull; }

}  // namespace

// Adaptive spin-then-sleep arrival at an event (paper Sec. 5.2): sync to the
// event's virtual time; if the gap exceeded the spin budget the thread had
// gone to sleep, so it additionally pays a wakeup.
void SyncAdaptiveWithWakeup(uint64_t event_vtime, const lt::SimParams& p) {
  const uint64_t gap = event_vtime > lt::NowNs() ? event_vtime - lt::NowNs() : 0;
  lt::SyncToAdaptive(event_vtime, p.lite_adaptive_spin_ns);
  if (gap > p.lite_adaptive_spin_ns) {
    lt::SpinFor(p.thread_wakeup_ns);
  }
}

// ----------------------------------------------------------- channel setup

StatusOr<PhysAddr> LiteInstance::AllocMirror() {
  std::lock_guard<std::mutex> lock(mirror_mu_);
  if (mirror_next_ >= mirror_cap_) {
    return Status::ResourceExhausted("head-mirror slab exhausted");
  }
  return mirror_slab_ + 8 * mirror_next_++;
}

ServerRing* LiteInstance::SetupServerRing(NodeId client, RpcFuncId ring_id,
                                          PhysAddr client_head_mirror) {
  std::lock_guard<std::mutex> lock(rings_mu_);
  auto key = std::make_pair(client, ring_id);
  auto it = rings_.find(key);
  if (it != rings_.end()) {
    return it->second.get();
  }
  auto chunks = AllocLocalChunks(params().lite_rpc_ring_bytes);
  if (!chunks.ok() || chunks->size() != 1) {
    LT_LOG_ERROR << "node " << node_id() << ": cannot allocate RPC ring";
    return nullptr;
  }
  auto ring = std::make_unique<ServerRing>();
  ring->client = client;
  ring->func = ring_id;
  ring->ring = (*chunks)[0];
  ring->ring_size = ring->ring.size;
  ring->client_head_mirror = client_head_mirror;
  ServerRing* out = ring.get();
  rings_[key] = std::move(ring);
  return out;
}

StatusOr<RpcChannel*> LiteInstance::GetChannel(NodeId server, RpcFuncId ring_id) {
  {
    std::lock_guard<std::mutex> lock(channels_mu_);
    auto it = channels_.find({server, ring_id});
    if (it != channels_.end()) {
      return it->second.get();
    }
  }
  if (ring_id == kControlRingId) {
    // Lazy bootstrap (lite_eager_control_rings=false at large scale): build
    // the control ring to this server on first use. BootstrapControlChannel
    // is idempotent, so a race between two first callers is benign.
    LiteInstance* srv = Peer(server);
    if (srv == nullptr) {
      return Status::Internal("control channel missing (unknown peer)");
    }
    BootstrapControlChannel(srv);
    std::lock_guard<std::mutex> lock(channels_mu_);
    auto it = channels_.find({server, ring_id});
    if (it == channels_.end()) {
      return Status::Internal("control channel missing (bootstrap failed)");
    }
    return it->second.get();
  }
  // First bind to this (server, function): ask the server to allocate the
  // ring (paper Sec. 5.1, "LITE allocates a new internal LMR at the RPC
  // server node").
  auto mirror = AllocMirror();
  if (!mirror.ok()) {
    return mirror.status();
  }
  WireWriter w;
  w.Put<RpcFuncId>(ring_id);
  w.Put<PhysAddr>(*mirror);
  std::vector<uint8_t> out;
  LT_RETURN_IF_ERROR(InternalRpc(server, kFnRingSetup, w.bytes(), &out));
  WireReader r(out.data(), out.size());
  LmrChunk chunk;
  uint64_t ring_size = 0;
  if (!r.Get(&chunk) || !r.Get(&ring_size)) {
    return Status::Internal("malformed ring-setup reply");
  }
  auto channel = std::make_unique<RpcChannel>();
  channel->server = server;
  channel->func = ring_id;
  channel->ring = {chunk};
  channel->ring_size = ring_size;
  channel->head_mirror = *mirror;

  std::lock_guard<std::mutex> lock(channels_mu_);
  auto [it, inserted] = channels_.emplace(std::make_pair(server, ring_id), std::move(channel));
  return it->second.get();
}

// ------------------------------------------------------------- reply slots

StatusOr<uint32_t> LiteInstance::AcquireReplySlot(uint32_t out_max) {
  if (out_max > params().lite_reply_slot_bytes) {
    return Status::InvalidArgument("RPC reply larger than reply-slot size");
  }
  std::unique_lock<std::mutex> lock(slot_mu_);
  if (free_slots_.empty()) {
    // Zombie quarantine sweep: a slot whose caller timed out is normally
    // freed by the late reply — but a dead peer never sends one. Reclaim
    // zombies older than the RPC timeout so a crashed server can't leak the
    // slot pool dry.
    const uint64_t now_real = lt::RealNowNs();
    for (uint32_t i = 0; i < reply_slots_.size(); ++i) {
      ReplySlot& z = *reply_slots_[i];
      if (z.state.load(std::memory_order_acquire) == 4 &&
          now_real - z.zombie_since_real_ns.load(std::memory_order_relaxed) >
              params().lite_rpc_timeout_ns) {
        z.state.store(0, std::memory_order_release);
        free_slots_.push_back(i);
        rpc_zombie_reclaimed_->Inc();
      }
    }
  }
  if (!slot_cv_.wait_for(lock, std::chrono::seconds(10), [this] { return !free_slots_.empty(); })) {
    return Status::ResourceExhausted("no free RPC reply slots");
  }
  uint32_t slot = free_slots_.back();
  free_slots_.pop_back();
  // New generation: late replies addressed to the previous tenant of this
  // slot no longer match and are discarded by HandleReplyImm.
  reply_slots_[slot]->gen.fetch_add(1, std::memory_order_relaxed);
  reply_slots_[slot]->state.store(1, std::memory_order_release);
  return slot;
}

void LiteInstance::ReleaseReplySlot(uint32_t slot) {
  {
    std::lock_guard<std::mutex> lock(slot_mu_);
    reply_slots_[slot]->state.store(0, std::memory_order_release);
    free_slots_.push_back(slot);
  }
  slot_cv_.notify_one();
}

// ------------------------------------------------------------ client path

Status LiteInstance::PostRpcRequest(RpcChannel* channel, RpcFuncId func, const void* in,
                                    uint32_t in_len, PhysAddr reply_phys, uint32_t reply_max,
                                    uint32_t reply_slot, Priority pri, uint32_t* seq_inout,
                                    bool fail_fast_dead) {
  const uint64_t entry_len = Align64(sizeof(RpcReqHeader) + in_len);
  if (entry_len > channel->ring_size) {
    return Status::InvalidArgument("RPC input larger than server ring");
  }
  if (fail_fast_dead && PeerDead(channel->server)) {
    rpc_dead_fast_fail_->Inc();
    return DeadPeerUnavailable();
  }

  std::lock_guard<std::mutex> lock(channel->mu);
  const uint64_t real_deadline = lt::RealNowNs() + params().lite_rpc_timeout_ns;
  uint64_t off;
  while (true) {
    // The head mirror is DMA-written by the server's head-writer thread; the
    // racy read is the paper's design (stale heads only delay reuse).
    uint64_t head = lt::SimDmaRead64(node_->mem().Data(channel->head_mirror, 8));
    off = channel->tail % channel->ring_size;
    uint64_t pad = (off + entry_len > channel->ring_size) ? (channel->ring_size - off) : 0;
    if (channel->tail + pad + entry_len <= head + channel->ring_size) {
      channel->tail += pad;
      off = channel->tail % channel->ring_size;
      break;
    }
    // Ring full: wait for the server's background head updates.
    if (lt::RealNowNs() > real_deadline) {
      return Status::ResourceExhausted("RPC ring full (server not draining)");
    }
    lt::IdleFor(params().lite_ring_full_retry_ns);
    AttrAdd(LatStage::kLatEngineQueue, params().lite_ring_full_retry_ns);
    std::this_thread::sleep_for(std::chrono::microseconds(2));
  }

  if (*seq_inout == 0) {
    // Fresh call: assign the channel's next sequence (retries re-present the
    // same one so the server can dedup). 0 is reserved for "never dedup".
    if (channel->next_seq == 0) {
      channel->next_seq = 1;
    }
    *seq_inout = channel->next_seq++;
  }

  RpcReqHeader hdr;
  hdr.input_len = in_len;
  hdr.reply_phys = reply_phys;
  hdr.reply_max = static_cast<uint16_t>(reply_max);
  hdr.reply_slot = reply_slot;
  hdr.seq = *seq_inout;
  hdr.client_node = static_cast<uint16_t>(node_id());
  hdr.tail_after = channel->tail + entry_len;
  hdr.trace_id = lt::telemetry::CurrentTraceId();

  std::vector<uint8_t> staging(sizeof(RpcReqHeader) + in_len);
  std::memcpy(staging.data(), &hdr, sizeof(hdr));
  if (in_len > 0) {
    std::memcpy(staging.data() + sizeof(hdr), in, in_len);
  }

  const LmrChunk& ring = channel->ring[0];
  Status st =
      engine_.OneSidedWriteImm(channel->server, ring.addr + off, staging.data(), staging.size(),
                               EncodeImm(func, static_cast<uint32_t>(off / kRingOffsetUnit)), pri);
  if (st.ok()) {
    channel->tail += entry_len;
  }
  return st;
}

StatusOr<uint32_t> LiteInstance::RpcSend(NodeId server_node, RpcFuncId func, const void* in,
                                         uint32_t in_len, uint32_t out_max, Priority pri) {
  auto channel = GetChannel(server_node, RingIdFor(func));
  if (!channel.ok()) {
    return channel.status();
  }
  auto slot = AcquireReplySlot(out_max);
  if (!slot.ok()) {
    return slot.status();
  }
  // The reply may use the whole slot; if it exceeds the caller's buffer the
  // copy-out truncates and reports OutOfRange (the data still arrived).
  ReplySlot& s = *reply_slots_[*slot];
  uint32_t seq = 0;
  Status st = PostRpcRequest(*channel, func, in, in_len, s.buf_phys, s.buf_max,
                             PackReplySlot(*slot, s.gen.load(std::memory_order_relaxed)), pri,
                             &seq);
  if (!st.ok()) {
    ReleaseReplySlot(*slot);
    return st;
  }
  return *slot;
}

Status LiteInstance::RpcSendNoReply(NodeId server_node, RpcFuncId func, const void* in,
                                    uint32_t in_len, Priority pri) {
  auto channel = GetChannel(server_node, RingIdFor(func));
  if (!channel.ok()) {
    return channel.status();
  }
  uint32_t seq = 0;
  return PostRpcRequest(*channel, func, in, in_len, /*reply_phys=*/0, /*reply_max=*/0,
                        kNoReplySlot, pri, &seq);
}

Status LiteInstance::RpcWait(uint32_t slot, void* out, uint32_t out_max, uint32_t* out_len,
                             uint64_t timeout_ns) {
  timeout_ns = engine_.EffectiveTimeoutNs(timeout_ns);
  ReplySlot& s = *reply_slots_[slot];
  uint32_t len;
  uint64_t ready_vtime;
  {
    std::unique_lock<std::mutex> lock(s.mu);
    if (!s.cv.wait_for(lock, std::chrono::nanoseconds(timeout_ns),
                       [&s] { return s.state.load(std::memory_order_acquire) >= 2; })) {
      // Timed out: leave the slot as a zombie; a late reply frees it (or the
      // quarantine sweep reclaims it if the peer died and none ever comes).
      s.zombie_since_real_ns.store(lt::RealNowNs(), std::memory_order_relaxed);
      s.state.store(4, std::memory_order_release);
      lt::IdleFor(timeout_ns);
      AttrAdd(LatStage::kLatDetour, timeout_ns);
      return Status::Timeout("no RPC reply before timeout");
    }
    len = s.reply_len;
    ready_vtime = s.ready_vtime_ns;
  }
  // The LITE library's adaptive wait: busy-check the shared state briefly,
  // then sleep (paper Sec. 5.2). The wait spans request transport, remote
  // handler service, and reply transport; with no per-post breakdown at hand
  // (the post happened at RpcSend time, possibly on another thread) the whole
  // delta books as remote service.
  const uint64_t wait_t0 = NowNs();
  SyncAdaptiveWithWakeup(ready_vtime, params());
  AttrAddRpcWait(NowNs() - wait_t0, lt::telemetry::WqeLatBreakdown{});
  lt::telemetry::StampStage(lt::telemetry::TraceStage::kCompletion, ready_vtime);

  const uint64_t ret_t0 = NowNs();
  uint32_t copy_len = std::min(len, out_max);
  if (copy_len > 0 && out != nullptr) {
    LocalCopyOut(out, s.buf_phys, copy_len);
  }
  AttrAdd(LatStage::kLatRetire, NowNs() - ret_t0);
  if (out_len != nullptr) {
    *out_len = len;
  }
  ReleaseReplySlot(slot);
  if (len > out_max) {
    return Status::OutOfRange("reply truncated: larger than caller buffer");
  }
  return Status::Ok();
}

Status LiteInstance::Rpc(NodeId server_node, RpcFuncId func, const void* in, uint32_t in_len,
                         void* out, uint32_t out_max, uint32_t* out_len, Priority pri) {
  lt::telemetry::ScopedSpan span(&node_->telemetry().tracer(), "LT_RPC");
  lt::telemetry::ScopedOpAttr attr(&node_->telemetry().latency(), "rpc", in_len,
                                   static_cast<int>(pri));
  return RpcCall(server_node, func, in, in_len, out, out_max, out_len, pri, RpcCallOpts{});
}

Status LiteInstance::RpcCall(NodeId server_node, RpcFuncId func, const void* in, uint32_t in_len,
                             void* out, uint32_t out_max, uint32_t* out_len, Priority pri,
                             const RpcCallOpts& opts) {
  if (opts.fail_fast_dead && PeerDead(server_node)) {
    rpc_dead_fast_fail_->Inc();
    return DeadPeerUnavailable();
  }
  auto channel = GetChannel(server_node, RingIdFor(func));
  if (!channel.ok()) {
    return channel.status();
  }
  auto slot = AcquireReplySlot(out_max);
  if (!slot.ok()) {
    return slot.status();
  }
  ReplySlot& s = *reply_slots_[*slot];
  // The packed slot+generation rides every attempt; all attempts of one call
  // share the slot, so whichever attempt's reply lands first completes it.
  const uint32_t packed = PackReplySlot(*slot, s.gen.load(std::memory_order_relaxed));
  const uint64_t per_try_ns = engine_.EffectiveTimeoutNs(opts.timeout_ns);
  const uint32_t max_retries = opts.max_retries == kUseParamRetries
                                   ? params().lite_rpc_max_retries
                                   : opts.max_retries;
  uint64_t backoff_ns = params().lite_rpc_retry_backoff_ns;
  uint32_t seq = 0;  // Assigned by the first successful post; reused after.
  Status last = Status::Timeout("no RPC reply before timeout");
  for (uint32_t attempt = 0; attempt <= max_retries; ++attempt) {
    if (attempt > 0) {
      rpc_retries_->Inc();
      engine_.CountRetry();
      lt::IdleFor(backoff_ns);
      AttrAdd(LatStage::kLatDetour, backoff_ns);
      if (journal_ != nullptr) {
        journal_->Record(lt::telemetry::JournalEvent::kRpcRetry, server_node, backoff_ns);
      }
      backoff_ns *= 2;
      if (opts.fail_fast_dead && PeerDead(server_node)) {
        rpc_dead_fast_fail_->Inc();
        last = DeadPeerUnavailable();
        break;
      }
    }
    Status posted = PostRpcRequest(*channel, func, in, in_len, s.buf_phys, s.buf_max, packed,
                                   pri, &seq, opts.fail_fast_dead);
    // The request's transport breakdown (RNIC, port queue, wire) from the
    // write-imm just posted; the reply wait below is split against it.
    const lt::telemetry::WqeLatBreakdown post_lat = lt::Rnic::LastPostBreakdown();
    if (!posted.ok()) {
      last = posted;
      const lt::StatusCode c = posted.code();
      if (c == lt::StatusCode::kUnavailable || c == lt::StatusCode::kTimeout ||
          c == lt::StatusCode::kResourceExhausted) {
        continue;  // Transient (QP reconnect exhausted / ring full): retry.
      }
      break;
    }
    uint32_t len;
    uint64_t ready_vtime;
    {
      std::unique_lock<std::mutex> lock(s.mu);
      if (!s.cv.wait_for(lock, std::chrono::nanoseconds(per_try_ns),
                         [&s] { return s.state.load(std::memory_order_acquire) >= 2; })) {
        lt::IdleFor(per_try_ns);  // The attempt's wait really elapsed.
        AttrAdd(LatStage::kLatDetour, per_try_ns);
        last = Status::Timeout("no RPC reply before timeout");
        continue;
      }
      len = s.reply_len;
      ready_vtime = s.ready_vtime_ns;
    }
    const uint64_t wait_t0 = NowNs();
    SyncAdaptiveWithWakeup(ready_vtime, params());
    AttrAddRpcWait(NowNs() - wait_t0, post_lat);
    lt::telemetry::StampStage(lt::telemetry::TraceStage::kCompletion, ready_vtime);
    const uint64_t ret_t0 = NowNs();
    const uint32_t copy_len = std::min(len, out_max);
    if (copy_len > 0 && out != nullptr) {
      LocalCopyOut(out, s.buf_phys, copy_len);
    }
    AttrAdd(LatStage::kLatRetire, NowNs() - ret_t0);
    if (out_len != nullptr) {
      *out_len = len;
    }
    ReleaseReplySlot(*slot);
    if (len > out_max) {
      return Status::OutOfRange("reply truncated: larger than caller buffer");
    }
    return Status::Ok();
  }
  // Every attempt failed. If nothing was ever posted the slot is clean;
  // otherwise a late reply may still land — quarantine it as a zombie.
  if (seq == 0) {
    ReleaseReplySlot(*slot);
  } else {
    bool became_ready = false;
    {
      std::lock_guard<std::mutex> lock(s.mu);
      if (s.state.load(std::memory_order_acquire) == 2) {
        became_ready = true;  // Reply raced in after the final timeout.
      } else {
        s.zombie_since_real_ns.store(lt::RealNowNs(), std::memory_order_relaxed);
        s.state.store(4, std::memory_order_release);
      }
    }
    if (became_ready) {
      ReleaseReplySlot(*slot);
    }
  }
  if (opts.fail_fast_dead && last.code() == lt::StatusCode::kTimeout && PeerDead(server_node)) {
    // Distinguish "peer is dead" from "peer is slow": the liveness service
    // condemned the target while we were waiting.
    last = DeadPeerUnavailable();
  }
  return last;
}

Status LiteInstance::MulticastRpc(const std::vector<NodeId>& servers, RpcFuncId func,
                                  const void* in, uint32_t in_len,
                                  std::vector<std::vector<uint8_t>>* replies) {
  // Pipelined multicast (paper Sec. 8.4): issue all calls as async handles,
  // then retire each through the shared completion-handle machinery; total
  // latency ~= one RPC round trip.
  struct Pending {
    MemopHandle handle = kInvalidMemopHandle;
    std::vector<uint8_t> buf;
    uint32_t len = 0;
  };
  const uint32_t out_max = static_cast<uint32_t>(params().lite_reply_slot_bytes);
  std::vector<Pending> pending(servers.size());
  Status first_error = Status::Ok();
  for (size_t i = 0; i < servers.size(); ++i) {
    pending[i].buf.resize(out_max);
    auto h = RpcAsync(servers[i], func, in, in_len, pending[i].buf.data(), out_max,
                      &pending[i].len);
    if (!h.ok()) {
      first_error = h.status();
      break;
    }
    pending[i].handle = *h;
  }
  if (replies != nullptr) {
    replies->clear();
  }
  for (Pending& p : pending) {
    if (p.handle == kInvalidMemopHandle) {
      continue;
    }
    Status st = Wait(p.handle);
    if (!st.ok() && first_error.ok()) {
      first_error = st;
    }
    p.buf.resize(p.len);
    if (replies != nullptr) {
      replies->push_back(std::move(p.buf));
    }
  }
  return first_error;
}

Status LiteInstance::InternalRpc(NodeId server, RpcFuncId func, const WireWriterBytes& in,
                                 std::vector<uint8_t>* out, uint64_t timeout_ns, Priority pri) {
  RpcCallOpts opts;
  opts.timeout_ns = timeout_ns;
  return InternalRpcOpts(server, func, in, out, opts, pri);
}

Status LiteInstance::InternalRpcOpts(NodeId server, RpcFuncId func, const WireWriterBytes& in,
                                     std::vector<uint8_t>* out, const RpcCallOpts& opts,
                                     Priority pri) {
  std::vector<uint8_t> raw(params().lite_reply_slot_bytes);
  uint32_t raw_len = 0;
  LT_RETURN_IF_ERROR(RpcCall(server, func, in.data(), static_cast<uint32_t>(in.size()),
                             raw.data(), static_cast<uint32_t>(raw.size()), &raw_len, pri, opts));
  if (raw_len < sizeof(uint32_t)) {
    return Status::Internal("malformed internal RPC reply");
  }
  uint32_t code;
  std::memcpy(&code, raw.data(), sizeof(code));
  if (code != static_cast<uint32_t>(lt::StatusCode::kOk)) {
    return Status(static_cast<lt::StatusCode>(code), "remote LITE error");
  }
  if (out != nullptr) {
    out->assign(raw.begin() + sizeof(uint32_t), raw.begin() + raw_len);
  }
  return Status::Ok();
}

// ------------------------------------------------------------ server path

Status LiteInstance::RegisterRpc(RpcFuncId func) {
  if (func > kMaxAppFuncId) {
    return Status::InvalidArgument("application RPC ids must be <= 999");
  }
  EnsureAppQueue(func);
  return Status::Ok();
}

BlockingQueue<RpcIncoming>* LiteInstance::EnsureAppQueue(RpcFuncId func) {
  std::lock_guard<std::mutex> lock(funcs_mu_);
  auto it = app_queues_.find(func);
  if (it == app_queues_.end()) {
    it = app_queues_.emplace(func, std::make_unique<BlockingQueue<RpcIncoming>>()).first;
  }
  return it->second.get();
}

StatusOr<RpcIncoming> LiteInstance::RecvRpc(RpcFuncId func, uint64_t timeout_ns) {
  BlockingQueue<RpcIncoming>* queue = EnsureAppQueue(func);
  std::optional<RpcIncoming> inc;
  if (timeout_ns == kInfiniteTimeout) {
    inc = queue->Pop();
  } else {
    inc = queue->PopFor(std::chrono::nanoseconds(engine_.EffectiveTimeoutNs(timeout_ns)));
  }
  if (!inc.has_value()) {
    if (stopping_.load()) {
      return Status::Unavailable("LITE instance stopping");
    }
    return Status::Timeout("no RPC request before timeout");
  }
  // Serve this request on its own timeline (adaptive spin-then-sleep wait).
  lt::ServiceTimeline::ForThisThread().BeginService(inc->arrival_vtime_ns, 1000,
                                                    params().lite_adaptive_spin_ns,
                                                    params().thread_wakeup_ns);
  return *inc;
}

Status LiteInstance::ReplyRpc(const ReplyToken& token, const void* data, uint32_t len) {
  if (!token.valid() || token.reply_slot == kNoReplySlot || token.reply_phys == 0) {
    return Status::Ok();  // Fire-and-forget call: nothing to reply to.
  }
  if (len > token.reply_max) {
    return Status::InvalidArgument("RPC reply exceeds caller's buffer");
  }
  if (token.seq != 0) {
    // Cache the reply before sending: a retried duplicate arriving after
    // this point re-sends it instead of re-executing the handler.
    RecordReplay(token, data, len);
  }
  if (token.parent_trace_id != 0) {
    // The client sampled this call (nonzero trace id on the wire): commit a
    // server-side child span covering request pickup -> reply post, tagged
    // with the client's id so the dump/export can stitch the halves. Costs
    // nothing for unsampled traffic — parent_trace_id is 0 then. Committed
    // before the reply write so that once the client observes completion,
    // the server half is already in node-local tracer state.
    lt::telemetry::Tracer& tracer = node_->telemetry().tracer();
    lt::telemetry::TraceSpan span;
    span.op = "LT_RPC_srv";
    span.trace_id = tracer.AllocTraceId();
    span.parent_trace_id = token.parent_trace_id;
    span.node = node_id();
    span.StampAt(lt::telemetry::TraceStage::kServerRecv, token.arrival_vtime_ns);
    span.StampAt(lt::telemetry::TraceStage::kServerReply, lt::NowNs(), len);
    tracer.Commit(span);
  }
  return engine_.OneSidedWriteImm(token.client_node, token.reply_phys, data, len,
                                  EncodeImm(kReplyFuncId, token.reply_slot), Priority::kHigh);
}

StatusOr<RpcIncoming> LiteInstance::ReplyAndRecv(const ReplyToken& token, const void* data,
                                                 uint32_t len, RpcFuncId func,
                                                 uint64_t timeout_ns) {
  LT_RETURN_IF_ERROR(ReplyRpc(token, data, len));
  return RecvRpc(func, timeout_ns);
}

// -------------------------------------------------------------- messaging

Status LiteInstance::SendMsg(NodeId dst, const void* data, uint32_t len, Priority pri) {
  auto channel = GetChannel(dst, kControlRingId);
  if (!channel.ok()) {
    return channel.status();
  }
  uint32_t seq = 0;
  return PostRpcRequest(*channel, kMsgFuncId, data, len, /*reply_phys=*/0, /*reply_max=*/0,
                        kNoReplySlot, pri, &seq);
}

StatusOr<MsgIncoming> LiteInstance::RecvMsg(uint64_t timeout_ns) {
  std::optional<MsgIncoming> msg;
  if (timeout_ns == kInfiniteTimeout) {
    msg = msg_queue_.Pop();
  } else {
    msg = msg_queue_.PopFor(std::chrono::nanoseconds(engine_.EffectiveTimeoutNs(timeout_ns)));
  }
  if (!msg.has_value()) {
    if (stopping_.load()) {
      return Status::Unavailable("LITE instance stopping");
    }
    return Status::Timeout("no message before timeout");
  }
  lt::ServiceTimeline::ForThisThread().BeginService(msg->arrival_vtime_ns, 500,
                                                    params().lite_adaptive_spin_ns,
                                                    params().thread_wakeup_ns);
  return *msg;
}

// ----------------------------------------------------------- service loops

void LiteInstance::PollLoop() {
  // The poll thread serves every event on the event's own timeline (clock
  // rewound per event; its serial dispatch capacity is still enforced).
  lt::ServiceTimeline timeline;
  while (!stopping_.load()) {
    uint64_t cpu0 = lt::ThreadCpuNs();
    auto c = recv_cq_->WaitPoll(kServiceWaitNs, WaitMode::kSleep, 0);
    if (stopping_.load()) {
      break;
    }
    poll_wakeups_->Inc();
    if (!c.has_value()) {
      poll_idle_wakeups_->Inc();
    }
    if (c.has_value() && c->opcode == WcOpcode::kRecvImm && c->has_imm) {
      // Batch size at this wake: the completion in hand plus whatever else is
      // already queued behind it (paper Sec. 5.1's shared-poller batching).
      poll_batch_hist_->Record(1 + recv_cq_->Depth());
      timeline.BeginService(c->ready_at_ns, params().lite_rpc_dispatch_ns,
                            params().lite_adaptive_spin_ns, params().thread_wakeup_ns);
      if (ImmFunc(c->imm) == kReplyFuncId) {
        HandleReplyImm(c->imm, c->byte_len, lt::NowNs());
      } else {
        HandleRequestImm(c->src_node, c->imm, lt::NowNs());
      }
    }
    poll_cpu_.Add(lt::ThreadCpuNs() - cpu0);
  }
}

void LiteInstance::HandleReplyImm(uint32_t imm, uint32_t byte_len, uint64_t vtime) {
  const uint32_t packed = ImmPayload(imm);
  const uint32_t slot = UnpackReplySlot(packed);
  const uint32_t gen = UnpackReplyGen(packed);
  if (slot >= reply_slots_.size()) {
    LT_LOG_WARNING << "node " << node_id() << ": reply IMM names bad slot " << slot;
    return;
  }
  rpc_replies_->Inc();
  ReplySlot& s = *reply_slots_[slot];
  bool was_zombie = false;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    if ((s.gen.load(std::memory_order_relaxed) & kReplyGenMask) != gen) {
      // Addressed to an earlier tenant of this slot (late reply after reuse).
      rpc_stale_replies_->Inc();
      return;
    }
    switch (s.state.load(std::memory_order_acquire)) {
      case 1:  // Caller waiting: deliver.
        s.reply_len = byte_len;
        s.ready_vtime_ns = vtime;
        s.state.store(2, std::memory_order_release);
        break;
      case 4:  // Caller gave up: the late reply frees the slot.
        was_zombie = true;
        break;
      default:  // Free or already delivered: duplicate reply, drop it.
        rpc_stale_replies_->Inc();
        return;
    }
  }
  if (was_zombie) {
    // Free only if still a zombie: the quarantine sweep in AcquireReplySlot
    // may have reclaimed (or even re-issued) the slot since we dropped s.mu.
    bool freed = false;
    {
      std::lock_guard<std::mutex> lock(slot_mu_);
      int expected = 4;
      if (s.state.compare_exchange_strong(expected, 0, std::memory_order_acq_rel)) {
        free_slots_.push_back(slot);
        freed = true;
      }
    }
    if (freed) {
      slot_cv_.notify_one();
    }
  } else {
    s.cv.notify_one();
  }
}

void LiteInstance::HandleRequestImm(NodeId src, uint32_t imm, uint64_t vtime) {
  const RpcFuncId func = ImmFunc(imm);
  const uint64_t offset = static_cast<uint64_t>(ImmPayload(imm)) * kRingOffsetUnit;

  ServerRing* ring = nullptr;
  {
    std::lock_guard<std::mutex> lock(rings_mu_);
    auto it = rings_.find({src, RingIdFor(func)});
    if (it != rings_.end()) {
      ring = it->second.get();
    }
  }
  if (ring == nullptr) {
    LT_LOG_WARNING << "node " << node_id() << ": request IMM for unknown ring (src=" << src
                   << " func=" << func << ")";
    return;
  }
  rpc_requests_->Inc();
  LT_VLOG << "node " << node_id() << ": RPC request from " << src << " func " << func;

  SpinFor(params().lite_rpc_dispatch_ns);

  // The ring is DMA-written by the client's RNIC; read the header with the
  // simulated-DMA copy (see annotations.h).
  RpcReqHeader hdr;
  lt::SimDmaCopy(&hdr, node_->mem().Data(ring->ring.addr + offset, sizeof(hdr)), sizeof(hdr));
  if (hdr.magic != kRpcMagic || hdr.input_len > ring->ring_size) {
    LT_LOG_WARNING << "node " << node_id() << ": corrupt RPC header in ring";
    return;
  }

  if (hdr.seq != 0 && !SeqFresh(ring, hdr.seq)) {
    // Duplicate of an already-executed request (client retry or fabric
    // duplication): release its ring space, then replay the cached reply
    // instead of re-running the handler — at-most-once execution.
    rpc_dup_requests_->Inc();
    ring->head = std::max(ring->head, hdr.tail_after);
    ring->head_to_publish.store(ring->head, std::memory_order_release);
    head_updates_.Push({ring, NowNs()});
    ReplayReply(ring, hdr);
    return;
  }

  // The single data move of the receive path (paper Sec. 5.2): ring -> user.
  RpcIncoming inc;
  inc.data.resize(hdr.input_len);
  if (hdr.input_len > 0) {
    LocalCopyOut(inc.data.data(), ring->ring.addr + offset + sizeof(hdr), hdr.input_len);
  }
  inc.token.client_node = hdr.client_node;
  inc.token.reply_phys = hdr.reply_phys;
  inc.token.reply_max = hdr.reply_max;
  inc.token.reply_slot = hdr.reply_slot;
  inc.token.ring_func = ring->func;
  inc.token.seq = hdr.seq;
  inc.token.parent_trace_id = hdr.trace_id;
  inc.arrival_vtime_ns = NowNs();
  inc.token.arrival_vtime_ns = inc.arrival_vtime_ns;

  // Release the ring space and let the background thread tell the client.
  ring->head = std::max(ring->head, hdr.tail_after);
  ring->head_to_publish.store(ring->head, std::memory_order_release);
  head_updates_.Push({ring, NowNs()});

  if (func <= kMaxAppFuncId) {
    EnsureAppQueue(func)->Push(std::move(inc));
  } else if (func == kMsgFuncId) {
    MsgIncoming msg;
    msg.data = std::move(inc.data);
    msg.src = src;
    msg.arrival_vtime_ns = inc.arrival_vtime_ns;
    msg_queue_.Push(std::move(msg));
  } else {
    internal_queue_.Push({func, std::move(inc)});
  }
}

// ------------------------------------------------- idempotence bookkeeping

bool LiteInstance::SeqFresh(ServerRing* ring, uint32_t seq) {
  // Poll thread only — no lock needed on seq_low/seq_above. Sequences are
  // per-channel and skip 0; wrap-around would need 2^32 calls on one channel.
  if (seq <= ring->seq_low || ring->seq_above.count(seq) != 0) {
    return false;
  }
  ring->seq_above.insert(seq);
  // Collapse the consecutive run above the watermark (keeps the set sparse;
  // it only holds gaps created by fault-injected reordering).
  while (!ring->seq_above.empty() && *ring->seq_above.begin() == ring->seq_low + 1) {
    ++ring->seq_low;
    ring->seq_above.erase(ring->seq_above.begin());
  }
  return true;
}

void LiteInstance::RecordReplay(const ReplyToken& token, const void* data, uint32_t len) {
  ServerRing* ring = nullptr;
  {
    std::lock_guard<std::mutex> lock(rings_mu_);
    auto it = rings_.find({token.client_node, token.ring_func});
    if (it != rings_.end()) {
      ring = it->second.get();
    }
  }
  if (ring == nullptr) {
    return;
  }
  std::lock_guard<std::mutex> lock(ring->replay_mu);
  auto& entry = ring->replay[token.seq];
  if (len > 0) {
    entry.assign(static_cast<const uint8_t*>(data), static_cast<const uint8_t*>(data) + len);
  } else {
    entry.clear();
  }
  while (ring->replay.size() > kReplayCacheEntries) {
    ring->replay.erase(ring->replay.begin());  // Evict the oldest sequence.
  }
}

void LiteInstance::ReplayReply(ServerRing* ring, const RpcReqHeader& hdr) {
  if (hdr.reply_slot == kNoReplySlot || hdr.reply_phys == 0) {
    return;  // Fire-and-forget duplicate: nothing to replay.
  }
  std::vector<uint8_t> cached;
  bool hit = false;
  {
    std::lock_guard<std::mutex> lock(ring->replay_mu);
    auto it = ring->replay.find(hdr.seq);
    if (it != ring->replay.end()) {
      cached = it->second;
      hit = true;
    }
  }
  if (!hit) {
    // Not cached: either the original is still executing (its reply will
    // arrive) or the sequence fell off the replay horizon (the client times
    // out). Either way, re-executing would break at-most-once — drop it.
    return;
  }
  rpc_replayed_replies_->Inc();
  (void)engine_.OneSidedWriteImm(ring->client, hdr.reply_phys, cached.data(),
                                 static_cast<uint32_t>(cached.size()),
                                 EncodeImm(kReplyFuncId, hdr.reply_slot), Priority::kHigh);
}

// ----------------------------------------------------- liveness (keepalive)

void LiteInstance::SetPeerDead(NodeId node, bool dead) {
  if (node >= peer_dead_n_) {
    return;
  }
  const uint8_t prev =
      peer_dead_[node].exchange(dead ? 1 : 0, std::memory_order_relaxed);
  if (dead && prev == 0) {
    liveness_marked_dead_->Inc();
    if (journal_ != nullptr) {
      journal_->Record(lt::telemetry::JournalEvent::kPeerDead, node);
    }
    LT_LOG_INFO << "node " << node_id() << ": liveness marks node " << node << " dead";
  } else if (!dead && prev != 0) {
    liveness_revived_->Inc();
    if (journal_ != nullptr) {
      journal_->Record(lt::telemetry::JournalEvent::kPeerAlive, node);
    }
    LT_LOG_INFO << "node " << node_id() << ": liveness revives node " << node;
  }
}

void LiteInstance::KeepaliveLoop() {
  const uint64_t interval_ns = params().lite_keepalive_interval_ns;
  int consecutive_failures = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(keepalive_mu_);
      if (keepalive_cv_.wait_for(lock, std::chrono::nanoseconds(interval_ns),
                                 [this] { return stopping_.load(); })) {
        return;
      }
    }
    WireWriter w;
    w.Put<NodeId>(node_id());
    std::vector<uint8_t> out;
    RpcCallOpts opts;
    // Keepalives probe liveness; they must not linger (no retries) and must
    // reach a manager we currently believe dead (it may have restarted).
    opts.timeout_ns = std::max<uint64_t>(2 * interval_ns, 1'000'000);
    opts.max_retries = 0;
    opts.fail_fast_dead = false;
    Status st = InternalRpcOpts(manager_node_, kFnKeepalive, w.bytes(), &out, opts);
    liveness_keepalives_->Inc();
    if (!st.ok()) {
      if (++consecutive_failures >= 3) {
        SetPeerDead(manager_node_, true);
      }
      continue;
    }
    consecutive_failures = 0;
    SetPeerDead(manager_node_, false);
    // The manager piggybacks its dead list on the reply; adopt it (our own
    // id and the manager's are never taken on someone else's word).
    WireReader r(out.data(), out.size());
    uint32_t dead_count = 0;
    if (!r.Get(&dead_count) || dead_count > peer_dead_n_) {
      continue;
    }
    std::vector<uint8_t> dead(peer_dead_n_, 0);
    bool parse_ok = true;
    for (uint32_t i = 0; i < dead_count; ++i) {
      NodeId n = kInvalidNode;
      if (!r.Get(&n)) {
        parse_ok = false;
        break;
      }
      if (n < dead.size()) {
        dead[n] = 1;
      }
    }
    if (!parse_ok) {
      continue;
    }
    for (NodeId n = 0; n < static_cast<NodeId>(peer_dead_n_); ++n) {
      if (n == node_id() || n == manager_node_) {
        continue;
      }
      SetPeerDead(n, dead[n] != 0);
    }
  }
}

void LiteInstance::HeadWriterLoop() {
  while (true) {
    auto item = head_updates_.Pop();
    if (!item.has_value()) {
      return;  // Queue closed.
    }
    auto [ring, vtime] = *item;
    lt::SetServiceClock(vtime);  // Publish on the triggering event's timeline.
    uint64_t head = ring->head_to_publish.load(std::memory_order_acquire);
    (void)engine_.OneSidedWrite(ring->client, ring->client_head_mirror, &head, sizeof(head),
                                Priority::kHigh, /*signaled=*/false);
  }
}

void LiteInstance::InternalWorkerLoop() {
  lt::ServiceTimeline timeline;
  while (true) {
    auto item = internal_queue_.Pop();
    if (!item.has_value()) {
      return;  // Queue closed.
    }
    auto& [func, inc] = *item;
    timeline.BeginService(inc.arrival_vtime_ns, 1500, params().lite_adaptive_spin_ns,
                          params().thread_wakeup_ns);
    auto it = internal_handlers_.find(func);
    if (it == internal_handlers_.end()) {
      LT_LOG_WARNING << "node " << node_id() << ": no handler for internal func " << func;
      continue;
    }
    it->second(this, inc);
  }
}

}  // namespace lite
