// RPC-stack state structures shared by LiteInstance's facade header and the
// RPC implementation (rpc.cc / handlers.cc): the client/server sides of one
// ring channel, the reply-slot rendezvous, the wire header, and the lock /
// barrier service records. Split out of instance.h so the facade stays a
// readable table of contents.
#ifndef SRC_LITE_RPC_STATE_H_
#define SRC_LITE_RPC_STATE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "src/lite/types.h"

namespace lite {

// Token identifying one received-but-not-yet-replied RPC call; LT_replyRPC
// may be invoked later and from any thread (deferred replies power the lock
// and barrier services).
struct ReplyToken {
  NodeId client_node = kInvalidNode;
  PhysAddr reply_phys = 0;
  uint32_t reply_max = 0;
  uint32_t reply_slot = 0;  // Packed {generation, slot} — see PackReplySlot.
  // Virtual arrival time of the call; deferred replies (lock grants,
  // barrier releases) must not be issued on an earlier timeline.
  uint64_t arrival_vtime_ns = 0;
  // Idempotence bookkeeping: the server ring the call arrived on and the
  // client-assigned sequence number, so LT_replyRPC can record the reply in
  // the ring's replay cache (a retried duplicate then re-sends the cached
  // reply instead of re-executing the handler).
  RpcFuncId ring_func = 0;
  uint32_t seq = 0;
  // Trace id the client put on the wire (0 = untraced). LT_replyRPC opens a
  // server-side child span tagged with this id so DumpTelemetryJson can
  // stitch the two halves of the call.
  uint64_t parent_trace_id = 0;
  bool valid() const { return client_node != kInvalidNode; }
};

// One received RPC call, as handed to LT_recvRPC.
struct RpcIncoming {
  std::vector<uint8_t> data;
  ReplyToken token;
  uint64_t arrival_vtime_ns = 0;
};

// One received LT_send message.
struct MsgIncoming {
  std::vector<uint8_t> data;
  NodeId src = kInvalidNode;
  uint64_t arrival_vtime_ns = 0;
};

// Client side of one RPC channel: ring placement at the server plus the
// local tail and the head mirror the server's background thread updates.
struct RpcChannel {
  NodeId server = kInvalidNode;
  RpcFuncId func = 0;
  std::vector<LmrChunk> ring;  // Single chunk in practice.
  uint64_t ring_size = 0;
  uint64_t tail = 0;           // Absolute byte offset (monotonic).
  PhysAddr head_mirror = 0;    // Local 8-byte word; server writes head here.
  std::mutex mu;               // Serializes reserve+post (preserves order).
  uint32_t next_seq = 1;       // Per-channel idempotence sequence (under mu).
};

// Server side of one RPC channel.
struct ServerRing {
  NodeId client = kInvalidNode;
  RpcFuncId func = 0;
  LmrChunk ring;
  uint64_t ring_size = 0;
  uint64_t head = 0;           // Absolute byte offset (monotonic).
  PhysAddr client_head_mirror = 0;
  std::atomic<uint64_t> head_to_publish{0};

  // At-most-once execution state (poll thread only): every executed
  // sequence is <= seq_low or in seq_above (kept sparse — consecutive
  // completions collapse into the watermark). A set rather than a plain
  // high-water mark, because fault-injected reordering can deliver a fresh
  // request with a lower sequence after a later one executed.
  uint32_t seq_low = 0;
  std::set<uint32_t> seq_above;

  // Replay cache: reply payloads of recent sequences, re-sent verbatim
  // when a retried duplicate arrives after the original already executed.
  // Bounded; a duplicate past the horizon is dropped silently (the client
  // then times out — at-most-once still holds, exactly-once does not).
  std::mutex replay_mu;
  std::map<uint32_t, std::vector<uint8_t>> replay;
};

// Replay cache entries kept per server ring.
inline constexpr size_t kReplayCacheEntries = 32;

// Client-side reply rendezvous.
struct ReplySlot {
  std::mutex mu;
  std::condition_variable cv;
  std::atomic<int> state{0};  // 0 free, 1 waiting, 2 ready, 3 error,
                              // 4 zombie (timed out; awaiting late reply
                              //   or quarantine reclaim)
  // Reuse generation, bumped on acquire and carried in the packed reply-
  // slot field; late/duplicate replies with a stale generation are
  // discarded (see PackReplySlot in types.h).
  std::atomic<uint32_t> gen{0};
  uint32_t reply_len = 0;
  uint64_t ready_vtime_ns = 0;
  PhysAddr buf_phys = 0;
  uint32_t buf_max = 0;
  // Real time the slot became a zombie. A zombie whose peer died may never
  // get the late reply that frees it; AcquireReplySlot reclaims zombies
  // older than the RPC timeout when the free list runs dry.
  std::atomic<uint64_t> zombie_since_real_ns{0};
};

// FIFO wait queue of one distributed lock (service at the lock's owner).
struct LockQueue {
  std::deque<ReplyToken> waiters;
  uint32_t grants_pending = 0;
};

// Arrival state of one named barrier (service at the cluster manager).
struct BarrierState {
  uint32_t expected = 0;
  std::vector<ReplyToken> arrived;
};

inline constexpr uint16_t kRpcMagic = 0x4c54;  // "LT"

// Header written at the ring tail ahead of the RPC payload. Kept at
// exactly 48 bytes: the header rides every request's fabric transfer, so
// its size feeds every simulated RPC latency and is pinned by the
// static_assert below. The seq field fits by narrowing
// magic/reply_max/client_node (reply slabs are <64KB slots and node ids
// are small; both statically sane for this simulator); trace_id carries
// the client span's id for cross-node stitching (0 = untraced, so the
// header cost is identical whether tracing is on or off).
struct RpcReqHeader {
  PhysAddr reply_phys = 0;   // Client reply buffer (slot slab).
  uint64_t tail_after = 0;   // Absolute head position once consumed.
  uint64_t trace_id = 0;     // Client trace id (0 = untraced request).
  uint32_t input_len = 0;
  uint32_t reply_slot = 0;   // Packed {generation, slot} or kNoReplySlot.
  uint32_t seq = 0;          // Per-channel sequence (0 = never dedup).
  uint16_t reply_max = 0;
  uint16_t magic = kRpcMagic;
  uint16_t client_node = static_cast<uint16_t>(0xffff);
};
static_assert(sizeof(RpcReqHeader) == 48,
              "RpcReqHeader is wire-visible: its size feeds every RPC's "
              "simulated transfer time and must not change");

}  // namespace lite

#endif  // SRC_LITE_RPC_STATE_H_
