#include "src/lite/ring.h"

#include <algorithm>
#include <functional>
#include <thread>

#include "src/common/timing.h"
#include "src/lite/instance.h"

namespace lite {

using lt::NowNs;
using lt::telemetry::AttrAdd;
using lt::telemetry::LatStage;

SubmissionRings::SubmissionRings(LiteInstance* inst)
    : inst_(inst),
      spin_ns_(inst->params().lite_ring_spin_ns),
      flush_ns_(inst->params().lite_ring_flush_ns),
      batch_(std::max<uint32_t>(1, inst->params().lite_ring_doorbell_batch)),
      entries_(std::max<uint32_t>(1, inst->params().lite_ring_entries)) {
  const uint32_t n = std::max<uint32_t>(1, inst->params().lite_ring_cpus);
  rings_.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    rings_.push_back(std::make_unique<CpuRing>());
  }
}

void SubmissionRings::RegisterTelemetry(lt::telemetry::Registry& reg) {
  ops_ = reg.GetCounter("lite.ring.ops");
  doorbells_ = reg.GetCounter("lite.ring.doorbells");
  deferred_flushes_ = reg.GetCounter("lite.ring.deferred_flushes");
  overflow_flushes_ = reg.GetCounter("lite.ring.overflow_flushes");
  spin_hits_ = reg.GetCounter("lite.ring.spin_hits");
  sleep_wakeups_ = reg.GetCounter("lite.ring.sleep_wakeups");
  ops_per_crossing_ = reg.GetHistogram("lite.ring.ops_per_crossing");
  reg.RegisterProbe("lite.ring.open_epochs", [this] { return OpenEpochs(); });
  reg.RegisterProbe("lite.ring.open_epoch_ops", [this] { return OpenEpochOps(); });
  reg.RegisterProbe("lite.ring.deferred_pending", [this] { return DeferredPending(); });
}

SubmissionRings::CpuRing& SubmissionRings::RingForThisThread() {
  const size_t h = std::hash<std::thread::id>()(std::this_thread::get_id());
  return *rings_[h % rings_.size()];
}

void SubmissionRings::MaybeDoorbellLocked(CpuRing& r) {
  lt::OsKernel& os = inst_->node()->os();
  if (r.epoch_open && NowNs() <= r.hot_until_ns) {
    return;  // Drainer is hot: the op rides the open doorbell, crossing-free.
  }
  if (r.epoch_open) {
    // The drainer went cold since the last doorbell: close that epoch and
    // book how many ops its one crossing amortized.
    os.RecordBatchedCrossing(r.epoch_ops);
    ops_per_crossing_->Record(r.epoch_ops);
  }
  const uint64_t t0 = NowNs();
  os.CrossUserKernelBatched();
  doorbells_->Inc();
  AttrAdd(LatStage::kLatCross, NowNs() - t0);
  r.epoch_open = true;
  r.epoch_ops = 0;
  r.hot_until_ns = NowNs() + spin_ns_;
}

void SubmissionRings::BookOpsLocked(CpuRing& r, uint64_t ops) {
  r.epoch_ops += ops;
  ops_->Inc(ops);
  r.hot_until_ns = std::max(r.hot_until_ns, NowNs() + spin_ns_);
}

void SubmissionRings::SyncEnter() {
  CpuRing& r = RingForThisThread();
  std::vector<RingDeferredOp> batch;
  {
    std::lock_guard<std::mutex> lock(r.mu);
    batch.swap(r.deferred);
    MaybeDoorbellLocked(r);
  }
  if (!batch.empty()) {
    deferred_flushes_->Inc();
    DrainBatch(r, std::move(batch));
  }
}

void SubmissionRings::SyncExit(uint64_t ops) {
  CpuRing& r = RingForThisThread();
  std::lock_guard<std::mutex> lock(r.mu);
  BookOpsLocked(r, ops);
}

void SubmissionRings::DrainBatch(CpuRing& r, std::vector<RingDeferredOp>&& batch) {
  RingDrainCache cache;
  for (RingDeferredOp& op : batch) {
    inst_->ExecuteDeferredAsync(op, &cache);
  }
  std::lock_guard<std::mutex> lock(r.mu);
  BookOpsLocked(r, batch.size());
}

StatusOr<MemopHandle> SubmissionRings::SubmitAsync(Lh lh, uint64_t offset, void* buf, uint64_t len,
                                                   bool is_read, Priority pri) {
  // User-half validation against the read-only lh-table mapping: errors
  // surface at submit time exactly as on the non-ring path, but without a
  // crossing or a map-check charge — the kernel half pays the authoritative
  // check when the batch drains.
  auto entry = inst_->GetLh(lh);
  if (!entry.ok()) {
    return entry.status();
  }
  Status perm = LiteInstance::CheckAccess(*entry, offset, len, is_read ? kPermRead : kPermWrite);
  if (!perm.ok()) {
    return perm;
  }

  RingDeferredOp op;
  op.lh = lh;
  op.offset = offset;
  op.buf = buf;
  op.len = len;
  op.is_read = is_read;
  op.pri = pri;
  op.handle = inst_->engine_.ReserveHandle();
  op.enqueue_ns = NowNs();
  lt::telemetry::AttrDetach(&op.attr);
  const MemopHandle h = op.handle;

  CpuRing& r = RingForThisThread();
  std::vector<RingDeferredOp> batch;
  bool overflow = false;
  {
    std::lock_guard<std::mutex> lock(r.mu);
    r.deferred.push_back(std::move(op));
    overflow = r.deferred.size() >= entries_;
    const bool aged = NowNs() - r.deferred.front().enqueue_ns >= flush_ns_;
    if (overflow || aged || r.deferred.size() >= batch_) {
      batch.swap(r.deferred);
      MaybeDoorbellLocked(r);
    }
  }
  if (!batch.empty()) {
    (overflow ? overflow_flushes_ : deferred_flushes_)->Inc();
    DrainBatch(r, std::move(batch));
  }
  return h;
}

void SubmissionRings::FlushHandle(MemopHandle h) {
  for (auto& rp : rings_) {
    CpuRing& r = *rp;
    std::vector<RingDeferredOp> batch;
    {
      std::lock_guard<std::mutex> lock(r.mu);
      bool found = false;
      for (const RingDeferredOp& op : r.deferred) {
        if (op.handle == h) {
          found = true;
          break;
        }
      }
      if (!found) {
        continue;
      }
      batch.swap(r.deferred);
      MaybeDoorbellLocked(r);
    }
    deferred_flushes_->Inc();
    DrainBatch(r, std::move(batch));
    return;
  }
}

void SubmissionRings::FlushAll() {
  for (auto& rp : rings_) {
    CpuRing& r = *rp;
    std::vector<RingDeferredOp> batch;
    {
      std::lock_guard<std::mutex> lock(r.mu);
      if (r.deferred.empty()) {
        continue;
      }
      batch.swap(r.deferred);
      MaybeDoorbellLocked(r);
    }
    deferred_flushes_->Inc();
    DrainBatch(r, std::move(batch));
  }
}

void SubmissionRings::AccountReap(uint64_t waited_ns) {
  if (waited_ns <= spin_ns_) {
    // The completion ring was hot: the reap never left user space.
    spin_hits_->Inc();
  } else {
    // The reaper outlasted its spin budget and slept: one crossing + one
    // thread wakeup for the whole sleep cycle (not one per poll iteration).
    const uint64_t t0 = NowNs();
    inst_->node()->os().CrossUserKernel();
    inst_->node()->os().ChargeThreadWakeup();
    AttrAdd(LatStage::kLatCross, NowNs() - t0);
    sleep_wakeups_->Inc();
  }
  // Delivering completions counts as drainer activity: keep it hot.
  CpuRing& r = RingForThisThread();
  std::lock_guard<std::mutex> lock(r.mu);
  if (r.epoch_open) {
    r.hot_until_ns = std::max(r.hot_until_ns, NowNs() + spin_ns_);
  }
}

uint64_t SubmissionRings::OpenEpochs() const {
  uint64_t n = 0;
  for (const auto& rp : rings_) {
    std::lock_guard<std::mutex> lock(rp->mu);
    n += rp->epoch_open ? 1 : 0;
  }
  return n;
}

uint64_t SubmissionRings::OpenEpochOps() const {
  uint64_t n = 0;
  for (const auto& rp : rings_) {
    std::lock_guard<std::mutex> lock(rp->mu);
    n += rp->epoch_ops;
  }
  return n;
}

uint64_t SubmissionRings::DeferredPending() const {
  uint64_t n = 0;
  for (const auto& rp : rings_) {
    std::lock_guard<std::mutex> lock(rp->mu);
    n += rp->deferred.size();
  }
  return n;
}

}  // namespace lite
