// OpEngine implementation: the blocking one-sided issue/retire path (moved
// from instance.cc), the multi-piece "issue all, wait all" submission, and
// the async completion-handle machinery (moved from memops_async.cc).
//
// Concurrency: one mutex (async_mu_) covers the op table, the per-stream
// signaling state, and the shared harvest map (a CQE taken on behalf of a
// different op's WQE parks there until its owner retires). In this simulator
// every CQE exists from post time — only its ready_at is in the future — so
// retirement never blocks on real time; waiters advance their own virtual
// clocks from the harvested ready times.
#include "src/lite/op_engine.h"

#include <algorithm>
#include <cstdint>

#include "src/common/logging.h"
#include "src/common/timing.h"
#include "src/lite/instance.h"
#include "src/rnic/rnic.h"
#include "src/telemetry/latency_attr.h"

namespace lite {

using lt::Completion;
using lt::NowNs;
using lt::Qp;
using lt::SpinFor;
using lt::SyncToBusy;
using lt::WaitMode;
using lt::WcOpcode;
using lt::WorkRequest;
using lt::WrOpcode;
using lt::telemetry::AttrAdd;
using lt::telemetry::AttrAddSplit;
using lt::telemetry::LatStage;

namespace {

// One hour of simulated time: effectively infinite for any benchmark yet
// finite, so a lost wakeup cannot hang a run forever.
constexpr uint64_t kLongTimeoutCapNs = 3'600ull * 1'000'000'000ull;

bool TransientCode(const Status& s) {
  return s.code() == lt::StatusCode::kUnavailable || s.code() == lt::StatusCode::kTimeout;
}

// Issuer-side migration gate (the simulated analogue of the responder NIC
// checking its protection tables): consults `target`'s migration guard before
// a data access to its memory. kOk means proceed — the caller must
// CloseAccess(gate, landed) once the post's outcome is known. Costs one
// relaxed load when the target has never migrated anything.
Status GateAccess(LiteInstance* issuer, LiteInstance* target, PhysAddr addr, uint64_t len,
                  bool is_write, AccessGate* gate) {
  if (target == nullptr || !target->migration().armed()) {
    return Status::Ok();
  }
  switch (target->migration().OpenAccess(addr, len, is_write, issuer->node_id(),
                                         /*park_cap_real_ns=*/0, gate)) {
    case MigrationState::Gate::kStale:
      return Status::StaleHome("target LMR migrated away; re-resolve its home");
    case MigrationState::Gate::kBusy:
      return Status::Unavailable("migration fence busy");
    case MigrationState::Gate::kClear:
      break;
  }
  return Status::Ok();
}

// True for WRs that touch LMR data at the destination and therefore go
// through the migration gate. Zero-length writes (async flush fences) and
// ring/IMM traffic are exempt.
bool GatedDataOp(const lt::WorkRequest& wr) {
  switch (wr.opcode) {
    case WrOpcode::kRead:
      return true;
    case WrOpcode::kWrite:
      return wr.length > 0;
    case WrOpcode::kFetchAdd:
    case WrOpcode::kCmpSwap:
      return true;
    default:
      return false;
  }
}

}  // namespace

void OpEngine::RegisterTelemetry(lt::telemetry::Registry& reg, lt::telemetry::Journal* journal) {
  journal_ = journal;
  // Engine-level instruments (docs/TELEMETRY.md, "Op-submission engine").
  engine_ops_ = reg.GetCounter("lite.engine.ops");
  engine_ops_ok_ = reg.GetCounter("lite.engine.ops_ok");
  engine_ops_failed_ = reg.GetCounter("lite.engine.ops_failed");
  reg.RegisterProbe("lite.engine.in_flight", [this] {
    const int64_t v = engine_inflight_.load(std::memory_order_relaxed);
    return v > 0 ? static_cast<uint64_t>(v) : 0;
  });
  engine_pieces_overlapped_ = reg.GetCounter("lite.engine.pieces_overlapped");
  engine_retries_ = reg.GetCounter("lite.engine.retries");
  // Fault & recovery instruments (docs/TELEMETRY.md).
  oneside_retries_ = reg.GetCounter("lite.oneside.retries");
  unsignaled_recovered_ = reg.GetCounter("lite.oneside.unsignaled_recovered");
  // Async fast-path instruments (docs/TELEMETRY.md, "Async fast path").
  async_ops_issued_ = reg.GetCounter("lite.async.ops");
  async_inferred_ = reg.GetCounter("lite.async.inferred_completions");
  async_flush_fences_ = reg.GetCounter("lite.async.flush_fences");
  reg.RegisterProbe("lite.async.in_flight",
                    [this] { return static_cast<uint64_t>(AsyncInFlight()); });
}

uint64_t OpEngine::EffectiveTimeoutNs(uint64_t requested_ns) const {
  uint64_t t =
      requested_ns == kDefaultTimeout ? inst_->params().lite_rpc_timeout_ns : requested_ns;
  return std::min(t, kLongTimeoutCapNs);
}

// ------------------------------------------------------- one-sided engine

StatusOr<Completion> OpEngine::PostAndWait(NodeId dst, WorkRequest* wr, Priority pri,
                                           const TransportHandle* pinned) {
  Transport& tr = *inst_->transport_;
  const uint32_t max_retries = inst_->params().lite_rpc_max_retries;
  uint64_t backoff_ns = inst_->params().lite_rpc_retry_backoff_ns;
  Status last = Status::Timeout("one-sided completion timeout");
  for (uint32_t attempt = 0; attempt <= max_retries; ++attempt) {
    if (attempt > 0) {
      oneside_retries_->Inc();
      engine_retries_->Inc();
      lt::IdleFor(backoff_ns);
      AttrAdd(LatStage::kLatDetour, backoff_ns);
      if (journal_ != nullptr) {
        journal_->Record(lt::telemetry::JournalEvent::kOnesideRetry, dst, attempt);
      }
      backoff_ns *= 2;
      if (inst_->PeerDead(dst)) {
        inst_->rpc_dead_fast_fail_->Inc();
        return DeadPeerUnavailable();
      }
    }
    TransportHandle h = pinned != nullptr ? *pinned : tr.Lease(dst, pri);
    if (!tr.Valid(h)) {
      return Status::Unavailable("no QP to destination node");
    }
    // Migration gate, opened per attempt (a retry must re-check the phase:
    // the fence may have committed in between). The gate may park here —
    // real-time wait, zero virtual charge — until the fence resolves.
    LiteInstance* peer = inst_->Peer(dst);
    AccessGate gate;
    const bool gated = GatedDataOp(*wr) && peer != nullptr && peer->migration().armed();
    if (gated) {
      const bool is_write = wr->opcode != WrOpcode::kRead;
      const uint64_t gate_len =
          (wr->opcode == WrOpcode::kFetchAdd || wr->opcode == WrOpcode::kCmpSwap) ? 8
                                                                                  : wr->length;
      Status g = GateAccess(inst_, peer, wr->remote_addr, gate_len, is_write, &gate);
      if (g.code() == lt::StatusCode::kStaleHome) {
        return g;  // Non-transient: the caller must re-resolve the home.
      }
      if (!g.ok()) {
        last = g;  // Fence busy: transient, retry with backoff.
        continue;
      }
    }
    Qp* qp = tr.Qp(h);
    wr->wr_id = NextWrId();
    Status posted = Status::Ok();
    const uint64_t post_t0 = NowNs();
    {
      // The QP lock covers only the post; waiting happens outside so threads
      // sharing a pool QP overlap their in-flight ops (the whole point of
      // the shared pool, Sec. 6.1). Prepare recovers an errored QP and, under
      // DC, re-attaches a stolen slot to this handle's destination.
      std::lock_guard<std::mutex> lock(tr.Mu(h));
      tr.Prepare(h);
      posted = inst_->rnic().PostSend(qp, *wr);
    }
    AttrAdd(LatStage::kLatPost, NowNs() - post_t0);
    // Data movement is synchronous inside PostSend (the simulated DMA), so
    // the gate closes right after the post: an Ok post means the bytes are
    // at the destination (or dirty-logged harmlessly if the fabric dropped
    // the request — the error surfaces via the CQE below).
    if (gated) {
      peer->migration().CloseAccess(&gate, posted.ok());
    }
    if (!posted.ok()) {
      last = posted;
      if (posted.code() == lt::StatusCode::kFailedPrecondition) {
        continue;  // Lost a race to a concurrent error; recover and retry.
      }
      return posted;
    }
    const uint64_t wait_t0 = NowNs();
    auto c = qp->send_cq()->WaitPollFor(wr->wr_id, inst_->params().lite_rpc_timeout_ns,
                                        WaitMode::kBusyPoll);
    const uint64_t wait_dt = NowNs() - wait_t0;
    if (!c.has_value()) {
      AttrAdd(LatStage::kLatDetour, wait_dt);
      last = Status::Timeout("one-sided completion timeout");
      continue;
    }
    if (c->status.ok()) {
      AttrAddSplit(wait_dt, c->lat);
      return *c;
    }
    AttrAdd(LatStage::kLatDetour, wait_dt);
    last = c->status;
    const lt::StatusCode code = last.code();
    if (code != lt::StatusCode::kUnavailable && code != lt::StatusCode::kTimeout) {
      return last;  // Non-transient (permission, bounds): do not retry.
    }
  }
  return last;
}

Status OpEngine::OneSidedWrite(NodeId dst, PhysAddr dst_addr, const void* src, uint64_t len,
                               Priority pri, bool signaled) {
  BeginEngineOp();
  Status s = OneSidedWriteImpl(dst, dst_addr, src, len, pri, signaled);
  FinishEngineOp(s.ok());
  return s;
}

Status OpEngine::OneSidedWriteImpl(NodeId dst, PhysAddr dst_addr, const void* src, uint64_t len,
                                   Priority pri, bool signaled) {
  const uint64_t qos_t0 = NowNs();
  inst_->qos_.Admit(pri, len);
  AttrAdd(LatStage::kLatQosWait, NowNs() - qos_t0);
  if (dst == inst_->node_id()) {
    AccessGate gate;
    LT_RETURN_IF_ERROR(GateAccess(inst_, inst_, dst_addr, len, /*is_write=*/true, &gate));
    const uint64_t copy_t0 = NowNs();
    inst_->LocalCopyIn(dst_addr, src, len);
    AttrAdd(LatStage::kLatPost, NowNs() - copy_t0);
    inst_->migration().CloseAccess(&gate, /*success=*/true);
    return Status::Ok();
  }
  WorkRequest wr;
  wr.opcode = WrOpcode::kWrite;
  wr.host_local = const_cast<void*>(src);
  wr.length = len;
  wr.rkey = inst_->peer_global_rkey_[dst];
  wr.remote_addr = dst_addr;
  wr.signaled = signaled;
  if (!signaled) {
    // Fire-and-forget (head-mirror publishes): errors surface on the next
    // signaled user of the QP; recover here so one drop cannot wedge it.
    Transport& tr = *inst_->transport_;
    TransportHandle h = tr.Lease(dst, pri);
    if (!tr.Valid(h)) {
      return Status::Unavailable("no QP to destination node");
    }
    Qp* qp = tr.Qp(h);
    wr.wr_id = 0;
    const uint64_t post_t0 = NowNs();
    std::lock_guard<std::mutex> lock(tr.Mu(h));
    if (tr.Prepare(h)) {
      // The recovery happened on behalf of a publish nobody waits on; count
      // and journal it so the flight recorder shows the silent path too.
      unsignaled_recovered_->Inc();
      if (journal_ != nullptr) {
        journal_->Record(lt::telemetry::JournalEvent::kUnsignaledRecover, dst, qp->qpn());
      }
    }
    Status s = inst_->rnic().PostSend(qp, wr);
    AttrAdd(LatStage::kLatPost, NowNs() - post_t0);
    return s;
  }
  const uint64_t start = NowNs();
  auto c = PostAndWait(dst, &wr, pri);
  if (!c.ok()) {
    return c.status();
  }
  lt::telemetry::StampStage(lt::telemetry::TraceStage::kCompletion, c->ready_at_ns);
  if (pri == Priority::kHigh) {
    inst_->qos_.RecordHighPriRtt(NowNs() - start);
  }
  return Status::Ok();
}

Status OpEngine::OneSidedWriteImm(NodeId dst, PhysAddr dst_addr, const void* src, uint64_t len,
                                  uint32_t imm, Priority pri) {
  BeginEngineOp();
  Status s = OneSidedWriteImmImpl(dst, dst_addr, src, len, imm, pri);
  FinishEngineOp(s.ok());
  return s;
}

Status OpEngine::OneSidedWriteImmImpl(NodeId dst, PhysAddr dst_addr, const void* src,
                                      uint64_t len, uint32_t imm, Priority pri) {
  const uint64_t qos_t0 = NowNs();
  inst_->qos_.Admit(pri, len);
  AttrAdd(LatStage::kLatQosWait, NowNs() - qos_t0);
  if (dst == inst_->node_id()) {
    // Loopback: copy locally and deliver the IMM to our own receive CQ so the
    // poll thread handles it uniformly. No PostSend happens, so clear the
    // RNIC's last-post breakdown — RPC callers read it after this returns.
    lt::Rnic::ResetLastPostBreakdown();
    const uint64_t copy_t0 = NowNs();
    if (len > 0) {
      inst_->LocalCopyIn(dst_addr, src, len);
    }
    AttrAdd(LatStage::kLatPost, NowNs() - copy_t0);
    Completion c;
    c.opcode = WcOpcode::kRecvImm;
    c.has_imm = true;
    c.imm = imm;
    c.byte_len = static_cast<uint32_t>(len);
    c.src_node = inst_->node_id();
    c.ready_at_ns = NowNs() + inst_->params().rnic_completion_ns;
    inst_->recv_cq_->Push(std::move(c));
    return Status::Ok();
  }
  Transport& tr = *inst_->transport_;
  TransportHandle h = tr.Lease(dst, pri);
  if (!tr.Valid(h)) {
    return Status::Unavailable("no QP to destination node");
  }
  Qp* qp = tr.Qp(h);
  WorkRequest wr;
  wr.opcode = WrOpcode::kWriteImm;
  wr.host_local = const_cast<void*>(src);
  wr.length = len;
  wr.rkey = inst_->peer_global_rkey_[dst];
  wr.remote_addr = dst_addr;
  wr.imm = imm;
  wr.signaled = false;  // Failures detected by reply timeout (paper Sec. 5.1).
  const uint64_t post_t0 = NowNs();
  std::lock_guard<std::mutex> lock(tr.Mu(h));
  tr.Prepare(h);  // A prior drop may have errored this QP; reconnect before posting.
  Status s = inst_->rnic().PostSend(qp, wr);
  AttrAdd(LatStage::kLatPost, NowNs() - post_t0);
  return s;
}

Status OpEngine::OneSidedRead(NodeId src_node, PhysAddr src_addr, void* dst, uint64_t len,
                              Priority pri) {
  BeginEngineOp();
  Status s = OneSidedReadImpl(src_node, src_addr, dst, len, pri);
  FinishEngineOp(s.ok());
  return s;
}

Status OpEngine::OneSidedReadImpl(NodeId src_node, PhysAddr src_addr, void* dst, uint64_t len,
                                  Priority pri) {
  const uint64_t qos_t0 = NowNs();
  inst_->qos_.Admit(pri, len);
  AttrAdd(LatStage::kLatQosWait, NowNs() - qos_t0);
  if (src_node == inst_->node_id()) {
    AccessGate gate;
    LT_RETURN_IF_ERROR(GateAccess(inst_, inst_, src_addr, len, /*is_write=*/false, &gate));
    const uint64_t copy_t0 = NowNs();
    inst_->LocalCopyOut(dst, src_addr, len);
    AttrAdd(LatStage::kLatPost, NowNs() - copy_t0);
    inst_->migration().CloseAccess(&gate, /*success=*/true);
    return Status::Ok();
  }
  WorkRequest wr;
  wr.opcode = WrOpcode::kRead;
  wr.host_local = dst;
  wr.length = len;
  wr.rkey = inst_->peer_global_rkey_[src_node];
  wr.remote_addr = src_addr;
  wr.signaled = true;

  const uint64_t start = NowNs();
  auto c = PostAndWait(src_node, &wr, pri);
  if (!c.ok()) {
    return c.status();
  }
  lt::telemetry::StampStage(lt::telemetry::TraceStage::kCompletion, c->ready_at_ns);
  if (pri == Priority::kHigh) {
    inst_->qos_.RecordHighPriRtt(NowNs() - start);
  }
  return Status::Ok();
}

StatusOr<uint64_t> OpEngine::RemoteAtomic(NodeId dst, PhysAddr addr, bool is_cas,
                                          uint64_t compare_add, uint64_t swap) {
  if (addr % 8 != 0) {
    return Status::InvalidArgument("atomic target not 8-byte aligned");
  }
  BeginEngineOp();
  StatusOr<uint64_t> r = RemoteAtomicImpl(dst, addr, is_cas, compare_add, swap);
  FinishEngineOp(r.ok());
  return r;
}

StatusOr<uint64_t> OpEngine::RemoteAtomicImpl(NodeId dst, PhysAddr addr, bool is_cas,
                                              uint64_t compare_add, uint64_t swap) {
  const uint64_t qos_t0 = NowNs();
  inst_->qos_.Admit(Priority::kHigh, 8);
  AttrAdd(LatStage::kLatQosWait, NowNs() - qos_t0);
  if (dst == inst_->node_id()) {
    AccessGate gate;
    LT_RETURN_IF_ERROR(GateAccess(inst_, inst_, addr, 8, /*is_write=*/true, &gate));
    const uint64_t spin_t0 = NowNs();
    SpinFor(inst_->params().local_op_base_ns + inst_->params().rnic_atomic_extra_ns / 2);
    AttrAdd(LatStage::kLatRnicLocal, NowNs() - spin_t0);
    uint8_t* p = inst_->node_->mem().Data(addr, 8);
    // Serialize against remote atomics through the same responder path.
    uint64_t old_value;
    if (is_cas) {
      uint64_t expected = compare_add;
      __atomic_compare_exchange_n(reinterpret_cast<uint64_t*>(p), &expected, swap, false,
                                  __ATOMIC_SEQ_CST, __ATOMIC_SEQ_CST);
      old_value = expected;
    } else {
      old_value = __atomic_fetch_add(reinterpret_cast<uint64_t*>(p), compare_add, __ATOMIC_SEQ_CST);
    }
    inst_->migration().CloseAccess(&gate, /*success=*/true);
    return old_value;
  }
  uint64_t old_value = 0;
  WorkRequest wr;
  wr.opcode = is_cas ? WrOpcode::kCmpSwap : WrOpcode::kFetchAdd;
  wr.rkey = inst_->peer_global_rkey_[dst];
  wr.remote_addr = addr;
  wr.compare_add = compare_add;
  wr.swap = swap;
  wr.atomic_result = &old_value;
  wr.signaled = true;
  // Retry is exactly-once here: a dropped atomic is rejected by the
  // responder before the memory operation is applied (see ExecuteAtomic).
  auto c = PostAndWait(dst, &wr, Priority::kHigh);
  if (!c.ok()) {
    return c.status();
  }
  return old_value;
}

// ------------------------------------------- multi-piece blocking memops

Status OpEngine::SubmitPieces(const std::vector<OpDesc>& pieces, bool is_read, Priority pri) {
  BeginEngineOp();
  Status s = SubmitPiecesImpl(pieces, is_read, pri);
  FinishEngineOp(s.ok());
  return s;
}

Status OpEngine::SubmitPiecesImpl(const std::vector<OpDesc>& pieces, bool is_read, Priority pri) {
  const uint64_t start = NowNs();

  // Issue phase: post every remote piece signaled before waiting on any.
  // Consecutive posts to one destination share a QP (sticky selection) so
  // the RNIC batches their doorbells; small writes go inline.
  struct Posted {
    TransportHandle h;
    WorkRequest wr;
    bool posted = false;
  };
  Transport& tr = *inst_->transport_;
  Status result = Status::Ok();
  std::vector<Posted> remote;
  remote.reserve(pieces.size());
  for (const OpDesc& piece : pieces) {
    if (piece.node == inst_->node_id()) {
      // Local pieces complete inline (same fast path as the 1-piece op),
      // gated against our own migration guard.
      AccessGate gate;
      Status g = GateAccess(inst_, inst_, piece.addr, piece.len, !is_read, &gate);
      if (!g.ok()) {
        if (result.ok()) {
          result = g;
        }
        continue;
      }
      const uint64_t copy_t0 = NowNs();
      if (is_read) {
        inst_->LocalCopyOut(piece.local, piece.addr, piece.len);
      } else {
        inst_->LocalCopyIn(piece.addr, piece.local, piece.len);
      }
      AttrAdd(LatStage::kLatPost, NowNs() - copy_t0);
      inst_->migration().CloseAccess(&gate, /*success=*/true);
      continue;
    }
    const uint64_t qos_t0 = NowNs();
    inst_->qos_.Admit(pri, piece.len);
    AttrAdd(LatStage::kLatQosWait, NowNs() - qos_t0);
    Posted p;
    p.h = tr.LeaseSticky(piece.node, pri);
    WorkRequest& wr = p.wr;
    wr.opcode = is_read ? WrOpcode::kRead : WrOpcode::kWrite;
    wr.host_local = piece.local;
    wr.length = piece.len;
    wr.rkey = inst_->peer_global_rkey_[piece.node];
    wr.remote_addr = piece.addr;
    wr.signaled = true;
    wr.doorbell_hint = true;
    wr.inline_data = !is_read;  // The RNIC applies its rnic_inline_max cut.
    wr.wr_id = NextWrId();
    if (tr.Valid(p.h)) {
      LiteInstance* peer = inst_->Peer(p.h.dst);
      AccessGate gate;
      Status g = GateAccess(inst_, peer, wr.remote_addr, wr.length, !is_read, &gate);
      if (g.ok()) {
        Qp* qp = tr.Qp(p.h);
        const uint64_t post_t0 = NowNs();
        {
          std::lock_guard<std::mutex> qlock(tr.Mu(p.h));
          tr.Prepare(p.h);
          p.posted = inst_->rnic().PostSend(qp, wr).ok();
        }
        AttrAdd(LatStage::kLatPost, NowNs() - post_t0);
        peer->migration().CloseAccess(&gate, p.posted);
      }
      // Gate NACK: left unposted; the wait phase re-gates via PostAndWait,
      // which either parks through the fence or surfaces kStaleHome.
    }
    // A failed (or impossible) post leaves p.posted false; the wait phase
    // re-posts it through the retry loop.
    remote.push_back(p);
  }
  if (remote.size() > 1) {
    engine_pieces_overlapped_->Inc(remote.size());
  }

  // Wait phase: harvest every piece, re-posting transient failures with the
  // blocking retry loop. All pieces drain even after an error, so no WQE is
  // left dangling against the caller's buffer.
  uint64_t ready = 0;
  for (Posted& p : remote) {
    std::optional<Completion> c;
    if (p.posted) {
      const uint64_t wait_t0 = NowNs();
      c = tr.Qp(p.h)->send_cq()->WaitPollFor(p.wr.wr_id, inst_->params().lite_rpc_timeout_ns,
                                             WaitMode::kBusyPoll);
      const uint64_t wait_dt = NowNs() - wait_t0;
      if (c.has_value() && c->status.ok()) {
        AttrAddSplit(wait_dt, c->lat);
      } else {
        AttrAdd(LatStage::kLatDetour, wait_dt);
      }
    }
    Status s = Status::Ok();
    if (c.has_value() && c->status.ok()) {
      ready = std::max(ready, c->ready_at_ns);
    } else if (c.has_value() && !TransientCode(c->status)) {
      s = c->status;  // Non-transient (permission, bounds): do not retry.
    } else if (inst_->PeerDead(p.h.dst)) {
      inst_->rpc_dead_fast_fail_->Inc();
      s = DeadPeerUnavailable();
    } else {
      if (p.posted) {
        // The piece reached the wire and failed (or timed out): true retry.
        oneside_retries_->Inc();
        engine_retries_->Inc();
        if (journal_ != nullptr) {
          journal_->Record(lt::telemetry::JournalEvent::kOnesideRetry, p.h.dst, 0);
        }
      }
      WorkRequest wr = p.wr;
      wr.signaled = true;
      wr.doorbell_hint = false;
      auto rc = PostAndWait(p.h.dst, &wr, pri);
      if (rc.ok()) {
        ready = std::max(ready, rc->ready_at_ns);
      } else {
        s = rc.status();
      }
    }
    if (!s.ok() && result.ok()) {
      result = s;
    }
  }
  if (!remote.empty() && result.ok()) {
    lt::telemetry::StampStage(lt::telemetry::TraceStage::kCompletion,
                              ready > 0 ? ready : NowNs());
    if (pri == Priority::kHigh) {
      inst_->qos_.RecordHighPriRtt(NowNs() - start);
    }
  }
  return result;
}

// ----------------------------------------------------------- async issue

StatusOr<MemopHandle> OpEngine::IssueAsyncPieces(const std::vector<OpDesc>& pieces, bool is_read,
                                                 Priority pri, Lh origin_lh, uint64_t origin_off,
                                                 void* origin_buf, uint64_t origin_len,
                                                 MemopHandle reserved_handle) {
  BeginEngineOp();
  async_ops_issued_->Inc();

  auto op = std::make_unique<AsyncOp>();
  op->pri = pri;
  op->origin_lh = origin_lh;
  op->origin_off = origin_off;
  op->origin_buf = origin_buf;
  op->origin_len = origin_len;
  op->origin_is_read = is_read;
  const uint32_t signal_every = std::max<uint32_t>(1, inst_->params().lite_async_signal_every);

  std::unique_lock<std::mutex> lock(async_mu_);
  const size_t window = std::max<size_t>(1, inst_->params().lite_async_window);
  const uint64_t bp_t0 = NowNs();
  while (async_inflight_ >= window) {
    RetireOldestLocked(lock);
  }
  AttrAdd(LatStage::kLatEngineQueue, NowNs() - bp_t0);

  for (const OpDesc& piece : pieces) {
    uint8_t* user = static_cast<uint8_t*>(piece.local);
    if (piece.node == inst_->node_id()) {
      // Local pieces complete at issue time (same fast path as blocking),
      // gated against our own migration guard. A NACK is recorded as the
      // op's issue error; retirement folds it in (and the stale-home redo
      // then re-issues the whole memop against the new home).
      AsyncWqe wqe;
      wqe.done = true;
      AccessGate gate;
      Status g = GateAccess(inst_, inst_, piece.addr, piece.len, !is_read, &gate);
      if (!g.ok()) {
        if (op->issue_error.ok()) {
          op->issue_error = g;
        }
      } else {
        const uint64_t copy_t0 = NowNs();
        if (is_read) {
          inst_->LocalCopyOut(user, piece.addr, piece.len);
        } else {
          inst_->LocalCopyIn(piece.addr, user, piece.len);
        }
        AttrAdd(LatStage::kLatPost, NowNs() - copy_t0);
        inst_->migration().CloseAccess(&gate, /*success=*/true);
      }
      wqe.ready_at_ns = NowNs();
      op->wqes.push_back(wqe);
      continue;
    }
    const uint64_t qos_t0 = NowNs();
    inst_->qos_.Admit(pri, piece.len);
    AttrAdd(LatStage::kLatQosWait, NowNs() - qos_t0);
    Transport& tr = *inst_->transport_;
    AsyncWqe wqe;
    wqe.h = tr.LeaseSticky(piece.node, pri);
    WorkRequest& wr = wqe.wr;
    wr.opcode = is_read ? WrOpcode::kRead : WrOpcode::kWrite;
    wr.host_local = user;
    wr.length = piece.len;
    wr.rkey = inst_->peer_global_rkey_[piece.node];
    wr.remote_addr = piece.addr;
    wr.doorbell_hint = true;
    wr.inline_data = !is_read;  // The RNIC applies its rnic_inline_max cut.
    wr.wr_id = NextWrId();
    if (tr.Valid(wqe.h)) {
      AsyncStream& stream = async_streams_[{wqe.h.dst, wqe.h.slot}];
      wqe.stream_pos = stream.next_pos++;
      wqe.signaled = ((wqe.stream_pos + 1) % signal_every == 0);
      wr.signaled = wqe.signaled;
      LiteInstance* peer = inst_->Peer(piece.node);
      AccessGate gate;
      Status g = GateAccess(inst_, peer, wr.remote_addr, wr.length, !is_read, &gate);
      if (g.ok()) {
        Qp* qp = tr.Qp(wqe.h);
        const uint64_t post_t0 = NowNs();
        {
          std::lock_guard<std::mutex> qlock(tr.Mu(wqe.h));
          tr.Prepare(wqe.h);
          wqe.posted = inst_->rnic().PostSend(qp, wr).ok();
        }
        AttrAdd(LatStage::kLatPost, NowNs() - post_t0);
        peer->migration().CloseAccess(&gate, wqe.posted);
      }
      // Gate NACK: left unposted; retirement re-posts through PostAndWait,
      // which re-gates (parking through the fence or surfacing kStaleHome).
      if (wqe.posted && wqe.signaled) {
        stream.signaled_pending[wqe.stream_pos] = wr.wr_id;
      }
    }
    // A failed (or impossible) post leaves wqe.posted false; retirement
    // re-posts it signaled through the retry loop.
    op->wqes.push_back(wqe);
  }

  const MemopHandle h = reserved_handle != 0 ? reserved_handle : next_memop_handle_.fetch_add(1);
  op->id = h;
  // An issue-time error (gate NACK on a local piece) keeps the op in flight
  // so retirement folds the error in and can run the stale-home redo.
  bool all_done = op->issue_error.ok();
  uint64_t ready = NowNs();
  for (const AsyncWqe& wqe : op->wqes) {
    all_done = all_done && wqe.done;
    ready = std::max(ready, wqe.ready_at_ns);
  }
  if (all_done) {
    // Purely local op, complete at issue: the caller's ScopedOpAttr commits
    // normally at API return; only the engine-op accounting closes here.
    op->state = AsyncOpState::kDone;
    op->ready_at_ns = ready;
    FinishEngineOp(true);
  } else {
    ++async_inflight_;
    // Detach the caller's attribution record into the op; retirement commits
    // it with the op's true completion time as the e2e.
    lt::telemetry::AttrDetach(&op->attr);
  }
  async_ops_.emplace(h, std::move(op));
  return h;
}

StatusOr<MemopHandle> OpEngine::InsertAsyncRpc(uint32_t rpc_slot, void* out, uint32_t out_max,
                                               uint32_t* out_len, Priority pri) {
  // The ring post already went through OneSidedWriteImm; the handle itself
  // is an engine op too, so the conservation invariant sees it retire.
  BeginEngineOp();
  async_ops_issued_->Inc();
  auto op = std::make_unique<AsyncOp>();
  op->is_rpc = true;
  op->pri = pri;
  op->rpc_slot = rpc_slot;
  op->rpc_out = out;
  op->rpc_out_max = out_max;
  op->rpc_out_len = out_len;

  std::unique_lock<std::mutex> lock(async_mu_);
  const size_t window = std::max<size_t>(1, inst_->params().lite_async_window);
  const uint64_t bp_t0 = NowNs();
  while (async_inflight_ >= window) {
    RetireOldestLocked(lock);
  }
  AttrAdd(LatStage::kLatEngineQueue, NowNs() - bp_t0);
  const MemopHandle h = next_memop_handle_.fetch_add(1);
  op->id = h;
  ++async_inflight_;
  lt::telemetry::AttrDetach(&op->attr);
  async_ops_.emplace(h, std::move(op));
  return h;
}

void OpEngine::InsertFailedHandle(MemopHandle h, const Status& result) {
  // The handle was reserved and returned to the caller before its deferred
  // op could register (the lh died between enqueue and drain); park a done
  // op under it so Poll/Wait surface the failure instead of InvalidArgument.
  BeginEngineOp();
  async_ops_issued_->Inc();
  auto op = std::make_unique<AsyncOp>();
  op->id = h;
  op->state = AsyncOpState::kDone;
  op->result = result;
  op->ready_at_ns = NowNs();
  lt::telemetry::AttrDetach(&op->attr);
  CommitAsyncAttr(op.get());
  FinishEngineOp(false);
  std::lock_guard<std::mutex> lock(async_mu_);
  async_ops_.emplace(h, std::move(op));
  async_cv_.notify_all();
}

bool OpEngine::HandleReady(MemopHandle h) const {
  std::lock_guard<std::mutex> lock(async_mu_);
  auto it = async_ops_.find(h);
  if (it == async_ops_.end()) {
    return true;  // Unknown/consumed: Wait returns without blocking.
  }
  return it->second->state == AsyncOpState::kDone && it->second->ready_at_ns <= NowNs();
}

bool OpEngine::AllHandlesReady() const {
  std::lock_guard<std::mutex> lock(async_mu_);
  for (const auto& entry : async_ops_) {
    if (entry.second->state != AsyncOpState::kDone || entry.second->ready_at_ns > NowNs()) {
      return false;
    }
  }
  return true;
}

// ------------------------------------------------------------- retirement

std::optional<Completion> OpEngine::TakeAsyncCompletionLocked(lt::Cq* cq, uint64_t wr_id) {
  auto it = async_harvested_.find(wr_id);
  if (it != async_harvested_.end()) {
    Completion c = it->second;
    async_harvested_.erase(it);
    return c;
  }
  return cq->TryTake(wr_id);
}

Status OpEngine::RetryAsyncWqe(AsyncOp* op, AsyncWqe* wqe) {
  if (inst_->PeerDead(wqe->h.dst)) {
    inst_->rpc_dead_fast_fail_->Inc();
    return DeadPeerUnavailable();
  }
  if (wqe->posted) {
    // The original WQE reached the wire and failed; this is a true retry.
    oneside_retries_->Inc();
    engine_retries_->Inc();
    if (journal_ != nullptr) {
      journal_->Record(lt::telemetry::JournalEvent::kOnesideRetry, wqe->h.dst, 0);
    }
  }
  WorkRequest wr = wqe->wr;
  wr.signaled = true;
  wr.doorbell_hint = false;
  auto c = PostAndWait(wqe->h.dst, &wr, op->pri);
  if (!c.ok()) {
    return c.status();
  }
  wqe->done = true;
  wqe->ready_at_ns = c->ready_at_ns;
  return Status::Ok();
}

void OpEngine::CommitAsyncAttr(AsyncOp* op) {
  if (!op->attr.active) {
    return;
  }
  const uint64_t e2e =
      op->ready_at_ns > op->attr.start_ns ? op->ready_at_ns - op->attr.start_ns : 0;
  inst_->node_->telemetry().latency().Commit(op->attr, e2e);
  op->attr.active = false;
}

void OpEngine::RetireMemopLocked(std::unique_lock<std::mutex>& lock, AsyncOp* op) {
  // Stamps made while retiring (retries, fences, the stale redo) belong to
  // the op being retired, not to whatever op the retiring thread carries.
  lt::telemetry::AttrAdoptScope adopt(&op->attr);
  lt::telemetry::WqeLatBreakdown tail_lat;
  uint64_t tail_ready = 0;
  Status result = op->issue_error;
  uint64_t op_ready = 0;
  for (AsyncWqe& wqe : op->wqes) {
    Status s = Status::Ok();
    if (!wqe.done) {
      if (!wqe.posted) {
        s = RetryAsyncWqe(op, &wqe);
      } else {
        lt::Cq* cq = inst_->transport_->Qp(wqe.h)->send_cq();
        AsyncStream& stream = async_streams_[{wqe.h.dst, wqe.h.slot}];
        auto c = TakeAsyncCompletionLocked(cq, wqe.wr.wr_id);
        if (wqe.signaled) {
          stream.signaled_pending.erase(wqe.stream_pos);
          if (!c.has_value()) {
            s = Status::Internal("signaled async CQE missing");
          } else {
            if (wqe.stream_pos + 1 > stream.covered_pos) {
              stream.covered_pos = wqe.stream_pos + 1;
              stream.covered_ready_ns = std::max(stream.covered_ready_ns, c->ready_at_ns);
            }
            if (c->status.ok()) {
              wqe.done = true;
              wqe.ready_at_ns = c->ready_at_ns;
              if (c->ready_at_ns >= tail_ready) {
                tail_ready = c->ready_at_ns;
                tail_lat = c->lat;
              }
            } else if (TransientCode(c->status)) {
              s = RetryAsyncWqe(op, &wqe);
            } else {
              s = c->status;
            }
          }
        } else if (c.has_value()) {
          // Unsignaled WQEs only ever leave an error CQE behind.
          s = TransientCode(c->status) ? RetryAsyncWqe(op, &wqe) : c->status;
        } else {
          // No error CQE: the WQE succeeded. Find (or create) the signaled
          // fence that makes its completion observable, and take its time.
          if (stream.covered_pos > wqe.stream_pos) {
            wqe.done = true;
            wqe.ready_at_ns = stream.covered_ready_ns;
            async_inferred_->Inc();
          } else {
            auto cover = stream.signaled_pending.lower_bound(wqe.stream_pos);
            bool covered = false;
            if (cover != stream.signaled_pending.end()) {
              const uint64_t cover_pos = cover->first;
              const uint64_t cover_wr_id = cover->second;
              auto c2 = TakeAsyncCompletionLocked(cq, cover_wr_id);
              stream.signaled_pending.erase(cover);
              if (c2.has_value()) {
                // Park the cover CQE for its owner; its arrival (success or
                // error) fences everything before it on this stream either
                // way — our WQE's own outcome was already decided above.
                async_harvested_.emplace(cover_wr_id, *c2);
                if (cover_pos + 1 > stream.covered_pos) {
                  stream.covered_pos = cover_pos + 1;
                  stream.covered_ready_ns = std::max(stream.covered_ready_ns, c2->ready_at_ns);
                }
                wqe.done = true;
                wqe.ready_at_ns = c2->ready_at_ns;
                if (c2->ready_at_ns >= tail_ready) {
                  tail_ready = c2->ready_at_ns;
                  tail_lat = c2->lat;
                }
                async_inferred_->Inc();
                covered = true;
              }
            }
            if (!covered) {
              // No signaled WQE past ours: fence the stream with a
              // zero-length signaled write on the same QP.
              async_flush_fences_->Inc();
              WorkRequest fence;
              fence.opcode = WrOpcode::kWrite;
              fence.length = 0;
              fence.rkey = inst_->peer_global_rkey_[wqe.h.dst];
              fence.signaled = true;
              auto fc = PostAndWait(wqe.h.dst, &fence, op->pri, &wqe.h);
              if (fc.ok()) {
                stream.covered_pos = std::max(stream.covered_pos, stream.next_pos);
                stream.covered_ready_ns = std::max(stream.covered_ready_ns, fc->ready_at_ns);
                wqe.done = true;
                wqe.ready_at_ns = fc->ready_at_ns;
                async_inferred_->Inc();
              } else {
                // The data landed (no error CQE) but the fence could not
                // complete — report the fence's error; at-least-once holds.
                s = fc.status();
              }
            }
          }
        }
      }
    }
    if (!s.ok() && result.ok()) {
      result = s;
    }
    if (wqe.done) {
      op_ready = std::max(op_ready, wqe.ready_at_ns);
    }
  }
  if (result.code() == lt::StatusCode::kStaleHome && op->origin_lh != 0) {
    // The LMR migrated mid-flight. Re-resolve its home and transparently
    // re-issue the whole memop (blocking). Exactly-once for the caller:
    // writes are idempotent re-copies, atomics never carry an origin. The
    // op stays kRetiring across the unlock, so no other thread consumes it.
    lock.unlock();
    Status redo = inst_->RedoMemopAfterStale(op->origin_lh, op->origin_off, op->origin_buf,
                                             op->origin_len, op->origin_is_read, op->pri);
    lock.lock();
    result = redo;
    op_ready = std::max(op_ready, NowNs());
  }
  op->result = result;
  op->ready_at_ns = op_ready > 0 ? op_ready : NowNs();
  // Book the tail WQE's RNIC/fabric breakdown: harvesting a CQE advances no
  // clock, so without this the transport time would all land in "other".
  if (tail_ready > 0) {
    AttrAdd(LatStage::kLatRnicLocal, tail_lat.rnic_local_ns);
    AttrAdd(LatStage::kLatPortQueue, tail_lat.port_queue_ns);
    AttrAdd(LatStage::kLatWire, tail_lat.wire_ns);
    AttrAdd(LatStage::kLatRnicRemote, tail_lat.rnic_remote_ns);
    AttrAdd(LatStage::kLatComplPoll, tail_lat.compl_ns);
  }
  op->state = AsyncOpState::kDone;
  CommitAsyncAttr(op);
  FinishEngineOp(result.ok());
  --async_inflight_;
  async_cv_.notify_all();
}

void OpEngine::RetireRpcUnlocked(std::unique_lock<std::mutex>& lock, AsyncOp* op) {
  // Direct the reply-wait stamps (RpcWait runs on this thread) at the op's
  // own detached record rather than the retiring thread's current op.
  lt::telemetry::AttrAdoptScope adopt(&op->attr);
  lock.unlock();
  Status s = inst_->RpcWait(op->rpc_slot, op->rpc_out, op->rpc_out_max, op->rpc_out_len);
  lock.lock();
  op->result = s;
  op->ready_at_ns = NowNs();
  op->state = AsyncOpState::kDone;
  CommitAsyncAttr(op);
  FinishEngineOp(s.ok());
  --async_inflight_;
  async_cv_.notify_all();
}

void OpEngine::RetireOldestLocked(std::unique_lock<std::mutex>& lock) {
  for (auto& [id, op] : async_ops_) {
    if (op->state == AsyncOpState::kInFlight) {
      AsyncOp* o = op.get();
      o->state = AsyncOpState::kRetiring;
      if (o->is_rpc) {
        RetireRpcUnlocked(lock, o);
      } else {
        RetireMemopLocked(lock, o);
      }
      return;
    }
  }
  if (async_inflight_ > 0) {
    // Every outstanding op is being retired by another thread; wait for one.
    async_cv_.wait(lock);
  }
}

Status OpEngine::ConsumeAsyncLocked(std::map<MemopHandle, std::unique_ptr<AsyncOp>>::iterator it) {
  AsyncOp* op = it->second.get();
  if (op->ready_at_ns > NowNs()) {
    SyncToBusy(op->ready_at_ns);
  }
  Status result = op->result;
  async_ops_.erase(it);
  return result;
}

// ------------------------------------------------------- public retirement

StatusOr<bool> OpEngine::Poll(MemopHandle h) {
  SpinFor(inst_->params().rnic_completion_ns);  // CQ poll cost; poll loops progress.
  std::unique_lock<std::mutex> lock(async_mu_);
  auto it = async_ops_.find(h);
  if (it == async_ops_.end()) {
    return Status::InvalidArgument("unknown or already-retired async handle");
  }
  AsyncOp* op = it->second.get();
  if (op->state == AsyncOpState::kRetiring) {
    return false;
  }
  if (op->state == AsyncOpState::kInFlight) {
    if (op->is_rpc) {
      // Don't block: in flight until the poll thread delivers the reply.
      if (inst_->reply_slots_[op->rpc_slot]->state.load(std::memory_order_acquire) < 2) {
        return false;
      }
      op->state = AsyncOpState::kRetiring;
      RetireRpcUnlocked(lock, op);
      it = async_ops_.find(h);
      if (it == async_ops_.end()) {
        return Status::InvalidArgument("async handle consumed concurrently");
      }
      op = it->second.get();
    } else {
      op->state = AsyncOpState::kRetiring;
      RetireMemopLocked(lock, op);
      it = async_ops_.find(h);
      if (it == async_ops_.end()) {
        return Status::InvalidArgument("async handle consumed concurrently");
      }
      op = it->second.get();
    }
  }
  if (NowNs() < op->ready_at_ns) {
    return false;  // Retired, but the completion hasn't arrived on our clock.
  }
  Status result = ConsumeAsyncLocked(it);
  if (!result.ok()) {
    return result;
  }
  return true;
}

Status OpEngine::Wait(MemopHandle h) {
  std::unique_lock<std::mutex> lock(async_mu_);
  while (true) {
    auto it = async_ops_.find(h);
    if (it == async_ops_.end()) {
      return Status::InvalidArgument("unknown or already-retired async handle");
    }
    AsyncOp* op = it->second.get();
    switch (op->state) {
      case AsyncOpState::kDone:
        return ConsumeAsyncLocked(it);
      case AsyncOpState::kInFlight:
        op->state = AsyncOpState::kRetiring;
        if (op->is_rpc) {
          RetireRpcUnlocked(lock, op);
        } else {
          RetireMemopLocked(lock, op);
        }
        break;  // Re-find: the map may have shifted while unlocked.
      case AsyncOpState::kRetiring:
        async_cv_.wait(lock);
        break;
    }
  }
}

Status OpEngine::WaitAll() { return WaitAll(nullptr); }

Status OpEngine::WaitAll(std::vector<std::pair<MemopHandle, Status>>* results) {
  Status first_error = Status::Ok();
  std::unique_lock<std::mutex> lock(async_mu_);
  while (!async_ops_.empty()) {
    auto it = async_ops_.begin();
    AsyncOp* op = it->second.get();
    switch (op->state) {
      case AsyncOpState::kDone: {
        const MemopHandle h = it->first;
        Status s = ConsumeAsyncLocked(it);
        if (results != nullptr) {
          results->emplace_back(h, s);
        }
        if (!s.ok() && first_error.ok()) {
          first_error = s;
        }
        break;
      }
      case AsyncOpState::kInFlight:
        op->state = AsyncOpState::kRetiring;
        if (op->is_rpc) {
          RetireRpcUnlocked(lock, op);
        } else {
          RetireMemopLocked(lock, op);
        }
        break;
      case AsyncOpState::kRetiring:
        async_cv_.wait(lock);
        break;
    }
  }
  return first_error;
}

size_t OpEngine::AsyncInFlight() const {
  std::lock_guard<std::mutex> lock(async_mu_);
  return async_inflight_;
}

}  // namespace lite
