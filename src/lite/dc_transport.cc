#include "src/lite/dc_transport.h"

#include <algorithm>

#include "src/common/timing.h"
#include "src/telemetry/metrics.h"

namespace lite {

void DcTransport::Setup(const std::vector<bool>& connect, lt::Cq* recv_cq) {
  known_peers_ = connect.size();
  const int pool = std::max(1, node_->params().lite_dc_qp_pool);
  slots_ = std::vector<Slot>(static_cast<size_t>(pool));
  for (Slot& s : slots_) {
    lt::Cq* send_cq = node_->rnic().CreateCq();
    s.qp = node_->rnic().CreateQp(lt::QpType::kDcIni, send_cq, recv_cq);
    s.mu = std::make_unique<std::mutex>();
    s.owner.store(kInvalidNode, std::memory_order_relaxed);
  }
  // The one target QP every remote initiator attaches to: its single QP
  // context serves all senders, and its recv CQ is the instance's shared
  // receive CQ so WriteImm deliveries reach the poll loop unchanged.
  target_ = node_->rnic().CreateQp(lt::QpType::kDcTgt, node_->rnic().CreateCq(), recv_cq);
  affinity_ = std::vector<std::atomic<int32_t>>(known_peers_);
  for (auto& a : affinity_) {
    a.store(-1, std::memory_order_relaxed);
  }
}

TransportHandle DcTransport::Lease(NodeId dst, Priority pri) {
  if (dst >= known_peers_ || dst == node_->id() || slots_.empty()) {
    return TransportHandle{dst, -1};
  }
  const int k = static_cast<int>(slots_.size());
  auto [lo, hi] = qos_->QpRange(pri, k);
  if (hi <= lo) {
    lo = 0;
    hi = k;
  }
  // 1. Affinity hit: the slot that last served this destination.
  int32_t hint = affinity_[dst].load(std::memory_order_relaxed);
  if (hint >= lo && hint < hi &&
      slots_[hint].owner.load(std::memory_order_relaxed) == dst) {
    return TransportHandle{dst, hint};
  }
  // 2. Another slot in the band already attached to dst (affinity raced).
  for (int i = lo; i < hi; ++i) {
    if (slots_[i].owner.load(std::memory_order_relaxed) == dst) {
      affinity_[dst].store(i, std::memory_order_relaxed);
      return TransportHandle{dst, i};
    }
  }
  // 3. Claim a never-attached slot.
  for (int i = lo; i < hi; ++i) {
    NodeId expect = kInvalidNode;
    if (slots_[i].owner.compare_exchange_strong(expect, dst, std::memory_order_relaxed)) {
      affinity_[dst].store(i, std::memory_order_relaxed);
      return TransportHandle{dst, i};
    }
  }
  // 4. Pool exhausted: steal round-robin inside the band. The ownership
  // store here is a policy hint only — the actual re-target happens in
  // Prepare, under the slot mutex, against the QP's connection target.
  int victim = lo + static_cast<int>(steal_rr_.fetch_add(1, std::memory_order_relaxed) %
                                     static_cast<uint32_t>(hi - lo));
  steals_.fetch_add(1, std::memory_order_relaxed);
  if (steals_ctr_ != nullptr) {
    steals_ctr_->Inc();
  }
  slots_[victim].owner.store(dst, std::memory_order_relaxed);
  affinity_[dst].store(victim, std::memory_order_relaxed);
  return TransportHandle{dst, victim};
}

bool DcTransport::Prepare(const TransportHandle& h) {
  Slot& s = slots_[h.slot];
  bool recovered = false;
  if (s.qp->in_error()) {
    RecoverQp(s.qp);
    recovered = true;
  }
  if (s.qp->remote_node() != h.dst) {
    Attach(s, h.dst);
  }
  return recovered;
}

void DcTransport::Attach(Slot& slot, NodeId dst) {
  const auto& p = node_->params();
  if (slot.qp->connected()) {
    detaches_.fetch_add(1, std::memory_order_relaxed);
    if (detaches_ctr_ != nullptr) {
      detaches_ctr_->Inc();
    }
  }
  // The µs-scale DC attach: resolve the destination's target QPN and
  // re-target the initiator (real hardware: a new DC stream handshake).
  const uint32_t dct_qpn = dct_resolver_ ? dct_resolver_(dst) : 0;
  lt::SpinFor(p.lite_dc_connect_ns);
  slot.qp->Connect(dst, dct_qpn);
  slot.owner.store(dst, std::memory_order_relaxed);
  attaches_.fetch_add(1, std::memory_order_relaxed);
  if (attaches_ctr_ != nullptr) {
    attaches_ctr_->Inc();
  }
  if (connect_hist_ != nullptr) {
    connect_hist_->Record(p.lite_dc_connect_ns);
  }
}

void DcTransport::RegisterTelemetry(lt::telemetry::Registry& reg,
                                    lt::telemetry::Counter* reconnects,
                                    lt::telemetry::Journal* journal) {
  Transport::RegisterTelemetry(reg, reconnects, journal);
  attaches_ctr_ = reg.GetCounter("lite.transport.attaches");
  detaches_ctr_ = reg.GetCounter("lite.transport.detaches");
  steals_ctr_ = reg.GetCounter("lite.transport.steals");
  connect_hist_ = reg.GetHistogram("lite.transport.connect_ns");
}

}  // namespace lite
