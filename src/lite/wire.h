// Tiny POD serializer for LITE's internal control RPCs.
#ifndef SRC_LITE_WIRE_H_
#define SRC_LITE_WIRE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "src/common/status.h"
#include "src/lite/types.h"

namespace lite {

class WireWriter {
 public:
  template <typename T>
  void Put(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    size_t off = buf_.size();
    buf_.resize(off + sizeof(T));
    std::memcpy(buf_.data() + off, &v, sizeof(T));
  }

  void PutString(const std::string& s) {
    Put<uint32_t>(static_cast<uint32_t>(s.size()));
    size_t off = buf_.size();
    buf_.resize(off + s.size());
    std::memcpy(buf_.data() + off, s.data(), s.size());
  }

  void PutBytes(const void* data, size_t len) {
    Put<uint32_t>(static_cast<uint32_t>(len));
    size_t off = buf_.size();
    buf_.resize(off + len);
    std::memcpy(buf_.data() + off, data, len);
  }

  void PutChunks(const std::vector<LmrChunk>& chunks) {
    Put<uint32_t>(static_cast<uint32_t>(chunks.size()));
    for (const LmrChunk& c : chunks) {
      Put(c);
    }
  }

  const std::vector<uint8_t>& bytes() const { return buf_; }
  std::vector<uint8_t> Take() { return std::move(buf_); }

 private:
  std::vector<uint8_t> buf_;
};

class WireReader {
 public:
  WireReader(const void* data, size_t len)
      : data_(static_cast<const uint8_t*>(data)), len_(len) {}

  template <typename T>
  bool Get(T* out) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (pos_ + sizeof(T) > len_) {
      return false;
    }
    std::memcpy(out, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  bool GetString(std::string* out) {
    uint32_t n = 0;
    if (!Get(&n) || pos_ + n > len_) {
      return false;
    }
    out->assign(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return true;
  }

  bool GetBytes(std::vector<uint8_t>* out) {
    uint32_t n = 0;
    if (!Get(&n) || pos_ + n > len_) {
      return false;
    }
    out->assign(data_ + pos_, data_ + pos_ + n);
    pos_ += n;
    return true;
  }

  bool GetChunks(std::vector<LmrChunk>* out) {
    uint32_t n = 0;
    if (!Get(&n)) {
      return false;
    }
    out->clear();
    out->reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
      LmrChunk c;
      if (!Get(&c)) {
        return false;
      }
      out->push_back(c);
    }
    return true;
  }

  size_t remaining() const { return len_ - pos_; }

 private:
  const uint8_t* data_;
  size_t len_;
  size_t pos_ = 0;
};

}  // namespace lite

#endif  // SRC_LITE_WIRE_H_
