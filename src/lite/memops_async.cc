// Asynchronous memop facade: LT_read_async / LT_write_async / LT_RPC-async
// entry points. The prologue (tracing span, lh lookup, permission check)
// happens here; the posting, selective signaling, window backpressure, and
// retirement all live in the op engine (op_engine.cc), shared with the
// blocking multi-piece path.
#include <cstdint>

#include "src/common/logging.h"
#include "src/common/timing.h"
#include "src/lite/instance.h"
#include "src/lite/ring.h"

namespace lite {

using lt::SpinFor;

StatusOr<MemopHandle> LiteInstance::ReadAsync(Lh lh, uint64_t offset, void* buf, uint64_t len,
                                              Priority pri) {
  return IssueAsyncMemop(lh, offset, buf, len, pri, /*is_read=*/true);
}

StatusOr<MemopHandle> LiteInstance::WriteAsync(Lh lh, uint64_t offset, const void* buf,
                                               uint64_t len, Priority pri) {
  return IssueAsyncMemop(lh, offset, const_cast<void*>(buf), len, pri, /*is_read=*/false);
}

StatusOr<MemopHandle> LiteInstance::IssueAsyncMemop(Lh lh, uint64_t offset, void* buf,
                                                    uint64_t len, Priority pri, bool is_read) {
  lt::telemetry::ScopedSpan span(&node_->telemetry().tracer(),
                                 is_read ? "LT_read_async" : "LT_write_async");
  lt::telemetry::ScopedOpAttr attr(&node_->telemetry().latency(), is_read ? "aread" : "awrite",
                                   len, static_cast<int>(pri));
  const uint64_t submit_t0 = lt::NowNs();
  SpinFor(params().lite_map_check_ns);
  auto entry = GetLh(lh);
  if (!entry.ok()) {
    return entry.status();
  }
  LT_RETURN_IF_ERROR(CheckAccess(*entry, offset, len, is_read ? kPermRead : kPermWrite));
  lt::telemetry::AttrAdd(lt::telemetry::LatStage::kLatSubmit, lt::NowNs() - submit_t0);
  lt::telemetry::StampStage(lt::telemetry::TraceStage::kLhCheck, len);

  std::vector<OpEngine::OpDesc> descs;
  for (const ChunkPiece& piece : SliceChunks(entry->chunks, offset, len)) {
    descs.push_back(OpEngine::OpDesc{piece.node, piece.addr,
                                     static_cast<uint8_t*>(buf) + piece.user_off, piece.len});
  }
  // The origin tuple lets the engine transparently re-resolve and re-issue
  // the whole memop if it retires with kStaleHome (LMR migrated mid-flight).
  return engine_.IssueAsyncPieces(descs, is_read, pri, lh, offset, buf, len);
}

void LiteInstance::ExecuteDeferredAsync(RingDeferredOp& op, RingDrainCache* cache) {
  lt::telemetry::ScopedSpan span(&node_->telemetry().tracer(),
                                 op.is_read ? "LT_read_async" : "LT_write_async");
  {
    // Stamps during the drain land on the op's own detached record.
    lt::telemetry::AttrAdoptScope adopt(&op.attr);
    const uint64_t submit_t0 = lt::NowNs();
    // The authoritative map check is paid once per distinct lh per drain
    // batch — the whole batch entered the kernel together, so the lookup
    // amortizes like the crossing does.
    if (!cache->valid || cache->lh != op.lh) {
      SpinFor(params().lite_map_check_ns);
      auto entry = GetLh(op.lh);
      if (!entry.ok()) {
        // The lh died between enqueue and drain: fail the reserved handle.
        engine_.InsertFailedHandle(op.handle, entry.status());
        return;
      }
      cache->valid = true;
      cache->lh = op.lh;
      cache->entry = *entry;
    }
    Status perm = CheckAccess(cache->entry, op.offset, op.len,
                              op.is_read ? kPermRead : kPermWrite);
    if (!perm.ok()) {
      engine_.InsertFailedHandle(op.handle, perm);
      return;
    }
    lt::telemetry::AttrAdd(lt::telemetry::LatStage::kLatSubmit, lt::NowNs() - submit_t0);
    lt::telemetry::StampStage(lt::telemetry::TraceStage::kLhCheck, op.len);

    std::vector<OpEngine::OpDesc> descs;
    for (const ChunkPiece& piece : SliceChunks(cache->entry.chunks, op.offset, op.len)) {
      descs.push_back(OpEngine::OpDesc{piece.node, piece.addr,
                                       static_cast<uint8_t*>(op.buf) + piece.user_off,
                                       piece.len});
    }
    engine_.IssueAsyncPieces(descs, op.is_read, op.pri, op.lh, op.offset, op.buf, op.len,
                             op.handle);
  }
  // A purely-local op completed at issue, so the engine did not take the
  // record (and the submit-side scope already detached): commit it here.
  if (op.attr.active && !op.attr.detached) {
    node_->telemetry().latency().Commit(op.attr, lt::NowNs() - op.attr.start_ns);
    op.attr.active = false;
  }
}

StatusOr<MemopHandle> LiteInstance::RpcAsync(NodeId server_node, RpcFuncId func, const void* in,
                                             uint32_t in_len, void* out, uint32_t out_max,
                                             uint32_t* out_len, Priority pri) {
  lt::telemetry::ScopedOpAttr attr(&node_->telemetry().latency(), "arpc", in_len,
                                   static_cast<int>(pri));
  auto slot = RpcSend(server_node, func, in, in_len, out_max, pri);
  if (!slot.ok()) {
    return slot.status();
  }
  return engine_.InsertAsyncRpc(*slot, out, out_max, out_len, pri);
}

}  // namespace lite
