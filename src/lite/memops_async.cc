// Asynchronous memop fast path: LT_read_async / LT_write_async completion
// handles, the per-instance in-flight window, and selective signaling.
//
// Mechanism (paper Sec. 4.2's async APIs + the standard NIC-level tricks):
//   * Each async memop slices into chunk pieces like the blocking path, but
//     posts every remote piece immediately — unsignaled by default, with
//     every K-th WQE per (destination, QP) stream signaled — and returns a
//     handle. Posts carry the doorbell-batching hint and, for small writes,
//     go inline (rnic.h).
//   * Completion of an unsignaled WQE is inferred from a covering signaled
//     CQE later in the same stream (QP ordering); when no cover exists at
//     retirement, a zero-length signaled flush write fences the stream.
//   * A WQE that failed (dropped transfer -> error CQE, or a failed post) is
//     re-posted signaled with the blocking path's retry loop, so async ops
//     keep PR 2's fault semantics: drops retry transparently, dead peers
//     surface Status::Unavailable from LT_wait.
//   * The window (SimParams::lite_async_window) bounds outstanding ops per
//     instance; an issuer past the window retires the oldest op itself.
//
// Concurrency: one mutex (async_mu_) covers the op table, the per-stream
// signaling state, and the shared harvest map (a CQE taken on behalf of a
// different op's WQE parks there until its owner retires). In this simulator
// every CQE exists from post time — only its ready_at is in the future — so
// retirement never blocks on real time; waiters advance their own virtual
// clocks from the harvested ready times.
#include <algorithm>
#include <cstdint>
#include <thread>

#include "src/common/logging.h"
#include "src/common/timing.h"
#include "src/lite/instance.h"

namespace lite {

using lt::Completion;
using lt::NowNs;
using lt::Qp;
using lt::SpinFor;
using lt::SyncToBusy;
using lt::WorkRequest;
using lt::WrOpcode;

namespace {

bool TransientCode(const Status& s) {
  return s.code() == lt::StatusCode::kUnavailable || s.code() == lt::StatusCode::kTimeout;
}

}  // namespace

// ----------------------------------------------------------------- issue

int LiteInstance::PickQpIndexSticky(NodeId dst, Priority pri) {
  if (dst >= qp_pool_.size() || qp_pool_[dst].empty()) {
    return -1;
  }
  const int k = static_cast<int>(qp_pool_[dst].size());
  auto [lo, hi] = qos_.QpRange(pri, k);
  if (hi <= lo) {
    lo = 0;
    hi = k;
  }
  static thread_local const uint32_t t_tag = static_cast<uint32_t>(
      std::hash<std::thread::id>()(std::this_thread::get_id()));
  return lo + static_cast<int>(t_tag % static_cast<uint32_t>(hi - lo));
}

StatusOr<MemopHandle> LiteInstance::ReadAsync(Lh lh, uint64_t offset, void* buf, uint64_t len,
                                              Priority pri) {
  return IssueAsyncMemop(lh, offset, buf, len, pri, /*is_read=*/true);
}

StatusOr<MemopHandle> LiteInstance::WriteAsync(Lh lh, uint64_t offset, const void* buf,
                                               uint64_t len, Priority pri) {
  return IssueAsyncMemop(lh, offset, const_cast<void*>(buf), len, pri, /*is_read=*/false);
}

StatusOr<MemopHandle> LiteInstance::IssueAsyncMemop(Lh lh, uint64_t offset, void* buf,
                                                    uint64_t len, Priority pri, bool is_read) {
  lt::telemetry::ScopedSpan span(&node_->telemetry().tracer(),
                                 is_read ? "LT_read_async" : "LT_write_async");
  SpinFor(params().lite_map_check_ns);
  auto entry = GetLh(lh);
  if (!entry.ok()) {
    return entry.status();
  }
  LT_RETURN_IF_ERROR(CheckAccess(*entry, offset, len, is_read ? kPermRead : kPermWrite));
  lt::telemetry::StampStage(lt::telemetry::TraceStage::kLhCheck, len);
  async_ops_issued_->Inc();

  auto op = std::make_unique<AsyncOp>();
  op->pri = pri;
  const uint32_t signal_every = std::max<uint32_t>(1, params().lite_async_signal_every);

  std::unique_lock<std::mutex> lock(async_mu_);
  const size_t window = std::max<size_t>(1, params().lite_async_window);
  while (async_inflight_ >= window) {
    RetireOldestLocked(lock);
  }

  for (const ChunkPiece& piece : SliceChunks(entry->chunks, offset, len)) {
    uint8_t* user = static_cast<uint8_t*>(buf) + piece.user_off;
    if (piece.node == node_id()) {
      // Local pieces complete at issue time (same fast path as blocking).
      if (is_read) {
        LocalCopyOut(user, piece.addr, piece.len);
      } else {
        LocalCopyIn(piece.addr, user, piece.len);
      }
      AsyncWqe wqe;
      wqe.done = true;
      wqe.ready_at_ns = NowNs();
      op->wqes.push_back(wqe);
      continue;
    }
    qos_.Admit(pri, piece.len);
    AsyncWqe wqe;
    wqe.dst = piece.node;
    wqe.qp_idx = PickQpIndexSticky(piece.node, pri);
    WorkRequest& wr = wqe.wr;
    wr.opcode = is_read ? WrOpcode::kRead : WrOpcode::kWrite;
    wr.host_local = user;
    wr.length = piece.len;
    wr.rkey = peer_global_rkey_[piece.node];
    wr.remote_addr = piece.addr;
    wr.doorbell_hint = true;
    wr.inline_data = !is_read;  // The RNIC applies its rnic_inline_max cut.
    wr.wr_id = next_wr_id_.fetch_add(1);
    if (wqe.qp_idx >= 0) {
      AsyncStream& stream = async_streams_[{piece.node, wqe.qp_idx}];
      wqe.stream_pos = stream.next_pos++;
      wqe.signaled = ((wqe.stream_pos + 1) % signal_every == 0);
      wr.signaled = wqe.signaled;
      Qp* qp = qp_pool_[piece.node][wqe.qp_idx];
      {
        std::lock_guard<std::mutex> qlock(*qp_mu_[piece.node][wqe.qp_idx]);
        if (qp->in_error()) {
          RecoverQp(qp);
        }
        wqe.posted = rnic().PostSend(qp, wr).ok();
      }
      if (wqe.posted && wqe.signaled) {
        stream.signaled_pending[wqe.stream_pos] = wr.wr_id;
      }
    }
    // A failed (or impossible) post leaves wqe.posted false; retirement
    // re-posts it signaled through the retry loop.
    op->wqes.push_back(wqe);
  }

  const MemopHandle h = next_memop_handle_.fetch_add(1);
  op->id = h;
  bool all_done = true;
  uint64_t ready = NowNs();
  for (const AsyncWqe& wqe : op->wqes) {
    all_done = all_done && wqe.done;
    ready = std::max(ready, wqe.ready_at_ns);
  }
  if (all_done) {
    op->state = AsyncOpState::kDone;
    op->ready_at_ns = ready;
  } else {
    ++async_inflight_;
  }
  async_ops_.emplace(h, std::move(op));
  return h;
}

// ------------------------------------------------------------- retirement

std::optional<Completion> LiteInstance::TakeAsyncCompletionLocked(lt::Cq* cq, uint64_t wr_id) {
  auto it = async_harvested_.find(wr_id);
  if (it != async_harvested_.end()) {
    Completion c = it->second;
    async_harvested_.erase(it);
    return c;
  }
  return cq->TryTake(wr_id);
}

Status LiteInstance::RetryAsyncWqe(AsyncOp* op, AsyncWqe* wqe) {
  if (PeerDead(wqe->dst)) {
    rpc_dead_fast_fail_->Inc();
    return Status::Unavailable("peer marked dead by liveness service");
  }
  if (wqe->posted) {
    // The original WQE reached the wire and failed; this is a true retry.
    oneside_retries_->Inc();
    if (journal_ != nullptr) {
      journal_->Record(lt::telemetry::JournalEvent::kOnesideRetry, wqe->dst, 0);
    }
  }
  WorkRequest wr = wqe->wr;
  wr.signaled = true;
  wr.doorbell_hint = false;
  auto c = PostAndWait(wqe->dst, &wr, op->pri);
  if (!c.ok()) {
    return c.status();
  }
  wqe->done = true;
  wqe->ready_at_ns = c->ready_at_ns;
  return Status::Ok();
}

void LiteInstance::RetireMemopLocked(AsyncOp* op) {
  Status result = Status::Ok();
  uint64_t op_ready = 0;
  for (AsyncWqe& wqe : op->wqes) {
    Status s = Status::Ok();
    if (!wqe.done) {
      if (!wqe.posted) {
        s = RetryAsyncWqe(op, &wqe);
      } else {
        lt::Cq* cq = qp_pool_[wqe.dst][wqe.qp_idx]->send_cq();
        AsyncStream& stream = async_streams_[{wqe.dst, wqe.qp_idx}];
        auto c = TakeAsyncCompletionLocked(cq, wqe.wr.wr_id);
        if (wqe.signaled) {
          stream.signaled_pending.erase(wqe.stream_pos);
          if (!c.has_value()) {
            s = Status::Internal("signaled async CQE missing");
          } else {
            if (wqe.stream_pos + 1 > stream.covered_pos) {
              stream.covered_pos = wqe.stream_pos + 1;
              stream.covered_ready_ns = std::max(stream.covered_ready_ns, c->ready_at_ns);
            }
            if (c->status.ok()) {
              wqe.done = true;
              wqe.ready_at_ns = c->ready_at_ns;
            } else if (TransientCode(c->status)) {
              s = RetryAsyncWqe(op, &wqe);
            } else {
              s = c->status;
            }
          }
        } else if (c.has_value()) {
          // Unsignaled WQEs only ever leave an error CQE behind.
          s = TransientCode(c->status) ? RetryAsyncWqe(op, &wqe) : c->status;
        } else {
          // No error CQE: the WQE succeeded. Find (or create) the signaled
          // fence that makes its completion observable, and take its time.
          if (stream.covered_pos > wqe.stream_pos) {
            wqe.done = true;
            wqe.ready_at_ns = stream.covered_ready_ns;
            async_inferred_->Inc();
          } else {
            auto cover = stream.signaled_pending.lower_bound(wqe.stream_pos);
            bool covered = false;
            if (cover != stream.signaled_pending.end()) {
              const uint64_t cover_pos = cover->first;
              const uint64_t cover_wr_id = cover->second;
              auto c2 = TakeAsyncCompletionLocked(cq, cover_wr_id);
              stream.signaled_pending.erase(cover);
              if (c2.has_value()) {
                // Park the cover CQE for its owner; its arrival (success or
                // error) fences everything before it on this stream either
                // way — our WQE's own outcome was already decided above.
                async_harvested_.emplace(cover_wr_id, *c2);
                if (cover_pos + 1 > stream.covered_pos) {
                  stream.covered_pos = cover_pos + 1;
                  stream.covered_ready_ns = std::max(stream.covered_ready_ns, c2->ready_at_ns);
                }
                wqe.done = true;
                wqe.ready_at_ns = c2->ready_at_ns;
                async_inferred_->Inc();
                covered = true;
              }
            }
            if (!covered) {
              // No signaled WQE past ours: fence the stream with a
              // zero-length signaled write on the same QP.
              async_flush_fences_->Inc();
              WorkRequest fence;
              fence.opcode = WrOpcode::kWrite;
              fence.length = 0;
              fence.rkey = peer_global_rkey_[wqe.dst];
              fence.signaled = true;
              auto fc = PostAndWait(wqe.dst, &fence, op->pri, wqe.qp_idx);
              if (fc.ok()) {
                stream.covered_pos = std::max(stream.covered_pos, stream.next_pos);
                stream.covered_ready_ns = std::max(stream.covered_ready_ns, fc->ready_at_ns);
                wqe.done = true;
                wqe.ready_at_ns = fc->ready_at_ns;
                async_inferred_->Inc();
              } else {
                // The data landed (no error CQE) but the fence could not
                // complete — report the fence's error; at-least-once holds.
                s = fc.status();
              }
            }
          }
        }
      }
    }
    if (!s.ok() && result.ok()) {
      result = s;
    }
    if (wqe.done) {
      op_ready = std::max(op_ready, wqe.ready_at_ns);
    }
  }
  op->result = result;
  op->ready_at_ns = op_ready > 0 ? op_ready : NowNs();
  op->state = AsyncOpState::kDone;
  --async_inflight_;
  async_cv_.notify_all();
}

void LiteInstance::RetireRpcUnlocked(std::unique_lock<std::mutex>& lock, AsyncOp* op) {
  lock.unlock();
  Status s = RpcWait(op->rpc_slot, op->rpc_out, op->rpc_out_max, op->rpc_out_len);
  lock.lock();
  op->result = s;
  op->ready_at_ns = NowNs();
  op->state = AsyncOpState::kDone;
  --async_inflight_;
  async_cv_.notify_all();
}

void LiteInstance::RetireOldestLocked(std::unique_lock<std::mutex>& lock) {
  for (auto& [id, op] : async_ops_) {
    if (op->state == AsyncOpState::kInFlight) {
      AsyncOp* o = op.get();
      o->state = AsyncOpState::kRetiring;
      if (o->is_rpc) {
        RetireRpcUnlocked(lock, o);
      } else {
        RetireMemopLocked(o);
      }
      return;
    }
  }
  if (async_inflight_ > 0) {
    // Every outstanding op is being retired by another thread; wait for one.
    async_cv_.wait(lock);
  }
}

Status LiteInstance::ConsumeAsyncLocked(
    std::map<MemopHandle, std::unique_ptr<AsyncOp>>::iterator it) {
  AsyncOp* op = it->second.get();
  if (op->ready_at_ns > NowNs()) {
    SyncToBusy(op->ready_at_ns);
  }
  Status result = op->result;
  async_ops_.erase(it);
  return result;
}

// ------------------------------------------------------- public retirement

StatusOr<bool> LiteInstance::Poll(MemopHandle h) {
  SpinFor(params().rnic_completion_ns);  // CQ poll cost; poll loops progress.
  std::unique_lock<std::mutex> lock(async_mu_);
  auto it = async_ops_.find(h);
  if (it == async_ops_.end()) {
    return Status::InvalidArgument("unknown or already-retired async handle");
  }
  AsyncOp* op = it->second.get();
  if (op->state == AsyncOpState::kRetiring) {
    return false;
  }
  if (op->state == AsyncOpState::kInFlight) {
    if (op->is_rpc) {
      // Don't block: in flight until the poll thread delivers the reply.
      if (reply_slots_[op->rpc_slot]->state.load(std::memory_order_acquire) < 2) {
        return false;
      }
      op->state = AsyncOpState::kRetiring;
      RetireRpcUnlocked(lock, op);
      it = async_ops_.find(h);
      if (it == async_ops_.end()) {
        return Status::InvalidArgument("async handle consumed concurrently");
      }
      op = it->second.get();
    } else {
      op->state = AsyncOpState::kRetiring;
      RetireMemopLocked(op);
    }
  }
  if (NowNs() < op->ready_at_ns) {
    return false;  // Retired, but the completion hasn't arrived on our clock.
  }
  Status result = ConsumeAsyncLocked(it);
  if (!result.ok()) {
    return result;
  }
  return true;
}

Status LiteInstance::Wait(MemopHandle h) {
  std::unique_lock<std::mutex> lock(async_mu_);
  while (true) {
    auto it = async_ops_.find(h);
    if (it == async_ops_.end()) {
      return Status::InvalidArgument("unknown or already-retired async handle");
    }
    AsyncOp* op = it->second.get();
    switch (op->state) {
      case AsyncOpState::kDone:
        return ConsumeAsyncLocked(it);
      case AsyncOpState::kInFlight:
        op->state = AsyncOpState::kRetiring;
        if (op->is_rpc) {
          RetireRpcUnlocked(lock, op);
        } else {
          RetireMemopLocked(op);
        }
        break;  // Re-find: the map may have shifted while unlocked.
      case AsyncOpState::kRetiring:
        async_cv_.wait(lock);
        break;
    }
  }
}

Status LiteInstance::WaitAll() {
  Status first_error = Status::Ok();
  std::unique_lock<std::mutex> lock(async_mu_);
  while (!async_ops_.empty()) {
    auto it = async_ops_.begin();
    AsyncOp* op = it->second.get();
    switch (op->state) {
      case AsyncOpState::kDone: {
        Status s = ConsumeAsyncLocked(it);
        if (!s.ok() && first_error.ok()) {
          first_error = s;
        }
        break;
      }
      case AsyncOpState::kInFlight:
        op->state = AsyncOpState::kRetiring;
        if (op->is_rpc) {
          RetireRpcUnlocked(lock, op);
        } else {
          RetireMemopLocked(op);
        }
        break;
      case AsyncOpState::kRetiring:
        async_cv_.wait(lock);
        break;
    }
  }
  return first_error;
}

size_t LiteInstance::AsyncInFlight() const {
  std::lock_guard<std::mutex> lock(async_mu_);
  return async_inflight_;
}

// ----------------------------------------------------------- async RPC

StatusOr<MemopHandle> LiteInstance::RpcAsync(NodeId server_node, RpcFuncId func, const void* in,
                                             uint32_t in_len, void* out, uint32_t out_max,
                                             uint32_t* out_len, Priority pri) {
  auto slot = RpcSend(server_node, func, in, in_len, out_max, pri);
  if (!slot.ok()) {
    return slot.status();
  }
  async_ops_issued_->Inc();
  auto op = std::make_unique<AsyncOp>();
  op->is_rpc = true;
  op->pri = pri;
  op->rpc_slot = *slot;
  op->rpc_out = out;
  op->rpc_out_max = out_max;
  op->rpc_out_len = out_len;

  std::unique_lock<std::mutex> lock(async_mu_);
  const size_t window = std::max<size_t>(1, params().lite_async_window);
  while (async_inflight_ >= window) {
    RetireOldestLocked(lock);
  }
  const MemopHandle h = next_memop_handle_.fetch_add(1);
  op->id = h;
  ++async_inflight_;
  async_ops_.emplace(h, std::move(op));
  return h;
}

}  // namespace lite
