// Internal control functions served by each LITE instance's worker threads:
// the name service (on the manager node), remote chunk allocation, LMR
// map/unmap/free/move/permissions, remote memory commands, and the lock /
// barrier services. Every handler replies [u32 status code | payload].
#include <cstring>

#include "src/common/logging.h"
#include "src/common/timing.h"
#include "src/lite/instance.h"
#include "src/lite/wire.h"

namespace lite {
namespace {

void ReplyStatus(LiteInstance* self, const ReplyToken& token, lt::StatusCode code) {
  uint32_t wire_code = static_cast<uint32_t>(code);
  (void)self->ReplyRpc(token, &wire_code, sizeof(wire_code));
}

void ReplyOkPayload(LiteInstance* self, const ReplyToken& token, const WireWriter& payload) {
  const auto& bytes = payload.bytes();
  std::vector<uint8_t> out(sizeof(uint32_t) + bytes.size());
  uint32_t code = static_cast<uint32_t>(lt::StatusCode::kOk);
  std::memcpy(out.data(), &code, sizeof(code));
  std::memcpy(out.data() + sizeof(code), bytes.data(), bytes.size());
  (void)self->ReplyRpc(token, out.data(), static_cast<uint32_t>(out.size()));
}

// Gates one local phys range against the node's migration guard. kOk means
// proceed (close `gate` after the op lands); anything else is the NACK code
// to reply with.
lt::StatusCode GateLocalRange(LiteInstance* self, PhysAddr addr, uint64_t len, bool is_write,
                              NodeId requester, AccessGate* gate) {
  if (!self->migration().armed()) {
    return lt::StatusCode::kOk;
  }
  switch (self->migration().OpenAccess(addr, len, is_write, requester, 0, gate)) {
    case MigrationState::Gate::kStale:
      return lt::StatusCode::kStaleHome;
    case MigrationState::Gate::kBusy:
      return lt::StatusCode::kUnavailable;
    case MigrationState::Gate::kClear:
      break;
  }
  return lt::StatusCode::kOk;
}

}  // namespace

void LiteInstance::RegisterInternalHandlers() {
  // ------------------------------------------------ name service (manager)
  internal_handlers_[kFnRegisterName] = [](LiteInstance* self, const RpcIncoming& inc) {
    WireReader r(inc.data.data(), inc.data.size());
    std::string name;
    NodeId master = kInvalidNode;
    if (!r.GetString(&name) || !r.Get(&master)) {
      ReplyStatus(self, inc.token, lt::StatusCode::kInvalidArgument);
      return;
    }
    if (!self->lmrs_.RegisterName(name, master)) {
      ReplyStatus(self, inc.token, lt::StatusCode::kAlreadyExists);
      return;
    }
    ReplyStatus(self, inc.token, lt::StatusCode::kOk);
  };

  internal_handlers_[kFnLookupName] = [](LiteInstance* self, const RpcIncoming& inc) {
    WireReader r(inc.data.data(), inc.data.size());
    std::string name;
    if (!r.GetString(&name)) {
      ReplyStatus(self, inc.token, lt::StatusCode::kInvalidArgument);
      return;
    }
    auto master = self->lmrs_.LookupName(name);
    if (!master.ok()) {
      ReplyStatus(self, inc.token, lt::StatusCode::kNotFound);
      return;
    }
    WireWriter payload;
    payload.Put<NodeId>(*master);
    ReplyOkPayload(self, inc.token, payload);
  };

  internal_handlers_[kFnUnregisterName] = [](LiteInstance* self, const RpcIncoming& inc) {
    WireReader r(inc.data.data(), inc.data.size());
    std::string name;
    if (r.GetString(&name)) {
      self->lmrs_.UnregisterName(name);
    }
    ReplyStatus(self, inc.token, lt::StatusCode::kOk);
  };

  // ------------------------------------------------- remote chunk service
  internal_handlers_[kFnAllocChunks] = [](LiteInstance* self, const RpcIncoming& inc) {
    WireReader r(inc.data.data(), inc.data.size());
    uint64_t size = 0;
    if (!r.Get(&size)) {
      ReplyStatus(self, inc.token, lt::StatusCode::kInvalidArgument);
      return;
    }
    auto chunks = self->AllocLocalChunks(size);
    if (!chunks.ok()) {
      ReplyStatus(self, inc.token, chunks.status().code());
      return;
    }
    WireWriter payload;
    payload.PutChunks(*chunks);
    ReplyOkPayload(self, inc.token, payload);
  };

  internal_handlers_[kFnFreeChunks] = [](LiteInstance* self, const RpcIncoming& inc) {
    WireReader r(inc.data.data(), inc.data.size());
    std::vector<LmrChunk> chunks;
    if (!r.GetChunks(&chunks)) {
      ReplyStatus(self, inc.token, lt::StatusCode::kInvalidArgument);
      return;
    }
    self->FreeLocalChunks(chunks);
    ReplyStatus(self, inc.token, lt::StatusCode::kOk);
  };

  // ----------------------------------------------------- LMR map / unmap
  internal_handlers_[kFnMapLmr] = [](LiteInstance* self, const RpcIncoming& inc) {
    WireReader r(inc.data.data(), inc.data.size());
    std::string name;
    uint32_t want = 0;
    NodeId requester = kInvalidNode;
    if (!r.GetString(&name) || !r.Get(&want) || !r.Get(&requester)) {
      ReplyStatus(self, inc.token, lt::StatusCode::kInvalidArgument);
      return;
    }
    WireWriter payload;
    lt::StatusCode code = self->lmrs_.WithMeta(name, [&](LmrMeta& meta) {
      uint32_t granted = meta.default_perm;
      auto perm_it = meta.node_perm.find(requester);
      if (perm_it != meta.node_perm.end()) {
        granted = perm_it->second;
      }
      if ((granted & want) != want) {
        return lt::StatusCode::kPermissionDenied;
      }
      meta.mapped_nodes.insert(requester);
      payload.Put<uint32_t>(want);
      payload.Put<uint64_t>(meta.size);
      payload.Put<uint64_t>(meta.epoch);
      payload.PutChunks(meta.chunks);
      return lt::StatusCode::kOk;
    });
    if (code == lt::StatusCode::kNotFound && self->migration().LookupTombstone(name).ok()) {
      // The LMR migrated away; tell the client to re-resolve the home.
      code = lt::StatusCode::kStaleHome;
    }
    if (code != lt::StatusCode::kOk) {
      ReplyStatus(self, inc.token, code);
      return;
    }
    ReplyOkPayload(self, inc.token, payload);
  };

  internal_handlers_[kFnUnmapLmr] = [](LiteInstance* self, const RpcIncoming& inc) {
    WireReader r(inc.data.data(), inc.data.size());
    std::string name;
    NodeId requester = kInvalidNode;
    if (r.GetString(&name) && r.Get(&requester)) {
      (void)self->lmrs_.WithMeta(name, [&](LmrMeta& meta) {
        meta.mapped_nodes.erase(requester);
        return lt::StatusCode::kOk;
      });
    }
    ReplyStatus(self, inc.token, lt::StatusCode::kOk);  // No-reply in practice.
  };

  // -------------------------------------- LMR free / invalidate / update
  internal_handlers_[kFnMasterFree] = [](LiteInstance* self, const RpcIncoming& inc) {
    WireReader r(inc.data.data(), inc.data.size());
    std::string name;
    NodeId requester = kInvalidNode;
    if (!r.GetString(&name) || !r.Get(&requester)) {
      ReplyStatus(self, inc.token, lt::StatusCode::kInvalidArgument);
      return;
    }
    auto taken = self->lmrs_.TakeMetaIfMaster(name, requester);
    if (!taken.ok()) {
      ReplyStatus(self, inc.token, taken.status().code());
      return;
    }
    LmrMeta meta = std::move(*taken);
    // Invalidate every node that mapped the LMR (paper Sec. 4.1: "when the
    // master ... frees the LMR, LITE at these nodes will be notified").
    WireWriter inval;
    inval.PutString(name);
    for (NodeId mapped : meta.mapped_nodes) {
      if (mapped == self->node_id()) {
        self->lmrs_.EraseByName(name);
      } else {
        (void)self->RpcSendNoReply(mapped, kFnLmrInvalidate, inval.bytes().data(),
                                   static_cast<uint32_t>(inval.bytes().size()));
      }
    }
    // Free the storage.
    std::map<NodeId, std::vector<LmrChunk>> by_node;
    for (const LmrChunk& c : meta.chunks) {
      by_node[c.node].push_back(c);
    }
    for (const auto& [target, chunks] : by_node) {
      if (target == self->node_id()) {
        self->FreeLocalChunks(chunks);
      } else {
        WireWriter w;
        w.PutChunks(chunks);
        (void)self->InternalRpc(target, kFnFreeChunks, w.bytes(), nullptr);
      }
    }
    // Release the name.
    WireWriter unreg;
    unreg.PutString(name);
    (void)self->InternalRpc(self->manager_node_, kFnUnregisterName, unreg.bytes(), nullptr);
    ReplyStatus(self, inc.token, lt::StatusCode::kOk);
  };

  internal_handlers_[kFnLmrInvalidate] = [](LiteInstance* self, const RpcIncoming& inc) {
    WireReader r(inc.data.data(), inc.data.size());
    std::string name;
    if (r.GetString(&name)) {
      self->lmrs_.EraseByName(name);
    }
  };

  internal_handlers_[kFnLmrUpdate] = [](LiteInstance* self, const RpcIncoming& inc) {
    WireReader r(inc.data.data(), inc.data.size());
    std::string name;
    std::vector<LmrChunk> chunks;
    if (r.GetString(&name) && r.GetChunks(&chunks)) {
      self->lmrs_.UpdateChunksByName(name, chunks);
    }
  };

  // ------------------------------------------------ master-role services
  internal_handlers_[kFnSetPermission] = [](LiteInstance* self, const RpcIncoming& inc) {
    WireReader r(inc.data.data(), inc.data.size());
    std::string name;
    NodeId grantee = kInvalidNode;
    uint32_t perm = 0;
    NodeId requester = kInvalidNode;
    if (!r.GetString(&name) || !r.Get(&grantee) || !r.Get(&perm) || !r.Get(&requester)) {
      ReplyStatus(self, inc.token, lt::StatusCode::kInvalidArgument);
      return;
    }
    lt::StatusCode code = self->lmrs_.WithMeta(name, [&](LmrMeta& meta) {
      if (meta.masters.count(requester) == 0) {
        return lt::StatusCode::kPermissionDenied;
      }
      meta.node_perm[grantee] = perm;
      return lt::StatusCode::kOk;
    });
    ReplyStatus(self, inc.token, code);
  };

  internal_handlers_[kFnMasterGrant] = [](LiteInstance* self, const RpcIncoming& inc) {
    WireReader r(inc.data.data(), inc.data.size());
    std::string name;
    NodeId new_master = kInvalidNode;
    NodeId requester = kInvalidNode;
    if (!r.GetString(&name) || !r.Get(&new_master) || !r.Get(&requester)) {
      ReplyStatus(self, inc.token, lt::StatusCode::kInvalidArgument);
      return;
    }
    lt::StatusCode code = self->lmrs_.WithMeta(name, [&](LmrMeta& meta) {
      if (meta.masters.count(requester) == 0) {
        return lt::StatusCode::kPermissionDenied;
      }
      meta.masters.insert(new_master);
      meta.node_perm[new_master] = kPermRead | kPermWrite | kPermMaster;
      return lt::StatusCode::kOk;
    });
    ReplyStatus(self, inc.token, code);
  };

  internal_handlers_[kFnMasterMove] = [](LiteInstance* self, const RpcIncoming& inc) {
    WireReader r(inc.data.data(), inc.data.size());
    std::string name;
    NodeId new_node = kInvalidNode;
    NodeId requester = kInvalidNode;
    uint8_t pri_raw = static_cast<uint8_t>(Priority::kHigh);
    if (!r.GetString(&name) || !r.Get(&new_node) || !r.Get(&requester) || !r.Get(&pri_raw)) {
      ReplyStatus(self, inc.token, lt::StatusCode::kInvalidArgument);
      return;
    }
    const Priority pri =
        pri_raw == static_cast<uint8_t>(Priority::kLow) ? Priority::kLow : Priority::kHigh;
    auto copied = self->lmrs_.CopyMetaIfMaster(name, requester);
    if (!copied.ok()) {
      ReplyStatus(self, inc.token, copied.status().code());
      return;
    }
    LmrMeta meta = std::move(*copied);

    // Allocate the new placement.
    std::vector<LmrChunk> new_chunks;
    if (new_node == self->node_id()) {
      auto local = self->AllocLocalChunks(meta.size);
      if (!local.ok()) {
        ReplyStatus(self, inc.token, local.status().code());
        return;
      }
      new_chunks = *local;
    } else {
      WireWriter w;
      w.Put<uint64_t>(meta.size);
      std::vector<uint8_t> out;
      Status st = self->InternalRpc(new_node, kFnAllocChunks, w.bytes(), &out,
                                    kDefaultTimeout, pri);
      if (!st.ok()) {
        ReplyStatus(self, inc.token, st.code());
        return;
      }
      WireReader rr(out.data(), out.size());
      if (!rr.GetChunks(&new_chunks)) {
        ReplyStatus(self, inc.token, lt::StatusCode::kInternal);
        return;
      }
    }

    // Copy the data across via one-sided ops through a bounce buffer.
    auto old_pieces = SliceChunks(meta.chunks, 0, meta.size);
    auto new_pieces = SliceChunks(new_chunks, 0, meta.size);
    std::vector<uint8_t> bounce(meta.size);
    for (const ChunkPiece& p : old_pieces) {
      (void)self->engine_.OneSidedRead(p.node, p.addr, bounce.data() + p.user_off, p.len, pri);
    }
    for (const ChunkPiece& p : new_pieces) {
      (void)self->engine_.OneSidedWrite(p.node, p.addr, bounce.data() + p.user_off, p.len, pri,
                                        /*signaled=*/true);
    }

    // Install the new chunks, free the old, fan out updates.
    std::set<NodeId> mapped = self->lmrs_.InstallChunks(name, new_chunks);
    WireWriter update;
    update.PutString(name);
    update.PutChunks(new_chunks);
    for (NodeId node : mapped) {
      if (node == self->node_id()) {
        self->lmrs_.UpdateChunksByName(name, new_chunks);
      } else {
        (void)self->RpcSendNoReply(node, kFnLmrUpdate, update.bytes().data(),
                                   static_cast<uint32_t>(update.bytes().size()));
      }
    }
    std::map<NodeId, std::vector<LmrChunk>> by_node;
    for (const LmrChunk& c : meta.chunks) {
      by_node[c.node].push_back(c);
    }
    for (const auto& [target, chunks] : by_node) {
      if (target == self->node_id()) {
        self->FreeLocalChunks(chunks);
      } else {
        WireWriter w;
        w.PutChunks(chunks);
        (void)self->InternalRpc(target, kFnFreeChunks, w.bytes(), nullptr);
      }
    }
    ReplyStatus(self, inc.token, lt::StatusCode::kOk);
  };

  // ------------------------------------------------- remote memory ops
  internal_handlers_[kFnMemOp] = [](LiteInstance* self, const RpcIncoming& inc) {
    WireReader r(inc.data.data(), inc.data.size());
    uint8_t op = 0;
    uint8_t pri_raw = static_cast<uint8_t>(Priority::kHigh);
    if (!r.Get(&op) || !r.Get(&pri_raw)) {
      ReplyStatus(self, inc.token, lt::StatusCode::kInvalidArgument);
      return;
    }
    const Priority pri =
        pri_raw == static_cast<uint8_t>(Priority::kLow) ? Priority::kLow : Priority::kHigh;
    const auto& p = self->params();
    if (op == 0) {  // memset on local ranges
      uint8_t value = 0;
      uint32_t count = 0;
      if (!r.Get(&value) || !r.Get(&count)) {
        ReplyStatus(self, inc.token, lt::StatusCode::kInvalidArgument);
        return;
      }
      for (uint32_t i = 0; i < count; ++i) {
        PhysAddr addr = 0;
        uint64_t len = 0;
        if (!r.Get(&addr) || !r.Get(&len)) {
          ReplyStatus(self, inc.token, lt::StatusCode::kInvalidArgument);
          return;
        }
        AccessGate gate;
        lt::StatusCode gated = GateLocalRange(self, addr, len, /*is_write=*/true,
                                              inc.token.client_node, &gate);
        if (gated != lt::StatusCode::kOk) {
          ReplyStatus(self, inc.token, gated);
          return;
        }
        lt::SpinFor(p.local_op_base_ns + static_cast<uint64_t>(static_cast<double>(len) /
                                                               p.local_copy_bytes_per_ns));
        std::memset(self->node()->mem().Data(addr, len), value, len);
        self->migration().CloseAccess(&gate, /*success=*/true);
      }
      ReplyStatus(self, inc.token, lt::StatusCode::kOk);
      return;
    }
    if (op == 1) {  // memcpy: local source -> local or remote destination
      uint32_t count = 0;
      if (!r.Get(&count)) {
        ReplyStatus(self, inc.token, lt::StatusCode::kInvalidArgument);
        return;
      }
      for (uint32_t i = 0; i < count; ++i) {
        PhysAddr src_addr = 0;
        NodeId dst_node = kInvalidNode;
        PhysAddr dst_addr = 0;
        uint64_t len = 0;
        if (!r.Get(&src_addr) || !r.Get(&dst_node) || !r.Get(&dst_addr) || !r.Get(&len)) {
          ReplyStatus(self, inc.token, lt::StatusCode::kInvalidArgument);
          return;
        }
        AccessGate src_gate;
        lt::StatusCode gated = GateLocalRange(self, src_addr, len, /*is_write=*/false,
                                              inc.token.client_node, &src_gate);
        if (gated != lt::StatusCode::kOk) {
          ReplyStatus(self, inc.token, gated);
          return;
        }
        if (dst_node == self->node_id()) {
          AccessGate dst_gate;
          gated = GateLocalRange(self, dst_addr, len, /*is_write=*/true, inc.token.client_node,
                                 &dst_gate);
          if (gated != lt::StatusCode::kOk) {
            self->migration().CloseAccess(&src_gate, /*success=*/false);
            ReplyStatus(self, inc.token, gated);
            return;
          }
          lt::SpinFor(p.local_op_base_ns + static_cast<uint64_t>(static_cast<double>(len) /
                                                                 p.local_copy_bytes_per_ns));
          std::memmove(self->node()->mem().Data(dst_addr, len),
                       self->node()->mem().Data(src_addr, len), len);
          self->migration().CloseAccess(&dst_gate, /*success=*/true);
        } else {
          // The remote destination is gated by the op engine at post time.
          Status st = self->engine_.OneSidedWrite(dst_node, dst_addr,
                                                  self->node()->mem().Data(src_addr, len), len,
                                                  pri, /*signaled=*/true);
          if (!st.ok()) {
            self->migration().CloseAccess(&src_gate, /*success=*/false);
            ReplyStatus(self, inc.token, st.code());
            return;
          }
        }
        self->migration().CloseAccess(&src_gate, /*success=*/true);
      }
      ReplyStatus(self, inc.token, lt::StatusCode::kOk);
      return;
    }
    ReplyStatus(self, inc.token, lt::StatusCode::kInvalidArgument);
  };

  // --------------------------------------------------- lock FIFO service
  internal_handlers_[kFnLockWait] = [](LiteInstance* self, const RpcIncoming& inc) {
    WireReader r(inc.data.data(), inc.data.size());
    PhysAddr addr = 0;
    if (!r.Get(&addr)) {
      ReplyStatus(self, inc.token, lt::StatusCode::kInvalidArgument);
      return;
    }
    bool grant_now = false;
    {
      std::lock_guard<std::mutex> lock(self->locks_mu_);
      LockQueue& q = self->lock_queues_[addr];
      if (q.grants_pending > 0) {
        --q.grants_pending;
        grant_now = true;
      } else {
        q.waiters.push_back(inc.token);
      }
    }
    if (grant_now) {
      ReplyStatus(self, inc.token, lt::StatusCode::kOk);
    }
  };

  internal_handlers_[kFnLockGrant] = [](LiteInstance* self, const RpcIncoming& inc) {
    WireReader r(inc.data.data(), inc.data.size());
    PhysAddr addr = 0;
    if (!r.Get(&addr)) {
      return;
    }
    ReplyToken waiter;
    bool have_waiter = false;
    {
      std::lock_guard<std::mutex> lock(self->locks_mu_);
      LockQueue& q = self->lock_queues_[addr];
      if (!q.waiters.empty()) {
        waiter = q.waiters.front();
        q.waiters.pop_front();
        have_waiter = true;
      } else {
        ++q.grants_pending;
      }
    }
    if (have_waiter) {
      // Grant no earlier than either the waiter's request or this release.
      lt::SyncClockTo(waiter.arrival_vtime_ns);
      ReplyStatus(self, waiter, lt::StatusCode::kOk);  // The reply IS the grant.
    }
  };

  // -------------------------------------------------------- barrier
  internal_handlers_[kFnBarrier] = [](LiteInstance* self, const RpcIncoming& inc) {
    WireReader r(inc.data.data(), inc.data.size());
    std::string name;
    uint32_t expected = 0;
    if (!r.GetString(&name) || !r.Get(&expected) || expected == 0) {
      ReplyStatus(self, inc.token, lt::StatusCode::kInvalidArgument);
      return;
    }
    std::vector<ReplyToken> to_release;
    {
      std::lock_guard<std::mutex> lock(self->barriers_mu_);
      BarrierState& b = self->barriers_[name];
      b.expected = expected;
      b.arrived.push_back(inc.token);
      if (b.arrived.size() >= b.expected) {
        to_release = std::move(b.arrived);
        self->barriers_.erase(name);
      }
    }
    // The barrier releases at the latest arrival's virtual time, regardless
    // of the real-time order the arrivals were processed in.
    uint64_t release_vtime = 0;
    for (const ReplyToken& token : to_release) {
      release_vtime = std::max(release_vtime, token.arrival_vtime_ns);
    }
    lt::SyncClockTo(release_vtime);
    for (const ReplyToken& token : to_release) {
      ReplyStatus(self, token, lt::StatusCode::kOk);
    }
  };

  // ---------------------------------------- manager recovery (Sec. 3.3)
  internal_handlers_[kFnListNames] = [](LiteInstance* self, const RpcIncoming& inc) {
    WireWriter payload;
    auto names = self->lmrs_.ListNames();
    payload.Put<uint32_t>(static_cast<uint32_t>(names.size()));
    for (const auto& [name, epoch] : names) {
      payload.PutString(name);
      payload.Put<uint64_t>(epoch);
    }
    ReplyOkPayload(self, inc.token, payload);
  };

  // ----------------------------------------- liveness (keepalive / lease)
  internal_handlers_[kFnKeepalive] = [](LiteInstance* self, const RpcIncoming& inc) {
    WireReader r(inc.data.data(), inc.data.size());
    NodeId sender = kInvalidNode;
    if (!r.Get(&sender)) {
      ReplyStatus(self, inc.token, lt::StatusCode::kInvalidArgument);
      return;
    }
    const auto& p = self->params();
    const uint64_t lease_ns = p.lite_lease_timeout_ns > 0
                                  ? p.lite_lease_timeout_ns
                                  : 5 * p.lite_keepalive_interval_ns;
    const uint64_t now_real = lt::RealNowNs();
    std::vector<NodeId> dead;
    {
      std::lock_guard<std::mutex> lock(self->lease_mu_);
      self->lease_last_seen_[sender] = now_real;
      for (const auto& [node, last_seen] : self->lease_last_seen_) {
        if (lease_ns > 0 && now_real - last_seen > lease_ns) {
          dead.push_back(node);
        }
      }
    }
    // A renewed lease revives the sender; expired leases condemn their
    // holders. The dead list is piggybacked on the reply so every renewal
    // disseminates the manager's view (paper Sec. 3.3's failure handling).
    self->SetPeerDead(sender, false);
    for (NodeId node : dead) {
      if (self->journal_ != nullptr && !self->PeerDead(node)) {
        uint64_t overdue_ns = 0;
        {
          std::lock_guard<std::mutex> lock(self->lease_mu_);
          auto it = self->lease_last_seen_.find(node);
          if (it != self->lease_last_seen_.end()) {
            overdue_ns = now_real - it->second;
          }
        }
        self->journal_->Record(lt::telemetry::JournalEvent::kLeaseExpire, node, overdue_ns);
      }
      self->SetPeerDead(node, true);
    }
    WireWriter payload;
    payload.Put<uint32_t>(static_cast<uint32_t>(dead.size()));
    for (NodeId node : dead) {
      payload.Put<NodeId>(node);
    }
    ReplyOkPayload(self, inc.token, payload);
  };

  // -------------------------------------------------------- echo (tests)
  internal_handlers_[kFnEcho] = [](LiteInstance* self, const RpcIncoming& inc) {
    WireWriter payload;
    payload.PutBytes(inc.data.data(), inc.data.size());
    ReplyOkPayload(self, inc.token, payload);
  };

  internal_handlers_[kFnRingSetup] = [](LiteInstance* self, const RpcIncoming& inc) {
    WireReader r(inc.data.data(), inc.data.size());
    RpcFuncId ring_id = 0;
    PhysAddr mirror = 0;
    if (!r.Get(&ring_id) || !r.Get(&mirror)) {
      ReplyStatus(self, inc.token, lt::StatusCode::kInvalidArgument);
      return;
    }
    ServerRing* ring = self->SetupServerRing(inc.token.client_node, ring_id, mirror);
    if (ring == nullptr) {
      ReplyStatus(self, inc.token, lt::StatusCode::kResourceExhausted);
      return;
    }
    WireWriter payload;
    payload.Put<LmrChunk>(ring->ring);
    payload.Put<uint64_t>(ring->ring_size);
    ReplyOkPayload(self, inc.token, payload);
  };

  // Live-migration control plane (migration.cc).
  RegisterMigrationHandlers();
}

}  // namespace lite
