#include "src/lite/qos.h"

#include <algorithm>

#include "src/common/timing.h"
#include "src/telemetry/journal.h"
#include "src/telemetry/trace.h"

namespace lite {

void QosManager::Admit(Priority pri, uint64_t bytes) {
  admits_.fetch_add(1, std::memory_order_relaxed);
  const uint64_t delay_ns = AdmitInner(pri, bytes);
  if (delay_ns > 0) {
    throttles_.fetch_add(1, std::memory_order_relaxed);
    if (journal_ != nullptr) {
      journal_->Record(lt::telemetry::JournalEvent::kQosThrottle,
                       static_cast<uint64_t>(pri), delay_ns);
    }
  }
  lt::telemetry::StampStage(lt::telemetry::TraceStage::kQosAdmit, delay_ns);
}

uint64_t QosManager::AdmitInner(Priority pri, uint64_t bytes) {
  const uint64_t now = lt::NowNs();
  if (pri == Priority::kHigh) {
    AccountHighBytes(bytes, now);
    return 0;
  }
  if (policy() == QosPolicy::kHwSep) {
    // Hardware separation: the NIC schedules QPs round-robin, so traffic
    // confined to 1 of K QPs gets ~1/K of the processing rate whenever the
    // other QPs have work. Reserved capacity idles when high-priority jobs
    // are absent — the inflexibility the paper demonstrates (Sec. 6.2).
    double share = params_.nic_line_rate_bytes_per_ns /
                   std::max(1, params_.lite_qp_sharing_factor);
    const uint64_t ser_ns = static_cast<uint64_t>(static_cast<double>(bytes) / share);
    uint64_t finish = low_rate_.Reserve(now, ser_ns);
    if (finish > now + ser_ns) {
      const uint64_t delay = finish - (now + ser_ns);
      lt::IdleFor(delay);
      low_delay_total_ns_.fetch_add(delay, std::memory_order_relaxed);
      return delay;
    }
    return 0;
  }
  if (policy() != QosPolicy::kSwPri) {
    return 0;
  }

  // Paper's three sender-side policies: rate-limit low-priority traffic when
  // high-priority load is high (1) or its RTT inflates (3); run unthrottled
  // when high-priority traffic is light (2). Both triggers require
  // high-priority activity within the recent monitoring windows — a stale
  // RTT sample must not keep throttling after the high-priority job leaves.
  uint64_t window_start = window_start_ns_.load(std::memory_order_relaxed);
  if (now >= window_start + 2 * kWindowNs) {
    return 0;
  }
  bool limit = HighPriActive(now);
  uint64_t floor = rtt_floor_ns_.load(std::memory_order_relaxed);
  uint64_t ewma = rtt_ewma_ns_.load(std::memory_order_relaxed);
  if (floor > 0 && ewma > static_cast<uint64_t>(static_cast<double>(floor) * kRttInflation)) {
    limit = true;
  }
  // Latch the limiter for a window once triggered so it does not flap
  // between a bursty high-priority job's phases.
  if (limit) {
    limited_until_ns_.store(now + kWindowNs, std::memory_order_relaxed);
  } else if (now < limited_until_ns_.load(std::memory_order_relaxed)) {
    limit = true;
  }
  if (!limit) {
    return 0;
  }

  // Windowed rate reservation in virtual time at the restricted rate.
  const uint64_t ser_ns =
      static_cast<uint64_t>(static_cast<double>(bytes) / kLowPriRestrictedRate);
  uint64_t finish = low_rate_.Reserve(now, ser_ns);
  if (finish > now + ser_ns) {
    const uint64_t delay = finish - (now + ser_ns);
    lt::IdleFor(delay);
    low_delay_total_ns_.fetch_add(delay, std::memory_order_relaxed);
    return delay;
  }
  return 0;
}

void QosManager::RecordHighPriRtt(uint64_t rtt_ns) {
  // EWMA with alpha = 1/8.
  uint64_t prev = rtt_ewma_ns_.load(std::memory_order_relaxed);
  uint64_t next = prev == 0 ? rtt_ns : (prev * 7 + rtt_ns) / 8;
  rtt_ewma_ns_.store(next, std::memory_order_relaxed);

  uint64_t floor = rtt_floor_ns_.load(std::memory_order_relaxed);
  if (floor == 0 || rtt_ns < floor) {
    rtt_floor_ns_.store(rtt_ns, std::memory_order_relaxed);
  }
}

std::pair<int, int> QosManager::QpRange(Priority pri, int k) const {
  if (policy() != QosPolicy::kHwSep || k < 2) {
    return {0, k};
  }
  // Reserve QP 0 for low priority; the rest for high priority.
  if (pri == Priority::kLow) {
    return {0, 1};
  }
  return {1, k};
}

void QosManager::AccountHighBytes(uint64_t bytes, uint64_t now) {
  uint64_t start = window_start_ns_.load(std::memory_order_relaxed);
  if (now >= start + kWindowNs) {
    if (window_start_ns_.compare_exchange_strong(start, now, std::memory_order_relaxed)) {
      last_window_hi_bytes_.store(window_hi_bytes_.exchange(0, std::memory_order_relaxed),
                                  std::memory_order_relaxed);
    }
  }
  window_hi_bytes_.fetch_add(bytes, std::memory_order_relaxed);
}

bool QosManager::HighPriActive(uint64_t now) const {
  uint64_t start = window_start_ns_.load(std::memory_order_relaxed);
  uint64_t current = window_hi_bytes_.load(std::memory_order_relaxed);
  uint64_t previous = last_window_hi_bytes_.load(std::memory_order_relaxed);
  if (now >= start + 2 * kWindowNs) {
    // No high-priority traffic for two windows: treat as idle.
    return false;
  }
  // "High load": a sustained ~0.5%+ of line rate within the window
  // (high-priority request/response traffic is bursty; a deep threshold
  // would miss it between bursts).
  const uint64_t threshold =
      static_cast<uint64_t>(params_.nic_line_rate_bytes_per_ns * kWindowNs * 0.005);
  return current + previous > threshold;
}

}  // namespace lite
