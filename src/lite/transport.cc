#include "src/lite/transport.h"

#include "src/common/timing.h"
#include "src/lite/dc_transport.h"
#include "src/lite/qp_manager.h"

namespace lite {

void Transport::RecoverQp(lt::Qp* qp) {
  // Models the driver's modify_qp cycle ERR -> RESET -> INIT -> RTR -> RTS
  // after a transport error (caller holds the QP's slot mutex).
  lt::SpinFor(node_->params().lite_qp_reconnect_ns);
  qp->ResetToRts();
  if (reconnects_ != nullptr) {
    reconnects_->Inc();
  }
  if (journal_ != nullptr) {
    const uint64_t mode_tag = mode() == lt::LiteTransport::kRc ? 1 : 2;
    journal_->Record(lt::telemetry::JournalEvent::kQpRecover, qp->remote_node(),
                     (mode_tag << 32) | qp->qpn());
  }
}

void Transport::RegisterTelemetry(lt::telemetry::Registry& reg, lt::telemetry::Counter* reconnects,
                                  lt::telemetry::Journal* journal) {
  reconnects_ = reconnects;
  journal_ = journal;
  // QPC occupancy of this node's RNIC: how many QP contexts are resident
  // on-NIC. RC at scale fills this O(peers); DC holds it at O(pool).
  lt::Rnic* rnic = &node_->rnic();
  reg.RegisterProbe("lite.transport.qpc_occupancy",
                    [rnic] { return static_cast<uint64_t>(rnic->qpc_cache().size()); });
}

std::unique_ptr<Transport> Transport::Create(lt::Node* node, QosManager* qos) {
  if (node->params().lite_transport == lt::LiteTransport::kDc) {
    return std::make_unique<DcTransport>(node, qos);
  }
  return std::make_unique<QpManager>(node, qos);
}

}  // namespace lite
