#include "src/telemetry/telemetry.h"

#include <sstream>

namespace lt {
namespace telemetry {

std::string NodeTelemetry::ToJson() const {
  std::ostringstream os;
  MetricsSnapshot snap = registry_.Snapshot();
  // Strip the outer braces of the metrics object so spans join it flat.
  std::string metrics_json = snap.ToJson();
  os << metrics_json.substr(0, metrics_json.size() - 1);
  os << ",\"spans\":[";
  auto spans = tracer_.Snapshot();
  for (size_t i = 0; i < spans.size(); ++i) {
    os << (i == 0 ? "" : ",") << spans[i].ToJson();
  }
  os << "]}";
  return os.str();
}

}  // namespace telemetry
}  // namespace lt
