#include "src/telemetry/journal.h"

#include <algorithm>
#include <sstream>

#include "src/common/timing.h"

namespace lt {
namespace telemetry {

const char* JournalEventName(JournalEvent ev) {
  switch (ev) {
    case JournalEvent::kOpStart: return "op_start";
    case JournalEvent::kOpEnd: return "op_end";
    case JournalEvent::kRpcRetry: return "rpc_retry";
    case JournalEvent::kOnesideRetry: return "oneside_retry";
    case JournalEvent::kQpRecover: return "qp_recover";
    case JournalEvent::kPeerDead: return "peer_dead";
    case JournalEvent::kPeerAlive: return "peer_alive";
    case JournalEvent::kLeaseExpire: return "lease_expire";
    case JournalEvent::kQosThrottle: return "qos_throttle";
    case JournalEvent::kFaultDrop: return "fault_drop";
    case JournalEvent::kFaultDup: return "fault_dup";
    case JournalEvent::kFaultDelay: return "fault_delay";
    case JournalEvent::kNodeCrash: return "node_crash";
    case JournalEvent::kNodeRestart: return "node_restart";
    case JournalEvent::kUnsignaledRecover: return "unsignaled_recover";
    case JournalEvent::kMigrateStart: return "migrate_start";
    case JournalEvent::kMigratePhase: return "migrate_phase";
    case JournalEvent::kMigrateCommit: return "migrate_commit";
    case JournalEvent::kMigrateAbort: return "migrate_abort";
    case JournalEvent::kStaleHomeNack: return "stale_home_nack";
    case JournalEvent::kCount: break;
  }
  return "unknown";
}

std::string JournalRecord::ToJson() const {
  std::ostringstream os;
  os << "{\"t_ns\":" << t_ns << ",\"node\":" << node << ",\"ev\":\""
     << JournalEventName(ev) << "\",\"a\":" << a << ",\"b\":" << b << "}";
  return os.str();
}

Journal::Journal(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      slots_(new Slot[capacity == 0 ? 1 : capacity]) {}

void Journal::Record(JournalEvent ev, uint64_t a, uint64_t b) {
  RecordAt(ev, NowNs(), a, b);
}

void Journal::RecordAt(JournalEvent ev, uint64_t t_ns, uint64_t a, uint64_t b) {
  const uint64_t idx = head_.fetch_add(1, std::memory_order_relaxed);
  Slot& s = slots_[idx % capacity_];
  s.t_ns.store(t_ns, std::memory_order_relaxed);
  s.a.store(a, std::memory_order_relaxed);
  s.b.store(b, std::memory_order_relaxed);
  s.ev.store(static_cast<uint16_t>(ev), std::memory_order_relaxed);
  s.seq.store(idx + 1, std::memory_order_release);
}

uint64_t Journal::overwritten() const {
  const uint64_t head = head_.load(std::memory_order_relaxed);
  return head > capacity_ ? head - capacity_ : 0;
}

std::vector<JournalRecord> Journal::Snapshot() const {
  const uint64_t head = head_.load(std::memory_order_acquire);
  const uint64_t first = head > capacity_ ? head - capacity_ : 0;
  std::vector<JournalRecord> out;
  out.reserve(head - first);
  for (uint64_t idx = first; idx < head; ++idx) {
    const Slot& s = slots_[idx % capacity_];
    const uint64_t seq_before = s.seq.load(std::memory_order_acquire);
    if (seq_before != idx + 1) continue;  // overwritten or not yet published
    JournalRecord r;
    r.t_ns = s.t_ns.load(std::memory_order_relaxed);
    r.a = s.a.load(std::memory_order_relaxed);
    r.b = s.b.load(std::memory_order_relaxed);
    r.ev = static_cast<JournalEvent>(s.ev.load(std::memory_order_relaxed));
    std::atomic_thread_fence(std::memory_order_acquire);
    if (s.seq.load(std::memory_order_relaxed) != seq_before) continue;
    r.index = idx;
    r.node = node_;
    out.push_back(r);
  }
  return out;
}

std::string MergeJournalsJson(const std::vector<const Journal*>& journals) {
  std::vector<JournalRecord> all;
  for (const Journal* j : journals) {
    if (j == nullptr) continue;
    std::vector<JournalRecord> part = j->Snapshot();
    all.insert(all.end(), part.begin(), part.end());
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const JournalRecord& x, const JournalRecord& y) {
                     if (x.t_ns != y.t_ns) return x.t_ns < y.t_ns;
                     if (x.node != y.node) return x.node < y.node;
                     return x.index < y.index;
                   });
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < all.size(); ++i) {
    if (i != 0) os << ",";
    os << "\n  " << all[i].ToJson();
  }
  if (!all.empty()) os << "\n";
  os << "]";
  return os.str();
}

}  // namespace telemetry
}  // namespace lt
