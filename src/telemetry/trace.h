// Request-path tracing for the LITE fast path.
//
// A sampled operation carries a TraceSpan (stack-allocated by the outermost
// API layer) through every layer it crosses; each layer stamps a stage with
// the thread's *virtual* clock, so a span is a per-op timeline of where the
// modeled microseconds went: client API entry -> user/kernel crossing ->
// lh/permission check -> QoS admission -> RNIC WQE post -> on-NIC SRAM
// lookup (hit-or-miss penalty in arg) -> fabric reservation -> DMA copy ->
// completion.
//
// Cross-node stitching: the outermost ScopedSpan allocates a cluster-unique
// 64-bit trace id (node id in the high bits, so no coordination is needed).
// The RPC layer carries it on the wire; the server side opens a child span
// tagged with parent_trace_id, and DumpTelemetryJson / ExportChromeTrace
// join the halves into one client->fabric->server->fabric->client timeline.
//
// The span is carried via a thread-local pointer rather than threaded
// through every signature: lower layers (RNIC, OS, QoS) stamp into
// CurrentSpan() if one is active. With sampling disabled (the default) the
// cost at every instrumentation point is one thread-local load and a
// predictable branch; Begin() itself is a relaxed atomic load + branch.
//
// Completed spans land in a bounded per-node ring buffer (old spans are
// overwritten and counted in spans_dropped()) and are drained by LT_stat /
// Cluster::DumpTelemetry.
#ifndef SRC_TELEMETRY_TRACE_H_
#define SRC_TELEMETRY_TRACE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace lt {
namespace telemetry {

class Journal;

// Stages of the LITE fast path, in the order the paper's Sec. 4-5 walk
// describes them. Keep TraceStageName() in sync.
enum class TraceStage : uint8_t {
  kApiEntry = 0,     // Client API entry (LT_read/LT_write/LT_RPC/...).
  kSyscallCross,     // User->kernel boundary crossing.
  kLhCheck,          // lh lookup + permission + address mapping check.
  kQosAdmit,         // QoS admission (arg = throttle delay ns, 0 = none).
  kRnicPost,         // WQE build + doorbell rung on the local RNIC.
  kNicCache,         // MPT/MTT/QPC lookups done (arg = total miss penalty ns).
  kFabric,           // Fabric bandwidth reserved (arg = transfer finish ns).
  kDma,              // Target-memory copy performed by the issuing thread.
  kCompletion,       // Completion observed (arg = completion ready ns).
  kServerRecv,       // Server-side: request picked up by a handler worker.
  kServerReply,      // Server-side: reply posted back (arg = reply bytes).
  kStageCount,
};

const char* TraceStageName(TraceStage stage);

struct TraceEvent {
  TraceStage stage = TraceStage::kApiEntry;
  uint64_t t_ns = 0;  // Virtual time of the stamp.
  uint64_t arg = 0;   // Stage-specific detail (penalty ns, finish ns, bytes).
};

struct TraceSpan {
  static constexpr int kMaxEvents = 16;

  uint64_t op_id = 0;
  uint64_t trace_id = 0;         // Cluster-unique id; 0 = untraced.
  uint64_t parent_trace_id = 0;  // Nonzero on server-side child spans.
  uint32_t node = 0;             // Node that recorded this span.
  const char* op = "";  // Static string: the API name ("LT_write", ...).
  int n_events = 0;
  uint32_t events_dropped = 0;  // Stamps lost to the kMaxEvents bound.
  TraceEvent events[kMaxEvents];

  // Stamps `stage` at the calling thread's current virtual time. Extra
  // events past kMaxEvents are counted into events_dropped.
  void Stamp(TraceStage stage, uint64_t arg = 0);
  // Same, at an explicit virtual time (server spans back-stamp the request's
  // arrival, which predates the handler thread's current clock).
  void StampAt(TraceStage stage, uint64_t t_ns, uint64_t arg = 0);

  std::string ToJson() const;
};

// The calling thread's active span, or nullptr. Lower layers stamp through
// this so their signatures stay trace-agnostic.
TraceSpan* CurrentSpan();

// Trace id of the calling thread's active span, or 0. This is what the RPC
// layer puts on the wire; 0 means "not traced" and costs the header nothing.
inline uint64_t CurrentTraceId() {
  TraceSpan* span = CurrentSpan();
  return span != nullptr ? span->trace_id : 0;
}

// Stamps into the current span if one is active; the no-span fast path is a
// thread-local load + branch.
inline void StampStage(TraceStage stage, uint64_t arg = 0) {
  if (TraceSpan* span = CurrentSpan()) {
    span->Stamp(stage, arg);
  }
}

// Per-node tracer: sampling decision + bounded ring of completed spans.
class Tracer {
 public:
  static constexpr size_t kRingCapacity = 1024;  // default ring size

  explicit Tracer(size_t ring_capacity = kRingCapacity)
      : ring_capacity_(ring_capacity == 0 ? 1 : ring_capacity) {}

  // Identity used for cluster-unique trace-id allocation and span tagging.
  void SetNodeId(uint32_t node) { node_ = node; }
  uint32_t node_id() const { return node_; }

  // Flight recorder receiving op start/end events (may be null).
  void SetJournal(Journal* journal) { journal_ = journal; }
  Journal* journal() const { return journal_; }

  // 0 disables tracing (default); n samples every n-th Begin().
  void SetSampleEvery(uint32_t n) { sample_every_.store(n, std::memory_order_relaxed); }
  uint32_t sample_every() const { return sample_every_.load(std::memory_order_relaxed); }

  // True if this operation should carry a span (call once per op).
  bool Sample() {
    uint32_t every = sample_every_.load(std::memory_order_relaxed);
    if (every == 0) {
      return false;
    }
    return ops_seen_.fetch_add(1, std::memory_order_relaxed) % every == 0;
  }

  // Cluster-unique, never 0: node id in the high 24 bits, a per-node counter
  // (starting at 1) in the low 40.
  uint64_t AllocTraceId() {
    return (static_cast<uint64_t>(node_) << 40) |
           (next_trace_.fetch_add(1, std::memory_order_relaxed) & ((1ull << 40) - 1));
  }

  // Copies a finished span into the ring (sampled ops only — cold path).
  void Commit(const TraceSpan& span);

  uint64_t spans_committed() const { return committed_.load(std::memory_order_relaxed); }
  // Spans overwritten in the ring before anyone snapshotted them.
  uint64_t spans_dropped() const { return spans_dropped_.load(std::memory_order_relaxed); }
  // Stage stamps lost to TraceSpan::kMaxEvents, totaled over committed spans.
  uint64_t events_dropped() const { return events_dropped_.load(std::memory_order_relaxed); }

  size_t ring_capacity() const { return ring_capacity_; }

  // Completed spans, oldest first (at most ring_capacity()).
  std::vector<TraceSpan> Snapshot() const;

 private:
  const size_t ring_capacity_;
  uint32_t node_ = 0;
  Journal* journal_ = nullptr;
  std::atomic<uint32_t> sample_every_{0};
  std::atomic<uint64_t> ops_seen_{0};
  std::atomic<uint64_t> committed_{0};
  std::atomic<uint64_t> spans_dropped_{0};
  std::atomic<uint64_t> events_dropped_{0};
  std::atomic<uint64_t> next_trace_{1};

  mutable std::mutex ring_mu_;
  std::vector<TraceSpan> ring_;
  size_t ring_next_ = 0;
};

// RAII carrier: installs a stack-allocated span as the thread's current span
// for the scope of one API call, and commits it on destruction. Nested
// ScopedSpans are inert (the outermost API layer owns the span), as are
// spans on ops the tracer declined to sample. The outermost span claims the
// op even when it declines to sample — otherwise an inner layer would re-roll
// the sampling counter and a 1-in-even stride parity-locks onto the inner
// layer, dropping the stages above it from every sampled span.
//
// Claimed ops (sampled or not) also drop kOpStart/kOpEnd breadcrumbs into
// the tracer's flight-recorder journal — that part is always on.
class ScopedSpan {
 public:
  ScopedSpan(Tracer* tracer, const char* op);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  bool active() const { return active_; }

 private:
  Tracer* tracer_ = nullptr;
  Journal* journal_ = nullptr;
  uint64_t op_id_ = 0;
  uint64_t op_name_packed_ = 0;
  bool claimed_ = false;
  bool active_ = false;
  TraceSpan span_;
};

}  // namespace telemetry
}  // namespace lt

#endif  // SRC_TELEMETRY_TRACE_H_
