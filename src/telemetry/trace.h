// Request-path tracing for the LITE fast path.
//
// A sampled operation carries a TraceSpan (stack-allocated by the outermost
// API layer) through every layer it crosses; each layer stamps a stage with
// the thread's *virtual* clock, so a span is a per-op timeline of where the
// modeled microseconds went: client API entry -> user/kernel crossing ->
// lh/permission check -> QoS admission -> RNIC WQE post -> on-NIC SRAM
// lookup (hit-or-miss penalty in arg) -> fabric reservation -> DMA copy ->
// completion.
//
// The span is carried via a thread-local pointer rather than threaded
// through every signature: lower layers (RNIC, OS, QoS) stamp into
// CurrentSpan() if one is active. With sampling disabled (the default) the
// cost at every instrumentation point is one thread-local load and a
// predictable branch; Begin() itself is a relaxed atomic load + branch.
//
// Completed spans land in a bounded per-node ring buffer (old spans are
// overwritten) and are drained by LT_stat / Cluster::DumpTelemetry.
#ifndef SRC_TELEMETRY_TRACE_H_
#define SRC_TELEMETRY_TRACE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace lt {
namespace telemetry {

// Stages of the LITE fast path, in the order the paper's Sec. 4-5 walk
// describes them. Keep TraceStageName() in sync.
enum class TraceStage : uint8_t {
  kApiEntry = 0,     // Client API entry (LT_read/LT_write/LT_RPC/...).
  kSyscallCross,     // User->kernel boundary crossing.
  kLhCheck,          // lh lookup + permission + address mapping check.
  kQosAdmit,         // QoS admission (arg = throttle delay ns, 0 = none).
  kRnicPost,         // WQE build + doorbell rung on the local RNIC.
  kNicCache,         // MPT/MTT/QPC lookups done (arg = total miss penalty ns).
  kFabric,           // Fabric bandwidth reserved (arg = transfer finish ns).
  kDma,              // Target-memory copy performed by the issuing thread.
  kCompletion,       // Completion observed (arg = completion ready ns).
  kStageCount,
};

const char* TraceStageName(TraceStage stage);

struct TraceEvent {
  TraceStage stage = TraceStage::kApiEntry;
  uint64_t t_ns = 0;  // Virtual time of the stamp.
  uint64_t arg = 0;   // Stage-specific detail (penalty ns, finish ns, bytes).
};

struct TraceSpan {
  static constexpr int kMaxEvents = 16;

  uint64_t op_id = 0;
  const char* op = "";  // Static string: the API name ("LT_write", ...).
  int n_events = 0;
  TraceEvent events[kMaxEvents];

  // Stamps `stage` at the calling thread's current virtual time. Extra
  // events past kMaxEvents are dropped (bounded by construction).
  void Stamp(TraceStage stage, uint64_t arg = 0);

  std::string ToJson() const;
};

// The calling thread's active span, or nullptr. Lower layers stamp through
// this so their signatures stay trace-agnostic.
TraceSpan* CurrentSpan();

// Stamps into the current span if one is active; the no-span fast path is a
// thread-local load + branch.
inline void StampStage(TraceStage stage, uint64_t arg = 0) {
  if (TraceSpan* span = CurrentSpan()) {
    span->Stamp(stage, arg);
  }
}

// Per-node tracer: sampling decision + bounded ring of completed spans.
class Tracer {
 public:
  static constexpr size_t kRingCapacity = 1024;

  // 0 disables tracing (default); n samples every n-th Begin().
  void SetSampleEvery(uint32_t n) { sample_every_.store(n, std::memory_order_relaxed); }
  uint32_t sample_every() const { return sample_every_.load(std::memory_order_relaxed); }

  // True if this operation should carry a span (call once per op).
  bool Sample() {
    uint32_t every = sample_every_.load(std::memory_order_relaxed);
    if (every == 0) {
      return false;
    }
    return ops_seen_.fetch_add(1, std::memory_order_relaxed) % every == 0;
  }

  // Copies a finished span into the ring (sampled ops only — cold path).
  void Commit(const TraceSpan& span);

  uint64_t spans_committed() const { return committed_.load(std::memory_order_relaxed); }

  // Completed spans, oldest first (at most kRingCapacity).
  std::vector<TraceSpan> Snapshot() const;

 private:
  std::atomic<uint32_t> sample_every_{0};
  std::atomic<uint64_t> ops_seen_{0};
  std::atomic<uint64_t> committed_{0};

  mutable std::mutex ring_mu_;
  std::vector<TraceSpan> ring_;
  size_t ring_next_ = 0;
};

// RAII carrier: installs a stack-allocated span as the thread's current span
// for the scope of one API call, and commits it on destruction. Nested
// ScopedSpans are inert (the outermost API layer owns the span), as are
// spans on ops the tracer declined to sample. The outermost span claims the
// op even when it declines to sample — otherwise an inner layer would re-roll
// the sampling counter and a 1-in-even stride parity-locks onto the inner
// layer, dropping the stages above it from every sampled span.
class ScopedSpan {
 public:
  ScopedSpan(Tracer* tracer, const char* op);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  bool active() const { return active_; }

 private:
  Tracer* tracer_ = nullptr;
  bool claimed_ = false;
  bool active_ = false;
  TraceSpan span_;
};

}  // namespace telemetry
}  // namespace lt

#endif  // SRC_TELEMETRY_TRACE_H_
