#include "src/telemetry/latency_attr.h"

#include <cinttypes>
#include <cstdio>
#include <sstream>
#include <utility>

#include "src/common/timing.h"

namespace lt {
namespace telemetry {
namespace {

// The thread's current (outermost) op record. Plain thread-local pointer:
// claiming, stamping, and releasing are single non-atomic writes.
thread_local OpAttrRecord* g_cur = nullptr;

const char* const kStageNames[kLatStageCount] = {
    "cross",       "submit",     "qos_wait",   "engine_q",   "post",
    "rnic_local",  "port_q",     "wire",       "rnic_remote", "remote_svc",
    "compl_poll",  "retire",     "detour",     "other",
};

constexpr char kLatPrefix[] = "lite.lat.";

uint64_t ScaleToward(uint64_t v, uint64_t num, uint64_t den) {
  // v * num / den without overflow (stage sums can exceed 2^32 ns).
  return den == 0 ? 0
                  : static_cast<uint64_t>(static_cast<unsigned __int128>(v) * num / den);
}

}  // namespace

const char* LatStageName(int stage) {
  return (stage >= 0 && stage < kLatStageCount) ? kStageNames[stage] : "?";
}

const char* LatencyAttr::SizeClass(uint64_t bytes) {
  if (bytes == 0) return "0B";
  if (bytes <= 64) return "64B";
  if (bytes <= 512) return "512B";
  if (bytes <= 4096) return "4K";
  if (bytes <= 32768) return "32K";
  if (bytes <= 262144) return "256K";
  if (bytes <= 1048576) return "1M";
  return "big";
}

ScopedOpAttr::ScopedOpAttr(LatencyAttr* sink, const char* op, uint64_t bytes, int pri) {
  if (sink == nullptr || g_cur != nullptr) {
    return;  // Nested call (internal RPC inside a memop): stay inert.
  }
  rec_.active = true;
  rec_.op = op;
  rec_.bytes = bytes;
  rec_.pri = pri;
  rec_.start_ns = NowNs();
  sink_ = sink;
  owner_ = true;
  g_cur = &rec_;
}

ScopedOpAttr::~ScopedOpAttr() {
  if (!owner_) {
    return;
  }
  g_cur = nullptr;
  if (rec_.detached) {
    return;  // An async op took the record; it commits at retirement.
  }
  const uint64_t now = NowNs();
  sink_->Commit(rec_, now > rec_.start_ns ? now - rec_.start_ns : 0);
}

AttrPause::AttrPause() : saved_(g_cur) { g_cur = nullptr; }
AttrPause::~AttrPause() { g_cur = saved_; }

AttrAdoptScope::AttrAdoptScope(OpAttrRecord* rec) : saved_(g_cur) {
  g_cur = (rec != nullptr && rec->active) ? rec : nullptr;
}
AttrAdoptScope::~AttrAdoptScope() { g_cur = saved_; }

void AttrAdd(LatStage stage, uint64_t delta_ns) {
  if (g_cur != nullptr && delta_ns > 0) {
    g_cur->stage_ns[stage] += delta_ns;
  }
}

void AttrAddSplit(uint64_t delta_ns, const WqeLatBreakdown& b) {
  if (g_cur == nullptr || delta_ns == 0) {
    return;
  }
  const uint64_t total = b.Total();
  if (total == 0) {
    // No transport info (local op, loopback imm): the wait was all
    // completion plumbing.
    g_cur->stage_ns[kLatComplPoll] += delta_ns;
    return;
  }
  uint64_t booked = 0;
  const std::pair<LatStage, uint64_t> parts[] = {
      {kLatRnicLocal, b.rnic_local_ns},
      {kLatPortQueue, b.port_queue_ns},
      {kLatWire, b.wire_ns},
      {kLatRnicRemote, b.rnic_remote_ns},
  };
  for (const auto& [stage, part] : parts) {
    const uint64_t share = ScaleToward(part, delta_ns, total);
    g_cur->stage_ns[stage] += share;
    booked += share;
  }
  // compl share plus all integer-rounding leftovers.
  g_cur->stage_ns[kLatComplPoll] += delta_ns - booked;
}

void AttrAddRpcWait(uint64_t delta_ns, const WqeLatBreakdown& b) {
  if (g_cur == nullptr || delta_ns == 0) {
    return;
  }
  const uint64_t total = b.Total();
  if (total >= delta_ns) {
    // Reply raced the request's own transport estimate: the whole wait was
    // transport, split it proportionally.
    AttrAddSplit(delta_ns, b);
    return;
  }
  g_cur->stage_ns[kLatRnicLocal] += b.rnic_local_ns;
  g_cur->stage_ns[kLatPortQueue] += b.port_queue_ns;
  g_cur->stage_ns[kLatWire] += b.wire_ns;
  g_cur->stage_ns[kLatRnicRemote] += b.rnic_remote_ns;
  g_cur->stage_ns[kLatComplPoll] += b.compl_ns;
  // Past the request's one-way transport: server dispatch + handler +
  // reply post + reply flight, i.e. remote service as the caller saw it.
  g_cur->stage_ns[kLatRemoteSvc] += delta_ns - total;
}

bool AttrDetach(OpAttrRecord* out) {
  if (g_cur == nullptr) {
    out->active = false;
    return false;
  }
  *out = *g_cur;
  out->detached = false;
  g_cur->detached = true;
  return true;
}

LatencyAttr::KeySlot* LatencyAttr::Slot(const OpAttrRecord& rec) {
  std::string key = kLatPrefix;
  key += rec.op;
  key += '.';
  key += SizeClass(rec.bytes);
  key += rec.pri == 0 ? ".hi" : ".lo";

  std::lock_guard<std::mutex> lock(mu_);
  auto it = slots_.find(key);
  if (it != slots_.end()) {
    return &it->second;
  }
  KeySlot& slot = slots_[key];
  slot.e2e = registry_->GetHistogram(key + ".e2e");
  for (int s = 0; s < kLatStageCount; ++s) {
    slot.stages[s] = registry_->GetHistogram(key + '.' + kStageNames[s]);
  }
  return &slot;
}

void LatencyAttr::Commit(const OpAttrRecord& rec, uint64_t e2e_ns) {
  if (registry_ == nullptr || !rec.active) {
    return;
  }
  uint64_t stages[kLatStageCount];
  uint64_t sum = 0;
  for (int s = 0; s < kLatStageCount; ++s) {
    stages[s] = rec.stage_ns[s];
    sum += stages[s];
  }
  if (sum > e2e_ns) {
    // Async retirement measured some deltas on another thread's clock; scale
    // the vector down so conservation holds exactly.
    uint64_t scaled = 0;
    for (int s = 0; s < kLatStageCount; ++s) {
      stages[s] = ScaleToward(stages[s], e2e_ns, sum);
      scaled += stages[s];
    }
    sum = scaled;
  }
  stages[kLatOther] += e2e_ns - sum;

  KeySlot* slot = Slot(rec);
  slot->e2e->Record(e2e_ns);
  for (int s = 0; s < kLatStageCount; ++s) {
    // Zero stages are skipped (cheaper, and stage percentiles then describe
    // ops that actually passed through the stage); sums still conserve.
    if (stages[s] > 0) {
      slot->stages[s]->Record(stages[s]);
    }
  }
}

std::string LatencyAttr::DumpLatencyBreakdown(const MetricsSnapshot& snap) {
  // Group lite.lat.* histograms by key = everything before the final stage
  // suffix.
  struct Group {
    const HistogramSnapshot* e2e = nullptr;
    std::array<const HistogramSnapshot*, kLatStageCount> stages = {};
  };
  std::map<std::string, Group> groups;
  for (const auto& [name, h] : snap.histograms) {
    if (name.rfind(kLatPrefix, 0) != 0) {
      continue;
    }
    const size_t dot = name.rfind('.');
    const std::string key = name.substr(0, dot);
    const std::string stage = name.substr(dot + 1);
    Group& g = groups[key];
    if (stage == "e2e") {
      g.e2e = &h;
      continue;
    }
    for (int s = 0; s < kLatStageCount; ++s) {
      if (stage == kStageNames[s]) {
        g.stages[s] = &h;
        break;
      }
    }
  }

  std::ostringstream os;
  os << "Latency attribution waterfall (per-stage mean = stage ns summed over "
        "all ops / op count)\n";
  char line[160];
  for (const auto& [key, g] : groups) {
    if (g.e2e == nullptr || g.e2e->count == 0) {
      continue;
    }
    const double n = static_cast<double>(g.e2e->count);
    std::snprintf(line, sizeof(line),
                  "%s  n=%" PRIu64 "  e2e mean=%.0fns  p50=%" PRIu64 "  p99=%" PRIu64
                  "  p99.9=%" PRIu64 "\n",
                  key.c_str(), g.e2e->count, g.e2e->Mean(), g.e2e->Percentile(50),
                  g.e2e->Percentile(99), g.e2e->Percentile(99.9));
    os << line;
    uint64_t stage_sum = 0;
    for (int s = 0; s < kLatStageCount; ++s) {
      const HistogramSnapshot* h = g.stages[s];
      if (h == nullptr || h->count == 0) {
        continue;
      }
      stage_sum += h->sum;
      std::snprintf(line, sizeof(line), "  %-12s %10.0fns  %5.1f%%  (n=%" PRIu64 ")\n",
                    kStageNames[s], static_cast<double>(h->sum) / n,
                    100.0 * static_cast<double>(h->sum) / static_cast<double>(g.e2e->sum),
                    h->count);
      os << line;
    }
    std::snprintf(line, sizeof(line), "  %-12s %10.0fns  %5.1f%%\n", "= stages",
                  static_cast<double>(stage_sum) / n,
                  g.e2e->sum == 0
                      ? 0.0
                      : 100.0 * static_cast<double>(stage_sum) / static_cast<double>(g.e2e->sum));
    os << line;
  }
  return os.str();
}

std::vector<std::string> HealthWatchdog::Check(const MetricsSnapshot& snap) {
  std::vector<std::string> out;
  char buf[256];
  auto fail = [&](const char* fmt, uint64_t a, uint64_t b) {
    std::snprintf(buf, sizeof(buf), fmt, a, b);
    out.emplace_back(buf);
  };

  // 1. Engine op conservation: every op the engine accepted is either
  //    retired ok, retired failed, or still in flight.
  if (snap.values.count("lite.engine.ops") != 0) {
    const uint64_t issued = snap.ValueOr("lite.engine.ops");
    const uint64_t accounted = snap.ValueOr("lite.engine.ops_ok") +
                               snap.ValueOr("lite.engine.ops_failed") +
                               snap.ValueOr("lite.engine.in_flight");
    if (issued != accounted) {
      fail("engine op conservation: ops=%" PRIu64 " != ok+failed+in_flight=%" PRIu64, issued,
           accounted);
    }
  }

  // 2./3. RNIC post conservation: every posted WQE rang a doorbell or rode a
  //    batch, and is either signaled or unsignaled.
  if (snap.values.count("rnic.ops_posted") != 0) {
    const uint64_t posted = snap.ValueOr("rnic.ops_posted");
    const uint64_t db = snap.ValueOr("lite.rnic.doorbells") + snap.ValueOr("lite.rnic.wqes_batched");
    if (posted != db) {
      fail("doorbell conservation: ops_posted=%" PRIu64 " != doorbells+batched=%" PRIu64, posted,
           db);
    }
    const uint64_t sig =
        snap.ValueOr("lite.rnic.wqe_signaled") + snap.ValueOr("lite.rnic.wqe_unsignaled");
    if (posted != sig) {
      fail("signaling conservation: ops_posted=%" PRIu64 " != signaled+unsignaled=%" PRIu64,
           posted, sig);
    }
  }

  // 4. Ring crossing-batch conservation (per-CPU submission rings): every
  //    op that rode the rings is booked either into a closed epoch (the
  //    ops-per-crossing histogram) or a still-open one; every ring doorbell
  //    is a batched crossing; and every closed epoch closed exactly one
  //    batched crossing (ops == crossings x batch sum, amortized).
  if (snap.values.count("lite.ring.ops") != 0) {
    uint64_t epochs_closed = 0;
    uint64_t epoch_ops_closed = 0;
    auto hist = snap.histograms.find("lite.ring.ops_per_crossing");
    if (hist != snap.histograms.end()) {
      epochs_closed = hist->second.count;
      epoch_ops_closed = hist->second.sum;
    }
    const uint64_t ring_ops = snap.ValueOr("lite.ring.ops");
    const uint64_t open_ops = snap.ValueOr("lite.ring.open_epoch_ops");
    const uint64_t pending = snap.ValueOr("lite.ring.deferred_pending");
    if (ring_ops != epoch_ops_closed + open_ops) {
      fail("ring op conservation: lite.ring.ops=%" PRIu64
           " != closed-epoch ops + open-epoch ops=%" PRIu64,
           ring_ops, epoch_ops_closed + open_ops);
    }
    const uint64_t doorbells = snap.ValueOr("lite.ring.doorbells");
    const uint64_t batched = snap.ValueOr("os.crossings_batched");
    if (doorbells != batched) {
      fail("ring doorbell conservation: lite.ring.doorbells=%" PRIu64
           " != os.crossings_batched=%" PRIu64,
           doorbells, batched);
    }
    const uint64_t open_epochs = snap.ValueOr("lite.ring.open_epochs");
    if (epochs_closed + open_epochs != batched) {
      fail("ring epoch conservation: closed+open epochs=%" PRIu64
           " != os.crossings_batched=%" PRIu64,
           epochs_closed + open_epochs, batched);
    }
    if (static_cast<uint64_t>(snap.ValueOr("os.ops_batched")) != epoch_ops_closed) {
      fail("ring batch accounting: os.ops_batched=%" PRIu64 " != closed-epoch ops=%" PRIu64,
           snap.ValueOr("os.ops_batched"), epoch_ops_closed);
    }
    if (batched > static_cast<uint64_t>(snap.ValueOr("os.crossings"))) {
      fail("ring crossing accounting: os.crossings_batched=%" PRIu64 " > os.crossings=%" PRIu64,
           batched, snap.ValueOr("os.crossings"));
    }
    if (pending != 0) {
      fail("ring quiescence: %" PRIu64 " deferred submissions never drained (%" PRIu64
           " ring ops booked)",
           pending, ring_ops);
    }
  }

  // 5. Stage-sum conservation per lite.lat.* key: Commit() guarantees
  //    sum(stages) == e2e exactly, including retry/redirect/park detours.
  struct Sums {
    uint64_t e2e = 0;
    bool has_e2e = false;
    uint64_t stages = 0;
    uint64_t other = 0;
  };
  std::map<std::string, Sums> sums;
  for (const auto& [name, h] : snap.histograms) {
    if (name.rfind("lite.lat.", 0) != 0) {
      continue;
    }
    const size_t dot = name.rfind('.');
    Sums& s = sums[name.substr(0, dot)];
    const std::string stage = name.substr(dot + 1);
    if (stage == "e2e") {
      s.e2e = h.sum;
      s.has_e2e = true;
    } else {
      s.stages += h.sum;
      if (stage == "other") {
        s.other = h.sum;
      }
    }
  }
  for (const auto& [key, s] : sums) {
    if (!s.has_e2e) {
      out.emplace_back("latency attribution: " + key + " has stages but no e2e histogram");
      continue;
    }
    if (s.stages != s.e2e) {
      std::snprintf(buf, sizeof(buf),
                    "stage-sum conservation: %s stages=%" PRIu64 " != e2e=%" PRIu64, key.c_str(),
                    s.stages, s.e2e);
      out.emplace_back(buf);
    }
    // 6. Attribution quality: blocking one-sided ops are fully bracketed, so
    //    the unattributed remainder must stay a small fraction.
    const bool blocking_memop =
        key.rfind("lite.lat.write.", 0) == 0 || key.rfind("lite.lat.read.", 0) == 0;
    if (blocking_memop && s.e2e > 0 && s.other * 4 > s.e2e) {
      std::snprintf(buf, sizeof(buf), "attribution quality: %s other=%" PRIu64
                    " exceeds 25%% of e2e=%" PRIu64, key.c_str(), s.other, s.e2e);
      out.emplace_back(buf);
    }
  }
  return out;
}

// ---- Failure-dump registry ----

namespace {
std::mutex g_dump_mu;
std::map<const void*, std::function<std::string()>>& DumpMap() {
  static auto* m = new std::map<const void*, std::function<std::string()>>();
  return *m;
}
}  // namespace

void RegisterFailureDump(const void* key, std::function<std::string()> dump) {
  std::lock_guard<std::mutex> lock(g_dump_mu);
  DumpMap()[key] = std::move(dump);
}

void UnregisterFailureDump(const void* key) {
  std::lock_guard<std::mutex> lock(g_dump_mu);
  DumpMap().erase(key);
}

std::string CollectFailureDumps() {
  std::vector<std::function<std::string()>> dumps;
  {
    std::lock_guard<std::mutex> lock(g_dump_mu);
    for (const auto& [key, fn] : DumpMap()) {
      dumps.push_back(fn);
    }
  }
  std::string out;
  for (const auto& fn : dumps) {
    out += fn();
    out += '\n';
  }
  return out;
}

}  // namespace telemetry
}  // namespace lt
