// Per-node telemetry bundle: one metrics registry + one tracer, owned by
// lt::Node and shared by every component modeled on that node (OS, RNIC,
// fabric port, LITE instance). Snapshot/ToJson are the backing store for
// LiteClient::Stat ("LT_stat") and Cluster::DumpTelemetryJson.
#ifndef SRC_TELEMETRY_TELEMETRY_H_
#define SRC_TELEMETRY_TELEMETRY_H_

#include <string>

#include "src/telemetry/journal.h"
#include "src/telemetry/latency_attr.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/trace.h"

namespace lt {
namespace telemetry {

class NodeTelemetry {
 public:
  NodeTelemetry() { tracer_.SetJournal(&journal_); }

  // Tags the tracer (trace-id allocation) and journal with the node's id.
  void SetNodeId(uint32_t node) {
    tracer_.SetNodeId(node);
    journal_.SetNodeId(node);
  }

  Registry& registry() { return registry_; }
  const Registry& registry() const { return registry_; }
  Tracer& tracer() { return tracer_; }
  const Tracer& tracer() const { return tracer_; }
  Journal& journal() { return journal_; }
  const Journal& journal() const { return journal_; }
  LatencyAttr& latency() { return latency_; }

  // Metrics + committed trace spans as one JSON object.
  std::string ToJson() const;

 private:
  Registry registry_;
  Tracer tracer_;
  Journal journal_;
  LatencyAttr latency_{&registry_};
};

}  // namespace telemetry
}  // namespace lt

#endif  // SRC_TELEMETRY_TELEMETRY_H_
