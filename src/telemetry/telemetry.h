// Per-node telemetry bundle: one metrics registry + one tracer, owned by
// lt::Node and shared by every component modeled on that node (OS, RNIC,
// fabric port, LITE instance). Snapshot/ToJson are the backing store for
// LiteClient::Stat ("LT_stat") and Cluster::DumpTelemetryJson.
#ifndef SRC_TELEMETRY_TELEMETRY_H_
#define SRC_TELEMETRY_TELEMETRY_H_

#include <string>

#include "src/telemetry/metrics.h"
#include "src/telemetry/trace.h"

namespace lt {
namespace telemetry {

class NodeTelemetry {
 public:
  Registry& registry() { return registry_; }
  const Registry& registry() const { return registry_; }
  Tracer& tracer() { return tracer_; }
  const Tracer& tracer() const { return tracer_; }

  // Metrics + committed trace spans as one JSON object.
  std::string ToJson() const;

 private:
  Registry registry_;
  Tracer tracer_;
};

}  // namespace telemetry
}  // namespace lt

#endif  // SRC_TELEMETRY_TELEMETRY_H_
