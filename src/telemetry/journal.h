// Always-on flight recorder: a bounded lock-free per-node ring of compact
// binary events stamped with virtual time.
//
// The journal is the "black box" complement to the sampling tracer: it is
// never off, so after a chaos-soak assertion the last few thousand control
// events per node (op start/end, retries, QP recoveries, fault decisions,
// crash/restart, lease expiries, QoS throttles) are always available —
// Cluster::DumpJournal() merges the per-node rings by virtual time into one
// postmortem timeline.
//
// Cost contract: Record() is a handful of relaxed stores plus one release
// store into a preallocated slot — no locks, no allocation, and zero virtual
// time charged, so arming the journal cannot perturb measured latencies.
// Writers never wait; old events are overwritten once the ring wraps.
#ifndef SRC_TELEMETRY_JOURNAL_H_
#define SRC_TELEMETRY_JOURNAL_H_

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

namespace lt {
namespace telemetry {

// Event catalog. Mirrors docs/TELEMETRY.md; keep JournalEventName in sync.
enum class JournalEvent : uint16_t {
  kOpStart = 0,    // a = packed op name, b = op id
  kOpEnd,          // a = packed op name, b = op id
  kRpcRetry,       // a = target node, b = backoff ns just slept
  kOnesideRetry,   // a = target node, b = attempt index
  kQpRecover,      // a = peer node, b = (transport mode << 32) | qp number
                   //   (mode: 1 = rc, 2 = dc — see Transport::RecoverQp)
  kPeerDead,       // a = peer node
  kPeerAlive,      // a = peer node
  kLeaseExpire,    // a = expired node, b = ns since last keepalive
  kQosThrottle,    // a = priority, b = injected delay ns
  kFaultDrop,      // a = packed link (src<<32|dst), b = drop cause (DropCause)
  kFaultDup,       // a = packed link, b = duplicate extra delay ns
  kFaultDelay,     // a = packed link, b = injected delay ns
  kNodeCrash,      // a = crashed node
  kNodeRestart,    // a = restarted node
  kUnsignaledRecover,  // a = peer node, b = qp number (fire-and-forget path)
  kMigrateStart,       // a = name8(lmr name), b = (src<<32)|dst (PackLink)
  kMigratePhase,       // a = name8(lmr name), b = phase (MigrationPhase)
  kMigrateCommit,      // a = name8(lmr name), b = new epoch
  kMigrateAbort,       // a = name8(lmr name), b = phase reached before abort
  kStaleHomeNack,      // a = requesting node, b = epoch presented
  kCount
};

const char* JournalEventName(JournalEvent ev);

// Cause codes carried in kFaultDrop's `b` argument.
enum class DropCause : uint64_t {
  kRule = 0,       // probabilistic / count-based link rule
  kCrash = 1,      // src or dst crashed
  kPartition = 2,  // partition cut
};

// Packs the first 8 bytes of a NUL-terminated name into a uint64 so op names
// ride in a fixed-width event argument (unpacked by UnpackName8).
inline uint64_t PackName8(const char* name) {
  uint64_t v = 0;
  if (name != nullptr) {
    char buf[8] = {};
    size_t n = 0;
    while (n < sizeof(buf) && name[n] != '\0') {
      buf[n] = name[n];
      ++n;
    }
    std::memcpy(&v, buf, sizeof(v));
  }
  return v;
}

inline std::string UnpackName8(uint64_t v) {
  char buf[9] = {};
  std::memcpy(buf, &v, 8);
  return std::string(buf);
}

inline uint64_t PackLink(uint32_t src, uint32_t dst) {
  return (static_cast<uint64_t>(src) << 32) | dst;
}

// One decoded journal entry (snapshot-time representation).
struct JournalRecord {
  uint64_t t_ns = 0;      // virtual time of the event
  uint64_t a = 0;         // event-specific argument
  uint64_t b = 0;         // event-specific argument
  uint64_t index = 0;     // global per-journal sequence (monotonic)
  JournalEvent ev = JournalEvent::kCount;
  uint32_t node = 0;      // owning node id

  std::string ToJson() const;
};

class Journal {
 public:
  static constexpr size_t kDefaultCapacity = 4096;

  explicit Journal(size_t capacity = kDefaultCapacity);

  void SetNodeId(uint32_t node) { node_ = node; }
  uint32_t node_id() const { return node_; }
  size_t capacity() const { return capacity_; }

  // Records one event stamped with the current virtual time. Lock-free;
  // overwrites the oldest slot once the ring is full.
  void Record(JournalEvent ev, uint64_t a = 0, uint64_t b = 0);
  // Same, with an explicit timestamp (fault decisions stamp the transfer's
  // departure vtime, not the recorder thread's clock).
  void RecordAt(JournalEvent ev, uint64_t t_ns, uint64_t a = 0, uint64_t b = 0);

  // Total events ever recorded (including overwritten ones).
  uint64_t recorded() const { return head_.load(std::memory_order_relaxed); }
  // Events lost to ring wraparound.
  uint64_t overwritten() const;

  // Decodes the surviving window, oldest first. Skips slots caught mid-write
  // (snapshot is best-effort against concurrent writers, by design).
  std::vector<JournalRecord> Snapshot() const;

 private:
  // Slot protocol: writer claims an index via head_.fetch_add, fills the
  // payload fields (relaxed), then publishes seq = index + 1 with release.
  // The snapshot reader load-acquires seq before and after reading the
  // payload and discards the slot if it changed underneath it.
  struct Slot {
    std::atomic<uint64_t> seq{0};  // 0 = never written, else index + 1
    std::atomic<uint64_t> t_ns{0};
    std::atomic<uint64_t> a{0};
    std::atomic<uint64_t> b{0};
    std::atomic<uint16_t> ev{0};
  };

  const size_t capacity_;
  uint32_t node_ = 0;
  std::atomic<uint64_t> head_{0};
  std::unique_ptr<Slot[]> slots_;
};

// Merges per-node snapshots into one timeline ordered by (t_ns, node, index)
// and renders it as a JSON array (one object per event).
std::string MergeJournalsJson(const std::vector<const Journal*>& journals);

}  // namespace telemetry
}  // namespace lt

#endif  // SRC_TELEMETRY_JOURNAL_H_
