#include "src/telemetry/metrics.h"

#include <sstream>

namespace lt {
namespace telemetry {

uint64_t HistogramSnapshot::Percentile(double p) const {
  if (count == 0) {
    return 0;
  }
  if (p < 0.0) {
    p = 0.0;
  }
  if (p > 100.0) {
    p = 100.0;
  }
  const uint64_t rank = static_cast<uint64_t>(p / 100.0 * static_cast<double>(count - 1)) + 1;
  uint64_t est = buckets.empty() ? 0 : ((1ull << (buckets.size() - 1)) - 1);
  uint64_t seen = 0;
  for (size_t b = 0; b < buckets.size(); ++b) {
    seen += buckets[b];
    if (seen >= rank) {
      // Upper bound of bucket b: 2^b - 1 covers all values of bit-width b.
      est = b == 0 ? 0 : ((1ull << b) - 1);
      break;
    }
  }
  // Clamp the bucket-bound estimate to the true observed extrema so sparse
  // histograms report real values (one 4000-wide sample -> 4000, not 4095).
  if (est > max) {
    est = max;
  }
  if (est < min) {
    est = min;
  }
  return est;
}

HistogramSnapshot FixedHistogram::Snapshot() const {
  HistogramSnapshot s;
  s.buckets.resize(kBuckets);
  // Sum the buckets rather than trusting count_: a Record() racing this
  // snapshot may have bumped one but not the other, and the snapshot must be
  // internally consistent (count == sum of buckets).
  for (int b = 0; b < kBuckets; ++b) {
    s.buckets[b] = buckets_[b].load(std::memory_order_relaxed);
    s.count += s.buckets[b];
  }
  s.sum = sum_.load(std::memory_order_relaxed);
  if (s.count > 0) {
    s.min = min_.load(std::memory_order_relaxed);
    s.max = max_.load(std::memory_order_relaxed);
  }
  // Trim trailing empty buckets to keep snapshots/JSON compact.
  while (!s.buckets.empty() && s.buckets.back() == 0) {
    s.buckets.pop_back();
  }
  return s;
}

Counter* Registry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counter_index_.find(name);
  if (it != counter_index_.end()) {
    return it->second;
  }
  counters_.emplace_back();
  counter_index_[name] = &counters_.back();
  return &counters_.back();
}

Gauge* Registry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauge_index_.find(name);
  if (it != gauge_index_.end()) {
    return it->second;
  }
  gauges_.emplace_back();
  gauge_index_[name] = &gauges_.back();
  return &gauges_.back();
}

FixedHistogram* Registry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histogram_index_.find(name);
  if (it != histogram_index_.end()) {
    return it->second;
  }
  histograms_.emplace_back();
  histogram_index_[name] = &histograms_.back();
  return &histograms_.back();
}

void Registry::RegisterProbe(const std::string& name, Probe probe) {
  std::lock_guard<std::mutex> lock(mu_);
  probes_[name] = std::move(probe);
}

MetricsSnapshot Registry::Snapshot() const {
  MetricsSnapshot snap;
  std::map<std::string, Probe> probes;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, c] : counter_index_) {
      snap.values[name] = static_cast<int64_t>(c->value());
    }
    for (const auto& [name, g] : gauge_index_) {
      snap.values[name] = g->value();
    }
    for (const auto& [name, h] : histogram_index_) {
      snap.histograms[name] = h->Snapshot();
    }
    probes = probes_;
  }
  // Probes run outside the registry lock: they read foreign components that
  // may themselves take locks (LRU caches, ring maps).
  for (const auto& [name, probe] : probes) {
    snap.values[name] = static_cast<int64_t>(probe());
  }
  return snap;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string MetricsSnapshot::ToJson() const {
  std::ostringstream os;
  os << "{\"metrics\":{";
  bool first = true;
  for (const auto& [name, v] : values) {
    os << (first ? "" : ",") << '"' << JsonEscape(name) << "\":" << v;
    first = false;
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms) {
    os << (first ? "" : ",") << '"' << JsonEscape(name) << "\":{\"count\":" << h.count
       << ",\"sum\":" << h.sum << ",\"min\":" << h.min << ",\"max\":" << h.max
       << ",\"p50\":" << h.Percentile(50) << ",\"p99\":" << h.Percentile(99)
       << ",\"p999\":" << h.Percentile(99.9) << ",\"buckets\":[";
    for (size_t b = 0; b < h.buckets.size(); ++b) {
      os << (b == 0 ? "" : ",") << h.buckets[b];
    }
    os << "]}";
    first = false;
  }
  os << "}}";
  return os.str();
}

}  // namespace telemetry
}  // namespace lt
