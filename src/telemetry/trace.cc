#include "src/telemetry/trace.h"

#include <sstream>

#include "src/common/logging.h"
#include "src/common/timing.h"
#include "src/telemetry/journal.h"
#include "src/telemetry/metrics.h"

namespace lt {
namespace telemetry {

namespace {

// The thread's active span. A raw pointer into the owning ScopedSpan's stack
// frame; cleared before that frame unwinds.
thread_local TraceSpan* g_current_span = nullptr;

// Depth of ScopedSpans on this thread's stack, counting ones that declined to
// sample. Only the outermost (depth 0 -> 1) consults the sampler.
thread_local int g_span_depth = 0;

std::atomic<uint64_t> g_next_op_id{1};

}  // namespace

const char* TraceStageName(TraceStage stage) {
  switch (stage) {
    case TraceStage::kApiEntry:
      return "api_entry";
    case TraceStage::kSyscallCross:
      return "syscall_cross";
    case TraceStage::kLhCheck:
      return "lh_check";
    case TraceStage::kQosAdmit:
      return "qos_admit";
    case TraceStage::kRnicPost:
      return "rnic_post";
    case TraceStage::kNicCache:
      return "nic_cache";
    case TraceStage::kFabric:
      return "fabric";
    case TraceStage::kDma:
      return "dma";
    case TraceStage::kCompletion:
      return "completion";
    case TraceStage::kServerRecv:
      return "server_recv";
    case TraceStage::kServerReply:
      return "server_reply";
    case TraceStage::kStageCount:
      break;
  }
  return "unknown";
}

void TraceSpan::Stamp(TraceStage stage, uint64_t arg) {
  StampAt(stage, NowNs(), arg);
}

void TraceSpan::StampAt(TraceStage stage, uint64_t t_ns, uint64_t arg) {
  if (n_events >= kMaxEvents) {
    ++events_dropped;
    return;
  }
  events[n_events].stage = stage;
  events[n_events].t_ns = t_ns;
  events[n_events].arg = arg;
  ++n_events;
}

std::string TraceSpan::ToJson() const {
  std::ostringstream os;
  os << "{\"op_id\":" << op_id << ",\"op\":\"" << JsonEscape(op) << "\",\"trace_id\":" << trace_id
     << ",\"parent_trace_id\":" << parent_trace_id << ",\"node\":" << node;
  if (events_dropped != 0) {
    os << ",\"events_dropped\":" << events_dropped;
  }
  os << ",\"events\":[";
  for (int i = 0; i < n_events; ++i) {
    os << (i == 0 ? "" : ",") << "{\"stage\":\"" << TraceStageName(events[i].stage)
       << "\",\"t_ns\":" << events[i].t_ns << ",\"arg\":" << events[i].arg << "}";
  }
  os << "]}";
  return os.str();
}

TraceSpan* CurrentSpan() { return g_current_span; }

void Tracer::Commit(const TraceSpan& span) {
  LT_VLOG << "span " << span.op_id << " (" << span.op << "): " << span.n_events << " stages";
  if (span.events_dropped != 0) {
    events_dropped_.fetch_add(span.events_dropped, std::memory_order_relaxed);
  }
  std::lock_guard<std::mutex> lock(ring_mu_);
  if (ring_.size() < ring_capacity_) {
    ring_.push_back(span);
  } else {
    ring_[ring_next_ % ring_capacity_] = span;
    spans_dropped_.fetch_add(1, std::memory_order_relaxed);
  }
  ++ring_next_;
  committed_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<TraceSpan> Tracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(ring_mu_);
  if (ring_.size() < ring_capacity_) {
    return ring_;
  }
  // Full ring: ring_next_ points at the oldest slot.
  std::vector<TraceSpan> out;
  out.reserve(ring_capacity_);
  for (size_t i = 0; i < ring_capacity_; ++i) {
    out.push_back(ring_[(ring_next_ + i) % ring_capacity_]);
  }
  return out;
}

ScopedSpan::ScopedSpan(Tracer* tracer, const char* op) {
  // Nested spans are inert: the outermost layer that began a span owns the
  // op (sampled or not), and inner layers just stamp through CurrentSpan().
  // The depth guard keeps inner layers from re-rolling the sampler when the
  // outer layer declined — with two rolls per op, a 1-in-even stride
  // parity-locks onto the inner layer and the outer stages vanish from
  // every sampled span.
  if (tracer == nullptr || g_span_depth > 0) {
    return;
  }
  g_span_depth = 1;
  claimed_ = true;
  op_id_ = g_next_op_id.fetch_add(1, std::memory_order_relaxed);
  journal_ = tracer->journal();
  if (journal_ != nullptr) {
    op_name_packed_ = PackName8(op);
    journal_->Record(JournalEvent::kOpStart, op_name_packed_, op_id_);
  }
  if (!tracer->Sample()) {
    return;
  }
  tracer_ = tracer;
  active_ = true;
  span_.op_id = op_id_;
  span_.trace_id = tracer->AllocTraceId();
  span_.node = tracer->node_id();
  span_.op = op;
  g_current_span = &span_;
  span_.Stamp(TraceStage::kApiEntry);
}

ScopedSpan::~ScopedSpan() {
  if (claimed_) {
    g_span_depth = 0;
    if (journal_ != nullptr) {
      journal_->Record(JournalEvent::kOpEnd, op_name_packed_, op_id_);
    }
  }
  if (!active_) {
    return;
  }
  g_current_span = nullptr;
  tracer_->Commit(span_);
}

}  // namespace telemetry
}  // namespace lt
