#include "src/telemetry/chrome_trace.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>
#include <unordered_map>

#include "src/telemetry/metrics.h"

namespace lt {
namespace telemetry {

namespace {

// Display interval of a span: [first stamp, last stamp], with zero-length
// spans stretched by 1 ns so the B/E pair stays ordered after sorting.
uint64_t SpanStartNs(const TraceSpan& s) { return s.n_events > 0 ? s.events[0].t_ns : 0; }

uint64_t SpanEndNs(const TraceSpan& s) {
  const uint64_t start = SpanStartNs(s);
  const uint64_t last = s.n_events > 0 ? s.events[s.n_events - 1].t_ns : 0;
  return last > start ? last : start + 1;
}

const TraceEvent* FindStage(const TraceSpan& s, TraceStage stage) {
  for (int i = 0; i < s.n_events; ++i) {
    if (s.events[i].stage == stage) return &s.events[i];
  }
  return nullptr;
}

// Greedy interval partitioning: assigns each span (sorted by start) the
// first lane whose previous occupant already ended. Returns per-span lane
// offsets and the number of lanes used.
size_t PackLanes(const std::vector<const TraceSpan*>& spans, std::vector<uint32_t>* lane_of) {
  std::vector<size_t> order(spans.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return SpanStartNs(*spans[a]) < SpanStartNs(*spans[b]);
  });
  std::vector<uint64_t> lane_end;
  lane_of->assign(spans.size(), 0);
  for (size_t idx : order) {
    const uint64_t start = SpanStartNs(*spans[idx]);
    size_t lane = lane_end.size();
    for (size_t l = 0; l < lane_end.size(); ++l) {
      if (lane_end[l] <= start) {
        lane = l;
        break;
      }
    }
    if (lane == lane_end.size()) lane_end.push_back(0);
    lane_end[lane] = SpanEndNs(*spans[idx]);
    (*lane_of)[idx] = static_cast<uint32_t>(lane);
  }
  return lane_end.size();
}

std::string SpanArgsJson(const TraceSpan& s) {
  std::ostringstream os;
  os << "{\"op_id\":" << s.op_id << ",\"trace_id\":" << s.trace_id;
  if (s.parent_trace_id != 0) os << ",\"parent_trace_id\":" << s.parent_trace_id;
  if (s.events_dropped != 0) os << ",\"events_dropped\":" << s.events_dropped;
  os << "}";
  return os.str();
}

int PhRank(char ph) {
  switch (ph) {
    case 'M': return 0;
    case 'E': return 1;
    case 's': return 2;
    case 'B': return 3;
    case 'f': return 4;
    default: return 5;  // 'i'
  }
}

void AddMeta(std::vector<ChromeEvent>* out, uint32_t pid, uint32_t tid, const char* key,
             const std::string& value, bool thread_scoped) {
  ChromeEvent m;
  m.ph = 'M';
  m.name = key;
  m.pid = pid;
  m.tid = tid;
  m.args_json = std::string("{\"name\":\"") + JsonEscape(value) + "\"}";
  if (!thread_scoped) m.tid = 0;
  out->push_back(m);
}

}  // namespace

std::vector<ChromeEvent> BuildChromeEvents(const std::vector<TraceSpan>& spans,
                                           const std::vector<JournalRecord>& journal) {
  std::vector<ChromeEvent> out;

  // Lane assignment: per node, client spans and server spans in separate
  // pools (ServiceTimeline makes server spans overlap freely in vtime).
  std::map<uint32_t, std::vector<const TraceSpan*>> client_pool, server_pool;
  for (const TraceSpan& s : spans) {
    if (s.n_events == 0) continue;
    (s.parent_trace_id != 0 ? server_pool : client_pool)[s.node].push_back(&s);
  }
  std::unordered_map<const TraceSpan*, uint32_t> tid_of;
  std::map<uint32_t, std::pair<size_t, size_t>> lanes_used;  // pid -> (client, server)
  for (auto& [pid, pool] : client_pool) {
    std::vector<uint32_t> lane;
    lanes_used[pid].first = PackLanes(pool, &lane);
    for (size_t i = 0; i < pool.size(); ++i) tid_of[pool[i]] = kClientLaneBase + lane[i];
  }
  for (auto& [pid, pool] : server_pool) {
    std::vector<uint32_t> lane;
    lanes_used[pid].second = PackLanes(pool, &lane);
    for (size_t i = 0; i < pool.size(); ++i) tid_of[pool[i]] = kServerLaneBase + lane[i];
  }

  // Slices: one B/E pair per span, intermediate stages as thread instants.
  for (const TraceSpan& s : spans) {
    if (s.n_events == 0) continue;
    const uint32_t tid = tid_of[&s];
    ChromeEvent b;
    b.ph = 'B';
    b.name = s.op;
    b.ts_ns = SpanStartNs(s);
    b.pid = s.node;
    b.tid = tid;
    b.args_json = SpanArgsJson(s);
    out.push_back(b);
    for (int i = 1; i + 1 < s.n_events; ++i) {
      ChromeEvent st;
      st.ph = 'i';
      st.name = TraceStageName(s.events[i].stage);
      st.cat = "stage";
      st.ts_ns = s.events[i].t_ns;
      st.pid = s.node;
      st.tid = tid;
      std::ostringstream args;
      args << "{\"arg\":" << s.events[i].arg << "}";
      st.args_json = args.str();
      out.push_back(st);
    }
    ChromeEvent e;
    e.ph = 'E';
    e.name = s.op;
    e.ts_ns = SpanEndNs(s);
    e.pid = s.node;
    e.tid = tid;
    out.push_back(e);
  }

  // Flow edges joining each server span to its client parent.
  std::unordered_map<uint64_t, const TraceSpan*> by_trace_id;
  for (const TraceSpan& s : spans) {
    if (s.trace_id != 0 && s.parent_trace_id == 0 && s.n_events > 0) by_trace_id[s.trace_id] = &s;
  }
  for (const TraceSpan& s : spans) {
    if (s.parent_trace_id == 0 || s.n_events == 0) continue;
    auto it = by_trace_id.find(s.parent_trace_id);
    if (it == by_trace_id.end()) continue;  // client span lost to ring wrap
    const TraceSpan& cl = *it->second;
    const TraceEvent* post = FindStage(cl, TraceStage::kRnicPost);
    const TraceEvent* done = FindStage(cl, TraceStage::kCompletion);
    const uint64_t req_id = s.parent_trace_id * 2;
    ChromeEvent fs;  // request: client -> server
    fs.ph = 's';
    fs.name = "rpc_req";
    fs.cat = "rpc_flow";
    fs.ts_ns = post != nullptr ? post->t_ns : SpanStartNs(cl);
    fs.pid = cl.node;
    fs.tid = tid_of[&cl];
    fs.id = req_id;
    out.push_back(fs);
    ChromeEvent ff = fs;
    ff.ph = 'f';
    ff.flow_end = true;
    ff.ts_ns = SpanStartNs(s);
    ff.pid = s.node;
    ff.tid = tid_of[&s];
    out.push_back(ff);
    ChromeEvent rs;  // reply: server -> client
    rs.ph = 's';
    rs.name = "rpc_rep";
    rs.cat = "rpc_flow";
    rs.ts_ns = SpanEndNs(s) > SpanStartNs(s) + 1 ? s.events[s.n_events - 1].t_ns : SpanStartNs(s);
    rs.pid = s.node;
    rs.tid = tid_of[&s];
    rs.id = req_id + 1;
    out.push_back(rs);
    ChromeEvent rf = rs;
    rf.ph = 'f';
    rf.flow_end = true;
    rf.ts_ns = done != nullptr ? done->t_ns : SpanEndNs(cl);
    rf.pid = cl.node;
    rf.tid = tid_of[&cl];
    out.push_back(rf);
  }

  // Journal events: thread-scoped instants on each node's lane 0.
  std::map<uint32_t, bool> journal_pids;
  for (const JournalRecord& r : journal) {
    ChromeEvent ev;
    ev.ph = 'i';
    ev.name = JournalEventName(r.ev);
    ev.cat = "journal";
    ev.ts_ns = r.t_ns;
    ev.pid = r.node;
    ev.tid = kJournalLane;
    std::ostringstream args;
    if (r.ev == JournalEvent::kOpStart || r.ev == JournalEvent::kOpEnd) {
      args << "{\"op\":\"" << JsonEscape(UnpackName8(r.a)) << "\",\"op_id\":" << r.b << "}";
    } else {
      args << "{\"a\":" << r.a << ",\"b\":" << r.b << "}";
    }
    ev.args_json = args.str();
    out.push_back(ev);
    journal_pids[r.node] = true;
  }

  // Metadata: readable process / lane names.
  std::map<uint32_t, bool> pids;
  for (auto& [pid, unused] : lanes_used) pids[pid] = true;
  for (auto& [pid, unused] : journal_pids) pids[pid] = true;
  for (auto& [pid, unused] : pids) {
    AddMeta(&out, pid, 0, "process_name", "node " + std::to_string(pid), false);
    AddMeta(&out, pid, kJournalLane, "thread_name", "journal", true);
    auto it = lanes_used.find(pid);
    if (it != lanes_used.end()) {
      for (size_t l = 0; l < it->second.first; ++l) {
        AddMeta(&out, pid, kClientLaneBase + static_cast<uint32_t>(l), "thread_name",
                "ops-" + std::to_string(l), true);
      }
      for (size_t l = 0; l < it->second.second; ++l) {
        AddMeta(&out, pid, kServerLaneBase + static_cast<uint32_t>(l), "thread_name",
                "handlers-" + std::to_string(l), true);
      }
    }
  }

  std::stable_sort(out.begin(), out.end(), [](const ChromeEvent& a, const ChromeEvent& b) {
    if ((a.ph == 'M') != (b.ph == 'M')) return a.ph == 'M';
    if (a.ts_ns != b.ts_ns) return a.ts_ns < b.ts_ns;
    return PhRank(a.ph) < PhRank(b.ph);
  });
  return out;
}

std::string ChromeTraceJson(const std::vector<ChromeEvent>& events) {
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const ChromeEvent& e : events) {
    if (!first) os << ",";
    first = false;
    os << "\n  {\"name\":\"" << JsonEscape(e.name) << "\",\"cat\":\"" << JsonEscape(e.cat)
       << "\",\"ph\":\"" << e.ph << "\",\"pid\":" << e.pid << ",\"tid\":" << e.tid;
    if (e.ph != 'M') {
      char ts[64];
      std::snprintf(ts, sizeof(ts), "%.3f", static_cast<double>(e.ts_ns) / 1000.0);
      os << ",\"ts\":" << ts;
    }
    if (e.ph == 's' || e.ph == 'f') {
      os << ",\"id\":" << e.id;
      if (e.ph == 'f' && e.flow_end) os << ",\"bp\":\"e\"";
    }
    if (e.ph == 'i') os << ",\"s\":\"t\"";
    if (!e.args_json.empty()) os << ",\"args\":" << e.args_json;
    os << "}";
  }
  os << "\n],\"displayTimeUnit\":\"ns\"}\n";
  return os.str();
}

bool WriteChromeTrace(const std::string& path, const std::vector<TraceSpan>& spans,
                      const std::vector<JournalRecord>& journal) {
  const std::string json = ChromeTraceJson(BuildChromeEvents(spans, journal));
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const size_t wrote = std::fwrite(json.data(), 1, json.size(), f);
  const bool ok = std::fclose(f) == 0 && wrote == json.size();
  return ok;
}

}  // namespace telemetry
}  // namespace lt
