// Cluster-wide metrics registry (paper Sec. 3, 7: the kernel's global
// visibility into shared RDMA resources — QPs, MR caches, rings — is what
// enables LITE's sharing and QoS policies; this layer makes that visibility
// a first-class, queryable artifact).
//
// Design rules:
//   * Hot-path instruments (Counter::Inc, Gauge::Add, FixedHistogram::Record)
//     are single relaxed atomic RMWs — no mutex per increment, ever.
//   * Registration/lookup by name takes a mutex but happens once per metric
//     (components cache the returned pointer); pointers stay valid for the
//     registry's lifetime (node-stable storage).
//   * Probes are zero-hot-path-cost metrics: a callback reading an existing
//     counter (LRU hit counts, port byte counts, CPU meters) evaluated only
//     at snapshot time.
//   * Snapshot() returns a self-consistent copy; JSON export is built on it.
#ifndef SRC_TELEMETRY_METRICS_H_
#define SRC_TELEMETRY_METRICS_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace lt {
namespace telemetry {

// Monotonic counter.
class Counter {
 public:
  void Inc(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Instantaneous signed level (occupancy, bytes in flight).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Snapshot of a FixedHistogram: immutable copy safe to read/percentile.
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  // True extrema of all recorded samples (both 0 when count == 0). Percentile
  // estimates are clamped into [min, max] so a lone 4000-wide sample reports
  // 4000, not its 4095 bucket upper bound.
  uint64_t min = 0;
  uint64_t max = 0;
  // bucket[i] counts samples v with bit_width(v) == i, i.e. v in
  // [2^(i-1), 2^i) for i >= 1 and v == 0 for i == 0.
  std::vector<uint64_t> buckets;

  double Mean() const {
    return count == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(count);
  }
  // Upper-bound estimate of the p-th percentile (p in [0, 100]), clamped to
  // the true observed [min, max].
  uint64_t Percentile(double p) const;
};

// Fixed-bucket (power-of-two) latency/size histogram. Record() is three
// relaxed atomic adds; bucket boundaries never move, so concurrent Record and
// Snapshot are both safe and cheap.
class FixedHistogram {
 public:
  static constexpr int kBuckets = 64;

  void Record(uint64_t v) {
    int b = 0;
    while ((v >> b) != 0 && b < kBuckets - 1) {
      ++b;
    }
    buckets_[b].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    uint64_t cur = min_.load(std::memory_order_relaxed);
    while (v < cur && !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
    cur = max_.load(std::memory_order_relaxed);
    while (v > cur && !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  HistogramSnapshot Snapshot() const;

 private:
  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{~0ull};
  std::atomic<uint64_t> max_{0};
};

// One node's metric snapshot: scalar metrics (counters, gauges, probes) plus
// histogram snapshots, keyed by registered name.
struct MetricsSnapshot {
  std::map<std::string, int64_t> values;
  std::map<std::string, HistogramSnapshot> histograms;

  // Convenience: value of `name`, or `fallback` if absent.
  int64_t ValueOr(const std::string& name, int64_t fallback = 0) const {
    auto it = values.find(name);
    return it == values.end() ? fallback : it->second;
  }
  std::string ToJson() const;
};

// Per-node metric registry. Get* registers on first use and returns a stable
// pointer; callers keep the pointer and never look the name up again.
class Registry {
 public:
  using Probe = std::function<uint64_t()>;

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  FixedHistogram* GetHistogram(const std::string& name);

  // Registers a read-on-snapshot metric backed by an existing source (LRU
  // cache counters, port byte counts, CPU meters). Replaces any previous
  // probe under the same name.
  void RegisterProbe(const std::string& name, Probe probe);

  MetricsSnapshot Snapshot() const;

 private:
  mutable std::mutex mu_;
  // std::deque gives node-stable element addresses under growth.
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<FixedHistogram> histograms_;
  std::map<std::string, Counter*> counter_index_;
  std::map<std::string, Gauge*> gauge_index_;
  std::map<std::string, FixedHistogram*> histogram_index_;
  std::map<std::string, Probe> probes_;
};

// Minimal JSON string escaping for metric names / trace labels.
std::string JsonEscape(const std::string& s);

}  // namespace telemetry
}  // namespace lt

#endif  // SRC_TELEMETRY_METRICS_H_
