// Chrome trace-event export: converts stitched TraceSpans + flight-recorder
// journal events into the JSON the chrome://tracing / Perfetto UI loads.
//
// Mapping: pid = simulated node, tid = a display lane. Spans become B/E
// slice pairs; because handler workers rewind their virtual clocks between
// requests (ServiceTimeline), two spans recorded by one thread can overlap
// in virtual time — so lanes are assigned by greedy interval partitioning
// (per node, client ops and server handler spans in separate lane pools),
// which preserves the B/E stack discipline viewers require. Server spans
// are joined to the client span that caused them with flow events ("s"/"f")
// keyed by the wire trace id, and journal events render as thread-scoped
// instants on a dedicated lane 0.
//
// BuildChromeEvents is exposed at the struct level (not just as a file
// writer) so tests can assert well-formedness — balanced B/E per lane,
// monotonic timestamps — without a JSON parser.
#ifndef SRC_TELEMETRY_CHROME_TRACE_H_
#define SRC_TELEMETRY_CHROME_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/telemetry/journal.h"
#include "src/telemetry/trace.h"

namespace lt {
namespace telemetry {

struct ChromeEvent {
  std::string name;
  std::string cat = "lite";
  char ph = 'i';          // B, E, s, f, i, M
  uint64_t ts_ns = 0;     // serialized as microseconds (ts = ns / 1000.0)
  uint32_t pid = 0;       // node id
  uint32_t tid = 0;       // display lane
  uint64_t id = 0;        // flow id (ph 's'/'f' only)
  bool flow_end = false;  // emit bp:"e" (ph 'f' only)
  std::string args_json;  // preformatted {"k":v,...} or empty
};

// Lane pools within each node's pid.
constexpr uint32_t kJournalLane = 0;      // journal instants
constexpr uint32_t kClientLaneBase = 1;   // client-side op spans
constexpr uint32_t kServerLaneBase = 101; // server-side handler spans

// Converts spans from every node (span.node = pid) plus merged journal
// records into a sorted, well-formed event list. Flow events are emitted for
// each server span whose parent_trace_id matches a client span's trace_id:
// id = parent_trace_id * 2 for the request edge, * 2 + 1 for the reply edge.
std::vector<ChromeEvent> BuildChromeEvents(const std::vector<TraceSpan>& spans,
                                           const std::vector<JournalRecord>& journal);

// Renders events as {"traceEvents":[...],"displayTimeUnit":"ns"}.
std::string ChromeTraceJson(const std::vector<ChromeEvent>& events);

// BuildChromeEvents + ChromeTraceJson + write to `path`. False on I/O error.
bool WriteChromeTrace(const std::string& path, const std::vector<TraceSpan>& spans,
                      const std::vector<JournalRecord>& journal);

}  // namespace telemetry
}  // namespace lt

#endif  // SRC_TELEMETRY_CHROME_TRACE_H_
