// Per-op latency attribution ("where did my microsecond go").
//
// Every LITE op — blocking memop, async memop, RPC, atomic — carries one
// OpAttrRecord from API entry to retirement. The op engine brackets each
// clock-advancing call on the issuing thread and adds the *virtual-time
// delta* to one stage slot; waits whose delta spans the whole remote round
// trip are split across the transport stages proportionally to a per-WQE
// breakdown the RNIC model computes from its absolute event timestamps.
// At retirement the record commits into per-(op-type, size-class, priority)
// stage histograms named `lite.lat.<op>.<size>.<pri>.<stage>` in the node's
// metric registry, so LT_stat / DumpTelemetryJson / check_bench.py see them
// with no extra plumbing.
//
// Cost rules (this must stay always-on without moving fig06 by a byte):
//   * no SpinFor/IdleFor/SyncTo* anywhere in this module — only NowNs()
//     reads, arithmetic, and relaxed atomics inside FixedHistogram::Record;
//   * stamping is thread-local pointer writes; commit is a dozen histogram
//     records plus one mutex-guarded name lookup per *new* key.
//
// Conservation: stages are measured as deltas of the issuing thread's own
// clock, so their sum tracks end-to-end by construction. Async retirement
// can observe deltas on a different thread's clock; Commit() therefore
// proportionally rescales the stage vector if it exceeds the measured
// end-to-end and books the (nonnegative) remainder as `other` — giving
// sum(stages) == e2e exactly, always, which HealthWatchdog checks.
#ifndef SRC_TELEMETRY_LATENCY_ATTR_H_
#define SRC_TELEMETRY_LATENCY_ATTR_H_

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/telemetry/metrics.h"

namespace lt {
namespace telemetry {

// Stage slots of one op's latency budget. Order is the waterfall order.
enum LatStage {
  kLatCross = 0,     // User/kernel crossing (LiteClient syscall model).
  kLatSubmit,        // Map check, lh lookup, permission check.
  kLatQosWait,       // QoS admission wait (priority gate).
  kLatEngineQueue,   // Async window backpressure / RPC ring-full wait.
  kLatPost,          // WQE build + doorbell charge + local copies.
  kLatRnicLocal,     // Local RNIC processing (engine reservation, caches).
  kLatPortQueue,     // Fabric port queueing delay (TX + RX serialization).
  kLatWire,          // Wire: serialization at line rate + propagation.
  kLatRnicRemote,    // Remote RNIC processing + ack generation.
  kLatRemoteSvc,     // Remote handler service time (RPC dispatch/NACK).
  kLatComplPoll,     // Completion generation + poll/wakeup on the caller.
  kLatRetire,        // Handle retirement bookkeeping (async consume).
  kLatDetour,        // Retry backoff, timeout waits, stale-home redirects.
  kLatOther,         // Commit-time remainder; never stamped directly.
  kLatStageCount,
};

// Short metric-name suffix for a stage ("cross", "wire", ...).
const char* LatStageName(int stage);

// Transport-stage decomposition of one WQE's round trip, computed by the
// RNIC model from its absolute virtual timestamps and carried back on the
// Completion. Used only as *proportions* to split a measured wait delta.
struct WqeLatBreakdown {
  uint64_t rnic_local_ns = 0;
  uint64_t port_queue_ns = 0;
  uint64_t wire_ns = 0;
  uint64_t rnic_remote_ns = 0;
  uint64_t compl_ns = 0;

  uint64_t Total() const {
    return rnic_local_ns + port_queue_ns + wire_ns + rnic_remote_ns + compl_ns;
  }
  void Add(const WqeLatBreakdown& o) {
    rnic_local_ns += o.rnic_local_ns;
    port_queue_ns += o.port_queue_ns;
    wire_ns += o.wire_ns;
    rnic_remote_ns += o.rnic_remote_ns;
    compl_ns += o.compl_ns;
  }
};

// One op's in-flight attribution state. Lives on the stack inside
// ScopedOpAttr for blocking ops; copied into the engine's AsyncOp (via
// AttrDetach) for ops that retire later on another thread.
struct OpAttrRecord {
  bool active = false;    // A claimed, committable record.
  bool detached = false;  // Ownership moved to an async op; scope won't commit.
  const char* op = "";    // "write", "read", "rpc", "atomic", "awrite", ...
  uint64_t bytes = 0;
  int pri = 0;  // 0 = high, else low.
  uint64_t start_ns = 0;
  uint64_t stage_ns[kLatStageCount] = {};
};

class LatencyAttr;

// Installs `rec` as the calling thread's current attribution record if no op
// is already being attributed (outermost API call claims; nested internal
// calls — e.g. a control RPC issued inside a memop — stay inert, mirroring
// ScopedSpan). On destruction commits `now - start` as end-to-end unless the
// record was detached to an async op.
class ScopedOpAttr {
 public:
  ScopedOpAttr(LatencyAttr* sink, const char* op, uint64_t bytes, int pri);
  ~ScopedOpAttr();

  ScopedOpAttr(const ScopedOpAttr&) = delete;
  ScopedOpAttr& operator=(const ScopedOpAttr&) = delete;

 private:
  LatencyAttr* sink_ = nullptr;
  OpAttrRecord rec_;
  bool owner_ = false;
};

// Temporarily suspends attribution on this thread. Used around work done on
// behalf of a *different* op (retiring the oldest async op while issuing a
// new one) so its stamps don't leak into the current record; the caller
// brackets the whole suspended region into one stage itself.
class AttrPause {
 public:
  AttrPause();
  ~AttrPause();

  AttrPause(const AttrPause&) = delete;
  AttrPause& operator=(const AttrPause&) = delete;

 private:
  OpAttrRecord* saved_;
};

// Temporarily installs an async op's detached record as this thread's
// current record (saving any previous one), so stamps during retirement
// (e.g. the RPC reply wait) land on the op being retired.
class AttrAdoptScope {
 public:
  explicit AttrAdoptScope(OpAttrRecord* rec);
  ~AttrAdoptScope();

  AttrAdoptScope(const AttrAdoptScope&) = delete;
  AttrAdoptScope& operator=(const AttrAdoptScope&) = delete;

 private:
  OpAttrRecord* saved_;
};

// Adds `delta_ns` to one stage of the current record (no-op when none).
void AttrAdd(LatStage stage, uint64_t delta_ns);

// Splits a wait delta across the transport stages (rnic_local, port_queue,
// wire, rnic_remote, compl_poll) proportionally to `b`. A zero breakdown
// books the whole delta as completion-poll time; integer rounding leftovers
// go there too.
void AttrAddSplit(uint64_t delta_ns, const WqeLatBreakdown& b);

// RPC reply wait: the request's transport components in `b` are booked
// verbatim (capped at `delta_ns`); whatever the delta holds beyond them is
// remote service time — the server-side dispatch, handler, and reply post.
void AttrAddRpcWait(uint64_t delta_ns, const WqeLatBreakdown& b);

// Moves the current record into `*out` (for async ops that retire later)
// and marks the scope's copy detached so it won't double-commit. Returns
// false (and deactivates `*out`) when this thread has no current record.
bool AttrDetach(OpAttrRecord* out);

// The per-node sink: resolves (op, size-class, pri) keys to stage histogram
// arrays in the node's Registry and commits finished records.
class LatencyAttr {
 public:
  explicit LatencyAttr(Registry* registry) : registry_(registry) {}

  LatencyAttr(const LatencyAttr&) = delete;
  LatencyAttr& operator=(const LatencyAttr&) = delete;

  // Books `rec` with the given end-to-end time. Rescales the stage vector
  // proportionally if it exceeds e2e (cross-thread-clock skew on async
  // retirement) and books the remainder as `other`, so the committed stages
  // always sum to exactly `e2e_ns`.
  void Commit(const OpAttrRecord& rec, uint64_t e2e_ns);

  // Human-readable per-key stage waterfall built from any snapshot that
  // contains lite.lat.* histograms.
  static std::string DumpLatencyBreakdown(const MetricsSnapshot& snap);

  // "64B", "4K", "big", ... — power-of-8-ish op size buckets.
  static const char* SizeClass(uint64_t bytes);

 private:
  struct KeySlot {
    FixedHistogram* e2e = nullptr;
    std::array<FixedHistogram*, kLatStageCount> stages = {};
  };

  KeySlot* Slot(const OpAttrRecord& rec);

  Registry* const registry_;
  std::mutex mu_;
  std::map<std::string, KeySlot> slots_;
};

// Snapshot-time conservation checker. Returns one human-readable line per
// violated invariant (empty = healthy). Meaningful on a quiesced cluster:
// counters are read non-atomically with respect to in-flight ops.
class HealthWatchdog {
 public:
  static std::vector<std::string> Check(const MetricsSnapshot& snap);
};

// ---- Failure-dump registry (gtest listener support) ----
// Live clusters register a dump callback (the vtime-merged journal); the
// custom gtest main prints every registered dump when a test fails.
void RegisterFailureDump(const void* key, std::function<std::string()> dump);
void UnregisterFailureDump(const void* key);
std::string CollectFailureDumps();

}  // namespace telemetry
}  // namespace lt

#endif  // SRC_TELEMETRY_LATENCY_ATTR_H_
