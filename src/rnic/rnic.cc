#include "src/rnic/rnic.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "src/common/logging.h"
#include "src/common/annotations.h"
#include "src/common/timing.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/trace.h"

namespace lt {
namespace {

constexpr uint64_t kRnrTimeoutNs = 2'000'000'000;  // Receiver-not-ready give-up.
constexpr uint64_t kOneSidedHeaderBytes = 30;      // Request header on the wire.

uint64_t MttKey(uint32_t lkey, uint64_t vpage) {
  return (static_cast<uint64_t>(lkey) << 36) ^ vpage;
}

// Per-thread doorbell batch tracker: consecutive hinted posts to the same QP
// within rnic_doorbell_window_ns share one doorbell. The rnic/qpn fields are
// used for identity comparison only and are never dereferenced (the tracked
// RNIC may outlive a test cluster).
struct DoorbellBatch {
  const Rnic* rnic = nullptr;
  uint32_t qpn = 0;
  uint64_t last_post_ns = 0;
  uint32_t len = 0;  // WQEs under the current doorbell (0 = untracked post).
};
thread_local DoorbellBatch tl_doorbell;

// Transport breakdown of this thread's most recent PostSend (latency
// attribution). Execute* fill it from the same absolute timestamps they
// compute the completion's ready time from; PushSendCompletion copies it
// onto the CQE, and unsignaled posters read it via LastPostBreakdown().
thread_local telemetry::WqeLatBreakdown tl_last_lat;

}  // namespace

// ---------------------------------------------------------------- directory

void RnicDirectory::Register(NodeId node, Rnic* rnic) {
  std::lock_guard<SpinLock> lock(mu_);
  if (rnics_.size() <= node) {
    rnics_.resize(node + 1, nullptr);
  }
  rnics_[node] = rnic;
}

Rnic* RnicDirectory::Lookup(NodeId node) const {
  std::lock_guard<SpinLock> lock(mu_);
  if (node >= rnics_.size()) {
    return nullptr;
  }
  return rnics_[node];
}

// ----------------------------------------------------------------------- cq

std::optional<Completion> Cq::TryPoll() {
  const uint64_t now = NowNs();
  std::lock_guard<std::mutex> lock(mu_);
  auto best = entries_.end();
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->ready_at_ns <= now && (best == entries_.end() || it->ready_at_ns < best->ready_at_ns)) {
      best = it;
    }
  }
  if (best == entries_.end()) {
    return std::nullopt;
  }
  Completion c = *best;
  entries_.erase(best);
  return c;
}

std::optional<Completion> Cq::WaitPoll(uint64_t timeout_ns, WaitMode mode,
                                       uint64_t adaptive_budget_ns) {
  Completion c;
  {
    std::unique_lock<std::mutex> lock(mu_);
    bool ok = cv_.wait_for(lock, std::chrono::nanoseconds(timeout_ns),
                           [this] { return !entries_.empty() || shutdown_; });
    if (!ok || entries_.empty()) {
      // Timed out (or shut down). The virtual clock is NOT advanced: an idle
      // waiter's clock stays put and jumps forward on its next event; callers
      // that need elapsed-timeout semantics charge it themselves.
      return std::nullopt;
    }
    // Take the entry with the earliest virtual ready time.
    auto best = entries_.begin();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->ready_at_ns < best->ready_at_ns) {
        best = it;
      }
    }
    c = *best;
    entries_.erase(best);
  }
  switch (mode) {
    case WaitMode::kBusyPoll:
      SyncToBusy(c.ready_at_ns);
      break;
    case WaitMode::kSleep:
      SyncToIdle(c.ready_at_ns);
      break;
    case WaitMode::kAdaptive:
      SyncToAdaptive(c.ready_at_ns, adaptive_budget_ns);
      break;
  }
  return c;
}

std::optional<Completion> Cq::WaitPollFor(uint64_t wr_id, uint64_t timeout_ns, WaitMode mode,
                                          uint64_t adaptive_budget_ns) {
  const uint64_t real_deadline = RealNowNs() + timeout_ns;
  Completion c;
  {
    std::unique_lock<std::mutex> lock(mu_);
    while (true) {
      auto it = entries_.begin();
      for (; it != entries_.end(); ++it) {
        if (it->wr_id == wr_id) {
          break;
        }
      }
      if (it != entries_.end()) {
        c = *it;
        entries_.erase(it);
        break;
      }
      if (shutdown_) {
        return std::nullopt;
      }
      uint64_t now = RealNowNs();
      if (now >= real_deadline) {
        return std::nullopt;
      }
      cv_.wait_for(lock, std::chrono::nanoseconds(real_deadline - now));
    }
  }
  switch (mode) {
    case WaitMode::kBusyPoll:
      SyncToBusy(c.ready_at_ns);
      break;
    case WaitMode::kSleep:
      SyncToIdle(c.ready_at_ns);
      break;
    case WaitMode::kAdaptive:
      SyncToAdaptive(c.ready_at_ns, adaptive_budget_ns);
      break;
  }
  return c;
}

std::optional<Completion> Cq::TryTake(uint64_t wr_id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->wr_id == wr_id) {
      Completion c = *it;
      entries_.erase(it);
      return c;
    }
  }
  return std::nullopt;
}

void Cq::Push(Completion completion) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    entries_.push_back(std::move(completion));
  }
  cv_.notify_all();
}

size_t Cq::Depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

void Cq::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
}

// ----------------------------------------------------------------------- qp

Status Qp::PostRecv(const Rqe& rqe) {
  {
    std::lock_guard<std::mutex> lock(rq_mu_);
    rq_.push_back(rqe);
  }
  rq_cv_.notify_all();
  return Status::Ok();
}

std::optional<Rqe> Qp::TakeRecv() {
  std::lock_guard<std::mutex> lock(rq_mu_);
  if (rq_.empty()) {
    return std::nullopt;
  }
  Rqe rqe = rq_.front();
  rq_.pop_front();
  return rqe;
}

std::optional<Rqe> Qp::TakeRecvWait(uint64_t real_timeout_ns) {
  std::unique_lock<std::mutex> lock(rq_mu_);
  if (!rq_cv_.wait_for(lock, std::chrono::nanoseconds(real_timeout_ns),
                       [this] { return !rq_.empty(); })) {
    return std::nullopt;
  }
  Rqe rqe = rq_.front();
  rq_.pop_front();
  return rqe;
}

size_t Qp::RecvDepth() const {
  std::lock_guard<std::mutex> lock(rq_mu_);
  return rq_.size();
}

// --------------------------------------------------------------------- rnic

Rnic::Rnic(NodeId node, const SimParams& params, PhysMem* mem, FabricPort* port,
           RnicDirectory* directory)
    : node_(node),
      params_(params),
      mem_(mem),
      port_(port),
      directory_(directory),
      mpt_cache_(params.mpt_cache_entries),
      mtt_cache_(params.mtt_cache_pages),
      qpc_cache_(params.qpc_cache_entries) {
  directory_->Register(node, this);
}

StatusOr<MrEntry> Rnic::RegisterMrVirtual(PageTable* pt, VirtAddr addr, uint64_t length,
                                          uint32_t access) {
  if (length == 0 || pt == nullptr) {
    return Status::InvalidArgument("bad MR registration");
  }
  // Validate the whole range is mapped.
  auto check = pt->TranslateRange(node_, addr, length);
  if (!check.ok()) {
    return check.status();
  }
  MrEntry mr;
  mr.lkey = next_key_.fetch_add(1);
  mr.node = node_;
  mr.physical = false;
  mr.base = addr;
  mr.length = length;
  mr.access = access;
  mr.page_table = pt;
  {
    std::lock_guard<SpinLock> lock(mr_mu_);
    mrs_[mr.lkey] = mr;
  }
  return mr;
}

StatusOr<MrEntry> Rnic::RegisterMrPhysical(PhysAddr addr, uint64_t length, uint32_t access) {
  if (length == 0 || addr + length > mem_->size_bytes()) {
    return Status::InvalidArgument("bad physical MR registration");
  }
  MrEntry mr;
  mr.lkey = next_key_.fetch_add(1);
  mr.node = node_;
  mr.physical = true;
  mr.base = addr;
  mr.length = length;
  mr.access = access;
  {
    std::lock_guard<SpinLock> lock(mr_mu_);
    mrs_[mr.lkey] = mr;
  }
  return mr;
}

Status Rnic::DeregisterMr(uint32_t lkey) {
  std::lock_guard<SpinLock> lock(mr_mu_);
  auto it = mrs_.find(lkey);
  if (it == mrs_.end()) {
    return Status::NotFound("MR not registered");
  }
  mrs_.erase(it);
  mpt_cache_.Erase(lkey);
  return Status::Ok();
}

StatusOr<MrEntry> Rnic::LookupMr(uint32_t key) const {
  std::lock_guard<SpinLock> lock(mr_mu_);
  auto it = mrs_.find(key);
  if (it == mrs_.end()) {
    return Status::NotFound("MR key unknown");
  }
  return it->second;
}

size_t Rnic::MrCount() const {
  std::lock_guard<SpinLock> lock(mr_mu_);
  return mrs_.size();
}

Cq* Rnic::CreateCq() {
  std::lock_guard<SpinLock> lock(qp_mu_);
  cqs_.push_back(std::make_unique<Cq>(params_));
  return cqs_.back().get();
}

Qp* Rnic::CreateQp(QpType type, Cq* send_cq, Cq* recv_cq) {
  std::lock_guard<SpinLock> lock(qp_mu_);
  uint32_t qpn = next_qpn_.fetch_add(1);
  qps_.push_back(std::make_unique<Qp>(this, qpn, type, send_cq, recv_cq));
  Qp* qp = qps_.back().get();
  qp_index_[qpn] = qp;
  return qp;
}

Qp* Rnic::LookupQp(uint32_t qpn) const {
  std::lock_guard<SpinLock> lock(qp_mu_);
  auto it = qp_index_.find(qpn);
  return it == qp_index_.end() ? nullptr : it->second;
}

size_t Rnic::QpCount() const {
  std::lock_guard<SpinLock> lock(qp_mu_);
  return qps_.size();
}

StatusOr<Rnic::Resolved> Rnic::ResolveOnNic(uint32_t key, uint64_t addr, uint64_t length,
                                            uint32_t required_access) {
  Resolved out;
  if (!mpt_cache_.Touch(key)) {
    out.cache_penalty_ns += params_.mpt_miss_ns;
  }
  auto mr_or = LookupMr(key);
  if (!mr_or.ok()) {
    return mr_or.status();
  }
  const MrEntry& mr = *mr_or;
  if ((mr.access & required_access) != required_access) {
    return Status::PermissionDenied("MR access violation");
  }
  if (length == 0) {
    return out;
  }
  if (addr < mr.base || addr + length > mr.base + mr.length) {
    return Status::OutOfRange("access outside MR bounds");
  }
  if (mr.physical) {
    out.ranges.push_back(PhysRange{node_, static_cast<PhysAddr>(addr), length});
    return out;
  }
  // Virtual MR: the NIC walks PTEs; charge one MTT miss per uncached page.
  const size_t page = mr.page_table->page_size();
  for (uint64_t vpage = addr / page; vpage <= (addr + length - 1) / page; ++vpage) {
    if (!mtt_cache_.Touch(MttKey(key, vpage))) {
      out.cache_penalty_ns += params_.mtt_miss_ns;
    }
  }
  auto ranges = mr.page_table->TranslateRange(node_, addr, length);
  if (!ranges.ok()) {
    return ranges.status();
  }
  out.ranges = std::move(*ranges);
  return out;
}

uint64_t Rnic::ReserveEngine(uint64_t earliest_ns, uint64_t occupancy_ns) {
  return engine_capacity_.Reserve(earliest_ns, occupancy_ns);
}

void Rnic::PushSendCompletion(Qp* qp, const WorkRequest& wr, Status status, uint64_t ready_at) {
  if (!wr.signaled && status.ok()) {
    return;
  }
  Completion c;
  c.wr_id = wr.wr_id;
  c.status = std::move(status);
  c.byte_len = static_cast<uint32_t>(wr.length);
  switch (wr.opcode) {
    case WrOpcode::kWrite:
    case WrOpcode::kWriteImm:
      c.opcode = WcOpcode::kRdmaWrite;
      break;
    case WrOpcode::kRead:
      c.opcode = WcOpcode::kRdmaRead;
      break;
    case WrOpcode::kSend:
      c.opcode = WcOpcode::kSend;
      break;
    case WrOpcode::kFetchAdd:
    case WrOpcode::kCmpSwap:
      c.opcode = WcOpcode::kAtomic;
      break;
  }
  c.ready_at_ns = ready_at + params_.rnic_completion_ns;
  c.lat = tl_last_lat;
  qp->send_cq()->Push(std::move(c));
}

telemetry::WqeLatBreakdown Rnic::LastPostBreakdown() { return tl_last_lat; }

void Rnic::ResetLastPostBreakdown() { tl_last_lat = telemetry::WqeLatBreakdown{}; }

void Rnic::ChargePostCost(Qp* qp, const WorkRequest& wr) {
  DoorbellBatch& b = tl_doorbell;
  const uint64_t now = NowNs();
  const bool batches = wr.doorbell_hint && b.rnic == this && b.qpn == qp->qpn() &&
                       b.len > 0 && now >= b.last_post_ns &&
                       now - b.last_post_ns <= params_.rnic_doorbell_window_ns;
  if (batches) {
    // Rides the previous doorbell: only the per-extra-WQE build cost.
    SpinFor(params_.rnic_post_wqe_ns);
    wqes_batched_.fetch_add(1, std::memory_order_relaxed);
    ++b.len;
    b.last_post_ns = NowNs();
    return;
  }
  // New doorbell. Close out the previous batch on this NIC (batch size is
  // only observable once the next doorbell rings).
  if (b.rnic == this && b.len > 0) {
    telemetry::FixedHistogram* hist = doorbell_batch_hist_.load(std::memory_order_acquire);
    if (hist != nullptr) {
      hist->Record(b.len);
    }
  }
  SpinFor(params_.rnic_post_ns);
  doorbells_.fetch_add(1, std::memory_order_relaxed);
  b.rnic = wr.doorbell_hint ? this : nullptr;
  b.qpn = qp->qpn();
  b.len = wr.doorbell_hint ? 1 : 0;
  b.last_post_ns = NowNs();
}

Status Rnic::PostSend(Qp* qp, const WorkRequest& wr) {
  ops_posted_.fetch_add(1, std::memory_order_relaxed);
  (wr.signaled ? wqes_signaled_ : wqes_unsignaled_).fetch_add(1, std::memory_order_relaxed);
  tl_last_lat = telemetry::WqeLatBreakdown{};  // Error paths leave it zero.
  // Doorbell + WQE build: synchronous host cost (shared doorbell when the
  // post batches with the previous one on this QP).
  ChargePostCost(qp, wr);
  telemetry::StampStage(telemetry::TraceStage::kRnicPost);

  NodeId dst_node;
  uint32_t dst_qpn = 0;
  if (qp->type() == QpType::kUd) {
    if (wr.opcode != WrOpcode::kSend) {
      return Status::InvalidArgument("UD QPs support only SEND");
    }
    dst_node = wr.ud_dst_node;
    dst_qpn = wr.ud_dst_qpn;
  } else {
    // RC and DC-initiator QPs share the connected data path; a DC QP's
    // connection target is simply whatever Connect() last attached it to.
    if (!qp->connected()) {
      return Status::FailedPrecondition("RC QP not connected");
    }
    if (qp->in_error()) {
      return Status::FailedPrecondition("RC QP in error state (reset required)");
    }
    dst_node = qp->remote_node();
    dst_qpn = qp->remote_qpn();
  }
  Rnic* remote = directory_->Lookup(dst_node);
  if (remote == nullptr) {
    return Status::Unavailable("destination node unknown");
  }

  switch (wr.opcode) {
    case WrOpcode::kWrite:
    case WrOpcode::kWriteImm:
    case WrOpcode::kRead:
      return ExecuteOneSided(qp, wr, remote);
    case WrOpcode::kSend:
      return ExecuteSend(qp, wr, remote, dst_qpn);
    case WrOpcode::kFetchAdd:
    case WrOpcode::kCmpSwap:
      return ExecuteAtomic(qp, wr, remote);
  }
  return Status::InvalidArgument("unknown opcode");
}

Status Rnic::ExecuteOneSided(Qp* qp, const WorkRequest& wr, Rnic* remote) {
  const bool is_read = wr.opcode == WrOpcode::kRead;
  // Inline send: the payload was copied into the WQE at post time, so the
  // local engine skips the DMA read of the source buffer (reads can never be
  // inline — the payload arrives later).
  const bool inline_send =
      !is_read && wr.inline_data && wr.length <= params_.rnic_inline_max;
  const uint64_t now = NowNs();

  uint64_t qpc_penalty = qpc_cache_.Touch(qp->qpn()) ? 0 : params_.qpc_miss_ns;
  // Responder-side QPC (gated): the remote NIC looks up the context serving
  // this sender — per-peer for RC, the one shared DCT entry for DC targets.
  uint64_t remote_qpc_penalty =
      params_.rnic_model_responder_qpc && remote != this
          ? (remote->qpc_cache_.Touch(qp->remote_qpn()) ? 0 : params_.qpc_miss_ns)
          : 0;

  StatusOr<Resolved> local = [&]() -> StatusOr<Resolved> {
    if (wr.length == 0) {
      return Resolved{};
    }
    if (wr.host_local != nullptr) {
      Resolved r;
      r.host = static_cast<uint8_t*>(wr.host_local);
      return r;
    }
    return ResolveOnNic(wr.lkey, wr.local_addr, wr.length, is_read ? kMrWrite : kMrRead);
  }();
  if (!local.ok()) {
    PushSendCompletion(qp, wr, local.status(), now);
    return Status::Ok();
  }
  StatusOr<Resolved> remote_res =
      wr.length == 0 ? StatusOr<Resolved>(Resolved{})
                     : remote->ResolveOnNic(wr.rkey, wr.remote_addr, wr.length,
                                            is_read ? kMrRead : kMrWrite);
  if (!remote_res.ok()) {
    PushSendCompletion(qp, wr, remote_res.status(), now);
    return Status::Ok();
  }

  // All on-NIC SRAM lookups (QPC + local and remote MPT/MTT) are resolved at
  // this point; arg carries the total miss-penalty ns they contributed.
  telemetry::StampStage(telemetry::TraceStage::kNicCache,
                        qpc_penalty + remote_qpc_penalty + local->cache_penalty_ns +
                            remote_res->cache_penalty_ns);

  // Engine occupancy at both NICs (processing + SRAM miss stalls).
  if (inline_send) {
    inline_sends_.fetch_add(1, std::memory_order_relaxed);
  }
  uint64_t local_done = ReserveEngine(
      now, (inline_send ? params_.rnic_inline_process_ns : params_.rnic_process_ns) +
               qpc_penalty + local->cache_penalty_ns);

  // Fabric: writes carry the payload on the request; reads carry it on the
  // response.
  uint64_t request_bytes = kOneSidedHeaderBytes + (is_read ? 0 : wr.length);
  uint64_t response_bytes = is_read ? wr.length : 0;

  TransferFaults request_faults;
  uint64_t queue_ns = 0;
  uint64_t request_arrive =
      FinishOrDrop(remote, request_bytes, local_done, &request_faults, &queue_ns);
  if (request_arrive == Fabric::kDropped) {
    // Retransmit budget exhausted: the QP transitions to the error state
    // (hardware semantics); the owner must reset it before reusing.
    qp->SetError();
    PushSendCompletion(qp, wr, Status::Unavailable("message dropped"), now + kRnrTimeoutNs / 64);
    return Status::Ok();
  }
  telemetry::StampStage(telemetry::TraceStage::kFabric, request_arrive);
  uint64_t remote_done = remote->ReserveEngine(
      request_arrive,
      params_.rnic_process_ns + remote_res->cache_penalty_ns + remote_qpc_penalty);

  // Perform the data movement (the issuing thread is the DMA engine).
  if (wr.length > 0) {
    if (is_read) {
      CopyResolved(*remote_res, *local, wr.length);
    } else {
      CopyResolved(*local, *remote_res, wr.length);
    }
  }
  telemetry::StampStage(telemetry::TraceStage::kDma, wr.length);

  // Writes complete with a piggybacked RC ACK (no payload bandwidth); reads
  // carry the data on the response path, which reserves remote->local fabric
  // bandwidth.
  uint64_t ready_at;
  uint64_t wire_ns = request_arrive - local_done - queue_ns;
  if (is_read) {
    uint64_t resp_queue_ns = 0;
    ready_at = FinishOrDropFrom(remote, response_bytes + kOneSidedHeaderBytes / 2,
                                remote_done + params_.rnic_ack_ns, &resp_queue_ns);
    if (ready_at == Fabric::kDropped) {
      qp->SetError();
      PushSendCompletion(qp, wr, Status::Unavailable("response dropped"),
                         now + kRnrTimeoutNs / 64);
      return Status::Ok();
    }
    wire_ns += ready_at - (remote_done + params_.rnic_ack_ns) - resp_queue_ns;
    queue_ns += resp_queue_ns;
  } else {
    ready_at = remote_done + params_.rnic_ack_ns + params_.wire_latency_ns;
    wire_ns += params_.wire_latency_ns;
  }

  // Attribution breakdown from the same absolute timestamps the completion
  // is built from (pure arithmetic; no clock movement).
  tl_last_lat.rnic_local_ns = local_done - now;
  tl_last_lat.port_queue_ns = queue_ns;
  tl_last_lat.wire_ns = wire_ns;
  tl_last_lat.rnic_remote_ns = (remote_done - request_arrive) + params_.rnic_ack_ns;
  tl_last_lat.compl_ns = params_.rnic_completion_ns;

  if (wr.opcode == WrOpcode::kWriteImm) {
    Qp* remote_qp = remote->LookupQp(qp->remote_qpn());
    if (remote_qp != nullptr && remote_qp->recv_cq() != nullptr) {
      Completion rc;
      rc.wr_id = 0;
      rc.opcode = WcOpcode::kRecvImm;
      rc.byte_len = static_cast<uint32_t>(wr.length);
      rc.imm = wr.imm;
      rc.has_imm = true;
      rc.src_node = node_;
      rc.src_qpn = qp->qpn();
      rc.ready_at_ns = remote_done + params_.rnic_completion_ns;
      if (request_faults.duplicate) {
        // Fault injection duplicated the request on the wire: the receiver
        // sees the imm event twice (upper layers must dedup by sequence).
        Completion dup = rc;
        dup.ready_at_ns += params_.wire_latency_ns + request_faults.dup_extra_delay_ns;
        remote_qp->recv_cq()->Push(std::move(dup));
      }
      remote_qp->recv_cq()->Push(std::move(rc));
    }
  }

  PushSendCompletion(qp, wr, Status::Ok(), ready_at);
  return Status::Ok();
}

Status Rnic::ExecuteSend(Qp* qp, const WorkRequest& wr, Rnic* remote, uint32_t dst_qpn) {
  const uint64_t now = NowNs();
  uint64_t qpc_penalty = qpc_cache_.Touch(qp->qpn()) ? 0 : params_.qpc_miss_ns;
  uint64_t remote_qpc_penalty =
      params_.rnic_model_responder_qpc && remote != this
          ? (remote->qpc_cache_.Touch(dst_qpn) ? 0 : params_.qpc_miss_ns)
          : 0;

  StatusOr<Resolved> local = [&]() -> StatusOr<Resolved> {
    if (wr.length == 0) {
      return Resolved{};
    }
    if (wr.host_local != nullptr) {
      Resolved r;
      r.host = static_cast<uint8_t*>(wr.host_local);
      return r;
    }
    return ResolveOnNic(wr.lkey, wr.local_addr, wr.length, kMrRead);
  }();
  if (!local.ok()) {
    PushSendCompletion(qp, wr, local.status(), now);
    return Status::Ok();
  }

  Qp* remote_qp = remote->LookupQp(dst_qpn);
  if (remote_qp == nullptr) {
    PushSendCompletion(qp, wr, Status::Unavailable("no such destination QP"), now);
    return Status::Ok();
  }

  // Receiver-not-ready: block until an RQE is posted (RC retransmit model).
  std::optional<Rqe> rqe = remote_qp->TakeRecv();
  if (!rqe.has_value()) {
    rqe = remote_qp->TakeRecvWait(kRnrTimeoutNs);
    if (!rqe.has_value()) {
      IdleFor(kRnrTimeoutNs);
      PushSendCompletion(qp, wr, Status::Timeout("receiver not ready"), NowNs());
      return Status::Ok();
    }
  }

  if (rqe->length < wr.length) {
    PushSendCompletion(qp, wr, Status::InvalidArgument("receive buffer too small"), NowNs());
    return Status::Ok();
  }

  StatusOr<Resolved> sink =
      wr.length == 0
          ? StatusOr<Resolved>(Resolved{})
          : remote->ResolveOnNic(rqe->lkey, rqe->addr, wr.length, kMrWrite);
  if (!sink.ok()) {
    PushSendCompletion(qp, wr, sink.status(), NowNs());
    return Status::Ok();
  }

  uint64_t wire_bytes = wr.length + (qp->type() == QpType::kUd ? params_.ud_grh_bytes : 0);
  uint64_t local_done =
      ReserveEngine(now, params_.rnic_process_ns + qpc_penalty + local->cache_penalty_ns);
  uint64_t queue_ns = 0;
  uint64_t arrive =
      FinishOrDrop(remote, wire_bytes + kOneSidedHeaderBytes / 2, local_done, nullptr, &queue_ns);
  if (arrive == Fabric::kDropped) {
    if (qp->type() == QpType::kRc) {
      qp->SetError();
    }
    PushSendCompletion(qp, wr, Status::Unavailable("message dropped"), now + kRnrTimeoutNs / 64);
    return Status::Ok();
  }
  uint64_t remote_done = remote->ReserveEngine(
      arrive, params_.rnic_process_ns + sink->cache_penalty_ns + remote_qpc_penalty);

  if (wr.length > 0) {
    CopyResolved(*local, *sink, wr.length);
  }

  Completion rc;
  rc.wr_id = rqe->wr_id;
  rc.opcode = WcOpcode::kRecv;
  rc.byte_len = static_cast<uint32_t>(wr.length);
  rc.imm = wr.imm;
  rc.src_node = node_;
  rc.src_qpn = qp->qpn();
  rc.ready_at_ns = remote_done + params_.rnic_completion_ns;
  remote_qp->recv_cq()->Push(std::move(rc));

  // UD has no ACK; RC acks back.
  const bool ud = qp->type() == QpType::kUd;
  uint64_t ready_at =
      ud ? local_done : remote_done + params_.rnic_ack_ns + params_.wire_latency_ns;
  tl_last_lat.rnic_local_ns = local_done - now;
  tl_last_lat.port_queue_ns = queue_ns;
  tl_last_lat.wire_ns = (arrive - local_done - queue_ns) + (ud ? 0 : params_.wire_latency_ns);
  tl_last_lat.rnic_remote_ns = (remote_done - arrive) + (ud ? 0 : params_.rnic_ack_ns);
  tl_last_lat.compl_ns = params_.rnic_completion_ns;
  PushSendCompletion(qp, wr, Status::Ok(), ready_at);
  return Status::Ok();
}

uint64_t Rnic::FinishOrDrop(Rnic* remote, uint64_t bytes, uint64_t earliest_ns,
                            TransferFaults* faults_out, uint64_t* queue_ns_out) {
  return port_->fabric()->TransferFinishNs(node_, remote->node(), bytes, earliest_ns, faults_out,
                                           queue_ns_out);
}

uint64_t Rnic::FinishOrDropFrom(Rnic* remote, uint64_t bytes, uint64_t earliest_ns,
                                uint64_t* queue_ns_out) {
  return port_->fabric()->TransferFinishNs(remote->node(), node_, bytes, earliest_ns, nullptr,
                                           queue_ns_out);
}

void Rnic::CopyResolved(const Resolved& src, const Resolved& dst, uint64_t len) {
  if (src.host != nullptr && dst.host != nullptr) {
    SimDmaCopy(dst.host, src.host, len);
    return;
  }
  if (src.host != nullptr) {
    // Host -> fragmented physical.
    uint64_t off = 0;
    for (const PhysRange& pr : dst.ranges) {
      uint64_t take = std::min<uint64_t>(pr.size, len - off);
      PhysMem* dmem = directory_->Lookup(pr.node)->mem();
      SimDmaCopy(dmem->Data(pr.addr, take), src.host + off, take);
      off += take;
      if (off == len) {
        break;
      }
    }
    assert(off == len && "destination scatter list shorter than op length");
    return;
  }
  if (dst.host != nullptr) {
    // Fragmented physical -> host.
    uint64_t off = 0;
    for (const PhysRange& pr : src.ranges) {
      uint64_t take = std::min<uint64_t>(pr.size, len - off);
      PhysMem* smem = directory_->Lookup(pr.node)->mem();
      SimDmaCopy(dst.host + off, smem->Data(pr.addr, take), take);
      off += take;
      if (off == len) {
        break;
      }
    }
    assert(off == len && "source scatter list shorter than op length");
    return;
  }
  // Fragmented physical -> fragmented physical.
  size_t si = 0;
  size_t di = 0;
  uint64_t soff = 0;
  uint64_t doff = 0;
  uint64_t remaining = len;
  while (remaining > 0 && si < src.ranges.size() && di < dst.ranges.size()) {
    uint64_t savail = src.ranges[si].size - soff;
    uint64_t davail = dst.ranges[di].size - doff;
    uint64_t take = std::min({savail, davail, remaining});
    PhysMem* smem = directory_->Lookup(src.ranges[si].node)->mem();
    PhysMem* dmem = directory_->Lookup(dst.ranges[di].node)->mem();
    SimDmaCopy(dmem->Data(dst.ranges[di].addr + doff, take),
                smem->Data(src.ranges[si].addr + soff, take), take);
    soff += take;
    doff += take;
    remaining -= take;
    if (soff == src.ranges[si].size) {
      ++si;
      soff = 0;
    }
    if (doff == dst.ranges[di].size) {
      ++di;
      doff = 0;
    }
  }
  assert(remaining == 0 && "scatter/gather list shorter than op length");
}

Status Rnic::ExecuteAtomic(Qp* qp, const WorkRequest& wr, Rnic* remote) {
  const uint64_t now = NowNs();
  if (wr.remote_addr % 8 != 0) {
    PushSendCompletion(qp, wr, Status::InvalidArgument("atomic target not 8B-aligned"), now);
    return Status::Ok();
  }
  uint64_t qpc_penalty = qpc_cache_.Touch(qp->qpn()) ? 0 : params_.qpc_miss_ns;
  uint64_t remote_qpc_penalty =
      params_.rnic_model_responder_qpc && remote != this
          ? (remote->qpc_cache_.Touch(qp->remote_qpn()) ? 0 : params_.qpc_miss_ns)
          : 0;
  auto target = remote->ResolveOnNic(wr.rkey, wr.remote_addr, 8, kMrAtomic);
  if (!target.ok()) {
    PushSendCompletion(qp, wr, target.status(), now);
    return Status::Ok();
  }
  assert(target->ranges.size() == 1);

  uint64_t local_done = ReserveEngine(now, params_.rnic_process_ns + qpc_penalty);
  uint64_t queue_ns = 0;
  uint64_t arrive =
      FinishOrDrop(remote, kOneSidedHeaderBytes + 16, local_done, nullptr, &queue_ns);
  if (arrive == Fabric::kDropped) {
    qp->SetError();
    PushSendCompletion(qp, wr, Status::Unavailable("atomic dropped"), now + kRnrTimeoutNs / 64);
    return Status::Ok();
  }
  uint64_t remote_done = remote->ReserveEngine(
      arrive, params_.rnic_process_ns + params_.rnic_atomic_extra_ns +
                  target->cache_penalty_ns + remote_qpc_penalty);

  uint64_t old_value = 0;
  {
    std::lock_guard<SpinLock> lock(remote->atomic_mu_);
    const PhysRange& pr = target->ranges[0];
    uint8_t* p = remote->mem()->Data(pr.addr, 8);
    uint64_t current;
    std::memcpy(&current, p, 8);
    old_value = current;
    uint64_t next = current;
    if (wr.opcode == WrOpcode::kFetchAdd) {
      next = current + wr.compare_add;
    } else {  // kCmpSwap
      if (current == wr.compare_add) {
        next = wr.swap;
      }
    }
    std::memcpy(p, &next, 8);
  }
  if (wr.atomic_result != nullptr) {
    *wr.atomic_result = old_value;
  }

  // The atomic response is ack-sized; it rides the credit path rather than
  // reserving payload bandwidth.
  tl_last_lat.rnic_local_ns = local_done - now;
  tl_last_lat.port_queue_ns = queue_ns;
  tl_last_lat.wire_ns = (arrive - local_done - queue_ns) + params_.wire_latency_ns;
  tl_last_lat.rnic_remote_ns = remote_done - arrive;
  tl_last_lat.compl_ns = params_.rnic_completion_ns;
  PushSendCompletion(qp, wr, Status::Ok(), remote_done + params_.wire_latency_ns);
  return Status::Ok();
}

}  // namespace lt
