// Software RNIC with Verbs-level semantics.
//
// Supports: RC and UD queue pairs, completion queues (shareable across QPs),
// memory regions registered by virtual address (per-page NIC translation,
// like native user-level Verbs) or by physical address (the kernel-only API
// LITE exploits for its global MR, paper Sec. 4.1), one-sided READ / WRITE /
// WRITE-WITH-IMM, two-sided SEND/RECV (RC and UD), and masked 64-bit atomics
// (FETCH_ADD, CMP_SWAP).
//
// Performance model (all values from SimParams):
//   * The issuing thread pays the doorbell cost (rnic_post_ns) synchronously.
//   * Each WQE then occupies the NIC processing engine for
//     rnic_process_ns + (MPT/MTT/QPC miss penalties); engine occupancy is a
//     virtual reservation (like a fabric port), so pipelined ops through one
//     NIC share its processing rate — on-NIC SRAM misses therefore reduce
//     throughput (paper Fig. 5) and add latency (paper Fig. 4).
//   * Payloads reserve fabric bandwidth on both endpoint ports.
//   * Completions carry a ready_at timestamp; polling a CQ only yields
//     entries whose time has arrived.
//
// One-sided operations never execute application/OS code on the target node:
// the issuing thread performs the target-memory copy itself (it is the DMA
// engine), touching only the *target NIC's* caches — the same asymmetry the
// paper relies on ("indirection only at the local side").
#ifndef SRC_RNIC_RNIC_H_
#define SRC_RNIC_RNIC_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/common/rate_window.h"
#include "src/common/status.h"
#include "src/common/sync_util.h"
#include "src/fabric/fabric.h"
#include "src/mem/addr.h"
#include "src/mem/page_table.h"
#include "src/mem/phys_mem.h"
#include "src/rnic/lru_cache.h"
#include "src/sim/params.h"
#include "src/telemetry/latency_attr.h"

namespace lt {

namespace telemetry {
class FixedHistogram;
}  // namespace telemetry

class Rnic;

// Resolves node ids to their RNICs; owned by the cluster.
class RnicDirectory {
 public:
  void Register(NodeId node, Rnic* rnic);
  Rnic* Lookup(NodeId node) const;

 private:
  mutable SpinLock mu_;
  std::vector<Rnic*> rnics_;
};

// Access permission bits for memory regions.
enum MrAccess : uint32_t {
  kMrRead = 1u << 0,
  kMrWrite = 1u << 1,
  kMrAtomic = 1u << 2,
  kMrAll = kMrRead | kMrWrite | kMrAtomic,
};

struct MrEntry {
  uint32_t lkey = 0;   // == rkey in this model.
  NodeId node = kInvalidNode;
  bool physical = false;  // Registered with physical addresses (kernel API).
  uint64_t base = 0;      // VirtAddr (virtual MR) or PhysAddr (physical MR).
  uint64_t length = 0;
  uint32_t access = 0;
  PageTable* page_table = nullptr;  // Translation source for virtual MRs.
};

enum class WcOpcode { kSend, kRdmaWrite, kRdmaRead, kAtomic, kRecv, kRecvImm };

struct Completion {
  uint64_t wr_id = 0;
  WcOpcode opcode = WcOpcode::kSend;
  Status status = Status::Ok();
  uint32_t byte_len = 0;
  uint32_t imm = 0;
  bool has_imm = false;
  NodeId src_node = kInvalidNode;  // For receive completions.
  uint32_t src_qpn = 0;
  uint64_t ready_at_ns = 0;  // Poll returns this entry only once time arrives.
  // Transport-stage decomposition of this WQE's round trip (latency
  // attribution; zero for error/local completions).
  telemetry::WqeLatBreakdown lat;
};

// How a waiting thread "spends" the virtual-time gap until an event arrives;
// determines its modeled CPU utilization (paper Fig. 13).
enum class WaitMode { kBusyPoll, kSleep, kAdaptive };

// Completion queue; may be shared by any number of QPs (this is how LITE uses
// one global receive CQ per node).
class Cq {
 public:
  explicit Cq(const SimParams& params) : params_(params) {}

  // Non-blocking: returns the earliest entry whose virtual ready time has
  // already arrived on the caller's clock (pipelined callers).
  std::optional<Completion> TryPoll();

  // Blocks (really, on a condvar) until an entry exists, then advances the
  // caller's virtual clock to the entry's ready time, charging CPU according
  // to `mode`. Returns nullopt on timeout or shutdown.
  std::optional<Completion> WaitPoll(uint64_t timeout_ns, WaitMode mode,
                                     uint64_t adaptive_budget_ns = 0);

  // Like WaitPoll but only consumes the completion whose wr_id matches;
  // lets many threads await their own completions on one shared CQ without
  // stealing each other's entries.
  std::optional<Completion> WaitPollFor(uint64_t wr_id, uint64_t timeout_ns, WaitMode mode,
                                        uint64_t adaptive_budget_ns = 0);

  // Removes and returns the completion whose wr_id matches, regardless of its
  // ready time, without touching the caller's clock. Used by the async memop
  // retirement path, where the CQE's existence (success/error) is decided at
  // post time and the waiter advances its own clock from ready_at_ns.
  std::optional<Completion> TryTake(uint64_t wr_id);

  void Push(Completion completion);
  size_t Depth() const;
  void Shutdown();

 private:
  const SimParams& params_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Completion> entries_;
  bool shutdown_ = false;
};

// kRc/kUd are the classic Verbs types. kDcIni/kDcTgt model a dynamically
// connected transport (DESIGN.md §10): a kDcIni initiator re-targets any
// peer via Connect() (the µs-scale attach is charged by the transport layer,
// not here), and all initiators of a node address one kDcTgt target whose
// single QP context serves every sender — so responder QPC pressure is O(1)
// instead of O(peers). Both behave like RC on the data path.
enum class QpType { kRc, kUd, kDcIni, kDcTgt };

struct Rqe {
  uint64_t wr_id = 0;
  uint32_t lkey = 0;
  uint64_t addr = 0;
  uint64_t length = 0;
};

class Qp {
 public:
  Qp(Rnic* rnic, uint32_t qpn, QpType type, Cq* send_cq, Cq* recv_cq)
      : rnic_(rnic), qpn_(qpn), type_(type), send_cq_(send_cq), recv_cq_(recv_cq) {}

  uint32_t qpn() const { return qpn_; }
  QpType type() const { return type_; }
  Rnic* rnic() const { return rnic_; }
  Cq* send_cq() const { return send_cq_; }
  Cq* recv_cq() const { return recv_cq_; }

  // RC connection target.
  void Connect(NodeId node, uint32_t qpn) {
    remote_node_ = node;
    remote_qpn_ = qpn;
  }
  NodeId remote_node() const { return remote_node_; }
  uint32_t remote_qpn() const { return remote_qpn_; }
  bool connected() const { return remote_node_ != kInvalidNode; }

  Status PostRecv(const Rqe& rqe);
  std::optional<Rqe> TakeRecv();
  // Blocks (real time) until an RQE is posted; models RC RNR retransmission.
  std::optional<Rqe> TakeRecvWait(uint64_t real_timeout_ns);
  size_t RecvDepth() const;

  // ---- Error state (RC reliability model) ----
  // A dropped/partitioned transfer moves an RC QP to the error state, like
  // hardware exhausting its retransmit budget: further PostSends fail fast
  // with kFailedPrecondition until the owner resets the QP. ResetToRts()
  // models the ibv_modify_qp ERR->RESET->INIT->RTR->RTS round-trip (the
  // connection target is preserved); the reconnect's time cost is charged by
  // the caller (LITE's lite_qp_reconnect_ns).
  bool in_error() const { return state_.load(std::memory_order_acquire) != 0; }
  void SetError() { state_.store(1, std::memory_order_release); }
  void ResetToRts() { state_.store(0, std::memory_order_release); }

 private:
  Rnic* const rnic_;
  const uint32_t qpn_;
  const QpType type_;
  Cq* const send_cq_;
  Cq* const recv_cq_;
  NodeId remote_node_ = kInvalidNode;
  uint32_t remote_qpn_ = 0;
  std::atomic<int> state_{0};  // 0 = RTS, 1 = error

  mutable std::mutex rq_mu_;
  std::condition_variable rq_cv_;
  std::deque<Rqe> rq_;
};

enum class WrOpcode { kWrite, kWriteImm, kRead, kSend, kFetchAdd, kCmpSwap };

struct WorkRequest {
  WrOpcode opcode = WrOpcode::kWrite;
  uint64_t wr_id = 0;

  // Local buffer: lkey names the MR; addr is a VirtAddr for virtual MRs or a
  // PhysAddr for physical MRs; length in bytes.
  uint32_t lkey = 0;
  uint64_t local_addr = 0;
  uint64_t length = 0;

  // If non-null, the local buffer is plain host memory the kernel addresses
  // physically (LITE's zero-copy user-buffer path, paper Sec. 4.1): no lkey
  // lookup and no page-table walk on the local side.
  void* host_local = nullptr;

  // Remote target for one-sided ops (same addressing convention, governed by
  // the remote MR named by rkey).
  uint32_t rkey = 0;
  uint64_t remote_addr = 0;

  uint32_t imm = 0;  // For kWriteImm.

  // UD destination (ignored for RC).
  NodeId ud_dst_node = kInvalidNode;
  uint32_t ud_dst_qpn = 0;

  // Atomics.
  uint64_t compare_add = 0;
  uint64_t swap = 0;
  uint64_t* atomic_result = nullptr;  // Valid once the completion is polled.

  // Unsignaled work requests generate no success completion (LITE's RPC
  // writes are unsignaled: failures are detected by reply timeout, paper
  // Sec. 5.1). Error completions are always delivered.
  bool signaled = true;

  // Opt-in fast-path hints (both default off so existing blocking paths are
  // byte-identical with the flags idle):
  //   doorbell_hint — this post may share a doorbell with an immediately
  //     preceding post to the same QP (within rnic_doorbell_window_ns),
  //     paying rnic_post_wqe_ns instead of the full rnic_post_ns.
  //   inline_data — for writes with length <= rnic_inline_max, the payload is
  //     copied into the WQE at post time, skipping the local DMA-read stage
  //     (local engine occupancy drops to rnic_inline_process_ns).
  bool doorbell_hint = false;
  bool inline_data = false;
};

class Rnic {
 public:
  Rnic(NodeId node, const SimParams& params, PhysMem* mem, FabricPort* port,
       RnicDirectory* directory);

  NodeId node() const { return node_; }
  const SimParams& params() const { return params_; }
  PhysMem* mem() const { return mem_; }

  // ---- Resource management (driver-level; costs charged by callers) ----
  StatusOr<MrEntry> RegisterMrVirtual(PageTable* pt, VirtAddr addr, uint64_t length,
                                      uint32_t access);
  StatusOr<MrEntry> RegisterMrPhysical(PhysAddr addr, uint64_t length, uint32_t access);
  Status DeregisterMr(uint32_t lkey);
  StatusOr<MrEntry> LookupMr(uint32_t key) const;
  size_t MrCount() const;

  Cq* CreateCq();
  Qp* CreateQp(QpType type, Cq* send_cq, Cq* recv_cq);
  Qp* LookupQp(uint32_t qpn) const;
  size_t QpCount() const;

  // ---- Data path ----
  // Posts a work request; returns once the doorbell is rung. The completion
  // (with status) appears on the QP's send CQ. Two-sided deliveries appear on
  // the target QP's recv CQ.
  Status PostSend(Qp* qp, const WorkRequest& wr);

  // Cache statistics (for tests and the ablation benches).
  const LruCache& mpt_cache() const { return mpt_cache_; }
  const LruCache& mtt_cache() const { return mtt_cache_; }
  const LruCache& qpc_cache() const { return qpc_cache_; }
  uint64_t ops_posted() const { return ops_posted_.load(std::memory_order_relaxed); }

  // ---- Fast-path telemetry (doorbell batching / selective signaling /
  // inline sends) ----
  uint64_t doorbells_rung() const { return doorbells_.load(std::memory_order_relaxed); }
  uint64_t wqes_batched() const { return wqes_batched_.load(std::memory_order_relaxed); }
  uint64_t inline_sends() const { return inline_sends_.load(std::memory_order_relaxed); }
  uint64_t wqes_signaled() const { return wqes_signaled_.load(std::memory_order_relaxed); }
  uint64_t wqes_unsignaled() const {
    return wqes_unsignaled_.load(std::memory_order_relaxed);
  }
  // Node-level telemetry wiring: batch sizes are recorded into this histogram
  // whenever a doorbell batch closes (next doorbell rings). May stay null.
  void SetDoorbellBatchHistogram(telemetry::FixedHistogram* hist) {
    doorbell_batch_hist_.store(hist, std::memory_order_release);
  }

  // Latency attribution: transport breakdown of the calling thread's most
  // recent PostSend (the same values carried on its Completion). Unsignaled
  // posts get no send CQE, so the RPC request path reads the thread-local
  // mirror instead. Reset clears it (loopback paths that bypass PostSend).
  static telemetry::WqeLatBreakdown LastPostBreakdown();
  static void ResetLastPostBreakdown();

 private:
  friend class Qp;

  struct Resolved {
    std::vector<PhysRange> ranges;
    uint8_t* host = nullptr;  // Set instead of `ranges` for host-memory buffers.
    uint64_t cache_penalty_ns = 0;
  };

  // Validates + translates an MR-relative access, charging this NIC's cache
  // penalties into `resolved.cache_penalty_ns` (not yet realized).
  StatusOr<Resolved> ResolveOnNic(uint32_t key, uint64_t addr, uint64_t length,
                                  uint32_t required_access);

  // Reserves NIC engine occupancy; returns the engine finish time (ns).
  uint64_t ReserveEngine(uint64_t earliest_ns, uint64_t occupancy_ns);

  // Absolute finish time of a one-way transfer to `remote` starting no
  // earlier than `earliest_ns`, or Fabric::kDropped under failure injection.
  // `queue_ns_out` accumulates the transfer's port-queueing share.
  uint64_t FinishOrDrop(Rnic* remote, uint64_t bytes, uint64_t earliest_ns,
                        TransferFaults* faults_out = nullptr, uint64_t* queue_ns_out = nullptr);
  // Same, for the reverse direction (remote -> this node): read responses.
  uint64_t FinishOrDropFrom(Rnic* remote, uint64_t bytes, uint64_t earliest_ns,
                            uint64_t* queue_ns_out = nullptr);

  // Copies `len` bytes between resolved buffers (physical fragments on any
  // node, or host memory); this is the DMA engine.
  void CopyResolved(const Resolved& src, const Resolved& dst, uint64_t len);

  void PushSendCompletion(Qp* qp, const WorkRequest& wr, Status status, uint64_t ready_at);

  Status ExecuteOneSided(Qp* qp, const WorkRequest& wr, Rnic* remote);
  Status ExecuteSend(Qp* qp, const WorkRequest& wr, Rnic* remote, uint32_t dst_qpn);
  Status ExecuteAtomic(Qp* qp, const WorkRequest& wr, Rnic* remote);

  const NodeId node_;
  const SimParams& params_;
  PhysMem* const mem_;
  FabricPort* const port_;
  RnicDirectory* const directory_;

  LruCache mpt_cache_;
  LruCache mtt_cache_;
  LruCache qpc_cache_;

  // Charges the host-side post cost for `wr`: a full doorbell (rnic_post_ns),
  // or the per-extra-WQE increment when the post batches with the previous
  // one on the same QP. Tracks per-thread batch state and records closed
  // batch sizes into the doorbell histogram.
  void ChargePostCost(Qp* qp, const WorkRequest& wr);

  RateWindow engine_capacity_;  // Windowed processing-engine occupancy.
  std::atomic<uint64_t> ops_posted_{0};
  std::atomic<uint64_t> doorbells_{0};
  std::atomic<uint64_t> wqes_batched_{0};
  std::atomic<uint64_t> inline_sends_{0};
  std::atomic<uint64_t> wqes_signaled_{0};
  std::atomic<uint64_t> wqes_unsignaled_{0};
  std::atomic<telemetry::FixedHistogram*> doorbell_batch_hist_{nullptr};
  std::atomic<uint32_t> next_key_{1};
  std::atomic<uint32_t> next_qpn_{1};

  mutable SpinLock mr_mu_;
  std::unordered_map<uint32_t, MrEntry> mrs_;

  mutable SpinLock qp_mu_;
  std::vector<std::unique_ptr<Qp>> qps_;
  std::unordered_map<uint32_t, Qp*> qp_index_;
  std::vector<std::unique_ptr<Cq>> cqs_;

  // Atomic ops on remote memory must be serialized per target NIC (real RNICs
  // serialize atomics in the responder).
  SpinLock atomic_mu_;
};

}  // namespace lt

#endif  // SRC_RNIC_RNIC_H_
