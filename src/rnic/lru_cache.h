// Fixed-capacity LRU set used to model the RNIC's on-chip SRAM caches
// (MPT entries for MR keys, MTT entries for PTEs, QP contexts).
//
// Touch(key) returns true on hit; on miss the key is inserted, evicting the
// least-recently-used entry when at capacity. Thread-safe (the RNIC engine is
// driven concurrently by every issuing thread).
#ifndef SRC_RNIC_LRU_CACHE_H_
#define SRC_RNIC_LRU_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <unordered_map>

#include "src/common/sync_util.h"

namespace lt {

class LruCache {
 public:
  explicit LruCache(size_t capacity) : capacity_(capacity) {}

  // Returns true if `key` was cached (and refreshes it); on miss, inserts it.
  bool Touch(uint64_t key) {
    std::lock_guard<SpinLock> lock(mu_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      order_.splice(order_.begin(), order_, it->second);
      hits_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    if (order_.size() >= capacity_) {
      index_.erase(order_.back());
      order_.pop_back();
      evictions_.fetch_add(1, std::memory_order_relaxed);
    }
    order_.push_front(key);
    index_[key] = order_.begin();
    return false;
  }

  // Removes a key if present (MR deregistration, QP teardown).
  void Erase(uint64_t key) {
    std::lock_guard<SpinLock> lock(mu_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      order_.erase(it->second);
      index_.erase(it);
    }
  }

  size_t capacity() const { return capacity_; }
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  uint64_t evictions() const { return evictions_.load(std::memory_order_relaxed); }

  size_t size() const {
    std::lock_guard<SpinLock> lock(mu_);
    return order_.size();
  }

 private:
  const size_t capacity_;
  mutable SpinLock mu_;
  std::list<uint64_t> order_;
  std::unordered_map<uint64_t, std::list<uint64_t>::iterator> index_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace lt

#endif  // SRC_RNIC_LRU_CACHE_H_
