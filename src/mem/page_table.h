// Per-process page table for the simulated machines.
//
// Native RDMA registers memory regions by *virtual* address: the region is
// virtually contiguous but its pages are physically scattered, which is
// exactly why a real RNIC must cache PTEs (MTT entries) per page. This class
// reproduces that property: AllocVirt maps each virtual page to an
// independently-allocated physical page.
#ifndef SRC_MEM_PAGE_TABLE_H_
#define SRC_MEM_PAGE_TABLE_H_

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/mem/addr.h"
#include "src/mem/phys_mem.h"

namespace lt {

class PageTable {
 public:
  explicit PageTable(PhysMem* phys) : phys_(phys) {}
  ~PageTable();

  PageTable(const PageTable&) = delete;
  PageTable& operator=(const PageTable&) = delete;

  // Allocates `bytes` of virtual memory (rounded up to pages); each virtual
  // page is backed by its own physical page, deliberately not contiguous.
  StatusOr<VirtAddr> AllocVirt(uint64_t bytes);

  // Releases a virtual allocation made with AllocVirt.
  Status FreeVirt(VirtAddr addr);

  // Translates one virtual address to (physical page base + offset). Fails if
  // unmapped.
  StatusOr<PhysAddr> Translate(VirtAddr addr) const;

  // Translates a virtual range into its per-page physical fragments.
  StatusOr<std::vector<PhysRange>> TranslateRange(NodeId node, VirtAddr addr,
                                                  uint64_t len) const;

  // Number of distinct pages spanned by [addr, addr+len).
  uint64_t PagesSpanned(VirtAddr addr, uint64_t len) const;

  size_t page_size() const { return phys_->page_size(); }
  PhysMem* phys() const { return phys_; }

 private:
  PhysMem* const phys_;

  mutable std::mutex mu_;
  uint64_t next_vpage_ = 0x1000;  // Leave low VA space unmapped (null guard).
  std::unordered_map<uint64_t, PhysAddr> vpage_to_ppage_;
  std::unordered_map<uint64_t, uint64_t> alloc_pages_;  // start vpage -> count
};

}  // namespace lt

#endif  // SRC_MEM_PAGE_TABLE_H_
