// Address types for the simulated machines.
//
// A PhysAddr is a byte offset into one node's physical memory pool. A
// VirtAddr is a byte address in one simulated process's virtual address
// space, translated by that process's PageTable. NodeId identifies a machine
// in the cluster.
#ifndef SRC_MEM_ADDR_H_
#define SRC_MEM_ADDR_H_

#include <cstdint>

namespace lt {

using NodeId = uint32_t;
using PhysAddr = uint64_t;
using VirtAddr = uint64_t;

constexpr NodeId kInvalidNode = 0xffffffffu;
constexpr PhysAddr kInvalidPhysAddr = ~0ull;

// A physically-consecutive byte range on one node.
struct PhysRange {
  NodeId node = kInvalidNode;
  PhysAddr addr = kInvalidPhysAddr;
  uint64_t size = 0;
};

}  // namespace lt

#endif  // SRC_MEM_ADDR_H_
