#include "src/mem/page_table.h"

#include <algorithm>

namespace lt {

PageTable::~PageTable() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [vpage, ppage] : vpage_to_ppage_) {
    (void)phys_->Free(ppage);
  }
}

StatusOr<VirtAddr> PageTable::AllocVirt(uint64_t bytes) {
  if (bytes == 0) {
    return Status::InvalidArgument("zero-byte virtual allocation");
  }
  const size_t page = phys_->page_size();
  uint64_t pages = (bytes + page - 1) / page;

  std::lock_guard<std::mutex> lock(mu_);
  uint64_t start_vpage = next_vpage_;
  std::vector<PhysAddr> backing;
  backing.reserve(pages);
  for (uint64_t i = 0; i < pages; ++i) {
    auto ppage = phys_->AllocContiguous(page);
    if (!ppage.ok()) {
      for (PhysAddr pa : backing) {
        (void)phys_->Free(pa);
      }
      return ppage.status();
    }
    backing.push_back(*ppage);
  }
  for (uint64_t i = 0; i < pages; ++i) {
    vpage_to_ppage_[start_vpage + i] = backing[i];
  }
  alloc_pages_[start_vpage] = pages;
  next_vpage_ += pages + 1;  // Guard page between allocations.
  return static_cast<VirtAddr>(start_vpage * page);
}

Status PageTable::FreeVirt(VirtAddr addr) {
  const size_t page = phys_->page_size();
  if (addr % page != 0) {
    return Status::InvalidArgument("free of non-page-aligned virtual address");
  }
  uint64_t start_vpage = addr / page;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = alloc_pages_.find(start_vpage);
  if (it == alloc_pages_.end()) {
    return Status::NotFound("virtual range not allocated");
  }
  for (uint64_t i = 0; i < it->second; ++i) {
    auto map_it = vpage_to_ppage_.find(start_vpage + i);
    if (map_it != vpage_to_ppage_.end()) {
      (void)phys_->Free(map_it->second);
      vpage_to_ppage_.erase(map_it);
    }
  }
  alloc_pages_.erase(it);
  return Status::Ok();
}

StatusOr<PhysAddr> PageTable::Translate(VirtAddr addr) const {
  const size_t page = phys_->page_size();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = vpage_to_ppage_.find(addr / page);
  if (it == vpage_to_ppage_.end()) {
    return Status::NotFound("virtual address not mapped");
  }
  return static_cast<PhysAddr>(it->second + addr % page);
}

StatusOr<std::vector<PhysRange>> PageTable::TranslateRange(NodeId node, VirtAddr addr,
                                                           uint64_t len) const {
  if (len == 0) {
    return Status::InvalidArgument("zero-length range");
  }
  const size_t page = phys_->page_size();
  std::vector<PhysRange> out;
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t cursor = addr;
  uint64_t remaining = len;
  while (remaining > 0) {
    uint64_t in_page = page - cursor % page;
    uint64_t take = std::min<uint64_t>(in_page, remaining);
    auto it = vpage_to_ppage_.find(cursor / page);
    if (it == vpage_to_ppage_.end()) {
      return Status::NotFound("virtual range not fully mapped");
    }
    PhysAddr pa = it->second + cursor % page;
    // Merge with previous fragment when physically adjacent.
    if (!out.empty() && out.back().addr + out.back().size == pa) {
      out.back().size += take;
    } else {
      out.push_back(PhysRange{node, pa, take});
    }
    cursor += take;
    remaining -= take;
  }
  return out;
}

uint64_t PageTable::PagesSpanned(VirtAddr addr, uint64_t len) const {
  const size_t page = phys_->page_size();
  if (len == 0) {
    return 0;
  }
  uint64_t first = addr / page;
  uint64_t last = (addr + len - 1) / page;
  return last - first + 1;
}

}  // namespace lt
