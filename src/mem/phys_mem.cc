#include "src/mem/phys_mem.h"

#include <cassert>
#include <cstring>

namespace lt {

PhysMem::PhysMem(uint64_t size_bytes, size_t page_size)
    : size_(size_bytes - (size_bytes % page_size)),
      page_size_(page_size),
      data_(new uint8_t[size_]) {
  assert(size_ > 0);
  std::memset(data_.get(), 0, size_);
  free_runs_[0] = size_ / page_size_;
}

StatusOr<PhysAddr> PhysMem::AllocContiguous(uint64_t bytes) {
  if (bytes == 0) {
    return Status::InvalidArgument("zero-byte allocation");
  }
  uint64_t pages = (bytes + page_size_ - 1) / page_size_;
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = free_runs_.begin(); it != free_runs_.end(); ++it) {
    if (it->second >= pages) {
      uint64_t start_page = it->first;
      uint64_t run = it->second;
      free_runs_.erase(it);
      if (run > pages) {
        free_runs_[start_page + pages] = run - pages;
      }
      allocations_[start_page] = pages;
      return static_cast<PhysAddr>(start_page * page_size_);
    }
  }
  return Status::ResourceExhausted("no contiguous physical range of requested size");
}

Status PhysMem::Free(PhysAddr addr) {
  if (addr % page_size_ != 0) {
    return Status::InvalidArgument("free of non-page-aligned physical address");
  }
  uint64_t start_page = addr / page_size_;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = allocations_.find(start_page);
  if (it == allocations_.end()) {
    return Status::NotFound("physical range not allocated");
  }
  uint64_t pages = it->second;
  allocations_.erase(it);

  // Insert and coalesce with neighbors.
  auto inserted = free_runs_.emplace(start_page, pages).first;
  if (inserted != free_runs_.begin()) {
    auto prev = std::prev(inserted);
    if (prev->first + prev->second == inserted->first) {
      prev->second += inserted->second;
      free_runs_.erase(inserted);
      inserted = prev;
    }
  }
  auto next = std::next(inserted);
  if (next != free_runs_.end() && inserted->first + inserted->second == next->first) {
    inserted->second += next->second;
    free_runs_.erase(next);
  }
  return Status::Ok();
}

uint8_t* PhysMem::Data(PhysAddr addr, uint64_t len) {
  assert(addr + len <= size_ && "physical access out of range");
  return data_.get() + addr;
}

const uint8_t* PhysMem::Data(PhysAddr addr, uint64_t len) const {
  assert(addr + len <= size_ && "physical access out of range");
  return data_.get() + addr;
}

uint64_t PhysMem::allocated_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& [start, pages] : allocations_) {
    total += pages * page_size_;
  }
  return total;
}

uint64_t PhysMem::free_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& [start, pages] : free_runs_) {
    total += pages * page_size_;
  }
  return total;
}

}  // namespace lt
