// Per-node physical memory: one flat byte pool with a page-granular
// first-fit allocator that can hand out physically-consecutive ranges.
//
// LITE allocates LMR chunks here directly (physical addressing); native-Verbs
// processes allocate virtual memory whose pages also come from this pool via
// PageTable.
#ifndef SRC_MEM_PHYS_MEM_H_
#define SRC_MEM_PHYS_MEM_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "src/common/status.h"
#include "src/mem/addr.h"

namespace lt {

class PhysMem {
 public:
  PhysMem(uint64_t size_bytes, size_t page_size);

  PhysMem(const PhysMem&) = delete;
  PhysMem& operator=(const PhysMem&) = delete;

  // Allocates a physically-consecutive range of at least `bytes` (rounded up
  // to whole pages). Returns the physical address of the first byte.
  StatusOr<PhysAddr> AllocContiguous(uint64_t bytes);

  // Frees a range previously returned by AllocContiguous.
  Status Free(PhysAddr addr);

  // Raw host pointer for a physical address (bounds-checked).
  uint8_t* Data(PhysAddr addr, uint64_t len);
  const uint8_t* Data(PhysAddr addr, uint64_t len) const;

  uint64_t size_bytes() const { return size_; }
  size_t page_size() const { return page_size_; }
  uint64_t allocated_bytes() const;
  uint64_t free_bytes() const;

 private:
  const uint64_t size_;
  const size_t page_size_;
  std::unique_ptr<uint8_t[]> data_;

  mutable std::mutex mu_;
  // Free list: start page -> page count. Allocation map: start page -> count.
  std::map<uint64_t, uint64_t> free_runs_;
  std::map<uint64_t, uint64_t> allocations_;
};

}  // namespace lt

#endif  // SRC_MEM_PHYS_MEM_H_
