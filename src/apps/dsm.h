// LITE-DSM: the paper's kernel-level distributed shared memory (Sec. 8.4).
//
// Page-based, multiple-reader/single-writer, release consistency, home-based
// (HLRC): page p's home is nodes[p mod N]. Remote page reads are pure
// one-sided LT_read (no home-node CPU on the read path); cacher registration
// rides an asynchronous no-reply RPC off the critical path. Acquire/Release
// run a home-node protocol over LT_RPC, and release-time invalidations fan
// out with the multicast RPC extension the paper added for exactly this use
// (Sec. 8.4).
//
// The real system intercepts kernel page faults; as a user-space
// reproduction we expose explicit Read/Write/Acquire/Release calls that
// perform the same protocol steps with the same communication pattern (see
// DESIGN.md substitutions).
#ifndef SRC_APPS_DSM_H_
#define SRC_APPS_DSM_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/apps/graph.h"
#include "src/lite/lite_cluster.h"

namespace liteapp {

using lite::LiteClient;
using lt::Status;
using lt::StatusOr;

class LiteDsm {
 public:
  static constexpr uint32_t kPageSize = 4096;
  static constexpr lite::RpcFuncId kDsmFunc = 50;

  // Collective construction: every participating node builds one LiteDsm
  // with the same `nodes` list and `total_pages`; `instance_id` separates
  // independent DSM deployments on one cluster. Node nodes[0] allocates the
  // backing LMRs.
  LiteDsm(lite::LiteCluster* cluster, lt::NodeId self, std::vector<lt::NodeId> nodes,
          uint64_t total_pages, uint32_t instance_id = 0);
  ~LiteDsm();

  // Must be called on all instances after construction (wires handles and
  // starts the per-node protocol service thread).
  Status Start();
  void Stop();

  uint64_t total_bytes() const { return total_pages_ * kPageSize; }

  // Data path. Reads hit the local page cache or fetch the page from home
  // with one LT_read. Writes require holding the page via Acquire.
  Status Read(uint64_t gaddr, void* buf, uint32_t len);
  Status Write(uint64_t gaddr, const void* buf, uint32_t len);

  // Release consistency: Acquire gains exclusive write ownership of the
  // pages covering [gaddr, gaddr+len) and fetches fresh copies; Release
  // pushes dirty pages home and invalidates remote cached copies.
  Status Acquire(uint64_t gaddr, uint32_t len);
  Status Release(uint64_t gaddr, uint32_t len);

  // Stats.
  uint64_t cache_hits() const { return cache_hits_.load(); }
  uint64_t cache_misses() const { return cache_misses_.load(); }

 private:
  struct CachedPage {
    std::vector<uint8_t> data;
    bool dirty = false;
    bool writable = false;
  };

  // Home-side state for pages homed here.
  struct HomePage {
    lt::NodeId writer = lt::kInvalidNode;
    std::vector<std::pair<lite::ReplyToken, lt::NodeId>> wait_queue;
    std::unordered_set<lt::NodeId> cachers;
  };

  lt::NodeId HomeOf(uint64_t page) const { return nodes_[page % nodes_.size()]; }
  uint64_t HomeOffset(uint64_t page) const { return (page / nodes_.size()) * kPageSize; }
  std::string BackingName(lt::NodeId node) const;

  Status FetchPage(uint64_t page, CachedPage* out);
  void ServiceLoop();

  lite::LiteCluster* const cluster_;
  const lt::NodeId self_;
  const std::vector<lt::NodeId> nodes_;
  const uint64_t total_pages_;
  const uint32_t instance_id_;

  std::unique_ptr<LiteClient> client_;  // Kernel-level (it IS the kernel).
  std::unordered_map<lt::NodeId, lite::Lh> backing_;  // Home LMR handles.

  std::mutex cache_mu_;
  std::unordered_map<uint64_t, CachedPage> cache_;

  std::mutex home_mu_;
  std::unordered_map<uint64_t, HomePage> home_pages_;

  std::thread service_;
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> cache_hits_{0};
  std::atomic<uint64_t> cache_misses_{0};
};

// LITE-Graph-DSM (paper Sec. 8.4): the LITE-Graph engine on top of LiteDsm —
// ranks live in the DSM space and are accessed with plain reads/writes plus
// acquire/release, instead of LITE memory APIs.
PageRankResult LiteGraphDsmPageRank(lite::LiteCluster* cluster, const SyntheticGraph& graph,
                                    uint32_t num_nodes, const PageRankOptions& options);

}  // namespace liteapp

#endif  // SRC_APPS_DSM_H_
