#include "src/apps/mapreduce.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <mutex>
#include <cstring>
#include <thread>

#include "src/common/timing.h"
#include "src/tcpip/tcp_stack.h"

namespace liteapp {
namespace {

using lt::ComputeScope;
using lt::NowNs;
using lt::SyncClockTo;

// Unique namespace per job so several jobs can share one cluster.
std::atomic<uint32_t> g_job_counter{0};

std::string JobName(uint32_t job, const std::string& what) {
  return "mr" + std::to_string(job) + "_" + what;
}

// Runs `fn(i)` on `n` threads whose virtual clocks start at `start_vtime`;
// returns the max end vtime across threads.
uint64_t RunPhase(size_t n, uint64_t start_vtime, const std::function<void(size_t)>& fn) {
  std::vector<uint64_t> ends(n, 0);
  std::vector<std::thread> threads;
  threads.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    threads.emplace_back([&, i] {
      SyncClockTo(start_vtime);
      fn(i);
      ends[i] = NowNs();
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  uint64_t end = start_vtime;
  for (uint64_t e : ends) {
    end = std::max(end, e);
  }
  return end;
}

lt::Status SendFramed(lt::TcpConn* conn, const void* data, uint32_t len) {
  LT_RETURN_IF_ERROR(conn->Send(&len, sizeof(len)));
  if (len > 0) {
    return conn->StreamSend(data, len);
  }
  return lt::Status::Ok();
}

lt::StatusOr<std::vector<uint8_t>> RecvFramed(lt::TcpConn* conn) {
  uint32_t len = 0;
  LT_RETURN_IF_ERROR(conn->RecvExact(&len, sizeof(len)));
  std::vector<uint8_t> out(len);
  if (len > 0) {
    LT_RETURN_IF_ERROR(conn->RecvExact(out.data(), len));
  }
  return out;
}

}  // namespace

// ------------------------------------------------------- WordCount core

WordCounts CountWords(const char* text, size_t len) {
  WordCounts counts;
  size_t i = 0;
  while (i < len) {
    while (i < len && text[i] == ' ') {
      ++i;
    }
    size_t start = i;
    while (i < len && text[i] != ' ') {
      ++i;
    }
    if (i > start) {
      counts[std::string(text + start, i - start)]++;
    }
  }
  return counts;
}

void MergeCounts(WordCounts* into, const WordCounts& from) {
  for (const auto& [word, count] : from) {
    (*into)[word] += count;
  }
}

std::vector<uint8_t> SerializeCounts(const WordCounts& counts) {
  std::vector<uint8_t> out;
  uint32_t n = static_cast<uint32_t>(counts.size());
  out.resize(sizeof(n));
  std::memcpy(out.data(), &n, sizeof(n));
  for (const auto& [word, count] : counts) {
    uint32_t wl = static_cast<uint32_t>(word.size());
    size_t off = out.size();
    out.resize(off + sizeof(wl) + wl + sizeof(count));
    std::memcpy(out.data() + off, &wl, sizeof(wl));
    std::memcpy(out.data() + off + sizeof(wl), word.data(), wl);
    std::memcpy(out.data() + off + sizeof(wl) + wl, &count, sizeof(count));
  }
  return out;
}

WordCounts DeserializeCounts(const uint8_t* data, size_t len) {
  WordCounts counts;
  if (len < sizeof(uint32_t)) {
    return counts;
  }
  uint32_t n = 0;
  std::memcpy(&n, data, sizeof(n));
  size_t off = sizeof(n);
  for (uint32_t i = 0; i < n && off + sizeof(uint32_t) <= len; ++i) {
    uint32_t wl = 0;
    std::memcpy(&wl, data + off, sizeof(wl));
    off += sizeof(wl);
    if (off + wl + sizeof(uint64_t) > len) {
      break;
    }
    std::string word(reinterpret_cast<const char*>(data + off), wl);
    off += wl;
    uint64_t count = 0;
    std::memcpy(&count, data + off, sizeof(count));
    off += sizeof(count);
    counts[word] = count;
  }
  return counts;
}

uint32_t PartitionOf(const std::string& word, uint32_t num_partitions) {
  uint64_t h = 1469598103934665603ull;
  for (char c : word) {
    h = (h ^ static_cast<uint8_t>(c)) * 1099511628211ull;
  }
  return static_cast<uint32_t>(h % num_partitions);
}

std::vector<std::pair<size_t, size_t>> SplitCorpus(const char* text, size_t len, size_t pieces) {
  std::vector<std::pair<size_t, size_t>> splits;
  size_t target = len / pieces;
  size_t start = 0;
  for (size_t i = 0; i < pieces && start < len; ++i) {
    size_t end = (i == pieces - 1) ? len : std::min(len, start + target);
    while (end < len && text[end] != ' ') {
      ++end;  // Never cut a word.
    }
    splits.emplace_back(start, end - start);
    start = end;
  }
  return splits;
}

// ------------------------------------------------------------- Phoenix

MrResult PhoenixWordCount(const std::string& corpus, int threads) {
  MrResult result;
  const size_t t_count = static_cast<size_t>(threads);
  const uint64_t t0 = NowNs();
  auto splits = SplitCorpus(corpus.data(), corpus.size(), t_count);

  // Map: Phoenix emits intermediate pairs into a GLOBAL tree-structured
  // index shared by all mapper threads (partition-striped). This is the
  // structural difference from LITE-MR's per-node indexes that the paper
  // identifies as Phoenix's multicore bottleneck (Sec. 8.2).
  std::vector<std::map<std::string, uint64_t>> global_index(t_count);
  std::vector<std::unique_ptr<std::mutex>> index_mu;
  for (size_t i = 0; i < t_count; ++i) {
    index_mu.push_back(std::make_unique<std::mutex>());
  }
  uint64_t map_end = RunPhase(splits.size(), t0, [&](size_t t) {
    ComputeScope compute;
    WordCounts local = CountWords(corpus.data() + splits[t].first, splits[t].second);
    for (auto& [word, count] : local) {
      uint32_t p = PartitionOf(word, static_cast<uint32_t>(t_count));
      std::lock_guard<std::mutex> lock(*index_mu[p]);
      global_index[p][word] += count;  // Ordered-tree insert/update.
    }
  });
  result.map_ns = map_end - t0;

  // Reduce: thread r walks its partition of the global index.
  std::vector<WordCounts> reduced(t_count);
  uint64_t reduce_end = RunPhase(t_count, map_end, [&](size_t r) {
    ComputeScope compute;
    for (const auto& [word, count] : global_index[r]) {
      reduced[r][word] += count;
    }
  });
  result.reduce_ns = reduce_end - map_end;

  // Merge: 2-way tree merge of the reduced partitions.
  uint64_t merge_start = reduce_end;
  for (size_t step = 1; step < t_count; step *= 2) {
    merge_start = RunPhase(t_count / (2 * step) + 1, merge_start, [&](size_t i) {
      size_t left = i * 2 * step;
      size_t right = left + step;
      if (right < t_count) {
        ComputeScope compute;
        MergeCounts(&reduced[left], reduced[right]);
        reduced[right].clear();
      }
    });
  }
  result.merge_ns = merge_start - reduce_end;
  result.counts = std::move(reduced[0]);
  result.total_ns = merge_start - t0;
  SyncClockTo(merge_start);  // Keep the caller's clock ahead of this run.
  return result;
}

// ------------------------------------------------------------- LITE-MR

MrResult LiteMrWordCount(lite::LiteCluster* cluster, const std::string& corpus,
                         uint32_t num_workers, int threads_per_worker) {
  MrResult result;
  const uint32_t job = g_job_counter.fetch_add(1);
  const uint32_t tasks = num_workers * static_cast<uint32_t>(threads_per_worker);
  const uint32_t kBarrierCount = tasks;  // Worker threads only.

  auto master = cluster->CreateClient(0);
  auto splits = SplitCorpus(corpus.data(), corpus.size(), tasks);

  // Master publishes the input as one LMR.
  const uint64_t t0 = NowNs();
  auto input = master->Malloc(corpus.size(), JobName(job, "input"));
  (void)master->Write(*input, 0, corpus.data(), corpus.size());

  std::vector<uint64_t> phase_marks(3, 0);
  std::mutex marks_mu;
  auto mark = [&](size_t phase) {
    std::lock_guard<std::mutex> lock(marks_mu);
    phase_marks[phase] = std::max(phase_marks[phase], NowNs());
  };

  uint64_t end = RunPhase(tasks, NowNs(), [&](size_t task) {
    uint32_t worker_node = 1 + static_cast<uint32_t>(task) % num_workers;
    auto client = cluster->CreateClient(worker_node);

    // ---- Map ----
    auto in_lh = client->Map(JobName(job, "input"));
    std::vector<char> text(splits[task].second);
    (void)client->Read(*in_lh, splits[task].first, text.data(), text.size());
    std::vector<WordCounts> partitions(tasks);
    {
      ComputeScope compute;
      WordCounts local = CountWords(text.data(), text.size());
      for (auto& [word, count] : local) {
        partitions[PartitionOf(word, tasks)][word] += count;
      }
    }
    // Publish one LMR per finalized partition buffer (paper Sec. 8.2).
    for (uint32_t r = 0; r < tasks; ++r) {
      std::vector<uint8_t> blob;
      {
        ComputeScope compute;
        blob = SerializeCounts(partitions[r]);
      }
      std::string name = JobName(job, "m" + std::to_string(task) + "_" + std::to_string(r));
      auto lh = client->Malloc(std::max<size_t>(blob.size(), 1) + 8, name);
      uint64_t blob_len = blob.size();
      (void)client->Write(*lh, 0, &blob_len, 8);
      if (!blob.empty()) {
        (void)client->Write(*lh, 8, blob.data(), blob.size());
      }
    }
    (void)client->Barrier(JobName(job, "map"), kBarrierCount);
    mark(0);

    // ---- Reduce: this thread owns partition `task`; LT_read every map
    // output directly from the mapper nodes (paper Sec. 8.2). ----
    WordCounts merged;
    for (uint32_t m = 0; m < tasks; ++m) {
      std::string name = JobName(job, "m" + std::to_string(m) + "_" + std::to_string(task));
      auto lh = client->Map(name);
      if (!lh.ok()) {
        continue;
      }
      uint64_t blob_len = 0;
      (void)client->Read(*lh, 0, &blob_len, 8);
      std::vector<uint8_t> blob(blob_len);
      if (blob_len > 0) {
        (void)client->Read(*lh, 8, blob.data(), blob_len);
      }
      ComputeScope compute;
      MergeCounts(&merged, DeserializeCounts(blob.data(), blob.size()));
    }
    {
      std::vector<uint8_t> blob;
      {
        ComputeScope compute;
        blob = SerializeCounts(merged);
      }
      std::string name = JobName(job, "red" + std::to_string(task) + "_0");
      auto lh = client->Malloc(std::max<size_t>(blob.size(), 1) + 8, name);
      uint64_t blob_len = blob.size();
      (void)client->Write(*lh, 0, &blob_len, 8);
      if (!blob.empty()) {
        (void)client->Write(*lh, 8, blob.data(), blob.size());
      }
    }
    (void)client->Barrier(JobName(job, "reduce"), kBarrierCount);
    mark(1);

    // ---- Merge: 2-way distributed tree merge (paper Sec. 8.2). ----
    uint32_t round = 0;
    for (uint32_t step = 1; step < tasks; step *= 2, ++round) {
      if (task % (2 * step) == 0 && task + step < tasks) {
        // Read the partner's current result and merge into ours.
        std::string mine = JobName(job, "red" + std::to_string(task) + "_" +
                                            std::to_string(round));
        std::string partner = JobName(job, "red" + std::to_string(task + step) + "_" +
                                               std::to_string(round));
        WordCounts acc;
        for (const std::string& name : {mine, partner}) {
          auto lh = client->Map(name);
          if (!lh.ok()) {
            continue;
          }
          uint64_t blob_len = 0;
          (void)client->Read(*lh, 0, &blob_len, 8);
          std::vector<uint8_t> blob(blob_len);
          if (blob_len > 0) {
            (void)client->Read(*lh, 8, blob.data(), blob_len);
          }
          ComputeScope compute;
          MergeCounts(&acc, DeserializeCounts(blob.data(), blob.size()));
        }
        std::vector<uint8_t> blob;
        {
          ComputeScope compute;
          blob = SerializeCounts(acc);
        }
        std::string next = JobName(job, "red" + std::to_string(task) + "_" +
                                            std::to_string(round + 1));
        auto lh = client->Malloc(std::max<size_t>(blob.size(), 1) + 8, next);
        uint64_t blob_len = blob.size();
        (void)client->Write(*lh, 0, &blob_len, 8);
        if (!blob.empty()) {
          (void)client->Write(*lh, 8, blob.data(), blob.size());
        }
      }
      (void)client->Barrier(JobName(job, "merge" + std::to_string(round)), kBarrierCount);
    }
    mark(2);
  });

  // Master reads the final result.
  uint32_t rounds = 0;
  for (uint32_t step = 1; step < tasks; step *= 2) {
    ++rounds;
  }
  SyncClockTo(end);
  auto final_lh = master->Map(JobName(job, "red0_" + std::to_string(rounds)));
  if (final_lh.ok()) {
    uint64_t blob_len = 0;
    (void)master->Read(*final_lh, 0, &blob_len, 8);
    std::vector<uint8_t> blob(blob_len);
    if (blob_len > 0) {
      (void)master->Read(*final_lh, 8, blob.data(), blob_len);
    }
    result.counts = DeserializeCounts(blob.data(), blob.size());
  }
  result.map_ns = phase_marks[0] - t0;
  result.reduce_ns = phase_marks[1] - phase_marks[0];
  result.merge_ns = NowNs() - phase_marks[1];
  result.total_ns = NowNs() - t0;
  return result;
}

// ---------------------------------------------------------- Hadoop-like

MrResult HadoopWordCount(lt::Cluster* cluster, const std::string& corpus, uint32_t num_workers,
                         int threads_per_worker, const HadoopCosts& costs) {
  MrResult result;
  const uint32_t tasks = num_workers * static_cast<uint32_t>(threads_per_worker);
  auto splits = SplitCorpus(corpus.data(), corpus.size(), tasks);
  auto disk = [&costs](uint64_t bytes) {
    lt::SpinFor(static_cast<uint64_t>(static_cast<double>(bytes) / costs.disk_bytes_per_ns));
  };

  // Connection mesh: master->task (input + final), task->task (shuffle).
  std::vector<std::unique_ptr<lt::TcpConn>> master_to_task(tasks);
  std::vector<std::unique_ptr<lt::TcpConn>> task_from_master(tasks);
  std::vector<std::vector<std::unique_ptr<lt::TcpConn>>> shuffle_out(tasks);
  std::vector<std::vector<std::unique_ptr<lt::TcpConn>>> shuffle_in(tasks);
  for (uint32_t t = 0; t < tasks; ++t) {
    shuffle_out[t].resize(tasks);
    shuffle_in[t].resize(tasks);
  }
  auto node_of = [&](uint32_t task) { return 1 + task % num_workers; };
  for (uint32_t t = 0; t < tasks; ++t) {
    auto pair = lt::TcpStack::ConnectPair(&cluster->node(0)->tcp(),
                                          &cluster->node(node_of(t))->tcp());
    master_to_task[t] = std::move(pair.first);
    task_from_master[t] = std::move(pair.second);
    for (uint32_t r = 0; r < tasks; ++r) {
      auto sp = lt::TcpStack::ConnectPair(&cluster->node(node_of(t))->tcp(),
                                          &cluster->node(node_of(r))->tcp());
      shuffle_out[t][r] = std::move(sp.first);
      shuffle_in[r][t] = std::move(sp.second);
    }
  }

  const uint64_t t0 = NowNs();
  lt::SpinFor(costs.job_setup_ns);
  const uint64_t setup_done = NowNs();

  std::atomic<uint64_t> map_end{0};
  std::atomic<uint64_t> reduce_end{0};

  // Feeder: master streams each task's input split.
  std::thread feeder([&] {
    SyncClockTo(setup_done);
    for (uint32_t t = 0; t < tasks; ++t) {
      (void)SendFramed(master_to_task[t].get(), corpus.data() + splits[t].first,
                       static_cast<uint32_t>(splits[t].second));
    }
  });

  uint64_t end = RunPhase(tasks, setup_done, [&](size_t task) {
    // ---- Map task ----
    lt::SpinFor(costs.task_schedule_ns);
    auto text = RecvFramed(task_from_master[task].get());
    std::vector<WordCounts> partitions(tasks);
    {
      ComputeScope compute;
      WordCounts local = CountWords(reinterpret_cast<const char*>(text->data()), text->size());
      for (auto& [word, count] : local) {
        partitions[PartitionOf(word, tasks)][word] += count;
      }
    }
    // Materialize intermediate output to local disk, then shuffle.
    std::vector<std::vector<uint8_t>> blobs(tasks);
    uint64_t spill = 0;
    for (uint32_t r = 0; r < tasks; ++r) {
      ComputeScope compute;
      blobs[r] = SerializeCounts(partitions[r]);
      spill += blobs[r].size();
    }
    disk(spill);
    for (uint32_t r = 0; r < tasks; ++r) {
      disk(blobs[r].size());  // Shuffle re-reads the spill from disk.
      (void)SendFramed(shuffle_out[task][r].get(), blobs[r].data(),
                       static_cast<uint32_t>(blobs[r].size()));
    }
    uint64_t prev = map_end.load();
    while (prev < NowNs() && !map_end.compare_exchange_weak(prev, NowNs())) {
    }

    // ---- Reduce task ----
    lt::SpinFor(costs.task_schedule_ns);
    WordCounts merged;
    for (uint32_t m = 0; m < tasks; ++m) {
      auto blob = RecvFramed(shuffle_in[task][m].get());
      if (!blob.ok()) {
        continue;
      }
      ComputeScope compute;
      MergeCounts(&merged, DeserializeCounts(blob->data(), blob->size()));
    }
    std::vector<uint8_t> out;
    {
      ComputeScope compute;
      out = SerializeCounts(merged);
    }
    disk(out.size());  // Reduce output to HDFS.
    prev = reduce_end.load();
    while (prev < NowNs() && !reduce_end.compare_exchange_weak(prev, NowNs())) {
    }

    // ---- Final collection: reducer ships its output to the master. ----
    (void)SendFramed(shuffle_out[task][task].get(), out.data(),
                     static_cast<uint32_t>(out.size()));
  });
  feeder.join();

  SyncClockTo(end);
  for (uint32_t t = 0; t < tasks; ++t) {
    auto blob = RecvFramed(shuffle_in[t][t].get());
    if (blob.ok()) {
      ComputeScope compute;
      MergeCounts(&result.counts, DeserializeCounts(blob->data(), blob->size()));
    }
  }
  result.map_ns = map_end.load() - t0;
  result.reduce_ns = reduce_end.load() - map_end.load();
  result.merge_ns = NowNs() - reduce_end.load();
  result.total_ns = NowNs() - t0;
  return result;
}

}  // namespace liteapp
