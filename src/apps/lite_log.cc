#include "src/apps/lite_log.h"

#include <cstring>

namespace liteapp {
namespace {

constexpr uint64_t kReservePtr = 0;
constexpr uint64_t kCommitCount = 8;
constexpr uint64_t kCleanedPtr = 16;
constexpr uint64_t kCleanerLock = 24;
constexpr uint64_t kMetaBytes = 32;

// Per-entry header inside the log.
struct EntryHeader {
  uint32_t magic = 0x10c0ffee;
  uint32_t len = 0;
};

std::string MetaName(const std::string& name) { return name + "__meta"; }

}  // namespace

StatusOr<LiteLog> LiteLog::Create(LiteClient* client, const std::string& name,
                                  uint64_t log_bytes) {
  auto log = client->Malloc(log_bytes, name);
  if (!log.ok()) {
    return log.status();
  }
  auto meta = client->Malloc(kMetaBytes, MetaName(name));
  if (!meta.ok()) {
    return meta.status();
  }
  uint64_t zeros[4] = {0, 0, 0, 0};
  LT_RETURN_IF_ERROR(client->Write(*meta, 0, zeros, sizeof(zeros)));
  return LiteLog(client, *log, *meta, log_bytes);
}

StatusOr<LiteLog> LiteLog::Open(LiteClient* client, const std::string& name) {
  auto log = client->Map(name);
  if (!log.ok()) {
    return log.status();
  }
  auto meta = client->Map(MetaName(name));
  if (!meta.ok()) {
    return meta.status();
  }
  auto size = client->instance()->LmrSize(*log);
  if (!size.ok()) {
    return size.status();
  }
  return LiteLog(client, *log, *meta, *size);
}

Status LiteLog::Commit(const std::vector<LogEntry>& entries) {
  // Buffer the transaction locally, then reserve once and write once
  // (paper: "writes to the log are buffered at a local node until commit").
  uint64_t total = 0;
  for (const LogEntry& e : entries) {
    total += sizeof(EntryHeader) + e.len;
  }
  if (total == 0 || total > log_bytes_) {
    return Status::InvalidArgument("empty or oversized transaction");
  }
  std::vector<uint8_t> staged(total);
  uint64_t off = 0;
  for (const LogEntry& e : entries) {
    EntryHeader hdr;
    hdr.len = e.len;
    std::memcpy(staged.data() + off, &hdr, sizeof(hdr));
    std::memcpy(staged.data() + off + sizeof(hdr), e.data, e.len);
    off += sizeof(hdr) + e.len;
  }

  // Reserve consecutive log space with one one-sided fetch-add.
  auto reserved = client_->FetchAdd(meta_, kReservePtr, total);
  if (!reserved.ok()) {
    return reserved.status();
  }
  uint64_t pos = *reserved % log_bytes_;

  // Write the transaction bytes (possibly wrapping once).
  uint64_t first = std::min(total, log_bytes_ - pos);
  LT_RETURN_IF_ERROR(client_->Write(log_, pos, staged.data(), first));
  if (first < total) {
    LT_RETURN_IF_ERROR(client_->Write(log_, 0, staged.data() + first, total - first));
  }
  // Mark the transaction committed.
  return client_->FetchAdd(meta_, kCommitCount, 1).status();
}

StatusOr<uint64_t> LiteLog::Clean() {
  // Grab the cleaner role with one-sided test-and-set.
  auto got = client_->TestSet(meta_, kCleanerLock, 0, 1);
  if (!got.ok()) {
    return got.status();
  }
  if (*got != 0) {
    return static_cast<uint64_t>(0);  // Another cleaner is active.
  }
  uint64_t reclaimed = 0;
  uint64_t reserve = 0;
  uint64_t cleaned = 0;
  Status st = client_->Read(meta_, kReservePtr, &reserve, 8);
  if (st.ok()) {
    st = client_->Read(meta_, kCleanedPtr, &cleaned, 8);
  }
  if (st.ok() && reserve > cleaned) {
    reclaimed = reserve - cleaned;
    st = client_->FetchAdd(meta_, kCleanedPtr, reclaimed).status();
  }
  // Release the cleaner lock.
  (void)client_->TestSet(meta_, kCleanerLock, 1, 0);
  if (!st.ok()) {
    return st;
  }
  return reclaimed;
}

Status LiteLog::ReadAt(uint64_t pos, void* buf, uint64_t len) {
  return client_->Read(log_, pos % log_bytes_, buf, len);
}

StatusOr<uint64_t> LiteLog::CommittedCount() {
  uint64_t count = 0;
  LT_RETURN_IF_ERROR(client_->Read(meta_, kCommitCount, &count, 8));
  return count;
}

}  // namespace liteapp
