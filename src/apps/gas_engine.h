// Generic distributed Gather-Apply-Scatter engine on LITE.
//
// LITE-Graph (paper Sec. 8.3) runs PageRank through a vertex-centric GAS
// loop whose entire network layer is ~20 lines of LITE calls. This header
// generalizes that engine to arbitrary vertex programs so downstream users
// get the same property: write Gather/Apply, get a distributed engine.
//
// Engine structure per superstep (identical to LITE-Graph):
//   1. gather:  bulk one-sided LT_read of every partition's state array,
//   2. apply:   Program::Apply per owned vertex (modeled compute cost),
//   3. barrier: LT_barrier so scatter never races a slower gatherer,
//   4. scatter: LT_lock + LT_write of the owned partition + LT_unlock,
//   5. active-count aggregation via LT_fetch-add (delta caching: the run
//      converges when no vertex changed beyond the program's threshold),
//   6. LT_barrier to close the superstep.
//
// Program requirements (see PageRankProgram below for a reference):
//   struct Program {
//     using State = <trivially copyable>;   // Travels through LMRs.
//     using Accum = <any type>;             // Gather accumulator.
//     State Init(uint32_t vertex, const SyntheticGraph& g) const;
//     Accum GatherInit() const;
//     void GatherEdge(Accum* acc, const State& src_state,
//                     uint32_t src_out_degree) const;
//     State Apply(uint32_t vertex, const State& old_state, const Accum& acc,
//                 uint32_t num_vertices) const;
//     bool Changed(const State& old_state, const State& new_state) const;
//   };
#ifndef SRC_APPS_GAS_ENGINE_H_
#define SRC_APPS_GAS_ENGINE_H_

#include <atomic>
#include <cmath>
#include <thread>
#include <type_traits>
#include <vector>

#include "src/apps/graph_detail.h"
#include "src/apps/workloads.h"
#include "src/common/timing.h"
#include "src/lite/lite_cluster.h"

namespace liteapp {

struct GasOptions {
  uint32_t max_iterations = 50;
  int threads_per_node = 4;  // Divides the modeled per-edge compute.
  // Modeled compute per edge gathered / per vertex applied.
  uint64_t edge_work_ns = 14;
  uint64_t vertex_work_ns = 6;
};

template <typename Program>
struct GasResult {
  std::vector<typename Program::State> states;
  uint32_t iterations = 0;
  uint64_t total_ns = 0;
  bool converged = false;
};

// Shared across ALL RunGas instantiations (a per-template static would let
// two different programs collide on LMR names within one cluster).
inline std::atomic<uint32_t> g_gas_job_counter{0};

// Runs `program` over `graph` partitioned across LITE nodes [0, num_nodes).
template <typename Program>
GasResult<Program> RunGas(lite::LiteCluster* cluster, const SyntheticGraph& graph,
                          uint32_t num_nodes, const GasOptions& options,
                          const Program& program) {
  using State = typename Program::State;
  static_assert(std::is_trivially_copyable_v<State>,
                "vertex state travels through LMRs: must be trivially copyable");

  const uint32_t job = g_gas_job_counter.fetch_add(1);
  auto name = [job](const std::string& what, uint32_t p) {
    return "gas" + std::to_string(job) + "_" + what + std::to_string(p);
  };

  GasResult<Program> result;
  auto parts = MakePartitioning(graph.num_vertices, num_nodes);
  GraphIndex idx = BuildIndex(graph, parts);

  // Setup (untimed): per-partition state LMRs + locks + the active counter.
  {
    auto setup = cluster->CreateClient(0);
    std::vector<State> init(graph.num_vertices);
    for (uint32_t v = 0; v < graph.num_vertices; ++v) {
      init[v] = program.Init(v, graph);
    }
    for (uint32_t p = 0; p < num_nodes; ++p) {
      lite::MallocOptions mo;
      mo.nodes = {p};
      uint64_t bytes = static_cast<uint64_t>(parts.End(p) - parts.Begin(p)) * sizeof(State);
      auto lh = setup->Malloc(bytes, name("state", p), mo);
      (void)setup->Write(*lh, 0, init.data() + parts.Begin(p), bytes);
      (void)setup->CreateLock(name("lock", p));
    }
    // One active-counter word per superstep (avoids reset races).
    uint64_t counter_bytes = std::max<uint64_t>(64, 8ull * options.max_iterations);
    auto counter = setup->Malloc(counter_bytes, name("active", 0));
    std::vector<uint8_t> zeros(counter_bytes, 0);
    (void)setup->Write(*counter, 0, zeros.data(), counter_bytes);
  }

  const uint64_t t0 = lt::NowNs();
  std::vector<uint64_t> ends(num_nodes, t0);
  std::vector<std::vector<State>> final_states(num_nodes);
  std::atomic<uint32_t> iterations_run{0};
  std::atomic<bool> converged{false};
  std::vector<std::thread> threads;

  for (uint32_t p = 0; p < num_nodes; ++p) {
    threads.emplace_back([&, p] {
      lt::SyncClockTo(t0);
      auto client = cluster->CreateClient(p);
      std::vector<lite::Lh> state_lh(num_nodes);
      for (uint32_t q = 0; q < num_nodes; ++q) {
        state_lh[q] = *client->Map(name("state", q));
      }
      auto my_lock = *client->OpenLock(name("lock", p));
      auto active_lh = *client->Map(name("active", 0));

      const uint32_t begin = parts.Begin(p);
      const uint32_t end = parts.End(p);
      std::vector<State> snapshot(graph.num_vertices);
      std::vector<State> mine(end - begin);

      for (uint32_t it = 0; it < options.max_iterations; ++it) {
        // 1. Gather inputs: bulk one-sided reads.
        for (uint32_t q = 0; q < num_nodes; ++q) {
          uint64_t bytes =
              static_cast<uint64_t>(parts.End(q) - parts.Begin(q)) * sizeof(State);
          (void)client->Read(state_lh[q], 0, snapshot.data() + parts.Begin(q), bytes);
        }
        // 2. Apply the vertex program over owned vertices.
        uint64_t edges = 0;
        uint64_t active = 0;
        for (uint32_t v = begin; v < end; ++v) {
          auto gathered = program.GatherInit();
          uint32_t lo = idx.in_offsets[p][v - begin];
          uint32_t hi = idx.in_offsets[p][v - begin + 1];
          edges += hi - lo;
          for (uint32_t e = lo; e < hi; ++e) {
            uint32_t u = idx.in_sources[p][e];
            program.GatherEdge(&gathered, snapshot[u], idx.out_degree[u]);
          }
          State next = program.Apply(v, snapshot[v], gathered, graph.num_vertices);
          if (program.Changed(snapshot[v], next)) {
            ++active;
          }
          mine[v - begin] = next;
        }
        lt::SpinFor((edges * options.edge_work_ns +
                     static_cast<uint64_t>(end - begin) * options.vertex_work_ns) /
                    std::max(1, options.threads_per_node));
        (void)client->Barrier(name("g", it), num_nodes);

        // 3. Scatter + active-count aggregation.
        (void)client->Lock(my_lock);
        (void)client->Write(state_lh[p], 0, mine.data(), mine.size() * sizeof(State));
        (void)client->Unlock(my_lock);
        (void)client->FetchAdd(active_lh, 8ull * it, active);
        (void)client->Barrier(name("s", it), num_nodes);

        // 4. Convergence check: every participant reads this superstep's
        // counter (complete once the scatter barrier passed) and takes the
        // same branch.
        uint64_t total_active = 0;
        (void)client->Read(active_lh, 8ull * it, &total_active, 8);
        if (p == 0) {
          iterations_run.store(it + 1);
        }
        if (total_active == 0) {
          converged.store(true);
          break;
        }
      }
      final_states[p] = mine;
      ends[p] = lt::NowNs();
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  uint64_t end_time = t0;
  for (uint64_t e : ends) {
    end_time = std::max(end_time, e);
  }
  lt::SyncClockTo(end_time);

  result.states.resize(graph.num_vertices);
  for (uint32_t p = 0; p < num_nodes; ++p) {
    std::copy(final_states[p].begin(), final_states[p].end(),
              result.states.begin() + parts.Begin(p));
  }
  result.iterations = iterations_run.load();
  result.total_ns = end_time - t0;
  result.converged = converged.load();
  return result;
}

// ---------------------------------------------------- reference programs

// PageRank as a GAS program (the paper's LITE-Graph workload).
struct PageRankProgram {
  using State = double;
  using Accum = double;
  double damping = 0.85;
  double epsilon = 1e-9;

  State Init(uint32_t, const SyntheticGraph& g) const { return 1.0 / g.num_vertices; }
  Accum GatherInit() const { return 0.0; }
  void GatherEdge(Accum* acc, const State& src_state, uint32_t src_out_degree) const {
    if (src_out_degree > 0) {
      *acc += src_state / src_out_degree;
    }
  }
  State Apply(uint32_t, const State&, const Accum& gathered, uint32_t num_vertices) const {
    return (1.0 - damping) / num_vertices + damping * gathered;
  }
  bool Changed(const State& old_state, const State& new_state) const {
    return std::fabs(old_state - new_state) > epsilon;
  }
};

// Connected components by min-label propagation. Run it on a symmetrized
// graph (each edge added in both directions) so labels flood components.
struct ComponentsProgram {
  using State = uint32_t;
  using Accum = uint32_t;  // Minimum label seen on in-edges.

  State Init(uint32_t v, const SyntheticGraph&) const { return v; }
  Accum GatherInit() const { return 0xffffffffu; }
  void GatherEdge(Accum* acc, const State& src_state, uint32_t) const {
    *acc = std::min(*acc, src_state);
  }
  State Apply(uint32_t, const State& old_state, const Accum& min_label, uint32_t) const {
    return std::min(old_state, min_label);
  }
  bool Changed(const State& old_state, const State& new_state) const {
    return old_state != new_state;
  }
};

// Single-source shortest paths (unit weights).
struct SsspProgram {
  using State = uint32_t;
  using Accum = uint32_t;  // Best distance-through-an-in-edge.
  static constexpr uint32_t kUnreached = 0xffffffffu;
  uint32_t source = 0;

  State Init(uint32_t v, const SyntheticGraph&) const { return v == source ? 0 : kUnreached; }
  Accum GatherInit() const { return kUnreached; }
  void GatherEdge(Accum* acc, const State& src_state, uint32_t) const {
    if (src_state != kUnreached) {
      *acc = std::min(*acc, src_state + 1);
    }
  }
  State Apply(uint32_t, const State& old_state, const Accum& best, uint32_t) const {
    return std::min(old_state, best);
  }
  bool Changed(const State& old_state, const State& new_state) const {
    return old_state != new_state;
  }
};

}  // namespace liteapp

#endif  // SRC_APPS_GAS_ENGINE_H_
