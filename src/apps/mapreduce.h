// MapReduce systems for the paper's Fig. 18 comparison:
//   * PhoenixWordCount  — single-node multi-threaded MapReduce (the Phoenix
//     system LITE-MR was ported from; paper Sec. 8.2),
//   * LiteMrWordCount   — LITE-MR: Phoenix's phases distributed across
//     worker nodes, network via LT_read + LT_RPC + LT_barrier,
//   * HadoopWordCount   — a Hadoop-like baseline: the same phases over the
//     IPoIB TCP stack with per-task scheduling and intermediate-file
//     materialization overheads.
//
// All three run the same WordCount workload and report per-phase virtual
// runtimes.
#ifndef SRC_APPS_MAPREDUCE_H_
#define SRC_APPS_MAPREDUCE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/lite/lite_cluster.h"
#include "src/node/node.h"

namespace liteapp {

using WordCounts = std::unordered_map<std::string, uint64_t>;

// ---- WordCount core (shared by all three systems) ----
WordCounts CountWords(const char* text, size_t len);
void MergeCounts(WordCounts* into, const WordCounts& from);
std::vector<uint8_t> SerializeCounts(const WordCounts& counts);
WordCounts DeserializeCounts(const uint8_t* data, size_t len);
uint32_t PartitionOf(const std::string& word, uint32_t num_partitions);

// Splits [0, len) into word-aligned pieces (never cuts a word in half).
std::vector<std::pair<size_t, size_t>> SplitCorpus(const char* text, size_t len, size_t pieces);

struct MrResult {
  WordCounts counts;
  uint64_t map_ns = 0;
  uint64_t reduce_ns = 0;
  uint64_t merge_ns = 0;
  uint64_t total_ns = 0;
};

// Phoenix: all phases on one node with `threads` threads.
MrResult PhoenixWordCount(const std::string& corpus, int threads);

// LITE-MR: master on node 0, workers on nodes 1..num_workers. Each worker
// runs `threads_per_worker` mapper/reducer threads.
MrResult LiteMrWordCount(lite::LiteCluster* cluster, const std::string& corpus,
                         uint32_t num_workers, int threads_per_worker);

struct HadoopCosts {
  uint64_t task_schedule_ns = 35'000'000;  // Task launch/track (JVM + heartbeat).
  double disk_bytes_per_ns = 0.12;         // Intermediate materialization.
  uint64_t job_setup_ns = 150'000'000;     // Job submission + staging.
};

// Hadoop-like: same phases, TCP transport, per-task overheads.
MrResult HadoopWordCount(lt::Cluster* cluster, const std::string& corpus, uint32_t num_workers,
                         int threads_per_worker, const HadoopCosts& costs = HadoopCosts());

}  // namespace liteapp

#endif  // SRC_APPS_MAPREDUCE_H_
