#include "src/apps/graph.h"

#include "src/apps/graph_detail.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <thread>

#include "src/common/timing.h"
#include "src/tcpip/tcp_stack.h"

namespace liteapp {
namespace {

using lt::NowNs;
using lt::SpinFor;
using lt::SyncClockTo;

// Modeled per-edge gather/apply cost, divided across a node's compute
// threads. Using an explicit model (rather than real host CPU) keeps the
// three engines' compute identical so the comparison isolates the network
// stacks — which is what the paper attributes the gap to (Sec. 8.3).
constexpr uint64_t kEdgeWorkNs = 14;
constexpr uint64_t kVertexWorkNs = 6;

// PowerGraph-like engines ship fine-grained mirror updates: vertices per
// TCP message. Small batches => many full socket-stack traversals per step,
// which is what makes the IPoIB version so slow (paper Sec. 8.3).
constexpr uint32_t kPowerGraphBatch = 128;
// Grappa's aggregation: per-delegated-op overhead at the receiver.
constexpr uint64_t kGrappaDelegateNs = 150;

std::atomic<uint32_t> g_graph_job{0};

}  // namespace

Partitioning MakePartitioning(uint32_t vertices, uint32_t parts) {
  Partitioning out;
  out.num_vertices = vertices;
  out.parts = parts;
  out.per_part = std::max<uint32_t>(1, vertices / parts);
  return out;
}

GraphIndex BuildIndex(const SyntheticGraph& g, const Partitioning& parts) {
  GraphIndex idx;
  idx.out_degree.assign(g.num_vertices, 0);
  for (uint32_t s : g.src) {
    idx.out_degree[s]++;
  }
  idx.in_offsets.resize(parts.parts);
  idx.in_sources.resize(parts.parts);
  std::vector<std::vector<uint32_t>> counts(parts.parts);
  for (uint32_t p = 0; p < parts.parts; ++p) {
    counts[p].assign(parts.End(p) - parts.Begin(p) + 1, 0);
  }
  for (size_t e = 0; e < g.dst.size(); ++e) {
    uint32_t p = parts.PartOf(g.dst[e]);
    counts[p][g.dst[e] - parts.Begin(p) + 1]++;
  }
  for (uint32_t p = 0; p < parts.parts; ++p) {
    for (size_t i = 1; i < counts[p].size(); ++i) {
      counts[p][i] += counts[p][i - 1];
    }
    idx.in_offsets[p] = counts[p];
    idx.in_sources[p].resize(counts[p].back());
  }
  std::vector<std::vector<uint32_t>> cursor = idx.in_offsets;
  for (size_t e = 0; e < g.dst.size(); ++e) {
    uint32_t d = g.dst[e];
    uint32_t p = parts.PartOf(d);
    idx.in_sources[p][cursor[p][d - parts.Begin(p)]++] = g.src[e];
  }
  return idx;
}

uint32_t SweepPartition(const GraphIndex& idx, const Partitioning& parts, uint32_t p,
                        const std::vector<double>& snapshot, std::vector<double>* out_ranks,
                        const PageRankOptions& options) {
  const double base = (1.0 - options.damping) / parts.num_vertices;
  uint32_t begin = parts.Begin(p);
  uint32_t end = parts.End(p);
  uint32_t active = 0;
  uint64_t edges = 0;
  for (uint32_t v = begin; v < end; ++v) {
    double sum = 0.0;
    uint32_t lo = idx.in_offsets[p][v - begin];
    uint32_t hi = idx.in_offsets[p][v - begin + 1];
    edges += hi - lo;
    for (uint32_t i = lo; i < hi; ++i) {
      uint32_t u = idx.in_sources[p][i];
      if (idx.out_degree[u] > 0) {
        sum += snapshot[u] / idx.out_degree[u];
      }
    }
    double next = base + options.damping * sum;
    if (std::fabs(next - snapshot[v]) > options.delta_epsilon) {
      ++active;  // Delta caching: only changed vertices scatter.
    }
    (*out_ranks)[v - begin] = next;
  }
  // Charge the modeled compute, split across the node's threads.
  uint64_t work = edges * kEdgeWorkNs + static_cast<uint64_t>(end - begin) * kVertexWorkNs;
  SpinFor(work / std::max(1, options.threads_per_node));
  return active;
}

std::vector<double> ReferencePageRank(const SyntheticGraph& graph,
                                      const PageRankOptions& options) {
  auto parts = MakePartitioning(graph.num_vertices, 1);
  GraphIndex idx = BuildIndex(graph, parts);
  std::vector<double> ranks(graph.num_vertices, 1.0 / graph.num_vertices);
  std::vector<double> next(graph.num_vertices, 0.0);
  PageRankOptions opts = options;
  opts.threads_per_node = 1 << 30;  // Reference run charges no modeled time.
  for (uint32_t it = 0; it < options.iterations; ++it) {
    SweepPartition(idx, parts, 0, ranks, &next, opts);
    ranks = next;
  }
  return ranks;
}

// ------------------------------------------------------------ LITE-Graph

PageRankResult LiteGraphPageRank(lite::LiteCluster* cluster, const SyntheticGraph& graph,
                                 uint32_t num_nodes, const PageRankOptions& options) {
  PageRankResult result;
  const uint32_t job = g_graph_job.fetch_add(1);
  auto parts = MakePartitioning(graph.num_vertices, num_nodes);
  GraphIndex idx = BuildIndex(graph, parts);
  auto name = [&](uint32_t p) { return "gr" + std::to_string(job) + "_rank" + std::to_string(p); };

  // Setup: one rank LMR per partition, placed on its node; one lock each.
  {
    auto setup = cluster->CreateClient(0);
    std::vector<double> init(graph.num_vertices, 1.0 / graph.num_vertices);
    for (uint32_t p = 0; p < num_nodes; ++p) {
      lite::MallocOptions mo;
      mo.nodes = {p};
      uint64_t bytes = static_cast<uint64_t>(parts.End(p) - parts.Begin(p)) * sizeof(double);
      auto lh = setup->Malloc(bytes, name(p), mo);
      (void)setup->Write(*lh, 0, init.data() + parts.Begin(p), bytes);
      (void)setup->CreateLock(name(p) + "_lock");
    }
  }

  const uint64_t t0 = NowNs();
  std::vector<std::thread> threads;
  std::vector<std::vector<double>> final_ranks(num_nodes);
  std::vector<uint64_t> ends(num_nodes, 0);
  for (uint32_t p = 0; p < num_nodes; ++p) {
    threads.emplace_back([&, p] {
      SyncClockTo(t0);
      auto client = cluster->CreateClient(p);
      std::vector<lite::Lh> rank_lh(num_nodes);
      std::vector<lite::LockId> locks(num_nodes);
      for (uint32_t q = 0; q < num_nodes; ++q) {
        rank_lh[q] = *client->Map(name(q));
        locks[q] = *client->OpenLock(name(q) + "_lock");
      }
      std::vector<double> snapshot(graph.num_vertices);
      std::vector<double> mine(parts.End(p) - parts.Begin(p));
      for (uint32_t it = 0; it < options.iterations; ++it) {
        // Gather inputs: bulk one-sided read of every partition's ranks.
        for (uint32_t q = 0; q < num_nodes; ++q) {
          uint64_t bytes = static_cast<uint64_t>(parts.End(q) - parts.Begin(q)) * sizeof(double);
          (void)client->Read(rank_lh[q], 0, snapshot.data() + parts.Begin(q), bytes);
        }
        SweepPartition(idx, parts, p, snapshot, &mine, options);
        // Barrier after each GAS step (paper Sec. 8.3): no one scatters
        // until everyone has gathered+applied this iteration's inputs.
        (void)client->Barrier("gr" + std::to_string(job) + "_g" + std::to_string(it), num_nodes);
        // Scatter: lock-protected update of the global data.
        (void)client->Lock(locks[p]);
        (void)client->Write(rank_lh[p], 0, mine.data(), mine.size() * sizeof(double));
        (void)client->Unlock(locks[p]);
        (void)client->Barrier("gr" + std::to_string(job) + "_s" + std::to_string(it), num_nodes);
      }
      final_ranks[p] = mine;
      ends[p] = NowNs();
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  result.ranks.resize(graph.num_vertices);
  uint64_t end = t0;
  for (uint32_t p = 0; p < num_nodes; ++p) {
    std::copy(final_ranks[p].begin(), final_ranks[p].end(), result.ranks.begin() + parts.Begin(p));
    end = std::max(end, ends[p]);
  }
  lt::SyncClockTo(end);  // Keep the caller's clock ahead of this run.
  result.total_ns = end - t0;
  result.iterations = options.iterations;
  return result;
}

// ---------------------------------------------------- PowerGraph / Grappa

namespace {

// TCP-based all-to-all rank exchange + barrier used by both baselines.
struct TcpMesh {
  std::vector<std::vector<std::unique_ptr<lt::TcpConn>>> conn;  // [src][dst]
  explicit TcpMesh(lt::Cluster* cluster, uint32_t n) : conn(n) {
    for (uint32_t i = 0; i < n; ++i) {
      conn[i].resize(n);
    }
    for (uint32_t i = 0; i < n; ++i) {
      for (uint32_t j = 0; j < n; ++j) {
        if (i == j) {
          continue;
        }
        if (conn[i][j] == nullptr) {
          auto pair = lt::TcpStack::ConnectPair(&cluster->node(i)->tcp(), &cluster->node(j)->tcp());
          conn[i][j] = std::move(pair.first);
          conn[j][i] = std::move(pair.second);
        }
      }
    }
  }
};

}  // namespace

PageRankResult PowerGraphPageRank(lt::Cluster* cluster, const SyntheticGraph& graph,
                                  uint32_t num_nodes, const PageRankOptions& options) {
  PageRankResult result;
  auto parts = MakePartitioning(graph.num_vertices, num_nodes);
  GraphIndex idx = BuildIndex(graph, parts);
  TcpMesh mesh(cluster, num_nodes);

  const uint64_t t0 = NowNs();
  std::vector<uint64_t> ends(num_nodes, 0);
  std::vector<std::vector<double>> final_ranks(num_nodes);
  std::vector<std::thread> threads;
  for (uint32_t p = 0; p < num_nodes; ++p) {
    threads.emplace_back([&, p] {
      SyncClockTo(t0);
      std::vector<double> snapshot(graph.num_vertices, 1.0 / graph.num_vertices);
      std::vector<double> mine(parts.End(p) - parts.Begin(p));
      const uint32_t my_count = parts.End(p) - parts.Begin(p);
      for (uint32_t it = 0; it < options.iterations; ++it) {
        SweepPartition(idx, parts, p, snapshot, &mine, options);
        std::copy(mine.begin(), mine.end(), snapshot.begin() + parts.Begin(p));
        // Mirror updates: fine-grained batches over TCP to every peer (each
        // batch pays a full stack traversal).
        for (uint32_t q = 0; q < num_nodes; ++q) {
          if (q == p) {
            continue;
          }
          for (uint32_t off = 0; off < my_count; off += kPowerGraphBatch) {
            uint32_t n = std::min(kPowerGraphBatch, my_count - off);
            (void)mesh.conn[p][q]->Send(mine.data() + off, n * sizeof(double));
          }
        }
        // Receive every peer's updates.
        for (uint32_t q = 0; q < num_nodes; ++q) {
          if (q == p) {
            continue;
          }
          uint32_t q_count = parts.End(q) - parts.Begin(q);
          for (uint32_t off = 0; off < q_count; off += kPowerGraphBatch) {
            uint32_t n = std::min(kPowerGraphBatch, q_count - off);
            (void)mesh.conn[p][q]->RecvExact(snapshot.data() + parts.Begin(q) + off,
                                             n * sizeof(double));
          }
        }
      }
      final_ranks[p] = mine;
      ends[p] = NowNs();
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  result.ranks.resize(graph.num_vertices);
  uint64_t end = t0;
  for (uint32_t p = 0; p < num_nodes; ++p) {
    std::copy(final_ranks[p].begin(), final_ranks[p].end(), result.ranks.begin() + parts.Begin(p));
    end = std::max(end, ends[p]);
  }
  lt::SyncClockTo(end);  // Keep the caller's clock ahead of this run.
  result.total_ns = end - t0;
  result.iterations = options.iterations;
  return result;
}

PageRankResult GrappaPageRank(lt::Cluster* cluster, const SyntheticGraph& graph,
                              uint32_t num_nodes, const PageRankOptions& options) {
  PageRankResult result;
  auto parts = MakePartitioning(graph.num_vertices, num_nodes);
  GraphIndex idx = BuildIndex(graph, parts);
  TcpMesh mesh(cluster, num_nodes);

  const uint64_t t0 = NowNs();
  std::vector<uint64_t> ends(num_nodes, 0);
  std::vector<std::vector<double>> final_ranks(num_nodes);
  std::vector<std::thread> threads;
  for (uint32_t p = 0; p < num_nodes; ++p) {
    threads.emplace_back([&, p] {
      SyncClockTo(t0);
      std::vector<double> snapshot(graph.num_vertices, 1.0 / graph.num_vertices);
      std::vector<double> mine(parts.End(p) - parts.Begin(p));
      const uint32_t my_count = parts.End(p) - parts.Begin(p);
      for (uint32_t it = 0; it < options.iterations; ++it) {
        SweepPartition(idx, parts, p, snapshot, &mine, options);
        std::copy(mine.begin(), mine.end(), snapshot.begin() + parts.Begin(p));
        // Grappa aggregates all delegated updates to a peer into ONE large
        // message per step (its core optimization)...
        for (uint32_t q = 0; q < num_nodes; ++q) {
          if (q == p) {
            continue;
          }
          (void)mesh.conn[p][q]->StreamSend(mine.data(), my_count * sizeof(double));
        }
        for (uint32_t q = 0; q < num_nodes; ++q) {
          if (q == p) {
            continue;
          }
          uint32_t q_count = parts.End(q) - parts.Begin(q);
          (void)mesh.conn[p][q]->RecvExact(snapshot.data() + parts.Begin(q),
                                           q_count * sizeof(double));
          // ...but pays a per-delegated-operation cost applying them.
          SpinFor(static_cast<uint64_t>(q_count) * kGrappaDelegateNs /
                  std::max(1, options.threads_per_node));
        }
      }
      final_ranks[p] = mine;
      ends[p] = NowNs();
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  result.ranks.resize(graph.num_vertices);
  uint64_t end = t0;
  for (uint32_t p = 0; p < num_nodes; ++p) {
    std::copy(final_ranks[p].begin(), final_ranks[p].end(), result.ranks.begin() + parts.Begin(p));
    end = std::max(end, ends[p]);
  }
  lt::SyncClockTo(end);  // Keep the caller's clock ahead of this run.
  result.total_ns = end - t0;
  result.iterations = options.iterations;
  return result;
}

}  // namespace liteapp
