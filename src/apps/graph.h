// Graph engines for the paper's Fig. 19 comparison (PageRank on a power-law
// graph):
//   * LiteGraphPageRank   — LITE-Graph (paper Sec. 8.3): vertex-centric GAS
//     with delta caching; global rank data in LMRs, bulk LT_read of remote
//     partitions, LT_lock-protected scatter, LT_barrier between steps.
//   * PowerGraphPageRank  — PowerGraph-like baseline: the same GAS engine
//     exchanging per-vertex updates in small batches over IPoIB TCP (each
//     batch pays the full socket/TCP/IPoIB stack), as the real system's
//     fine-grained mirror updates do.
//   * GrappaPageRank      — Grappa-like baseline: a latency-tolerant DSM
//     engine that aggregates remote updates into one large message per peer
//     per step over its custom stack (cheaper than PowerGraph's many small
//     messages, still costlier than one-sided RDMA reads).
#ifndef SRC_APPS_GRAPH_H_
#define SRC_APPS_GRAPH_H_

#include <cstdint>
#include <vector>

#include "src/apps/workloads.h"
#include "src/lite/lite_cluster.h"
#include "src/node/node.h"

namespace liteapp {

struct PageRankResult {
  std::vector<double> ranks;
  uint64_t total_ns = 0;
  uint32_t iterations = 0;
};

struct PageRankOptions {
  uint32_t iterations = 10;
  double damping = 0.85;
  double delta_epsilon = 1e-9;  // Delta-caching threshold (paper Sec. 8.3).
  int threads_per_node = 4;
};

PageRankResult LiteGraphPageRank(lite::LiteCluster* cluster, const SyntheticGraph& graph,
                                 uint32_t num_nodes, const PageRankOptions& options);

PageRankResult PowerGraphPageRank(lt::Cluster* cluster, const SyntheticGraph& graph,
                                  uint32_t num_nodes, const PageRankOptions& options);

PageRankResult GrappaPageRank(lt::Cluster* cluster, const SyntheticGraph& graph,
                              uint32_t num_nodes, const PageRankOptions& options);

// Single-node reference (for correctness checks).
std::vector<double> ReferencePageRank(const SyntheticGraph& graph, const PageRankOptions& options);

}  // namespace liteapp

#endif  // SRC_APPS_GRAPH_H_
