#include "src/apps/workloads.h"

#include <cmath>

namespace liteapp {

std::string GenerateCorpus(uint64_t bytes, uint64_t vocabulary, uint64_t seed) {
  lt::ZipfSampler zipf(vocabulary, 1.0, seed);
  lt::Rng rng(seed * 31 + 7);
  std::string out;
  out.reserve(bytes + 16);
  while (out.size() < bytes) {
    uint64_t word_id = zipf.Next();
    // Deterministic word spelling: base-26 encoding with length variation.
    uint64_t v = word_id + 1;
    while (v > 0) {
      out.push_back(static_cast<char>('a' + v % 26));
      v /= 26;
    }
    // Occasional longer words for realistic length distribution.
    if (rng.NextBounded(8) == 0) {
      out.append("ing");
    }
    out.push_back(' ');
  }
  return out;
}

SyntheticGraph GeneratePowerLawGraph(uint32_t vertices, uint64_t edges, double theta,
                                     uint64_t seed) {
  SyntheticGraph g;
  g.num_vertices = vertices;
  g.src.reserve(edges);
  g.dst.reserve(edges);
  lt::Rng rng(seed);
  lt::ZipfSampler zipf(vertices, theta, seed * 17 + 3);
  for (uint64_t i = 0; i < edges; ++i) {
    uint32_t s = static_cast<uint32_t>(rng.NextBounded(vertices));
    uint32_t d = static_cast<uint32_t>(zipf.Next());  // Popular destinations.
    if (s == d) {
      d = (d + 1) % vertices;
    }
    g.src.push_back(s);
    g.dst.push_back(d);
  }
  return g;
}

FacebookKvSampler::FacebookKvSampler(uint64_t seed) : rng_(seed) {}

uint32_t FacebookKvSampler::NextKeySize() {
  // Keys cluster at 16-40 bytes with a small tail (ETC pool shape).
  double u = rng_.NextDouble();
  if (u < 0.55) {
    return 16 + static_cast<uint32_t>(rng_.NextBounded(8));
  }
  if (u < 0.9) {
    return 24 + static_cast<uint32_t>(rng_.NextBounded(16));
  }
  return 40 + static_cast<uint32_t>(rng_.NextBounded(88));
}

uint32_t FacebookKvSampler::NextValueSize() {
  // Values: mass at a few hundred bytes, heavy tail up to ~1 MB (truncated
  // to 512 KB here to fit simulated memory pools).
  double u = rng_.NextDouble();
  if (u < 0.4) {
    return 2 + static_cast<uint32_t>(rng_.NextBounded(100));
  }
  if (u < 0.8) {
    return 100 + static_cast<uint32_t>(rng_.NextBounded(900));
  }
  if (u < 0.97) {
    return 1000 + static_cast<uint32_t>(rng_.NextBounded(9000));
  }
  // Pareto-ish tail.
  double tail = std::pow(1.0 - rng_.NextDouble(), -1.5);
  uint64_t size = static_cast<uint64_t>(10000.0 * tail);
  return static_cast<uint32_t>(std::min<uint64_t>(size, 512 * 1024));
}

uint64_t FacebookKvSampler::NextInterArrivalNs(double amplification) {
  // Mean ~70 us with exponential bursts (scaled from the trace's shape).
  double gap = rng_.NextExponential(70'000.0);
  return static_cast<uint64_t>(gap * amplification);
}

}  // namespace liteapp
