// LITE-Log: the paper's distributed atomic logging system (Sec. 8.1).
//
// The "one-sided concept pushed to an extreme": the global log and its
// metadata live in LMRs; writers commit transactions entirely with one-sided
// operations (LT_fetch-add to reserve space, LT_write to fill it), and the
// cleaner advances the cleaned pointer with LT_read / LT_fetch-add /
// LT_test-set — no code ever runs at the node hosting the log.
//
// Metadata LMR layout (all 8-byte words):
//   [0]  reserve pointer (next free byte, monotonically increasing)
//   [8]  committed transaction count
//   [16] cleaned pointer (log space below this is reclaimable)
//   [24] cleaner lock word (test-and-set)
#ifndef SRC_APPS_LITE_LOG_H_
#define SRC_APPS_LITE_LOG_H_

#include <memory>
#include <string>
#include <vector>

#include "src/lite/client.h"

namespace liteapp {

using lite::Lh;
using lite::LiteClient;
using lt::Status;
using lt::StatusOr;

struct LogEntry {
  const void* data = nullptr;
  uint32_t len = 0;
};

class LiteLog {
 public:
  // Allocator role: creates the global log (on the allocator's node) under
  // `name`; any node can then Open it.
  static StatusOr<LiteLog> Create(LiteClient* client, const std::string& name,
                                  uint64_t log_bytes);
  static StatusOr<LiteLog> Open(LiteClient* client, const std::string& name);

  // Atomically commits a transaction of one or more entries: one fetch-add
  // to reserve the space, one LT_write per entry run.
  Status Commit(const std::vector<LogEntry>& entries);

  // Cleaner: reclaims everything below the reserve pointer. Returns bytes
  // reclaimed. Safe to run concurrently (guarded by the cleaner lock word).
  StatusOr<uint64_t> Clean();

  // Reads `len` log bytes starting at absolute offset `pos` (for recovery /
  // verification).
  Status ReadAt(uint64_t pos, void* buf, uint64_t len);

  uint64_t log_bytes() const { return log_bytes_; }
  StatusOr<uint64_t> CommittedCount();

 private:
  LiteLog(LiteClient* client, Lh log, Lh meta, uint64_t log_bytes)
      : client_(client), log_(log), meta_(meta), log_bytes_(log_bytes) {}

  LiteClient* client_ = nullptr;
  Lh log_ = lite::kInvalidLh;
  Lh meta_ = lite::kInvalidLh;
  uint64_t log_bytes_ = 0;
};

}  // namespace liteapp

#endif  // SRC_APPS_LITE_LOG_H_
