// Shared internals of the graph engines (partitioning, in-edge index, and
// the gather/apply sweep with its modeled compute cost). Used by graph.cc
// and the DSM-backed engine in dsm.cc.
#ifndef SRC_APPS_GRAPH_DETAIL_H_
#define SRC_APPS_GRAPH_DETAIL_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/apps/graph.h"

namespace liteapp {

struct Partitioning {
  uint32_t num_vertices;
  uint32_t parts;
  uint32_t per_part;
  uint32_t PartOf(uint32_t v) const { return std::min(v / per_part, parts - 1); }
  uint32_t Begin(uint32_t p) const { return p * per_part; }
  uint32_t End(uint32_t p) const { return p == parts - 1 ? num_vertices : (p + 1) * per_part; }
};

Partitioning MakePartitioning(uint32_t vertices, uint32_t parts);

// In-edge CSR per partition plus global out-degrees (built during untimed
// setup, as all compared systems preprocess the graph).
struct GraphIndex {
  std::vector<uint32_t> out_degree;
  std::vector<std::vector<uint32_t>> in_offsets;
  std::vector<std::vector<uint32_t>> in_sources;
};

GraphIndex BuildIndex(const SyntheticGraph& g, const Partitioning& parts);

// One gather+apply sweep over partition `p` given a full rank snapshot;
// charges the modeled per-edge compute split across the node's threads.
// Returns the number of vertices whose rank changed beyond the delta-caching
// threshold.
uint32_t SweepPartition(const GraphIndex& idx, const Partitioning& parts, uint32_t p,
                        const std::vector<double>& snapshot, std::vector<double>* out_ranks,
                        const PageRankOptions& options);

}  // namespace liteapp

#endif  // SRC_APPS_GRAPH_DETAIL_H_
