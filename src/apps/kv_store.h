// A small distributed key-value store built on LITE (used by the examples
// and the Facebook-workload benchmarks).
//
// Two GET paths, mirroring the design space the paper's Sec. 2.4 discusses
// (Memcached/Masstree would need thousands-to-millions of native MRs; LITE
// needs none):
//   * Get():       classic RPC GET — one LT_RPC round trip.
//   * GetDirect(): one-sided GET — values live in a value-log LMR; the
//     client resolves (offset, length) once via RPC, caches the location,
//     and afterwards reads the value with a single LT_read, CPU-free at the
//     server (the Pilaf/FaRM-style read path, built in ~10 lines on LITE).
#ifndef SRC_APPS_KV_STORE_H_
#define SRC_APPS_KV_STORE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/lite/lite_cluster.h"

namespace liteapp {

using lite::LiteClient;
using lt::Status;
using lt::StatusOr;

class LiteKvServer {
 public:
  static constexpr lite::RpcFuncId kKvFunc = 30;

  LiteKvServer(lite::LiteCluster* cluster, lt::NodeId node, int server_threads = 2);
  ~LiteKvServer();

  void Start();
  void Stop();

  lt::NodeId node() const { return node_; }
  size_t size() const;

  // Name of the value-log LMR clients map for one-sided GETs.
  std::string value_log_name() const { return "kv_vlog_" + std::to_string(node_); }

 private:
  struct ValueLocation {
    uint64_t offset = 0;
    uint32_t len = 0;
    uint64_t version = 0;
  };

  void ServeLoop();

  lite::LiteCluster* const cluster_;
  const lt::NodeId node_;
  const int server_threads_;
  std::unique_ptr<LiteClient> client_;

  mutable std::mutex mu_;
  std::unordered_map<std::string, std::vector<uint8_t>> table_;

  // One-sided read path: values appended to a value-log LMR; the index maps
  // key -> (offset, len, version). Version lets clients detect staleness.
  lite::Lh value_log_ = lite::kInvalidLh;
  uint64_t value_log_size_ = 0;
  uint64_t value_log_tail_ = 0;
  std::unordered_map<std::string, ValueLocation> value_index_;
  uint64_t next_version_ = 1;

  std::vector<std::thread> threads_;
  std::atomic<bool> stopping_{false};
};

class LiteKvClient {
 public:
  LiteKvClient(lite::LiteCluster* cluster, lt::NodeId node, lt::NodeId server_node);

  Status Put(const std::string& key, const void* value, uint32_t len);
  StatusOr<std::vector<uint8_t>> Get(const std::string& key);
  Status Delete(const std::string& key);

  // One-sided GET: resolves and caches the value's location in the server's
  // value log, then fetches it with a single LT_read (no server CPU). A
  // version check in the inlined record header detects stale locations, in
  // which case the location is re-resolved once.
  StatusOr<std::vector<uint8_t>> GetDirect(const std::string& key);

 private:
  struct CachedLocation {
    uint64_t offset;
    uint32_t len;
    uint64_t version;
  };

  lt::StatusOr<CachedLocation> ResolveLocation(const std::string& key);

  std::unique_ptr<LiteClient> client_;
  const lt::NodeId server_node_;
  lite::Lh value_log_ = lite::kInvalidLh;
  std::unordered_map<std::string, CachedLocation> location_cache_;
  std::mutex cache_mu_;
};

}  // namespace liteapp

#endif  // SRC_APPS_KV_STORE_H_
