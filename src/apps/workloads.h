// Synthetic workload generators standing in for the paper's proprietary or
// oversized datasets (see DESIGN.md substitution table):
//   * a Zipf-frequency text corpus (for the Wikimedia WordCount of Fig. 18),
//   * a power-law directed graph (for the Twitter graph of Fig. 19),
//   * a Facebook-KV-like sampler for key/value sizes and inter-arrival times
//     (Atikoglu et al. shapes, used by Figs. 12 and 13).
#ifndef SRC_APPS_WORKLOADS_H_
#define SRC_APPS_WORKLOADS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/rng.h"

namespace liteapp {

// Generates ~`bytes` of space-separated words whose frequencies follow a
// Zipf distribution over `vocabulary` distinct words.
std::string GenerateCorpus(uint64_t bytes, uint64_t vocabulary = 20000, uint64_t seed = 42);

// Directed graph in CSR-ish edge-list form with power-law in-degree
// (Zipf-distributed edge destinations), like social graphs.
struct SyntheticGraph {
  uint32_t num_vertices = 0;
  std::vector<uint32_t> src;
  std::vector<uint32_t> dst;
};
SyntheticGraph GeneratePowerLawGraph(uint32_t vertices, uint64_t edges, double theta = 0.8,
                                     uint64_t seed = 7);

// Facebook key-value store workload shapes (Atikoglu et al., SIGMETRICS'12):
// small keys (16-40 B, clustered), values with a heavy tail, and bursty
// inter-arrival times approximated by a generalized-Pareto-like sampler.
class FacebookKvSampler {
 public:
  explicit FacebookKvSampler(uint64_t seed = 99);

  uint32_t NextKeySize();
  uint32_t NextValueSize();
  // Inter-arrival gap in ns, scaled by `amplification` (paper Fig. 13 varies
  // the amplification factor 1x..8x).
  uint64_t NextInterArrivalNs(double amplification = 1.0);

 private:
  lt::Rng rng_;
};

}  // namespace liteapp

#endif  // SRC_APPS_WORKLOADS_H_
