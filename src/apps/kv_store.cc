#include "src/apps/kv_store.h"

#include <cstring>

#include "src/lite/wire.h"

namespace liteapp {
namespace {

enum KvOp : uint8_t { kPut = 0, kGet = 1, kDelete = 2, kResolve = 3 };

constexpr uint64_t kValueLogBytes = 8ull << 20;

// In-log record header preceding each value. `version` is zeroed when the
// record is superseded so one-sided readers detect staleness.
struct RecordHeader {
  uint64_t version;
  uint32_t len;
  uint32_t pad;
};

uint64_t AlignRecord(uint64_t n) { return (n + 63) & ~63ull; }

}  // namespace

LiteKvServer::LiteKvServer(lite::LiteCluster* cluster, lt::NodeId node, int server_threads)
    : cluster_(cluster), node_(node), server_threads_(server_threads) {
  client_ = cluster_->CreateClient(node_, /*kernel_level=*/false);
}

LiteKvServer::~LiteKvServer() { Stop(); }

void LiteKvServer::Start() {
  stopping_.store(false);
  (void)client_->RegisterRpc(kKvFunc);
  auto log = client_->Malloc(kValueLogBytes, value_log_name());
  if (log.ok()) {
    value_log_ = *log;
    value_log_size_ = kValueLogBytes;
  }
  for (int i = 0; i < server_threads_; ++i) {
    threads_.emplace_back([this] { ServeLoop(); });
  }
}

void LiteKvServer::Stop() {
  if (stopping_.exchange(true)) {
    return;
  }
  for (std::thread& t : threads_) {
    if (t.joinable()) {
      t.join();
    }
  }
  threads_.clear();
}

size_t LiteKvServer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return table_.size();
}

void LiteKvServer::ServeLoop() {
  std::vector<uint8_t> reply;
  while (!stopping_.load()) {
    auto inc = client_->RecvRpc(kKvFunc, 100'000'000);
    if (!inc.ok()) {
      continue;
    }
    lite::WireReader r(inc->data.data(), inc->data.size());
    uint8_t op = 0;
    std::string key;
    if (!r.Get(&op) || !r.GetString(&key)) {
      uint8_t err = 0xff;
      (void)client_->ReplyRpc(inc->token, &err, 1);
      continue;
    }
    switch (op) {
      case kPut: {
        std::vector<uint8_t> value;
        r.GetBytes(&value);
        uint64_t stale_offset = 0;
        bool had_old = false;
        uint64_t record_offset = 0;
        uint64_t version = 0;
        {
          std::lock_guard<std::mutex> lock(mu_);
          table_[key] = value;
          // Append to the value log for the one-sided read path.
          uint64_t need = AlignRecord(sizeof(RecordHeader) + value.size());
          if (value_log_ != lite::kInvalidLh && value_log_tail_ + need <= value_log_size_) {
            auto it = value_index_.find(key);
            if (it != value_index_.end()) {
              had_old = true;
              stale_offset = it->second.offset;
            }
            record_offset = value_log_tail_;
            value_log_tail_ += need;
            version = next_version_++;
            value_index_[key] = ValueLocation{record_offset, static_cast<uint32_t>(value.size()),
                                              version};
          }
        }
        if (version != 0) {
          RecordHeader hdr{version, static_cast<uint32_t>(value.size()), 0};
          std::vector<uint8_t> record(sizeof(hdr) + value.size());
          std::memcpy(record.data(), &hdr, sizeof(hdr));
          std::memcpy(record.data() + sizeof(hdr), value.data(), value.size());
          (void)client_->Write(value_log_, record_offset, record.data(), record.size());
          if (had_old) {
            // Invalidate the superseded record so cached one-sided readers
            // notice and re-resolve.
            uint64_t zero = 0;
            (void)client_->Write(value_log_, stale_offset, &zero, sizeof(zero));
          }
        }
        uint8_t ok = 1;
        (void)client_->ReplyRpc(inc->token, &ok, 1);
        break;
      }
      case kGet: {
        reply.clear();
        {
          std::lock_guard<std::mutex> lock(mu_);
          auto it = table_.find(key);
          if (it != table_.end()) {
            reply.assign(1, 1);
            reply.insert(reply.end(), it->second.begin(), it->second.end());
          } else {
            reply.assign(1, 0);
          }
        }
        (void)client_->ReplyRpc(inc->token, reply.data(), static_cast<uint32_t>(reply.size()));
        break;
      }
      case kDelete: {
        uint8_t found = 0;
        uint64_t stale_offset = 0;
        bool had_record = false;
        {
          std::lock_guard<std::mutex> lock(mu_);
          found = table_.erase(key) > 0 ? 1 : 0;
          auto it = value_index_.find(key);
          if (it != value_index_.end()) {
            had_record = true;
            stale_offset = it->second.offset;
            value_index_.erase(it);
          }
        }
        if (had_record) {
          uint64_t zero = 0;
          (void)client_->Write(value_log_, stale_offset, &zero, sizeof(zero));
        }
        (void)client_->ReplyRpc(inc->token, &found, 1);
        break;
      }
      case kResolve: {
        lite::WireWriter w;
        {
          std::lock_guard<std::mutex> lock(mu_);
          auto it = value_index_.find(key);
          if (it == value_index_.end()) {
            w.Put<uint8_t>(0);
          } else {
            w.Put<uint8_t>(1);
            w.Put<uint64_t>(it->second.offset);
            w.Put<uint32_t>(it->second.len);
            w.Put<uint64_t>(it->second.version);
          }
        }
        (void)client_->ReplyRpc(inc->token, w.bytes().data(),
                                static_cast<uint32_t>(w.bytes().size()));
        break;
      }
      default: {
        uint8_t err = 0xff;
        (void)client_->ReplyRpc(inc->token, &err, 1);
      }
    }
  }
}

LiteKvClient::LiteKvClient(lite::LiteCluster* cluster, lt::NodeId node, lt::NodeId server_node)
    : client_(cluster->CreateClient(node)), server_node_(server_node) {}

Status LiteKvClient::Put(const std::string& key, const void* value, uint32_t len) {
  lite::WireWriter w;
  w.Put<uint8_t>(kPut);
  w.PutString(key);
  w.PutBytes(value, len);
  uint8_t ok = 0;
  uint32_t out_len = 0;
  LT_RETURN_IF_ERROR(client_->Rpc(server_node_, LiteKvServer::kKvFunc, w.bytes().data(),
                                  static_cast<uint32_t>(w.bytes().size()), &ok, 1, &out_len));
  if (ok != 1) {
    return Status::Internal("KV put rejected");
  }
  return Status::Ok();
}

StatusOr<std::vector<uint8_t>> LiteKvClient::Get(const std::string& key) {
  lite::WireWriter w;
  w.Put<uint8_t>(kGet);
  w.PutString(key);
  std::vector<uint8_t> reply(client_->instance()->params().lite_reply_slot_bytes);
  uint32_t out_len = 0;
  LT_RETURN_IF_ERROR(client_->Rpc(server_node_, LiteKvServer::kKvFunc, w.bytes().data(),
                                  static_cast<uint32_t>(w.bytes().size()), reply.data(),
                                  static_cast<uint32_t>(reply.size()), &out_len));
  if (out_len == 0 || reply[0] == 0) {
    return Status::NotFound("key not present");
  }
  return std::vector<uint8_t>(reply.begin() + 1, reply.begin() + out_len);
}

Status LiteKvClient::Delete(const std::string& key) {
  lite::WireWriter w;
  w.Put<uint8_t>(kDelete);
  w.PutString(key);
  uint8_t found = 0;
  uint32_t out_len = 0;
  LT_RETURN_IF_ERROR(client_->Rpc(server_node_, LiteKvServer::kKvFunc, w.bytes().data(),
                                  static_cast<uint32_t>(w.bytes().size()), &found, 1, &out_len));
  if (found == 0) {
    return Status::NotFound("key not present");
  }
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    location_cache_.erase(key);
  }
  return Status::Ok();
}

lt::StatusOr<LiteKvClient::CachedLocation> LiteKvClient::ResolveLocation(const std::string& key) {
  lite::WireWriter w;
  w.Put<uint8_t>(kResolve);
  w.PutString(key);
  uint8_t reply[32];
  uint32_t out_len = 0;
  LT_RETURN_IF_ERROR(client_->Rpc(server_node_, LiteKvServer::kKvFunc, w.bytes().data(),
                                  static_cast<uint32_t>(w.bytes().size()), reply, sizeof(reply),
                                  &out_len));
  lite::WireReader r(reply, out_len);
  uint8_t found = 0;
  if (!r.Get(&found) || found == 0) {
    return Status::NotFound("key not present");
  }
  CachedLocation loc{};
  if (!r.Get(&loc.offset) || !r.Get(&loc.len) || !r.Get(&loc.version)) {
    return Status::Internal("malformed resolve reply");
  }
  std::lock_guard<std::mutex> lock(cache_mu_);
  location_cache_[key] = loc;
  return loc;
}

StatusOr<std::vector<uint8_t>> LiteKvClient::GetDirect(const std::string& key) {
  // Lazily map the server's value log.
  if (value_log_ == lite::kInvalidLh) {
    auto lh = client_->Map("kv_vlog_" + std::to_string(server_node_), lite::kPermRead);
    if (!lh.ok()) {
      return lh.status();
    }
    value_log_ = *lh;
  }
  for (int attempt = 0; attempt < 2; ++attempt) {
    CachedLocation loc;
    bool cached = false;
    {
      std::lock_guard<std::mutex> lock(cache_mu_);
      auto it = location_cache_.find(key);
      if (it != location_cache_.end()) {
        loc = it->second;
        cached = true;
      }
    }
    if (!cached) {
      auto resolved = ResolveLocation(key);
      if (!resolved.ok()) {
        return resolved.status();
      }
      loc = *resolved;
    }
    // ONE one-sided read fetches header + value; the version check detects
    // records superseded since the location was cached.
    std::vector<uint8_t> record(sizeof(RecordHeader) + loc.len);
    LT_RETURN_IF_ERROR(client_->Read(value_log_, loc.offset, record.data(), record.size()));
    RecordHeader hdr;
    std::memcpy(&hdr, record.data(), sizeof(hdr));
    if (hdr.version == loc.version && hdr.len == loc.len) {
      return std::vector<uint8_t>(record.begin() + sizeof(RecordHeader), record.end());
    }
    // Stale: drop the cached location and resolve afresh (once).
    std::lock_guard<std::mutex> lock(cache_mu_);
    location_cache_.erase(key);
  }
  return Status::Unavailable("value moved repeatedly; retry");
}

}  // namespace liteapp
