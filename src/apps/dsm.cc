#include "src/apps/dsm.h"

#include <cstring>
#include <thread>

#include "src/apps/graph_detail.h"
#include "src/common/logging.h"
#include "src/common/timing.h"
#include "src/lite/wire.h"

namespace liteapp {
namespace {

using lt::NowNs;
using lt::SyncClockTo;

// Protocol ops carried in the DSM RPC payload.
enum DsmOp : uint8_t {
  kOpRegisterCacher = 0,
  kOpAcquire = 1,
  kOpRelease = 2,
  kOpInvalidate = 3,
};

struct DsmMsg {
  uint8_t op = 0;
  lt::NodeId node = lt::kInvalidNode;
  uint64_t page = 0;
};

// Invalidations use a separate function id (and service thread) so a Release
// handler blocking on invalidation replies can never deadlock against
// another node's Release doing the same.
constexpr lite::RpcFuncId kInvalFuncDelta = 400;

}  // namespace

LiteDsm::LiteDsm(lite::LiteCluster* cluster, lt::NodeId self, std::vector<lt::NodeId> nodes,
                 uint64_t total_pages, uint32_t instance_id)
    : cluster_(cluster),
      self_(self),
      nodes_(std::move(nodes)),
      total_pages_(total_pages),
      instance_id_(instance_id) {
  client_ = cluster_->CreateClient(self_, /*kernel_level=*/true);
}

LiteDsm::~LiteDsm() { Stop(); }

std::string LiteDsm::BackingName(lt::NodeId node) const {
  return "dsm" + std::to_string(instance_id_) + "_home_" + std::to_string(node);
}

Status LiteDsm::Start() {
  const lite::RpcFuncId func = kDsmFunc + instance_id_;
  const lite::RpcFuncId inval_func = func + kInvalFuncDelta;
  LT_RETURN_IF_ERROR(client_->RegisterRpc(func));
  LT_RETURN_IF_ERROR(client_->RegisterRpc(inval_func));

  // nodes_[0] allocates every home's backing LMR; everyone else maps them.
  uint64_t pages_per_home = (total_pages_ + nodes_.size() - 1) / nodes_.size();
  if (self_ == nodes_[0]) {
    for (lt::NodeId home : nodes_) {
      lite::MallocOptions mo;
      mo.nodes = {home};
      auto lh = client_->Malloc(pages_per_home * kPageSize, BackingName(home), mo);
      if (!lh.ok()) {
        return lh.status();
      }
      backing_[home] = *lh;
    }
  } else {
    for (lt::NodeId home : nodes_) {
      lt::StatusOr<lite::Lh> lh = lt::Status::Unavailable("not tried");
      for (int attempt = 0; attempt < 50; ++attempt) {
        lh = client_->Map(BackingName(home));
        if (lh.ok()) {
          break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
      if (!lh.ok()) {
        return lh.status();
      }
      backing_[home] = *lh;
    }
  }

  stopping_.store(false);
  service_ = std::thread([this] { ServiceLoop(); });
  return Status::Ok();
}

void LiteDsm::Stop() {
  if (stopping_.exchange(true)) {
    return;
  }
  if (service_.joinable()) {
    service_.join();
  }
}

Status LiteDsm::FetchPage(uint64_t page, CachedPage* out) {
  cache_misses_.fetch_add(1);
  out->data.resize(kPageSize);
  lt::NodeId home = HomeOf(page);
  LT_RETURN_IF_ERROR(client_->Read(backing_[home], HomeOffset(page), out->data.data(), kPageSize));
  if (home != self_) {
    // Register as a cacher with the home node. The paper keeps reads purely
    // one-sided; we acknowledge the registration so a subsequent release is
    // guaranteed to see this cacher (see DESIGN.md substitution notes).
    lite::WireWriter w;
    DsmMsg msg{kOpRegisterCacher, self_, page};
    w.Put(msg);
    uint8_t ack = 0;
    uint32_t ack_len = 0;
    LT_RETURN_IF_ERROR(client_->Rpc(home, kDsmFunc + instance_id_, w.bytes().data(),
                                    static_cast<uint32_t>(w.bytes().size()), &ack, 1, &ack_len));
  }
  return Status::Ok();
}

Status LiteDsm::Read(uint64_t gaddr, void* buf, uint32_t len) {
  uint8_t* out = static_cast<uint8_t*>(buf);
  uint32_t done = 0;
  while (done < len) {
    uint64_t page = (gaddr + done) / kPageSize;
    uint32_t in_page_off = static_cast<uint32_t>((gaddr + done) % kPageSize);
    uint32_t take = std::min(len - done, kPageSize - in_page_off);
    {
      std::lock_guard<std::mutex> lock(cache_mu_);
      auto it = cache_.find(page);
      if (it != cache_.end()) {
        cache_hits_.fetch_add(1);
        std::memcpy(out + done, it->second.data.data() + in_page_off, take);
        done += take;
        continue;
      }
    }
    CachedPage fetched;
    LT_RETURN_IF_ERROR(FetchPage(page, &fetched));
    std::memcpy(out + done, fetched.data.data() + in_page_off, take);
    {
      std::lock_guard<std::mutex> lock(cache_mu_);
      cache_.emplace(page, std::move(fetched));
    }
    done += take;
  }
  return Status::Ok();
}

Status LiteDsm::Write(uint64_t gaddr, const void* buf, uint32_t len) {
  const uint8_t* in = static_cast<const uint8_t*>(buf);
  uint32_t done = 0;
  while (done < len) {
    uint64_t page = (gaddr + done) / kPageSize;
    uint32_t in_page_off = static_cast<uint32_t>((gaddr + done) % kPageSize);
    uint32_t take = std::min(len - done, kPageSize - in_page_off);
    std::lock_guard<std::mutex> lock(cache_mu_);
    auto it = cache_.find(page);
    if (it == cache_.end() || !it->second.writable) {
      return Status::FailedPrecondition("DSM write without Acquire");
    }
    std::memcpy(it->second.data.data() + in_page_off, in + done, take);
    it->second.dirty = true;
    done += take;
  }
  return Status::Ok();
}

Status LiteDsm::Acquire(uint64_t gaddr, uint32_t len) {
  uint64_t first = gaddr / kPageSize;
  uint64_t last = (gaddr + len - 1) / kPageSize;
  for (uint64_t page = first; page <= last; ++page) {
    lite::WireWriter w;
    DsmMsg msg{kOpAcquire, self_, page};
    w.Put(msg);
    uint8_t reply = 0;
    uint32_t reply_len = 0;
    LT_RETURN_IF_ERROR(client_->Rpc(HomeOf(page), kDsmFunc + instance_id_, w.bytes().data(),
                                    static_cast<uint32_t>(w.bytes().size()), &reply,
                                    sizeof(reply), &reply_len));
    // A still-cached copy is current (any other writer's release would have
    // invalidated it); otherwise fetch fresh.
    {
      std::lock_guard<std::mutex> lock(cache_mu_);
      auto it = cache_.find(page);
      if (it != cache_.end()) {
        it->second.writable = true;
        continue;
      }
    }
    CachedPage fresh;
    LT_RETURN_IF_ERROR(FetchPage(page, &fresh));
    fresh.writable = true;
    std::lock_guard<std::mutex> lock(cache_mu_);
    cache_[page] = std::move(fresh);
  }
  return Status::Ok();
}

Status LiteDsm::Release(uint64_t gaddr, uint32_t len) {
  uint64_t first = gaddr / kPageSize;
  uint64_t last = (gaddr + len - 1) / kPageSize;
  for (uint64_t page = first; page <= last; ++page) {
    // Push dirty data home (one-sided write), then run the release protocol.
    {
      std::lock_guard<std::mutex> lock(cache_mu_);
      auto it = cache_.find(page);
      if (it == cache_.end() || !it->second.writable) {
        return Status::FailedPrecondition("DSM release without Acquire");
      }
      if (it->second.dirty) {
        LT_RETURN_IF_ERROR(client_->Write(backing_[HomeOf(page)], HomeOffset(page),
                                          it->second.data.data(), kPageSize));
      }
      it->second.writable = false;
      it->second.dirty = false;
    }
    lite::WireWriter w;
    DsmMsg msg{kOpRelease, self_, page};
    w.Put(msg);
    uint8_t reply = 0;
    uint32_t reply_len = 0;
    LT_RETURN_IF_ERROR(client_->Rpc(HomeOf(page), kDsmFunc + instance_id_, w.bytes().data(),
                                    static_cast<uint32_t>(w.bytes().size()), &reply,
                                    sizeof(reply), &reply_len));
  }
  return Status::Ok();
}

void LiteDsm::ServiceLoop() {
  const lite::RpcFuncId func = kDsmFunc + instance_id_;
  const lite::RpcFuncId inval_func = func + kInvalFuncDelta;

  // Separate thread for invalidations (never blocks -> no deadlock).
  std::thread inval_thread([this, inval_func] {
    while (!stopping_.load()) {
      auto inc = client_->RecvRpc(inval_func, 100'000'000);
      if (!inc.ok()) {
        continue;
      }
      DsmMsg msg;
      lite::WireReader r(inc->data.data(), inc->data.size());
      if (r.Get(&msg) && msg.op == kOpInvalidate) {
        std::lock_guard<std::mutex> lock(cache_mu_);
        cache_.erase(msg.page);
      }
      uint8_t ok = 1;
      (void)client_->ReplyRpc(inc->token, &ok, 1);
    }
  });

  while (!stopping_.load()) {
    auto inc = client_->RecvRpc(func, 100'000'000);
    if (!inc.ok()) {
      continue;
    }
    DsmMsg msg;
    lite::WireReader r(inc->data.data(), inc->data.size());
    if (!r.Get(&msg)) {
      continue;
    }
    switch (msg.op) {
      case kOpRegisterCacher: {
        {
          std::lock_guard<std::mutex> lock(home_mu_);
          home_pages_[msg.page].cachers.insert(msg.node);
        }
        uint8_t ok = 1;
        (void)client_->ReplyRpc(inc->token, &ok, 1);
        break;
      }
      case kOpAcquire: {
        bool grant = false;
        {
          std::lock_guard<std::mutex> lock(home_mu_);
          HomePage& hp = home_pages_[msg.page];
          if (hp.writer == lt::kInvalidNode || hp.writer == msg.node) {
            hp.writer = msg.node;
            grant = true;
          } else {
            // MRSW: wait for the current writer to release.
            hp.wait_queue.emplace_back(inc->token, msg.node);
          }
        }
        if (grant) {
          uint8_t ok = 1;
          (void)client_->ReplyRpc(inc->token, &ok, 1);
        }
        break;
      }
      case kOpRelease: {
        std::vector<lt::NodeId> to_invalidate;
        lite::ReplyToken next_writer_token;
        bool have_next = false;
        {
          std::lock_guard<std::mutex> lock(home_mu_);
          HomePage& hp = home_pages_[msg.page];
          for (lt::NodeId cacher : hp.cachers) {
            if (cacher != msg.node && cacher != self_) {
              to_invalidate.push_back(cacher);
            }
          }
          hp.cachers.clear();
          hp.cachers.insert(msg.node);  // The writer keeps a (clean) copy.
          if (!hp.wait_queue.empty()) {
            next_writer_token = hp.wait_queue.front().first;
            hp.writer = hp.wait_queue.front().second;  // FIFO writer hand-off.
            hp.wait_queue.erase(hp.wait_queue.begin());
            have_next = true;
          } else {
            hp.writer = lt::kInvalidNode;
          }
        }
        // Home invalidates all cached copies (multicast RPC, Sec. 8.4).
        if (!to_invalidate.empty()) {
          lite::WireWriter w;
          DsmMsg inval{kOpInvalidate, self_, msg.page};
          w.Put(inval);
          std::vector<std::vector<uint8_t>> replies;
          (void)client_->MulticastRpc(to_invalidate, inval_func, w.bytes().data(),
                                      static_cast<uint32_t>(w.bytes().size()), &replies);
        }
        // Invalidate our own local cache too (home copy is authoritative).
        {
          std::lock_guard<std::mutex> lock(cache_mu_);
          cache_.erase(msg.page);
        }
        uint8_t ok = 1;
        (void)client_->ReplyRpc(inc->token, &ok, 1);
        if (have_next) {
          // Writer hand-off at max(release time, waiter's request time).
          lt::SyncClockTo(next_writer_token.arrival_vtime_ns);
          (void)client_->ReplyRpc(next_writer_token, &ok, 1);
        }
        break;
      }
      default:
        LT_LOG_WARNING << "DSM: unknown op " << static_cast<int>(msg.op);
    }
  }
  inval_thread.join();
}

// ------------------------------------------------------- LITE-Graph-DSM

PageRankResult LiteGraphDsmPageRank(lite::LiteCluster* cluster, const SyntheticGraph& graph,
                                    uint32_t num_nodes, const PageRankOptions& options) {
  static std::atomic<uint32_t> dsm_job{100};
  const uint32_t job = dsm_job.fetch_add(1);
  PageRankResult result;
  auto parts = MakePartitioning(graph.num_vertices, num_nodes);
  GraphIndex idx = BuildIndex(graph, parts);

  const uint64_t rank_bytes = static_cast<uint64_t>(graph.num_vertices) * sizeof(double);
  const uint64_t pages =
      (rank_bytes + LiteDsm::kPageSize - 1) / LiteDsm::kPageSize + num_nodes;

  // Bring up one DSM instance per node.
  std::vector<lt::NodeId> nodes;
  for (uint32_t p = 0; p < num_nodes; ++p) {
    nodes.push_back(p);
  }
  std::vector<std::unique_ptr<LiteDsm>> dsms;
  for (uint32_t p = 0; p < num_nodes; ++p) {
    dsms.push_back(std::make_unique<LiteDsm>(cluster, p, nodes, pages, job));
  }
  for (uint32_t p = 0; p < num_nodes; ++p) {
    auto st = dsms[p]->Start();
    if (!st.ok()) {
      result.total_ns = 0;
      return result;
    }
  }

  // Initialize ranks through the DSM (node 0).
  {
    std::vector<double> init(graph.num_vertices, 1.0 / graph.num_vertices);
    (void)dsms[0]->Acquire(0, static_cast<uint32_t>(rank_bytes));
    (void)dsms[0]->Write(0, init.data(), static_cast<uint32_t>(rank_bytes));
    (void)dsms[0]->Release(0, static_cast<uint32_t>(rank_bytes));
  }

  const uint64_t t0 = NowNs();
  std::vector<uint64_t> ends(num_nodes, 0);
  std::vector<std::vector<double>> final_ranks(num_nodes);
  std::vector<std::thread> threads;
  for (uint32_t p = 0; p < num_nodes; ++p) {
    threads.emplace_back([&, p] {
      SyncClockTo(t0);
      auto client = cluster->CreateClient(p);
      std::vector<double> snapshot(graph.num_vertices);
      std::vector<double> mine(parts.End(p) - parts.Begin(p));
      const uint64_t my_off = static_cast<uint64_t>(parts.Begin(p)) * sizeof(double);
      const uint32_t my_bytes = static_cast<uint32_t>(mine.size() * sizeof(double));
      for (uint32_t it = 0; it < options.iterations; ++it) {
        // Gather: plain DSM reads (page faults + one-sided fetches).
        (void)dsms[p]->Read(0, snapshot.data(), static_cast<uint32_t>(rank_bytes));
        SweepPartition(idx, parts, p, snapshot, &mine, options);
        // Per-step barriers keep gather and scatter phases disjoint, as in
        // LITE-Graph (paper Secs. 8.3-8.4).
        (void)client->Barrier("grdsm" + std::to_string(job) + "_g" + std::to_string(it),
                              num_nodes);
        // Scatter: acquire/write/release of this partition's range.
        (void)dsms[p]->Acquire(my_off, my_bytes);
        (void)dsms[p]->Write(my_off, mine.data(), my_bytes);
        (void)dsms[p]->Release(my_off, my_bytes);
        (void)client->Barrier("grdsm" + std::to_string(job) + "_s" + std::to_string(it),
                              num_nodes);
      }
      final_ranks[p] = mine;
      ends[p] = NowNs();
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  result.ranks.resize(graph.num_vertices);
  uint64_t end = t0;
  for (uint32_t p = 0; p < num_nodes; ++p) {
    std::copy(final_ranks[p].begin(), final_ranks[p].end(), result.ranks.begin() + parts.Begin(p));
    end = std::max(end, ends[p]);
  }
  result.total_ns = end - t0;
  result.iterations = options.iterations;
  for (auto& dsm : dsms) {
    dsm->Stop();
  }
  return result;
}

}  // namespace liteapp
