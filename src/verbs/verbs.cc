#include "src/verbs/verbs.h"

#include "src/common/timing.h"

namespace lt {

StatusOr<VerbsMr> VerbsContext::RegisterMr(VirtAddr addr, uint64_t length, uint32_t access) {
  // Registration is a syscall into the driver...
  os_->Syscall();
  // ...that pins every page of the region (get_user_pages)...
  os_->PinPages(pt_->PagesSpanned(addr, length));
  // ...and installs the MR in the NIC's MPT/MTT host tables.
  SpinFor(os_->params().mr_register_base_ns);

  auto entry = rnic_->RegisterMrVirtual(pt_, addr, length, access);
  if (!entry.ok()) {
    return entry.status();
  }
  VerbsMr mr;
  mr.lkey = entry->lkey;
  mr.rkey = entry->lkey;
  mr.addr = addr;
  mr.length = length;
  return mr;
}

Status VerbsContext::DeregisterMr(const VerbsMr& mr) {
  os_->Syscall();
  os_->UnpinPages(pt_->PagesSpanned(mr.addr, mr.length));
  SpinFor(os_->params().mr_deregister_base_ns);
  return rnic_->DeregisterMr(mr.lkey);
}

Status VerbsContext::ExecSync(Qp* qp, WorkRequest wr, uint64_t timeout_ns) {
  if (wr.wr_id == 0) {
    wr.wr_id = next_wr_id_.fetch_add(1);
  }
  LT_RETURN_IF_ERROR(rnic_->PostSend(qp, wr));
  // Busy-poll the send CQ for our completion (the blocking Verbs pattern the
  // paper's microbenchmarks measure).
  auto c = qp->send_cq()->WaitPollFor(wr.wr_id, timeout_ns, WaitMode::kBusyPoll);
  if (!c.has_value()) {
    return Status::Timeout("ExecSync: no completion before deadline");
  }
  return c->status;
}

}  // namespace lt
