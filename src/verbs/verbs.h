// Native Verbs — the user-level RDMA interface LITE's baselines use.
//
// Mirrors the ibv_* workflow from the paper's Sec. 2.1: register an MR (by
// virtual address: pays per-page pinning, puts per-page translation pressure
// on the RNIC), exchange rkeys out of band, create/connect QPs, post work
// requests, poll CQs. A thin synchronous helper (ExecSync) implements the
// blocking post+poll pattern the microbenchmarks measure.
#ifndef SRC_VERBS_VERBS_H_
#define SRC_VERBS_VERBS_H_

#include <atomic>
#include <cstdint>

#include "src/common/status.h"
#include "src/mem/page_table.h"
#include "src/oss/os_kernel.h"
#include "src/rnic/rnic.h"

namespace lt {

struct VerbsMr {
  uint32_t lkey = 0;
  uint32_t rkey = 0;
  VirtAddr addr = 0;
  uint64_t length = 0;
};

// One Verbs context per (node, process). Not tied to LITE in any way: this is
// the kernel-bypass path.
class VerbsContext {
 public:
  VerbsContext(Rnic* rnic, OsKernel* os, PageTable* pt) : rnic_(rnic), os_(os), pt_(pt) {}

  // Registers [addr, addr+length) as an MR. Charges the pinning cost the
  // paper measures in Fig. 8.
  StatusOr<VerbsMr> RegisterMr(VirtAddr addr, uint64_t length, uint32_t access);
  Status DeregisterMr(const VerbsMr& mr);

  Cq* CreateCq() { return rnic_->CreateCq(); }
  Qp* CreateQp(QpType type, Cq* send_cq, Cq* recv_cq) {
    return rnic_->CreateQp(type, send_cq, recv_cq);
  }

  Status PostSend(Qp* qp, const WorkRequest& wr) { return rnic_->PostSend(qp, wr); }
  Status PostRecv(Qp* qp, const Rqe& rqe) { return qp->PostRecv(rqe); }

  // Posts `wr` and busy-polls the QP's send CQ until its completion arrives
  // (assumes the QP is driven by one thread for synchronous use).
  Status ExecSync(Qp* qp, WorkRequest wr, uint64_t timeout_ns = 2'000'000'000);

  Rnic* rnic() const { return rnic_; }
  OsKernel* os() const { return os_; }
  PageTable* page_table() const { return pt_; }

 private:
  Rnic* const rnic_;
  OsKernel* const os_;
  PageTable* const pt_;
  std::atomic<uint64_t> next_wr_id_{1};
};

}  // namespace lt

#endif  // SRC_VERBS_VERBS_H_
