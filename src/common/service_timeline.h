// Per-service-thread virtual timeline.
//
// A service thread (RPC poll thread, worker, application server thread)
// handles a stream of independent requests whose virtual arrival times need
// not match the real-time order they are observed in. If the thread's
// monotonic clock simply synced forward on each event, one future-timestamped
// request would "poison" the clock and every earlier-timestamped request
// observed afterwards would be served late. BeginService instead REWINDS the
// thread's clock to each request's own service start, while a windowed
// capacity account (RateWindow) still enforces the thread's serial service
// rate where requests genuinely overlap in virtual time.
#ifndef SRC_COMMON_SERVICE_TIMELINE_H_
#define SRC_COMMON_SERVICE_TIMELINE_H_

#include <cstdint>

#include "src/common/rate_window.h"
#include "src/common/timing.h"

namespace lt {

class ServiceTimeline {
 public:
  // Positions the calling thread's clock at the service start for an event
  // that became ready at `event_vtime`, reserving `est_cost_ns` of this
  // thread's serial capacity. If the thread had been idle past its spin
  // budget, charges a wakeup.
  void BeginService(uint64_t event_vtime, uint64_t est_cost_ns, uint64_t spin_budget_ns,
                    uint64_t wakeup_cost_ns) {
    uint64_t start = serial_.Reserve(event_vtime, est_cost_ns);
    uint64_t prev = NowNs();
    SetServiceClock(start);
    if (start > prev) {
      // The thread waited for this event: adaptive spin then sleep.
      if (start - prev > spin_budget_ns) {
        ChargeCpu(spin_budget_ns);  // Spun the budget, then slept...
        SpinFor(wakeup_cost_ns);    // ...and pays the wakeup.
      } else {
        ChargeCpu(start - prev);  // Spun the whole (short) gap.
      }
    }
  }

  // The thread-local timeline shared by all service roles of one thread.
  static ServiceTimeline& ForThisThread() {
    thread_local ServiceTimeline timeline;
    return timeline;
  }

 private:
  RateWindow serial_;
};

}  // namespace lt

#endif  // SRC_COMMON_SERVICE_TIMELINE_H_
