// Lightweight status / status-or-value types used across the LITE reproduction.
//
// Modeled on absl::Status but dependency-free. Functions that can fail return
// Status (or StatusOr<T>); Status::Ok() is success. Error codes mirror the
// failure classes LITE reports to applications (permission, timeout, ...).
#ifndef SRC_COMMON_STATUS_H_
#define SRC_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace lt {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kPermissionDenied,
  kResourceExhausted,
  kTimeout,
  kUnavailable,
  kFailedPrecondition,
  kOutOfRange,
  kInternal,
  // The addressed node is no longer the LMR's home: the caller holds a stale
  // epoch and must re-resolve through the name service before re-issuing.
  kStaleHome,
};

const char* StatusCodeName(StatusCode code);

class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status NotFound(std::string m) { return Status(StatusCode::kNotFound, std::move(m)); }
  static Status AlreadyExists(std::string m) {
    return Status(StatusCode::kAlreadyExists, std::move(m));
  }
  static Status PermissionDenied(std::string m) {
    return Status(StatusCode::kPermissionDenied, std::move(m));
  }
  static Status ResourceExhausted(std::string m) {
    return Status(StatusCode::kResourceExhausted, std::move(m));
  }
  static Status Timeout(std::string m) { return Status(StatusCode::kTimeout, std::move(m)); }
  static Status Unavailable(std::string m) {
    return Status(StatusCode::kUnavailable, std::move(m));
  }
  static Status FailedPrecondition(std::string m) {
    return Status(StatusCode::kFailedPrecondition, std::move(m));
  }
  static Status OutOfRange(std::string m) { return Status(StatusCode::kOutOfRange, std::move(m)); }
  static Status Internal(std::string m) { return Status(StatusCode::kInternal, std::move(m)); }
  static Status StaleHome(std::string m) { return Status(StatusCode::kStaleHome, std::move(m)); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) {
      return "OK";
    }
    return std::string(StatusCodeName(code_)) + ": " + message_;
  }

  friend bool operator==(const Status& a, const Status& b) { return a.code_ == b.code_; }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) { return os << s.ToString(); }

// StatusOr<T>: either a value or an error status. value() asserts on error in
// debug builds (callers must check ok() on fallible paths).
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    assert(!status_.ok() && "StatusOr constructed from OK status without value");
  }
  StatusOr(T value)  // NOLINT(google-explicit-constructor)
      : status_(Status::Ok()), value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() {
    assert(ok());
    return *value_;
  }
  const T& value() const {
    assert(ok());
    return *value_;
  }
  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  T value_or(T fallback) const { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;
  std::optional<T> value_;
};

#define LT_RETURN_IF_ERROR(expr)       \
  do {                                 \
    ::lt::Status _lt_st = (expr);      \
    if (!_lt_st.ok()) {                \
      return _lt_st;                   \
    }                                  \
  } while (0)

}  // namespace lt

#endif  // SRC_COMMON_STATUS_H_
