// Latency histogram + running statistics used by the benchmark harnesses.
#ifndef SRC_COMMON_HISTOGRAM_H_
#define SRC_COMMON_HISTOGRAM_H_

#include <algorithm>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace lt {

// Reservoir-free exact histogram: records every sample. Fine for the sample
// counts our benches use (<= a few million).
class Histogram {
 public:
  void Add(double v) {
    std::lock_guard<std::mutex> lock(mu_);
    samples_.push_back(v);
    sorted_ = false;
  }

  void AddUnlocked(double v) {
    samples_.push_back(v);
    sorted_ = false;
  }

  size_t count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return samples_.size();
  }

  double Mean() const {
    std::lock_guard<std::mutex> lock(mu_);
    if (samples_.empty()) {
      return 0.0;
    }
    double sum = 0.0;
    for (double v : samples_) {
      sum += v;
    }
    return sum / static_cast<double>(samples_.size());
  }

  // p in [0, 100].
  double Percentile(double p) const {
    std::lock_guard<std::mutex> lock(mu_);
    if (samples_.empty()) {
      return 0.0;
    }
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
    double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
    size_t lo = static_cast<size_t>(rank);
    size_t hi = std::min(lo + 1, samples_.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
  }

  double Min() const { return Percentile(0); }
  double Median() const { return Percentile(50); }
  double Max() const { return Percentile(100); }

  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    samples_.clear();
    sorted_ = false;
  }

 private:
  mutable std::mutex mu_;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

}  // namespace lt

#endif  // SRC_COMMON_HISTOGRAM_H_
