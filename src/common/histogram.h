// Latency histogram + running statistics used by the benchmark harnesses.
#ifndef SRC_COMMON_HISTOGRAM_H_
#define SRC_COMMON_HISTOGRAM_H_

#include <algorithm>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace lt {

// Consistent point-in-time copy of a Histogram: samples already sorted, with
// the common statistics precomputed. Safe to read while the source histogram
// keeps taking Add()s.
struct HistogramStats {
  std::vector<double> sorted_samples;
  size_t count = 0;
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;

  // p in [0, 100]; linear interpolation between sorted samples.
  double Percentile(double p) const {
    if (sorted_samples.empty()) {
      return 0.0;
    }
    double rank = p / 100.0 * static_cast<double>(sorted_samples.size() - 1);
    size_t lo = static_cast<size_t>(rank);
    size_t hi = std::min(lo + 1, sorted_samples.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return sorted_samples[lo] * (1.0 - frac) + sorted_samples[hi] * frac;
  }
  double Median() const { return Percentile(50); }
};

// Reservoir-free exact histogram: records every sample. Fine for the sample
// counts our benches use (<= a few million).
class Histogram {
 public:
  void Add(double v) {
    std::lock_guard<std::mutex> lock(mu_);
    samples_.push_back(v);
    sorted_ = false;
  }

  void AddUnlocked(double v) {
    samples_.push_back(v);
    sorted_ = false;
  }

  size_t count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return samples_.size();
  }

  double Mean() const {
    std::lock_guard<std::mutex> lock(mu_);
    if (samples_.empty()) {
      return 0.0;
    }
    double sum = 0.0;
    for (double v : samples_) {
      sum += v;
    }
    return sum / static_cast<double>(samples_.size());
  }

  // Sorted copy + stats under one lock acquisition. Prefer this when other
  // threads may still be Add()ing: interleaving count()/Percentile() calls
  // takes and drops the lock between reads, so the pair can disagree (and
  // Percentile() re-sorts live storage each time a concurrent Add lands).
  HistogramStats Snapshot() const {
    HistogramStats s;
    {
      std::lock_guard<std::mutex> lock(mu_);
      s.sorted_samples = samples_;
    }
    std::sort(s.sorted_samples.begin(), s.sorted_samples.end());
    s.count = s.sorted_samples.size();
    if (s.count > 0) {
      double sum = 0.0;
      for (double v : s.sorted_samples) {
        sum += v;
      }
      s.mean = sum / static_cast<double>(s.count);
      s.min = s.sorted_samples.front();
      s.max = s.sorted_samples.back();
    }
    return s;
  }

  // p in [0, 100].
  double Percentile(double p) const {
    std::lock_guard<std::mutex> lock(mu_);
    if (samples_.empty()) {
      return 0.0;
    }
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
    double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
    size_t lo = static_cast<size_t>(rank);
    size_t hi = std::min(lo + 1, samples_.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
  }

  double Min() const { return Percentile(0); }
  double Median() const { return Percentile(50); }
  double Max() const { return Percentile(100); }

  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    samples_.clear();
    sorted_ = false;
  }

 private:
  mutable std::mutex mu_;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

}  // namespace lt

#endif  // SRC_COMMON_HISTOGRAM_H_
