// Virtual time.
//
// Every simulated cost in this reproduction is charged to a per-thread
// *virtual clock* instead of being realized by real spinning. This makes the
// simulation independent of host core count and real scheduler behaviour:
// contention on shared resources (NIC engines, fabric ports) is modeled by
// virtual-time reservations, and threads that wait for each other synchronize
// their virtual clocks to the event's virtual timestamp when the (real,
// condvar-based) wait completes.
//
//   NowNs()        current thread's virtual time
//   SpinFor(ns)    charge busy work: virtual time += ns, virtual CPU += ns
//   IdleFor(ns)    charge idle wait: virtual time += ns, no CPU
//   SyncTo*(t)     jump virtual time forward to t (never backward), with the
//                  CPU cost of how the thread "waited": busy-polling burns
//                  CPU for the whole gap, sleeping burns none, LITE's
//                  adaptive wait burns up to its spin budget (paper Sec. 5.2).
//   ThreadCpuNs()  virtual CPU consumed by this thread
//
// A thread's clock starts at the virtual time of whatever event it first
// synchronizes with (or 0). Benchmarks sync all worker clocks at a start
// barrier and measure virtual-time deltas.
//
// RealNowNs() exposes the host monotonic clock for safety-net timeouts only.
#ifndef SRC_COMMON_TIMING_H_
#define SRC_COMMON_TIMING_H_

#include <cstdint>

namespace lt {

// Current thread's virtual time (ns).
uint64_t NowNs();

// Virtual CPU time consumed by this thread (ns).
uint64_t ThreadCpuNs();

// Charge `ns` of busy (CPU-consuming) virtual work.
void SpinFor(uint64_t ns);

// Charge `ns` of idle (non-CPU) virtual waiting.
void IdleFor(uint64_t ns);

// Charge CPU without advancing the clock (spinning that overlapped a wait
// the clock already accounts for).
void ChargeCpu(uint64_t ns);

// Jump this thread's virtual clock to at least `t`, burning CPU for the whole
// gap (a busy-polling wait).
void SyncToBusy(uint64_t t);

// Jump to at least `t` without CPU cost (a blocking/sleeping wait).
void SyncToIdle(uint64_t t);

// Jump to at least `t`, burning CPU for at most `spin_budget_ns` of the gap
// (spin-then-sleep adaptive wait).
void SyncToAdaptive(uint64_t t, uint64_t spin_budget_ns);

// Set the thread's virtual clock (used by start barriers; never rewinds).
void SyncClockTo(uint64_t t);

// Service threads only: set the clock EXACTLY (rewind allowed). A service
// thread acts on behalf of many independent requests; each request must be
// served on its own timeline, not after the latest timestamp the thread
// happened to observe first (see ServiceTimeline).
void SetServiceClock(uint64_t t);

// Host monotonic clock; use only for deadlock-safety timeouts.
uint64_t RealNowNs();

// Bridges real computation into virtual time: measures the calling thread's
// actual CPU time (CLOCK_THREAD_CPUTIME_ID) over the scope and charges it as
// busy virtual work. Wrap application compute (hashing, PageRank math) in
// this so application benchmarks reflect compute, not just modeled network.
// Per-thread CPU clocks stay honest regardless of host core contention.
class ComputeScope {
 public:
  ComputeScope();
  ~ComputeScope();

  ComputeScope(const ComputeScope&) = delete;
  ComputeScope& operator=(const ComputeScope&) = delete;

 private:
  uint64_t start_real_cpu_ns_;
};

}  // namespace lt

#endif  // SRC_COMMON_TIMING_H_
