// Fast deterministic random number generation plus the samplers the paper's
// workloads need (uniform, Zipf-skewed popularity, exponential inter-arrival).
#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

namespace lt {

// SplitMix64 — tiny, high-quality, seedable PRNG (public-domain algorithm).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  // Uniform in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound) {
    assert(bound > 0);
    return Next() % bound;
  }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0); }

  // Exponentially distributed value with the given mean.
  double NextExponential(double mean) {
    double u = NextDouble();
    if (u >= 1.0) {
      u = 0.9999999999;
    }
    return -mean * std::log(1.0 - u);
  }

 private:
  uint64_t state_;
};

// Zipf-distributed sampler over [0, n). Uses the standard rejection-inversion
// style approximation via precomputed harmonic table for modest n, which is
// exact and fast enough for workload generation.
class ZipfSampler {
 public:
  ZipfSampler(uint64_t n, double theta, uint64_t seed = 1) : rng_(seed) {
    assert(n > 0);
    cdf_.reserve(n);
    double sum = 0.0;
    for (uint64_t i = 1; i <= n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i), theta);
      cdf_.push_back(sum);
    }
    for (double& v : cdf_) {
      v /= sum;
    }
  }

  uint64_t Next() {
    double u = rng_.NextDouble();
    // Binary search the CDF.
    size_t lo = 0;
    size_t hi = cdf_.size() - 1;
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

 private:
  Rng rng_;
  std::vector<double> cdf_;
};

}  // namespace lt

#endif  // SRC_COMMON_RNG_H_
