#include "src/common/status.h"

namespace lt {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kPermissionDenied:
      return "PERMISSION_DENIED";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kTimeout:
      return "TIMEOUT";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kStaleHome:
      return "STALE_HOME";
  }
  return "UNKNOWN";
}

}  // namespace lt
