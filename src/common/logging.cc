#include "src/common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace lt {
namespace {

std::atomic<int> g_log_level = []() {
  const char* env = std::getenv("LT_LOG_LEVEL");
  if (env != nullptr) {
    return std::atoi(env);
  }
  return static_cast<int>(LogLevel::kWarning);
}();

std::mutex g_log_mu;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_log_level.store(static_cast<int>(level)); }

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_log_level.load()); }

void LogMessage(LogLevel level, const char* file, int line, const std::string& message) {
  const char* base = std::strrchr(file, '/');
  base = (base != nullptr) ? base + 1 : file;
  std::lock_guard<std::mutex> lock(g_log_mu);
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), base, line, message.c_str());
}

}  // namespace lt
