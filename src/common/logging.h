// Minimal leveled logging. Defaults to WARNING+ so benchmarks stay quiet;
// set LT_LOG_LEVEL (0=debug .. 3=error) or call SetLogLevel to change.
#ifndef SRC_COMMON_LOGGING_H_
#define SRC_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace lt {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();
void LogMessage(LogLevel level, const char* file, int line, const std::string& message);

class LogLine {
 public:
  LogLine(LogLevel level, const char* file, int line) : level_(level), file_(file), line_(line) {}
  ~LogLine() { LogMessage(level_, file_, line_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace lt

#define LT_LOG(level)                                                            \
  if (static_cast<int>(::lt::LogLevel::level) >= static_cast<int>(::lt::GetLogLevel())) \
  ::lt::LogLine(::lt::LogLevel::level, __FILE__, __LINE__)

#define LT_LOG_DEBUG LT_LOG(kDebug)
#define LT_LOG_INFO LT_LOG(kInfo)
#define LT_LOG_WARNING LT_LOG(kWarning)
#define LT_LOG_ERROR LT_LOG(kError)

// Verbose debug logging for hot paths. Unlike LT_LOG_DEBUG (whose level test
// runs at runtime), LT_VLOG compiles out entirely under NDEBUG: the dead
// `while (false)` swallows the streamed operands, so Release builds pay
// nothing — not even argument evaluation.
#ifdef NDEBUG
#define LT_VLOG \
  while (false) ::lt::LogLine(::lt::LogLevel::kDebug, __FILE__, __LINE__)
#else
#define LT_VLOG LT_LOG(kDebug)
#endif

#endif  // SRC_COMMON_LOGGING_H_
