#include "src/common/cpu_meter.h"

#include "src/common/timing.h"

namespace lt {

ScopedCpuSample::ScopedCpuSample(CpuMeter* meter) : meter_(meter), start_cpu_ns_(ThreadCpuNs()) {}

ScopedCpuSample::~ScopedCpuSample() { meter_->Add(ThreadCpuNs() - start_cpu_ns_); }

}  // namespace lt
