// Aggregates virtual CPU time across the threads participating in an
// experiment (paper Fig. 13). Threads sample lt::ThreadCpuNs() before and
// after the measured region and report the delta here; service threads
// (pollers) expose running counters that harnesses snapshot the same way.
#ifndef SRC_COMMON_CPU_METER_H_
#define SRC_COMMON_CPU_METER_H_

#include <atomic>
#include <cstdint>

namespace lt {

class CpuMeter {
 public:
  void Add(uint64_t cpu_ns) { total_.fetch_add(cpu_ns, std::memory_order_relaxed); }
  uint64_t TotalCpuNs() const { return total_.load(std::memory_order_relaxed); }
  void Reset() { total_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> total_{0};
};

// RAII helper: measures the calling thread's virtual CPU over a scope and
// adds it to a meter on destruction.
class ScopedCpuSample {
 public:
  explicit ScopedCpuSample(CpuMeter* meter);
  ~ScopedCpuSample();

 private:
  CpuMeter* const meter_;
  uint64_t start_cpu_ns_;
};

}  // namespace lt

#endif  // SRC_COMMON_CPU_METER_H_
