// Windowed capacity reservation for virtual-time resources (fabric ports,
// NIC processing engines, TCP rate caps).
//
// A naive monotonic busy_until pointer cannot BACKFILL: once one thread
// reserves at a late virtual time, an (in real time) later-arriving thread
// with an *earlier* virtual timestamp would queue behind it even though the
// resource was idle at its time. Under bursty host scheduling that
// artificially serializes concurrent virtual work. RateWindow instead
// accounts capacity in fixed windows of virtual time: each window holds
// kWindowNs of service capacity, reservations consume capacity starting at
// their own virtual time, and unrelated earlier windows remain available.
//
//   * Light load: Reserve(earliest, cost) returns earliest + cost (exact).
//   * Saturation: the reservation spills into subsequent windows, modeling
//     queueing with ~kWindowNs granularity.
#ifndef SRC_COMMON_RATE_WINDOW_H_
#define SRC_COMMON_RATE_WINDOW_H_

#include <algorithm>
#include <cstdint>
#include <mutex>
#include <unordered_map>

namespace lt {

class RateWindow {
 public:
  // Reserves `cost_ns` of service capacity starting no earlier than
  // `earliest_ns` (virtual time); returns the absolute finish time. Windows
  // account consumed capacity only (position within a window is approximated
  // at window granularity).
  uint64_t Reserve(uint64_t earliest_ns, uint64_t cost_ns) {
    if (cost_ns == 0) {
      return earliest_ns;
    }
    std::lock_guard<std::mutex> lock(mu_);
    uint64_t w = earliest_ns / kWindowNs;
    uint64_t remaining = cost_ns;
    uint64_t last_consume_point = earliest_ns;
    while (remaining > 0) {
      uint64_t& used = used_[w];
      if (used < kWindowNs) {
        uint64_t take = std::min(kWindowNs - used, remaining);
        used += take;
        remaining -= take;
        last_consume_point = w * kWindowNs + used;
      }
      if (remaining > 0) {
        ++w;
      }
    }
    max_window_ = std::max(max_window_, w);
    if (used_.size() > kGcThreshold) {
      Gc();
    }
    return std::max(earliest_ns + cost_ns, last_consume_point);
  }

 private:
  void Gc() {
    // Drop windows far behind the frontier; reservations that far in the
    // past no longer occur (clocks only move forward on each thread).
    uint64_t horizon = max_window_ > kGcKeepWindows ? max_window_ - kGcKeepWindows : 0;
    for (auto it = used_.begin(); it != used_.end();) {
      it = it->first < horizon ? used_.erase(it) : std::next(it);
    }
  }

  static constexpr uint64_t kWindowNs = 8192;
  static constexpr size_t kGcThreshold = 1 << 16;
  static constexpr uint64_t kGcKeepWindows = 1 << 15;

  std::mutex mu_;
  std::unordered_map<uint64_t, uint64_t> used_;
  uint64_t max_window_ = 0;
};

}  // namespace lt

#endif  // SRC_COMMON_RATE_WINDOW_H_
