// Small synchronization helpers shared across the stack: a spinlock for
// nanosecond-scale critical sections (NIC queues), a blocking MPMC queue, and
// a countdown latch for test/bench thread coordination.
#ifndef SRC_COMMON_SYNC_UTIL_H_
#define SRC_COMMON_SYNC_UTIL_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

namespace lt {

class SpinLock {
 public:
  void lock() {
    while (flag_.test_and_set(std::memory_order_acquire)) {
#if defined(__x86_64__) || defined(__i386__)
      __builtin_ia32_pause();
#endif
    }
  }
  void unlock() { flag_.clear(std::memory_order_release); }
  bool try_lock() { return !flag_.test_and_set(std::memory_order_acquire); }

 private:
  std::atomic_flag flag_ = ATOMIC_FLAG_INIT;
};

// Blocking multi-producer multi-consumer FIFO. Pop() blocks until an element
// arrives or Close() is called (then returns nullopt). TryPop never blocks.
template <typename T>
class BlockingQueue {
 public:
  void Push(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
  }

  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return !items_.empty() || closed_; });
    if (items_.empty()) {
      return std::nullopt;
    }
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  std::optional<T> TryPop() {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) {
      return std::nullopt;
    }
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  template <typename Rep, typename Period>
  std::optional<T> PopFor(std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock<std::mutex> lock(mu_);
    if (!cv_.wait_for(lock, timeout, [this] { return !items_.empty() || closed_; })) {
      return std::nullopt;
    }
    if (items_.empty()) {
      return std::nullopt;
    }
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

class CountDownLatch {
 public:
  explicit CountDownLatch(int count) : count_(count) {}

  void CountDown() {
    std::lock_guard<std::mutex> lock(mu_);
    if (count_ > 0 && --count_ == 0) {
      cv_.notify_all();
    }
  }

  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return count_ == 0; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int count_;
};

}  // namespace lt

#endif  // SRC_COMMON_SYNC_UTIL_H_
