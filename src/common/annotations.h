// Sanitizer annotations for the simulation's DMA model.
//
// The simulator performs RDMA data movement with plain memcpy into shared
// "physical memory" while application threads concurrently read those bytes
// — exactly like a real RNIC DMA engine racing the CPU. That race is part of
// the model (LITE polls ring bytes the NIC is still writing and validates
// with magic/length fields), so under ThreadSanitizer the DMA copy helpers
// below are compiled uninstrumented rather than "fixed" with locks that real
// hardware does not have. Control-plane state (queues, slots, maps) is NOT
// exempted: TSan still checks all of it, which is the point of the tsan
// build preset.
#ifndef SRC_COMMON_ANNOTATIONS_H_
#define SRC_COMMON_ANNOTATIONS_H_

#include <cstddef>
#include <cstdint>
#include <cstring>

#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define LT_TSAN_ACTIVE 1
#endif
#endif
#if !defined(LT_TSAN_ACTIVE) && defined(__SANITIZE_THREAD__)
#define LT_TSAN_ACTIVE 1
#endif

#ifdef LT_TSAN_ACTIVE
#define LT_NO_SANITIZE_THREAD __attribute__((no_sanitize("thread")))
#else
#define LT_NO_SANITIZE_THREAD
#endif

namespace lt {

// DMA-modeling copy: byte-exact memcpy whose accesses TSan does not observe.
// Under TSan a manual word loop is used because libc memcpy is intercepted
// (and would report) even from uninstrumented callers.
#ifdef LT_TSAN_ACTIVE
LT_NO_SANITIZE_THREAD inline void SimDmaCopy(void* dst, const void* src, size_t n) {
  unsigned char* d = static_cast<unsigned char*>(dst);
  const unsigned char* s = static_cast<const unsigned char*>(src);
  while (n >= sizeof(uint64_t)) {
    uint64_t w;
    __builtin_memcpy(&w, s, sizeof(w));
    __builtin_memcpy(d, &w, sizeof(w));
    d += sizeof(w);
    s += sizeof(w);
    n -= sizeof(w);
  }
  while (n-- > 0) {
    *d++ = *s++;
  }
}
#else
inline void SimDmaCopy(void* dst, const void* src, size_t n) { std::memcpy(dst, src, n); }
#endif

// DMA-modeling 8-byte read (head mirrors, ring headers).
LT_NO_SANITIZE_THREAD inline uint64_t SimDmaRead64(const void* src) {
  uint64_t v;
#ifdef LT_TSAN_ACTIVE
  __builtin_memcpy(&v, src, sizeof(v));
#else
  std::memcpy(&v, src, sizeof(v));
#endif
  return v;
}

}  // namespace lt

#endif  // SRC_COMMON_ANNOTATIONS_H_
