#include "src/common/timing.h"

#include <algorithm>
#include <ctime>

namespace lt {
namespace {

struct ThreadClock {
  uint64_t vnow_ns = 0;
  uint64_t cpu_ns = 0;
};

thread_local ThreadClock t_clock;

}  // namespace

uint64_t NowNs() { return t_clock.vnow_ns; }

uint64_t ThreadCpuNs() { return t_clock.cpu_ns; }

void SpinFor(uint64_t ns) {
  t_clock.vnow_ns += ns;
  t_clock.cpu_ns += ns;
}

void IdleFor(uint64_t ns) { t_clock.vnow_ns += ns; }

void ChargeCpu(uint64_t ns) { t_clock.cpu_ns += ns; }

void SyncToBusy(uint64_t t) {
  if (t > t_clock.vnow_ns) {
    t_clock.cpu_ns += t - t_clock.vnow_ns;
    t_clock.vnow_ns = t;
  }
}

void SyncToIdle(uint64_t t) {
  if (t > t_clock.vnow_ns) {
    t_clock.vnow_ns = t;
  }
}

void SyncToAdaptive(uint64_t t, uint64_t spin_budget_ns) {
  if (t > t_clock.vnow_ns) {
    t_clock.cpu_ns += std::min(t - t_clock.vnow_ns, spin_budget_ns);
    t_clock.vnow_ns = t;
  }
}

void SyncClockTo(uint64_t t) {
  if (t > t_clock.vnow_ns) {
    t_clock.vnow_ns = t;
  }
}

void SetServiceClock(uint64_t t) { t_clock.vnow_ns = t; }

uint64_t RealNowNs() {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1'000'000'000ull + static_cast<uint64_t>(ts.tv_nsec);
}

namespace {

uint64_t RealThreadCpuNs() {
  timespec ts;
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1'000'000'000ull + static_cast<uint64_t>(ts.tv_nsec);
}

}  // namespace

ComputeScope::ComputeScope() : start_real_cpu_ns_(RealThreadCpuNs()) {}

ComputeScope::~ComputeScope() { SpinFor(RealThreadCpuNs() - start_real_cpu_ns_); }

}  // namespace lt
