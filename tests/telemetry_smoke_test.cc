// telemetry_smoke: end-to-end check of the --telemetry sidecar path. Runs a
// miniature bench workload against a LiteCluster, writes the JSON sidecar
// through benchlib::TelemetrySink exactly as the fig benches do, reads it
// back, and validates the schema: balanced structure, expected keys, and
// counters that actually moved.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/benchlib.h"
#include "src/lite/lite_cluster.h"
#include "src/node/node.h"

namespace {

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

bool JsonBalanced(const std::string& json) {
  int depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    char c = json[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{' || c == '[') {
      ++depth;
    } else if (c == '}' || c == ']') {
      if (--depth < 0) {
        return false;
      }
    }
  }
  return depth == 0 && !in_string;
}

// Extracts the integer that follows `"key":` (first occurrence).
int64_t JsonIntValue(const std::string& json, const std::string& key) {
  size_t pos = json.find("\"" + key + "\":");
  if (pos == std::string::npos) {
    return -1;
  }
  pos += key.size() + 3;
  return std::stoll(json.substr(pos));
}

TEST(TelemetrySmokeTest, SidecarSchemaAndLiveCounters) {
  const std::string path = ::testing::TempDir() + "/telemetry_smoke.json";
  std::remove(path.c_str());

  {
    // Simulate `bench --telemetry <path>`.
    std::string arg0 = "telemetry_smoke";
    std::string arg1 = "--telemetry=" + path;
    char* argv[] = {arg0.data(), arg1.data()};
    benchlib::TelemetrySink sink =
        benchlib::TelemetrySink::FromArgs(2, argv, "telemetry_smoke");
    ASSERT_TRUE(sink.enabled());
    ASSERT_EQ(sink.path(), path);

    lt::SimParams p = lt::SimParams::FastForTests();
    lite::LiteCluster cluster(2, p);
    cluster.EnableTracing(/*sample_every=*/1);
    auto client = cluster.CreateClient(0);
    lite::MallocOptions on1;
    on1.nodes = {1};
    auto lh = client->Malloc(32 << 10, "smoke_target", on1);
    ASSERT_TRUE(lh.ok());
    char buf[512] = {7};
    for (int i = 0; i < 32; ++i) {
      ASSERT_TRUE(client->Write(*lh, 0, buf, sizeof(buf)).ok());
      ASSERT_TRUE(client->Read(*lh, 0, buf, sizeof(buf)).ok());
    }
    sink.AddSnapshot("LITE_write", "512B", client->StatSnapshot());
    sink.SetClusterDump(cluster.DumpTelemetryJson());
    ASSERT_TRUE(sink.WriteFile());
  }

  std::string json = ReadFileOrDie(path);
  ASSERT_FALSE(json.empty());
  EXPECT_TRUE(JsonBalanced(json)) << json.substr(0, 200);

  // Top-level sidecar schema.
  EXPECT_NE(json.find("\"bench\":\"telemetry_smoke\""), std::string::npos);
  EXPECT_NE(json.find("\"points\":["), std::string::npos);
  EXPECT_NE(json.find("\"series\":\"LITE_write\""), std::string::npos);
  EXPECT_NE(json.find("\"x\":\"512B\""), std::string::npos);
  // Per-point snapshot schema.
  EXPECT_NE(json.find("\"metrics\":{"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\":{"), std::string::npos);
  // Cluster dump with per-node spans.
  EXPECT_NE(json.find("\"cluster\":{"), std::string::npos);
  EXPECT_NE(json.find("\"nodes\":["), std::string::npos);
  EXPECT_NE(json.find("\"spans\":["), std::string::npos);
  EXPECT_NE(json.find("\"stage\":\"api_entry\""), std::string::npos);
  EXPECT_NE(json.find("\"stage\":\"completion\""), std::string::npos);

  // The workload really ran: key counters are present and positive.
  for (const char* key :
       {"rnic.ops_posted", "os.crossings", "lite.qos.admits", "fabric.port.bytes"}) {
    EXPECT_GT(JsonIntValue(json, key), 0) << key << " missing or zero in sidecar";
  }
  // 64 ops posted from node 0 (32 writes + 32 reads).
  EXPECT_GE(JsonIntValue(json, "rnic.ops_posted"), 64);

  std::remove(path.c_str());
}

}  // namespace
