#include <gtest/gtest.h>

#include <cstring>
#include <thread>

#include "src/common/timing.h"
#include "src/node/node.h"

namespace lt {
namespace {

class TcpTest : public ::testing::Test {
 protected:
  void SetUp() override {
    params_ = SimParams();
    params_.node_phys_mem_bytes = 8 << 20;
    cluster_ = std::make_unique<Cluster>(2, params_);
    auto pair = TcpStack::ConnectPair(&cluster_->node(0)->tcp(), &cluster_->node(1)->tcp());
    a_ = std::move(pair.first);
    b_ = std::move(pair.second);
  }
  SimParams params_;
  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<TcpConn> a_;
  std::unique_ptr<TcpConn> b_;
};

TEST_F(TcpTest, SendRecvRoundTrip) {
  const char msg[] = "over tcp";
  ASSERT_TRUE(a_->Send(msg, sizeof(msg)).ok());
  char out[sizeof(msg)] = {0};
  ASSERT_TRUE(b_->RecvExact(out, sizeof(msg)).ok());
  EXPECT_STREQ(out, msg);
}

TEST_F(TcpTest, PartialReadsAcrossOneSegment) {
  const char msg[] = "abcdefgh";
  ASSERT_TRUE(a_->Send(msg, 8).ok());
  char part1[3], part2[5];
  ASSERT_TRUE(b_->RecvExact(part1, 3).ok());
  ASSERT_TRUE(b_->RecvExact(part2, 5).ok());
  EXPECT_EQ(std::memcmp(part1, "abc", 3), 0);
  EXPECT_EQ(std::memcmp(part2, "defgh", 5), 0);
}

TEST_F(TcpTest, MultipleSegmentsReassemble) {
  std::vector<uint8_t> big(200 * 1024);
  for (size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<uint8_t>(i & 0xff);
  }
  std::thread sender([&] { ASSERT_TRUE(a_->StreamSend(big.data(), big.size()).ok()); });
  std::vector<uint8_t> out(big.size());
  ASSERT_TRUE(b_->RecvExact(out.data(), out.size()).ok());
  sender.join();
  EXPECT_EQ(out, big);
}

TEST_F(TcpTest, RecvTimesOutWithoutData) {
  char out[4];
  auto st = b_->RecvExact(out, 4, 5'000'000);
  EXPECT_EQ(st.code(), StatusCode::kTimeout);
}

TEST_F(TcpTest, LatencyIncludesBothStackTraversals) {
  const char msg[] = "x";
  uint64_t send_done;
  std::thread sender([&] {
    ASSERT_TRUE(a_->Send(msg, 1).ok());
    send_done = NowNs();
  });
  sender.join();
  uint64_t t0 = NowNs();
  char out[1];
  ASSERT_TRUE(b_->RecvExact(out, 1).ok());
  // Receiver pays its stack traversal (virtual time advanced by >= recv cost).
  EXPECT_GE(NowNs() - t0, params_.tcp_recv_stack_ns);
}

TEST_F(TcpTest, MessageModeLatencyFarAboveRdma) {
  // One-way TCP message ~>= 18 us with default params (paper Fig. 6 TCP line).
  std::thread sender([&] {
    char c = 1;
    ASSERT_TRUE(a_->Send(&c, 1).ok());
  });
  char out[1];
  ASSERT_TRUE(b_->RecvExact(out, 1).ok());
  sender.join();
  EXPECT_GE(NowNs(), params_.tcp_send_stack_ns + params_.tcp_recv_stack_ns);
}

TEST_F(TcpTest, DropInjectionSurfacesError) {
  cluster_->fabric().SetDropProbability(1.0);
  char c = 1;
  EXPECT_EQ(a_->Send(&c, 1).code(), StatusCode::kUnavailable);
  cluster_->fabric().SetDropProbability(0.0);
}

TEST_F(TcpTest, RateCapBoundsThroughput) {
  // 10 MB at tcp_rate must take at least bytes/rate of virtual time end to end.
  const size_t bytes = 10 << 20;
  std::vector<uint8_t> data(bytes, 7);
  std::thread sender([&] { ASSERT_TRUE(a_->StreamSend(data.data(), bytes).ok()); });
  std::vector<uint8_t> out(bytes);
  ASSERT_TRUE(b_->RecvExact(out.data(), bytes).ok());
  sender.join();
  uint64_t min_ns =
      static_cast<uint64_t>(static_cast<double>(bytes) / params_.tcp_rate_bytes_per_ns);
  EXPECT_GE(NowNs(), min_ns);
}

}  // namespace
}  // namespace lt
