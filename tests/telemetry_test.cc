// lt::telemetry: metrics registry, request-path tracing, and the LT_stat
// introspection path through the simulated stack.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/timing.h"
#include "src/lite/lite_cluster.h"
#include "src/node/node.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/trace.h"

namespace lt {
namespace telemetry {
namespace {

// ------------------------------------------------------------------ metrics

TEST(RegistryTest, GetReturnsStablePointers) {
  Registry reg;
  Counter* a = reg.GetCounter("a");
  Counter* b = reg.GetCounter("b");
  EXPECT_NE(a, b);
  // Growth must not move existing metrics (components cache the pointer).
  for (int i = 0; i < 1000; ++i) {
    reg.GetCounter("grow." + std::to_string(i));
  }
  EXPECT_EQ(a, reg.GetCounter("a"));
  EXPECT_EQ(b, reg.GetCounter("b"));
}

TEST(RegistryTest, ConcurrentIncrementsAreLossless) {
  Registry reg;
  constexpr int kThreads = 8;
  constexpr int kIncsPerThread = 50'000;
  Counter* c = reg.GetCounter("ops");
  Gauge* g = reg.GetGauge("level");
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncsPerThread; ++i) {
        c->Inc();
        g->Add(1);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(c->value(), static_cast<uint64_t>(kThreads) * kIncsPerThread);
  EXPECT_EQ(g->value(), static_cast<int64_t>(kThreads) * kIncsPerThread);
}

TEST(RegistryTest, HistogramSnapshotIsInternallyConsistent) {
  Registry reg;
  FixedHistogram* h = reg.GetHistogram("lat");
  // Hammer Record() while repeatedly snapshotting: every snapshot must agree
  // with itself (count == sum of buckets) even mid-race.
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&, t] {
      uint64_t v = 1 + t;
      while (!stop.load(std::memory_order_relaxed)) {
        h->Record(v);
        v = v * 2654435761u + 1;  // Spread across buckets.
      }
    });
  }
  for (int i = 0; i < 200; ++i) {
    HistogramSnapshot s = h->Snapshot();
    uint64_t bucket_sum = 0;
    for (uint64_t b : s.buckets) {
      bucket_sum += b;
    }
    ASSERT_EQ(s.count, bucket_sum);
  }
  stop.store(true);
  for (auto& t : writers) {
    t.join();
  }
}

TEST(RegistryTest, HistogramBucketsAndPercentiles) {
  FixedHistogram h;
  h.Record(0);
  h.Record(1);
  h.Record(100);
  h.Record(1000);
  HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 4u);
  EXPECT_EQ(s.sum, 1101u);
  EXPECT_DOUBLE_EQ(s.Mean(), 1101.0 / 4.0);
  // Bucket upper bounds: p0 -> 0, p100 -> covers 1000 (bit width 10: 1023).
  EXPECT_EQ(s.Percentile(0), 0u);
  EXPECT_GE(s.Percentile(100), 1000u);
  EXPECT_LE(s.Percentile(100), 1023u);
}

TEST(RegistryTest, SnapshotIncludesProbesAndValueOr) {
  Registry reg;
  reg.GetCounter("counted")->Inc(7);
  uint64_t source = 41;
  reg.RegisterProbe("probed", [&source] { return source; });
  source = 42;
  MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.ValueOr("counted"), 7);
  EXPECT_EQ(snap.ValueOr("probed"), 42);  // Probes read at snapshot time.
  EXPECT_EQ(snap.ValueOr("absent", -5), -5);
}

TEST(MetricsSnapshotTest, ToJsonSchema) {
  Registry reg;
  reg.GetCounter("x.count")->Inc(3);
  reg.GetHistogram("x.lat")->Record(16);
  std::string json = reg.Snapshot().ToJson();
  EXPECT_NE(json.find("\"metrics\":{"), std::string::npos);
  EXPECT_NE(json.find("\"x.count\":3"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\":{"), std::string::npos);
  EXPECT_NE(json.find("\"x.lat\":{\"count\":1"), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

// ------------------------------------------------------------------ tracing

TEST(TracerTest, SamplingDisabledMeansNoSpans) {
  Tracer tracer;  // sample_every defaults to 0.
  {
    ScopedSpan span(&tracer, "op");
    EXPECT_FALSE(span.active());
    EXPECT_EQ(CurrentSpan(), nullptr);
  }
  EXPECT_EQ(tracer.spans_committed(), 0u);
}

TEST(TracerTest, NestedSpansAreInert) {
  Tracer tracer;
  tracer.SetSampleEvery(1);
  {
    ScopedSpan outer(&tracer, "outer");
    ASSERT_TRUE(outer.active());
    {
      ScopedSpan inner(&tracer, "inner");
      EXPECT_FALSE(inner.active());
      StampStage(TraceStage::kDma);  // Lands in the outer span.
    }
    EXPECT_NE(CurrentSpan(), nullptr);  // Inner destruction didn't clear it.
  }
  EXPECT_EQ(CurrentSpan(), nullptr);
  ASSERT_EQ(tracer.spans_committed(), 1u);
  auto spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_STREQ(spans[0].op, "outer");
}

TEST(TracerTest, RingIsBounded) {
  Tracer tracer;
  tracer.SetSampleEvery(1);
  const size_t total = Tracer::kRingCapacity + 100;
  for (size_t i = 0; i < total; ++i) {
    ScopedSpan span(&tracer, "op");
  }
  EXPECT_EQ(tracer.spans_committed(), total);
  auto spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), Tracer::kRingCapacity);
  // Oldest spans were overwritten: the ring holds the most recent commits in
  // order.
  for (size_t i = 1; i < spans.size(); ++i) {
    EXPECT_GT(spans[i].op_id, spans[i - 1].op_id);
  }
}

// Regression: the client API layer wraps the instance layer, so every op
// offers two ScopedSpan begin points. The outer one must claim the op even
// when it declines to sample — if the inner layer re-rolled the sampler, a
// 1-in-even stride parity-locks onto the inner layer and every sampled span
// loses the stages above it (seen as fig06 spans missing syscall_cross).
TEST(TracerTest, InnerSpanNeverReRollsSampling) {
  Tracer tracer;
  tracer.SetSampleEvery(2);
  for (int i = 0; i < 20; ++i) {
    ScopedSpan outer(&tracer, "outer");
    ScopedSpan inner(&tracer, "inner");
    EXPECT_FALSE(inner.active());
  }
  EXPECT_EQ(tracer.spans_committed(), 10u);
  for (const TraceSpan& span : tracer.Snapshot()) {
    EXPECT_STREQ(span.op, "outer");
  }
}

TEST(TracerTest, SampleEveryNKeepsOneInN) {
  Tracer tracer;
  tracer.SetSampleEvery(10);
  for (int i = 0; i < 100; ++i) {
    ScopedSpan span(&tracer, "op");
  }
  EXPECT_EQ(tracer.spans_committed(), 10u);
}

// Spans carried through the LITE fast path must stamp stages in
// monotonically non-decreasing virtual time, in pipeline order.
TEST(TraceIntegrationTest, LiteWriteSpanStagesAreMonotone) {
  lt::SimParams p = lt::SimParams::FastForTests();
  lite::LiteCluster cluster(2, p);
  cluster.EnableTracing(/*sample_every=*/1);
  auto client = cluster.CreateClient(0);  // User-level: includes the crossing.
  lite::MallocOptions on1;
  on1.nodes = {1};
  auto lh = client->Malloc(16 << 10, "trace_target", on1);
  ASSERT_TRUE(lh.ok());
  char buf[256] = {3};
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(client->Write(*lh, 0, buf, sizeof(buf)).ok());
  }
  auto spans = cluster.node(0)->telemetry().tracer().Snapshot();
  ASSERT_FALSE(spans.empty());
  size_t write_spans = 0;
  for (const TraceSpan& span : spans) {
    if (std::strcmp(span.op, "LT_write") != 0) {
      continue;
    }
    ++write_spans;
    ASSERT_GE(span.n_events, 2);
    EXPECT_EQ(span.events[0].stage, TraceStage::kApiEntry);
    for (int e = 1; e < span.n_events; ++e) {
      EXPECT_GE(span.events[e].t_ns, span.events[e - 1].t_ns)
          << "stage " << TraceStageName(span.events[e].stage) << " went backwards";
      EXPECT_GT(static_cast<int>(span.events[e].stage),
                static_cast<int>(span.events[e - 1].stage))
          << "stage order violated at " << TraceStageName(span.events[e].stage);
    }
    // A remote user-level write must cross the boundary, pass the lh check,
    // ring the doorbell, and observe its completion.
    bool saw_cross = false, saw_lh = false, saw_post = false, saw_completion = false;
    for (int e = 0; e < span.n_events; ++e) {
      saw_cross |= span.events[e].stage == TraceStage::kSyscallCross;
      saw_lh |= span.events[e].stage == TraceStage::kLhCheck;
      saw_post |= span.events[e].stage == TraceStage::kRnicPost;
      saw_completion |= span.events[e].stage == TraceStage::kCompletion;
    }
    EXPECT_TRUE(saw_cross);
    EXPECT_TRUE(saw_lh);
    EXPECT_TRUE(saw_post);
    EXPECT_TRUE(saw_completion);
  }
  EXPECT_GT(write_spans, 0u);
}

// --------------------------------------------------------------- LT_stat

TEST(LtStatTest, HardwareAndLiteMetricsAreQueryable) {
  lt::SimParams p = lt::SimParams::FastForTests();
  lite::LiteCluster cluster(2, p);
  auto client = cluster.CreateClient(0);
  auto server = cluster.CreateClient(1, /*kernel_level=*/true);
  ASSERT_TRUE(server->RegisterRpc(7).ok());
  std::thread service([&] {
    auto inc = server->RecvRpc(7);
    ASSERT_TRUE(inc.ok());
    ASSERT_TRUE(server->ReplyRpc(inc->token, "pong", 4).ok());
  });
  char out[16];
  uint32_t out_len = 0;
  ASSERT_TRUE(client->Rpc(1, 7, "ping", 4, out, sizeof(out), &out_len).ok());
  service.join();

  // Client node: OS crossings and posted WQEs.
  EXPECT_GT(client->Stat("os.crossings"), 0);
  EXPECT_GT(client->Stat("rnic.ops_posted"), 0);
  EXPECT_GT(client->Stat("lite.qos.admits"), 0);
  // Server node: the RPC arrived through the poll loop.
  auto server_snap = server->StatSnapshot();
  EXPECT_GT(server_snap.ValueOr("lite.rpc.requests"), 0);
  EXPECT_GT(server_snap.ValueOr("lite.poll.wakeups"), 0);
  auto batch = server_snap.histograms.find("lite.rpc.poll_batch");
  ASSERT_NE(batch, server_snap.histograms.end());
  EXPECT_GT(batch->second.count, 0u);
  // Client node saw the reply.
  EXPECT_GT(client->Stat("lite.rpc.replies"), 0);
}

// Fig-4 cliff, observed directly: random 64B writes across more MRs than the
// RNIC's MPT cache holds must drive the server-side miss counter up, while
// the same traffic against few MRs stays cached.
TEST(MptCacheIntegrationTest, MissCountersRisePast128Mrs) {
  auto run = [](size_t num_mrs, uint64_t* hits, uint64_t* misses) {
    lt::SimParams p = lt::SimParams::FastForTests();
    p.node_phys_mem_bytes = 64ull << 20;
    ASSERT_GE(static_cast<size_t>(p.mpt_cache_entries), 128u);
    lt::Cluster cluster(2, p);
    lt::Process* client = cluster.node(0)->CreateProcess();
    lt::Process* server = cluster.node(1)->CreateProcess();
    auto heap = server->page_table().AllocVirt(num_mrs * 4096);
    ASSERT_TRUE(heap.ok());
    std::vector<lt::VerbsMr> mrs;
    for (size_t i = 0; i < num_mrs; ++i) {
      mrs.push_back(*server->verbs().RegisterMr(*heap + i * 4096, 4096, lt::kMrAll));
    }
    auto local = client->page_table().AllocVirt(4096);
    auto lmr = *client->verbs().RegisterMr(*local, 4096, lt::kMrAll);
    lt::Qp* q0 = client->verbs().CreateQp(lt::QpType::kRc, client->verbs().CreateCq(),
                                          client->verbs().CreateCq());
    lt::Qp* q1 = server->verbs().CreateQp(lt::QpType::kRc, server->verbs().CreateCq(),
                                          server->verbs().CreateCq());
    q0->Connect(1, q1->qpn());
    q1->Connect(0, q0->qpn());
    const uint64_t misses_before =
        static_cast<uint64_t>(cluster.node(1)->telemetry().registry().Snapshot().ValueOr(
            "rnic.mpt.misses"));
    for (int i = 0; i < 600; ++i) {
      lt::WorkRequest wr;
      wr.opcode = lt::WrOpcode::kWrite;
      wr.lkey = lmr.lkey;
      wr.local_addr = *local;
      wr.length = 64;
      wr.rkey = mrs[static_cast<size_t>(i) % mrs.size()].rkey;
      wr.remote_addr = mrs[static_cast<size_t>(i) % mrs.size()].addr;
      ASSERT_TRUE(client->verbs().ExecSync(q0, wr).ok());
    }
    auto snap = cluster.node(1)->telemetry().registry().Snapshot();
    *hits = static_cast<uint64_t>(snap.ValueOr("rnic.mpt.hits"));
    *misses = static_cast<uint64_t>(snap.ValueOr("rnic.mpt.misses")) - misses_before;
  };
  uint64_t small_hits = 0, small_misses = 0, big_hits = 0, big_misses = 0;
  run(16, &small_hits, &small_misses);
  run(256, &big_hits, &big_misses);  // Past the 128-entry MPT cache.
  // 16 MRs fit: after warmup everything hits. 256 MRs cycled round-robin
  // through a 128-entry LRU: every access misses.
  EXPECT_LT(small_misses, 600u / 10);
  EXPECT_GT(big_misses, 500u);
  EXPECT_GT(big_misses, small_misses * 10);
  // Evictions only happen once capacity is exceeded.
  lt::LruCache tiny(4);
  for (uint64_t k = 0; k < 10; ++k) {
    tiny.Touch(k);
  }
  EXPECT_EQ(tiny.evictions(), 6u);
}

// ------------------------------------------------- Histogram::Snapshot (fix)

TEST(HistogramSnapshotFixTest, SnapshotIsConsistentUnderConcurrentAdd) {
  lt::Histogram h;
  // Bounded writer: unbounded growth makes later snapshots (copy + sort)
  // quadratically slow on a loaded machine.
  std::atomic<bool> done{false};
  std::thread writer([&] {
    for (double v = 0.0; v < 50'000.0; v += 1.0) {
      h.Add(v);
    }
    done.store(true, std::memory_order_release);
  });
  int snapshots = 0;
  while (snapshots < 100 && !done.load(std::memory_order_acquire)) {
    ++snapshots;
    lt::HistogramStats s = h.Snapshot();
    // The snapshot's own stats always agree with its sample copy — the race
    // between count() and Percentile() cannot occur through this API.
    ASSERT_EQ(s.count, s.sorted_samples.size());
    ASSERT_TRUE(std::is_sorted(s.sorted_samples.begin(), s.sorted_samples.end()));
    if (s.count > 0) {
      ASSERT_EQ(s.min, s.sorted_samples.front());
      ASSERT_EQ(s.max, s.sorted_samples.back());
      ASSERT_LE(s.Percentile(50), s.max);
      ASSERT_GE(s.Percentile(50), s.min);
    }
  }
  writer.join();
  EXPECT_EQ(h.Snapshot().count, 50'000u);
}

TEST(HistogramSnapshotFixTest, StatsMatchKnownData) {
  lt::Histogram h;
  for (double v : {5.0, 1.0, 3.0, 2.0, 4.0}) {
    h.Add(v);
  }
  lt::HistogramStats s = h.Snapshot();
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.Median(), 3.0);
}

}  // namespace
}  // namespace telemetry
}  // namespace lt
