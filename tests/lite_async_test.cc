// Unit tests for the asynchronous memop fast path: LT_read_async /
// LT_write_async completion handles, Poll/Wait/WaitAll retirement, the
// per-instance in-flight window, selective-signaling inference, retry
// across injected drops, and the async RPC handle reuse.
#include <gtest/gtest.h>

#include <cstring>
#include <deque>
#include <thread>
#include <vector>

#include "src/common/timing.h"
#include "src/lite/lite_cluster.h"

namespace lite {
namespace {

using lt::StatusCode;

class LiteAsyncTest : public ::testing::Test {
 protected:
  void SetUp() override {
    lt::SimParams p = lt::SimParams::FastForTests();
    cluster_ = std::make_unique<LiteCluster>(2, p);
    client_ = cluster_->CreateClient(0, /*kernel_level=*/true);
    MallocOptions on1;
    on1.nodes = {1};
    lh_ = *client_->Malloc(kRegion, "async_remote", on1);
  }

  static constexpr uint64_t kRegion = 64 << 10;

  std::unique_ptr<LiteCluster> cluster_;
  std::unique_ptr<LiteClient> client_;
  Lh lh_ = kInvalidLh;
};

TEST_F(LiteAsyncTest, WriteAsyncThenReadAsyncRoundtrip) {
  constexpr int kOps = 32;
  std::vector<uint64_t> vals(kOps);
  for (int i = 0; i < kOps; ++i) {
    vals[i] = 0xa5a5'0000ull + static_cast<uint64_t>(i);
    auto h = client_->WriteAsync(lh_, 8 * static_cast<uint64_t>(i), &vals[i], 8);
    ASSERT_TRUE(h.ok());
  }
  ASSERT_TRUE(client_->WaitAll().ok());
  EXPECT_EQ(cluster_->instance(0)->AsyncInFlight(), 0u);

  std::vector<uint64_t> back(kOps, 0);
  std::vector<MemopHandle> handles;
  for (int i = 0; i < kOps; ++i) {
    auto h = client_->ReadAsync(lh_, 8 * static_cast<uint64_t>(i), &back[i], 8);
    ASSERT_TRUE(h.ok());
    handles.push_back(*h);
  }
  for (MemopHandle h : handles) {
    ASSERT_TRUE(client_->Wait(h).ok());
  }
  EXPECT_EQ(back, vals);
}

TEST_F(LiteAsyncTest, AsyncWritesVisibleToBlockingRead) {
  // The async path must land the same bytes the blocking path would.
  std::vector<uint8_t> pattern(4096);
  for (size_t i = 0; i < pattern.size(); ++i) {
    pattern[i] = static_cast<uint8_t>(i * 7 + 3);
  }
  auto h = client_->WriteAsync(lh_, 512, pattern.data(), pattern.size());
  ASSERT_TRUE(h.ok());
  ASSERT_TRUE(client_->Wait(*h).ok());
  std::vector<uint8_t> back(pattern.size());
  ASSERT_TRUE(client_->Read(lh_, 512, back.data(), back.size()).ok());
  EXPECT_EQ(back, pattern);
}

TEST_F(LiteAsyncTest, SameOffsetWritesRetireInIssueOrder) {
  // All writes from one thread ride one sticky QP, so QP FIFO ordering makes
  // the last-issued value the final one.
  for (uint64_t i = 1; i <= 24; ++i) {
    auto h = client_->WriteAsync(lh_, 0, &i, 8);
    ASSERT_TRUE(h.ok());
  }
  ASSERT_TRUE(client_->WaitAll().ok());
  uint64_t back = 0;
  ASSERT_TRUE(client_->Read(lh_, 0, &back, 8).ok());
  EXPECT_EQ(back, 24u);
}

TEST_F(LiteAsyncTest, PollTransitionsToDoneAndConsumes) {
  uint64_t v = 0xbeef;
  auto h = client_->WriteAsync(lh_, 64, &v, 8);
  ASSERT_TRUE(h.ok());
  bool done = false;
  for (int i = 0; i < 100000 && !done; ++i) {
    auto r = client_->Poll(*h);
    ASSERT_TRUE(r.ok());
    done = *r;
    if (!done) {
      lt::SpinFor(100);  // Make virtual-time progress between polls.
    }
  }
  EXPECT_TRUE(done);
  // The handle was consumed by the successful poll.
  EXPECT_EQ(client_->Poll(*h).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(client_->Wait(*h).code(), StatusCode::kInvalidArgument);
}

TEST_F(LiteAsyncTest, WaitConsumesHandleOnce) {
  uint64_t v = 1;
  auto h = client_->WriteAsync(lh_, 0, &v, 8);
  ASSERT_TRUE(h.ok());
  ASSERT_TRUE(client_->Wait(*h).ok());
  EXPECT_EQ(client_->Wait(*h).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(client_->Wait(MemopHandle{0x7777777}).code(), StatusCode::kInvalidArgument);
}

TEST_F(LiteAsyncTest, WaitAllOnIdleInstanceIsOk) {
  EXPECT_TRUE(client_->WaitAll().ok());
  EXPECT_EQ(cluster_->instance(0)->AsyncInFlight(), 0u);
}

TEST_F(LiteAsyncTest, LocalPiecesCompleteAtIssue) {
  MallocOptions local;
  local.nodes = {0};
  auto lh = *client_->Malloc(4096, "async_local", local);
  uint64_t v = 0x10ca1;
  auto h = client_->WriteAsync(lh, 128, &v, 8);
  ASSERT_TRUE(h.ok());
  // Purely local ops never occupy the in-flight window.
  EXPECT_EQ(cluster_->instance(0)->AsyncInFlight(), 0u);
  ASSERT_TRUE(client_->Wait(*h).ok());
  uint64_t back = 0;
  ASSERT_TRUE(client_->Read(lh, 128, &back, 8).ok());
  EXPECT_EQ(back, v);
}

TEST_F(LiteAsyncTest, IssueErrorsSurfaceWithoutHandle) {
  uint64_t v = 0;
  EXPECT_EQ(client_->WriteAsync(lh_, kRegion - 4, &v, 8).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(client_->ReadAsync(Lh{987654}, 0, &v, 8).status().code(), StatusCode::kNotFound);
}

TEST_F(LiteAsyncTest, SelectiveSignalingCountersAdvance) {
  constexpr int kOps = 64;
  uint64_t v = 0x51;
  for (int i = 0; i < kOps; ++i) {
    ASSERT_TRUE(client_->WriteAsync(lh_, 8 * static_cast<uint64_t>(i % 64), &v, 8).ok());
  }
  ASSERT_TRUE(client_->WaitAll().ok());
  auto* inst = cluster_->instance(0);
  EXPECT_GE(inst->Stat("lite.async.ops"), kOps);
  // Async WQEs go out unsignaled except every K-th; completions for the
  // unsignaled prefix are inferred from covers (or fenced).
  const int64_t unsignaled = inst->Stat("lite.rnic.wqe_unsignaled");
  const int64_t signaled = inst->Stat("lite.rnic.wqe_signaled");
  EXPECT_GT(unsignaled, 0);
  EXPECT_GT(signaled, 0);
  EXPECT_GT(unsignaled, signaled);
  EXPECT_GT(inst->Stat("lite.async.inferred_completions"), 0);
  // Back-to-back posts to the sticky QP coalesce doorbells.
  EXPECT_GT(inst->Stat("lite.rnic.wqes_batched"), 0);
  EXPECT_GT(inst->Stat("lite.rnic.doorbells"), 0);
  EXPECT_GT(inst->Stat("lite.rnic.inline_sends"), 0);
}

TEST_F(LiteAsyncTest, RetryAcrossInjectedDropPreservesData) {
  uint64_t v = 0xd20b;
  cluster_->faults().DropNextTransfers(0, 1, 1);
  auto h = client_->WriteAsync(lh_, 256, &v, 8);
  ASSERT_TRUE(h.ok());
  ASSERT_TRUE(client_->Wait(*h).ok());
  EXPECT_GT(cluster_->instance(0)->Stat("lite.oneside.retries"), 0);
  uint64_t back = 0;
  ASSERT_TRUE(client_->Read(lh_, 256, &back, 8).ok());
  EXPECT_EQ(back, v);
  EXPECT_GT(cluster_->faults().drops(), 0u);
}

TEST_F(LiteAsyncTest, DropStormInsideOpenWindowRecovers) {
  // Fill a window, then drop a burst mid-stream: every op must still land.
  std::vector<uint64_t> vals(48);
  std::deque<MemopHandle> window;
  for (int i = 0; i < 48; ++i) {
    vals[i] = 0xdead'0000ull + static_cast<uint64_t>(i);
    if (i == 20) {
      cluster_->faults().DropNextTransfers(0, 1, 3);
    }
    auto h = client_->WriteAsync(lh_, 8 * static_cast<uint64_t>(i), &vals[i], 8);
    ASSERT_TRUE(h.ok());
    window.push_back(*h);
    if (window.size() >= 16) {
      ASSERT_TRUE(client_->Wait(window.front()).ok());
      window.pop_front();
    }
  }
  while (!window.empty()) {
    ASSERT_TRUE(client_->Wait(window.front()).ok());
    window.pop_front();
  }
  std::vector<uint64_t> back(48, 0);
  ASSERT_TRUE(client_->Read(lh_, 0, back.data(), back.size() * 8).ok());
  EXPECT_EQ(back, vals);
}

TEST(LiteAsyncWindowTest, WindowFullBackpressureRetiresOldest) {
  lt::SimParams p = lt::SimParams::FastForTests();
  p.lite_async_window = 4;
  LiteCluster cluster(2, p);
  auto client = cluster.CreateClient(0, /*kernel_level=*/true);
  MallocOptions on1;
  on1.nodes = {1};
  auto lh = *client->Malloc(4096, "win", on1);
  uint64_t v = 0x77;
  std::vector<MemopHandle> handles;
  for (int i = 0; i < 32; ++i) {
    auto h = client->WriteAsync(lh, 8 * static_cast<uint64_t>(i % 64), &v, 8);
    ASSERT_TRUE(h.ok());
    handles.push_back(*h);
    // The issuing thread retires the oldest op itself once the window fills.
    EXPECT_LE(cluster.instance(0)->AsyncInFlight(), 4u);
  }
  EXPECT_TRUE(client->WaitAll().ok());
  EXPECT_EQ(cluster.instance(0)->AsyncInFlight(), 0u);
  // Every handle was consumed by WaitAll.
  for (MemopHandle h : handles) {
    EXPECT_EQ(client->Wait(h).code(), StatusCode::kInvalidArgument);
  }
}

// ---- Async RPC through the same completion-handle engine -------------------

constexpr RpcFuncId kEchoFunc = 21;

class EchoServer {
 public:
  EchoServer(LiteCluster* cluster, lt::NodeId node)
      : client_(cluster->CreateClient(node, /*kernel_level=*/true)) {
    EXPECT_TRUE(client_->RegisterRpc(kEchoFunc).ok());
    thread_ = std::thread([this] {
      while (!stopping_.load()) {
        auto inc = client_->RecvRpc(kEchoFunc, 20'000'000);
        if (inc.ok()) {
          (void)client_->ReplyRpc(inc->token, inc->data.data(),
                                  static_cast<uint32_t>(inc->data.size()));
        }
      }
    });
  }
  ~EchoServer() {
    stopping_.store(true);
    thread_.join();
  }

 private:
  std::unique_ptr<LiteClient> client_;
  std::atomic<bool> stopping_{false};
  std::thread thread_;
};

TEST(LiteAsyncRpcTest, RpcAsyncDeliversReplyThroughHandle) {
  lt::SimParams p = lt::SimParams::FastForTests();
  LiteCluster cluster(2, p);
  EchoServer server(&cluster, 1);
  auto* inst = cluster.instance(0);
  const char msg[] = "async rpc payload";
  char out[64] = {0};
  uint32_t out_len = 0;
  auto h = inst->RpcAsync(1, kEchoFunc, msg, sizeof(msg), out, sizeof(out), &out_len);
  ASSERT_TRUE(h.ok());
  ASSERT_TRUE(inst->Wait(*h).ok());
  ASSERT_EQ(out_len, sizeof(msg));
  EXPECT_STREQ(out, msg);
}

TEST(LiteAsyncRpcTest, RpcAsyncPollDoesNotBlock) {
  lt::SimParams p = lt::SimParams::FastForTests();
  LiteCluster cluster(2, p);
  EchoServer server(&cluster, 1);
  auto* inst = cluster.instance(0);
  uint64_t in = 42, out = 0;
  uint32_t out_len = 0;
  auto h = inst->RpcAsync(1, kEchoFunc, &in, 8, &out, 8, &out_len);
  ASSERT_TRUE(h.ok());
  bool done = false;
  const uint64_t deadline = lt::RealNowNs() + 20'000'000'000ull;
  while (!done && lt::RealNowNs() < deadline) {
    auto r = inst->Poll(*h);
    ASSERT_TRUE(r.ok());
    done = *r;
    if (!done) {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }
  ASSERT_TRUE(done);
  EXPECT_EQ(out, 42u);
  EXPECT_EQ(out_len, 8u);
}

// Mixed memop + RPC handles drain together through WaitAll.
TEST(LiteAsyncRpcTest, WaitAllDrainsMixedMemopsAndRpcs) {
  lt::SimParams p = lt::SimParams::FastForTests();
  LiteCluster cluster(2, p);
  EchoServer server(&cluster, 1);
  auto client = cluster.CreateClient(0, /*kernel_level=*/true);
  auto* inst = cluster.instance(0);
  MallocOptions on1;
  on1.nodes = {1};
  auto lh = *client->Malloc(4096, "mixed", on1);
  uint64_t v = 9, rpc_out = 0;
  uint32_t rpc_out_len = 0;
  ASSERT_TRUE(client->WriteAsync(lh, 0, &v, 8).ok());
  ASSERT_TRUE(inst->RpcAsync(1, kEchoFunc, &v, 8, &rpc_out, 8, &rpc_out_len).ok());
  ASSERT_TRUE(client->WriteAsync(lh, 8, &v, 8).ok());
  ASSERT_TRUE(client->WaitAll().ok());
  EXPECT_EQ(inst->AsyncInFlight(), 0u);
  EXPECT_EQ(rpc_out, 9u);
}

}  // namespace
}  // namespace lite
